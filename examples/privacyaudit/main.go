// Privacy audit: reproduce the paper's §IV-G threat analysis on one dataset.
// A curious-but-honest server runs the Top Guess Attack against every
// client's uploads while the protocol trains, under each of the four
// defenses. The output is the Table V story: unprotected uploads leak almost
// everything, LDP trades a lot of utility for partial protection, and the
// paper's sampling+swapping mechanism collapses the attack at minor cost.
package main

import (
	"fmt"
	"log"

	"ptffedrec"
)

func main() {
	dataset := ptffedrec.Generate(ptffedrec.SteamSmall, 11)
	split := dataset.Split(ptffedrec.NewRand(11), 0.2)
	fmt.Println("auditing:", dataset.Stats())
	fmt.Println()
	fmt.Println("defense          attack-F1   NDCG@20   verdict")
	fmt.Println("--------------   ---------   -------   -------")

	type arm struct {
		defense ptffedrec.Defense
		verdict string
	}
	arms := []arm{
		{ptffedrec.DefenseNone, "interactions recoverable from score order"},
		{ptffedrec.DefenseLDP, "noise hurts utility more than it hides order"},
		{ptffedrec.DefenseSampling, "hidden pos/neg ratio defeats top-guess"},
		{ptffedrec.DefenseSamplingSwap, "order broken too; strongest protection"},
	}

	for _, a := range arms {
		cfg := ptffedrec.DefaultConfig(ptffedrec.ServerNGCF)
		cfg.Rounds = 8
		cfg.ClientEpochs = 4
		cfg.Privacy.Defense = a.defense

		trainer, err := ptffedrec.NewTrainer(split, cfg)
		if err != nil {
			log.Fatal(err)
		}
		history, err := trainer.Run()
		if err != nil {
			log.Fatal(err)
		}

		// Attack strength once local models are trained (late rounds).
		var lateF1 float64
		half := history.Rounds[len(history.Rounds)/2:]
		for _, rs := range half {
			lateF1 += rs.AttackF1
		}
		lateF1 /= float64(len(half))

		fmt.Printf("%-14s   %9.3f   %7.4f   %s\n", a.defense, lateF1, history.Final.NDCG, a.verdict)
	}

	fmt.Println()
	fmt.Println("The attack assumes the platform-default 1:4 sampling ratio and guesses the")
	fmt.Println("top 20% of uploaded scores as positives (§III-B2). Sampling randomises the")
	fmt.Println("uploaded ratio per round; swapping exchanges top positives' scores with")
	fmt.Println("negatives, destroying exactly the order information the attack needs.")
}
