// Fault tolerance: federated deployments lose clients constantly — phones go
// offline, uploads time out. PTF-FedRec degrades gracefully because the
// server just trains on whatever predictions arrive, and every client's next
// round starts from its own persistent local model.
//
// This example trains the same federation under increasingly hostile
// conditions (0%, 20%, 50% dropout plus truncated uploads) and also turns on
// the quantized wire codec, showing that quality erodes smoothly while the
// already-small traffic shrinks further.
package main

import (
	"fmt"
	"log"

	"ptffedrec"
)

func main() {
	dataset := ptffedrec.Generate(ptffedrec.ML100KSmall, 3)
	split := dataset.Split(ptffedrec.NewRand(3), 0.2)
	fmt.Println("federation:", dataset.Stats())
	fmt.Println()
	fmt.Println("dropout  truncate  quantized   NDCG@20   dropped/round   traffic/client/round")
	fmt.Println("-------  --------  ---------   -------   -------------   ---------------------")

	type condition struct {
		dropout, truncate float64
		quantize          bool
	}
	conditions := []condition{
		{0, 0, false},
		{0.2, 0, false},
		{0.5, 0.3, false},
		{0.2, 0, true},
	}

	for _, cond := range conditions {
		cfg := ptffedrec.DefaultConfig(ptffedrec.ServerLightGCN)
		cfg.Rounds = 8
		cfg.ClientEpochs = 3
		cfg.Faults.DropoutRate = cond.dropout
		cfg.Faults.TruncateRate = cond.truncate
		cfg.QuantizeScores = cond.quantize

		trainer, err := ptffedrec.NewTrainer(split, cfg)
		if err != nil {
			log.Fatal(err)
		}
		history, err := trainer.Run()
		if err != nil {
			log.Fatal(err)
		}

		var dropped float64
		for _, rs := range history.Rounds {
			dropped += float64(rs.Dropped)
		}
		dropped /= float64(len(history.Rounds))

		fmt.Printf("%6.0f%%  %7.0f%%  %9v   %7.4f   %13.1f   %s\n",
			cond.dropout*100, cond.truncate*100, cond.quantize,
			history.Final.NDCG, dropped,
			ptffedrec.FormatBytes(trainer.Meter().AvgPerClientPerRound()))
	}

	fmt.Println()
	fmt.Println("No round ever blocks on a missing client: the server trains on the uploads")
	fmt.Println("that arrived and disperses soft labels only to the responders.")
}
