// Movie recommendation scenario: the paper's motivating deployment. A movie
// platform wants a strong recommender without collecting watch histories and
// without shipping its model to clients (where a competitor could copy it).
//
// This example compares the three deployment choices the paper evaluates on
// the MovieLens profile:
//
//  1. centralized training (best quality, no privacy),
//  2. a parameter-transmission FedRec (FCF — user privacy, but the model is
//     public and traffic is parameter-sized),
//  3. PTF-FedRec (user privacy + model privacy + kilobyte traffic).
//
// It then produces top-10 recommendations for one user from the hidden
// server model, which is the artifact the platform actually serves.
package main

import (
	"fmt"
	"log"
	"sort"

	"ptffedrec"
)

func main() {
	dataset := ptffedrec.Generate(ptffedrec.ML100KSmall, 7)
	split := dataset.Split(ptffedrec.NewRand(7), 0.2)
	fmt.Println("movie platform dataset:", dataset.Stats())

	// --- Option 1: centralized (the pre-GDPR baseline). -------------------
	ccfg := ptffedrec.DefaultCentralConfig(ptffedrec.ServerNGCF)
	ccfg.Epochs = 15
	cTrainer, err := ptffedrec.NewCentralTrainer(split, ccfg)
	if err != nil {
		log.Fatal(err)
	}
	cTrainer.Run()
	cRes := cTrainer.Evaluate(20)
	fmt.Printf("\ncentralized NGCF:        Recall@20=%.4f NDCG@20=%.4f (raw data leaves devices)\n",
		cRes.Recall, cRes.NDCG)

	// --- Option 2: FCF, a parameter-transmission FedRec. -------------------
	bcfg := ptffedrec.DefaultBaselineConfig()
	bcfg.Rounds = 10
	bcfg.LocalEpochs = 3
	bcfg.LR = 5e-3
	fcf, err := ptffedrec.NewFCF(split, bcfg)
	if err != nil {
		log.Fatal(err)
	}
	for r := 0; r < bcfg.Rounds; r++ {
		fcf.RunRound(r)
	}
	fRes := fcf.Evaluate()
	fmt.Printf("FCF (param transmission): Recall@20=%.4f NDCG@20=%.4f, %s/client/round, model public\n",
		fRes.Recall, fRes.NDCG, ptffedrec.FormatBytes(fcf.AvgBytesPerClientPerRound()))

	// --- Option 3: PTF-FedRec with the provider's NGCF hidden. -------------
	pcfg := ptffedrec.DefaultConfig(ptffedrec.ServerNGCF)
	pcfg.Rounds = 10
	pcfg.ClientEpochs = 3
	trainer, err := ptffedrec.NewTrainer(split, pcfg)
	if err != nil {
		log.Fatal(err)
	}
	history, err := trainer.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PTF-FedRec(NGCF):        Recall@20=%.4f NDCG@20=%.4f, %s/client/round, model hidden\n",
		history.Final.Recall, history.Final.NDCG,
		ptffedrec.FormatBytes(trainer.Meter().AvgPerClientPerRound()))

	// --- Serve recommendations from the hidden model. ----------------------
	const user = 3
	type scored struct {
		item  int
		score float64
	}
	var candidates []scored
	server := trainer.Server().Model()
	for v := 0; v < split.NumItems; v++ {
		if split.InTrain(user, v) {
			continue
		}
		candidates = append(candidates, scored{v, server.Score(user, v)})
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].score > candidates[j].score })
	fmt.Printf("\ntop-10 movies for user %d (from the hidden server model):\n", user)
	for i := 0; i < 10 && i < len(candidates); i++ {
		marker := ""
		if split.InTest(user, candidates[i].item) {
			marker = "  <- held-out positive"
		}
		fmt.Printf("  %2d. movie %4d  score %.3f%s\n", i+1, candidates[i].item, candidates[i].score, marker)
	}
}
