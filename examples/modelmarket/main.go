// Model market: the intellectual-property scenario from the paper's
// introduction. A provider's competitive edge is its model architecture —
// here the difference between serving NeuMF, NGCF or LightGCN behind the
// same federation. Because PTF-FedRec only ever moves prediction scores,
// the provider can switch (or upgrade) the hidden server model without
// clients noticing anything except better recommendations, and nothing
// about the architecture is inferable from the protocol traffic.
//
// This example trains all three hidden models against identical NeuMF client
// fleets and shows (a) quality tracks the hidden model's strength — the
// provider's investment pays off, and (b) the bytes on the wire are
// indistinguishable across architectures — the model is genuinely hidden.
package main

import (
	"fmt"
	"log"

	"ptffedrec"
)

func main() {
	dataset := ptffedrec.Generate(ptffedrec.GowallaSmall, 5)
	split := dataset.Split(ptffedrec.NewRand(5), 0.2)
	fmt.Println("federation:", dataset.Stats())
	fmt.Println()
	fmt.Println("hidden server model   NDCG@20   Recall@20   wire traffic/client/round")
	fmt.Println("-------------------   -------   ---------   --------------------------")

	for _, kind := range []ptffedrec.ModelKind{
		ptffedrec.ServerNeuMF, ptffedrec.ServerNGCF, ptffedrec.ServerLightGCN,
	} {
		cfg := ptffedrec.DefaultConfig(kind)
		cfg.Rounds = 8
		cfg.ClientEpochs = 3

		trainer, err := ptffedrec.NewTrainer(split, cfg)
		if err != nil {
			log.Fatal(err)
		}
		history, err := trainer.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-19s   %7.4f   %9.4f   %s\n",
			kind, history.Final.NDCG, history.Final.Recall,
			ptffedrec.FormatBytes(trainer.Meter().AvgPerClientPerRound()))
	}

	fmt.Println()
	fmt.Println("Traffic is identical across hidden architectures: the clients see only")
	fmt.Println("(item, score) pairs either way. In a parameter-transmission FedRec the")
	fmt.Println("public parameters would reveal the architecture to every participant.")
}
