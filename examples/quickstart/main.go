// Quickstart: train PTF-FedRec on a synthetic MovieLens-like dataset and
// watch the protocol round by round — client losses, server loss, the Top
// Guess Attack's (failing) inference, and the kilobyte-scale traffic.
package main

import (
	"fmt"
	"log"

	"ptffedrec"
)

func main() {
	// 1. Data: a scaled-down synthetic MovieLens-100K (see DESIGN.md for the
	//    calibration; swap in ptffedrec.LoadMovieLens100K for the real file).
	dataset := ptffedrec.Generate(ptffedrec.ML100KSmall, 1)
	fmt.Println("dataset:", dataset.Stats())
	split := dataset.Split(ptffedrec.NewRand(1), 0.2)

	// 2. Protocol: paper hyper-parameters, NGCF as the provider's hidden
	//    server model, NeuMF on every client. Shortened to 8 rounds so the
	//    example finishes in seconds.
	cfg := ptffedrec.DefaultConfig(ptffedrec.ServerNGCF)
	cfg.Rounds = 8
	cfg.ClientEpochs = 3
	cfg.EvalEvery = 4

	trainer, err := ptffedrec.NewTrainer(split, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Train. Every round: clients fit Dᵢ ∪ D̃ᵢ locally, upload perturbed
	//    predictions, the server trains its hidden model on them and answers
	//    with confidence-filtered + hard soft labels.
	history, err := trainer.Run()
	if err != nil {
		log.Fatal(err)
	}
	for _, rs := range history.Rounds {
		fmt.Println(rs)
	}

	// 4. Results: the provider's model quality, the privacy it conceded, and
	//    what the protocol cost on the wire.
	fmt.Printf("\nserver model:   Recall@20=%.4f NDCG@20=%.4f (over %d users)\n",
		history.Final.Recall, history.Final.NDCG, history.Final.Users)
	fmt.Printf("attack F1:      %.3f (top-guess against protected uploads)\n", history.MeanAttackF1)
	fmt.Printf("communication:  %s per client per round\n",
		ptffedrec.FormatBytes(trainer.Meter().AvgPerClientPerRound()))
}
