// Benchmarks that regenerate every table and figure of the paper's
// evaluation section. Each benchmark runs one full experiment (small-scale
// profiles, shortened training — see internal/experiments) and prints the
// paper-style rows once. Run with:
//
//	go test -bench=. -benchmem
//
// Full-scale runs go through `go run ./cmd/ptfbench -exp <id> -scale full`.
package ptffedrec

import (
	"fmt"
	"io"
	"os"
	"sync"
	"testing"
)

// benchOptions returns the standard benchmark configuration. Output is
// printed only on the first iteration of each experiment so b.N reruns don't
// spam the log.
func benchOptions() ExperimentOptions { return DefaultExperimentOptions() }

var benchPrintOnce sync.Map

// runExperimentBench drives one experiment per iteration.
func runExperimentBench(b *testing.B, id string) {
	b.Helper()
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		var w io.Writer = io.Discard
		if _, printed := benchPrintOnce.LoadOrStore(id, true); !printed {
			fmt.Fprintf(os.Stdout, "\n=== %s (scale=%s quick=%v) ===\n", id, o.Scale, o.Quick)
			w = os.Stdout
		}
		if err := RunExperiment(id, o, w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2DatasetStats regenerates Table II (dataset statistics).
func BenchmarkTable2DatasetStats(b *testing.B) { runExperimentBench(b, "table2") }

// BenchmarkTable3Effectiveness regenerates Table III: Recall@20/NDCG@20 for
// centralized NeuMF/NGCF/LightGCN, FCF, FedMF, MetaMF and PTF-FedRec with
// all three server models on all three datasets.
func BenchmarkTable3Effectiveness(b *testing.B) { runExperimentBench(b, "table3") }

// BenchmarkTable4Communication regenerates Table IV: average per-client
// per-round communication for the parameter-transmission baselines (measured
// from real wire encodings, Paillier ciphertext sizes included) vs
// PTF-FedRec's prediction triples.
func BenchmarkTable4Communication(b *testing.B) { runExperimentBench(b, "table4") }

// BenchmarkTable5PrivacyDefense regenerates Table V: Top Guess Attack F1 and
// NDCG@20 under none / LDP / sampling / sampling+swapping.
func BenchmarkTable5PrivacyDefense(b *testing.B) { runExperimentBench(b, "table5") }

// BenchmarkTable6DefenseCostEffectiveness regenerates Table VI: the
// ΔF1/ΔNDCG cost-effectiveness ratios derived from Table V.
func BenchmarkTable6DefenseCostEffectiveness(b *testing.B) { runExperimentBench(b, "table6") }

// BenchmarkTable7DisperseAblation regenerates Table VII: the D̃ᵢ construction
// ablation (-hard / -confidence / both random).
func BenchmarkTable7DisperseAblation(b *testing.B) { runExperimentBench(b, "table7") }

// BenchmarkTable8ModelCombos regenerates Table VIII: NDCG@20 for all 3×3
// client×server model combinations on the MovieLens profile.
func BenchmarkTable8ModelCombos(b *testing.B) { runExperimentBench(b, "table8") }

// BenchmarkFig3PrivacyHyperparams regenerates Figure 3: the β/γ/λ sweeps
// with NDCG@20 and attack F1 on all three datasets.
func BenchmarkFig3PrivacyHyperparams(b *testing.B) { runExperimentBench(b, "fig3") }

// BenchmarkFig4AlphaSweep regenerates Figure 4: NDCG@20 for
// α ∈ {10,30,50,70,90}.
func BenchmarkFig4AlphaSweep(b *testing.B) { runExperimentBench(b, "fig4") }

// BenchmarkAblationServerGraph sweeps the server's soft-positive graph
// threshold — a design choice the paper leaves open (DESIGN.md §3).
func BenchmarkAblationServerGraph(b *testing.B) { runExperimentBench(b, "ablation-servergraph") }

// BenchmarkAblationNoiseFrontier traces the swap-vs-Laplace privacy/utility
// frontier.
func BenchmarkAblationNoiseFrontier(b *testing.B) { runExperimentBench(b, "ablation-noise") }

// BenchmarkScalability sweeps the parallel round engine and evaluator over
// worker counts on the large-scale profile (50k users at -scale full),
// reporting rounds/sec and eval-time per worker count plus a determinism
// cross-check. At GOMAXPROCS >= 4 the eval speedup row is expected to reach
// 2x or better; on smaller hosts the sweep still verifies worker-count
// invariance.
func BenchmarkScalability(b *testing.B) { runExperimentBench(b, "scalability") }
