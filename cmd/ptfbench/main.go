// Command ptfbench runs the paper's experiments from the command line.
//
// Usage:
//
//	ptfbench -exp table3                 # small-scale, full training
//	ptfbench -exp table4 -scale full     # paper-sized datasets
//	ptfbench -exp fig3 -quick            # shortened training (smoke run)
//	ptfbench -exp scalability -json      # machine-readable timing sweep
//	ptfbench -exp scalability -profile huge-1m   # 1M-user memory profile
//	ptfbench -list                       # list experiment ids
//	ptfbench -exp all                    # run everything
//	ptfbench -connect http://host:8470 -users 0:500   # join a ptfserve run
//
// The scalability sweep reports, per worker count, round and eval timings
// plus a batched-vs-scalar comparison (the same evaluation forced through
// per-item scoring, against the BlockScorer matrix-kernel engine), a
// select-vs-sort comparison (ranking forced through the legacy full-sort
// top-K, against the fused streaming bounded-heap selection engine), an
// eval+dispersal overlap measurement (sequential vs concurrent tail), and a
// cross-round pipeline comparison (seq_round_secs vs pipe_round_secs: the
// serialized round loop against the dependency-gated double-buffered
// pipeline, plus net_round_secs vs net_pipe_round_secs for the networked
// loopback run under both schedules). BENCH_scalability.json at the repo
// root records the sweep per commit (`make bench` regenerates it; CI
// uploads a fresh one as an artifact).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"ptffedrec"
	"ptffedrec/internal/coord"
	"ptffedrec/internal/data"
	"ptffedrec/internal/experiments"
)

// jsonRecord is the machine-readable envelope emitted per experiment under
// -json: one JSON object per line, suitable for the BENCH_*.json perf
// trajectory and other tooling.
type jsonRecord struct {
	Experiment string  `json:"experiment"`
	Scale      string  `json:"scale"`
	Quick      bool    `json:"quick"`
	Seed       uint64  `json:"seed"`
	Seconds    float64 `json:"seconds"`
	Result     any     `json:"result"`
}

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (or 'all')")
		scale   = flag.String("scale", "small", "dataset scale: small | full")
		quick   = flag.Bool("quick", false, "shortened training (benchmark-style smoke run)")
		seed    = flag.Uint64("seed", 1, "experiment seed")
		profile = flag.String("profile", "", "override the dataset profile (e.g. huge-1m for the memory-profile scalability run)")
		rounds  = flag.Int("rounds", 0, "override the round count of the memory-profile scalability mode (0 = keep the default)")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		verbose = flag.Bool("v", false, "log per-run progress")
		asJSON  = flag.Bool("json", false, "emit one JSON object per experiment instead of tables")
		connect = flag.String("connect", "", "participant mode: base URL of a ptfserve coordinator")
		users   = flag.String("users", "", "participant mode: hosted user range as lo:hi")
	)
	flag.Parse()

	if *connect != "" {
		if err := runParticipant(*connect, *users); err != nil {
			fmt.Fprintf(os.Stderr, "ptfbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, id := range ptffedrec.ExperimentIDs {
			fmt.Println(id)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "ptfbench: -exp is required (try -list)")
		os.Exit(2)
	}

	o := experiments.Options{
		Scale:  experiments.Scale(*scale),
		Quick:  *quick,
		Seed:   *seed,
		Rounds: *rounds,
	}
	if o.Scale != experiments.ScaleSmall && o.Scale != experiments.ScaleFull {
		fmt.Fprintf(os.Stderr, "ptfbench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *profile != "" {
		p, err := data.ProfileByName(*profile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ptfbench: %v\n", err)
			os.Exit(2)
		}
		o.ProfilesOverride = []data.Profile{p}
	}
	if *verbose {
		o.Out = os.Stderr
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = ptffedrec.ExperimentIDs
	}
	enc := json.NewEncoder(os.Stdout)
	for _, id := range ids {
		start := time.Now()
		res, err := experiments.ResultFor(id, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ptfbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		if *asJSON {
			rec := jsonRecord{
				Experiment: id,
				Scale:      string(o.Scale),
				Quick:      o.Quick,
				Seed:       o.Seed,
				Seconds:    elapsed.Seconds(),
				Result:     res,
			}
			if err := enc.Encode(rec); err != nil {
				fmt.Fprintf(os.Stderr, "ptfbench: %s: %v\n", id, err)
				os.Exit(1)
			}
			continue
		}
		res.Print(os.Stdout)
		fmt.Printf("  (%s finished in %v)\n\n", id, elapsed.Round(time.Millisecond))
	}
}

// runParticipant joins a ptfserve coordinator as the host of a user range
// and processes rounds until the coordinator shuts the run down. Everything
// else — dataset, split, and training configuration — arrives through the
// join handshake.
func runParticipant(base, users string) error {
	var lo, hi int
	if n, err := fmt.Sscanf(users, "%d:%d", &lo, &hi); n != 2 || err != nil {
		return fmt.Errorf("-connect needs -users lo:hi (got %q)", users)
	}
	p, err := coord.Join(base, lo, hi, nil)
	if err != nil {
		return err
	}
	fmt.Printf("ptfbench: joined %s as session %d hosting users [%d, %d)\n", base, p.Token(), lo, hi)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := p.Run(ctx); err != nil {
		return err
	}
	fmt.Println("ptfbench: coordinator shut the run down; leaving")
	return nil
}
