// Command ptfbench runs the paper's experiments from the command line.
//
// Usage:
//
//	ptfbench -exp table3                 # small-scale, full training
//	ptfbench -exp table4 -scale full     # paper-sized datasets
//	ptfbench -exp fig3 -quick            # shortened training (smoke run)
//	ptfbench -list                       # list experiment ids
//	ptfbench -exp all                    # run everything
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ptffedrec"
	"ptffedrec/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (or 'all')")
		scale   = flag.String("scale", "small", "dataset scale: small | full")
		quick   = flag.Bool("quick", false, "shortened training (benchmark-style smoke run)")
		seed    = flag.Uint64("seed", 1, "experiment seed")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		verbose = flag.Bool("v", false, "log per-run progress")
	)
	flag.Parse()

	if *list {
		for _, id := range ptffedrec.ExperimentIDs {
			fmt.Println(id)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "ptfbench: -exp is required (try -list)")
		os.Exit(2)
	}

	o := experiments.Options{
		Scale: experiments.Scale(*scale),
		Quick: *quick,
		Seed:  *seed,
	}
	if o.Scale != experiments.ScaleSmall && o.Scale != experiments.ScaleFull {
		fmt.Fprintf(os.Stderr, "ptfbench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *verbose {
		o.Out = os.Stderr
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = ptffedrec.ExperimentIDs
	}
	for _, id := range ids {
		start := time.Now()
		if err := ptffedrec.RunExperiment(id, o, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "ptfbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("  (%s finished in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
