// Command ptfserve runs the PTF-FedRec coordinator as a network service, or
// verifies the networked round path against the in-process trainer.
//
// Usage:
//
//	ptfserve -addr :8470 -profile ml-100k-small -server lightgcn -wait 2
//	ptfserve -selftest            # loopback bitwise verification (CI smoke)
//
// In serve mode the process listens for participants (see `ptfbench
// -connect`), waits until -wait of them have joined, then drives the
// configured number of rounds and prints the per-round trace. Participants
// reconstruct the dataset and configuration from the join handshake — the
// only shared inputs are the profile name, seeds, and fractions printed at
// startup.
//
// In -selftest mode the binary spins up a coordinator on a loopback
// listener, joins -participants in-process participants over real HTTP, and
// requires the resulting history to be bitwise-identical to fed.Trainer on
// the same split — fault-free and under a FaultPlan whose dropouts and
// truncations travel through the transport, each driven once through the
// pipelined round engine (next cohort announced early, dispersals pushed)
// and once through the serialized SequentialRounds baseline. All four
// networked histories must match the sequential in-process reference. It
// exits non-zero on any divergence, making it a one-command end-to-end
// smoke test.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"ptffedrec/internal/coord"
	"ptffedrec/internal/data"
	"ptffedrec/internal/fed"
	"ptffedrec/internal/models"
)

func main() {
	var (
		addr         = flag.String("addr", ":8470", "listen address (serve mode)")
		profile      = flag.String("profile", "ml-100k-small", "dataset profile participants rebuild (see data.ProfileByName)")
		seed         = flag.Uint64("seed", 1, "data seed: generation and split")
		frac         = flag.Float64("frac", 0.2, "test fraction of the split")
		server       = flag.String("server", "lightgcn", "server model kind: mf | neumf | ngcf | lightgcn")
		rounds       = flag.Int("rounds", 0, "override Config.Rounds (0 = model default)")
		workers      = flag.Int("workers", 0, "server worker pool (0 = GOMAXPROCS)")
		wait         = flag.Int("wait", 1, "participants to wait for before starting rounds")
		deadline     = flag.Duration("deadline", 0, "per-round straggler deadline (0 = wait forever)")
		sequential   = flag.Bool("sequential", false, "serialized round schedule (disable cross-round pipelining)")
		selftest     = flag.Bool("selftest", false, "run the loopback bitwise verification and exit")
		participants = flag.Int("participants", 2, "participant processes in -selftest mode")
	)
	flag.Parse()

	if *selftest {
		if err := runSelftest(*participants); err != nil {
			fmt.Fprintf(os.Stderr, "ptfserve: selftest: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("ptfserve: selftest passed: networked history is bitwise-identical to the in-process trainer")
		return
	}

	kind, err := models.ParseKind(*server)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ptfserve: %v\n", err)
		os.Exit(2)
	}
	p, err := data.ProfileByName(*profile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ptfserve: %v\n", err)
		os.Exit(2)
	}
	cfg := fed.DefaultConfig(kind)
	if *rounds > 0 {
		cfg.Rounds = *rounds
	}
	cfg.Workers = *workers
	cfg.EvalWorkers = *workers
	cfg.SequentialRounds = *sequential

	sp := data.StreamSplit(p, *seed, *frac)
	c, err := coord.New(sp, cfg, coord.Options{
		Profile:  p.Name,
		DataSeed: *seed,
		TestFrac: *frac,
		Deadline: *deadline,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ptfserve: %v\n", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ptfserve: %v\n", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: c.Handler()}
	go srv.Serve(ln)
	defer srv.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmt.Printf("ptfserve: listening on %s — profile=%s seed=%d frac=%g server=%s rounds=%d\n",
		ln.Addr(), p.Name, *seed, *frac, kind, cfg.Rounds)
	fmt.Printf("ptfserve: waiting for %d participant(s) to join\n", *wait)
	for c.Sessions() < *wait {
		select {
		case <-ctx.Done():
			fmt.Fprintln(os.Stderr, "ptfserve: interrupted while waiting for participants")
			os.Exit(1)
		case <-time.After(100 * time.Millisecond):
		}
	}

	h, err := c.Run(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ptfserve: run: %v\n", err)
		os.Exit(1)
	}
	// Keep serving until participants have drained the final dispersals and
	// the shutdown notice (they deregister on the way out), then exit.
	drainDeadline := time.Now().Add(15 * time.Second)
	for c.Sessions() > 0 && time.Now().Before(drainDeadline) && ctx.Err() == nil {
		time.Sleep(50 * time.Millisecond)
	}
	for _, rs := range h.Rounds {
		fmt.Println(rs.String())
	}
	in, out := c.WireBytes()
	fmt.Printf("final: recall@k=%.4f ndcg@k=%.4f meanAttackF1=%.3f wire: in=%d out=%d bytes\n",
		h.Final.Recall, h.Final.NDCG, h.MeanAttackF1, in, out)
}

// selftestConfig is the smoke run's shape: small enough to finish in
// seconds, with a graph server model so the full absorb→rebuild→train→
// disperse pipeline is on the wire path.
func selftestConfig() fed.Config {
	cfg := fed.DefaultConfig(models.KindLightGCN)
	cfg.ClientModel = models.KindMF
	cfg.Rounds = 2
	cfg.EvalEvery = 1
	cfg.ClientEpochs = 1
	cfg.ServerEpochs = 1
	cfg.Dim = 8
	cfg.Alpha = 10
	cfg.Workers = 4
	cfg.EvalWorkers = 4
	return cfg
}

// runSelftest verifies the loopback bitwise contract over real HTTP: a clean
// run and a faulted run whose dropouts and truncations cross the transport
// as empty bodies and cut streams, each through the pipelined round engine
// and the serialized SequentialRounds baseline. Every networked history must
// match the sequential in-process reference bit for bit — pinning schedule
// invariance and transport fidelity in one sweep.
func runSelftest(participants int) error {
	const seed, frac = 42, 0.2
	if participants < 1 {
		return fmt.Errorf("need at least one participant, got %d", participants)
	}
	for _, tc := range []struct {
		name   string
		faults fed.FaultPlan
	}{
		{"clean", fed.FaultPlan{}},
		{"faulted", fed.FaultPlan{DropoutRate: 0.3, TruncateRate: 0.5}},
	} {
		cfg := selftestConfig()
		cfg.Faults = tc.faults

		sp := data.StreamSplit(data.Tiny, seed, frac)
		rcfg := cfg
		rcfg.SequentialRounds = true
		ref, err := fed.NewTrainer(sp, rcfg)
		if err != nil {
			return err
		}
		want, err := ref.Run()
		if err != nil {
			return err
		}

		for _, sequential := range []bool{false, true} {
			mode := "pipelined"
			if sequential {
				mode = "sequential"
			}
			label := tc.name + "/" + mode
			ncfg := cfg
			ncfg.SequentialRounds = sequential
			got, err := runSelftestNetworked(ncfg, seed, frac, participants)
			if err != nil {
				return fmt.Errorf("%s: %w", label, err)
			}
			if err := equalHistories(want, got); err != nil {
				return fmt.Errorf("%s: networked history diverged: %w", label, err)
			}
			fmt.Printf("ptfserve: selftest %s: %d rounds over %d participants match bitwise\n",
				label, len(got.Rounds), participants)
		}
	}
	return nil
}

// runSelftestNetworked drives one training run through the coordinator on a
// loopback listener with participants splitting the user universe evenly.
func runSelftestNetworked(cfg fed.Config, seed uint64, frac float64, participants int) (*fed.History, error) {
	sp := data.StreamSplit(data.Tiny, seed, frac)
	c, err := coord.New(sp, cfg, coord.Options{
		Profile:  data.Tiny.Name,
		DataSeed: seed,
		TestFrac: frac,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: c.Handler()}
	go srv.Serve(ln)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	base := "http://" + ln.Addr().String()
	errCh := make(chan error, participants)
	per := (sp.NumUsers + participants - 1) / participants
	for i := 0; i < participants; i++ {
		lo, hi := i*per, (i+1)*per
		if hi > sp.NumUsers {
			hi = sp.NumUsers
		}
		p, err := coord.Join(base, lo, hi, nil)
		if err != nil {
			return nil, fmt.Errorf("join [%d, %d): %w", lo, hi, err)
		}
		go func() { errCh <- p.Run(ctx) }()
	}
	got, err := c.Run(ctx)
	if err != nil {
		cancel() // unblock participants before draining their errors
	}
	for i := 0; i < participants; i++ {
		if perr := <-errCh; perr != nil && err == nil {
			err = perr
		}
	}
	if err != nil {
		return nil, err
	}
	return got, nil
}

// equalHistories compares two training traces with bitwise float equality.
func equalHistories(a, b *fed.History) error {
	if len(a.Rounds) != len(b.Rounds) {
		return fmt.Errorf("round counts differ: %d vs %d", len(a.Rounds), len(b.Rounds))
	}
	for i := range a.Rounds {
		if a.Rounds[i] != b.Rounds[i] {
			return fmt.Errorf("round %d differs:\n  %+v\n  %+v", i, a.Rounds[i], b.Rounds[i])
		}
	}
	if a.Final != b.Final || a.MeanAttackF1 != b.MeanAttackF1 {
		return fmt.Errorf("final results differ: %+v/%v vs %+v/%v",
			a.Final, a.MeanAttackF1, b.Final, b.MeanAttackF1)
	}
	return nil
}
