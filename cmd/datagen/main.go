// Command datagen emits a synthetic dataset (calibrated to one of the
// paper's three datasets) as a "user,item" CSV on stdout or to a file.
//
// Generation streams user by user with O(1) working memory, so even the
// million-user huge-1m profile writes without materialising the dataset.
//
// Usage:
//
//	datagen -profile ml-100k -seed 1 > ml100k.csv
//	datagen -profile huge-1m -out huge.csv
//	datagen -stats                    # print Table II for all profiles
package main

import (
	"flag"
	"fmt"
	"os"

	"ptffedrec/internal/data"
)

func main() {
	var (
		profile = flag.String("profile", "ml-100k-small", "dataset profile name")
		seed    = flag.Uint64("seed", 1, "generator seed")
		out     = flag.String("out", "", "output path (default stdout)")
		stats   = flag.Bool("stats", false, "print statistics for every profile and exit")
	)
	flag.Parse()

	if *stats {
		for _, p := range []data.Profile{
			data.ML100K, data.Steam200K, data.Gowalla,
			data.ML100KSmall, data.SteamSmall, data.GowallaSmall,
		} {
			fmt.Println(data.StreamStats(p, *seed))
		}
		return
	}

	p, err := data.ProfileByName(*profile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	// Streamed generation: working memory stays at one user's profile, so
	// even huge-1m writes with a flat footprint. The bytes are identical to
	// materialising the Dataset and calling WriteCSV.
	st, err := data.StreamCSV(w, p, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %s\n", st)
}
