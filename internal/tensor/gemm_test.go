package tensor

import (
	"testing"

	"ptffedrec/internal/rng"
)

// randGatherFixture builds random embedding matrices plus gathered row index
// lists, covering offsets and remainder query counts (the 4-way interleave's
// tail path).
func randGatherFixture(seed uint64, nq, nc, rows, cols, off int) (a, b *Matrix, arows, brows []int) {
	s := rng.New(seed).Derive("gemm")
	a = New(rows, cols)
	b = New(rows+off, cols)
	for i := range a.Data {
		a.Data[i] = s.Float64()*2 - 1
	}
	for i := range b.Data {
		b.Data[i] = s.Float64()*2 - 1
	}
	arows = make([]int, nq)
	for i := range arows {
		arows[i] = s.Intn(rows)
	}
	brows = make([]int, nc)
	for i := range brows {
		brows[i] = s.Intn(rows)
	}
	return a, b, arows, brows
}

// TestGatherMulMatMatchesVec pins the multi-user GEMM's contract: every row
// equals the single-query GatherMulVecInto result bitwise, for query counts
// that exercise both the interleaved quad path and the remainder tail.
func TestGatherMulMatMatchesVec(t *testing.T) {
	for _, nq := range []int{1, 2, 3, 4, 5, 7, 8, 11} {
		a, b, arows, brows := randGatherFixture(uint64(nq), nq, 57, 40, 9, 3)
		dst := New(nq, len(brows))
		GatherMulMatInto(dst, a, arows, 0, b, brows, 3)
		want := make([]float64, len(brows))
		for i, ar := range arows {
			GatherMulVecInto(want, b, brows, 3, a.Row(ar))
			for j := range want {
				if dst.At(i, j) != want[j] {
					t.Fatalf("nq=%d: dst[%d][%d] = %v, want %v", nq, i, j, dst.At(i, j), want[j])
				}
			}
		}
	}
}

// TestGatherMulMatAddAccumulates pins the Add variant: two accumulating calls
// equal the element-wise sum of two plain calls in call order.
func TestGatherMulMatAddAccumulates(t *testing.T) {
	a, b, arows, brows := randGatherFixture(5, 6, 31, 20, 5, 0)
	a2, b2, arows2, brows2 := randGatherFixture(6, 6, 31, 20, 5, 0)
	copy(arows2, arows)
	copy(brows2, brows)

	dst := New(6, len(brows))
	GatherMulMatInto(dst, a, arows, 0, b, brows, 0)
	GatherMulMatAddInto(dst, a2, arows2, 0, b2, brows2, 0)

	one := New(6, len(brows))
	two := New(6, len(brows))
	GatherMulMatInto(one, a, arows, 0, b, brows, 0)
	GatherMulMatInto(two, a2, arows2, 0, b2, brows2, 0)
	for i := range dst.Data {
		if dst.Data[i] != one.Data[i]+two.Data[i] {
			t.Fatalf("elem %d: add variant %v != %v", i, dst.Data[i], one.Data[i]+two.Data[i])
		}
	}
}

// TestGemvParMatchesSerial pins the row-range parallel GEMV/GEMM variants:
// forcing the parallel path on small inputs (shrunken threshold) must
// reproduce the serial kernels bitwise for several worker counts.
func TestGemvParMatchesSerial(t *testing.T) {
	defer func(old int) { gemvParMinRows = old }(gemvParMinRows)
	gemvParMinRows = 8

	a, b, arows, brows := randGatherFixture(9, 5, 300, 80, 7, 2)
	x := a.Row(arows[0])

	wantVec := make([]float64, b.Rows)
	MulVecInto(wantVec, b, x)
	wantGather := make([]float64, len(brows))
	GatherMulVecInto(wantGather, b, brows, 2, x)
	wantAdd := make([]float64, len(brows))
	copy(wantAdd, wantGather)
	GatherMulVecAddInto(wantAdd, b, brows, 2, x)
	wantMat := New(len(arows), len(brows))
	GatherMulMatInto(wantMat, a, arows, 0, b, brows, 2)

	for _, workers := range []int{1, 2, 3, 8} {
		got := make([]float64, b.Rows)
		MulVecIntoPar(got, b, x, workers)
		for i := range got {
			if got[i] != wantVec[i] {
				t.Fatalf("MulVecIntoPar workers=%d row %d: %v != %v", workers, i, got[i], wantVec[i])
			}
		}
		gotG := make([]float64, len(brows))
		GatherMulVecIntoPar(gotG, b, brows, 2, x, workers)
		gotA := make([]float64, len(brows))
		copy(gotA, gotG)
		GatherMulVecAddIntoPar(gotA, b, brows, 2, x, workers)
		for i := range gotG {
			if gotG[i] != wantGather[i] || gotA[i] != wantAdd[i] {
				t.Fatalf("Gather[Add]Par workers=%d row %d mismatch", workers, i)
			}
		}
		gotM := New(len(arows), len(brows))
		GatherMulMatIntoPar(gotM, a, arows, 0, b, brows, 2, workers)
		for i := range gotM.Data {
			if gotM.Data[i] != wantMat.Data[i] {
				t.Fatalf("GatherMulMatIntoPar workers=%d elem %d mismatch", workers, i)
			}
		}
	}
}

// TestGatherMulMatShapePanics pins the shape checks.
func TestGatherMulMatShapePanics(t *testing.T) {
	a, b, arows, brows := randGatherFixture(11, 3, 4, 10, 5, 0)
	for name, fn := range map[string]func(){
		"dst rows": func() { GatherMulMatInto(New(2, len(brows)), a, arows, 0, b, brows, 0) },
		"dst cols": func() { GatherMulMatInto(New(3, 1), a, arows, 0, b, brows, 0) },
		"inner":    func() { GatherMulMatInto(New(3, len(brows)), a, arows, 0, New(4, 9), brows, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
