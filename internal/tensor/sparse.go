package tensor

import (
	"fmt"
	"sort"

	"ptffedrec/internal/par"
)

// Triplet is one non-zero entry of a sparse matrix under construction.
type Triplet struct {
	Row, Col int
	Val      float64
}

// CSR is a compressed sparse row matrix. It is immutable once filled; the
// graph recommenders take one normalized adjacency per round and reuse it for
// every propagation. Construction is either NewCSRPar (from triplets) or the
// in-place Reshape/GrowNNZ assembly path used by engines that already hold
// the matrix row-by-row (the incremental graph engine).
type CSR struct {
	Rows, Cols int
	RowPtr     []int     // len Rows+1
	ColIdx     []int     // len NNZ
	Val        []float64 // len NNZ
}

// NewCSR builds a CSR matrix from triplets. Duplicate (row, col) entries are
// summed in input order. The triplet slice is not retained.
func NewCSR(rows, cols int, entries []Triplet) *CSR {
	return NewCSRPar(rows, cols, entries, 1)
}

// csrScatterChunk is the input-range granularity of NewCSRPar's counting and
// scatter passes, and the row-range granularity of its per-row finalisation.
// A scheduling knob only: the construction is defined so the output never
// depends on how the passes are partitioned.
const csrScatterChunk = 4096

// csrMaxRanges caps the number of scatter ranges: each range carries a
// private rows-sized histogram, so unbounded ranges would make the counting
// pass O(nnz/csrScatterChunk × rows) memory on large graphs. Like the chunk
// size, it only shapes the partitioning, never the output.
const csrMaxRanges = 64

// colValSorter stable-sorts one row's scattered (column, value) pairs by
// column, preserving input order among equal columns.
type colValSorter struct {
	col []int
	val []float64
}

func (s colValSorter) Len() int           { return len(s.col) }
func (s colValSorter) Less(i, j int) bool { return s.col[i] < s.col[j] }
func (s colValSorter) Swap(i, j int) {
	s.col[i], s.col[j] = s.col[j], s.col[i]
	s.val[i], s.val[j] = s.val[j], s.val[i]
}

// NewCSRPar builds the same matrix as NewCSR, sharding the row bucketing over
// workers. The output is independent of the worker count by construction:
// entries land in their row's bucket in input order (per-range scatter offsets
// are prefix sums taken in range order), each bucket is then stable-sorted by
// column, and duplicates are summed in that order — all quantities the
// partitioning cannot change.
func NewCSRPar(rows, cols int, entries []Triplet, workers int) *CSR {
	n := len(entries)
	m := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int, rows+1)}
	if n == 0 {
		return m
	}
	if workers < 1 {
		workers = 1
	}
	rangeSize := csrScatterChunk
	if n > csrScatterChunk*csrMaxRanges {
		rangeSize = (n + csrMaxRanges - 1) / csrMaxRanges
	}
	nRanges := (n + rangeSize - 1) / rangeSize
	if workers > nRanges {
		workers = nRanges
	}

	// Pass 1: per-range row histograms (and bounds validation). Counts are
	// integers, so summing them later is exact regardless of partitioning.
	counts := make([][]int, nRanges)
	bad := make([]int, nRanges)
	par.For(nRanges, workers, func(c int) {
		lo := c * rangeSize
		hi := lo + rangeSize
		if hi > n {
			hi = n
		}
		bad[c] = -1
		cnt := make([]int, rows)
		for i := lo; i < hi; i++ {
			t := entries[i]
			if t.Row < 0 || t.Row >= rows || t.Col < 0 || t.Col >= cols {
				if bad[c] < 0 {
					bad[c] = i
				}
				continue
			}
			cnt[t.Row]++
		}
		counts[c] = cnt
	})
	for _, b := range bad {
		if b >= 0 {
			t := entries[b]
			panic(fmt.Sprintf("tensor: CSR entry (%d,%d) outside %dx%d", t.Row, t.Col, rows, cols))
		}
	}

	// Row bucket offsets, then per-range write cursors inside each bucket:
	// range c's entries for row r start after every earlier range's.
	rowStart := make([]int, rows+1)
	for r := 0; r < rows; r++ {
		acc := rowStart[r]
		for c := 0; c < nRanges; c++ {
			k := counts[c][r]
			counts[c][r] = acc
			acc += k
		}
		rowStart[r+1] = acc
	}

	// Pass 2: scatter into row buckets. Each range owns disjoint cursor state,
	// and within a bucket entries end up in global input order.
	bufCol := make([]int, n)
	bufVal := make([]float64, n)
	par.For(nRanges, workers, func(c int) {
		lo := c * rangeSize
		hi := lo + rangeSize
		if hi > n {
			hi = n
		}
		cur := counts[c]
		for i := lo; i < hi; i++ {
			t := entries[i]
			dst := cur[t.Row]
			cur[t.Row]++
			bufCol[dst] = t.Col
			bufVal[dst] = t.Val
		}
	})

	// Pass 3: per-row stable column sort + duplicate counting. Rows are
	// independent, so any row partitioning yields the same result.
	uniq := make([]int, rows)
	par.ForChunks(rows, csrScatterChunk, workers, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			s, e := rowStart[r], rowStart[r+1]
			if s == e {
				continue
			}
			sort.Stable(colValSorter{col: bufCol[s:e], val: bufVal[s:e]})
			u := 1
			for i := s + 1; i < e; i++ {
				if bufCol[i] != bufCol[i-1] {
					u++
				}
			}
			uniq[r] = u
		}
	})
	for r := 0; r < rows; r++ {
		m.RowPtr[r+1] = m.RowPtr[r] + uniq[r]
	}

	// Pass 4: compact duplicate runs (summed in the stable order) into the
	// final arrays.
	nnz := m.RowPtr[rows]
	m.ColIdx = make([]int, nnz)
	m.Val = make([]float64, nnz)
	par.ForChunks(rows, csrScatterChunk, workers, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			s, e := rowStart[r], rowStart[r+1]
			out := m.RowPtr[r]
			for i := s; i < e; {
				j := i + 1
				v := bufVal[i]
				for j < e && bufCol[j] == bufCol[i] {
					v += bufVal[j]
					j++
				}
				m.ColIdx[out] = bufCol[i]
				m.Val[out] = v
				out++
				i = j
			}
		}
	})
	return m
}

// Reshape prepares m for in-place assembly as a rows×cols matrix: RowPtr is
// resized to rows+1 (reusing its backing array when it has capacity) and left
// with unspecified contents. The caller fills RowPtr as a prefix sum over row
// lengths, calls GrowNNZ, then fills ColIdx/Val. This is the buffer-reuse
// entry point for engines that assemble a CSR every round without paying
// NewCSRPar's scatter passes and their per-range rows-sized histograms.
func (m *CSR) Reshape(rows, cols int) {
	m.Rows, m.Cols = rows, cols
	if cap(m.RowPtr) < rows+1 {
		m.RowPtr = make([]int, rows+1)
	} else {
		m.RowPtr = m.RowPtr[:rows+1]
	}
}

// GrowNNZ sizes ColIdx and Val for the entry count a filled RowPtr announces
// (RowPtr[Rows]), reusing backing arrays when they have capacity. Contents
// are unspecified; the caller overwrites every entry.
func (m *CSR) GrowNNZ() {
	nnz := m.RowPtr[m.Rows]
	if cap(m.ColIdx) < nnz {
		m.ColIdx = make([]int, nnz)
	} else {
		m.ColIdx = m.ColIdx[:nnz]
	}
	if cap(m.Val) < nnz {
		m.Val = make([]float64, nnz)
	} else {
		m.Val = m.Val[:nnz]
	}
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// RowNNZ returns the number of stored entries in row i.
func (m *CSR) RowNNZ(i int) int { return m.RowPtr[i+1] - m.RowPtr[i] }

// MulDense returns m·x as a new dense matrix (m is r×c, x is c×n).
func (m *CSR) MulDense(x *Matrix) *Matrix {
	out := New(m.Rows, x.Cols)
	m.MulDenseInto(out, x)
	return out
}

// MulDenseInto computes dst = m·x, reusing dst's storage.
func (m *CSR) MulDenseInto(dst, x *Matrix) {
	if m.Cols != x.Rows || dst.Rows != m.Rows || dst.Cols != x.Cols {
		panic(fmt.Sprintf("tensor: CSR MulDenseInto %dx%d = %dx%d · %dx%d",
			dst.Rows, dst.Cols, m.Rows, m.Cols, x.Rows, x.Cols))
	}
	dst.Zero()
	for i := 0; i < m.Rows; i++ {
		drow := dst.Row(i)
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			Axpy(m.Val[p], x.Row(m.ColIdx[p]), drow)
		}
	}
}

// MulDenseTInto computes dst = mᵀ·x (m is r×c, x is r×n, dst c×n). Used for
// backpropagation through asymmetric propagation operators.
func (m *CSR) MulDenseTInto(dst, x *Matrix) {
	if m.Rows != x.Rows || dst.Rows != m.Cols || dst.Cols != x.Cols {
		panic(fmt.Sprintf("tensor: CSR MulDenseTInto %dx%d = (%dx%d)ᵀ · %dx%d",
			dst.Rows, dst.Cols, m.Rows, m.Cols, x.Rows, x.Cols))
	}
	dst.Zero()
	for i := 0; i < m.Rows; i++ {
		xrow := x.Row(i)
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			Axpy(m.Val[p], xrow, dst.Row(m.ColIdx[p]))
		}
	}
}

// At returns the value at (i, j), 0 if not stored. O(log nnz(row)).
func (m *CSR) At(i, j int) float64 {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	idx := sort.SearchInts(m.ColIdx[lo:hi], j)
	if idx < hi-lo && m.ColIdx[lo+idx] == j {
		return m.Val[lo+idx]
	}
	return 0
}

// Dense expands the sparse matrix into a dense one (tests and debugging).
func (m *CSR) Dense() *Matrix {
	out := New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			out.Set(i, m.ColIdx[p], m.Val[p])
		}
	}
	return out
}
