package tensor

import (
	"fmt"
	"sort"
)

// Triplet is one non-zero entry of a sparse matrix under construction.
type Triplet struct {
	Row, Col int
	Val      float64
}

// CSR is a compressed sparse row matrix. It is immutable after construction;
// the graph recommenders build one normalized adjacency per round and reuse it
// for every propagation.
type CSR struct {
	Rows, Cols int
	RowPtr     []int     // len Rows+1
	ColIdx     []int     // len NNZ
	Val        []float64 // len NNZ
}

// NewCSR builds a CSR matrix from triplets. Duplicate (row, col) entries are
// summed. The triplet slice is not retained.
func NewCSR(rows, cols int, entries []Triplet) *CSR {
	for _, t := range entries {
		if t.Row < 0 || t.Row >= rows || t.Col < 0 || t.Col >= cols {
			panic(fmt.Sprintf("tensor: CSR entry (%d,%d) outside %dx%d", t.Row, t.Col, rows, cols))
		}
	}
	sorted := make([]Triplet, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	m := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int, rows+1)}
	for i := 0; i < len(sorted); {
		j := i + 1
		v := sorted[i].Val
		for j < len(sorted) && sorted[j].Row == sorted[i].Row && sorted[j].Col == sorted[i].Col {
			v += sorted[j].Val
			j = j + 1
		}
		m.ColIdx = append(m.ColIdx, sorted[i].Col)
		m.Val = append(m.Val, v)
		m.RowPtr[sorted[i].Row+1]++
		i = j
	}
	for r := 0; r < rows; r++ {
		m.RowPtr[r+1] += m.RowPtr[r]
	}
	return m
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// RowNNZ returns the number of stored entries in row i.
func (m *CSR) RowNNZ(i int) int { return m.RowPtr[i+1] - m.RowPtr[i] }

// MulDense returns m·x as a new dense matrix (m is r×c, x is c×n).
func (m *CSR) MulDense(x *Matrix) *Matrix {
	out := New(m.Rows, x.Cols)
	m.MulDenseInto(out, x)
	return out
}

// MulDenseInto computes dst = m·x, reusing dst's storage.
func (m *CSR) MulDenseInto(dst, x *Matrix) {
	if m.Cols != x.Rows || dst.Rows != m.Rows || dst.Cols != x.Cols {
		panic(fmt.Sprintf("tensor: CSR MulDenseInto %dx%d = %dx%d · %dx%d",
			dst.Rows, dst.Cols, m.Rows, m.Cols, x.Rows, x.Cols))
	}
	dst.Zero()
	for i := 0; i < m.Rows; i++ {
		drow := dst.Row(i)
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			Axpy(m.Val[p], x.Row(m.ColIdx[p]), drow)
		}
	}
}

// MulDenseTInto computes dst = mᵀ·x (m is r×c, x is r×n, dst c×n). Used for
// backpropagation through asymmetric propagation operators.
func (m *CSR) MulDenseTInto(dst, x *Matrix) {
	if m.Rows != x.Rows || dst.Rows != m.Cols || dst.Cols != x.Cols {
		panic(fmt.Sprintf("tensor: CSR MulDenseTInto %dx%d = (%dx%d)ᵀ · %dx%d",
			dst.Rows, dst.Cols, m.Rows, m.Cols, x.Rows, x.Cols))
	}
	dst.Zero()
	for i := 0; i < m.Rows; i++ {
		xrow := x.Row(i)
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			Axpy(m.Val[p], xrow, dst.Row(m.ColIdx[p]))
		}
	}
}

// At returns the value at (i, j), 0 if not stored. O(log nnz(row)).
func (m *CSR) At(i, j int) float64 {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	idx := sort.SearchInts(m.ColIdx[lo:hi], j)
	if idx < hi-lo && m.ColIdx[lo+idx] == j {
		return m.Val[lo+idx]
	}
	return 0
}

// Dense expands the sparse matrix into a dense one (tests and debugging).
func (m *CSR) Dense() *Matrix {
	out := New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			out.Set(i, m.ColIdx[p], m.Val[p])
		}
	}
	return out
}
