package tensor

import "math"

// Dot returns the inner product of a and b. The slices must have equal length.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("tensor: Dot length mismatch")
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes y += a*x in place.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("tensor: Axpy length mismatch")
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// ScaleVec multiplies x by a in place.
func ScaleVec(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// AddVec computes y += x in place.
func AddVec(x, y []float64) {
	if len(x) != len(y) {
		panic("tensor: AddVec length mismatch")
	}
	for i, v := range x {
		y[i] += v
	}
}

// MulVec computes y[i] *= x[i] in place.
func MulVec(x, y []float64) {
	if len(x) != len(y) {
		panic("tensor: MulVec length mismatch")
	}
	for i, v := range x {
		y[i] *= v
	}
}

// NormVec returns the Euclidean norm of x.
func NormVec(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// SumVec returns the sum of the elements of x.
func SumVec(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// ZeroVec sets every element of x to 0.
func ZeroVec(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// CloneVec returns a copy of x.
func CloneVec(x []float64) []float64 {
	c := make([]float64, len(x))
	copy(c, x)
	return c
}
