// Package tensor provides the dense and sparse linear algebra used by every
// model in the repository. Matrices are row-major float64 slices; the sparse
// type is a CSR matrix specialised for the symmetric normalized adjacencies
// used by the graph recommenders.
//
// The package is deliberately small: it implements exactly the operations the
// hand-derived backpropagation in internal/models needs, with shape checks
// that panic on programmer error (mismatched dimensions are bugs, not runtime
// conditions).
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (row-major, length rows*cols) in a Matrix without
// copying.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice got %d values for %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set stores v at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets every element to 0 in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v in place.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Scale multiplies every element by a in place and returns m.
func (m *Matrix) Scale(a float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= a
	}
	return m
}

// AddInPlace adds b element-wise into m and returns m.
func (m *Matrix) AddInPlace(b *Matrix) *Matrix {
	m.sameShape(b, "AddInPlace")
	for i, v := range b.Data {
		m.Data[i] += v
	}
	return m
}

// AddScaled adds a*b element-wise into m and returns m.
func (m *Matrix) AddScaled(a float64, b *Matrix) *Matrix {
	m.sameShape(b, "AddScaled")
	for i, v := range b.Data {
		m.Data[i] += a * v
	}
	return m
}

// SubInPlace subtracts b element-wise from m and returns m.
func (m *Matrix) SubInPlace(b *Matrix) *Matrix {
	m.sameShape(b, "SubInPlace")
	for i, v := range b.Data {
		m.Data[i] -= v
	}
	return m
}

// Hadamard returns the element-wise product a ⊙ b as a new matrix.
func Hadamard(a, b *Matrix) *Matrix {
	a.sameShape(b, "Hadamard")
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// HadamardInto computes dst = a ⊙ b, reusing dst's storage.
func HadamardInto(dst, a, b *Matrix) {
	a.sameShape(b, "HadamardInto")
	dst.sameShape(a, "HadamardInto dst")
	for i := range a.Data {
		dst.Data[i] = a.Data[i] * b.Data[i]
	}
}

// MatMul returns a·b as a new matrix.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes dst = a·b, reusing dst's storage.
func MatMulInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulInto %dx%d = %dx%d · %dx%d",
			dst.Rows, dst.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	dst.Zero()
	// ikj loop order: stream through b's rows for cache friendliness.
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k := 0; k < a.Cols; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulATB returns aᵀ·b as a new matrix (a is rows×m, b is rows×n, result m×n).
func MatMulATB(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulATB %dx%d ᵀ· %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Cols, b.Cols)
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Row(i)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulABT returns a·bᵀ as a new matrix (a is m×k, b is n×k, result m×n).
func MatMulABT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulABT %dx%d · %dx%d ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			orow[j] = Dot(arow, b.Row(j))
		}
	}
	return out
}

// Transpose returns mᵀ as a new matrix.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Norm returns the Frobenius norm of m.
func (m *Matrix) Norm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute element value.
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Apply replaces each element x with f(x) in place and returns m.
func (m *Matrix) Apply(f func(float64) float64) *Matrix {
	for i, v := range m.Data {
		m.Data[i] = f(v)
	}
	return m
}

// ConcatCols returns [a | b] — the horizontal concatenation of a and b.
func ConcatCols(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: ConcatCols %dx%d | %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, a.Cols+b.Cols)
	for i := 0; i < a.Rows; i++ {
		copy(out.Row(i)[:a.Cols], a.Row(i))
		copy(out.Row(i)[a.Cols:], b.Row(i))
	}
	return out
}

func (m *Matrix) sameShape(b *Matrix, op string) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, b.Rows, b.Cols))
	}
}
