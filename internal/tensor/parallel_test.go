package tensor

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomTriplets builds a triplet set with deliberate duplicates so the
// stable summation order is exercised.
func randomTriplets(r *rand.Rand, rows, cols, n int) []Triplet {
	trips := make([]Triplet, n)
	for i := range trips {
		trips[i] = Triplet{Row: r.Intn(rows), Col: r.Intn(cols), Val: r.NormFloat64()}
	}
	return trips
}

func requireSameCSR(t *testing.T, label string, a, b *CSR) {
	t.Helper()
	if !reflect.DeepEqual(a.RowPtr, b.RowPtr) || !reflect.DeepEqual(a.ColIdx, b.ColIdx) {
		t.Fatalf("%s: CSR structure differs", label)
	}
	for i := range a.Val {
		if a.Val[i] != b.Val[i] {
			t.Fatalf("%s: Val[%d] = %v vs %v", label, i, a.Val[i], b.Val[i])
		}
	}
}

// TestNewCSRParWorkerInvariance pins the construction contract: the CSR built
// from the same triplets is bitwise-identical for every worker count, with a
// triplet count spanning several scatter chunks.
func TestNewCSRParWorkerInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	const rows, cols = 230, 190
	trips := randomTriplets(r, rows, cols, 3*csrScatterChunk+511)
	serial := NewCSR(rows, cols, trips)
	for _, workers := range []int{2, 3, 8} {
		requireSameCSR(t, "workers", serial, NewCSRPar(rows, cols, trips, workers))
	}
	// And the result must be the mathematically correct matrix.
	dense := New(rows, cols)
	for _, tr := range trips {
		dense.Set(tr.Row, tr.Col, dense.At(tr.Row, tr.Col)+tr.Val)
	}
	got := serial.Dense()
	for i := range dense.Data {
		if diff := got.Data[i] - dense.Data[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("CSR[%d] = %v, dense accumulation = %v", i, got.Data[i], dense.Data[i])
		}
	}
}

// TestNewCSRParStableDuplicates checks that duplicate (row, col) values sum
// in input order for any worker count — the documented semantics.
func TestNewCSRParStableDuplicates(t *testing.T) {
	trips := []Triplet{
		{0, 0, 1e20}, {0, 0, 1}, {0, 0, -1e20}, // order-sensitive sum
		{1, 2, 0.5}, {1, 2, 0.25},
	}
	serial := NewCSR(3, 3, trips)
	for _, workers := range []int{2, 4} {
		requireSameCSR(t, "duplicates", serial, NewCSRPar(3, 3, trips, workers))
	}
	// Input-order association: (1e20 + 1) absorbs the 1, then cancels to 0.
	if serial.At(0, 0) != 0 {
		t.Fatalf("At(0,0) = %v, want input-order sum 0", serial.At(0, 0))
	}
}

// TestNewCSRParCappedRanges drives the input past csrScatterChunk ×
// csrMaxRanges so the adaptive range sizing kicks in, and checks the output
// still matches the small-input partitioning.
func TestNewCSRParCappedRanges(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	const rows, cols = 60, 45
	trips := randomTriplets(r, rows, cols, csrScatterChunk*csrMaxRanges+12345)
	serial := NewCSR(rows, cols, trips)
	for _, workers := range []int{2, 8} {
		requireSameCSR(t, "capped ranges", serial, NewCSRPar(rows, cols, trips, workers))
	}
}

func TestNewCSRParOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range triplet did not panic")
		}
	}()
	NewCSRPar(2, 2, []Triplet{{0, 0, 1}, {5, 0, 1}}, 4)
}

// TestParKernelsMatchSerial pins the row-partitioned kernels' bitwise
// equality with their serial counterparts.
func TestParKernelsMatchSerial(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	const n, m, k = 300, 70, 9
	sp := NewCSR(n, m, randomTriplets(r, n, m, 2500))
	x := New(m, k)
	for i := range x.Data {
		x.Data[i] = r.NormFloat64()
	}
	a := New(n, k)
	c := New(12, k)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
	}
	for i := range c.Data {
		c.Data[i] = r.NormFloat64()
	}

	for _, workers := range []int{2, 8} {
		if !reflect.DeepEqual(sp.MulDense(x).Data, sp.MulDensePar(x, workers).Data) {
			t.Fatalf("MulDensePar(%d) differs from serial", workers)
		}
		if !reflect.DeepEqual(MatMul(a, x.Transpose()).Data, MatMulPar(a, x.Transpose(), workers).Data) {
			t.Fatalf("MatMulPar(%d) differs from serial", workers)
		}
		if !reflect.DeepEqual(MatMulABT(a, c).Data, MatMulABTPar(a, c, workers).Data) {
			t.Fatalf("MatMulABTPar(%d) differs from serial", workers)
		}
	}
}

// TestMatMulATBParWorkerInvariance pins ATB's chunked-reduction contract: the
// result is identical for every worker count (including 1) once the leading
// dimension spans multiple shards.
func TestMatMulATBParWorkerInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	rows := 2*atbChunkRows + 77
	a := New(rows, 6)
	b := New(rows, 4)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
	}
	for i := range b.Data {
		b.Data[i] = r.NormFloat64()
	}
	ref := MatMulATBPar(a, b, 1)
	for _, workers := range []int{2, 3, 8} {
		got := MatMulATBPar(a, b, workers)
		if !reflect.DeepEqual(ref.Data, got.Data) {
			t.Fatalf("MatMulATBPar(%d) differs from workers=1", workers)
		}
	}
	// Against the serial kernel the chunked reduction is equal up to float
	// association only.
	serial := MatMulATB(a, b)
	for i := range serial.Data {
		if diff := serial.Data[i] - ref.Data[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("ATB[%d] = %v, serial %v", i, ref.Data[i], serial.Data[i])
		}
	}
}
