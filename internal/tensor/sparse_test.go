package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestCSRBasic(t *testing.T) {
	m := NewCSR(3, 3, []Triplet{
		{0, 1, 2}, {1, 0, 3}, {2, 2, 1}, {0, 1, 1}, // duplicate (0,1) sums to 3
	})
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d", m.NNZ())
	}
	if m.At(0, 1) != 3 {
		t.Fatalf("At(0,1) = %v", m.At(0, 1))
	}
	if m.At(0, 0) != 0 {
		t.Fatalf("At(0,0) = %v", m.At(0, 0))
	}
	if m.RowNNZ(0) != 1 || m.RowNNZ(1) != 1 || m.RowNNZ(2) != 1 {
		t.Fatal("RowNNZ wrong")
	}
}

func TestCSROutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range triplet did not panic")
		}
	}()
	NewCSR(2, 2, []Triplet{{2, 0, 1}})
}

func TestCSRMulDenseMatchesDense(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const n, m, k = 13, 9, 5
	var trips []Triplet
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if r.Float64() < 0.3 {
				trips = append(trips, Triplet{i, j, r.NormFloat64()})
			}
		}
	}
	sp := NewCSR(n, m, trips)
	x := New(m, k)
	for i := range x.Data {
		x.Data[i] = r.NormFloat64()
	}
	got := sp.MulDense(x)
	want := MatMul(sp.Dense(), x)
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-10 {
			t.Fatalf("MulDense[%d] = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestCSRMulDenseTMatchesTranspose(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	const n, m, k = 8, 12, 4
	var trips []Triplet
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if r.Float64() < 0.25 {
				trips = append(trips, Triplet{i, j, r.NormFloat64()})
			}
		}
	}
	sp := NewCSR(n, m, trips)
	x := New(n, k)
	for i := range x.Data {
		x.Data[i] = r.NormFloat64()
	}
	got := New(m, k)
	sp.MulDenseTInto(got, x)
	want := MatMul(sp.Dense().Transpose(), x)
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-10 {
			t.Fatalf("MulDenseT[%d] = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestCSREmptyRows(t *testing.T) {
	m := NewCSR(4, 4, []Triplet{{1, 1, 5}})
	x := New(4, 2)
	x.Fill(1)
	out := m.MulDense(x)
	if out.At(0, 0) != 0 || out.At(1, 0) != 5 || out.At(3, 1) != 0 {
		t.Fatalf("empty-row MulDense -> %v", out.Data)
	}
}

func TestCSRNoEntries(t *testing.T) {
	m := NewCSR(3, 3, nil)
	if m.NNZ() != 0 {
		t.Fatal("expected empty CSR")
	}
	out := m.MulDense(New(3, 1))
	if out.Norm() != 0 {
		t.Fatal("empty CSR should produce zero product")
	}
}
