package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("New(3,4) = %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("element %d not zero: %v", i, v)
		}
	}
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v", got)
	}
	row := m.Row(1)
	if row[2] != 7.5 {
		t.Fatalf("Row(1)[2] = %v", row[2])
	}
	row[0] = 3 // Row aliases storage.
	if m.At(1, 0) != 3 {
		t.Fatal("Row does not alias storage")
	}
}

func TestFromSlice(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 2, 3, 4})
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %v", m.At(1, 0))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice(2, 2, []float64{1})
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if !almostEq(c.Data[i], w) {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched MatMul did not panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestMatMulATBMatchesExplicitTranspose(t *testing.T) {
	a := FromSlice(3, 2, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{-1, 0.5, 2, -2, 0, 1})
	got := MatMulATB(a, b)
	want := MatMul(a.Transpose(), b)
	for i := range want.Data {
		if !almostEq(got.Data[i], want.Data[i]) {
			t.Fatalf("ATB[%d] = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestMatMulABTMatchesExplicitTranspose(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(4, 3, []float64{1, 0, -1, 2, 2, 2, 0, 1, 0, -3, 1, 5})
	got := MatMulABT(a, b)
	want := MatMul(a, b.Transpose())
	for i := range want.Data {
		if !almostEq(got.Data[i], want.Data[i]) {
			t.Fatalf("ABT[%d] = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(vals [12]float64) bool {
		m := FromSlice(3, 4, vals[:])
		tt := m.Transpose().Transpose()
		for i := range m.Data {
			if m.Data[i] != tt.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddScaleSub(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{4, 3, 2, 1})
	a.AddInPlace(b)
	for _, v := range a.Data {
		if v != 5 {
			t.Fatalf("AddInPlace -> %v", a.Data)
		}
	}
	a.Scale(2)
	if a.At(0, 0) != 10 {
		t.Fatalf("Scale -> %v", a.Data)
	}
	a.SubInPlace(b)
	if a.At(0, 0) != 6 || a.At(1, 1) != 9 {
		t.Fatalf("SubInPlace -> %v", a.Data)
	}
	a.AddScaled(0.5, b)
	if a.At(0, 0) != 8 {
		t.Fatalf("AddScaled -> %v", a.Data)
	}
}

func TestHadamard(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{2, 2, 2, 2})
	c := Hadamard(a, b)
	want := []float64{2, 4, 6, 8}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("Hadamard[%d] = %v", i, c.Data[i])
		}
	}
	dst := New(2, 2)
	HadamardInto(dst, a, b)
	for i, w := range want {
		if dst.Data[i] != w {
			t.Fatalf("HadamardInto[%d] = %v", i, dst.Data[i])
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	a := FromSlice(1, 2, []float64{1, 2})
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestNormAndMaxAbs(t *testing.T) {
	m := FromSlice(1, 2, []float64{3, -4})
	if !almostEq(m.Norm(), 5) {
		t.Fatalf("Norm = %v", m.Norm())
	}
	if m.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
}

func TestApplyAndFill(t *testing.T) {
	m := New(2, 2)
	m.Fill(4)
	m.Apply(math.Sqrt)
	for _, v := range m.Data {
		if v != 2 {
			t.Fatalf("Apply -> %v", m.Data)
		}
	}
}

func TestConcatCols(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 1, []float64{9, 8})
	c := ConcatCols(a, b)
	if c.Cols != 3 || c.At(0, 2) != 9 || c.At(1, 2) != 8 || c.At(1, 1) != 4 {
		t.Fatalf("ConcatCols -> %v", c.Data)
	}
}

func TestVectorOps(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Fatalf("Dot = %v", Dot(a, b))
	}
	y := CloneVec(b)
	Axpy(2, a, y)
	if y[0] != 6 || y[2] != 12 {
		t.Fatalf("Axpy -> %v", y)
	}
	ScaleVec(0.5, y)
	if y[0] != 3 {
		t.Fatalf("ScaleVec -> %v", y)
	}
	AddVec(a, y)
	if y[0] != 4 {
		t.Fatalf("AddVec -> %v", y)
	}
	MulVec(a, y)
	if y[2] != 27 {
		t.Fatalf("MulVec -> %v", y)
	}
	if !almostEq(NormVec([]float64{3, 4}), 5) {
		t.Fatal("NormVec")
	}
	if SumVec(a) != 6 {
		t.Fatal("SumVec")
	}
	ZeroVec(y)
	if y[0] != 0 || y[1] != 0 {
		t.Fatal("ZeroVec")
	}
}

func TestMatMulAssociativityProperty(t *testing.T) {
	// (AB)C == A(BC) up to floating point noise.
	f := func(av, bv, cv [4]float64) bool {
		a := FromSlice(2, 2, av[:])
		b := FromSlice(2, 2, bv[:])
		c := FromSlice(2, 2, cv[:])
		l := MatMul(MatMul(a, b), c)
		r := MatMul(a, MatMul(b, c))
		for i := range l.Data {
			diff := math.Abs(l.Data[i] - r.Data[i])
			scale := math.Max(1, math.Max(math.Abs(l.Data[i]), math.Abs(r.Data[i])))
			if diff/scale > 1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
