package tensor

// This file holds the multi-user gather-GEMM kernels behind the batched
// dispersal engine (models.MultiBlockScorer): a block of query rows gathered
// from one matrix is scored against a block of candidate rows gathered from
// another, producing a dense query×candidate score matrix in one pass.
//
// Determinism contract: every output element is a single dot product
// accumulated in Dot's k-ascending order, so a multi-user GEMM score is
// bitwise-identical to the per-user GEMV (and per-item dot loop) it replaces.
// The kernels interleave four independent query accumulators per candidate
// row — four separate dependency chains hide floating-point add latency and
// each candidate row is loaded once per four queries — which changes neither
// any element's accumulation order nor the result.

import "fmt"

func checkGatherMat(dst *Matrix, a *Matrix, arows []int, b *Matrix, brows []int) {
	if dst.Rows != len(arows) || dst.Cols != len(brows) {
		panic(fmt.Sprintf("tensor: GatherMulMatInto dst %dx%d for %d×%d gathered rows",
			dst.Rows, dst.Cols, len(arows), len(brows)))
	}
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: GatherMulMatInto inner dims %d vs %d", a.Cols, b.Cols))
	}
}

// GatherMulMatInto computes the double-gathered GEMM
//
//	dst.Row(i)[j] = a.Row(arows[i]+aoff) · b.Row(brows[j]+boff)
//
// — every gathered query row of a scored against every gathered candidate row
// of b, with no intermediate gather matrices materialised. dst must be
// len(arows) × len(brows).
func GatherMulMatInto(dst *Matrix, a *Matrix, arows []int, aoff int, b *Matrix, brows []int, boff int) {
	checkGatherMat(dst, a, arows, b, brows)
	gatherMulMatRange(dst, a, arows, aoff, b, brows, boff, 0, len(brows), false)
}

// GatherMulMatAddInto is GatherMulMatInto accumulating into dst:
// dst.Row(i)[j] += a.Row(arows[i]+aoff)·b.Row(brows[j]+boff). Used by
// readouts that sum dot products over several embedding matrices (NGCF's
// layer concatenation).
func GatherMulMatAddInto(dst *Matrix, a *Matrix, arows []int, aoff int, b *Matrix, brows []int, boff int) {
	checkGatherMat(dst, a, arows, b, brows)
	gatherMulMatRange(dst, a, arows, aoff, b, brows, boff, 0, len(brows), true)
}

// gatherMulMatRange computes the kernel restricted to candidate columns
// [jlo, jhi). Each output element is written (or accumulated into) by exactly
// this call, with the dot running k-ascending — the partitioning is a
// scheduling choice that cannot change any value.
func gatherMulMatRange(dst *Matrix, a *Matrix, arows []int, aoff int, b *Matrix, brows []int, boff int, jlo, jhi int, add bool) {
	d := a.Cols
	i := 0
	for ; i+4 <= len(arows); i += 4 {
		// Reslicing every row to the shared inner length d lets the compiler
		// drop the per-element bounds checks (checkGatherMat guarantees
		// a.Cols == b.Cols; the reslices are free). The 4-query × 2-candidate
		// register block runs eight independent accumulator chains — enough
		// to hide FP-add latency — and loads each candidate row once per four
		// queries; none of it changes any element's k-ascending sum.
		r0 := a.Row(arows[i] + aoff)[:d]
		r1 := a.Row(arows[i+1] + aoff)[:d]
		r2 := a.Row(arows[i+2] + aoff)[:d]
		r3 := a.Row(arows[i+3] + aoff)[:d]
		d0, d1, d2, d3 := dst.Row(i), dst.Row(i+1), dst.Row(i+2), dst.Row(i+3)
		j := jlo
		for ; j+2 <= jhi; j += 2 {
			qa := b.Row(brows[j] + boff)[:d]
			qb := b.Row(brows[j+1] + boff)[:d]
			var s0a, s1a, s2a, s3a, s0b, s1b, s2b, s3b float64
			for k := 0; k < d; k++ {
				av, bv := qa[k], qb[k]
				s0a += r0[k] * av
				s1a += r1[k] * av
				s2a += r2[k] * av
				s3a += r3[k] * av
				s0b += r0[k] * bv
				s1b += r1[k] * bv
				s2b += r2[k] * bv
				s3b += r3[k] * bv
			}
			if add {
				d0[j] += s0a
				d1[j] += s1a
				d2[j] += s2a
				d3[j] += s3a
				d0[j+1] += s0b
				d1[j+1] += s1b
				d2[j+1] += s2b
				d3[j+1] += s3b
			} else {
				d0[j], d1[j], d2[j], d3[j] = s0a, s1a, s2a, s3a
				d0[j+1], d1[j+1], d2[j+1], d3[j+1] = s0b, s1b, s2b, s3b
			}
		}
		for ; j < jhi; j++ {
			q := b.Row(brows[j] + boff)[:d]
			var s0, s1, s2, s3 float64
			for k, qv := range q {
				s0 += r0[k] * qv
				s1 += r1[k] * qv
				s2 += r2[k] * qv
				s3 += r3[k] * qv
			}
			if add {
				d0[j] += s0
				d1[j] += s1
				d2[j] += s2
				d3[j] += s3
			} else {
				d0[j], d1[j], d2[j], d3[j] = s0, s1, s2, s3
			}
		}
	}
	for ; i < len(arows); i++ {
		r := a.Row(arows[i] + aoff)
		d := dst.Row(i)
		for j := jlo; j < jhi; j++ {
			s := Dot(r, b.Row(brows[j]+boff))
			if add {
				d[j] += s
			} else {
				d[j] = s
			}
		}
	}
}

func checkGatherPair(dst []float64, a *Matrix, arows []int, b *Matrix, brows []int) {
	if len(dst) != len(arows) || len(arows) != len(brows) {
		panic(fmt.Sprintf("tensor: GatherPairDotInto dst[%d] for %d×%d pairs",
			len(dst), len(arows), len(brows)))
	}
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: GatherPairDotInto inner dims %d vs %d", a.Cols, b.Cols))
	}
}

// GatherPairDotInto computes the element-wise gathered pair products
//
//	dst[p] = a.Row(arows[p]+aoff) · b.Row(brows[p]+boff)
//
// — the ragged counterpart of GatherMulMatInto, scoring many (query,
// candidate) pairs with arbitrary per-pair rows in one pass. Four pair
// accumulators run interleaved; each pair's dot still accumulates
// k-ascending, so results are bitwise-identical to per-pair Dot calls.
func GatherPairDotInto(dst []float64, a *Matrix, arows []int, aoff int, b *Matrix, brows []int, boff int) {
	checkGatherPair(dst, a, arows, b, brows)
	gatherPairDotRange(dst, a, arows, aoff, b, brows, boff, false)
}

// GatherPairDotAddInto is GatherPairDotInto accumulating into dst. Used by
// readouts that sum pair dots over several embedding matrices (NGCF's layer
// concatenation).
func GatherPairDotAddInto(dst []float64, a *Matrix, arows []int, aoff int, b *Matrix, brows []int, boff int) {
	checkGatherPair(dst, a, arows, b, brows)
	gatherPairDotRange(dst, a, arows, aoff, b, brows, boff, true)
}

func gatherPairDotRange(dst []float64, a *Matrix, arows []int, aoff int, b *Matrix, brows []int, boff int, add bool) {
	d := a.Cols
	p := 0
	for ; p+4 <= len(arows); p += 4 {
		// Reslicing every row to the shared inner length d lets the compiler
		// drop the per-element bounds checks; the four pair accumulators then
		// run as independent dependency chains in one fused k loop.
		a0 := a.Row(arows[p] + aoff)[:d]
		a1 := a.Row(arows[p+1] + aoff)[:d]
		a2 := a.Row(arows[p+2] + aoff)[:d]
		a3 := a.Row(arows[p+3] + aoff)[:d]
		b0 := b.Row(brows[p] + boff)[:d]
		b1 := b.Row(brows[p+1] + boff)[:d]
		b2 := b.Row(brows[p+2] + boff)[:d]
		b3 := b.Row(brows[p+3] + boff)[:d]
		var s0, s1, s2, s3 float64
		for k := 0; k < d; k++ {
			s0 += a0[k] * b0[k]
			s1 += a1[k] * b1[k]
			s2 += a2[k] * b2[k]
			s3 += a3[k] * b3[k]
		}
		if add {
			dst[p] += s0
			dst[p+1] += s1
			dst[p+2] += s2
			dst[p+3] += s3
		} else {
			dst[p], dst[p+1], dst[p+2], dst[p+3] = s0, s1, s2, s3
		}
	}
	for ; p < len(arows); p++ {
		s := Dot(a.Row(arows[p]+aoff), b.Row(brows[p]+boff))
		if add {
			dst[p] += s
		} else {
			dst[p] = s
		}
	}
}

// gemvParMinRows is the output length below which the parallel GEMV/GEMM
// variants stay serial: shorter candidate lists finish faster than the pool
// handoff costs, and the dispersal/eval hot loops already run on an outer
// worker pool. Purely a scheduling threshold — the Par kernels are
// bitwise-identical to their serial forms at any length and worker count. A
// var so tests can shrink it to force the parallel path on small inputs.
var gemvParMinRows = 16384

// gemvParChunk is the row-range granularity of the parallel GEMV variants.
const gemvParChunk = 4096
