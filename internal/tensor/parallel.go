package tensor

// This file holds parallel variants of the hot linear-algebra kernels. Every
// function here keeps a determinism contract: results are bitwise-identical
// for every worker count, either because each output row is produced by
// exactly one goroutine with the serial inner-loop order (row-partitioned
// kernels), or because the reduction runs over fixed-size chunks merged in
// chunk order (MatMulATBPar).

import (
	"fmt"

	"ptffedrec/internal/par"
)

// parRowChunk is the row-range granularity of the row-partitioned kernels:
// coarse enough that the worker pool's atomic counter is off the hot path,
// fine enough to balance skewed row costs (e.g. popular items in an
// adjacency). Purely a scheduling knob — it never affects results.
const parRowChunk = 128

// atbChunkRows is the fixed row-shard width of MatMulATBPar's ordered
// reduction. It is a semantic constant: changing it changes the float
// association of the result, so it must not depend on the worker count.
const atbChunkRows = 1024

// MulDenseIntoPar computes dst = m·x like MulDenseInto, sharding dst's rows
// over workers. Bitwise-identical to MulDenseInto for every worker count.
func (m *CSR) MulDenseIntoPar(dst, x *Matrix, workers int) {
	if workers <= 1 {
		m.MulDenseInto(dst, x)
		return
	}
	if m.Cols != x.Rows || dst.Rows != m.Rows || dst.Cols != x.Cols {
		panic(fmt.Sprintf("tensor: CSR MulDenseIntoPar %dx%d = %dx%d · %dx%d",
			dst.Rows, dst.Cols, m.Rows, m.Cols, x.Rows, x.Cols))
	}
	par.ForChunks(m.Rows, parRowChunk, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			drow := dst.Row(i)
			for k := range drow {
				drow[k] = 0
			}
			for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
				Axpy(m.Val[p], x.Row(m.ColIdx[p]), drow)
			}
		}
	})
}

// MulDensePar returns m·x as a new matrix, computed with MulDenseIntoPar.
func (m *CSR) MulDensePar(x *Matrix, workers int) *Matrix {
	out := New(m.Rows, x.Cols)
	m.MulDenseIntoPar(out, x, workers)
	return out
}

// MatMulIntoPar computes dst = a·b like MatMulInto, sharding dst's rows over
// workers. Bitwise-identical to MatMulInto for every worker count.
func MatMulIntoPar(dst, a, b *Matrix, workers int) {
	if workers <= 1 {
		MatMulInto(dst, a, b)
		return
	}
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulIntoPar %dx%d = %dx%d · %dx%d",
			dst.Rows, dst.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	par.ForChunks(a.Rows, parRowChunk, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			drow := dst.Row(i)
			for k := range drow {
				drow[k] = 0
			}
			for k := 0; k < a.Cols; k++ {
				av := arow[k]
				if av == 0 {
					continue
				}
				brow := b.Row(k)
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
	})
}

// MatMulPar returns a·b as a new matrix, computed with MatMulIntoPar.
func MatMulPar(a, b *Matrix, workers int) *Matrix {
	out := New(a.Rows, b.Cols)
	MatMulIntoPar(out, a, b, workers)
	return out
}

// MatMulABTPar returns a·bᵀ like MatMulABT, sharding output rows over
// workers. Bitwise-identical to MatMulABT for every worker count.
func MatMulABTPar(a, b *Matrix, workers int) *Matrix {
	if workers <= 1 {
		return MatMulABT(a, b)
	}
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulABTPar %dx%d · %dx%d ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	par.ForChunks(a.Rows, parRowChunk, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			for j := 0; j < b.Rows; j++ {
				orow[j] = Dot(arow, b.Row(j))
			}
		}
	})
	return out
}

// MatMulATBPar returns aᵀ·b, reducing over fixed atbChunkRows-row shards of
// the shared leading dimension and merging the per-shard partial products in
// shard order. The result is bitwise-identical for every worker count, but —
// unlike the row-partitioned kernels — its float association differs from the
// serial MatMulATB once a.Rows exceeds one shard; callers must pick one of
// the two consistently.
func MatMulATBPar(a, b *Matrix, workers int) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulATBPar %dx%d ᵀ· %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	nChunks := (a.Rows + atbChunkRows - 1) / atbChunkRows
	if nChunks <= 1 {
		return MatMulATB(a, b)
	}
	partials := make([]*Matrix, nChunks)
	par.For(nChunks, workers, func(c int) {
		lo := c * atbChunkRows
		hi := lo + atbChunkRows
		if hi > a.Rows {
			hi = a.Rows
		}
		partials[c] = matMulATBRange(a, b, lo, hi)
	})
	out := partials[0]
	for _, p := range partials[1:] {
		out.AddInPlace(p)
	}
	return out
}

// MulVecIntoPar computes dst = m·x like MulVecInto, sharding dst's rows over
// workers once the output is long enough (gemvParMinRows) for the pool
// handoff to pay. Bitwise-identical to MulVecInto for every worker count.
func MulVecIntoPar(dst []float64, m *Matrix, x []float64, workers int) {
	if workers <= 1 || len(dst) < gemvParMinRows {
		MulVecInto(dst, m, x)
		return
	}
	if len(dst) != m.Rows || len(x) != m.Cols {
		panic(fmt.Sprintf("tensor: MulVecIntoPar dst[%d], m %dx%d, x[%d]", len(dst), m.Rows, m.Cols, len(x)))
	}
	par.ForChunks(len(dst), gemvParChunk, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = Dot(m.Row(i), x)
		}
	})
}

// GatherMulVecIntoPar computes dst[i] = m.Row(rows[i]+rowOffset)·x like
// GatherMulVecInto, sharding the gathered rows over workers once the
// candidate list is long enough (gemvParMinRows) for the pool handoff to
// pay. Bitwise-identical to GatherMulVecInto for every worker count: each
// output element is one Dot produced by exactly one goroutine.
func GatherMulVecIntoPar(dst []float64, m *Matrix, rows []int, rowOffset int, x []float64, workers int) {
	if workers <= 1 || len(rows) < gemvParMinRows {
		GatherMulVecInto(dst, m, rows, rowOffset, x)
		return
	}
	if len(dst) != len(rows) {
		panic(fmt.Sprintf("tensor: GatherMulVecIntoPar dst[%d] for %d rows", len(dst), len(rows)))
	}
	if len(x) != m.Cols {
		panic(fmt.Sprintf("tensor: GatherMulVecIntoPar x[%d], m %dx%d", len(x), m.Rows, m.Cols))
	}
	par.ForChunks(len(rows), gemvParChunk, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = Dot(m.Row(rows[i]+rowOffset), x)
		}
	})
}

// GatherMulVecAddIntoPar is GatherMulVecIntoPar accumulating into dst, the
// parallel form of GatherMulVecAddInto with the same threshold and
// determinism contract.
func GatherMulVecAddIntoPar(dst []float64, m *Matrix, rows []int, rowOffset int, x []float64, workers int) {
	if workers <= 1 || len(rows) < gemvParMinRows {
		GatherMulVecAddInto(dst, m, rows, rowOffset, x)
		return
	}
	if len(dst) != len(rows) {
		panic(fmt.Sprintf("tensor: GatherMulVecAddIntoPar dst[%d] for %d rows", len(dst), len(rows)))
	}
	if len(x) != m.Cols {
		panic(fmt.Sprintf("tensor: GatherMulVecAddIntoPar x[%d], m %dx%d", len(x), m.Rows, m.Cols))
	}
	par.ForChunks(len(rows), gemvParChunk, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] += Dot(m.Row(rows[i]+rowOffset), x)
		}
	})
}

// GatherMulMatIntoPar computes the double-gathered GEMM like GatherMulMatInto,
// sharding the candidate columns over workers once the candidate list is long
// enough. The query dimension is typically a small batch, so the candidate
// axis is the one worth splitting. Bitwise-identical to GatherMulMatInto for
// every worker count.
func GatherMulMatIntoPar(dst *Matrix, a *Matrix, arows []int, aoff int, b *Matrix, brows []int, boff int, workers int) {
	if workers <= 1 || len(brows) < gemvParMinRows {
		GatherMulMatInto(dst, a, arows, aoff, b, brows, boff)
		return
	}
	checkGatherMat(dst, a, arows, b, brows)
	par.ForChunks(len(brows), gemvParChunk, workers, func(jlo, jhi int) {
		gatherMulMatRange(dst, a, arows, aoff, b, brows, boff, jlo, jhi, false)
	})
}

// matMulATBRange computes aᵀ·b restricted to rows [lo, hi) of the shared
// leading dimension, with MatMulATB's inner-loop order.
func matMulATBRange(a, b *Matrix, lo, hi int) *Matrix {
	out := New(a.Cols, b.Cols)
	for k := lo; k < hi; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Row(i)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}
