package tensor

// This file holds the matrix–vector kernels behind the batched scoring engine
// (models.BlockScorer): a GEMV plus fused row-gather GEMV variants that score
// one user's whole candidate list against an embedding matrix. Every kernel
// accumulates each output element with Dot's k-ascending order, so a batched
// score is bitwise-identical to the per-item dot loop it replaces.

import "fmt"

// MulVecInto computes dst[i] = m.Row(i)·x for every row of m. dst must have
// length m.Rows and x length m.Cols.
func MulVecInto(dst []float64, m *Matrix, x []float64) {
	if len(dst) != m.Rows || len(x) != m.Cols {
		panic(fmt.Sprintf("tensor: MulVecInto dst[%d], m %dx%d, x[%d]", len(dst), m.Rows, m.Cols, len(x)))
	}
	for i := range dst {
		dst[i] = Dot(m.Row(i), x)
	}
}

// GatherMulVecInto computes dst[i] = m.Row(rows[i]+rowOffset)·x — a GEMV over
// a gathered row subset, fusing the row gather into the product so no
// intermediate matrix is materialised. dst must have length len(rows).
func GatherMulVecInto(dst []float64, m *Matrix, rows []int, rowOffset int, x []float64) {
	if len(dst) != len(rows) {
		panic(fmt.Sprintf("tensor: GatherMulVecInto dst[%d] for %d rows", len(dst), len(rows)))
	}
	if len(x) != m.Cols {
		panic(fmt.Sprintf("tensor: GatherMulVecInto x[%d], m %dx%d", len(x), m.Rows, m.Cols))
	}
	for i, r := range rows {
		dst[i] = Dot(m.Row(r+rowOffset), x)
	}
}

// GatherMulVecAddInto is GatherMulVecInto accumulating into dst:
// dst[i] += m.Row(rows[i]+rowOffset)·x. Used by readouts that sum dot
// products over several embedding matrices (NGCF's layer concatenation).
func GatherMulVecAddInto(dst []float64, m *Matrix, rows []int, rowOffset int, x []float64) {
	if len(dst) != len(rows) {
		panic(fmt.Sprintf("tensor: GatherMulVecAddInto dst[%d] for %d rows", len(dst), len(rows)))
	}
	if len(x) != m.Cols {
		panic(fmt.Sprintf("tensor: GatherMulVecAddInto x[%d], m %dx%d", len(x), m.Rows, m.Cols))
	}
	for i, r := range rows {
		dst[i] += Dot(m.Row(r+rowOffset), x)
	}
}

// GatherRowsInto copies src.Row(rows[i]+rowOffset) into dst.Row(i) for every
// gathered row — the row-gather half of a batched forward whose consumer needs
// a dense input block (NeuMF's candidate chunks). dst must be
// len(rows)×src.Cols.
func GatherRowsInto(dst, src *Matrix, rows []int, rowOffset int) {
	if dst.Rows != len(rows) || dst.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: GatherRowsInto dst %dx%d for %d rows of %dx%d",
			dst.Rows, dst.Cols, len(rows), src.Rows, src.Cols))
	}
	for i, r := range rows {
		copy(dst.Row(i), src.Row(r+rowOffset))
	}
}

// FirstRows returns a view of m's first n rows sharing m's storage — the
// chunk-sized window batched scoring slides over a preallocated workspace.
func (m *Matrix) FirstRows(n int) *Matrix {
	if n < 0 || n > m.Rows {
		panic(fmt.Sprintf("tensor: FirstRows(%d) of %dx%d", n, m.Rows, m.Cols))
	}
	return &Matrix{Rows: n, Cols: m.Cols, Data: m.Data[:n*m.Cols]}
}
