// Package hesim implements the Paillier additively homomorphic cryptosystem
// over math/big, plus a fixed-point codec and slot packing. It is the
// substrate behind the FedMF baseline (Chai et al., "Secure Federated Matrix
// Factorization"), whose encrypted gradient uploads dominate its
// communication cost in Table IV.
//
// Security note: this is a faithful textbook Paillier used to reproduce a
// paper's system behaviour (ciphertext sizes, homomorphic aggregation). It
// performs no constant-time hardening and must not be used to protect real
// data.
package hesim

import (
	"crypto/rand"
	"fmt"
	"io"
	"math/big"
)

var one = big.NewInt(1)

// PublicKey is a Paillier public key (n, g) with n² cached.
type PublicKey struct {
	N        *big.Int
	NSquared *big.Int
	G        *big.Int // g = n+1, the standard choice
}

// PrivateKey is a Paillier private key (λ, μ) with its public half.
type PrivateKey struct {
	PublicKey
	Lambda *big.Int
	Mu     *big.Int
}

// Ciphertext is one Paillier ciphertext c ∈ Z*_{n²}.
type Ciphertext struct {
	C *big.Int
}

// GenerateKey creates a Paillier key pair whose modulus n has roughly `bits`
// bits. Use ≥2048 for realistic ciphertext sizing, smaller for fast tests.
func GenerateKey(random io.Reader, bits int) (*PrivateKey, error) {
	if bits < 16 {
		return nil, fmt.Errorf("hesim: key size %d too small", bits)
	}
	if random == nil {
		random = rand.Reader
	}
	for {
		p, err := rand.Prime(random, bits/2)
		if err != nil {
			return nil, fmt.Errorf("hesim: prime generation: %w", err)
		}
		q, err := rand.Prime(random, bits/2)
		if err != nil {
			return nil, fmt.Errorf("hesim: prime generation: %w", err)
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		pm1 := new(big.Int).Sub(p, one)
		qm1 := new(big.Int).Sub(q, one)
		lambda := new(big.Int).Div(new(big.Int).Mul(pm1, qm1), new(big.Int).GCD(nil, nil, pm1, qm1))
		n2 := new(big.Int).Mul(n, n)
		g := new(big.Int).Add(n, one)
		// μ = (L(g^λ mod n²))⁻¹ mod n
		glambda := new(big.Int).Exp(g, lambda, n2)
		l := lFunc(glambda, n)
		mu := new(big.Int).ModInverse(l, n)
		if mu == nil {
			continue // degenerate; retry with new primes
		}
		return &PrivateKey{
			PublicKey: PublicKey{N: n, NSquared: n2, G: g},
			Lambda:    lambda,
			Mu:        mu,
		}, nil
	}
}

// lFunc is Paillier's L(x) = (x-1)/n.
func lFunc(x, n *big.Int) *big.Int {
	return new(big.Int).Div(new(big.Int).Sub(x, one), n)
}

// Encrypt computes E(m) = g^m · r^n mod n² for 0 ≤ m < n.
func (pk *PublicKey) Encrypt(random io.Reader, m *big.Int) (*Ciphertext, error) {
	if m.Sign() < 0 || m.Cmp(pk.N) >= 0 {
		return nil, fmt.Errorf("hesim: plaintext outside [0, n)")
	}
	if random == nil {
		random = rand.Reader
	}
	var r *big.Int
	for {
		var err error
		r, err = rand.Int(random, pk.N)
		if err != nil {
			return nil, fmt.Errorf("hesim: nonce: %w", err)
		}
		if r.Sign() > 0 && new(big.Int).GCD(nil, nil, r, pk.N).Cmp(one) == 0 {
			break
		}
	}
	// g = n+1 allows the shortcut g^m = 1 + m·n (mod n²).
	gm := new(big.Int).Mul(m, pk.N)
	gm.Add(gm, one)
	gm.Mod(gm, pk.NSquared)
	rn := new(big.Int).Exp(r, pk.N, pk.NSquared)
	c := gm.Mul(gm, rn)
	c.Mod(c, pk.NSquared)
	return &Ciphertext{C: c}, nil
}

// Decrypt recovers m = L(c^λ mod n²)·μ mod n.
func (sk *PrivateKey) Decrypt(ct *Ciphertext) *big.Int {
	clambda := new(big.Int).Exp(ct.C, sk.Lambda, sk.NSquared)
	m := lFunc(clambda, sk.N)
	m.Mul(m, sk.Mu)
	m.Mod(m, sk.N)
	return m
}

// Add returns E(a+b) = E(a)·E(b) mod n².
func (pk *PublicKey) Add(a, b *Ciphertext) *Ciphertext {
	c := new(big.Int).Mul(a.C, b.C)
	c.Mod(c, pk.NSquared)
	return &Ciphertext{C: c}
}

// MulPlain returns E(k·a) = E(a)^k mod n² for plaintext k ≥ 0.
func (pk *PublicKey) MulPlain(a *Ciphertext, k *big.Int) *Ciphertext {
	return &Ciphertext{C: new(big.Int).Exp(a.C, k, pk.NSquared)}
}

// CiphertextBytes returns the wire size of one ciphertext for a key of the
// given modulus bit length: |n²| = 2·bits, serialised big-endian.
func CiphertextBytes(keyBits int) int { return 2 * keyBits / 8 }

// KeyBits returns the modulus size of the public key in bits.
func (pk *PublicKey) KeyBits() int { return pk.N.BitLen() }
