package hesim

import (
	"fmt"
	"math"
	"math/big"
)

// FixedPoint encodes floats as scaled integers so they can be encrypted and
// summed homomorphically. Negative values are represented modularly (m < 0
// becomes n + m); decode treats values above n/2 as negative. Summing k
// encodings is safe as long as k·|value|·2^FracBits stays below n/2.
type FixedPoint struct {
	FracBits uint // binary fraction bits (precision ≈ 2^-FracBits)
	N        *big.Int
	half     *big.Int
}

// NewFixedPoint builds a codec for the modulus of pk.
func NewFixedPoint(pk *PublicKey, fracBits uint) *FixedPoint {
	return &FixedPoint{FracBits: fracBits, N: pk.N, half: new(big.Int).Rsh(pk.N, 1)}
}

// Encode converts f to its modular fixed-point representation.
func (fp *FixedPoint) Encode(f float64) (*big.Int, error) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return nil, fmt.Errorf("hesim: cannot encode %v", f)
	}
	scaled := new(big.Float).Mul(big.NewFloat(f), big.NewFloat(math.Pow(2, float64(fp.FracBits))))
	z, _ := scaled.Int(nil)
	if new(big.Int).Abs(z).Cmp(fp.half) >= 0 {
		return nil, fmt.Errorf("hesim: %v overflows fixed-point range", f)
	}
	if z.Sign() < 0 {
		z.Add(z, fp.N)
	}
	return z, nil
}

// Decode converts a modular fixed-point value back to a float.
func (fp *FixedPoint) Decode(z *big.Int) float64 {
	v := new(big.Int).Mod(z, fp.N)
	if v.Cmp(fp.half) > 0 {
		v.Sub(v, fp.N)
	}
	f := new(big.Float).SetInt(v)
	f.Quo(f, big.NewFloat(math.Pow(2, float64(fp.FracBits))))
	out, _ := f.Float64()
	return out
}

// Packer packs several fixed-point slots into one plaintext so one Paillier
// operation carries a whole gradient stripe — the optimisation real FedMF
// deployments use to tame ciphertext blow-up. Each slot is SlotBits wide;
// values must fit in the signed sub-range of a slot even after the expected
// number of homomorphic additions.
type Packer struct {
	SlotBits uint
	Slots    int
	FracBits uint
	N        *big.Int
}

// NewPacker sizes a packer for the given key: it fits as many SlotBits-wide
// slots as leave headroom below n.
func NewPacker(pk *PublicKey, slotBits, fracBits uint) *Packer {
	slots := (pk.N.BitLen() - int(slotBits)) / int(slotBits)
	if slots < 1 {
		slots = 1
	}
	return &Packer{SlotBits: slotBits, Slots: slots, FracBits: fracBits, N: pk.N}
}

// Pack encodes up to Slots floats into one plaintext. Values are biased by
// 2^(SlotBits-1)/2^FracBits half-range so each slot stays non-negative; the
// bias is removed on Unpack. Homomorphic addition of k packed plaintexts
// adds k·bias per slot, which Unpack(k) compensates for.
func (p *Packer) Pack(vals []float64) (*big.Int, error) {
	if len(vals) > p.Slots {
		return nil, fmt.Errorf("hesim: %d values exceed %d slots", len(vals), p.Slots)
	}
	scale := math.Pow(2, float64(p.FracBits))
	bias := int64(1) << (p.SlotBits - 2)
	out := new(big.Int)
	for i := p.Slots - 1; i >= 0; i-- {
		out.Lsh(out, p.SlotBits)
		if i < len(vals) {
			v := vals[i]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("hesim: cannot pack %v", v)
			}
			scaled := int64(math.Round(v*scale)) + bias
			if scaled < 0 || scaled >= int64(1)<<p.SlotBits {
				return nil, fmt.Errorf("hesim: value %v overflows slot", v)
			}
			out.Add(out, big.NewInt(scaled))
		} else {
			out.Add(out, big.NewInt(bias))
		}
	}
	return out, nil
}

// Unpack splits a plaintext that is the homomorphic sum of k packed values
// back into per-slot float sums.
func (p *Packer) Unpack(z *big.Int, k int) []float64 {
	scale := math.Pow(2, float64(p.FracBits))
	bias := int64(1) << (p.SlotBits - 2)
	mask := new(big.Int).Sub(new(big.Int).Lsh(one, p.SlotBits), one)
	out := make([]float64, p.Slots)
	cur := new(big.Int).Set(z)
	for i := 0; i < p.Slots; i++ {
		slot := new(big.Int).And(cur, mask)
		raw := slot.Int64() - int64(k)*bias
		out[i] = float64(raw) / scale
		cur.Rsh(cur, p.SlotBits)
	}
	return out
}
