package hesim

import (
	"math"
	"math/big"
	"testing"
)

// testKey generates a small key once; 256-bit keys keep the tests fast while
// exercising the same code paths as 2048-bit production keys.
var testKey = mustKey(256)

func mustKey(bits int) *PrivateKey {
	k, err := GenerateKey(nil, bits)
	if err != nil {
		panic(err)
	}
	return k
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	for _, m := range []int64{0, 1, 42, 1 << 30} {
		ct, err := testKey.Encrypt(nil, big.NewInt(m))
		if err != nil {
			t.Fatal(err)
		}
		if got := testKey.Decrypt(ct); got.Int64() != m {
			t.Fatalf("decrypt = %v, want %v", got, m)
		}
	}
}

func TestEncryptRejectsOutOfRange(t *testing.T) {
	if _, err := testKey.Encrypt(nil, big.NewInt(-1)); err == nil {
		t.Fatal("negative plaintext accepted")
	}
	if _, err := testKey.Encrypt(nil, new(big.Int).Set(testKey.N)); err == nil {
		t.Fatal("plaintext >= n accepted")
	}
}

func TestEncryptionIsRandomized(t *testing.T) {
	a, _ := testKey.Encrypt(nil, big.NewInt(7))
	b, _ := testKey.Encrypt(nil, big.NewInt(7))
	if a.C.Cmp(b.C) == 0 {
		t.Fatal("two encryptions of the same value are identical")
	}
}

func TestHomomorphicAdd(t *testing.T) {
	a, _ := testKey.Encrypt(nil, big.NewInt(100))
	b, _ := testKey.Encrypt(nil, big.NewInt(23))
	sum := testKey.Add(a, b)
	if got := testKey.Decrypt(sum); got.Int64() != 123 {
		t.Fatalf("E(100)+E(23) decrypts to %v", got)
	}
}

func TestHomomorphicAddMany(t *testing.T) {
	// Aggregating many client gradients is FedMF's core operation.
	acc, _ := testKey.Encrypt(nil, big.NewInt(0))
	want := int64(0)
	for i := int64(1); i <= 20; i++ {
		ct, _ := testKey.Encrypt(nil, big.NewInt(i))
		acc = testKey.Add(acc, ct)
		want += i
	}
	if got := testKey.Decrypt(acc); got.Int64() != want {
		t.Fatalf("sum decrypts to %v, want %v", got, want)
	}
}

func TestMulPlain(t *testing.T) {
	a, _ := testKey.Encrypt(nil, big.NewInt(9))
	c := testKey.MulPlain(a, big.NewInt(5))
	if got := testKey.Decrypt(c); got.Int64() != 45 {
		t.Fatalf("5·E(9) decrypts to %v", got)
	}
}

func TestGenerateKeyErrors(t *testing.T) {
	if _, err := GenerateKey(nil, 8); err == nil {
		t.Fatal("tiny key accepted")
	}
}

func TestCiphertextBytes(t *testing.T) {
	if CiphertextBytes(2048) != 512 {
		t.Fatalf("CiphertextBytes(2048) = %d", CiphertextBytes(2048))
	}
	if kb := testKey.KeyBits(); kb < 250 || kb > 256 {
		t.Fatalf("KeyBits = %d", kb)
	}
}

func TestFixedPointRoundTrip(t *testing.T) {
	fp := NewFixedPoint(&testKey.PublicKey, 32)
	for _, f := range []float64{0, 1.5, -2.25, 0.001, -0.001, 123456.789} {
		z, err := fp.Encode(f)
		if err != nil {
			t.Fatal(err)
		}
		if got := fp.Decode(z); math.Abs(got-f) > 1e-6 {
			t.Fatalf("fixed point %v -> %v", f, got)
		}
	}
}

func TestFixedPointRejectsNaN(t *testing.T) {
	fp := NewFixedPoint(&testKey.PublicKey, 32)
	if _, err := fp.Encode(math.NaN()); err == nil {
		t.Fatal("NaN accepted")
	}
	if _, err := fp.Encode(math.Inf(1)); err == nil {
		t.Fatal("Inf accepted")
	}
}

func TestEncryptedFixedPointSum(t *testing.T) {
	// The FedMF aggregation path: encode, encrypt, homomorphically sum,
	// decrypt, decode — including negative gradients.
	fp := NewFixedPoint(&testKey.PublicKey, 32)
	vals := []float64{0.5, -1.25, 2.75, -0.125}
	var acc *Ciphertext
	for _, v := range vals {
		z, err := fp.Encode(v)
		if err != nil {
			t.Fatal(err)
		}
		ct, err := testKey.Encrypt(nil, z)
		if err != nil {
			t.Fatal(err)
		}
		if acc == nil {
			acc = ct
		} else {
			acc = testKey.Add(acc, ct)
		}
	}
	got := fp.Decode(testKey.Decrypt(acc))
	want := 0.5 - 1.25 + 2.75 - 0.125
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("encrypted sum = %v, want %v", got, want)
	}
}

func TestPackerRoundTrip(t *testing.T) {
	p := NewPacker(&testKey.PublicKey, 32, 16)
	if p.Slots < 2 {
		t.Fatalf("packer slots = %d", p.Slots)
	}
	vals := []float64{0.5, -0.25, 1.75}
	z, err := p.Pack(vals)
	if err != nil {
		t.Fatal(err)
	}
	out := p.Unpack(z, 1)
	for i, v := range vals {
		if math.Abs(out[i]-v) > 1e-4 {
			t.Fatalf("slot %d = %v, want %v", i, out[i], v)
		}
	}
	// Unused slots decode to 0.
	for i := len(vals); i < p.Slots; i++ {
		if math.Abs(out[i]) > 1e-9 {
			t.Fatalf("unused slot %d = %v", i, out[i])
		}
	}
}

func TestPackerHomomorphicSum(t *testing.T) {
	p := NewPacker(&testKey.PublicKey, 32, 16)
	a := []float64{0.5, -1.0}
	b := []float64{0.25, 0.5}
	za, err := p.Pack(a)
	if err != nil {
		t.Fatal(err)
	}
	zb, err := p.Pack(b)
	if err != nil {
		t.Fatal(err)
	}
	ca, _ := testKey.Encrypt(nil, za)
	cb, _ := testKey.Encrypt(nil, zb)
	sum := p.Unpack(testKey.Decrypt(testKey.Add(ca, cb)), 2)
	if math.Abs(sum[0]-0.75) > 1e-4 || math.Abs(sum[1]-(-0.5)) > 1e-4 {
		t.Fatalf("packed homomorphic sum = %v", sum[:2])
	}
}

func TestPackerOverflowDetected(t *testing.T) {
	p := NewPacker(&testKey.PublicKey, 16, 8)
	if _, err := p.Pack([]float64{1e6}); err == nil {
		t.Fatal("slot overflow accepted")
	}
	if _, err := p.Pack(make([]float64, p.Slots+1)); err == nil {
		t.Fatal("too many slots accepted")
	}
	if _, err := p.Pack([]float64{math.NaN()}); err == nil {
		t.Fatal("NaN accepted")
	}
}
