package fed

import (
	"testing"

	"ptffedrec/internal/graph"
	"ptffedrec/internal/models"
)

// scalarModel hides a server model's BlockScorer so every dispersal and eval
// score goes through the per-item path, while forwarding the extensions the
// round engine relies on (warm-up, in-place scoring).
type scalarModel struct {
	m models.Recommender
}

func (s *scalarModel) Name() string                         { return s.m.Name() }
func (s *scalarModel) NumParams() int                       { return s.m.NumParams() }
func (s *scalarModel) TrainBatch(b []models.Sample) float64 { return s.m.TrainBatch(b) }
func (s *scalarModel) Score(u, v int) float64               { return s.m.Score(u, v) }
func (s *scalarModel) ScoreItems(u int, items []int) []float64 {
	return s.m.ScoreItems(u, items)
}
func (s *scalarModel) ScoreItemsInto(dst []float64, u int, items []int) []float64 {
	return s.m.(models.InplaceScorer).ScoreItemsInto(dst, u, items)
}
func (s *scalarModel) WarmScoring() {
	if w, ok := s.m.(models.Warmer); ok {
		w.WarmScoring()
	}
}

// scalarGraphModel additionally forwards SetGraph for graph server models.
type scalarGraphModel struct {
	scalarModel
}

func (s *scalarGraphModel) SetGraph(g *graph.Bipartite) {
	s.m.(models.GraphRecommender).SetGraph(g)
}

// forceScalar replaces the trainer's server model with a wrapper that cannot
// block-score.
func forceScalar(tr *Trainer) {
	m := tr.server.model
	if _, ok := m.(models.GraphRecommender); ok {
		tr.server.model = &scalarGraphModel{scalarModel{m}}
		return
	}
	tr.server.model = &scalarModel{m}
}

// TestHistoryInvariantBatchedVsScalar pins the batched scoring engine's
// protocol-level contract: dispersal plans (and through them the entire
// training trace) and eval metrics are bitwise-identical whether the server
// scores through ScoreBlockInto or the per-item path, for every server model
// kind and several worker counts.
func TestHistoryInvariantBatchedVsScalar(t *testing.T) {
	kinds := []models.Kind{models.KindMF, models.KindNeuMF, models.KindLightGCN, models.KindNGCF}
	if testing.Short() {
		kinds = []models.Kind{models.KindNeuMF, models.KindLightGCN}
	}
	sp := tinySplit(t)
	for _, server := range kinds {
		cfg := fastConfig(server)
		cfg.Rounds = 2
		cfg.EvalEvery = 1

		ref, err := NewTrainer(sp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		forceScalar(ref)
		refHist, err := ref.Run()
		if err != nil {
			t.Fatal(err)
		}

		for _, workers := range []int{1, 2, 8} {
			wcfg := cfg
			wcfg.Workers, wcfg.EvalWorkers = workers, workers
			tr, err := NewTrainer(sp, wcfg)
			if err != nil {
				t.Fatal(err)
			}
			h, err := tr.Run()
			if err != nil {
				t.Fatal(err)
			}
			requireEqualHistories(t, string(server)+" batched", refHist, h)
		}
	}
}

// TestRunRoundEvalMatchesSequential pins the overlap's determinism: running
// the evaluation concurrently with dispersal must produce the same round
// trace and the same metrics as dispersing first and evaluating after.
func TestRunRoundEvalMatchesSequential(t *testing.T) {
	sp := tinySplit(t)
	for _, server := range []models.Kind{models.KindNeuMF, models.KindLightGCN} {
		cfg := fastConfig(server)
		cfg.Rounds = 3

		a, err := NewTrainer(sp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewTrainer(sp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < cfg.Rounds; round++ {
			sa := a.RunRound(round)
			resA := a.EvaluateServer()
			sb, resB := b.RunRoundEval(round)
			if resA != resB {
				t.Fatalf("%s round %d: overlapped eval %+v != sequential %+v", server, round, resB, resA)
			}
			sa.Recall, sa.NDCG, sa.Evaluated = resA.Recall, resA.NDCG, true
			if sa != sb {
				t.Fatalf("%s round %d: overlapped stats %+v != sequential %+v", server, round, sb, sa)
			}
		}
		if p := b.PhaseSeconds(); p.Eval <= 0 || p.DisperseEvalWall <= 0 {
			t.Fatalf("%s: overlapped phases not recorded: %+v", server, p)
		}
	}
}
