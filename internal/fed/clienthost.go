package fed

import (
	"ptffedrec/internal/comm"
	"ptffedrec/internal/data"
	"ptffedrec/internal/privacy"
	"ptffedrec/internal/rng"
)

// ClientHost runs the client side of the protocol for a set of users: local
// training, wire encoding, the client-side fault draws, and dispersal
// delivery. It is the transport-agnostic half the in-process Trainer and the
// networked Participant share — both drive the exact same per-(round, user)
// computation, so the networked path reproduces the in-process history
// bitwise. Everything a host owns derives purely from (config, split), which
// is what lets a remote participant reconstruct its clients from nothing but
// the coordinator's join acknowledgement.
//
// Concurrency: calls for distinct users touch distinct clients, so a worker
// pool may run RunClientRound/Deliver for different users concurrently. Two
// calls for the same user must not overlap (the round engines never do that).
type ClientHost struct {
	cfg     Config
	split   *data.Split
	root    *rng.Stream
	clients []*Client
}

// NewClientHost wires up the client-side state for every user in the split.
// Under Config.LazyClients, clients materialise on first participation.
func NewClientHost(sp *data.Split, cfg Config) (*ClientHost, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h := &ClientHost{
		cfg:     cfg,
		split:   sp,
		root:    rng.New(cfg.Seed).Derive("ptf-fedrec"),
		clients: make([]*Client, sp.NumUsers),
	}
	if cfg.LazyClients {
		// Build one eagerly so an invalid client-model kind still fails at
		// construction time instead of mid-round.
		if sp.NumUsers > 0 {
			c, err := newClient(0, sp.Train[0], sp.NumItems, &h.cfg, h.root)
			if err != nil {
				return nil, err
			}
			h.clients[0] = c
		}
		return h, nil
	}
	for u := 0; u < sp.NumUsers; u++ {
		c, err := newClient(u, sp.Train[u], sp.NumItems, &h.cfg, h.root)
		if err != nil {
			return nil, err
		}
		h.clients[u] = c
	}
	return h, nil
}

// Client returns the host's client for user id, constructing it on first use
// under Config.LazyClients. Lazy construction is bitwise-safe because
// everything a client owns derives purely from (config, split, id).
// Concurrent calls for distinct ids write distinct slots and the round/eval
// engines never hand one id to two workers, so no synchronisation is needed.
func (h *ClientHost) Client(id int) *Client {
	c := h.clients[id]
	if c == nil {
		var err error
		c, err = newClient(id, h.split.Train[id], h.split.NumItems, &h.cfg, h.root)
		if err != nil {
			// Construction can only fail on an invalid model kind, which the
			// eager client 0 already validated.
			panic(err)
		}
		h.clients[id] = c
	}
	return c
}

// Split returns the host's dataset split.
func (h *ClientHost) Split() *data.Split { return h.split }

// Config returns the host's configuration.
func (h *ClientHost) Config() Config { return h.cfg }

// ClientRoundResult is one user's full client-side round output, before any
// transport decides how much of it reaches the server. Preds is the
// wire-decoded upload (what a faithful receiver reconstructs from Payload);
// SendPreds/SendBytes bound the prefix that actually goes out — less than the
// whole upload only under FaultPlan truncation. Loss and AttackF1 are
// computed on the full upload, mirroring the in-process engine (a truncated
// client trained and self-scored before its connection died).
type ClientRoundResult struct {
	ID        int
	Dropped   bool
	Payload   []byte            // canonical wire encoding of the full upload
	Preds     []comm.Prediction // Payload decoded through the codec
	SendPreds int               // predictions actually transmitted (≤ len(Preds))
	SendBytes int               // bytes actually transmitted (= SendPreds × stride)
	Loss      float64
	AttackF1  float64
}

// Outcome folds the result into what the server observes: a dropped client
// contributes nothing, a truncated one only its transmitted prefix. Decoding
// a payload prefix equals the prefix of the decoded payload (the codecs are
// element-wise), so this is exactly what a receiver of WirePayload sees.
func (r ClientRoundResult) Outcome() ClientOutcome {
	if r.Dropped {
		return ClientOutcome{ID: r.ID, Dropped: true}
	}
	return ClientOutcome{
		ID:          r.ID,
		Upload:      r.Preds[:r.SendPreds],
		UploadBytes: r.SendBytes,
		Loss:        r.Loss,
		AttackF1:    r.AttackF1,
	}
}

// WirePayload returns the bytes that actually cross the transport — the
// canonical encoding truncated to the transmitted prefix.
func (r ClientRoundResult) WirePayload() []byte { return r.Payload[:r.SendBytes] }

// RunClientRound executes user id's side of one round: the fault dropout
// draw, local training (negatives drawn from the split by the shared
// recipe), wire encoding, the attack self-score, and the truncation draw.
// The rng consumption order is the determinism contract: dropout before
// training, truncation after the attack — identical to the historical
// in-process round loop.
func (h *ClientHost) RunClientRound(round, id int) ClientRoundResult {
	c := h.Client(id)
	var fs *rng.Stream
	if h.cfg.Faults.enabled() {
		fs = h.root.DeriveN("fault", round).DeriveN("client", id)
		if fs.Bernoulli(h.cfg.Faults.DropoutRate) {
			// A dropped client burns its local compute but nothing reaches
			// the server.
			return ClientRoundResult{ID: id, Dropped: true}
		}
	}
	upload, loss := c.localTrain(func(n int) []int {
		return h.split.SampleNegativesN(c.s.DeriveN("negs", round), c.ID, n)
	})
	payload, preds := wireRoundTrip(upload, h.cfg.QuantizeScores)
	// The curious-but-honest server's inference attempt, scored against
	// ground truth for Table V / Fig. 3 — on the wire-decoded upload, since
	// that is what the server sees.
	guessed := privacy.TopGuessAttack(preds, h.cfg.AttackPosFraction)
	f1 := privacy.AttackF1(preds, guessed, c.isPositive)
	send := len(preds)
	if fs != nil && fs.Bernoulli(h.cfg.Faults.TruncateRate) && len(preds) > 1 {
		// Short write: the connection dies mid-upload and the server keeps
		// the received prefix.
		send = len(preds) / 2
	}
	return ClientRoundResult{
		ID:        id,
		Payload:   payload,
		Preds:     preds,
		SendPreds: send,
		SendBytes: send * comm.CodecFor(h.cfg.QuantizeScores).WireSize(),
		Loss:      loss,
		AttackF1:  f1,
	}
}

// Deliver hands user id the server's dispersed D̃ᵢ (already wire-decoded).
func (h *ClientHost) Deliver(id int, preds []comm.Prediction) {
	h.Client(id).receiveDispersal(preds)
}

// wireRoundTrip runs predictions through the configured wire codec both
// ways, returning the canonical payload and what a receiver decodes from it.
// Training proceeds on the decoded values on both sides of the wire: the
// in-process engine and the networked path therefore see identical floats
// (under the plain codec that is the float32 round trip; under quantization
// the round trip is lossy by design). Encoding a decoded payload reproduces
// it byte for byte — the codec idempotence the fuzz suite pins — so the
// coordinator can forward canonical payloads without re-encoding drift.
func wireRoundTrip(preds []comm.Prediction, quantize bool) ([]byte, []comm.Prediction) {
	codec := comm.CodecFor(quantize)
	payload := codec.Encode(preds)
	decoded, err := codec.Decode(payload)
	if err != nil {
		// Encoding our own payload cannot fail to decode; a failure here is
		// a bug in the codec.
		panic(err)
	}
	return payload, decoded
}
