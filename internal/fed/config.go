// Package fed implements PTF-FedRec (Algorithm 1 of the paper): the
// parameter transmission-free federated learning protocol in which clients
// and the central server exchange prediction scores instead of model
// parameters.
//
// Per global round t:
//
//  1. a fraction of clients Uᵗ is selected;
//  2. each selected client trains its local model on Dᵢ ∪ D̃ᵢ (its private
//     interactions plus the server's soft labels, Eq. 3), then uploads the
//     privacy-protected prediction set D̂ᵗᵢ (Eq. 4, §III-B2);
//  3. the server trains its hidden model on the received predictions
//     (Eq. 5) — rebuilding its interaction graph from them when the server
//     model is a graph recommender;
//  4. the server disperses confidence-filtered + hard soft labels D̃ᵢ back to
//     each client (Eq. 6, §III-B3).
package fed

import (
	"fmt"

	"ptffedrec/internal/models"
	"ptffedrec/internal/privacy"
)

// DisperseMode selects how the server builds D̃ᵢ — Table VII's ablation arms.
type DisperseMode string

// Dispersal strategies: the paper's confidence+hard construction and the
// ablations that replace either half (or both) with random items.
const (
	DisperseConfHard  DisperseMode = "conf+hard"   // paper default (Eq. 9)
	DisperseNoHard    DisperseMode = "-hard"       // hard half replaced by random
	DisperseNoConf    DisperseMode = "-confidence" // confidence half replaced by random
	DisperseAllRandom DisperseMode = "-confidence-hard"
)

// ParseDisperseMode converts a string (CLI flag) to a DisperseMode.
func ParseDisperseMode(s string) (DisperseMode, bool) {
	switch DisperseMode(s) {
	case DisperseConfHard, DisperseNoHard, DisperseNoConf, DisperseAllRandom:
		return DisperseMode(s), true
	}
	return "", false
}

// Config carries every protocol hyper-parameter. Zero values are invalid;
// build from DefaultConfig, which encodes §IV-D.
type Config struct {
	Rounds         int     // global rounds T (paper: 20)
	ClientFraction float64 // |Uᵗ|/|U| (paper: 1.0 — all clients per round)
	ClientEpochs   int     // local epochs L (paper: 5)
	ServerEpochs   int     // server epochs (paper: 2)
	ClientBatch    int     // client batch size (paper: 64)
	ServerBatch    int     // server batch size (paper: 1024)
	NegRatio       int     // negative sampling ratio (paper: 1:4)

	Dim    int     // embedding dimension (paper: 32)
	LR     float64 // Adam learning rate (paper: 1e-3)
	Layers int     // GNN propagation layers (paper: 3)

	ClientModel models.Kind // paper default: NeuMF on every client
	ServerModel models.Kind // the provider's hidden model

	Alpha    int          // |D̃ᵢ| (paper: 30)
	Mu       float64      // confidence vs hard portion µ (paper: 0.5)
	Disperse DisperseMode // Table VII ablation arm

	Privacy privacy.Config // §III-B2 upload mechanism

	// GraphThreshold is the uploaded-score cutoff above which the server
	// treats a triple as a soft-positive edge when rebuilding its graph.
	// The paper leaves this construction open; see DESIGN.md §3.
	GraphThreshold float64

	// GraphTopFrac, when positive, switches the server's edge selection to
	// an adaptive per-user rule: the top fraction of each upload by score
	// becomes soft-positive edges. This is robust to badly calibrated
	// client scores (early rounds, very sparse users); 0 keeps the absolute
	// threshold rule. Benchmarked by BenchmarkAblationServerGraph.
	GraphTopFrac float64

	// AttackPosFraction is the γ the curious server assumes in the Top
	// Guess Attack (paper: 0.2, from the 1:4 platform default).
	AttackPosFraction float64

	// EvalK is the ranking cutoff (paper: 20).
	EvalK int

	// EvalEvery computes server metrics every n rounds (0 = only at end).
	EvalEvery int

	// Workers bounds the round engine's parallelism (0 = GOMAXPROCS): client
	// local training, the server's absorb/training-set sharding, and the
	// dispersal loop all fan out over this many workers. Seeded runs produce
	// identical Histories for every worker count.
	Workers int

	// EvalWorkers bounds eval.Ranking's parallelism during EvaluateServer /
	// EvaluateClients (0 = GOMAXPROCS). Metrics are bitwise-identical for any
	// worker count.
	EvalWorkers int

	// TrainWorkers bounds the server model's intra-batch parallelism
	// (0 = GOMAXPROCS): every TrainBatch shards its forward/backward over
	// fixed-size gradient chunks computed on this many workers and merged in
	// chunk order, so seeded runs are bitwise-identical for every value.
	// Client models always train serially — they already run on the Workers
	// pool.
	TrainWorkers int

	// DisperseScalar forces dispersal through the per-client scalar engine
	// instead of the round-scoped multi-user batched engine (shared
	// eligibility cache + multi-user GEMM scoring). Results are
	// bitwise-identical either way — the knob exists as the timing baseline
	// for the scalability experiment's disperse-scalar/disperse-spdup columns
	// and for invariance tests.
	DisperseScalar bool

	// MapUploadStore forces the server's per-user latest-upload state through
	// the original map-of-slices store instead of the flat sharded arena
	// (contiguous prediction slabs with a fixed-stride offset/length index).
	// Results are bitwise-identical either way — the knob is the
	// memory/timing baseline (the DisperseScalar pattern) for the scalability
	// experiment's store columns and the upload-store invariance suite.
	MapUploadStore bool

	// FullGraphRebuild forces the server's per-round graph reconstruction
	// through the full O(all users, all edges) path — re-select every stored
	// user's edges, rebuild the Bipartite, and reconstruct the normalized
	// adjacencies from triplets — instead of the incremental engine that
	// maintains rows, degree vectors, and postings in O(changed users +
	// affected items). Results are bitwise-identical either way — the knob is
	// the timing baseline (the MapUploadStore pattern) for the scalability
	// experiment's graph-full/graph-spdup columns and the graph invariance
	// suite.
	FullGraphRebuild bool

	// EligCacheEntries bounds the dispersal eligibility cache: at most this
	// many per-client eligible lists stay resident, recycled LRU, so
	// dispersal memory is budget × NumItems × 4 B instead of growing with
	// every client ever dispersed to. A miss rebuilds via the word walk —
	// any budget ≥ 1 is correct, smaller budgets just rebuild more.
	// 0 means the default budget (4096 entries).
	EligCacheEntries int

	// LazyClients constructs each client's state (model, rng streams) on its
	// first participation instead of all NumUsers clients up front. Lazily
	// built clients are bitwise-identical to eagerly built ones: everything a
	// client owns derives purely from (config, split, id) — the streams come
	// from DeriveN on the immutable root seed, never from consuming shared
	// generator state. The knob exists for huge-user profiles, where the
	// idle majority's models and generator states would dominate memory.
	LazyClients bool

	// EvalSingleUser forces server-side evaluation through the single-user
	// probability-domain engine (one fused ScoreBlockTopK selection per user)
	// instead of the multi-user batched logit engine. Results are
	// bitwise-identical either way — the knob exists as the timing baseline
	// for the scalability experiment's eval-users-scalar/eval-users-spdup
	// columns and for invariance tests, mirroring DisperseScalar.
	EvalSingleUser bool

	// SequentialRounds forces Trainer.Run (and the networked coordinator's
	// round loop) through the fully serialized schedule — round r's server
	// phases and dispersal deliveries complete before any of round r+1's
	// clients train — instead of the cross-round pipeline that overlaps
	// round r+1's dependency-free client training with round r's
	// absorb/train/disperse. Results are bitwise-identical either way: a
	// client of round r+1 is gated on round r's dispersal delivery iff it
	// was in round r's cohort, cohorts are pure functions of the seed
	// (Select never consumes generator state), and every per-(round, client)
	// stream derives from the immutable root — so training order across
	// rounds cannot leak into results. The knob is the timing baseline (the
	// DisperseScalar pattern) for the scalability experiment's
	// pipe-round/pipe-spdup columns and the pipeline invariance suite.
	SequentialRounds bool

	// Faults optionally injects client dropouts and truncated uploads to
	// exercise the protocol's robustness (zero value = no faults).
	Faults FaultPlan

	// QuantizeScores ships prediction scores as uint8 buckets (9-byte
	// triples instead of 12), the compression extension suggested by the
	// paper's communication-efficiency discussion. Training on both sides
	// sees the quantized values, so the measured quality includes the
	// quantization error.
	QuantizeScores bool

	Seed uint64
}

// DefaultConfig returns the paper's hyper-parameters (§IV-D) with the given
// server model and NeuMF clients.
func DefaultConfig(serverModel models.Kind) Config {
	return Config{
		Rounds:            20,
		ClientFraction:    1.0,
		ClientEpochs:      5,
		ServerEpochs:      2,
		ClientBatch:       64,
		ServerBatch:       1024,
		NegRatio:          4,
		Dim:               32,
		LR:                1e-3,
		Layers:            3,
		ClientModel:       models.KindNeuMF,
		ServerModel:       serverModel,
		Alpha:             30,
		Mu:                0.5,
		Disperse:          DisperseConfHard,
		Privacy:           privacy.DefaultConfig(),
		GraphThreshold:    0.5,
		AttackPosFraction: 0.2,
		EvalK:             20,
		Seed:              1,
	}
}

// Validate reports the first invalid field.
func (c Config) Validate() error {
	switch {
	case c.Rounds <= 0:
		return fmt.Errorf("fed: Rounds = %d", c.Rounds)
	case c.ClientFraction <= 0 || c.ClientFraction > 1:
		return fmt.Errorf("fed: ClientFraction = %v", c.ClientFraction)
	case c.ClientEpochs <= 0 || c.ServerEpochs <= 0:
		return fmt.Errorf("fed: epochs %d/%d", c.ClientEpochs, c.ServerEpochs)
	case c.ClientBatch <= 0 || c.ServerBatch <= 0:
		return fmt.Errorf("fed: batch sizes %d/%d", c.ClientBatch, c.ServerBatch)
	case c.NegRatio <= 0:
		return fmt.Errorf("fed: NegRatio = %d", c.NegRatio)
	case c.Dim <= 0:
		return fmt.Errorf("fed: Dim = %d", c.Dim)
	case c.Alpha < 0:
		return fmt.Errorf("fed: Alpha = %d", c.Alpha)
	case c.Mu < 0 || c.Mu > 1:
		return fmt.Errorf("fed: Mu = %v", c.Mu)
	case c.GraphThreshold < 0 || c.GraphThreshold > 1:
		return fmt.Errorf("fed: GraphThreshold = %v", c.GraphThreshold)
	case c.GraphTopFrac < 0 || c.GraphTopFrac > 1:
		return fmt.Errorf("fed: GraphTopFrac = %v", c.GraphTopFrac)
	case c.EvalK <= 0:
		return fmt.Errorf("fed: EvalK = %d", c.EvalK)
	case c.EligCacheEntries < 0:
		return fmt.Errorf("fed: EligCacheEntries = %d", c.EligCacheEntries)
	case c.Faults.DropoutRate < 0 || c.Faults.DropoutRate > 1:
		return fmt.Errorf("fed: Faults.DropoutRate = %v", c.Faults.DropoutRate)
	case c.Faults.TruncateRate < 0 || c.Faults.TruncateRate > 1:
		return fmt.Errorf("fed: Faults.TruncateRate = %v", c.Faults.TruncateRate)
	}
	if _, ok := ParseDisperseMode(string(c.Disperse)); !ok {
		return fmt.Errorf("fed: Disperse = %q", c.Disperse)
	}
	if _, ok := privacy.ParseDefense(string(c.Privacy.Defense)); !ok {
		return fmt.Errorf("fed: Privacy.Defense = %q", c.Privacy.Defense)
	}
	return nil
}
