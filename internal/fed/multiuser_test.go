package fed

import (
	"reflect"
	"testing"

	"ptffedrec/internal/bitset"
	"ptffedrec/internal/models"
)

// naiveEligible is the reference definition the eligibility cache must
// reproduce: walk the item universe probing the exclusion bitset — exactly
// the scalar dispersal path's construction.
func naiveEligible(dst []int, numItems int, lastUpload *bitset.Set) []int {
	dst = dst[:0]
	for v := 0; v < numItems; v++ {
		if lastUpload != nil && lastUpload.Contains(v) {
			continue
		}
		dst = append(dst, v)
	}
	return dst
}

// multiuserConfig is the invariance suite's base: small enough that the full
// kind × arm × worker sweep stays fast (MF clients keep local training
// cheap; dispersal coverage does not depend on the client model), adversarial
// enough to exercise conf/hard collisions and the fill backstop.
func multiuserConfig(server models.Kind, mode DisperseMode) Config {
	cfg := fastConfig(server)
	cfg.ClientModel = models.KindMF
	cfg.Rounds = 2
	cfg.EvalEvery = 1
	cfg.Disperse = mode
	cfg.Mu = 0.4
	return cfg
}

// TestDisperseBatchedInvariance is the engine's protocol-level contract: for
// every server model kind, every ablation arm, and workers {1, 2, 8}, the
// multi-user batched dispersal engine produces a training history and final
// metrics bitwise-identical to the per-client scalar path.
func TestDisperseBatchedInvariance(t *testing.T) {
	kinds := []models.Kind{models.KindMF, models.KindNeuMF, models.KindNGCF, models.KindLightGCN}
	modes := []DisperseMode{DisperseConfHard, DisperseNoHard, DisperseNoConf, DisperseAllRandom}
	if testing.Short() {
		kinds = []models.Kind{models.KindNeuMF, models.KindLightGCN}
		modes = []DisperseMode{DisperseConfHard, DisperseAllRandom}
	}
	sp := tinySplit(t)
	for _, server := range kinds {
		for _, mode := range modes {
			cfg := multiuserConfig(server, mode)

			scfg := cfg
			scfg.DisperseScalar = true
			scfg.Workers, scfg.EvalWorkers = 1, 1
			ref, err := NewTrainer(sp, scfg)
			if err != nil {
				t.Fatal(err)
			}
			refHist, err := ref.Run()
			if err != nil {
				t.Fatal(err)
			}

			for _, workers := range []int{1, 2, 8} {
				wcfg := cfg
				wcfg.Workers, wcfg.EvalWorkers = workers, workers
				tr, err := NewTrainer(sp, wcfg)
				if err != nil {
					t.Fatal(err)
				}
				h, err := tr.Run()
				if err != nil {
					t.Fatal(err)
				}
				requireEqualHistories(t, string(server)+"/"+string(mode)+" batched", refHist, h)
			}
		}
	}
}

// TestDisperseBatchedMultiChunk forces the batched hard half through several
// score chunks (and ragged batch tails) on the tiny catalogue, pinning that
// chunk boundaries and batch grouping never leak into results.
func TestDisperseBatchedMultiChunk(t *testing.T) {
	defer func(old int) { disperseScoreChunk = old }(disperseScoreChunk)
	disperseScoreChunk = 16 // Tiny has 60 items -> 4 chunks, last one ragged

	sp := tinySplit(t)
	cfg := multiuserConfig(models.KindLightGCN, DisperseConfHard)

	scfg := cfg
	scfg.DisperseScalar = true
	ref, err := NewTrainer(sp, scfg)
	if err != nil {
		t.Fatal(err)
	}
	refHist, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrainer(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	requireEqualHistories(t, "multi-chunk batched", refHist, h)
}

// TestEligCacheMatchesNaiveWalk pins the eligibility cache's contract on
// live protocol state: after real rounds, every client's cache-served
// eligible set equals the scalar path's item-universe walk, cache hits serve
// the identical list without rebuilding, and a new upload invalidates.
func TestEligCacheMatchesNaiveWalk(t *testing.T) {
	sp := tinySplit(t)
	cfg := multiuserConfig(models.KindNeuMF, DisperseConfHard)
	tr, err := NewTrainer(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr.RunRound(0)

	sv := tr.Server()
	var walk []int
	var bit *bitset.Set
	for _, c := range tr.Clients() {
		// The target's exclusion set comes from the server's upload store; in
		// a fault-free run it must carry the same item set the client
		// remembers sending, so the naive walk probes c.lastUpload — the
		// comparison doubles as a store-vs-client consistency check.
		var tgt disperseTarget
		tgt, bit = sv.disperseTargetInto(c.ID, bit)
		got := sv.elig.eligible(tgt, sp.NumItems)
		walk = naiveEligible(walk, sp.NumItems, c.lastUpload)
		if len(got) != len(walk) {
			t.Fatalf("client %d: cache served %d eligible, walk found %d", c.ID, len(got), len(walk))
		}
		for i, v := range got {
			if int(v) != walk[i] {
				t.Fatalf("client %d: eligible[%d] = %d, walk says %d", c.ID, i, v, walk[i])
			}
		}
		// Cache hit: same generation must serve the same backing array.
		again := sv.elig.eligible(tgt, sp.NumItems)
		if len(again) > 0 && &again[0] != &got[0] {
			t.Fatalf("client %d: cache rebuilt on unchanged generation", c.ID)
		}
	}

	// Another round re-uploads: generations move, entries rebuild, and the
	// walk equivalence still holds.
	gen0 := sv.upGen[0]
	tr.RunRound(1)
	c := tr.Clients()[0]
	if sv.upGen[0] == gen0 {
		t.Fatal("upload generation did not advance with a new upload")
	}
	tgt, _ := sv.disperseTargetInto(0, nil)
	got := sv.elig.eligible(tgt, sp.NumItems)
	walk = naiveEligible(walk, sp.NumItems, c.lastUpload)
	if !reflect.DeepEqual(candsetWiden(got), walk) {
		t.Fatalf("client %d after round 1: cache %v != walk %v", c.ID, got, walk)
	}
}

// candsetWiden converts an int32 list to []int for DeepEqual comparisons.
func candsetWiden(xs []int32) []int {
	out := make([]int, len(xs))
	for i, v := range xs {
		out[i] = int(v)
	}
	return out
}
