package fed

import (
	"math"
	"testing"

	"ptffedrec/internal/data"
	"ptffedrec/internal/models"
	"ptffedrec/internal/privacy"
	"ptffedrec/internal/rng"
)

// tinySplit builds a deterministic small dataset for protocol tests.
func tinySplit(t *testing.T) *data.Split {
	t.Helper()
	d := data.Generate(data.Tiny, 42)
	return d.Split(rng.New(1), 0.2)
}

// fastConfig shrinks the paper's defaults so integration tests run quickly.
func fastConfig(server models.Kind) Config {
	cfg := DefaultConfig(server)
	cfg.Rounds = 3
	cfg.ClientEpochs = 2
	cfg.ServerEpochs = 1
	cfg.Dim = 8
	cfg.Alpha = 10
	cfg.LR = 5e-3
	cfg.Workers = 4
	return cfg
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(models.KindNGCF)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Rounds = 0 },
		func(c *Config) { c.ClientFraction = 0 },
		func(c *Config) { c.ClientFraction = 1.5 },
		func(c *Config) { c.ClientEpochs = 0 },
		func(c *Config) { c.ClientBatch = 0 },
		func(c *Config) { c.NegRatio = 0 },
		func(c *Config) { c.Dim = 0 },
		func(c *Config) { c.Alpha = -1 },
		func(c *Config) { c.Mu = 2 },
		func(c *Config) { c.GraphThreshold = -0.1 },
		func(c *Config) { c.EvalK = 0 },
		func(c *Config) { c.Disperse = "bogus" },
		func(c *Config) { c.Privacy.Defense = "bogus" },
	}
	for i, mutate := range bad {
		c := DefaultConfig(models.KindNGCF)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func TestParseDisperseMode(t *testing.T) {
	for _, s := range []string{"conf+hard", "-hard", "-confidence", "-confidence-hard"} {
		if _, ok := ParseDisperseMode(s); !ok {
			t.Fatalf("ParseDisperseMode(%q) failed", s)
		}
	}
	if _, ok := ParseDisperseMode("x"); ok {
		t.Fatal("bad mode accepted")
	}
}

func TestTrainerEndToEndNeuMFServer(t *testing.T) {
	sp := tinySplit(t)
	cfg := fastConfig(models.KindNeuMF)
	tr, err := NewTrainer(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Rounds) != cfg.Rounds {
		t.Fatalf("rounds = %d", len(h.Rounds))
	}
	for _, rs := range h.Rounds {
		if rs.Participants != sp.NumUsers {
			t.Fatalf("round %d participants = %d, want all %d", rs.Round, rs.Participants, sp.NumUsers)
		}
		if rs.UploadBytes <= 0 || rs.DispersBytes <= 0 {
			t.Fatalf("round %d has zero traffic: %+v", rs.Round, rs)
		}
		if math.IsNaN(rs.ClientLoss) || math.IsNaN(rs.ServerLoss) {
			t.Fatalf("round %d loss NaN", rs.Round)
		}
	}
	if h.Final.Users == 0 {
		t.Fatal("final evaluation saw no users")
	}
	if h.Final.Recall < 0 || h.Final.Recall > 1 || h.Final.NDCG < 0 || h.Final.NDCG > 1 {
		t.Fatalf("final metrics out of range: %+v", h.Final)
	}
}

func TestTrainerGraphServerModels(t *testing.T) {
	sp := tinySplit(t)
	for _, kind := range []models.Kind{models.KindNGCF, models.KindLightGCN} {
		cfg := fastConfig(kind)
		cfg.Rounds = 2
		tr, err := NewTrainer(sp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Run(); err != nil {
			t.Fatalf("%s server: %v", kind, err)
		}
		// Server graph must have absorbed soft-positive edges.
		if got := tr.Server().store.Count(); got == 0 {
			t.Fatalf("%s server saw no uploads", kind)
		}
	}
}

func TestServerLearnsCollaborativeSignal(t *testing.T) {
	// After training, the server model should rank held-out items better
	// than random. Random Recall@20 on 60 items ≈ 20/60 per relevant item,
	// so demand NDCG strictly above a weak floor.
	sp := tinySplit(t)
	cfg := fastConfig(models.KindNeuMF)
	cfg.Rounds = 6
	tr, err := NewTrainer(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	first := h.Rounds[0].ServerLoss
	last := h.Rounds[len(h.Rounds)-1].ServerLoss
	if last >= first {
		t.Fatalf("server loss did not decrease: %v -> %v", first, last)
	}
}

func TestDispersalRespectsUploadExclusion(t *testing.T) {
	sp := tinySplit(t)
	cfg := fastConfig(models.KindNeuMF)
	tr, err := NewTrainer(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr.RunRound(0)
	for _, c := range tr.Clients() {
		for _, p := range c.ServerData() {
			if c.lastUpload.Contains(p.Item) {
				t.Fatalf("client %d: dispersed item %d was in its upload", c.ID, p.Item)
			}
			if p.Score < 0 || p.Score > 1 {
				t.Fatalf("dispersed score %v out of range", p.Score)
			}
		}
		if len(c.ServerData()) == 0 {
			t.Fatalf("client %d received no dispersal", c.ID)
		}
		if len(c.ServerData()) > cfg.Alpha {
			t.Fatalf("client %d received %d items, alpha=%d", c.ID, len(c.ServerData()), cfg.Alpha)
		}
	}
}

func TestDisperseModes(t *testing.T) {
	sp := tinySplit(t)
	for _, mode := range []DisperseMode{DisperseConfHard, DisperseNoHard, DisperseNoConf, DisperseAllRandom} {
		cfg := fastConfig(models.KindNeuMF)
		cfg.Rounds = 1
		cfg.Disperse = mode
		tr, err := NewTrainer(sp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		tr.RunRound(0)
		for _, c := range tr.Clients()[:3] {
			if len(c.ServerData()) == 0 {
				t.Fatalf("mode %s: no dispersal", mode)
			}
		}
	}
}

func TestConfidenceSelectionPrefersFrequentItems(t *testing.T) {
	sp := tinySplit(t)
	cfg := fastConfig(models.KindNeuMF)
	cfg.Mu = 1.0 // dispersal is purely confidence-based
	tr, err := NewTrainer(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr.RunRound(0)
	c := tr.Clients()[0]
	if len(c.ServerData()) == 0 {
		t.Fatal("no dispersal")
	}
	// Dispersed items should have frequency >= the median eligible item.
	freqs := make([]int, 0)
	for v := 0; v < sp.NumItems; v++ {
		if !c.lastUpload.Contains(v) {
			freqs = append(freqs, tr.Server().ItemFrequency(v))
		}
	}
	var sum int
	for _, f := range freqs {
		sum += f
	}
	meanFreq := float64(sum) / float64(len(freqs))
	var dispersedMean float64
	for _, p := range c.ServerData() {
		dispersedMean += float64(tr.Server().ItemFrequency(p.Item))
	}
	dispersedMean /= float64(len(c.ServerData()))
	if dispersedMean < meanFreq {
		t.Fatalf("confidence selection not frequency-biased: dispersed %.2f vs mean %.2f", dispersedMean, meanFreq)
	}
}

func TestAttackF1OrderingAcrossDefenses(t *testing.T) {
	if testing.Short() {
		t.Skip("full defense sweep; skipped in -short")
	}
	// The core privacy claim (Table V): no-defense leaks nearly everything,
	// sampling+swap leaks far less.
	// Once local models are trained enough to order positives above
	// negatives, an unprotected upload leaks them to the top-guess server.
	sp := tinySplit(t)
	run := func(d privacy.Defense) float64 {
		cfg := fastConfig(models.KindNeuMF)
		cfg.Rounds = 4
		cfg.ClientEpochs = 10
		cfg.ClientBatch = 16
		cfg.LR = 0.01
		cfg.Privacy.Defense = d
		tr, err := NewTrainer(sp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		h, err := tr.Run()
		if err != nil {
			t.Fatal(err)
		}
		return h.Rounds[len(h.Rounds)-1].AttackF1
	}
	none := run(privacy.DefenseNone)
	swap := run(privacy.DefenseSamplingSwap)
	if none < 0.7 {
		t.Fatalf("no-defense attack F1 = %v, want high (ordering leak)", none)
	}
	if swap >= none-0.2 {
		t.Fatalf("sampling+swap F1 %v not clearly below none %v", swap, none)
	}
}

func TestCommunicationIsKilobytes(t *testing.T) {
	// PTF-FedRec's headline: per-client per-round traffic is KB, not MB.
	sp := tinySplit(t)
	cfg := fastConfig(models.KindNeuMF)
	tr, err := NewTrainer(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	avg := tr.Meter().AvgPerClientPerRound()
	if avg <= 0 {
		t.Fatal("no traffic recorded")
	}
	if avg > 64*1024 {
		t.Fatalf("avg per-client per-round = %v bytes, want well under 64KB", avg)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	sp := tinySplit(t)
	cfg := fastConfig(models.KindNeuMF)
	cfg.Rounds = 2
	cfg.Workers = 3 // parallelism must not break determinism
	run := func() *History {
		tr, err := NewTrainer(sp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		h, err := tr.Run()
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	a, b := run(), run()
	if a.Final.Recall != b.Final.Recall || a.Final.NDCG != b.Final.NDCG {
		t.Fatalf("non-deterministic final metrics: %+v vs %+v", a.Final, b.Final)
	}
	for i := range a.Rounds {
		if a.Rounds[i].UploadBytes != b.Rounds[i].UploadBytes {
			t.Fatalf("round %d bytes differ", i)
		}
		if math.Abs(a.Rounds[i].ServerLoss-b.Rounds[i].ServerLoss) > 1e-12 {
			t.Fatalf("round %d server loss differs", i)
		}
	}
}

func TestClientFractionSelectsSubset(t *testing.T) {
	sp := tinySplit(t)
	cfg := fastConfig(models.KindNeuMF)
	cfg.ClientFraction = 0.25
	tr, err := NewTrainer(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs := tr.RunRound(0)
	want := int(0.25 * float64(sp.NumUsers))
	if rs.Participants != want {
		t.Fatalf("participants = %d, want %d", rs.Participants, want)
	}
}

func TestEvaluateClients(t *testing.T) {
	sp := tinySplit(t)
	cfg := fastConfig(models.KindNeuMF)
	cfg.Rounds = 2
	tr, err := NewTrainer(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	res := tr.EvaluateClients()
	if res.Users == 0 {
		t.Fatal("client evaluation saw no users")
	}
	if res.Recall < 0 || res.Recall > 1 {
		t.Fatalf("client recall = %v", res.Recall)
	}
}

func TestTableVIIIClientModelCombos(t *testing.T) {
	// Graph models as *clients* (one-hop local graphs).
	sp := tinySplit(t)
	for _, ck := range []models.Kind{models.KindNGCF, models.KindLightGCN} {
		cfg := fastConfig(models.KindNeuMF)
		cfg.Rounds = 1
		cfg.ClientModel = ck
		tr, err := NewTrainer(sp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rs := tr.RunRound(0)
		if math.IsNaN(rs.ClientLoss) || rs.ClientLoss == 0 {
			t.Fatalf("client model %s produced loss %v", ck, rs.ClientLoss)
		}
	}
}

func TestRoundStatsString(t *testing.T) {
	rs := RoundStats{Round: 1, Participants: 5, Evaluated: true, Recall: 0.1, NDCG: 0.2}
	if rs.String() == "" {
		t.Fatal("empty stats string")
	}
}
