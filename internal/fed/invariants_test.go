package fed

import (
	"bytes"
	"testing"

	"ptffedrec/internal/models"
	"ptffedrec/internal/privacy"
)

// TestUploadInvariants checks, across seeds and defenses, the properties the
// protocol promises about every upload: scores in [0,1], items within the
// universe, no duplicates, size bounded by the trained pool, and — for the
// sampling defenses — strictly fewer items than the full pool on average.
func TestUploadInvariants(t *testing.T) {
	sp := tinySplit(t)
	for _, defense := range []privacy.Defense{
		privacy.DefenseNone, privacy.DefenseLDP,
		privacy.DefenseSampling, privacy.DefenseSamplingSwap,
	} {
		for seed := uint64(1); seed <= 3; seed++ {
			cfg := fastConfig(models.KindNeuMF)
			cfg.Rounds = 1
			cfg.Seed = seed
			cfg.Privacy.Defense = defense
			tr, err := NewTrainer(sp, cfg)
			if err != nil {
				t.Fatal(err)
			}
			tr.RunRound(0)
			var totalUpload, totalPool int
			for _, c := range tr.Clients() {
				pool := len(c.positives) * (1 + cfg.NegRatio)
				if c.lastUpload.Cap() != sp.NumItems {
					t.Fatalf("defense %s: upload set sized %d, universe %d", defense, c.lastUpload.Cap(), sp.NumItems)
				}
				c.lastUpload.ForEach(func(item int) {
					if item < 0 || item >= sp.NumItems {
						t.Fatalf("defense %s: uploaded item %d outside universe", defense, item)
					}
				})
				if c.lastUpload.Count() > pool {
					t.Fatalf("defense %s: upload %d exceeds trained pool %d", defense, c.lastUpload.Count(), pool)
				}
				totalUpload += c.lastUpload.Count()
				totalPool += pool
			}
			if defense == privacy.DefenseSampling || defense == privacy.DefenseSamplingSwap {
				if totalUpload >= totalPool {
					t.Fatalf("defense %s: sampling did not shrink uploads (%d vs %d)",
						defense, totalUpload, totalPool)
				}
			}
			if defense == privacy.DefenseNone {
				// The whole trained pool is uploaded; the pool itself can be
				// slightly below positives×(1+ratio) when a heavy user runs
				// out of non-interacted items to sample.
				if totalUpload > totalPool || float64(totalUpload) < 0.95*float64(totalPool) {
					t.Fatalf("no defense should upload ≈the whole pool: %d vs %d", totalUpload, totalPool)
				}
			}
		}
	}
}

// TestDispersalScoreRange checks dispersed soft labels stay in [0,1] for
// every server model kind.
func TestDispersalScoreRange(t *testing.T) {
	sp := tinySplit(t)
	for _, kind := range []models.Kind{models.KindNeuMF, models.KindNGCF, models.KindLightGCN} {
		cfg := fastConfig(kind)
		cfg.Rounds = 1
		tr, err := NewTrainer(sp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		tr.RunRound(0)
		for _, c := range tr.Clients() {
			for _, p := range c.ServerData() {
				if p.Score < 0 || p.Score > 1 {
					t.Fatalf("server %s dispersed score %v", kind, p.Score)
				}
				if p.User != c.ID {
					t.Fatalf("dispersal for user %d reached client %d", p.User, c.ID)
				}
			}
		}
	}
}

// TestServerSnapshotRoundTrip checkpoints the hidden model mid-training and
// verifies a fresh trainer restored from it scores identically.
func TestServerSnapshotRoundTrip(t *testing.T) {
	sp := tinySplit(t)
	cfg := fastConfig(models.KindLightGCN)
	cfg.Rounds = 2
	a, err := NewTrainer(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.Server().Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	cfg.Seed = 999 // different init everywhere
	b, err := NewTrainer(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Server().Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// The snapshot carries parameters (not graph state): re-snapshotting the
	// restored server must reproduce the original bytes exactly.
	var buf2 bytes.Buffer
	if err := b.Server().Snapshot(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("snapshot -> restore -> snapshot is not the identity")
	}
}

// TestAlphaZeroDisablesDispersal covers the degenerate α=0 configuration.
func TestAlphaZeroDisablesDispersal(t *testing.T) {
	sp := tinySplit(t)
	cfg := fastConfig(models.KindNeuMF)
	cfg.Rounds = 1
	cfg.Alpha = 0
	tr, err := NewTrainer(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs := tr.RunRound(0)
	if rs.DispersBytes != 0 {
		t.Fatalf("alpha=0 dispersed %d bytes", rs.DispersBytes)
	}
	for _, c := range tr.Clients() {
		if len(c.ServerData()) != 0 {
			t.Fatal("alpha=0 client received data")
		}
	}
}

// TestAlphaLargerThanUniverse covers α exceeding the eligible item count.
func TestAlphaLargerThanUniverse(t *testing.T) {
	sp := tinySplit(t)
	cfg := fastConfig(models.KindNeuMF)
	cfg.Rounds = 1
	cfg.Alpha = sp.NumItems * 2
	tr, err := NewTrainer(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr.RunRound(0)
	for _, c := range tr.Clients() {
		if len(c.ServerData()) > sp.NumItems {
			t.Fatalf("dispersed %d items from a %d-item universe", len(c.ServerData()), sp.NumItems)
		}
	}
}
