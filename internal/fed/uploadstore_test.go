package fed

import (
	"fmt"
	"testing"

	"ptffedrec/internal/comm"
	"ptffedrec/internal/models"
	"ptffedrec/internal/rng"
)

// storeTestServer builds a bare server for store/graph micro-tests.
func storeTestServer(tb testing.TB, numUsers, numItems int, mutate func(*Config)) *Server {
	tb.Helper()
	cfg := fastConfig(models.KindMF)
	if mutate != nil {
		mutate(&cfg)
	}
	if err := cfg.Validate(); err != nil {
		tb.Fatal(err)
	}
	sv, err := newServer(numUsers, numItems, &cfg, rng.New(1).Derive("store-test"))
	if err != nil {
		tb.Fatal(err)
	}
	return sv
}

// makeUpload builds one user's upload with deterministic items/scores.
func makeUpload(u, m, numItems int, s *rng.Stream) []comm.Prediction {
	up := make([]comm.Prediction, m)
	for j := range up {
		up[j] = comm.Prediction{User: u, Item: s.Intn(numItems), Score: s.Float64()}
	}
	return up
}

// TestFlatUploadStoreBasic drives one store through the region life cycle:
// first insert, in-place rewrite, region abandonment on growth, and the
// compaction a slow-growth pattern forces — checking views, user order and
// counts at every step.
func TestFlatUploadStoreBasic(t *testing.T) {
	const numUsers, numItems = 100, 50
	st := newFlatUploadStore(numUsers)
	s := rng.New(3).Derive("basic")

	if st.Count() != 0 || st.View(7) != nil || len(st.Users(nil)) != 0 {
		t.Fatal("fresh store is not empty")
	}

	up7 := makeUpload(7, 8, numItems, s)
	up90 := makeUpload(90, 5, numItems, s)
	// Batch order must not matter for the final state; users span two shards
	// (stride 64 at 100 users).
	st.SetBatch([][]comm.Prediction{up90, nil, up7}, 1)
	if st.Count() != 2 {
		t.Fatalf("Count = %d, want 2 (empty upload must be ignored)", st.Count())
	}
	if got := st.Users(nil); len(got) != 2 || got[0] != 7 || got[1] != 90 {
		t.Fatalf("Users = %v, want [7 90]", got)
	}
	requirePredsEqual(t, "initial view", st.View(7), up7)

	// Same-length rewrite lands in place: the region offset must not move.
	off7 := st.shards[7>>st.strideBits].off[7]
	up7b := makeUpload(7, 8, numItems, s)
	st.SetBatch([][]comm.Prediction{up7b}, 1)
	if st.shards[7>>st.strideBits].off[7] != off7 {
		t.Fatal("same-length rewrite relocated the region")
	}
	requirePredsEqual(t, "in-place rewrite", st.View(7), up7b)
	requirePredsEqual(t, "untouched user", st.View(90), up90)

	// Slow growth: each upload slightly exceeds the previous region's
	// capacity, abandoning it. Abandoned capacity accumulates faster than the
	// newest reservation grows, so compaction must trigger along the way.
	compacted := false
	for m := 10; m <= 22; m += 2 {
		upg := makeUpload(7, m, numItems, s)
		st.SetBatch([][]comm.Prediction{upg}, 1)
		requirePredsEqual(t, fmt.Sprintf("growth to %d", m), st.View(7), upg)
		requirePredsEqual(t, "other shard survives growth", st.View(90), up90)
		if st.shards[7>>st.strideBits].dead == 0 {
			compacted = true
		}
	}
	if !compacted {
		t.Fatal("slow-growth pattern never compacted the shard")
	}
	if st.Count() != 2 {
		t.Fatalf("Count = %d after rewrites, want 2", st.Count())
	}
	if st.MemoryBytes() <= 0 {
		t.Fatal("MemoryBytes must be positive for a non-empty store")
	}
}

func requirePredsEqual(t *testing.T, label string, got, want []comm.Prediction) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: pred %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestFlatUploadStoreMatchesMap runs the flat store and the map baseline
// through many rounds of randomized batches — lengths jittering, shrinking
// and growing to force both in-place rewrites and abandon/compact cycles —
// and requires identical observable state after every round.
func TestFlatUploadStoreMatchesMap(t *testing.T) {
	const numUsers, numItems, rounds = 700, 90, 80
	flat := newFlatUploadStore(numUsers)
	mp := newMapUploadStore()
	s := rng.New(11).Derive("equiv")

	for round := 0; round < rounds; round++ {
		n := 1 + s.Intn(60)
		users := s.SampleInts(numUsers, n)
		uploads := make([][]comm.Prediction, 0, n+1)
		for _, u := range users {
			// Length regime swings by round: small, large, or wild — the
			// swings are what exercise region reuse vs abandonment.
			var m int
			switch round % 3 {
			case 0:
				m = 1 + s.Intn(6)
			case 1:
				m = 20 + s.Intn(20)
			default:
				m = 1 + s.Intn(40)
			}
			uploads = append(uploads, makeUpload(u, m, numItems, s))
		}
		uploads = append(uploads, nil) // empty uploads must be ignored
		flat.SetBatch(uploads, 1+round%4)
		mp.SetBatch(uploads, 1)

		if flat.Count() != mp.Count() {
			t.Fatalf("round %d: Count %d vs map %d", round, flat.Count(), mp.Count())
		}
		fu, mu := flat.Users(nil), mp.Users(nil)
		if len(fu) != len(mu) {
			t.Fatalf("round %d: user counts %d vs %d", round, len(fu), len(mu))
		}
		for i := range fu {
			if fu[i] != mu[i] {
				t.Fatalf("round %d: user order diverges at %d: %d vs %d", round, i, fu[i], mu[i])
			}
			requirePredsEqual(t, fmt.Sprintf("round %d user %d", round, fu[i]),
				flat.View(fu[i]), mp.View(fu[i]))
		}
	}
}

// TestUploadStoreInvariance is the end-to-end pin: for every server model
// kind and worker count, training on the flat store reproduces the map
// baseline's History bit for bit.
func TestUploadStoreInvariance(t *testing.T) {
	kinds := []models.Kind{models.KindMF, models.KindNeuMF, models.KindNGCF, models.KindLightGCN}
	if testing.Short() {
		kinds = []models.Kind{models.KindNeuMF, models.KindLightGCN}
	}
	for _, server := range kinds {
		cfg := fastConfig(server)
		cfg.Rounds = 2
		cfg.EvalEvery = 1
		for _, workers := range []int{1, 2, 8} {
			cfg.Workers, cfg.EvalWorkers = workers, workers
			cfg.MapUploadStore = false
			flat := runHistory(t, cfg)
			cfg.MapUploadStore = true
			requireEqualHistories(t, fmt.Sprintf("%s/workers=%d", server, workers),
				flat, runHistory(t, cfg))
		}
	}
}

// TestLazyClientsHistoryInvariance pins on-demand client construction:
// everything a client owns derives purely from (config, split, id), so a
// lazily-built fleet must reproduce the eager fleet's History bit for bit.
func TestLazyClientsHistoryInvariance(t *testing.T) {
	cfg := fastConfig(models.KindLightGCN)
	cfg.Rounds = 2
	cfg.EvalEvery = 1
	eager := runHistory(t, cfg)
	cfg.LazyClients = true
	requireEqualHistories(t, "lazy-clients", eager, runHistory(t, cfg))
}

// storeAllocFixture builds a warmed server + batch for the steady-state
// allocation pins: two absorbs make every region's capacity fit the next
// same-shape batch, so the third absorb and onwards must run clean.
func storeAllocFixture(tb testing.TB, topFrac float64) (*Server, [][]comm.Prediction) {
	tb.Helper()
	const numUsers, numItems = 600, 150
	sv := storeTestServer(tb, numUsers, numItems, func(c *Config) {
		c.GraphTopFrac = topFrac
		if topFrac == 0 {
			c.GraphThreshold = 0.4
		}
	})
	s := rng.New(9).Derive("alloc")
	uploads := make([][]comm.Prediction, 0, 200)
	for _, u := range s.SampleInts(numUsers, 200) {
		uploads = append(uploads, makeUpload(u, 4+s.Intn(12), numItems, s))
	}
	sv.absorb(uploads, 1)
	sv.absorb(uploads, 1)
	sv.collectEdges(1)
	return sv, uploads
}

// TestAbsorbSteadyStateAllocs pins the flat store's core promise: once
// regions exist, absorbing a round allocates nothing — no map growth, no
// per-user slices, no routing garbage.
func TestAbsorbSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation perturbs allocation counts")
	}
	sv, uploads := storeAllocFixture(t, 0)
	if allocs := testing.AllocsPerRun(50, func() { sv.absorb(uploads, 1) }); allocs != 0 {
		t.Fatalf("steady-state absorb allocates %.1f times per round, want 0", allocs)
	}
}

// TestCollectEdgesSteadyStateAllocs pins the serial graph edge collection at
// zero steady-state allocations for both soft-positive rules (threshold scan
// and top-fraction stable sort).
func TestCollectEdgesSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation perturbs allocation counts")
	}
	for _, tc := range []struct {
		name    string
		topFrac float64
	}{{"threshold", 0}, {"topfrac", 0.5}} {
		t.Run(tc.name, func(t *testing.T) {
			sv, _ := storeAllocFixture(t, tc.topFrac)
			if allocs := testing.AllocsPerRun(50, func() { sv.collectEdges(1) }); allocs != 0 {
				t.Fatalf("steady-state collectEdges allocates %.1f times per call, want 0", allocs)
			}
		})
	}
}

// BenchmarkAbsorb measures one steady-state absorb of a 200-client round.
// -benchmem must report 0 B/op, 0 allocs/op — CI's allocation-regression pin.
func BenchmarkAbsorb(b *testing.B) {
	sv, uploads := storeAllocFixture(b, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sv.absorb(uploads, 1)
	}
}

// BenchmarkCollectEdges measures the steady-state serial edge collection.
// -benchmem must report 0 B/op, 0 allocs/op.
func BenchmarkCollectEdges(b *testing.B) {
	sv, _ := storeAllocFixture(b, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sv.collectEdges(1)
	}
}
