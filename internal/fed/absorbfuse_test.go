package fed

import (
	"fmt"
	"testing"

	"ptffedrec/internal/comm"
	"ptffedrec/internal/graph"
	"ptffedrec/internal/models"
	"ptffedrec/internal/rng"
)

// TestAbsorbFusedMatchesTwoPass cross-checks the absorb-fused edge selection
// against the reference two-pass path it replaces on the hot loop: after
// every absorb the fused (users, offsets, slab) triple must equal
// collectEdgesFor over the store's dirty set exactly, the subsequent
// incremental rebuild must consume it, and the resulting CSR must match a
// from-scratch build. Both edge rules (score threshold and top-fraction) and
// both the serial and parallel fused paths are exercised.
func TestAbsorbFusedMatchesTwoPass(t *testing.T) {
	const numUsers, numItems = 80, 60
	for _, tc := range []struct {
		name   string
		mutate func(*Config)
	}{
		{"threshold", func(c *Config) { c.GraphThreshold = 0.4 }},
		{"topfrac", func(c *Config) { c.GraphTopFrac = 0.3 }},
	} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", tc.name, workers), func(t *testing.T) {
				sv := storeTestServer(t, numUsers, numItems, func(c *Config) {
					c.ServerModel = models.KindLightGCN
					tc.mutate(c)
				})
				s := rng.New(23).Derive("absorb-fuse")
				for r := 0; r < 6; r++ {
					n := 1 + s.Intn(numUsers)
					uploads := make([][]comm.Prediction, 0, n)
					for _, u := range s.SampleInts(numUsers, n) {
						uploads = append(uploads, makeUpload(u, 1+s.Intn(14), numItems, s))
					}
					sv.absorb(uploads, workers)
					if !sv.fusedValid {
						t.Fatalf("round %d: absorb did not fuse the edge selection", r)
					}

					dirty := sv.store.DirtyUsers(nil)
					if !intsEqual(dirty, sv.fusedUsers) {
						t.Fatalf("round %d: fused users %v != dirty set %v", r, sv.fusedUsers, dirty)
					}
					// Snapshot before the reference pass: collectEdgesFor uses
					// its own scratch, but the comparison must not depend on
					// that staying true.
					fusedOff := append([]int(nil), sv.fusedOff...)
					fusedSlab := append([]graph.Edge(nil), sv.fusedSlab...)
					off, slab := sv.collectEdgesFor(dirty, workers)
					if len(fusedOff) != len(off) {
						t.Fatalf("round %d: fused offsets len %d != two-pass %d", r, len(fusedOff), len(off))
					}
					for i := range off {
						if fusedOff[i] != off[i] {
							t.Fatalf("round %d: offset[%d] fused %d != two-pass %d", r, i, fusedOff[i], off[i])
						}
					}
					if len(fusedSlab) != len(slab) {
						t.Fatalf("round %d: fused slab len %d != two-pass %d", r, len(fusedSlab), len(slab))
					}
					for i := range slab {
						if fusedSlab[i] != slab[i] {
							t.Fatalf("round %d: edge[%d] fused %+v != two-pass %+v", r, i, fusedSlab[i], slab[i])
						}
					}

					sv.rebuildGraph(workers)
					if sv.fusedValid {
						t.Fatalf("round %d: rebuild did not consume the fused selection", r)
					}
					checkIncMatchesFull(t, fmt.Sprintf("round %d", r), sv, workers)
				}
			})
		}
	}
}
