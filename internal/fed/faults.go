package fed

// FaultPlan injects the failure modes a real federated deployment sees, so
// the protocol's robustness can be tested: clients that drop out mid-round
// (no upload arrives) and uploads that are truncated in transit. The zero
// value injects nothing.
//
// PTF-FedRec tolerates both by construction — the server trains on whatever
// predictions arrive, and dispersal only targets responders — but the tests
// in faults_test.go pin that behaviour down.
type FaultPlan struct {
	// DropoutRate is the probability a selected client fails before
	// uploading (device offline, app killed). Dropped clients receive no
	// dispersal this round.
	DropoutRate float64
	// TruncateRate is the probability an upload loses its second half in
	// transit (flaky link, timeout); the server trains on the prefix.
	TruncateRate float64
}

// enabled reports whether the plan injects any faults.
func (f FaultPlan) enabled() bool { return f.DropoutRate > 0 || f.TruncateRate > 0 }
