package fed

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON serialises the run history (round trace + final metrics) for
// offline analysis and plotting.
func (h *History) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(h); err != nil {
		return fmt.Errorf("fed: encode history: %w", err)
	}
	return nil
}

// ReadHistoryJSON parses a history previously written with WriteJSON.
func ReadHistoryJSON(r io.Reader) (*History, error) {
	var h History
	if err := json.NewDecoder(r).Decode(&h); err != nil {
		return nil, fmt.Errorf("fed: decode history: %w", err)
	}
	return &h, nil
}

// BestRound returns the evaluated round with the highest NDCG, or -1 if no
// round was evaluated (EvalEvery = 0).
func (h *History) BestRound() int {
	best, bestNDCG := -1, -1.0
	for _, rs := range h.Rounds {
		if rs.Evaluated && rs.NDCG > bestNDCG {
			best, bestNDCG = rs.Round, rs.NDCG
		}
	}
	return best
}

// TotalUploadBytes sums the client→server traffic across rounds.
func (h *History) TotalUploadBytes() int64 {
	var t int64
	for _, rs := range h.Rounds {
		t += rs.UploadBytes
	}
	return t
}

// TotalDisperseBytes sums the server→client traffic across rounds.
func (h *History) TotalDisperseBytes() int64 {
	var t int64
	for _, rs := range h.Rounds {
		t += rs.DispersBytes
	}
	return t
}
