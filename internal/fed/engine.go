package fed

import (
	"time"

	"ptffedrec/internal/comm"
	"ptffedrec/internal/data"
	"ptffedrec/internal/eval"
	"ptffedrec/internal/models"
	"ptffedrec/internal/par"
	"ptffedrec/internal/rng"
)

// ClientOutcome is what the server observes from one selected client slot
// after the transport has had its say: the (possibly truncated) upload it
// received, the bytes that crossed the wire, and the client's self-reported
// loss and attack score — or Dropped if nothing arrived at all.
type ClientOutcome struct {
	ID          int
	Upload      []comm.Prediction
	UploadBytes int
	Loss        float64
	AttackF1    float64
	Dropped     bool
}

// Dispersal is one client's D̃ᵢ leaving the server: the canonical wire
// payload plus its decoded form. Preds is exactly what a faithful receiver
// decodes from Payload, so in-process delivery and network delivery hand the
// client identical values.
type Dispersal struct {
	ID      int
	Preds   []comm.Prediction
	Payload []byte
}

// RoundEngine is the server side of Algorithm 1's loop body with the
// transport abstracted away: it selects the round's cohort, absorbs whatever
// outcomes the transport gathered, trains the hidden model, and produces the
// dispersals. The in-process Trainer and the networked coordinator both run
// rounds through this engine, so the two paths share one deterministic
// implementation — identical outcomes in produce identical histories and
// dispersals out, bitwise, for any worker count.
type RoundEngine struct {
	cfg      Config
	numUsers int
	server   *Server
	meter    *comm.Meter
	root     *rng.Stream
	phases   *PhaseSeconds

	// lastDisperseSecs is the dispersal-phase wall of the most recent
	// CloseRound — what a sequential eval fallback adds to DisperseEvalWall.
	lastDisperseSecs float64
}

// NewRoundEngine builds the server-side engine for a numUsers × numItems
// universe. The rng root derives purely from cfg.Seed with the same recipe
// the client hosts use, so an engine and a host constructed apart — even in
// different processes — consume identical streams.
func NewRoundEngine(numUsers, numItems int, cfg Config) (*RoundEngine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &RoundEngine{
		cfg:      cfg,
		numUsers: numUsers,
		meter:    comm.NewMeter(),
		root:     rng.New(cfg.Seed).Derive("ptf-fedrec"),
		phases:   &PhaseSeconds{},
	}
	server, err := newServer(numUsers, numItems, &e.cfg, e.root)
	if err != nil {
		return nil, err
	}
	e.server = server
	return e, nil
}

// Server exposes the hidden server model and its state.
func (e *RoundEngine) Server() *Server { return e.server }

// Meter exposes the communication meter.
func (e *RoundEngine) Meter() *comm.Meter { return e.meter }

// Config returns the active configuration.
func (e *RoundEngine) Config() Config { return e.cfg }

// Phases returns the cumulative per-phase wall-clock.
func (e *RoundEngine) Phases() PhaseSeconds { return *e.phases }

// ResetPhases zeroes the per-phase timers.
func (e *RoundEngine) ResetPhases() { *e.phases = PhaseSeconds{} }

// sharePhases points the engine's phase accounting at an external sink (the
// Trainer aggregates engine phases with its own client-train timer).
func (e *RoundEngine) sharePhases(p *PhaseSeconds) { e.phases = p }

// Select samples the round's cohort Uᵗ. Selection is a pure function of
// (seed, round), so a coordinator and an observer agree on every round's
// cohort without communicating.
func (e *RoundEngine) Select(round int) []int {
	sel := e.root.DeriveN("select", round)
	n := int(e.cfg.ClientFraction * float64(e.numUsers))
	if n < 1 {
		n = 1
	}
	return sel.SampleInts(e.numUsers, n)
}

// NewEvaluator builds a ranking evaluator for the split with the engine's
// knobs applied. The candidate cache is read-only after construction, so one
// evaluator serves every subsequent Evaluate — including one overlapped with
// dispersal.
func (e *RoundEngine) NewEvaluator(sp *data.Split) *eval.Evaluator {
	ev := eval.NewEvaluator(sp)
	ev.SingleUser = e.cfg.EvalSingleUser
	return ev
}

// Evaluate ranks the hidden server model through ev — the quantity Table III
// reports for PTF-FedRec.
func (e *RoundEngine) Evaluate(ev *eval.Evaluator) eval.Result {
	return ev.Rank(e.server.model, e.cfg.EvalK, e.cfg.EvalWorkers)
}

// CloseRound finishes round `round` from the transport-gathered outcomes
// (slot order must match Select's cohort order — the determinism contract):
// absorb the uploads, rebuild the graph, optimise Eq. 5, and build every
// responder's dispersal. The returned dispersals are in responder slot order.
//
// A non-nil overlap runs concurrently with the dispersal phase — the Trainer
// passes its server evaluation, which after the shared warm step is a pure
// read of the frozen model. CloseRound returns only after overlap finishes.
func (e *RoundEngine) CloseRound(round int, outcomes []ClientOutcome, overlap func()) (RoundStats, []Dispersal) {
	workers := par.Workers(e.cfg.Workers)
	stats := RoundStats{Round: round, Participants: len(outcomes)}
	responders := make([]ClientOutcome, 0, len(outcomes))
	uploads := make([][]comm.Prediction, 0, len(outcomes))
	for _, o := range outcomes {
		if o.Dropped {
			stats.Dropped++
			continue
		}
		responders = append(responders, o)
		uploads = append(uploads, o.Upload)
		stats.ClientLoss += o.Loss
		stats.AttackF1 += o.AttackF1
		stats.UploadBytes += int64(o.UploadBytes)
		e.meter.AddUp(o.ID, o.UploadBytes)
	}
	if len(responders) > 0 {
		stats.ClientLoss /= float64(len(responders))
		stats.AttackF1 /= float64(len(responders))
	}

	// Server-side: absorb uploads, rebuild the graph, optimise Eq. 5. The
	// absorb counters and the training-set construction shard over the round
	// pool; inside every server TrainBatch the gradient workspace engine
	// shards over TrainWorkers with a chunk-ordered merge. Absorb may fuse the
	// incremental edge selection into its pass over the uploads; that slice of
	// wall-clock belongs to GraphBuild, so it is re-attributed there.
	phaseStart := time.Now()
	e.server.absorb(uploads, workers)
	absorbWall := time.Since(phaseStart).Seconds()
	fusedSecs := e.server.takeFusedSecs()
	e.phases.Absorb += absorbWall - fusedSecs

	phaseStart = time.Now()
	e.server.rebuildGraph(workers)
	e.phases.GraphBuild += time.Since(phaseStart).Seconds() + fusedSecs

	phaseStart = time.Now()
	stats.ServerLoss = e.server.train(uploads, workers)
	e.phases.ServerTrain += time.Since(phaseStart).Seconds()

	// Dispersal: the global confidence ranking is computed once for the
	// round; each client draws from a stream derived per (round, client), and
	// dispersal only reads server state (plus per-worker scratch), so results
	// match the serial loop exactly. The Eq. 9 exclusion set V̂ᵗᵢ comes from
	// the server's upload store — what it actually received — so a networked
	// server needs nothing the wire did not carry.
	phaseStart = time.Now()
	var overlapDone chan struct{}
	// Warm before an overlapped eval unconditionally; otherwise only a
	// parallel dispersal with work to do needs the shared caches hot.
	// Warming is idempotent and bitwise-neutral either way.
	if w, ok := e.server.model.(models.Warmer); ok && (overlap != nil || (workers > 1 && len(responders) > 0)) {
		w.WarmScoring()
	}
	if overlap != nil {
		overlapDone = make(chan struct{})
		go func() {
			defer close(overlapDone)
			overlap()
		}()
	}
	dispersals := make([]Dispersal, len(responders))
	if len(responders) > 0 {
		plan := e.server.buildDispersalPlan()
		// The batched engine needs the multi-user scoring contract; the
		// scalar per-client path is the fallback (and, via DisperseScalar,
		// the timing baseline). Both produce bitwise-identical dispersals.
		mbs, batched := e.server.model.(models.MultiBlockScorer)
		batched = batched && !e.cfg.DisperseScalar && e.cfg.Alpha > 0
		// Per-client streams are only consumed by the random ablation arms,
		// and deriving one costs a full generator seeding — so the
		// deterministic conf+hard arm skips them entirely, and the random
		// arms derive the round-level parent once. Both are bitwise-neutral:
		// derivation is a pure function of the parent's immutable seed (safe
		// to share across workers), and an unused stream influences nothing.
		streams := disperseNeedsStreams(&e.cfg)
		var roundStream *rng.Stream
		if streams {
			roundStream = e.root.DeriveN("disperse", round)
		}
		clientStream := func(id int) *rng.Stream {
			if !streams {
				return nil
			}
			return roundStream.DeriveN("client", id)
		}
		cResponders, cDispersals := responders, dispersals
		chunk := (len(responders) + workers - 1) / workers
		par.ForChunks(len(responders), chunk, workers, func(lo, hi int) {
			if batched {
				sc := newDisperseBatchScratch()
				for b := lo; b < hi; b += disperseBatchClients {
					be := b + disperseBatchClients
					if be > hi {
						be = hi
					}
					slots := sc.slots[:be-b]
					for i := b; i < be; i++ {
						id := cResponders[i].ID
						slots[i-b].tgt, sc.excls[i-b] = e.server.disperseTargetInto(id, sc.excls[i-b])
						slots[i-b].ds = clientStream(id)
					}
					e.server.disperseBatch(mbs, slots, plan, sc)
					for i := b; i < be; i++ {
						payload, preds := wireRoundTrip(slots[i-b].preds, e.cfg.QuantizeScores)
						cDispersals[i] = Dispersal{ID: cResponders[i].ID, Preds: preds, Payload: payload}
					}
				}
				return
			}
			scratch := &disperseScratch{}
			for i := lo; i < hi; i++ {
				id := cResponders[i].ID
				var tgt disperseTarget
				tgt, scratch.excl = e.server.disperseTargetInto(id, scratch.excl)
				out := e.server.disperse(tgt, clientStream(id), plan, scratch)
				payload, preds := wireRoundTrip(out, e.cfg.QuantizeScores)
				cDispersals[i] = Dispersal{ID: id, Preds: preds, Payload: payload}
			}
		})
	}
	for _, d := range dispersals {
		stats.DispersBytes += int64(len(d.Payload))
		e.meter.AddDown(d.ID, len(d.Payload))
	}
	disperseSecs := time.Since(phaseStart).Seconds()
	e.phases.Disperse += disperseSecs
	e.lastDisperseSecs = disperseSecs
	if overlapDone != nil {
		<-overlapDone
		e.phases.DisperseEvalWall += time.Since(phaseStart).Seconds()
	}
	e.meter.EndRound()
	return stats, dispersals
}

// disperseNeedsStreams reports whether the configured dispersal arm consumes
// per-client randomness: only the ablation arms that replace the confidence
// or hard half with uniform draws do.
func disperseNeedsStreams(cfg *Config) bool {
	nConf, nHard, confRandom, hardRandom := disperseArms(cfg)
	return (nConf > 0 && confRandom) || (nHard > 0 && hardRandom)
}
