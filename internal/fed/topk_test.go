package fed

import (
	"reflect"
	"sort"
	"testing"

	"ptffedrec/internal/rng"
)

// topKReference is the semantics topKByScore promises: a stable descending
// sort of the (ascending-id) item list by score, truncated to k — exactly
// what the pre-plan per-client full sort produced.
func topKReference(items []int, scores []float64, k int) []int {
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return scores[order[a]] > scores[order[b]] })
	if k > len(items) {
		k = len(items)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = items[order[i]]
	}
	return out
}

// TestTopKByScoreMatchesStableSort fuzzes the bounded-heap partial selection
// against the full-sort reference, including heavy score ties (quantized
// scores make ties common in practice) and k ≥ n edge cases.
func TestTopKByScoreMatchesStableSort(t *testing.T) {
	s := rng.New(77)
	var buf []int
	for trial := 0; trial < 500; trial++ {
		n := 1 + s.Intn(120)
		k := s.Intn(n + 5)
		items := make([]int, n)
		scores := make([]float64, n)
		for i := range items {
			items[i] = i
			// Draw from a small grid so ties are frequent.
			scores[i] = float64(s.Intn(12)) / 11
		}
		buf = topKByScore(buf, items, scores, k)
		want := topKReference(items, scores, k)
		if len(want) == 0 {
			if len(buf) != 0 {
				t.Fatalf("trial %d: got %v, want empty", trial, buf)
			}
			continue
		}
		if !reflect.DeepEqual(buf, want) {
			t.Fatalf("trial %d (n=%d k=%d): topKByScore = %v, reference %v", trial, n, k, buf, want)
		}
	}
}
