package fed

import (
	"bytes"
	"testing"

	"ptffedrec/internal/models"
)

// runHistory executes a full training run and returns its trace.
func runHistory(t *testing.T, cfg Config) *History {
	t.Helper()
	tr, err := NewTrainer(tinySplit(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// requireEqualHistories compares two traces with bitwise float equality —
// the parallel round engine's contract.
func requireEqualHistories(t *testing.T, label string, a, b *History) {
	t.Helper()
	if len(a.Rounds) != len(b.Rounds) {
		t.Fatalf("%s: round counts differ: %d vs %d", label, len(a.Rounds), len(b.Rounds))
	}
	for i := range a.Rounds {
		if a.Rounds[i] != b.Rounds[i] {
			t.Fatalf("%s: round %d differs:\n  %+v\n  %+v", label, i, a.Rounds[i], b.Rounds[i])
		}
	}
	if a.Final != b.Final || a.MeanAttackF1 != b.MeanAttackF1 {
		t.Fatalf("%s: final results differ: %+v/%v vs %+v/%v",
			label, a.Final, a.MeanAttackF1, b.Final, b.MeanAttackF1)
	}
}

// TestHistoryInvariantAcrossWorkerCounts pins the round engine's guarantee:
// the entire History — per-round losses, attack F1, wire bytes, and final
// metrics — is identical whether the round runs serially or on a worker
// pool. This covers the parallel client training, the sharded absorb/train,
// and the parallel dispersal (including its per-client stream derivation).
func TestHistoryInvariantAcrossWorkerCounts(t *testing.T) {
	kinds := []models.Kind{models.KindNeuMF, models.KindLightGCN}
	if testing.Short() {
		kinds = kinds[:1]
	}
	for _, server := range kinds {
		cfg := fastConfig(server)
		cfg.Rounds = 2
		cfg.EvalEvery = 1

		cfg.Workers, cfg.EvalWorkers = 1, 1
		serial := runHistory(t, cfg)
		for _, workers := range []int{2, 8} {
			cfg.Workers, cfg.EvalWorkers = workers, workers
			requireEqualHistories(t, string(server), serial, runHistory(t, cfg))
		}
	}
}

// TestHistoryInvariantRandomDispersal exercises the ablation arms whose
// dispersal draws random items: the per-(round, client) stream derivation
// must make those draws independent of worker count and visit order.
func TestHistoryInvariantRandomDispersal(t *testing.T) {
	modes := []DisperseMode{DisperseNoConf, DisperseNoHard, DisperseAllRandom}
	if testing.Short() {
		modes = modes[:1]
	}
	for _, mode := range modes {
		cfg := fastConfig(models.KindNeuMF)
		cfg.Rounds = 2
		cfg.Disperse = mode

		cfg.Workers, cfg.EvalWorkers = 1, 1
		serial := runHistory(t, cfg)
		cfg.Workers, cfg.EvalWorkers = 8, 8
		requireEqualHistories(t, string(mode), serial, runHistory(t, cfg))
	}
}

// TestHistoryInvariantWithFaults keeps the fault-injection path inside the
// worker-count contract: dropouts and truncations derive from per-client
// streams, so the same clients fail no matter how the pool is sized.
func TestHistoryInvariantWithFaults(t *testing.T) {
	cfg := fastConfig(models.KindNeuMF)
	cfg.Rounds = 2
	cfg.Faults = FaultPlan{DropoutRate: 0.3, TruncateRate: 0.3}

	cfg.Workers, cfg.EvalWorkers = 1, 1
	serial := runHistory(t, cfg)
	cfg.Workers, cfg.EvalWorkers = 8, 8
	requireEqualHistories(t, "faults", serial, runHistory(t, cfg))
}

// runHistoryWithSnapshot executes a full run and also captures the hidden
// server model's final parameters.
func runHistoryWithSnapshot(t *testing.T, cfg Config) (*History, []byte) {
	t.Helper()
	tr, err := NewTrainer(tinySplit(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Server().Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return h, buf.Bytes()
}

// TestHistoryInvariantAcrossTrainWorkers pins the gradient workspace engine's
// guarantee end to end, for every server model kind: the entire History AND
// the hidden model's final parameters are bitwise-identical for
// TrainWorkers ∈ {1, 2, 8}.
func TestHistoryInvariantAcrossTrainWorkers(t *testing.T) {
	kinds := []models.Kind{models.KindMF, models.KindNeuMF, models.KindNGCF, models.KindLightGCN}
	if testing.Short() {
		kinds = []models.Kind{models.KindNeuMF, models.KindLightGCN}
	}
	for _, server := range kinds {
		cfg := fastConfig(server)
		cfg.Rounds = 2
		cfg.EvalEvery = 1
		// A batch size below the trained-sample count would already exercise
		// the engine, but shrink it to guarantee multiple chunks per batch.
		cfg.ServerBatch = 512

		cfg.TrainWorkers = 1
		serial, serialSnap := runHistoryWithSnapshot(t, cfg)
		for _, workers := range []int{2, 8} {
			cfg.TrainWorkers = workers
			h, snap := runHistoryWithSnapshot(t, cfg)
			requireEqualHistories(t, string(server), serial, h)
			if !bytes.Equal(serialSnap, snap) {
				t.Fatalf("%s: TrainWorkers=%d server snapshot differs from TrainWorkers=1", server, workers)
			}
		}
	}
}

// TestPhaseSecondsAccumulate checks the per-phase timers cover the round and
// reset cleanly, without ever entering the deterministic RoundStats.
func TestPhaseSecondsAccumulate(t *testing.T) {
	cfg := fastConfig(models.KindLightGCN)
	cfg.Rounds = 1
	tr, err := NewTrainer(tinySplit(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr.RunRound(0)
	ph := tr.PhaseSeconds()
	if ph.Total() <= 0 {
		t.Fatalf("phase total = %v, want > 0", ph.Total())
	}
	if ph.ClientTrain <= 0 || ph.ServerTrain <= 0 || ph.Disperse <= 0 {
		t.Fatalf("missing phase timings: %+v", ph)
	}
	if ph.GraphBuild <= 0 {
		t.Fatalf("graph server model recorded no graph-build time: %+v", ph)
	}
	tr.ResetPhaseSeconds()
	if tr.PhaseSeconds().Total() != 0 {
		t.Fatal("ResetPhaseSeconds did not zero the timers")
	}
}

// TestTruncatedUploadsHonourWireCodec pins the fault-path codec fix: when
// QuantizeScores is on, a truncated upload must be re-encoded with the
// quantized codec (9-byte triples), not the float32 one.
func TestTruncatedUploadsHonourWireCodec(t *testing.T) {
	cfg := fastConfig(models.KindNeuMF)
	cfg.Rounds = 1
	cfg.QuantizeScores = true
	cfg.Faults = FaultPlan{TruncateRate: 1.0}
	tr, err := NewTrainer(tinySplit(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs := tr.RunRound(0)
	var preds int
	for _, u := range tr.Server().store.Users(nil) {
		preds += len(tr.Server().store.View(u))
	}
	if preds == 0 {
		t.Fatal("no uploads reached the server")
	}
	if want := int64(9 * preds); rs.UploadBytes != want {
		t.Fatalf("UploadBytes = %d, want %d (9 bytes × %d quantized triples)", rs.UploadBytes, want, preds)
	}
}
