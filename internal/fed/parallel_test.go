package fed

import (
	"testing"

	"ptffedrec/internal/models"
)

// runHistory executes a full training run and returns its trace.
func runHistory(t *testing.T, cfg Config) *History {
	t.Helper()
	tr, err := NewTrainer(tinySplit(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// requireEqualHistories compares two traces with bitwise float equality —
// the parallel round engine's contract.
func requireEqualHistories(t *testing.T, label string, a, b *History) {
	t.Helper()
	if len(a.Rounds) != len(b.Rounds) {
		t.Fatalf("%s: round counts differ: %d vs %d", label, len(a.Rounds), len(b.Rounds))
	}
	for i := range a.Rounds {
		if a.Rounds[i] != b.Rounds[i] {
			t.Fatalf("%s: round %d differs:\n  %+v\n  %+v", label, i, a.Rounds[i], b.Rounds[i])
		}
	}
	if a.Final != b.Final || a.MeanAttackF1 != b.MeanAttackF1 {
		t.Fatalf("%s: final results differ: %+v/%v vs %+v/%v",
			label, a.Final, a.MeanAttackF1, b.Final, b.MeanAttackF1)
	}
}

// TestHistoryInvariantAcrossWorkerCounts pins the round engine's guarantee:
// the entire History — per-round losses, attack F1, wire bytes, and final
// metrics — is identical whether the round runs serially or on a worker
// pool. This covers the parallel client training, the sharded absorb/train,
// and the parallel dispersal (including its per-client stream derivation).
func TestHistoryInvariantAcrossWorkerCounts(t *testing.T) {
	kinds := []models.Kind{models.KindNeuMF, models.KindLightGCN}
	if testing.Short() {
		kinds = kinds[:1]
	}
	for _, server := range kinds {
		cfg := fastConfig(server)
		cfg.Rounds = 2
		cfg.EvalEvery = 1

		cfg.Workers, cfg.EvalWorkers = 1, 1
		serial := runHistory(t, cfg)
		for _, workers := range []int{2, 8} {
			cfg.Workers, cfg.EvalWorkers = workers, workers
			requireEqualHistories(t, string(server), serial, runHistory(t, cfg))
		}
	}
}

// TestHistoryInvariantRandomDispersal exercises the ablation arms whose
// dispersal draws random items: the per-(round, client) stream derivation
// must make those draws independent of worker count and visit order.
func TestHistoryInvariantRandomDispersal(t *testing.T) {
	modes := []DisperseMode{DisperseNoConf, DisperseNoHard, DisperseAllRandom}
	if testing.Short() {
		modes = modes[:1]
	}
	for _, mode := range modes {
		cfg := fastConfig(models.KindNeuMF)
		cfg.Rounds = 2
		cfg.Disperse = mode

		cfg.Workers, cfg.EvalWorkers = 1, 1
		serial := runHistory(t, cfg)
		cfg.Workers, cfg.EvalWorkers = 8, 8
		requireEqualHistories(t, string(mode), serial, runHistory(t, cfg))
	}
}

// TestHistoryInvariantWithFaults keeps the fault-injection path inside the
// worker-count contract: dropouts and truncations derive from per-client
// streams, so the same clients fail no matter how the pool is sized.
func TestHistoryInvariantWithFaults(t *testing.T) {
	cfg := fastConfig(models.KindNeuMF)
	cfg.Rounds = 2
	cfg.Faults = FaultPlan{DropoutRate: 0.3, TruncateRate: 0.3}

	cfg.Workers, cfg.EvalWorkers = 1, 1
	serial := runHistory(t, cfg)
	cfg.Workers, cfg.EvalWorkers = 8, 8
	requireEqualHistories(t, "faults", serial, runHistory(t, cfg))
}
