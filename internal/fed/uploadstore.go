package fed

// This file is the server's per-user upload state: the uploadStore contract
// and its two implementations. flatUploadStore is the production engine — a
// sharded arena of contiguous []comm.Prediction slabs with a fixed-stride
// per-user offset/length index, so absorb writes in place, per-user views are
// zero-alloc slices, and graph rebuilds iterate users in index order without
// sorting map keys. mapUploadStore is the retained map-of-slices baseline
// (the DisperseScalar pattern): Config.MapUploadStore forces it, the
// invariance suite pins the two bitwise-identical, and the scalability
// experiment reports both stores' resident bytes side by side.

import (
	"math/bits"
	"sort"

	"ptffedrec/internal/comm"
	"ptffedrec/internal/par"
)

// uploadStore keeps each user's most recent D̂ᵗᵢ — the union of the stored
// uploads is the server's entire view of the interaction structure.
type uploadStore interface {
	// SetBatch absorbs one round of uploads. Uploads come from distinct
	// clients (the round engine samples without replacement) and empty
	// uploads are ignored, matching the historical map semantics. The final
	// state depends only on the batch contents, never on workers.
	SetBatch(uploads [][]comm.Prediction, workers int)

	// View returns user u's latest upload (nil if the user never uploaded).
	// The slice aliases store memory and is valid until the next SetBatch.
	View(u int) []comm.Prediction

	// Users appends every user id with a stored upload to dst in ascending
	// order and returns it — the graph rebuild's iteration order.
	Users(dst []int) []int

	// Count returns how many users have a stored upload.
	Count() int

	// DirtyUsers appends, in ascending order, every user whose stored upload
	// changed since the last ResetDirty and returns dst. Non-consuming: the
	// incremental graph path reads the set, rebuilds, then calls ResetDirty.
	DirtyUsers(dst []int) []int

	// ResetDirty clears the dirty-user set.
	ResetDirty()

	// MemoryBytes reports the store's resident footprint.
	MemoryBytes() int64
}

// newUploadStore picks the engine for a config.
func newUploadStore(numUsers int, cfg *Config) uploadStore {
	if cfg.MapUploadStore {
		return newMapUploadStore()
	}
	return newFlatUploadStore(numUsers)
}

// uploadStoreTargetShards sizes the flat store's user partitioning: the
// power-of-two stride is the smallest that covers the user universe in about
// this many shards. The shard count is a function of the universe alone —
// never of worker count — so shard-parallel absorbs are deterministic and a
// future multi-node round engine can distribute fixed shards.
const uploadStoreTargetShards = 64

// uploadShard is one fixed user partition: a contiguous prediction slab plus
// fixed-stride offset/length/capacity indexes (one int32 triple per user in
// the partition). A user's upload lives at slab[off : off+len] inside its
// reserved region [off : off+cap]; rewrites that fit the region are in-place
// copies, rewrites that don't abandon the region (tracked in dead) and
// append a fresh one with an eighth of slack, and the shard compacts when
// abandoned capacity exceeds the live half of the slab.
type uploadShard struct {
	lo   int // first user id of this shard
	slab []comm.Prediction
	off  []int32 // per local user: slab offset of the reserved region
	n    []int32 // per local user: live upload length (0 = never uploaded)
	cap_ []int32 // per local user: reserved region capacity
	dead int     // slab entries in abandoned regions
	live int     // slab entries in reserved regions of users with an upload

	// dirty is a bitset over the shard's local users, marking uploads written
	// since the last ResetDirty (1 bit per user; ~0.125 B/user). dirtyAny
	// lets the dirty scan and reset skip untouched shards entirely.
	dirty    []uint64
	dirtyAny bool
}

// set absorbs this shard's share of a round: idxs selects the batch uploads
// whose user falls in the shard. Only this shard's memory is touched, so
// shards absorb in parallel without synchronisation.
func (sh *uploadShard) set(uploads [][]comm.Prediction, idxs []int32) {
	for _, i := range idxs {
		up := uploads[i]
		u := up[0].User - sh.lo
		m := int32(len(up))
		if sh.cap_[u] >= m {
			copy(sh.slab[sh.off[u]:], up)
		} else {
			if sh.cap_[u] > 0 {
				sh.dead += int(sh.cap_[u])
				sh.live -= int(sh.cap_[u])
			}
			// Reserve an eighth of slack so per-round upload-length jitter
			// stays in place instead of abandoning a region every round.
			reserve := m + m/8
			sh.off[u] = int32(len(sh.slab))
			sh.cap_[u] = reserve
			sh.slab = append(sh.slab, up...)
			for r := m; r < reserve; r++ {
				sh.slab = append(sh.slab, comm.Prediction{})
			}
			sh.live += int(reserve)
		}
		sh.n[u] = m
	}
	if sh.dead > sh.live {
		sh.compact()
	}
}

// compact rewrites the slab with only the reserved regions of users that
// have an upload, in local-user order. Regions keep their capacity (the
// slack is live headroom, not garbage), so compaction never forces the next
// rewrite to relocate.
func (sh *uploadShard) compact() {
	packed := make([]comm.Prediction, 0, sh.live)
	for u := range sh.off {
		if sh.n[u] == 0 {
			continue
		}
		newOff := int32(len(packed))
		packed = append(packed, sh.slab[sh.off[u]:sh.off[u]+sh.cap_[u]]...)
		sh.off[u] = newOff
	}
	sh.slab = packed
	sh.dead = 0
}

// flatUploadStore shards the user universe at a fixed power-of-two stride.
type flatUploadStore struct {
	shards     []uploadShard
	strideBits uint
	users      int       // users with a stored upload
	route      [][]int32 // per-shard upload indexes, reused across rounds
}

func newFlatUploadStore(numUsers int) *flatUploadStore {
	stride := 64
	for stride*uploadStoreTargetShards < numUsers {
		stride <<= 1
	}
	nShards := (numUsers + stride - 1) / stride
	if nShards == 0 {
		nShards = 1
	}
	st := &flatUploadStore{
		shards:     make([]uploadShard, nShards),
		strideBits: uint(bits.TrailingZeros(uint(stride))),
		route:      make([][]int32, nShards),
	}
	for si := range st.shards {
		lo := si * stride
		span := stride
		if lo+span > numUsers {
			span = numUsers - lo
		}
		st.shards[si] = uploadShard{
			lo:    lo,
			off:   make([]int32, span),
			n:     make([]int32, span),
			cap_:  make([]int32, span),
			dirty: make([]uint64, (span+63)/64),
		}
	}
	return st
}

func (st *flatUploadStore) SetBatch(uploads [][]comm.Prediction, workers int) {
	// Route uploads to shards sequentially (cheap: one append per upload),
	// then absorb shard-parallel — each worker touches only its shards'
	// memory, and the per-shard write order is the batch order regardless of
	// worker count.
	for si := range st.route {
		st.route[si] = st.route[si][:0]
	}
	for i, up := range uploads {
		if len(up) == 0 {
			continue
		}
		si := up[0].User >> st.strideBits
		sh := &st.shards[si]
		local := up[0].User - sh.lo
		if sh.n[local] == 0 {
			st.users++
		}
		sh.dirty[local>>6] |= 1 << (uint(local) & 63)
		sh.dirtyAny = true
		st.route[si] = append(st.route[si], int32(i))
	}
	if par.Workers(workers) <= 1 {
		// Explicit serial loop: the par.For closure below would heap-allocate
		// even when it degenerates to an inline loop, and the steady-state
		// absorb path pins zero allocations.
		for si := range st.shards {
			st.shards[si].set(uploads, st.route[si])
		}
		return
	}
	par.For(len(st.shards), par.Workers(workers), func(si int) {
		st.shards[si].set(uploads, st.route[si])
	})
}

func (st *flatUploadStore) View(u int) []comm.Prediction {
	sh := &st.shards[u>>st.strideBits]
	local := u - sh.lo
	if sh.n[local] == 0 {
		return nil
	}
	return sh.slab[sh.off[local] : sh.off[local]+sh.n[local]]
}

func (st *flatUploadStore) Users(dst []int) []int {
	for si := range st.shards {
		sh := &st.shards[si]
		for local, n := range sh.n {
			if n > 0 {
				dst = append(dst, sh.lo+local)
			}
		}
	}
	return dst
}

func (st *flatUploadStore) Count() int { return st.users }

func (st *flatUploadStore) DirtyUsers(dst []int) []int {
	for si := range st.shards {
		sh := &st.shards[si]
		if !sh.dirtyAny {
			continue
		}
		for wi, w := range sh.dirty {
			for w != 0 {
				b := bits.TrailingZeros64(w)
				dst = append(dst, sh.lo+wi*64+b)
				w &^= 1 << uint(b)
			}
		}
	}
	return dst
}

func (st *flatUploadStore) ResetDirty() {
	for si := range st.shards {
		sh := &st.shards[si]
		if !sh.dirtyAny {
			continue
		}
		for wi := range sh.dirty {
			sh.dirty[wi] = 0
		}
		sh.dirtyAny = false
	}
}

func (st *flatUploadStore) MemoryBytes() int64 {
	var b int64
	for si := range st.shards {
		sh := &st.shards[si]
		b += int64(cap(sh.slab)) * comm.PredictionMemBytes
		b += int64(len(sh.off)+len(sh.n)+len(sh.cap_)) * 4
		b += int64(len(sh.dirty)) * 8
	}
	for _, r := range st.route {
		b += int64(cap(r)) * 4
	}
	return b
}

// mapUploadStore is the historical map-of-slices state, kept as the
// baseline: each entry aliases the round's upload slice directly.
type mapUploadStore struct {
	m     map[int][]comm.Prediction
	dirty map[int]struct{}
}

func newMapUploadStore() *mapUploadStore {
	return &mapUploadStore{m: map[int][]comm.Prediction{}, dirty: map[int]struct{}{}}
}

func (st *mapUploadStore) SetBatch(uploads [][]comm.Prediction, workers int) {
	for _, up := range uploads {
		if len(up) == 0 {
			continue
		}
		st.m[up[0].User] = up
		st.dirty[up[0].User] = struct{}{}
	}
}

func (st *mapUploadStore) View(u int) []comm.Prediction { return st.m[u] }

func (st *mapUploadStore) Users(dst []int) []int {
	start := len(dst)
	for u := range st.m {
		dst = append(dst, u)
	}
	sort.Ints(dst[start:])
	return dst
}

func (st *mapUploadStore) Count() int { return len(st.m) }

func (st *mapUploadStore) DirtyUsers(dst []int) []int {
	start := len(dst)
	for u := range st.dirty {
		dst = append(dst, u)
	}
	sort.Ints(dst[start:])
	return dst
}

func (st *mapUploadStore) ResetDirty() {
	clear(st.dirty)
}

// mapEntryOverheadBytes approximates one map entry's bookkeeping: the
// int key, the slice header, and the runtime's per-entry bucket share.
const mapEntryOverheadBytes = 8 + 24 + 16

func (st *mapUploadStore) MemoryBytes() int64 {
	b := int64(len(st.m)) * mapEntryOverheadBytes
	for _, up := range st.m {
		b += int64(cap(up)) * comm.PredictionMemBytes
	}
	return b
}
