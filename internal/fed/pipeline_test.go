package fed

import (
	"fmt"
	"testing"

	"ptffedrec/internal/models"
)

// pipelineConfig shapes a run that actually exercises both pipeline waves:
// partial participation keeps cohorts changing round to round, so every
// round has dependency-free clients (the free wave) and dispersal-gated
// clients (the gated wave). A mid-run evaluation exercises the overlapped
// eval inside the pipelined close.
func pipelineConfig(server models.Kind, workers int, faulted bool) Config {
	cfg := fastConfig(server)
	cfg.Rounds = 4
	cfg.ClientFraction = 0.3
	cfg.EvalEvery = 2
	cfg.Workers = workers
	cfg.EvalWorkers = workers
	cfg.TrainWorkers = workers
	if faulted {
		cfg.Faults = FaultPlan{DropoutRate: 0.2, TruncateRate: 0.25}
	}
	return cfg
}

// TestPipelinedMatchesSequential pins the tentpole invariant: the cross-round
// pipelined schedule produces a History bitwise-identical to the serialized
// Config.SequentialRounds baseline, across every model kind, worker count,
// and fault plan. The dependency rule (gate a round-(r+1) client on round r's
// dispersal iff it was in round r's cohort) plus pure per-(round, client)
// stream derivation make training order across rounds unobservable.
func TestPipelinedMatchesSequential(t *testing.T) {
	kinds := []models.Kind{models.KindMF, models.KindNeuMF, models.KindNGCF, models.KindLightGCN}
	workerCounts := []int{1, 2, 8}
	if testing.Short() {
		kinds = []models.Kind{models.KindNeuMF, models.KindLightGCN}
		workerCounts = []int{1, 8}
	}
	for _, kind := range kinds {
		for _, workers := range workerCounts {
			for _, faulted := range []bool{false, true} {
				name := fmt.Sprintf("%s/w%d/faulted=%v", kind, workers, faulted)
				t.Run(name, func(t *testing.T) {
					cfg := pipelineConfig(kind, workers, faulted)
					seq := cfg
					seq.SequentialRounds = true
					requireEqualHistories(t, name, runHistory(t, cfg), runHistory(t, seq))
				})
			}
		}
	}
}

// TestPipelinedFullParticipation pins the degenerate dependency graph: at
// ClientFraction 1.0 every round-(r+1) client was in cohort(r), so the free
// wave is empty and the pipeline must collapse to the sequential schedule —
// still bitwise-identical, with nothing overlapped.
func TestPipelinedFullParticipation(t *testing.T) {
	cfg := pipelineConfig(models.KindNeuMF, 4, true)
	cfg.ClientFraction = 1.0
	seq := cfg
	seq.SequentialRounds = true
	requireEqualHistories(t, "full-participation", runHistory(t, cfg), runHistory(t, seq))
}

// TestPipelinedWorkerInvariance pins that the pipelined schedule keeps the
// engine's original guarantee: one pipelined History, any worker count.
func TestPipelinedWorkerInvariance(t *testing.T) {
	base := runHistory(t, pipelineConfig(models.KindLightGCN, 1, true))
	for _, workers := range []int{2, 8} {
		h := runHistory(t, pipelineConfig(models.KindLightGCN, workers, true))
		requireEqualHistories(t, fmt.Sprintf("pipelined w%d vs w1", workers), base, h)
	}
}
