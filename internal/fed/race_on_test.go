//go:build race

package fed

// raceEnabled gates the steady-state allocation pins: race instrumentation
// can add bookkeeping allocations that have nothing to do with the store's
// behaviour, so the exact-zero assertions only run in uninstrumented builds.
const raceEnabled = true
