package fed

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"ptffedrec/internal/comm"
	"ptffedrec/internal/graph"
	"ptffedrec/internal/models"
	"ptffedrec/internal/rng"
	"ptffedrec/internal/tensor"
)

// requireSameCSR compares two CSR matrices with bit-level value equality —
// the incremental graph engine's contract against the full rebuild.
func requireSameCSR(t *testing.T, label string, a, b *tensor.CSR) {
	t.Helper()
	if a.Rows != b.Rows || a.Cols != b.Cols || a.NNZ() != b.NNZ() {
		t.Fatalf("%s: shape/nnz %dx%d/%d vs %dx%d/%d",
			label, a.Rows, a.Cols, a.NNZ(), b.Rows, b.Cols, b.NNZ())
	}
	for r := 0; r <= a.Rows; r++ {
		if a.RowPtr[r] != b.RowPtr[r] {
			t.Fatalf("%s: RowPtr[%d] = %d vs %d", label, r, a.RowPtr[r], b.RowPtr[r])
		}
	}
	for i := range a.Val {
		if a.ColIdx[i] != b.ColIdx[i] || math.Float64bits(a.Val[i]) != math.Float64bits(b.Val[i]) {
			t.Fatalf("%s: entry %d = (%d,%x) vs (%d,%x)",
				label, i, a.ColIdx[i], a.Val[i], b.ColIdx[i], b.Val[i])
		}
	}
}

// fullAdjFromStore rebuilds the bipartite graph from the server's entire
// upload store from scratch — the reference the incremental engine must
// reproduce bitwise.
func fullAdjFromStore(sv *Server, workers int) (*tensor.CSR, *tensor.CSR) {
	users, off, slab := sv.collectEdges(workers)
	g := graph.NewBipartite(sv.numUsers, sv.numItems)
	for i := range users {
		for _, e := range slab[off[i]:off[i+1]] {
			g.AddEdge(e.User, e.Item, e.Weight)
		}
	}
	return g.NormalizedAdjPar(workers), g.NormalizedAdjSelfPar(workers)
}

// checkIncMatchesFull asserts the server's maintained adjacency (both
// operators) bitwise-equals the from-scratch build of the current store.
func checkIncMatchesFull(t *testing.T, label string, sv *Server, workers int) {
	t.Helper()
	if sv.inc == nil {
		t.Fatalf("%s: incremental engine not engaged", label)
	}
	fullAdj, fullSelf := fullAdjFromStore(sv, workers)
	requireSameCSR(t, label+"/adj", fullAdj, sv.inc.AdjInto(nil, workers))
	requireSameCSR(t, label+"/adj+I", fullSelf, sv.inc.AdjSelfInto(nil, workers))
}

// TestIncrementalAdjacencyMatchesFull drives servers through randomized
// partial-participation absorb/rebuild sequences — users re-uploading,
// batches from a handful of users up to everyone, both soft-positive rules —
// and requires the maintained adjacency to bitwise-equal a from-scratch
// NormalizedAdjPar build after every round.
func TestIncrementalAdjacencyMatchesFull(t *testing.T) {
	const numUsers, numItems = 300, 80
	for _, tc := range []struct {
		name   string
		mutate func(*Config)
	}{
		{"threshold", func(c *Config) { c.GraphThreshold = 0.4 }},
		{"topfrac", func(c *Config) { c.GraphTopFrac = 0.3 }},
	} {
		for _, workers := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", tc.name, workers), func(t *testing.T) {
				sv := storeTestServer(t, numUsers, numItems, func(c *Config) {
					c.ServerModel = models.KindLightGCN
					tc.mutate(c)
				})
				s := rng.New(17).Derive("incadj")
				rounds := 8
				if testing.Short() {
					rounds = 4
				}
				for r := 0; r < rounds; r++ {
					n := 1 + s.Intn(numUsers)
					uploads := make([][]comm.Prediction, 0, n)
					for _, u := range s.SampleInts(numUsers, n) {
						uploads = append(uploads, makeUpload(u, 1+s.Intn(14), numItems, s))
					}
					sv.absorb(uploads, workers)
					sv.rebuildGraph(workers)
					checkIncMatchesFull(t, fmt.Sprintf("round %d", r), sv, workers)
				}
			})
		}
	}
}

// TestGraphRebuildInvariance is the end-to-end pin demanded by the graph
// engine's contract: for every server model kind, dispersal ablation arm,
// and worker count, training with the incremental graph path reproduces the
// Config.FullGraphRebuild baseline's History bit for bit.
func TestGraphRebuildInvariance(t *testing.T) {
	kinds := []models.Kind{models.KindMF, models.KindNeuMF, models.KindNGCF, models.KindLightGCN}
	arms := []DisperseMode{DisperseConfHard, DisperseNoHard, DisperseNoConf, DisperseAllRandom}
	workerCounts := []int{1, 2, 8}
	if testing.Short() {
		kinds = []models.Kind{models.KindNGCF, models.KindLightGCN}
		arms = []DisperseMode{DisperseConfHard, DisperseAllRandom}
		workerCounts = []int{1, 8}
	}
	for _, server := range kinds {
		for _, arm := range arms {
			cfg := fastConfig(server)
			cfg.Rounds = 2
			cfg.EvalEvery = 1
			cfg.Disperse = arm
			for _, workers := range workerCounts {
				cfg.Workers, cfg.EvalWorkers = workers, workers
				cfg.FullGraphRebuild = false
				incr := runHistory(t, cfg)
				cfg.FullGraphRebuild = true
				requireEqualHistories(t, fmt.Sprintf("%s/%s/workers=%d", server, arm, workers),
					incr, runHistory(t, cfg))
			}
		}
	}
}

// TestGraphRebuildFallbackOnZeroWeight pins the refusal path: a selected
// edge with weight 0 (reachable only with GraphThreshold = 0) must trip the
// permanent full-rebuild fallback instead of corrupting the engine — and the
// fallback must keep producing the correct graph.
func TestGraphRebuildFallbackOnZeroWeight(t *testing.T) {
	sv := storeTestServer(t, 50, 20, func(c *Config) {
		c.ServerModel = models.KindLightGCN
		c.GraphThreshold = 0
	})
	// Round 1: positive weights, incremental path engages.
	s := rng.New(5).Derive("fallback")
	sv.absorb([][]comm.Prediction{makeUpload(3, 6, 20, s)}, 1)
	sv.rebuildGraph(1)
	if sv.inc == nil || sv.incBroken {
		t.Fatal("incremental path did not engage on positive weights")
	}
	// Round 2: a zero-score upload selected by the zero threshold.
	sv.absorb([][]comm.Prediction{{{User: 7, Item: 2, Score: 0}}}, 1)
	sv.rebuildGraph(1)
	if !sv.incBroken {
		t.Fatal("zero-weight edge did not trip the fallback")
	}
	// Later rounds stay on the full path and keep absorbing fine.
	sv.absorb([][]comm.Prediction{makeUpload(9, 4, 20, s)}, 1)
	sv.rebuildGraph(1)
	if gm, ok := sv.model.(models.GraphRecommender); !ok || gm == nil {
		t.Fatal("server model lost its graph capability")
	}
}

// TestRunRoundEvalSequentialFallback pins satellite behaviour of the
// GOMAXPROCS gate: with one schedulable thread RunRoundEval runs eval
// sequentially after dispersal, and the History is bitwise-identical to the
// overlapped run (which in turn equals RunRound + EvaluateServer).
func TestRunRoundEvalSequentialFallback(t *testing.T) {
	cfg := fastConfig(models.KindLightGCN)
	cfg.Rounds = 2
	cfg.EvalEvery = 1
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	runtime.GOMAXPROCS(2)
	overlapped := runHistory(t, cfg)

	runtime.GOMAXPROCS(1)
	tr, err := NewTrainer(tinySplit(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sequential, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	requireEqualHistories(t, "sequential-eval fallback", overlapped, sequential)
	ph := tr.PhaseSeconds()
	if ph.Eval <= 0 || ph.DisperseEvalWall <= 0 {
		t.Fatalf("sequential fallback lost phase accounting: eval=%v wall=%v", ph.Eval, ph.DisperseEvalWall)
	}
	if ph.DisperseEvalWall < ph.Eval {
		t.Fatalf("sequential wall %v must cover eval %v", ph.DisperseEvalWall, ph.Eval)
	}
}

// FuzzGraphRebuild feeds randomized absorb/rebuild sequences (participation
// 1 user to everyone, re-uploads, both soft-positive rules, fuzzed worker
// counts) through the server and asserts the incremental adjacency
// bitwise-equals the from-scratch build every round.
func FuzzGraphRebuild(f *testing.F) {
	f.Add(uint64(1), uint8(3), false)
	f.Add(uint64(77), uint8(5), true)
	f.Add(uint64(123456), uint8(1), false)
	f.Fuzz(func(t *testing.T, seed uint64, nRounds uint8, topFrac bool) {
		const numUsers, numItems = 80, 30
		sv := storeTestServer(t, numUsers, numItems, func(c *Config) {
			c.ServerModel = models.KindLightGCN
			if topFrac {
				c.GraphTopFrac = 0.4
			} else {
				c.GraphThreshold = 0.3
			}
		})
		s := rng.New(seed).Derive("fuzz-graph")
		workers := 1 + s.Intn(8)
		rounds := int(nRounds%5) + 1
		for r := 0; r < rounds; r++ {
			n := 1 + s.Intn(numUsers)
			uploads := make([][]comm.Prediction, 0, n)
			for _, u := range s.SampleInts(numUsers, n) {
				uploads = append(uploads, makeUpload(u, 1+s.Intn(10), numItems, s))
			}
			sv.absorb(uploads, workers)
			sv.rebuildGraph(workers)
			checkIncMatchesFull(t, fmt.Sprintf("round %d", r), sv, workers)
		}
	})
}

// rebuildBenchServer builds a warmed graph server over 600 users with 200
// stored uploads plus a cycle of small re-upload batches — the steady
// partial-participation shape (1% of users change per round).
func rebuildBenchServer(b *testing.B, full bool) (*Server, [][][]comm.Prediction) {
	b.Helper()
	const numUsers, numItems = 600, 150
	sv := storeTestServer(b, numUsers, numItems, func(c *Config) {
		c.ServerModel = models.KindLightGCN
		c.GraphThreshold = 0.4
		c.FullGraphRebuild = full
	})
	s := rng.New(21).Derive("bench-rebuild")
	seedUploads := make([][]comm.Prediction, 0, 200)
	for _, u := range s.SampleInts(numUsers, 200) {
		seedUploads = append(seedUploads, makeUpload(u, 4+s.Intn(12), numItems, s))
	}
	sv.absorb(seedUploads, 1)
	sv.rebuildGraph(1)
	batches := make([][][]comm.Prediction, 8)
	for i := range batches {
		batch := make([][]comm.Prediction, 0, 6)
		for _, u := range s.SampleInts(numUsers, 6) {
			batch = append(batch, makeUpload(u, 4+s.Intn(12), numItems, s))
		}
		batches[i] = batch
	}
	return sv, batches
}

// BenchmarkRebuildGraph measures one steady-state graph rebuild after a 1%
// re-upload round, full path vs incremental engine. The -benchmem numbers
// are the regression pin: the incremental path must not scale allocations
// with the store size.
func BenchmarkRebuildGraph(b *testing.B) {
	for _, mode := range []struct {
		name string
		full bool
	}{{"full", true}, {"incremental", false}} {
		b.Run(mode.name, func(b *testing.B) {
			sv, batches := rebuildBenchServer(b, mode.full)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sv.absorb(batches[i%len(batches)], 1)
				sv.rebuildGraph(1)
			}
		})
	}
}
