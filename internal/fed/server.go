package fed

import (
	"fmt"
	"io"
	"sort"
	"time"

	"ptffedrec/internal/bitset"
	"ptffedrec/internal/comm"
	"ptffedrec/internal/graph"
	"ptffedrec/internal/metrics"
	"ptffedrec/internal/models"
	"ptffedrec/internal/par"
	"ptffedrec/internal/rng"
)

// Server owns the provider's hidden model. Nothing about it — architecture,
// parameters, optimizer — ever leaves this struct; the only outputs are
// prediction scores.
type Server struct {
	model models.Recommender
	cfg   *Config
	s     *rng.Stream

	numUsers, numItems int

	// itemFreq counts how many uploaded triples touched each item — the
	// embedding-update-frequency confidence measure of Eq. 9.
	itemFreq []int

	// store keeps each user's most recent D̂ᵗᵢ; the union is the server's
	// entire view of the interaction structure, from which it rebuilds its
	// graph every round. The flat sharded arena is the default engine;
	// Config.MapUploadStore retains the map baseline.
	store uploadStore

	// elig is the dispersal engine's shared eligibility cache: a bounded LRU
	// of int32-packed eligible lists keyed by (client, upload generation),
	// rebuilt with a word walk over the lastUpload bitset on a miss. Only the
	// batched dispersal path reads it.
	elig *eligCache

	// ident is the identity item list 0..numItems-1 — the shared candidate
	// block the batched dispersal engine slices score chunks from.
	ident []int

	// hist holds per-worker histogram scratch for absorb's sharded counter
	// pass, so steady-state rounds allocate nothing there.
	hist [][]int

	// Graph-build scratch, reused across rounds so the steady-state edge
	// collection does no per-user allocation: the stored-user list, the
	// per-user edge offsets, the edge slab the selection pass fills, and the
	// serial path's rank-order sorter.
	graphUsers []int
	edgeOff    []int
	edgeSlab   []graph.Edge
	edgeSort   edgeSorter

	// Incremental graph engine state (graph server models only): the
	// maintained adjacency, the reused dirty-user buffer, and the permanent
	// fallback flag. The engine requires strictly positive edge weights (the
	// full build skips zero-degree endpoints, which would make row membership
	// data-dependent); a non-positive selected weight — only reachable with
	// GraphThreshold <= 0 — trips incBroken and every later round takes the
	// full rebuild, which is bitwise-identical anyway.
	inc       *graph.Incremental
	incDirty  []int
	incBroken bool

	// upGen counts absorbed (non-empty) uploads per user — the server-side
	// upload generation the dispersal eligibility cache keys invalidation on.
	// uint32 keeps the per-user cost at 4 B for million-user stores; empty
	// uploads don't bump it because the store's SetBatch ignores them, so the
	// generation and the stored view always move together.
	upGen []uint32

	// Fused edge-selection state: when the incremental graph engine will run,
	// absorb selects the round's edges directly from the upload slices it is
	// already holding — instead of writing the store and immediately re-reading
	// every dirty user's view in rebuildGraph. fusedUsers/fusedOff/fusedSlab
	// mirror collectEdgesFor's (users, off, slab) shape; fusedValid marks one
	// unconsumed selection, and rebuildGraphIncremental uses it only when the
	// store's dirty set matches exactly (the two-pass path stays as the
	// fallback and the tests' cross-check). fusedSecs accrues the selection
	// time spent inside absorb so the round engine can attribute it to the
	// graph-build phase.
	fusedUsers []int
	fusedOff   []int
	fusedSlab  []graph.Edge
	fusedIdx   []int32
	fusedSort  uploadOrderSorter
	fusedValid bool
	fusedSecs  float64
}

// newServer builds the hidden server model.
func newServer(numUsers, numItems int, cfg *Config, parent *rng.Stream) (*Server, error) {
	mcfg := models.Config{
		NumUsers: numUsers,
		NumItems: numItems,
		Dim:      cfg.Dim,
		LR:       cfg.LR,
		Layers:   cfg.Layers,
		// The hidden model's SGD shards every batch over the gradient
		// workspace engine; 0 resolves to GOMAXPROCS like the other knobs.
		TrainWorkers: par.Workers(cfg.TrainWorkers),
		Seed:         cfg.Seed ^ 0xabcdef12345678,
	}
	m, err := models.New(cfg.ServerModel, mcfg)
	if err != nil {
		return nil, fmt.Errorf("fed: server: %w", err)
	}
	ident := make([]int, numItems)
	for v := range ident {
		ident[v] = v
	}
	return &Server{
		model:    m,
		cfg:      cfg,
		s:        parent.Derive("server"),
		numUsers: numUsers,
		numItems: numItems,
		itemFreq: make([]int, numItems),
		store:    newUploadStore(numUsers, cfg),
		elig:     newEligCache(cfg.EligCacheEntries),
		ident:    ident,
		upGen:    make([]uint32, numUsers),
	}, nil
}

// Model returns the server's recommender (the paper's Ms).
func (sv *Server) Model() models.Recommender { return sv.model }

// Snapshot persists the hidden model's parameters and optimizer state — the
// provider's actual asset. The snapshot never travels through the protocol;
// it exists so the provider can checkpoint and serve the model out-of-band.
// Because the Adam moments travel with the weights, a restored server resumes
// a long run bit-for-bit where the checkpoint left off.
func (sv *Server) Snapshot(w io.Writer) error {
	return sv.model.(models.Snapshotter).Snapshot(w)
}

// Restore loads a snapshot previously written by Snapshot into the hidden
// model (same Config required).
func (sv *Server) Restore(r io.Reader) error {
	return sv.model.(models.Snapshotter).Restore(r)
}

// ItemFrequency returns the confidence counter for item v.
func (sv *Server) ItemFrequency(v int) int { return sv.itemFreq[v] }

// UploadStoreBytes reports the resident bytes of the per-user upload store —
// the scalability experiment's memory-accounting hook.
func (sv *Server) UploadStoreBytes() int64 { return sv.store.MemoryBytes() }

// EligCacheBytes reports the resident bytes of the dispersal eligibility
// cache.
func (sv *Server) EligCacheBytes() int64 { return sv.elig.memoryBytes() }

// GraphEngineBytes reports the resident bytes of the incremental graph
// engine's maintained rows, postings, and scratch (0 when the server model
// is not a graph model or runs with FullGraphRebuild).
func (sv *Server) GraphEngineBytes() int64 {
	if sv.inc == nil {
		return 0
	}
	return sv.inc.MemoryBytes()
}

// countUploadItems accumulates the uploads' item frequencies into counts.
// Out-of-range items are skipped; the bound is len(counts) — the item
// universe — so the single-worker and sharded absorb paths share one rule by
// construction.
func countUploadItems(counts []int, uploads [][]comm.Prediction) {
	for _, up := range uploads {
		for _, p := range up {
			if p.Item >= 0 && p.Item < len(counts) {
				counts[p.Item]++
			}
		}
	}
}

// absorb ingests one round of uploads: updates confidence counters and the
// per-user latest views. The counter pass shards the uploads over workers,
// each accumulating into a private (reused) histogram; the shard histograms
// merge sequentially, so counts are exact integers regardless of worker
// count. The view updates go to the upload store, sharded over fixed user
// partitions. Steady-state rounds allocate nothing here.
func (sv *Server) absorb(uploads [][]comm.Prediction, workers int) {
	workers = par.Workers(workers)
	if workers > len(uploads) {
		workers = len(uploads)
	}
	if workers <= 1 {
		countUploadItems(sv.itemFreq, uploads)
	} else {
		for len(sv.hist) < workers {
			sv.hist = append(sv.hist, nil)
		}
		partial := sv.hist[:workers]
		chunk := (len(uploads) + workers - 1) / workers
		par.For(workers, workers, func(w int) {
			counts := partial[w]
			if counts == nil {
				counts = make([]int, sv.numItems)
				partial[w] = counts
			} else {
				for i := range counts {
					counts[i] = 0
				}
			}
			lo, hi := w*chunk, (w+1)*chunk
			if hi > len(uploads) {
				hi = len(uploads)
			}
			if lo < hi {
				countUploadItems(counts, uploads[lo:hi])
			}
		})
		for _, counts := range partial {
			for v, c := range counts {
				sv.itemFreq[v] += c
			}
		}
	}
	sv.store.SetBatch(uploads, workers)
	for _, up := range uploads {
		if len(up) == 0 {
			continue
		}
		if u := up[0].User; u >= 0 && u < len(sv.upGen) {
			sv.upGen[u]++
		}
	}
	sv.fusedValid = false
	if _, ok := sv.model.(models.GraphDeltaRecommender); ok && !sv.cfg.FullGraphRebuild && !sv.incBroken {
		start := time.Now()
		sv.fuseEdgeSelection(uploads, workers)
		sv.fusedSecs += time.Since(start).Seconds()
	}
}

// fuseEdgeSelection runs the incremental graph path's edge selection on the
// round's upload slices while absorb still holds them, saving rebuildGraph a
// full re-read of every dirty user's stored view. The selection is the same
// two-pass count/fill over the same soft-positive rules (countEdgesIn /
// fillEdgesIn are shared with the store-reading path), over the non-empty
// uploads in ascending user order — exactly the store's dirty order.
func (sv *Server) fuseEdgeSelection(uploads [][]comm.Prediction, workers int) {
	idx := sv.fusedIdx[:0]
	for i, up := range uploads {
		if len(up) > 0 {
			idx = append(idx, int32(i))
		}
	}
	sv.fusedIdx = idx
	sv.fusedSort.idx, sv.fusedSort.uploads = idx, uploads
	sort.Sort(&sv.fusedSort)
	sv.fusedSort.uploads = nil

	users := sv.fusedUsers
	if cap(users) < len(idx) {
		users = make([]int, len(idx))
	}
	users = users[:len(idx):cap(users)]
	sv.fusedUsers = users
	off := sv.fusedOff
	if cap(off) < len(idx)+1 {
		off = make([]int, len(idx)+1)
	}
	off = off[: len(idx)+1 : cap(off)]
	sv.fusedOff = off

	workers = par.Workers(workers)
	off[0] = 0
	if workers <= 1 {
		for i, ui := range idx {
			up := uploads[ui]
			users[i] = up[0].User
			off[i+1] = sv.countEdgesIn(up)
		}
	} else {
		cIdx, cUsers, cOff := idx, users, off
		par.For(len(cIdx), workers, func(i int) {
			up := uploads[cIdx[i]]
			cUsers[i] = up[0].User
			cOff[i+1] = sv.countEdgesIn(up)
		})
	}
	for i := 1; i <= len(idx); i++ {
		off[i] += off[i-1]
	}

	slab := sv.fusedSlab
	if cap(slab) < off[len(idx)] {
		slab = make([]graph.Edge, off[len(idx)])
	}
	slab = slab[:off[len(idx)]]
	sv.fusedSlab = slab

	if workers <= 1 {
		for i, ui := range idx {
			sv.fillEdgesIn(users[i], uploads[ui], slab[off[i]:off[i+1]], &sv.edgeSort)
		}
	} else {
		cIdx, cUsers, cOff, cSlab := idx, users, off, slab
		chunk := (len(cIdx) + workers - 1) / workers
		par.ForChunks(len(cIdx), chunk, workers, func(lo, hi int) {
			var sorter edgeSorter
			for i := lo; i < hi; i++ {
				sv.fillEdgesIn(cUsers[i], uploads[cIdx[i]], cSlab[cOff[i]:cOff[i+1]], &sorter)
			}
		})
	}
	sv.fusedValid = true
}

// uploadOrderSorter orders upload indices by user id ascending — the
// allocation-free sorter the fused selection uses to match the store's dirty
// order. Uploads carry one user each, so the first prediction's id is the key.
type uploadOrderSorter struct {
	idx     []int32
	uploads [][]comm.Prediction
}

func (s *uploadOrderSorter) Len() int { return len(s.idx) }
func (s *uploadOrderSorter) Less(a, b int) bool {
	return s.uploads[s.idx[a]][0].User < s.uploads[s.idx[b]][0].User
}
func (s *uploadOrderSorter) Swap(a, b int) { s.idx[a], s.idx[b] = s.idx[b], s.idx[a] }

// takeFusedSecs drains the time absorb spent on fused edge selection, so the
// round engine can move it from the absorb phase to the graph-build phase.
func (sv *Server) takeFusedSecs() float64 {
	s := sv.fusedSecs
	sv.fusedSecs = 0
	return s
}

// rebuildGraph reconstructs the server's bipartite graph from every user's
// latest upload. Soft-positive edges come either from an absolute score
// threshold or, when GraphTopFrac is set, from each user's top-scored
// fraction (robust to per-client calibration drift). Only graph server
// models pay this cost; SetGraph itself shards the adjacency/CSR build over
// the model's TrainWorkers.
//
// The edge collection runs over the upload store's ascending user order —
// there are no map keys to sort — in two passes over a reused slab: a
// parallel count pass fixes each user's edge range by prefix sum, a parallel
// fill pass writes each user's edges into its own range, and the slab is
// replayed in user order. Edge insertion order — which decides the order
// degree weights accumulate in, and therefore the propagated floats —
// matches the serial construction exactly for any worker count.
//
// When the server model implements GraphDeltaRecommender, the default path
// is incremental: only users whose stored upload changed since the last
// rebuild (the store's dirty set) re-run edge selection, and the maintained
// adjacency engine patches exactly the affected rows, degrees, and
// normalization values — bitwise-identical to the full rebuild by the
// engine's construction. Config.FullGraphRebuild retains the full path as
// the timing baseline.
func (sv *Server) rebuildGraph(workers int) {
	gm, ok := sv.model.(models.GraphRecommender)
	if !ok {
		return
	}
	if dm, ok := sv.model.(models.GraphDeltaRecommender); ok && !sv.cfg.FullGraphRebuild && !sv.incBroken {
		if sv.rebuildGraphIncremental(dm, workers) {
			return
		}
		sv.incBroken = true
	}
	users, off, slab := sv.collectEdges(workers)
	// The full path consumes the round's dirty set too, so a later switch
	// between the paths (or the incBroken fallback) never replays stale
	// deltas.
	sv.store.ResetDirty()
	g := graph.NewBipartite(sv.numUsers, sv.numItems)
	for i := range users {
		for _, e := range slab[off[i]:off[i+1]] {
			g.AddEdge(e.User, e.Item, e.Weight)
		}
	}
	gm.SetGraph(g)
}

// rebuildGraphIncremental runs edge selection for the dirty users only and
// commits the delta to the maintained adjacency engine. It returns false —
// without touching the engine — if any selected weight is non-positive; the
// caller then falls back to the full rebuild permanently.
func (sv *Server) rebuildGraphIncremental(dm models.GraphDeltaRecommender, workers int) bool {
	dirty := sv.store.DirtyUsers(sv.incDirty[:0])
	sv.incDirty = dirty
	var off []int
	var slab []graph.Edge
	if sv.fusedValid && intsEqual(dirty, sv.fusedUsers) {
		// absorb already selected this round's edges from the upload slices;
		// consume them instead of re-reading every dirty view from the store.
		off, slab = sv.fusedOff, sv.fusedSlab
	} else {
		off, slab = sv.collectEdgesFor(dirty, workers)
	}
	sv.fusedValid = false
	for i := range slab {
		if !(slab[i].Weight > 0) {
			return false
		}
	}
	if sv.inc == nil {
		sv.inc = graph.NewIncremental(sv.numUsers, sv.numItems)
	}
	sv.inc.Begin()
	for i, u := range dirty {
		sv.inc.StageUser(u, slab[off[i]:off[i+1]])
	}
	sv.inc.Commit(workers)
	sv.store.ResetDirty()
	dm.SetGraphIncremental(sv.inc)
	return true
}

// collectEdges gathers every stored user's selected edges into the server's
// reused edge slab: users (ascending), per-user offsets into the slab, and
// the slab itself. Steady-state calls at workers<=1 allocate nothing; the
// parallel fill pass gives each chunk its own sorter scratch.
func (sv *Server) collectEdges(workers int) (users, off []int, slab []graph.Edge) {
	users = sv.store.Users(sv.graphUsers[:0])
	sv.graphUsers = users
	off, slab = sv.collectEdgesFor(users, workers)
	return users, off, slab
}

// collectEdgesFor runs the two-pass count/fill edge selection over the given
// users (ascending), reusing the server's offset and slab scratch.
func (sv *Server) collectEdgesFor(users []int, workers int) (off []int, slab []graph.Edge) {
	off = sv.edgeOff
	if cap(off) < len(users)+1 {
		off = make([]int, len(users)+1)
	}
	off = off[: len(users)+1 : cap(off)]
	sv.edgeOff = off
	workers = par.Workers(workers)

	// The parallel branches capture shadow copies: closing over the named
	// results directly would box them on the heap every call, breaking the
	// serial path's zero-allocation pin.
	off[0] = 0
	if workers <= 1 {
		for i := range users {
			off[i+1] = sv.countEdges(users[i])
		}
	} else {
		cUsers, cOff := users, off
		par.For(len(cUsers), workers, func(i int) {
			cOff[i+1] = sv.countEdges(cUsers[i])
		})
	}
	for i := 1; i <= len(users); i++ {
		off[i] += off[i-1]
	}

	slab = sv.edgeSlab
	if cap(slab) < off[len(users)] {
		slab = make([]graph.Edge, off[len(users)])
	}
	slab = slab[:off[len(users)]]
	sv.edgeSlab = slab

	if workers <= 1 {
		for i := range users {
			sv.fillEdges(users[i], slab[off[i]:off[i+1]], &sv.edgeSort)
		}
	} else {
		cUsers, cOff, cSlab := users, off, slab
		chunk := (len(cUsers) + workers - 1) / workers
		par.ForChunks(len(cUsers), chunk, workers, func(lo, hi int) {
			var sorter edgeSorter
			for i := lo; i < hi; i++ {
				sv.fillEdges(cUsers[i], cSlab[cOff[i]:cOff[i+1]], &sorter)
			}
		})
	}
	return off, slab
}

// intsEqual reports whether two int slices are element-for-element equal.
func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// countEdges returns how many edges the configured soft-positive rule
// selects from user u's latest upload — the sizing pass of collectEdges.
func (sv *Server) countEdges(u int) int {
	return sv.countEdgesIn(sv.store.View(u))
}

// countEdgesIn is countEdges over an explicit prediction slice — shared by
// the store-reading two-pass path and absorb's fused selection.
func (sv *Server) countEdgesIn(preds []comm.Prediction) int {
	if sv.cfg.GraphTopFrac > 0 {
		n := int(sv.cfg.GraphTopFrac*float64(len(preds)) + 0.5)
		if n < 1 {
			n = 1
		}
		if n > len(preds) {
			n = len(preds)
		}
		return n
	}
	n := 0
	for _, p := range preds {
		if p.Score >= sv.cfg.GraphThreshold {
			n++
		}
	}
	return n
}

// fillEdges writes user u's selected edges into dst (sized by countEdges).
// The top-fraction rule ranks the upload by (score desc, upload order) via a
// stable sort — identical order to the historical sort.SliceStable — with
// scores floored at 0.05; the threshold rule keeps upload order. Calls for
// distinct users only read server state, so they run concurrently.
func (sv *Server) fillEdges(u int, dst []graph.Edge, sorter *edgeSorter) {
	sv.fillEdgesIn(u, sv.store.View(u), dst, sorter)
}

// fillEdgesIn is fillEdges over an explicit prediction slice — shared by the
// store-reading two-pass path and absorb's fused selection.
func (sv *Server) fillEdgesIn(u int, preds []comm.Prediction, dst []graph.Edge, sorter *edgeSorter) {
	if sv.cfg.GraphTopFrac > 0 {
		if cap(sorter.order) < len(preds) {
			sorter.order = make([]int, len(preds))
		}
		sorter.order = sorter.order[:len(preds)]
		for i := range sorter.order {
			sorter.order[i] = i
		}
		sorter.preds = preds
		sort.Stable(sorter)
		for i := range dst {
			idx := sorter.order[i]
			w := preds[idx].Score
			if w < 0.05 {
				w = 0.05
			}
			dst[i] = graph.Edge{User: u, Item: preds[idx].Item, Weight: w}
		}
		return
	}
	k := 0
	for _, p := range preds {
		if p.Score >= sv.cfg.GraphThreshold {
			dst[k] = graph.Edge{User: u, Item: p.Item, Weight: p.Score}
			k++
		}
	}
}

// edgeSorter stably orders upload indices by score descending — the
// allocation-free replacement for a sort.SliceStable closure (its pointer
// receiver converts to sort.Interface without boxing a new value per user).
type edgeSorter struct {
	order []int
	preds []comm.Prediction
}

func (s *edgeSorter) Len() int { return len(s.order) }
func (s *edgeSorter) Less(a, b int) bool {
	return s.preds[s.order[a]].Score > s.preds[s.order[b]].Score
}
func (s *edgeSorter) Swap(a, b int) { s.order[a], s.order[b] = s.order[b], s.order[a] }

// train runs the server-side optimisation of Eq. 5 on the round's uploads.
// Flattening the uploads into the training set is sharded over workers into
// precomputed offset ranges, so the sample order — and with it the shuffle
// and every optimizer step — is identical to the serial construction. The
// SGD loop itself visits batches sequentially; inside each TrainBatch the
// model's gradient workspace engine shards the forward/backward over
// TrainWorkers with a chunk-ordered merge, which is what keeps seeded runs
// exactly reproducible at any worker count.
func (sv *Server) train(uploads [][]comm.Prediction, workers int) float64 {
	offsets := make([]int, len(uploads)+1)
	for i, up := range uploads {
		offsets[i+1] = offsets[i] + len(up)
	}
	samples := make([]models.Sample, offsets[len(uploads)])
	par.For(len(uploads), par.Workers(workers), func(i int) {
		out := samples[offsets[i]:offsets[i+1]]
		for j, p := range uploads[i] {
			out[j] = models.Sample{User: p.User, Item: p.Item, Label: p.Score}
		}
	})
	if len(samples) == 0 {
		return 0
	}
	var loss float64
	batches := 0
	for e := 0; e < sv.cfg.ServerEpochs; e++ {
		sv.s.Shuffle(len(samples), func(i, j int) { samples[i], samples[j] = samples[j], samples[i] })
		for off := 0; off < len(samples); off += sv.cfg.ServerBatch {
			end := off + sv.cfg.ServerBatch
			if end > len(samples) {
				end = len(samples)
			}
			loss += sv.model.TrainBatch(samples[off:end])
			batches++
		}
	}
	return loss / float64(batches)
}

// dispersalPlan is the round-scoped shared state of Eq. 9's dispersal: the
// global confidence ranking depends only on the absorbed frequency counters,
// so it is computed once per round instead of re-sorted per client.
type dispersalPlan struct {
	// confRank lists every item by (update frequency desc, id asc). Filtering
	// it by a client's eligibility preserves relative order, so a per-client
	// walk reproduces exactly what a per-client stable sort produced.
	confRank []int
}

// buildDispersalPlan snapshots the round's confidence ranking. Call after
// absorb; the itemFreq counters must not change while the plan is in use.
func (sv *Server) buildDispersalPlan() *dispersalPlan {
	plan := &dispersalPlan{}
	if sv.cfg.Alpha <= 0 {
		return plan
	}
	nConf, _, confRandom, _ := disperseArms(sv.cfg)
	if nConf > 0 && !confRandom {
		rank := make([]int, sv.numItems)
		for i := range rank {
			rank[i] = i
		}
		sort.SliceStable(rank, func(a, b int) bool {
			return sv.itemFreq[rank[a]] > sv.itemFreq[rank[b]]
		})
		plan.confRank = rank
	}
	return plan
}

// disperseTarget identifies one dispersal recipient from the server's own
// state: the user id, the exclusion set Eq. 9's "vⱼ ∉ V̂ᵗᵢ" constraint walks
// (nil when the server holds no upload for the user), and the upload
// generation the eligibility cache keys on. It deliberately carries no
// *Client — the networked coordinator disperses to users it only knows
// through the wire, so everything here must derive from what the server
// received.
type disperseTarget struct {
	id   int
	excl *bitset.Set
	gen  uint64
}

// disperseTargetInto builds user id's dispersal target from the upload store,
// filling (and returning) the caller's reusable scratch bitset. A user with
// no stored upload gets a nil exclusion set. The exclusion therefore reflects
// what the server actually received — under a truncated upload, the truncated
// item set — which is the only exclusion a transport-separated server can
// honour.
func (sv *Server) disperseTargetInto(id int, bit *bitset.Set) (disperseTarget, *bitset.Set) {
	tgt := disperseTarget{id: id, gen: uint64(sv.upGen[id])}
	up := sv.store.View(id)
	if len(up) == 0 {
		return tgt, bit
	}
	if bit == nil {
		bit = bitset.New(sv.numItems)
	} else {
		bit.Reset()
	}
	for _, p := range up {
		if p.Item >= 0 && p.Item < sv.numItems {
			bit.Add(p.Item)
		}
	}
	tgt.excl = bit
	return tgt, bit
}

// disperseScratch is per-worker reusable storage for the dispersal loop, so
// a worker's whole share of clients runs with a handful of allocations total.
type disperseScratch struct {
	eligible []int
	scores   []float64
	top      []int
	topk     models.TopKScratch
	excl     *bitset.Set
}

// disperse builds D̃ᵢ for one client (Eq. 9): µα items by update-frequency
// confidence plus (1−µ)α hard items by server score, all outside the client's
// current upload, scored by the hidden model. The Table VII ablations replace
// either half with uniformly random eligible items.
//
// ds is a stream derived per (round, client) by the trainer. Giving every
// client its own stream — instead of consuming a shared server stream in
// visit order — is what lets the dispersal loop run on a worker pool while
// seeded runs stay reproducible for any worker count. disperse itself only
// reads server state (and the caller-owned scratch), so concurrent calls for
// distinct clients are safe once the model's scoring cache is warm.
func (sv *Server) disperse(tgt disperseTarget, ds *rng.Stream, plan *dispersalPlan, scratch *disperseScratch) []comm.Prediction {
	alpha := sv.cfg.Alpha
	if alpha <= 0 {
		return nil
	}
	excluded := func(v int) bool { return tgt.excl != nil && tgt.excl.Contains(v) }

	nConf, nHard, confRandom, hardRandom := disperseArms(sv.cfg)

	// The random ablation arms and the hard half both need the eligible set
	// as a slice; the pure-confidence path gets by on the bitset alone.
	var eligible []int
	if nHard > 0 || (nConf > 0 && confRandom) {
		eligible = scratch.eligible[:0]
		for v := 0; v < sv.numItems; v++ {
			if !excluded(v) {
				eligible = append(eligible, v)
			}
		}
		scratch.eligible = eligible
		if len(eligible) == 0 {
			return nil
		}
	}

	items := make([]int, 0, alpha)

	// Confidence half: highest update frequency, via the round-scoped global
	// ranking filtered by this client's eligibility.
	if nConf > 0 {
		if confRandom {
			k := nConf * 2
			if k > len(eligible) {
				k = len(eligible)
			}
			var unfilled int
			items, unfilled = pickItems(items, rng.SampleSlice(ds, eligible, k), nConf)
			items = fillItems(items, eligible, unfilled)
		} else {
			items = confWalkItems(items, plan.confRank, excluded, nConf)
		}
	}

	// Hard half: highest server-predicted score for this user. Partial
	// selection with a bounded heap: the conf half can overlap the score
	// ranking by at most len(items), so the top (nHard + len(items)) prefix
	// is guaranteed to contain nHard non-chosen items when enough exist.
	// Block-scoring models run the fused engine — eligible scores stream
	// chunk-wise into the selection, never materialising an |eligible|-length
	// vector — which the BlockScorer contract keeps bitwise-identical to
	// score-everything-then-sort.
	if nHard > 0 {
		if hardRandom {
			k := nHard * 3
			if k > len(eligible) {
				k = len(eligible)
			}
			var unfilled int
			items, unfilled = pickItems(items, rng.SampleSlice(ds, eligible, k), nHard)
			items = fillItems(items, eligible, unfilled)
		} else {
			kSel := nHard + len(items)
			if bs, ok := sv.model.(models.BlockScorer); ok {
				top := models.ScoreBlockTopK(bs, &scratch.topk, tgt.id, eligible, kSel)
				buf := scratch.top[:0]
				for _, idx := range top {
					buf = append(buf, eligible[idx])
				}
				scratch.top = buf
			} else {
				scratch.scores = sv.scoreItems(scratch.scores, tgt.id, eligible)
				scratch.top = topKByScore(scratch.top, eligible, scratch.scores, kSel)
			}
			items, _ = pickItems(items, scratch.top, nHard)
		}
	}

	// scratch.scores is dead once topKByScore has consumed it, so the final
	// scoring pass reuses it; the Prediction structs copy the values out.
	scratch.scores = sv.scoreItems(scratch.scores, tgt.id, items)
	preds := make([]comm.Prediction, len(items))
	for i, v := range items {
		preds[i] = comm.Prediction{User: tgt.id, Item: v, Score: scratch.scores[i]}
	}
	return preds
}

// scoreItems scores one user against items through the strongest path the
// model supports: the batched block-scoring engine (bitwise-identical to the
// per-item path), then buffer-reusing per-item scoring, then ScoreItems.
func (sv *Server) scoreItems(dst []float64, user int, items []int) []float64 {
	if bs, ok := sv.model.(models.BlockScorer); ok {
		if cap(dst) < len(items) {
			dst = make([]float64, len(items))
		} else {
			dst = dst[:len(items)]
		}
		bs.ScoreBlockInto(dst, user, items)
		return dst
	}
	if is, ok := sv.model.(models.InplaceScorer); ok {
		return is.ScoreItemsInto(dst, user, items)
	}
	return sv.model.ScoreItems(user, items)
}

// topKByScore returns the k highest-scoring items ordered by
// (score desc, item asc) — the exact order a stable descending sort of an
// ascending item list produces. items must be in ascending id order (the
// eligible set always is), which makes (score desc, index asc) — the shared
// selection kernel's order — coincide with (score desc, item asc). dst is
// reused when it has capacity.
func topKByScore(dst, items []int, scores []float64, k int) []int {
	dst = metrics.TopKInto(dst, scores, k)
	for i, idx := range dst {
		dst[i] = items[idx]
	}
	return dst
}
