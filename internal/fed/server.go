package fed

import (
	"fmt"
	"io"
	"sort"

	"ptffedrec/internal/comm"
	"ptffedrec/internal/graph"
	"ptffedrec/internal/models"
	"ptffedrec/internal/par"
	"ptffedrec/internal/rng"
)

// Server owns the provider's hidden model. Nothing about it — architecture,
// parameters, optimizer — ever leaves this struct; the only outputs are
// prediction scores.
type Server struct {
	model models.Recommender
	cfg   *Config
	s     *rng.Stream

	numUsers, numItems int

	// itemFreq counts how many uploaded triples touched each item — the
	// embedding-update-frequency confidence measure of Eq. 9.
	itemFreq []int

	// latestUpload keeps each user's most recent D̂ᵗᵢ; the union is the
	// server's entire view of the interaction structure, from which it
	// rebuilds its graph every round.
	latestUpload map[int][]comm.Prediction
}

// newServer builds the hidden server model.
func newServer(numUsers, numItems int, cfg *Config, parent *rng.Stream) (*Server, error) {
	mcfg := models.Config{
		NumUsers: numUsers,
		NumItems: numItems,
		Dim:      cfg.Dim,
		LR:       cfg.LR,
		Layers:   cfg.Layers,
		Seed:     cfg.Seed ^ 0xabcdef12345678,
	}
	m, err := models.New(cfg.ServerModel, mcfg)
	if err != nil {
		return nil, fmt.Errorf("fed: server: %w", err)
	}
	return &Server{
		model:        m,
		cfg:          cfg,
		s:            parent.Derive("server"),
		numUsers:     numUsers,
		numItems:     numItems,
		itemFreq:     make([]int, numItems),
		latestUpload: map[int][]comm.Prediction{},
	}, nil
}

// Model returns the server's recommender (the paper's Ms).
func (sv *Server) Model() models.Recommender { return sv.model }

// Snapshot persists the hidden model's parameters — the provider's actual
// asset. The snapshot never travels through the protocol; it exists so the
// provider can checkpoint and serve the model out-of-band.
func (sv *Server) Snapshot(w io.Writer) error {
	return sv.model.(models.Snapshotter).Snapshot(w)
}

// Restore loads a snapshot previously written by Snapshot into the hidden
// model (same Config required).
func (sv *Server) Restore(r io.Reader) error {
	return sv.model.(models.Snapshotter).Restore(r)
}

// ItemFrequency returns the confidence counter for item v.
func (sv *Server) ItemFrequency(v int) int { return sv.itemFreq[v] }

// absorb ingests one round of uploads: updates confidence counters and the
// per-user latest views. The counter pass shards the uploads over workers,
// each accumulating into a private histogram; the shard histograms merge
// sequentially, so counts are exact integers regardless of worker count.
func (sv *Server) absorb(uploads [][]comm.Prediction, workers int) {
	workers = par.Workers(workers)
	if workers <= 1 || len(uploads) < 2 {
		for _, up := range uploads {
			for _, p := range up {
				if p.Item >= 0 && p.Item < sv.numItems {
					sv.itemFreq[p.Item]++
				}
			}
		}
	} else {
		if workers > len(uploads) {
			workers = len(uploads)
		}
		partial := make([][]int, workers)
		chunk := (len(uploads) + workers - 1) / workers
		par.For(workers, workers, func(w int) {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > len(uploads) {
				hi = len(uploads)
			}
			if lo >= hi {
				return
			}
			counts := make([]int, sv.numItems)
			for _, up := range uploads[lo:hi] {
				for _, p := range up {
					if p.Item >= 0 && p.Item < sv.numItems {
						counts[p.Item]++
					}
				}
			}
			partial[w] = counts
		})
		for _, counts := range partial {
			for v, c := range counts {
				sv.itemFreq[v] += c
			}
		}
	}
	// Each round's uploads come from distinct clients, so the per-user view
	// updates are cheap single writes; keep them on the caller's goroutine.
	for _, up := range uploads {
		if len(up) == 0 {
			continue
		}
		sv.latestUpload[up[0].User] = up
	}
}

// rebuildGraph reconstructs the server's bipartite graph from every user's
// latest upload. Soft-positive edges come either from an absolute score
// threshold or, when GraphTopFrac is set, from each user's top-scored
// fraction (robust to per-client calibration drift). Only graph server
// models pay this cost.
func (sv *Server) rebuildGraph() {
	gm, ok := sv.model.(models.GraphRecommender)
	if !ok {
		return
	}
	g := graph.NewBipartite(sv.numUsers, sv.numItems)
	// Iterate users in sorted order: edge insertion order decides the order
	// degree weights accumulate in, and map iteration order would make that
	// (and therefore the propagated floats) vary run to run.
	userIDs := make([]int, 0, len(sv.latestUpload))
	for u := range sv.latestUpload {
		userIDs = append(userIDs, u)
	}
	sort.Ints(userIDs)
	for _, u := range userIDs {
		preds := sv.latestUpload[u]
		if sv.cfg.GraphTopFrac > 0 {
			n := int(sv.cfg.GraphTopFrac*float64(len(preds)) + 0.5)
			if n < 1 {
				n = 1
			}
			order := make([]int, len(preds))
			for i := range order {
				order[i] = i
			}
			sort.SliceStable(order, func(a, b int) bool {
				return preds[order[a]].Score > preds[order[b]].Score
			})
			for _, idx := range order[:n] {
				w := preds[idx].Score
				if w < 0.05 {
					w = 0.05
				}
				g.AddEdge(u, preds[idx].Item, w)
			}
			continue
		}
		for _, p := range preds {
			if p.Score >= sv.cfg.GraphThreshold {
				g.AddEdge(u, p.Item, p.Score)
			}
		}
	}
	gm.SetGraph(g)
}

// train runs the server-side optimisation of Eq. 5 on the round's uploads.
// Flattening the uploads into the training set is sharded over workers into
// precomputed offset ranges, so the sample order — and with it the shuffle
// and every optimizer step — is identical to the serial construction. The
// SGD loop itself stays sequential: that is what makes seeded runs exactly
// reproducible.
func (sv *Server) train(uploads [][]comm.Prediction, workers int) float64 {
	offsets := make([]int, len(uploads)+1)
	for i, up := range uploads {
		offsets[i+1] = offsets[i] + len(up)
	}
	samples := make([]models.Sample, offsets[len(uploads)])
	par.For(len(uploads), par.Workers(workers), func(i int) {
		out := samples[offsets[i]:offsets[i+1]]
		for j, p := range uploads[i] {
			out[j] = models.Sample{User: p.User, Item: p.Item, Label: p.Score}
		}
	})
	if len(samples) == 0 {
		return 0
	}
	var loss float64
	batches := 0
	for e := 0; e < sv.cfg.ServerEpochs; e++ {
		sv.s.Shuffle(len(samples), func(i, j int) { samples[i], samples[j] = samples[j], samples[i] })
		for off := 0; off < len(samples); off += sv.cfg.ServerBatch {
			end := off + sv.cfg.ServerBatch
			if end > len(samples) {
				end = len(samples)
			}
			loss += sv.model.TrainBatch(samples[off:end])
			batches++
		}
	}
	return loss / float64(batches)
}

// disperse builds D̃ᵢ for one client (Eq. 9): µα items by update-frequency
// confidence plus (1−µ)α hard items by server score, all outside the client's
// current upload, scored by the hidden model. The Table VII ablations replace
// either half with uniformly random eligible items.
//
// ds is a stream derived per (round, client) by the trainer. Giving every
// client its own stream — instead of consuming a shared server stream in
// visit order — is what lets the dispersal loop run on a worker pool while
// seeded runs stay reproducible for any worker count. disperse itself only
// reads server state, so concurrent calls for distinct clients are safe once
// the model's scoring cache is warm.
func (sv *Server) disperse(c *Client, ds *rng.Stream) []comm.Prediction {
	alpha := sv.cfg.Alpha
	if alpha <= 0 {
		return nil
	}
	eligible := make([]int, 0, sv.numItems)
	for v := 0; v < sv.numItems; v++ {
		if !c.lastUpload[v] {
			eligible = append(eligible, v)
		}
	}
	if len(eligible) == 0 {
		return nil
	}
	nConf := int(sv.cfg.Mu * float64(alpha))
	nHard := alpha - nConf

	chosen := make(map[int]bool, alpha)
	var items []int

	confRandom := sv.cfg.Disperse == DisperseNoConf || sv.cfg.Disperse == DisperseAllRandom
	hardRandom := sv.cfg.Disperse == DisperseNoHard || sv.cfg.Disperse == DisperseAllRandom

	pick := func(ranked []int, n int) {
		for _, v := range ranked {
			if n == 0 {
				break
			}
			if chosen[v] {
				continue
			}
			chosen[v] = true
			items = append(items, v)
			n--
		}
	}

	// Confidence half: highest update frequency.
	if nConf > 0 {
		if confRandom {
			pick(rng.SampleSlice(ds, eligible, min(len(eligible), nConf*2)), nConf)
		} else {
			ranked := append([]int(nil), eligible...)
			sort.SliceStable(ranked, func(a, b int) bool {
				return sv.itemFreq[ranked[a]] > sv.itemFreq[ranked[b]]
			})
			pick(ranked, nConf)
		}
	}

	// Hard half: highest server-predicted score for this user.
	if nHard > 0 {
		if hardRandom {
			pick(rng.SampleSlice(ds, eligible, min(len(eligible), nHard*3)), nHard)
		} else {
			scores := sv.model.ScoreItems(c.ID, eligible)
			ranked := make([]int, len(eligible))
			order := make([]int, len(eligible))
			for i := range order {
				order[i] = i
			}
			sort.SliceStable(order, func(a, b int) bool { return scores[order[a]] > scores[order[b]] })
			for i, idx := range order {
				ranked[i] = eligible[idx]
			}
			pick(ranked, nHard)
		}
	}

	scores := sv.model.ScoreItems(c.ID, items)
	preds := make([]comm.Prediction, len(items))
	for i, v := range items {
		preds[i] = comm.Prediction{User: c.ID, Item: v, Score: scores[i]}
	}
	return preds
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
