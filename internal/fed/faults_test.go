package fed

import (
	"bytes"
	"testing"

	"ptffedrec/internal/models"
)

func TestDropoutReducesUploads(t *testing.T) {
	sp := tinySplit(t)
	cfg := fastConfig(models.KindNeuMF)
	cfg.Rounds = 2
	cfg.Faults.DropoutRate = 0.5
	tr, err := NewTrainer(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs := tr.RunRound(0)
	if rs.Dropped == 0 {
		t.Fatal("no clients dropped at 50% dropout")
	}
	if rs.Dropped >= rs.Participants {
		t.Fatal("every client dropped at 50% dropout (suspicious)")
	}
	// The server must still have trained on the survivors.
	if rs.ServerLoss == 0 {
		t.Fatal("server did not train on surviving uploads")
	}
	// Dropped clients receive no dispersal this round.
	withData := 0
	for _, c := range tr.Clients() {
		if len(c.ServerData()) > 0 {
			withData++
		}
	}
	if withData != rs.Participants-rs.Dropped {
		t.Fatalf("dispersal went to %d clients, want %d survivors", withData, rs.Participants-rs.Dropped)
	}
}

func TestProtocolSurvivesHeavyFaults(t *testing.T) {
	sp := tinySplit(t)
	cfg := fastConfig(models.KindLightGCN)
	cfg.Rounds = 3
	cfg.Faults.DropoutRate = 0.3
	cfg.Faults.TruncateRate = 0.5
	tr, err := NewTrainer(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	if h.Final.Users == 0 {
		t.Fatal("evaluation broke under faults")
	}
	for _, rs := range h.Rounds {
		if rs.Dropped == 0 && rs.Round > 0 {
			continue // randomness may spare a round
		}
	}
}

func TestTotalDropoutStillCompletes(t *testing.T) {
	sp := tinySplit(t)
	cfg := fastConfig(models.KindNeuMF)
	cfg.Rounds = 1
	cfg.Faults.DropoutRate = 1.0
	tr, err := NewTrainer(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs := tr.RunRound(0)
	if rs.Dropped != rs.Participants {
		t.Fatalf("dropped %d of %d", rs.Dropped, rs.Participants)
	}
	if rs.ServerLoss != 0 || rs.UploadBytes != 0 {
		t.Fatal("server trained with zero uploads")
	}
}

func TestTruncateShrinksUploads(t *testing.T) {
	sp := tinySplit(t)
	base := fastConfig(models.KindNeuMF)
	base.Rounds = 1
	clean, err := NewTrainer(sp, base)
	if err != nil {
		t.Fatal(err)
	}
	cleanStats := clean.RunRound(0)

	faulty := base
	faulty.Faults.TruncateRate = 1.0
	ft, err := NewTrainer(sp, faulty)
	if err != nil {
		t.Fatal(err)
	}
	faultyStats := ft.RunRound(0)
	if faultyStats.UploadBytes >= cleanStats.UploadBytes {
		t.Fatalf("truncation did not shrink uploads: %d vs %d",
			faultyStats.UploadBytes, cleanStats.UploadBytes)
	}
}

func TestFaultConfigValidation(t *testing.T) {
	cfg := DefaultConfig(models.KindNeuMF)
	cfg.Faults.DropoutRate = 1.5
	if err := cfg.Validate(); err == nil {
		t.Fatal("bad dropout rate accepted")
	}
	cfg = DefaultConfig(models.KindNeuMF)
	cfg.Faults.TruncateRate = -0.1
	if err := cfg.Validate(); err == nil {
		t.Fatal("bad truncate rate accepted")
	}
}

func TestHistoryJSONRoundTrip(t *testing.T) {
	sp := tinySplit(t)
	cfg := fastConfig(models.KindNeuMF)
	cfg.Rounds = 2
	cfg.EvalEvery = 1
	tr, err := NewTrainer(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := h.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadHistoryJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Rounds) != len(h.Rounds) || back.Final.NDCG != h.Final.NDCG {
		t.Fatal("history JSON round trip lost data")
	}
	if back.BestRound() < 0 {
		t.Fatal("BestRound lost evaluated rounds")
	}
	if back.TotalUploadBytes() != h.TotalUploadBytes() {
		t.Fatal("TotalUploadBytes mismatch")
	}
	if back.TotalDisperseBytes() <= 0 {
		t.Fatal("TotalDisperseBytes not preserved")
	}
}

func TestReadHistoryJSONError(t *testing.T) {
	if _, err := ReadHistoryJSON(bytes.NewBufferString("{broken")); err == nil {
		t.Fatal("broken JSON accepted")
	}
}
