package fed

import (
	"testing"

	"ptffedrec/internal/bitset"
)

// eligTestTarget builds a minimal dispersal target for cache tests: only the
// fields the eligibility cache reads (id, exclusion bitset, generation).
// Tests mutate excl/gen directly to simulate a new upload landing.
func eligTestTarget(id, numItems int, uploaded ...int) *disperseTarget {
	tgt := &disperseTarget{id: id}
	if len(uploaded) > 0 {
		tgt.excl = bitset.New(numItems)
		for _, v := range uploaded {
			tgt.excl.Add(v)
		}
		tgt.gen = 1
	}
	return tgt
}

// requireEligMatchesNaive checks a cache-served list against the naive probe
// walk over the target's exclusion bitset.
func requireEligMatchesNaive(t *testing.T, label string, got []int32, tgt *disperseTarget, numItems int) {
	t.Helper()
	want := naiveEligible(nil, numItems, tgt.excl)
	if len(got) != len(want) {
		t.Fatalf("%s: len %d, want %d", label, len(got), len(want))
	}
	for i := range got {
		if int(got[i]) != want[i] {
			t.Fatalf("%s: entry %d = %d, want %d", label, i, got[i], want[i])
		}
	}
}

// TestEligLRUEvictionRegeneration walks a budget-4 cache through enough
// distinct clients to force evictions, then returns to the evicted ones:
// every regenerated list must be element-for-element identical to both the
// naive walk and the list originally served before eviction.
func TestEligLRUEvictionRegeneration(t *testing.T) {
	const numItems = 70
	e := newEligCache(4)
	targets := make([]*disperseTarget, 10)
	first := make([][]int32, 10)
	for i := range targets {
		// Distinct exclusion patterns, straddling the 64-bit word boundary.
		targets[i] = eligTestTarget(i, numItems, i, (i*7+3)%numItems, 64+i%6)
		got := e.eligible(*targets[i], numItems)
		requireEligMatchesNaive(t, "first build", got, targets[i], numItems)
		first[i] = append([]int32(nil), got...)
	}
	if n := e.entries(); n != 4 {
		t.Fatalf("entries = %d after 10 distinct clients, want budget 4", n)
	}
	// Clients 0..5 were evicted (budget 4, LRU order): regeneration must
	// reproduce the original lists exactly.
	for i := 0; i < 6; i++ {
		got := e.eligible(*targets[i], numItems)
		requireEligMatchesNaive(t, "regenerated", got, targets[i], numItems)
		for j := range got {
			if got[j] != first[i][j] {
				t.Fatalf("client %d: regenerated list diverges at %d: %d vs %d",
					i, j, got[j], first[i][j])
			}
		}
	}
	if n := e.entries(); n != 4 {
		t.Fatalf("entries = %d after regeneration, want 4", n)
	}
	if e.memoryBytes() <= 0 {
		t.Fatal("memoryBytes must be positive for a populated cache")
	}
}

// TestEligLRUGenerationRebuild pins the stale-entry path: a same-client
// generation bump rebuilds the list in place — correct contents, reusing the
// backing array the dead alias occupied (the aliasing contract's fast path).
func TestEligLRUGenerationRebuild(t *testing.T) {
	const numItems = 70
	e := newEligCache(4)
	c := eligTestTarget(0, numItems, 5, 66)
	old := e.eligible(*c, numItems)
	requireEligMatchesNaive(t, "before bump", old, c, numItems)

	c.excl.Add(12)
	c.gen++
	got := e.eligible(*c, numItems)
	requireEligMatchesNaive(t, "after bump", got, c, numItems)
	if len(got) == 0 || len(old) == 0 || &got[0] != &old[0] {
		t.Fatal("generation rebuild did not reuse the stale entry's backing array")
	}
	if n := e.entries(); n != 1 {
		t.Fatalf("entries = %d after same-client rebuild, want 1", n)
	}
}

// TestEligLRUEvictionFreshBacking pins the aliasing-safety rule: when an
// entry is evicted, the replacement builds into fresh backing, leaving any
// still-held alias of the victim's list intact.
func TestEligLRUEvictionFreshBacking(t *testing.T) {
	const numItems = 70
	e := newEligCache(1)
	a := eligTestTarget(0, numItems, 3)
	b := eligTestTarget(1, numItems, 9)
	la := e.eligible(*a, numItems)
	snapshot := append([]int32(nil), la...)
	lb := e.eligible(*b, numItems) // evicts a
	requireEligMatchesNaive(t, "replacement", lb, b, numItems)
	for i := range la {
		if la[i] != snapshot[i] {
			t.Fatalf("evicted client's aliased list was overwritten at %d", i)
		}
	}
}

// FuzzEligCache interleaves lookups, upload-generation bumps and
// eviction-inducing client churn against a tight budget, holding the cache
// to the naive walk and the budget bound at every step.
func FuzzEligCache(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0x81, 0, 4, 5, 0x82, 2, 6, 7, 0})
	f.Add([]byte{0x80, 0x80, 0x80, 1, 1, 1})
	f.Add([]byte{7, 6, 5, 4, 3, 2, 1, 0, 0x87, 7})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const numItems, nClients, budget = 70, 8, 3
		e := newEligCache(budget)
		targets := make([]*disperseTarget, nClients)
		for i := range targets {
			targets[i] = eligTestTarget(i, numItems, i)
		}
		for step, op := range ops {
			c := targets[int(op&0x7f)%nClients]
			if op&0x80 != 0 {
				// Simulate a new upload: the exclusion set changes and the
				// generation advances, invalidating any cached list.
				c.excl.Add((step*13 + int(op)) % numItems)
				c.gen++
			}
			got := e.eligible(*c, numItems)
			requireEligMatchesNaive(t, "fuzz step", got, c, numItems)
			if n := e.entries(); n > budget {
				t.Fatalf("step %d: entries = %d exceeds budget %d", step, n, budget)
			}
		}
	})
}
