package fed

import (
	"fmt"
	"sort"

	"ptffedrec/internal/bitset"
	"ptffedrec/internal/comm"
	"ptffedrec/internal/graph"
	"ptffedrec/internal/models"
	"ptffedrec/internal/privacy"
	"ptffedrec/internal/rng"
)

// Client is one federated participant. It owns its private interactions, a
// local model over a single-user universe (the local user index is always 0),
// and the latest soft-label set D̃ᵢ received from the server.
type Client struct {
	ID int

	model    models.Recommender
	cfg      *Config
	s        *rng.Stream
	numItems int

	positives []int // training positives from the split (private)

	// serverData is D̃ᵢ: (item, soft score) pairs from the last dispersal.
	serverData []comm.Prediction

	// lastUpload remembers the most recent D̂ᵗᵢ item set — the client's own
	// record of what it sent (tests and the privacy invariants read it). The
	// server-side dispersal honours Eq. 9's "vⱼ ∉ V̂ᵗᵢ" constraint from its
	// upload store, i.e. from what it actually received. It is a bitset over
	// the item universe, allocated on the client's first upload and
	// reset-and-refilled every round.
	lastUpload *bitset.Set
}

// newClient builds the client's local model. Graph client models (Table VIII)
// get a single-user universe graph rebuilt before each local training pass.
func newClient(id int, positives []int, numItems int, cfg *Config, parent *rng.Stream) (*Client, error) {
	s := parent.DeriveN("client", id)
	mcfg := models.Config{
		NumUsers: 1,
		NumItems: numItems,
		Dim:      cfg.Dim,
		LR:       cfg.LR,
		Layers:   cfg.Layers,
		Lazy:     true,
		Seed:     cfg.Seed ^ (uint64(id)+1)*0x9e3779b97f4a7c15,
	}
	m, err := models.New(cfg.ClientModel, mcfg)
	if err != nil {
		return nil, fmt.Errorf("fed: client %d: %w", id, err)
	}
	return &Client{
		ID:        id,
		model:     m,
		cfg:       cfg,
		s:         s,
		numItems:  numItems,
		positives: positives,
	}, nil
}

// Positives returns the client's private positive items.
func (c *Client) Positives() []int { return c.positives }

// ServerData returns the current D̃ᵢ.
func (c *Client) ServerData() []comm.Prediction { return c.serverData }

// Model returns the client's local recommender.
func (c *Client) Model() models.Recommender { return c.model }

// receiveDispersal replaces D̃ᵢ with the server's latest soft labels.
func (c *Client) receiveDispersal(preds []comm.Prediction) { c.serverData = preds }

// localTrain implements CLIENT-TRAIN (Algorithm 1, lines 14-17): build
// Dᵢ ∪ D̃ᵢ, train the local model for ClientEpochs epochs, and return the
// privacy-protected upload D̂ᵗᵢ plus the mean training loss.
func (c *Client) localTrain(sampleNegatives func(n int) []int) ([]comm.Prediction, float64) {
	negatives := sampleNegatives(len(c.positives) * c.cfg.NegRatio)

	// Graph client models rebuild their one-hop local graph from the hard
	// positives plus the server's soft positives.
	if gm, ok := c.model.(models.GraphRecommender); ok {
		g := graph.NewBipartite(1, c.numItems)
		for _, v := range c.positives {
			g.AddEdge(0, v, 1)
		}
		for _, p := range c.serverData {
			if p.Score >= c.cfg.GraphThreshold {
				g.AddEdge(0, p.Item, p.Score)
			}
		}
		gm.SetGraph(g)
	}

	samples := make([]models.Sample, 0, len(c.positives)+len(negatives)+len(c.serverData))
	for _, v := range c.positives {
		samples = append(samples, models.Sample{User: 0, Item: v, Label: 1})
	}
	for _, v := range negatives {
		samples = append(samples, models.Sample{User: 0, Item: v, Label: 0})
	}
	for _, p := range c.serverData {
		samples = append(samples, models.Sample{User: 0, Item: p.Item, Label: p.Score})
	}

	var loss float64
	batches := 0
	for e := 0; e < c.cfg.ClientEpochs; e++ {
		c.s.Shuffle(len(samples), func(i, j int) { samples[i], samples[j] = samples[j], samples[i] })
		for off := 0; off < len(samples); off += c.cfg.ClientBatch {
			end := off + c.cfg.ClientBatch
			if end > len(samples) {
				end = len(samples)
			}
			loss += c.model.TrainBatch(samples[off:end])
			batches++
		}
	}
	if batches > 0 {
		loss /= float64(batches)
	}

	return c.buildUpload(negatives), loss
}

// buildUpload constructs D̂ᵗᵢ per §III-B2 under the configured defense.
func (c *Client) buildUpload(negatives []int) []comm.Prediction {
	var selPos, selNeg []int
	switch c.cfg.Privacy.Defense {
	case privacy.DefenseSampling, privacy.DefenseSamplingSwap:
		selPos, selNeg, _, _ = privacy.SampleUpload(c.s, c.positives, negatives, c.cfg.Privacy)
	default: // none, ldp: upload the whole trained pool Vᵗᵢ
		selPos = append([]int(nil), c.positives...)
		selNeg = append([]int(nil), negatives...)
	}

	items := make([]int, 0, len(selPos)+len(selNeg))
	items = append(items, selPos...)
	items = append(items, selNeg...)
	scores := c.model.ScoreItems(0, items)
	preds := make([]comm.Prediction, len(items))
	for i, v := range items {
		preds[i] = comm.Prediction{User: c.ID, Item: v, Score: scores[i]}
	}

	posSet := make(map[int]bool, len(selPos))
	for _, v := range selPos {
		posSet[v] = true
	}
	switch c.cfg.Privacy.Defense {
	case privacy.DefenseSamplingSwap:
		privacy.Swap(c.s, preds, func(v int) bool { return posSet[v] }, c.cfg.Privacy.Lambda)
	case privacy.DefenseLDP:
		privacy.AddLaplace(c.s, preds, c.cfg.Privacy.LaplaceScale)
	}

	// Shuffle so upload order leaks nothing about the positive/negative
	// partition.
	c.s.Shuffle(len(preds), func(i, j int) { preds[i], preds[j] = preds[j], preds[i] })

	if c.lastUpload == nil {
		c.lastUpload = bitset.New(c.numItems)
	} else {
		c.lastUpload.Reset()
	}
	for _, p := range preds {
		c.lastUpload.Add(p.Item)
	}
	return preds
}

// isPositive reports whether item v is one of the client's true positives
// (used only to score the attack; the real server never sees this).
func (c *Client) isPositive(v int) bool {
	i := sort.SearchInts(c.positives, v)
	return i < len(c.positives) && c.positives[i] == v
}
