package fed

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"ptffedrec/internal/comm"
	"ptffedrec/internal/data"
	"ptffedrec/internal/eval"
	"ptffedrec/internal/models"
	"ptffedrec/internal/par"
	"ptffedrec/internal/privacy"
	"ptffedrec/internal/rng"
)

// RoundStats records one global round.
type RoundStats struct {
	Round        int
	Participants int
	Dropped      int     // clients that failed before uploading (FaultPlan)
	ClientLoss   float64 // mean local-training loss across participants
	ServerLoss   float64 // mean server batch loss
	AttackF1     float64 // mean Top Guess Attack F1 across uploads
	UploadBytes  int64   // total client→server bytes this round
	DispersBytes int64   // total server→client bytes this round
	Recall, NDCG float64 // server metrics (when evaluated)
	Evaluated    bool
}

// History is a full training run's trace.
type History struct {
	Rounds []RoundStats
	Final  eval.Result
	// MeanAttackF1 averages the attack over all rounds — the Table V figure.
	MeanAttackF1 float64
}

// PhaseSeconds is cumulative wall-clock per round phase across RunRound
// calls — the per-phase breakdown the scalability experiment reports. It is
// deliberately kept out of RoundStats so timing jitter never enters the
// determinism contract on training traces.
type PhaseSeconds struct {
	ClientTrain float64 // parallel local training + upload construction
	Absorb      float64 // confidence counters + latest-view ingestion
	GraphBuild  float64 // adjacency/CSR rebuild (graph server models only)
	ServerTrain float64 // server-side SGD (Eq. 5)
	Disperse    float64 // per-client D̃ᵢ construction + encoding

	// Eval is the wall-clock of server evaluations issued inside
	// RunRoundEval. Both eval and dispersal only read the warmed, frozen
	// model, so RunRoundEval runs them concurrently: Eval overlaps Disperse
	// rather than extending the round.
	Eval float64

	// DisperseEvalWall is the wall-clock of the combined dispersal+eval tail
	// of overlapped rounds — at most Disperse+Eval, approaching
	// max(Disperse, Eval) when the overlap pays. Rounds without an overlapped
	// eval do not contribute.
	DisperseEvalWall float64
}

// Total sums the sequential round phases (Eval overlaps Disperse, so it is
// excluded; DisperseEvalWall is a combined measurement, not a phase).
func (p PhaseSeconds) Total() float64 {
	return p.ClientTrain + p.Absorb + p.GraphBuild + p.ServerTrain + p.Disperse
}

// Trainer orchestrates PTF-FedRec end to end (Algorithm 1).
type Trainer struct {
	cfg     Config
	split   *data.Split
	clients []*Client
	server  *Server
	meter   *comm.Meter
	root    *rng.Stream
	phases  PhaseSeconds

	// evaluator caches the per-user candidate sets across rounds (the train
	// mask never changes), built lazily on the first evaluation. It is
	// read-only after construction, so the server and client evaluations —
	// and an eval overlapped with dispersal — can all share it.
	evaluator *eval.Evaluator
}

// NewTrainer wires up one client per user and the hidden server model.
func NewTrainer(sp *data.Split, cfg Config) (*Trainer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed).Derive("ptf-fedrec")
	server, err := newServer(sp.NumUsers, sp.NumItems, &cfg, root)
	if err != nil {
		return nil, err
	}
	t := &Trainer{
		cfg:    cfg,
		split:  sp,
		server: server,
		meter:  comm.NewMeter(),
		root:   root,
	}
	if cfg.LazyClients {
		// Clients materialise on first participation via t.client; build one
		// eagerly so an invalid client-model kind still fails at construction
		// time instead of mid-round.
		t.clients = make([]*Client, sp.NumUsers)
		if sp.NumUsers > 0 {
			c, err := newClient(0, sp.Train[0], sp.NumItems, &t.cfg, root)
			if err != nil {
				return nil, err
			}
			t.clients[0] = c
		}
		return t, nil
	}
	for u := 0; u < sp.NumUsers; u++ {
		c, err := newClient(u, sp.Train[u], sp.NumItems, &t.cfg, root)
		if err != nil {
			return nil, err
		}
		t.clients = append(t.clients, c)
	}
	return t, nil
}

// client returns participant i, constructing it on first use under
// Config.LazyClients. Lazy construction is bitwise-safe because everything a
// client owns derives purely from (config, split, id) — see the knob's doc.
// Concurrent calls for distinct ids write distinct slots and the round/eval
// engines never hand one id to two workers, so no synchronisation is needed.
func (t *Trainer) client(i int) *Client {
	c := t.clients[i]
	if c == nil {
		var err error
		c, err = newClient(i, t.split.Train[i], t.split.NumItems, &t.cfg, t.root)
		if err != nil {
			// Construction can only fail on an invalid model kind, which the
			// eager client 0 already validated.
			panic(err)
		}
		t.clients[i] = c
	}
	return c
}

// Clients exposes the participant list (tests, examples), materialising any
// clients a lazy trainer has not built yet.
func (t *Trainer) Clients() []*Client {
	for i := range t.clients {
		t.client(i)
	}
	return t.clients
}

// Server exposes the server (tests, examples).
func (t *Trainer) Server() *Server { return t.server }

// Meter exposes the communication meter.
func (t *Trainer) Meter() *comm.Meter { return t.meter }

// Config returns the active configuration.
func (t *Trainer) Config() Config { return t.cfg }

// PhaseSeconds returns the cumulative per-phase wall-clock since construction
// (or the last ResetPhaseSeconds).
func (t *Trainer) PhaseSeconds() PhaseSeconds { return t.phases }

// ResetPhaseSeconds zeroes the per-phase timers.
func (t *Trainer) ResetPhaseSeconds() { t.phases = PhaseSeconds{} }

// clientResult carries one participant's round output.
type clientResult struct {
	client   *Client
	upload   []comm.Prediction
	loss     float64
	attackF1 float64
	upBytes  int
	dropped  bool
}

// RunRound executes Algorithm 1's loop body once.
func (t *Trainer) RunRound(round int) RoundStats {
	stats, _ := t.runRound(round, false)
	return stats
}

// RunRoundEval is RunRound with the round's server evaluation overlapped with
// the dispersal phase: both only read the warmed, frozen server model, so
// they run concurrently after a shared warm step. The returned RoundStats has
// Recall/NDCG/Evaluated filled in. The trace and the evaluation result are
// bitwise-identical to RunRound followed by EvaluateServer.
func (t *Trainer) RunRoundEval(round int) (RoundStats, eval.Result) {
	stats, res := t.runRound(round, true)
	stats.Recall, stats.NDCG, stats.Evaluated = res.Recall, res.NDCG, true
	return stats, res
}

// runRound executes one round, optionally overlapping the server evaluation
// with dispersal.
func (t *Trainer) runRound(round int, withEval bool) (RoundStats, eval.Result) {
	// 1. Sample Uᵗ.
	sel := t.root.DeriveN("select", round)
	n := int(t.cfg.ClientFraction * float64(len(t.clients)))
	if n < 1 {
		n = 1
	}
	idx := sel.SampleInts(len(t.clients), n)

	// 2. Parallel client local training + upload construction. Every write
	// goes to the goroutine's own slot, so the round is deterministic for any
	// worker count.
	phaseStart := time.Now()
	workers := par.Workers(t.cfg.Workers)
	results := make([]clientResult, len(idx))
	par.For(len(idx), workers, func(slot int) {
		ci := idx[slot]
		c := t.client(ci)
		// Fault injection: a dropped client burns its local compute but
		// nothing reaches the server.
		if t.cfg.Faults.enabled() {
			fs := t.root.DeriveN("fault", round).DeriveN("client", ci)
			if fs.Bernoulli(t.cfg.Faults.DropoutRate) {
				results[slot] = clientResult{client: c, dropped: true}
				return
			}
			defer func() {
				if fs.Bernoulli(t.cfg.Faults.TruncateRate) && len(results[slot].upload) > 1 {
					// The halved upload goes back through the configured wire
					// codec, so UploadBytes and the scores the server sees
					// honour QuantizeScores for truncated clients too.
					upload, upBytes := t.encodeForWire(results[slot].upload[:len(results[slot].upload)/2])
					results[slot].upload = upload
					results[slot].upBytes = upBytes
				}
			}()
		}
		upload, loss := c.localTrain(func(n int) []int {
			return t.split.SampleNegativesN(c.s.DeriveN("negs", round), c.ID, n)
		})
		upload, upBytes := t.encodeForWire(upload)
		// The curious-but-honest server's inference attempt, scored
		// against ground truth for Table V / Fig. 3.
		guessed := privacy.TopGuessAttack(upload, t.cfg.AttackPosFraction)
		f1 := privacy.AttackF1(upload, guessed, c.isPositive)
		results[slot] = clientResult{
			client:   c,
			upload:   upload,
			loss:     loss,
			attackF1: f1,
			upBytes:  upBytes,
		}
	})
	t.phases.ClientTrain += time.Since(phaseStart).Seconds()

	stats := RoundStats{Round: round, Participants: len(idx)}
	uploads := make([][]comm.Prediction, 0, len(results))
	responders := results[:0:0]
	for _, r := range results {
		if r.dropped {
			stats.Dropped++
			continue
		}
		responders = append(responders, r)
		uploads = append(uploads, r.upload)
		stats.ClientLoss += r.loss
		stats.AttackF1 += r.attackF1
		stats.UploadBytes += int64(r.upBytes)
		t.meter.AddUp(r.client.ID, r.upBytes)
	}
	results = responders
	if len(results) > 0 {
		stats.ClientLoss /= float64(len(results))
		stats.AttackF1 /= float64(len(results))
	}

	// 3. Server-side: absorb uploads, rebuild the graph, optimise Eq. 5. The
	// absorb counters and the training-set construction shard over the round
	// pool; inside every server TrainBatch the gradient workspace engine
	// shards over TrainWorkers with a chunk-ordered merge.
	phaseStart = time.Now()
	t.server.absorb(uploads, workers)
	t.phases.Absorb += time.Since(phaseStart).Seconds()

	phaseStart = time.Now()
	t.server.rebuildGraph(workers)
	t.phases.GraphBuild += time.Since(phaseStart).Seconds()

	phaseStart = time.Now()
	stats.ServerLoss = t.server.train(uploads, workers)
	t.phases.ServerTrain += time.Since(phaseStart).Seconds()

	// 4. Disperse D̃ᵢ to the round's participants on the worker pool. The
	// global confidence ranking is computed once for the round; each client
	// draws from a stream derived per (round, client), and dispersal only
	// reads server state (plus per-worker scratch), so results match the
	// serial loop exactly.
	//
	// When an evaluation is due it runs concurrently with dispersal: after
	// the shared warm step both are pure reads of the frozen server model
	// (dispersal additionally writes per-client D̃ᵢ, which eval never
	// touches), so the overlap changes wall-clock only — never results. The
	// overlap is gated on GOMAXPROCS > 1: on a single-core host the two
	// phases just time-slice one thread and the goroutine handoffs make the
	// pair slower than running them back to back, so eval falls back to a
	// sequential run after dispersal (same results, same phase accounting).
	phaseStart = time.Now()
	overlapEval := withEval && runtime.GOMAXPROCS(0) > 1
	// Warm before an overlapped eval unconditionally; otherwise only a
	// parallel dispersal with work to do needs the shared caches hot. (The
	// sequential-eval fallback warms inside EvaluateServer like any other
	// eval; warming is idempotent and bitwise-neutral either way.)
	if w, ok := t.server.model.(models.Warmer); ok && (overlapEval || (workers > 1 && len(results) > 0)) {
		w.WarmScoring()
	}
	var evalRes eval.Result
	var evalSecs float64
	var evalDone chan struct{}
	if overlapEval {
		evalDone = make(chan struct{})
		evalStart := time.Now()
		go func() {
			defer close(evalDone)
			evalRes = t.EvaluateServer()
			evalSecs = time.Since(evalStart).Seconds()
		}()
	}
	dispersed := make([]int, len(results))
	if len(results) > 0 {
		plan := t.server.buildDispersalPlan()
		// The batched engine needs the multi-user scoring contract; the
		// scalar per-client path is the fallback (and, via DisperseScalar,
		// the timing baseline). Both produce bitwise-identical dispersals.
		mbs, batched := t.server.model.(models.MultiBlockScorer)
		batched = batched && !t.cfg.DisperseScalar && t.cfg.Alpha > 0
		// Per-client streams are only consumed by the random ablation arms,
		// and deriving one costs a full generator seeding — so the
		// deterministic conf+hard arm skips them entirely, and the random
		// arms derive the round-level parent once. Both are bitwise-neutral:
		// derivation is a pure function of the parent's immutable seed (safe
		// to share across workers), and an unused stream influences nothing.
		disperseStreams := t.disperseNeedsStreams()
		var roundStream *rng.Stream
		if disperseStreams {
			roundStream = t.root.DeriveN("disperse", round)
		}
		clientStream := func(id int) *rng.Stream {
			if !disperseStreams {
				return nil
			}
			return roundStream.DeriveN("client", id)
		}
		chunk := (len(results) + workers - 1) / workers
		par.ForChunks(len(results), chunk, workers, func(lo, hi int) {
			if batched {
				sc := newDisperseBatchScratch()
				for b := lo; b < hi; b += disperseBatchClients {
					be := b + disperseBatchClients
					if be > hi {
						be = hi
					}
					slots := sc.slots[:be-b]
					for i := b; i < be; i++ {
						r := results[i]
						slots[i-b].c = r.client
						slots[i-b].ds = clientStream(r.client.ID)
					}
					t.server.disperseBatch(mbs, slots, plan, sc)
					for i := b; i < be; i++ {
						preds, nBytes := t.encodeForWire(slots[i-b].preds)
						results[i].client.receiveDispersal(preds)
						dispersed[i] = nBytes
					}
				}
				return
			}
			scratch := &disperseScratch{}
			for i := lo; i < hi; i++ {
				r := results[i]
				preds := t.server.disperse(r.client, clientStream(r.client.ID), plan, scratch)
				preds, nBytes := t.encodeForWire(preds)
				r.client.receiveDispersal(preds)
				dispersed[i] = nBytes
			}
		})
	}
	for i, r := range results {
		stats.DispersBytes += int64(dispersed[i])
		t.meter.AddDown(r.client.ID, dispersed[i])
	}
	t.phases.Disperse += time.Since(phaseStart).Seconds()
	if withEval {
		if evalDone != nil {
			<-evalDone
		} else {
			evalStart := time.Now()
			evalRes = t.EvaluateServer()
			evalSecs = time.Since(evalStart).Seconds()
		}
		t.phases.Eval += evalSecs
		t.phases.DisperseEvalWall += time.Since(phaseStart).Seconds()
	}
	t.meter.EndRound()
	return stats, evalRes
}

// BenchDispersal times the two dispersal engines head to head on the frozen
// current server state: `passes` dispersal-only sweeps over every client
// through the round-scoped multi-user batched engine, then the same sweeps
// through the per-client scalar engine, on the configured Workers pool.
// Neither sweep mutates protocol state — outputs are compared, not delivered
// — so the call is safe between rounds. It returns each engine's fastest
// sweep (interference only ever adds time, so the minimum is the robust
// paired estimator) and whether every client's D̃ᵢ came out identical (it
// must; the experiment feeds this into its determinism flag).
// The server model must support the multi-user contract; models that don't
// report zero timings and identical=true, since only the scalar path exists.
func (t *Trainer) BenchDispersal(passes int) (batchedSecs, scalarSecs float64, identical bool) {
	identical = true
	mbs, ok := t.server.model.(models.MultiBlockScorer)
	if !ok || t.cfg.Alpha <= 0 || passes <= 0 {
		return 0, 0, true
	}
	if w, ok := t.server.model.(models.Warmer); ok {
		w.WarmScoring()
	}
	plan := t.server.buildDispersalPlan()
	workers := par.Workers(t.cfg.Workers)
	chunk := (len(t.clients) + workers - 1) / workers
	// Both engines must draw identical per-client streams; a fixed
	// derivation (pure, never consumed elsewhere) keeps the sweep
	// reproducible and stateless.
	needStreams := t.disperseNeedsStreams()
	benchRoot := t.root.Derive("disperse-bench")
	clientStream := func(id int) *rng.Stream {
		if !needStreams {
			return nil
		}
		return benchRoot.DeriveN("client", id)
	}

	// Measurement shape: three alternating groups per engine, each group
	// timing `passes` back-to-back sweeps, and each engine reporting its
	// fastest group. Long groups average out sub-second scheduler and
	// CPU-quota stalls that a single sweep's clock aliases with; alternating
	// groups spread slower drift evenly; and the minimum discards whole
	// disturbed groups — interference only ever adds time.
	const benchGroups = 3
	out := make([][]comm.Prediction, len(t.clients))
	var mismatches atomic.Int64
	for g := 0; g < benchGroups; g++ {
		firstGroup := g == 0
		runtime.GC()
		start := time.Now()
		for p := 0; p < passes; p++ {
			collect := firstGroup && p == 0
			par.ForChunks(len(t.clients), chunk, workers, func(lo, hi int) {
				sc := newDisperseBatchScratch()
				for b := lo; b < hi; b += disperseBatchClients {
					be := b + disperseBatchClients
					if be > hi {
						be = hi
					}
					slots := sc.slots[:be-b]
					for i := b; i < be; i++ {
						c := t.client(i)
						slots[i-b].c = c
						slots[i-b].ds = clientStream(c.ID)
					}
					t.server.disperseBatch(mbs, slots, plan, sc)
					if collect {
						for i := b; i < be; i++ {
							out[i] = slots[i-b].preds
						}
					}
				}
			})
		}
		if secs := time.Since(start).Seconds() / float64(passes); batchedSecs == 0 || secs < batchedSecs {
			batchedSecs = secs
		}

		runtime.GC()
		start = time.Now()
		for p := 0; p < passes; p++ {
			compare := firstGroup && p == 0
			par.ForChunks(len(t.clients), chunk, workers, func(lo, hi int) {
				scratch := &disperseScratch{}
				for i := lo; i < hi; i++ {
					c := t.client(i)
					preds := t.server.disperse(c, clientStream(c.ID), plan, scratch)
					if compare && !predictionsEqual(preds, out[i]) {
						mismatches.Add(1)
					}
				}
			})
		}
		if secs := time.Since(start).Seconds() / float64(passes); scalarSecs == 0 || secs < scalarSecs {
			scalarSecs = secs
		}
	}
	return batchedSecs, scalarSecs, mismatches.Load() == 0
}

// predictionsEqual compares two dispersal outputs bitwise.
func predictionsEqual(a, b []comm.Prediction) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// disperseNeedsStreams reports whether the configured dispersal arm consumes
// per-client randomness: only the ablation arms that replace the confidence
// or hard half with uniform draws do.
func (t *Trainer) disperseNeedsStreams() bool {
	nConf, nHard, confRandom, hardRandom := disperseArms(&t.cfg)
	return (nConf > 0 && confRandom) || (nHard > 0 && hardRandom)
}

// encodeForWire runs predictions through the configured wire codec,
// returning what the receiver actually sees plus the encoded byte count.
// Under quantization the round trip is lossy by design.
func (t *Trainer) encodeForWire(preds []comm.Prediction) ([]comm.Prediction, int) {
	if !t.cfg.QuantizeScores {
		return preds, len(comm.EncodePredictions(preds))
	}
	buf := comm.EncodePredictionsQuantized(preds)
	decoded, err := comm.DecodePredictionsQuantized(buf)
	if err != nil {
		// Encoding our own payload cannot fail to decode; a failure here is
		// a bug in the codec.
		panic(err)
	}
	return decoded, len(buf)
}

// Run executes the configured number of rounds and a final evaluation.
// Periodic evaluations (Config.EvalEvery) overlap each round's dispersal
// phase via RunRoundEval; the history is identical to evaluating after the
// round.
func (t *Trainer) Run() (*History, error) {
	h := &History{}
	for round := 0; round < t.cfg.Rounds; round++ {
		var rs RoundStats
		if t.cfg.EvalEvery > 0 && (round+1)%t.cfg.EvalEvery == 0 {
			rs, _ = t.RunRoundEval(round)
		} else {
			rs = t.RunRound(round)
		}
		h.Rounds = append(h.Rounds, rs)
		h.MeanAttackF1 += rs.AttackF1
	}
	if len(h.Rounds) > 0 {
		h.MeanAttackF1 /= float64(len(h.Rounds))
	}
	h.Final = t.EvaluateServer()
	return h, nil
}

// splitEvaluator returns the trainer's round-cached evaluator, building the
// candidate cache on first use. The engine knob is applied once at build time
// — evaluation may run overlapped with dispersal, so the evaluator must not
// be reconfigured mid-flight. Evaluators installed via ShareEvaluator keep
// their own knob settings.
func (t *Trainer) splitEvaluator() *eval.Evaluator {
	if t.evaluator == nil {
		t.evaluator = eval.NewEvaluator(t.split)
		t.evaluator.SingleUser = t.cfg.EvalSingleUser
	}
	return t.evaluator
}

// ShareEvaluator hands the trainer a prebuilt candidate cache for its split.
// The evaluator is read-only after construction, so several trainers over the
// same split (e.g. a benchmark sweep) can share one instead of each building
// the O(Users × NumItems) cache. Call before the first evaluation; do not
// call mid-round.
func (t *Trainer) ShareEvaluator(e *eval.Evaluator) { t.evaluator = e }

// EvaluateServer measures the hidden model's ranking quality — the quantity
// Table III reports for PTF-FedRec. Evaluation fans out over
// Config.EvalWorkers workers (0 = GOMAXPROCS) with metrics identical for any
// worker count, reusing the trainer's cached candidate sets every round.
func (t *Trainer) EvaluateServer() eval.Result {
	return t.splitEvaluator().Rank(t.server.model, t.cfg.EvalK, t.cfg.EvalWorkers)
}

// EvaluateClients measures the mean ranking quality of the client-side local
// models (each scoring through its own single-user universe). Parallel
// evaluation is safe because each user's scores come from that user's own
// model: no two workers ever touch the same client.
func (t *Trainer) EvaluateClients() eval.Result {
	scorer := models.ScorerFunc(func(u int, items []int) []float64 {
		return t.client(u).model.ScoreItems(0, items)
	})
	return t.splitEvaluator().Rank(scorer, t.cfg.EvalK, t.cfg.EvalWorkers)
}

// String summarises a round for logs.
func (rs RoundStats) String() string {
	s := fmt.Sprintf("round %2d: clients=%d clientLoss=%.4f serverLoss=%.4f attackF1=%.3f up=%s down=%s",
		rs.Round, rs.Participants, rs.ClientLoss, rs.ServerLoss, rs.AttackF1,
		comm.FormatBytes(float64(rs.UploadBytes)), comm.FormatBytes(float64(rs.DispersBytes)))
	if rs.Evaluated {
		s += fmt.Sprintf(" recall@k=%.4f ndcg@k=%.4f", rs.Recall, rs.NDCG)
	}
	return s
}
