package fed

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"ptffedrec/internal/comm"
	"ptffedrec/internal/data"
	"ptffedrec/internal/eval"
	"ptffedrec/internal/models"
	"ptffedrec/internal/par"
	"ptffedrec/internal/rng"
)

// RoundStats records one global round.
type RoundStats struct {
	Round        int
	Participants int
	Dropped      int     // clients that failed before uploading (FaultPlan)
	ClientLoss   float64 // mean local-training loss across participants
	ServerLoss   float64 // mean server batch loss
	AttackF1     float64 // mean Top Guess Attack F1 across uploads
	UploadBytes  int64   // total client→server bytes this round
	DispersBytes int64   // total server→client bytes this round
	Recall, NDCG float64 // server metrics (when evaluated)
	Evaluated    bool
}

// History is a full training run's trace.
type History struct {
	Rounds []RoundStats
	Final  eval.Result
	// MeanAttackF1 averages the attack over all rounds — the Table V figure.
	MeanAttackF1 float64
}

// PhaseSeconds is cumulative wall-clock per round phase across RunRound
// calls — the per-phase breakdown the scalability experiment reports. It is
// deliberately kept out of RoundStats so timing jitter never enters the
// determinism contract on training traces.
type PhaseSeconds struct {
	ClientTrain float64 // parallel local training + upload construction
	Absorb      float64 // confidence counters + latest-view ingestion
	GraphBuild  float64 // adjacency/CSR rebuild (graph server models only)
	ServerTrain float64 // server-side SGD (Eq. 5)
	Disperse    float64 // per-client D̃ᵢ construction + encoding

	// Eval is the wall-clock of server evaluations issued inside
	// RunRoundEval. Both eval and dispersal only read the warmed, frozen
	// model, so RunRoundEval runs them concurrently: Eval overlaps Disperse
	// rather than extending the round.
	Eval float64

	// DisperseEvalWall is the wall-clock of the combined dispersal+eval tail
	// of overlapped rounds — at most Disperse+Eval, approaching
	// max(Disperse, Eval) when the overlap pays. Rounds without an overlapped
	// eval do not contribute.
	DisperseEvalWall float64
}

// Total sums the sequential round phases (Eval overlaps Disperse, so it is
// excluded; DisperseEvalWall is a combined measurement, not a phase).
func (p PhaseSeconds) Total() float64 {
	return p.ClientTrain + p.Absorb + p.GraphBuild + p.ServerTrain + p.Disperse
}

// Trainer orchestrates PTF-FedRec end to end (Algorithm 1), composing the
// two transport-agnostic halves in one process: a ClientHost running every
// user's client side and a RoundEngine running the server side. It is the
// deterministic reference the networked coordinator path is pinned against —
// same halves, loopback wire in between, bitwise-identical history.
type Trainer struct {
	cfg    Config
	split  *data.Split
	host   *ClientHost
	engine *RoundEngine
	phases PhaseSeconds

	// server/clients/meter/root alias into the engine and host (tests and
	// the in-package benchmarks reach through them).
	server  *Server
	clients []*Client
	meter   *comm.Meter
	root    *rng.Stream

	// evaluator caches the per-user candidate sets across rounds (the train
	// mask never changes), built lazily on the first evaluation. It is
	// read-only after construction, so the server and client evaluations —
	// and an eval overlapped with dispersal — can all share it.
	evaluator *eval.Evaluator
}

// NewTrainer wires up one client per user and the hidden server model.
func NewTrainer(sp *data.Split, cfg Config) (*Trainer, error) {
	host, err := NewClientHost(sp, cfg)
	if err != nil {
		return nil, err
	}
	engine, err := NewRoundEngine(sp.NumUsers, sp.NumItems, cfg)
	if err != nil {
		return nil, err
	}
	t := &Trainer{
		cfg:     cfg,
		split:   sp,
		host:    host,
		engine:  engine,
		server:  engine.server,
		clients: host.clients,
		meter:   engine.meter,
		root:    host.root,
	}
	engine.sharePhases(&t.phases)
	return t, nil
}

// client returns participant i, constructing it on first use under
// Config.LazyClients.
func (t *Trainer) client(i int) *Client { return t.host.Client(i) }

// Clients exposes the participant list (tests, examples), materialising any
// clients a lazy trainer has not built yet.
func (t *Trainer) Clients() []*Client {
	for i := range t.clients {
		t.client(i)
	}
	return t.clients
}

// Server exposes the server (tests, examples).
func (t *Trainer) Server() *Server { return t.server }

// Meter exposes the communication meter.
func (t *Trainer) Meter() *comm.Meter { return t.meter }

// Config returns the active configuration.
func (t *Trainer) Config() Config { return t.cfg }

// PhaseSeconds returns the cumulative per-phase wall-clock since construction
// (or the last ResetPhaseSeconds).
func (t *Trainer) PhaseSeconds() PhaseSeconds { return t.phases }

// ResetPhaseSeconds zeroes the per-phase timers.
func (t *Trainer) ResetPhaseSeconds() { t.phases = PhaseSeconds{} }

// RunRound executes Algorithm 1's loop body once.
func (t *Trainer) RunRound(round int) RoundStats {
	stats, _ := t.runRound(round, false)
	return stats
}

// RunRoundEval is RunRound with the round's server evaluation overlapped with
// the dispersal phase: both only read the warmed, frozen server model, so
// they run concurrently after a shared warm step. The returned RoundStats has
// Recall/NDCG/Evaluated filled in. The trace and the evaluation result are
// bitwise-identical to RunRound followed by EvaluateServer.
func (t *Trainer) RunRoundEval(round int) (RoundStats, eval.Result) {
	stats, res := t.runRound(round, true)
	stats.Recall, stats.NDCG, stats.Evaluated = res.Recall, res.NDCG, true
	return stats, res
}

// runRound executes one round, optionally overlapping the server evaluation
// with dispersal: sample the cohort, run every selected client's local round
// in parallel (each goroutine writes only its own slot, so the round is
// deterministic for any worker count), close the round on the engine, and
// deliver the dispersals.
func (t *Trainer) runRound(round int, withEval bool) (RoundStats, eval.Result) {
	idx := t.engine.Select(round)

	phaseStart := time.Now()
	workers := par.Workers(t.cfg.Workers)
	outcomes := make([]ClientOutcome, len(idx))
	par.For(len(idx), workers, func(slot int) {
		outcomes[slot] = t.host.RunClientRound(round, idx[slot]).Outcome()
	})
	t.phases.ClientTrain += time.Since(phaseStart).Seconds()

	// When an evaluation is due it runs concurrently with dispersal inside
	// CloseRound: after the shared warm step both are pure reads of the
	// frozen server model (dispersal additionally builds per-client D̃ᵢ,
	// which eval never touches), so the overlap changes wall-clock only —
	// never results. The overlap is gated on GOMAXPROCS > 1: on a
	// single-core host the two phases just time-slice one thread and the
	// goroutine handoffs make the pair slower than running them back to
	// back, so eval falls back to a sequential run after the round (same
	// results, same phase accounting).
	var evalRes eval.Result
	var evalSecs float64
	var overlap func()
	if withEval && runtime.GOMAXPROCS(0) > 1 {
		overlap = func() {
			evalStart := time.Now()
			evalRes = t.EvaluateServer()
			evalSecs = time.Since(evalStart).Seconds()
		}
	}
	stats, dispersals := t.engine.CloseRound(round, outcomes, overlap)
	for _, d := range dispersals {
		t.host.Deliver(d.ID, d.Preds)
	}
	if withEval {
		if overlap == nil {
			evalStart := time.Now()
			evalRes = t.EvaluateServer()
			evalSecs = time.Since(evalStart).Seconds()
			t.phases.DisperseEvalWall += t.engine.lastDisperseSecs + evalSecs
		}
		t.phases.Eval += evalSecs
	}
	return stats, evalRes
}

// BenchDispersal times the two dispersal engines head to head on the frozen
// current server state: `passes` dispersal-only sweeps over every user
// through the round-scoped multi-user batched engine, then the same sweeps
// through the per-client scalar engine, on the configured Workers pool.
// Neither sweep mutates protocol state — outputs are compared, not delivered
// — so the call is safe between rounds. It returns each engine's fastest
// sweep (interference only ever adds time, so the minimum is the robust
// paired estimator) and whether every client's D̃ᵢ came out identical (it
// must; the experiment feeds this into its determinism flag).
// The server model must support the multi-user contract; models that don't
// report zero timings and identical=true, since only the scalar path exists.
func (t *Trainer) BenchDispersal(passes int) (batchedSecs, scalarSecs float64, identical bool) {
	identical = true
	mbs, ok := t.server.model.(models.MultiBlockScorer)
	if !ok || t.cfg.Alpha <= 0 || passes <= 0 {
		return 0, 0, true
	}
	if w, ok := t.server.model.(models.Warmer); ok {
		w.WarmScoring()
	}
	plan := t.server.buildDispersalPlan()
	workers := par.Workers(t.cfg.Workers)
	numUsers := t.split.NumUsers
	chunk := (numUsers + workers - 1) / workers
	// Both engines must draw identical per-client streams; a fixed
	// derivation (pure, never consumed elsewhere) keeps the sweep
	// reproducible and stateless. Dispersal targets come from the server's
	// upload store, so the sweep never touches (or materialises) clients.
	needStreams := disperseNeedsStreams(&t.cfg)
	benchRoot := t.root.Derive("disperse-bench")
	clientStream := func(id int) *rng.Stream {
		if !needStreams {
			return nil
		}
		return benchRoot.DeriveN("client", id)
	}

	// Measurement shape: three alternating groups per engine, each group
	// timing `passes` back-to-back sweeps, and each engine reporting its
	// fastest group. Long groups average out sub-second scheduler and
	// CPU-quota stalls that a single sweep's clock aliases with; alternating
	// groups spread slower drift evenly; and the minimum discards whole
	// disturbed groups — interference only ever adds time.
	const benchGroups = 3
	out := make([][]comm.Prediction, numUsers)
	var mismatches atomic.Int64
	for g := 0; g < benchGroups; g++ {
		firstGroup := g == 0
		runtime.GC()
		start := time.Now()
		for p := 0; p < passes; p++ {
			collect := firstGroup && p == 0
			par.ForChunks(numUsers, chunk, workers, func(lo, hi int) {
				sc := newDisperseBatchScratch()
				for b := lo; b < hi; b += disperseBatchClients {
					be := b + disperseBatchClients
					if be > hi {
						be = hi
					}
					slots := sc.slots[:be-b]
					for i := b; i < be; i++ {
						slots[i-b].tgt, sc.excls[i-b] = t.server.disperseTargetInto(i, sc.excls[i-b])
						slots[i-b].ds = clientStream(i)
					}
					t.server.disperseBatch(mbs, slots, plan, sc)
					if collect {
						for i := b; i < be; i++ {
							out[i] = slots[i-b].preds
						}
					}
				}
			})
		}
		if secs := time.Since(start).Seconds() / float64(passes); batchedSecs == 0 || secs < batchedSecs {
			batchedSecs = secs
		}

		runtime.GC()
		start = time.Now()
		for p := 0; p < passes; p++ {
			compare := firstGroup && p == 0
			par.ForChunks(numUsers, chunk, workers, func(lo, hi int) {
				scratch := &disperseScratch{}
				for i := lo; i < hi; i++ {
					var tgt disperseTarget
					tgt, scratch.excl = t.server.disperseTargetInto(i, scratch.excl)
					preds := t.server.disperse(tgt, clientStream(i), plan, scratch)
					if compare && !predictionsEqual(preds, out[i]) {
						mismatches.Add(1)
					}
				}
			})
		}
		if secs := time.Since(start).Seconds() / float64(passes); scalarSecs == 0 || secs < scalarSecs {
			scalarSecs = secs
		}
	}
	return batchedSecs, scalarSecs, mismatches.Load() == 0
}

// predictionsEqual compares two dispersal outputs bitwise.
func predictionsEqual(a, b []comm.Prediction) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Run executes the configured number of rounds and a final evaluation.
// The default schedule is the cross-round pipeline (RunPipelined);
// Config.SequentialRounds retains the serialized baseline. Either way,
// periodic evaluations (Config.EvalEvery) overlap each round's dispersal
// phase, and the History is bitwise-identical between the two schedules.
func (t *Trainer) Run() (*History, error) {
	h := &History{}
	if t.cfg.SequentialRounds {
		for round := 0; round < t.cfg.Rounds; round++ {
			var rs RoundStats
			if t.cfg.EvalEvery > 0 && (round+1)%t.cfg.EvalEvery == 0 {
				rs, _ = t.RunRoundEval(round)
			} else {
				rs = t.RunRound(round)
			}
			h.Rounds = append(h.Rounds, rs)
		}
	} else {
		h.Rounds = t.RunPipelined()
	}
	for _, rs := range h.Rounds {
		h.MeanAttackF1 += rs.AttackF1
	}
	if len(h.Rounds) > 0 {
		h.MeanAttackF1 /= float64(len(h.Rounds))
	}
	h.Final = t.EvaluateServer()
	return h, nil
}

// splitEvaluator returns the trainer's round-cached evaluator, building the
// candidate cache on first use. The engine knob is applied once at build time
// — evaluation may run overlapped with dispersal, so the evaluator must not
// be reconfigured mid-flight. Evaluators installed via ShareEvaluator keep
// their own knob settings.
func (t *Trainer) splitEvaluator() *eval.Evaluator {
	if t.evaluator == nil {
		t.evaluator = t.engine.NewEvaluator(t.split)
	}
	return t.evaluator
}

// ShareEvaluator hands the trainer a prebuilt candidate cache for its split.
// The evaluator is read-only after construction, so several trainers over the
// same split (e.g. a benchmark sweep) can share one instead of each building
// the O(Users × NumItems) cache. Call before the first evaluation; do not
// call mid-round.
func (t *Trainer) ShareEvaluator(e *eval.Evaluator) { t.evaluator = e }

// EvaluateServer measures the hidden model's ranking quality — the quantity
// Table III reports for PTF-FedRec. Evaluation fans out over
// Config.EvalWorkers workers (0 = GOMAXPROCS) with metrics identical for any
// worker count, reusing the trainer's cached candidate sets every round.
func (t *Trainer) EvaluateServer() eval.Result {
	return t.engine.Evaluate(t.splitEvaluator())
}

// EvaluateClients measures the mean ranking quality of the client-side local
// models (each scoring through its own single-user universe). Parallel
// evaluation is safe because each user's scores come from that user's own
// model: no two workers ever touch the same client.
func (t *Trainer) EvaluateClients() eval.Result {
	scorer := models.ScorerFunc(func(u int, items []int) []float64 {
		return t.client(u).model.ScoreItems(0, items)
	})
	return t.splitEvaluator().Rank(scorer, t.cfg.EvalK, t.cfg.EvalWorkers)
}

// String summarises a round for logs.
func (rs RoundStats) String() string {
	s := fmt.Sprintf("round %2d: clients=%d clientLoss=%.4f serverLoss=%.4f attackF1=%.3f up=%s down=%s",
		rs.Round, rs.Participants, rs.ClientLoss, rs.ServerLoss, rs.AttackF1,
		comm.FormatBytes(float64(rs.UploadBytes)), comm.FormatBytes(float64(rs.DispersBytes)))
	if rs.Evaluated {
		s += fmt.Sprintf(" recall@k=%.4f ndcg@k=%.4f", rs.Recall, rs.NDCG)
	}
	return s
}
