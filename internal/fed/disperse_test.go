package fed

import (
	"reflect"
	"testing"

	"ptffedrec/internal/bitset"
	"ptffedrec/internal/comm"
	"ptffedrec/internal/models"
	"ptffedrec/internal/rng"
)

// disperseForEligible crafts a dispersal target whose exclusion set rules
// out all but wantEligible items and returns one dispersal for it. The
// generation is made unique per (wantEligible, seed) so the eligibility
// cache never serves a list built for a different exclusion set.
func disperseForEligible(t *testing.T, tr *Trainer, wantEligible int, seed uint64) ([]comm.Prediction, []int) {
	t.Helper()
	sp := tr.split
	excl := bitset.New(sp.NumItems)
	for v := 0; v < sp.NumItems-wantEligible; v++ {
		excl.Add(v)
	}
	eligible := make([]int, 0, wantEligible)
	for v := sp.NumItems - wantEligible; v < sp.NumItems; v++ {
		eligible = append(eligible, v)
	}
	tgt := disperseTarget{id: 0, excl: excl, gen: uint64(wantEligible)<<32 | seed}
	plan := tr.Server().buildDispersalPlan()
	scratch := &disperseScratch{}
	ds := rng.New(seed).Derive("disperse-test")
	return tr.Server().disperse(tgt, ds, plan, scratch), eligible
}

// TestDisperseRandomArmsFillAlpha is the regression test for the random
// ablation arms' under-fill bug: the 2×nConf / 3×nHard oversample could
// collide with already-chosen items and leave D̃ᵢ below α. With an
// adversarial Mu (0.9 → nConf=9, nHard=1, so three random hard draws face
// nine already-chosen items) and a tiny eligible set, every arm must now
// produce exactly min(α, |eligible|) distinct eligible items, for every
// stream.
func TestDisperseRandomArmsFillAlpha(t *testing.T) {
	sp := tinySplit(t)
	for _, mode := range []DisperseMode{
		DisperseConfHard, DisperseNoHard, DisperseNoConf, DisperseAllRandom,
	} {
		cfg := fastConfig(models.KindNeuMF)
		cfg.Rounds = 1
		cfg.Alpha = 10
		cfg.Mu = 0.9
		cfg.Disperse = mode
		tr, err := NewTrainer(sp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		tr.RunRound(0)
		// |eligible| both above and below α, including the α boundary.
		for _, nEligible := range []int{12, 10, 7, 1} {
			want := cfg.Alpha
			if nEligible < want {
				want = nEligible
			}
			for seed := uint64(1); seed <= 50; seed++ {
				preds, eligible := disperseForEligible(t, tr, nEligible, seed)
				if len(preds) != want {
					t.Fatalf("mode %s |eligible|=%d seed %d: dispersed %d items, want %d",
						mode, nEligible, seed, len(preds), want)
				}
				seen := map[int]bool{}
				okItem := map[int]bool{}
				for _, v := range eligible {
					okItem[v] = true
				}
				for _, p := range preds {
					if seen[p.Item] {
						t.Fatalf("mode %s seed %d: duplicate item %d in D̃ᵢ", mode, seed, p.Item)
					}
					seen[p.Item] = true
					if !okItem[p.Item] {
						t.Fatalf("mode %s seed %d: dispersed ineligible item %d", mode, seed, p.Item)
					}
				}
			}
		}
	}
}

// TestDisperseFusedMatchesScalar pins the dispersal selection engine's
// contract at the unit level: the hard half selected through the fused
// chunk-streaming ScoreBlockTopK must equal the per-item
// score-everything-then-select path exactly, predictions included.
func TestDisperseFusedMatchesScalar(t *testing.T) {
	sp := tinySplit(t)
	for _, kind := range []models.Kind{models.KindMF, models.KindNeuMF, models.KindLightGCN} {
		cfg := fastConfig(kind)
		cfg.Rounds = 1
		cfg.Mu = 0.3 // most of α comes from the score-ranked hard half
		fused, err := NewTrainer(sp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		scalar, err := NewTrainer(sp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		forceScalar(scalar)
		fused.RunRound(0)
		scalar.RunRound(0)

		fusedPlan := fused.Server().buildDispersalPlan()
		scalarPlan := scalar.Server().buildDispersalPlan()
		fs, ss := &disperseScratch{}, &disperseScratch{}
		for _, ci := range []int{0, 3, 7} {
			ft, _ := fused.Server().disperseTargetInto(ci, nil)
			st, _ := scalar.Server().disperseTargetInto(ci, nil)
			ds1 := rng.New(99).DeriveN("client", ci)
			ds2 := rng.New(99).DeriveN("client", ci)
			a := fused.Server().disperse(ft, ds1, fusedPlan, fs)
			b := scalar.Server().disperse(st, ds2, scalarPlan, ss)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s client %d: fused dispersal %v != scalar %v", kind, ci, a, b)
			}
		}
	}
}
