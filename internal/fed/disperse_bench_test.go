package fed

import (
	"testing"

	"ptffedrec/internal/data"
	"ptffedrec/internal/models"
	"ptffedrec/internal/rng"
)

// benchDisperseTrainer builds a mid-size LightGCN-server trainer with one
// round of real uploads, mirroring the scalability profile's dispersal shape.
func benchDisperseTrainer(b *testing.B) *Trainer {
	b.Helper()
	p := data.Profile{Name: "bench-disperse", NumUsers: 6000, NumItems: 900,
		Interactions: 90000, ZipfExponent: 1.05, Clusters: 8, ClusterBias: 0.7, MinPerUser: 5}
	d := data.Generate(p, 5)
	sp := d.Split(rng.New(1), 0.2)
	cfg := DefaultConfig(models.KindLightGCN)
	cfg.ClientModel = models.KindMF
	cfg.Dim = 16
	cfg.Rounds = 2
	cfg.ClientEpochs = 1
	cfg.ServerEpochs = 1
	tr, err := NewTrainer(sp, cfg)
	if err != nil {
		b.Fatal(err)
	}
	tr.RunRound(0)
	tr.RunRound(1)
	tr.EvaluateServer()
	return tr
}

// BenchmarkDisperse measures the dispersal engines head to head on the same
// warmed server state: the per-client scalar path against the round-scoped
// multi-user batched path. Both iterate every client serially, so the ratio
// is the single-worker engine gain the scalability experiment's
// disperse-spdup column reports end-to-end.
func BenchmarkDisperse(b *testing.B) {
	b.Run("scalar", func(b *testing.B) {
		tr := benchDisperseTrainer(b)
		plan := tr.server.buildDispersalPlan()
		scratch := &disperseScratch{}
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			// conf+hard consumes no randomness, so the trainer passes no
			// stream; the benchmark mirrors that.
			for u := 0; u < tr.split.NumUsers; u++ {
				var tgt disperseTarget
				tgt, scratch.excl = tr.server.disperseTargetInto(u, scratch.excl)
				tr.server.disperse(tgt, nil, plan, scratch)
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		tr := benchDisperseTrainer(b)
		plan := tr.server.buildDispersalPlan()
		mbs := tr.server.model.(models.MultiBlockScorer)
		sc := newDisperseBatchScratch()
		numUsers := tr.split.NumUsers
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			for lo := 0; lo < numUsers; lo += disperseBatchClients {
				hi := lo + disperseBatchClients
				if hi > numUsers {
					hi = numUsers
				}
				slots := sc.slots[:hi-lo]
				for i := lo; i < hi; i++ {
					slots[i-lo].tgt, sc.excls[i-lo] = tr.server.disperseTargetInto(i, sc.excls[i-lo])
					slots[i-lo].ds = nil
				}
				tr.server.disperseBatch(mbs, slots, plan, sc)
			}
		}
	})
}
