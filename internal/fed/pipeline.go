package fed

import (
	"runtime"
	"time"

	"ptffedrec/internal/eval"
	"ptffedrec/internal/par"
)

// Cross-round pipelined execution. Rounds are serialized end to end in the
// baseline schedule — select → client train → absorb/train/disperse →
// deliver — even though the dependency structure is far sparser: Select is a
// pure function of (seed, round), so round r+1's cohort is known before
// round r closes, and a client u in cohort(r+1) depends on round r only
// through the dispersal D̃ᵤ it receives there — which it receives iff
// u ∈ cohort(r). Everything u's round-(r+1) local step reads is otherwise
// client-local (its model, its split rows, its pure per-(round, client)
// streams), and the server phases never touch client state.
//
// RunPipelined exploits that with a two-round double buffer:
//
//	round r   : [ uploads r ][ absorb/graph/train/disperse r ][ deliver r ]
//	round r+1 :              [ free wave (∉ cohort(r)) trains ][ gated wave trains ]
//
// The free wave of r+1 trains on the worker pool while the server closes
// round r; the gated wave (cohort(r+1) ∩ cohort(r)) trains only after round
// r's deliveries land. Upload absorption still happens round by round in
// cohort slot order, so the History is bitwise-identical to the sequential
// schedule for every model kind, worker count, and fault plan (pinned by the
// pipeline invariance suite; Config.SequentialRounds retains the baseline).
//
// On a single-core host the free wave runs inline before the server phases
// instead of on a goroutine — same order-independence argument, none of the
// time-slicing overhead (the GOMAXPROCS gate that PR 8 gave the eval
// overlap).

// RunPipelined executes the configured rounds through the cross-round
// pipeline and returns the per-round stats. Periodic evaluations
// (Config.EvalEvery) overlap dispersal exactly as in RunRoundEval. It is the
// loop body behind Run's default schedule, exported so the scalability
// experiment can time the pipeline without the final evaluation.
func (t *Trainer) RunPipelined() []RoundStats {
	rounds := make([]RoundStats, 0, t.cfg.Rounds)
	if t.cfg.Rounds <= 0 {
		return rounds
	}

	// mark[u] == r+1 records u ∈ cohort(r); generation stamping avoids
	// clearing between rounds. int32 keeps the 1M-user footprint at 4 MB.
	mark := make([]int32, t.split.NumUsers)

	idx := t.engine.Select(0)
	for _, u := range idx {
		mark[u] = 1
	}
	outcomes := make([]ClientOutcome, len(idx))
	start := time.Now()
	t.trainSlots(0, idx, outcomes, nil)
	t.phases.ClientTrain += time.Since(start).Seconds()

	concurrent := runtime.GOMAXPROCS(0) > 1
	for r := 0; r < t.cfg.Rounds; r++ {
		// Partition round r+1's cohort before closing round r: slots whose
		// user sat out round r have no inbound dispersal and train now.
		var nextIdx []int
		var nextOutcomes []ClientOutcome
		var freeSlots, gatedSlots []int
		var freeDone chan struct{}
		var freeSecs float64
		if r+1 < t.cfg.Rounds {
			nextIdx = t.engine.Select(r + 1)
			nextOutcomes = make([]ClientOutcome, len(nextIdx))
			for slot, u := range nextIdx {
				if mark[u] == int32(r+1) {
					gatedSlots = append(gatedSlots, slot)
				} else {
					freeSlots = append(freeSlots, slot)
				}
				mark[u] = int32(r + 2)
			}
			// Empty waves (e.g. every wave at ClientFraction 1.0, where each
			// next-round client sat in the current cohort) must not reach
			// trainSlots: a nil slot list there means "every slot".
			if len(freeSlots) > 0 {
				if concurrent {
					// The wave measures its own wall and the main goroutine
					// folds it into the shared phase totals after the join —
					// CloseRound writes t.phases concurrently.
					freeDone = make(chan struct{})
					go func() {
						waveStart := time.Now()
						t.trainSlots(r+1, nextIdx, nextOutcomes, freeSlots)
						freeSecs = time.Since(waveStart).Seconds()
						close(freeDone)
					}()
				} else {
					waveStart := time.Now()
					t.trainSlots(r+1, nextIdx, nextOutcomes, freeSlots)
					t.phases.ClientTrain += time.Since(waveStart).Seconds()
				}
			}
		}

		// Close round r, with the periodic evaluation overlapped into the
		// dispersal phase under the same GOMAXPROCS gate as RunRoundEval.
		withEval := t.cfg.EvalEvery > 0 && (r+1)%t.cfg.EvalEvery == 0
		var evalRes eval.Result
		var evalSecs float64
		var overlap func()
		if withEval && concurrent {
			overlap = func() {
				evalStart := time.Now()
				evalRes = t.EvaluateServer()
				evalSecs = time.Since(evalStart).Seconds()
			}
		}
		stats, dispersals := t.engine.CloseRound(r, outcomes, overlap)
		// Deliveries target round r's responders — disjoint from the free
		// wave's users (∉ cohort(r)), so they can land mid-wave.
		for _, d := range dispersals {
			t.host.Deliver(d.ID, d.Preds)
		}
		if withEval {
			if overlap == nil {
				evalStart := time.Now()
				evalRes = t.EvaluateServer()
				evalSecs = time.Since(evalStart).Seconds()
				t.phases.DisperseEvalWall += t.engine.lastDisperseSecs + evalSecs
			}
			t.phases.Eval += evalSecs
			stats.Recall, stats.NDCG, stats.Evaluated = evalRes.Recall, evalRes.NDCG, true
		}
		rounds = append(rounds, stats)

		if r+1 < t.cfg.Rounds {
			if freeDone != nil {
				<-freeDone
				t.phases.ClientTrain += freeSecs
			}
			if len(gatedSlots) > 0 {
				waveStart := time.Now()
				t.trainSlots(r+1, nextIdx, nextOutcomes, gatedSlots)
				t.phases.ClientTrain += time.Since(waveStart).Seconds()
			}
			idx, outcomes = nextIdx, nextOutcomes
		}
	}
	return rounds
}

// trainSlots runs the listed cohort slots' client rounds on the worker pool,
// each goroutine writing only its own outcome slot. A nil slots list trains
// every slot.
func (t *Trainer) trainSlots(round int, idx []int, outcomes []ClientOutcome, slots []int) {
	workers := par.Workers(t.cfg.Workers)
	if slots == nil {
		par.For(len(idx), workers, func(slot int) {
			outcomes[slot] = t.host.RunClientRound(round, idx[slot]).Outcome()
		})
		return
	}
	par.For(len(slots), workers, func(i int) {
		slot := slots[i]
		outcomes[slot] = t.host.RunClientRound(round, idx[slot]).Outcome()
	})
}
