package fed

// This file is the round-scoped dispersal engine: the shared eligibility
// cache that serves each client's eligible item set, the D̃ᵢ assembly helpers
// shared by the scalar and batched paths, and the multi-user batched path
// itself, which groups one worker's clients into score batches and drives
// the hard-half top-K and the final re-scoring through multi-user GEMM
// kernels (models.MultiBlockScorer).
//
// Determinism contract: the batched engine is bitwise-identical to the
// per-client scalar path (Server.disperse) for every batch grouping, worker
// count, model kind, and ablation arm. Scores come from kernels whose
// per-element accumulation order matches the scalar path; the hard-half
// selection pushes exactly the eligible (item, score) pairs the scalar
// selection saw, under the same (score desc, item asc) total order; and each
// client's random draws come from its own per-(round, client) stream,
// consumed in the same conf-then-hard order.

import (
	"math/bits"
	"sync"

	"ptffedrec/internal/bitset"
	"ptffedrec/internal/candset"
	"ptffedrec/internal/comm"
	"ptffedrec/internal/metrics"
	"ptffedrec/internal/models"
	"ptffedrec/internal/rng"
	"ptffedrec/internal/tensor"
)

// disperseBatchClients is how many clients one worker scores together: the
// multi-user GEMM loads each item-embedding row once per batch instead of
// once per client, and its interleaved accumulators hide FP-add latency.
// Purely a scheduling knob — the batch grouping never changes results.
const disperseBatchClients = 16

// disperseScoreChunk is the item-range width of the batched hard-half
// scoring: the engine scores the whole universe for a batch in chunks this
// wide, streaming each chunk's eligible scores into the per-client selectors,
// so only batch×chunk scores are ever materialised. A var so tests can
// shrink it to force multi-chunk selections on small catalogues.
var disperseScoreChunk = 1024

// eligCache is the dispersal engine's shared eligibility cache: int32-packed
// ascending eligible lists — the complement of each user's stored-upload
// exclusion bitset — served while the user's upload generation (the server's
// absorb counter) is unchanged and rebuilt with a word walk (64 memberships
// per load, no per-item probes) on a miss. Same-user stale rebuilds reuse the
// entry's backing array, so steady-state rounds allocate nothing here.
//
// The cache is a bounded LRU: at most budget entries are resident, so
// dispersal memory stops scaling with users × items — a huge-user run holds
// budget × numItems × 4 B no matter how many clients cycle through. An
// eviction costs its victim nothing but the word-walk rebuild on their next
// dispersal, and any budget ≥ 1 is correct.
//
// Concurrency: dispersal workers share the cache, and the recency list and
// eviction state are global, so every access runs under one mutex (the
// rebuild too — it is a word walk over a few KB, far cheaper than a second
// lock round-trip per miss would be worth). The returned slices are safe to
// read outside the lock: a hit or same-client rebuild is only reachable from
// the one worker that owns that client this round, and an eviction leaves
// the victim's backing array untouched — the replacement entry always gets a
// fresh list, so a slice another worker still holds this round is never
// overwritten.
type eligCache struct {
	mu     sync.Mutex
	budget int
	byUser map[int]int32 // user id -> slot index
	slots  []eligSlot    // grows up to budget, then recycles via LRU
	head   int32         // most recently used slot, -1 when empty
	tail   int32         // least recently used slot, -1 when empty
}

// eligSlot is one cache entry, threaded on an intrusive recency list.
type eligSlot struct {
	user int
	gen  uint64
	list []int32
	prev int32
	next int32
}

// defaultEligCacheEntries is the entry budget when Config.EligCacheEntries
// is zero: large enough that every profile up to large-50k's working set of
// concurrently dispersed clients hits, small enough that a million-user run
// is bounded at tens of MB of lists.
const defaultEligCacheEntries = 4096

func newEligCache(budget int) *eligCache {
	if budget <= 0 {
		budget = defaultEligCacheEntries
	}
	return &eligCache{
		budget: budget,
		byUser: make(map[int]int32),
		head:   -1,
		tail:   -1,
	}
}

// eligible returns the target's current eligible set. The returned slice
// aliases the cache; callers must not retain it across the user's next
// absorbed upload (nor across the round — an evicted-then-readmitted user
// gets a fresh backing array, but a same-user generation bump reuses the old
// one). The target's exclusion bitset is only read during the call, so
// callers may reuse its backing for the next target.
func (e *eligCache) eligible(tgt disperseTarget, numItems int) []int32 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if si, ok := e.byUser[tgt.id]; ok {
		s := &e.slots[si]
		if s.gen != tgt.gen {
			// Stale: the user uploaded since this list was built, so any
			// alias from before that upload is already dead by contract and
			// the backing array is free to reuse.
			s.list = e.buildList(s.list[:0], tgt.excl, numItems)
			s.gen = tgt.gen
		}
		e.moveToFront(si)
		return s.list
	}
	var si int32
	if len(e.slots) < e.budget {
		si = int32(len(e.slots))
		e.slots = append(e.slots, eligSlot{})
	} else {
		si = e.tail
		victim := &e.slots[si]
		delete(e.byUser, victim.user)
		e.unlink(si)
		// The victim's list may still be read by another worker this round;
		// drop it so the new entry builds into fresh backing instead.
		victim.list = nil
	}
	s := &e.slots[si]
	s.user, s.gen = tgt.id, tgt.gen
	s.list = e.buildList(s.list[:0], tgt.excl, numItems)
	e.byUser[tgt.id] = si
	e.pushFront(si)
	return s.list
}

// buildList writes the eligible set into dst: the full item range for a user
// with no stored upload, the bitset-complement word walk otherwise.
func (e *eligCache) buildList(dst []int32, excl *bitset.Set, numItems int) []int32 {
	if excl == nil {
		return candset.AppendRange(dst, numItems)
	}
	return candset.AppendComplement(dst, excl, numItems)
}

// unlink removes slot si from the recency list.
func (e *eligCache) unlink(si int32) {
	s := &e.slots[si]
	if s.prev >= 0 {
		e.slots[s.prev].next = s.next
	} else {
		e.head = s.next
	}
	if s.next >= 0 {
		e.slots[s.next].prev = s.prev
	} else {
		e.tail = s.prev
	}
}

// pushFront makes slot si the most recently used.
func (e *eligCache) pushFront(si int32) {
	s := &e.slots[si]
	s.prev, s.next = -1, e.head
	if e.head >= 0 {
		e.slots[e.head].prev = si
	}
	e.head = si
	if e.tail < 0 {
		e.tail = si
	}
}

// moveToFront refreshes slot si's recency.
func (e *eligCache) moveToFront(si int32) {
	if e.head == si {
		return
	}
	e.unlink(si)
	e.pushFront(si)
}

// entries returns how many lists are resident (tests).
func (e *eligCache) entries() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.byUser)
}

// eligSlotOverheadBytes is one slot's bookkeeping: the eligSlot struct (user
// + gen + slice header + two int32 links, padded) plus the map entry.
const eligSlotOverheadBytes = 48 + 32

// memoryBytes reports the cache's resident footprint.
func (e *eligCache) memoryBytes() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	b := int64(len(e.slots)) * eligSlotOverheadBytes
	for i := range e.slots {
		b += int64(cap(e.slots[i].list)) * 4
	}
	return b
}

// disperseArms derives Eq. 9's per-arm split for a config: the confidence
// and hard half sizes and whether each half draws random items. The one
// definition shared by the trainer's stream gating, the scalar path, and the
// batched path, so the "consumes randomness" predicate can never drift from
// the consumers (a drifted gate would hand a nil stream to a drawing arm).
func disperseArms(cfg *Config) (nConf, nHard int, confRandom, hardRandom bool) {
	nConf = int(cfg.Mu * float64(cfg.Alpha))
	nHard = cfg.Alpha - nConf
	confRandom = cfg.Disperse == DisperseNoConf || cfg.Disperse == DisperseAllRandom
	hardRandom = cfg.Disperse == DisperseNoHard || cfg.Disperse == DisperseAllRandom
	return nConf, nHard, confRandom, hardRandom
}

// pushEligibleWindow streams one chunk's eligible logits into a selector:
// every item in [lo, hi) outside the exclusion bitset is pushed with its raw
// logit from scoresRow (indexed relative to lo), in ascending item order —
// exactly the push order metrics.LogitTopKSelector's tie-safe contract
// requires. The walk runs over the bitset's complement words — 64 memberships
// per load, the same machinery as candset.AppendComplement windowed to the
// chunk — so eligibility costs bitset words, not a materialised list.
func pushEligibleWindow(sel *metrics.LogitTopKSelector, excluded *bitset.Set, scoresRow []float64, lo, hi int) {
	if excluded == nil {
		for v := lo; v < hi; v++ {
			sel.Push(v, scoresRow[v-lo])
		}
		return
	}
	words := excluded.Words()
	for base := lo &^ 63; base < hi; base += 64 {
		w := ^words[base>>6]
		if base < lo {
			w &^= (1 << uint(lo-base)) - 1
		}
		for w != 0 {
			v := base + bits.TrailingZeros64(w)
			if v >= hi {
				break
			}
			sel.Push(v, scoresRow[v-lo])
			w &= w - 1
		}
	}
}

// chosenIn reports whether v is already in D̃ᵢ. α is small (paper: 30), so a
// linear scan beats any set structure.
func chosenIn(items []int, v int) bool {
	for _, w := range items {
		if w == v {
			return true
		}
	}
	return false
}

// pickItems moves up to n non-chosen items from ranked into D̃ᵢ, returning
// the grown set and how many slots it could not fill.
func pickItems(items []int, ranked []int, n int) ([]int, int) {
	for _, v := range ranked {
		if n == 0 {
			break
		}
		if chosenIn(items, v) {
			continue
		}
		items = append(items, v)
		n--
	}
	return items, n
}

// fillItems backstops the random ablation arms: an oversample (2×nConf /
// 3×nHard draws) can collide with already-chosen items and leave pickItems
// short, which used to under-fill D̃ᵢ below α. A deterministic walk of the
// remaining eligible items tops the set back up to min(α, |eligible|)
// without consuming the client's random stream, so worker-count invariance
// is preserved.
func fillItems(items []int, eligible []int, n int) []int {
	for _, v := range eligible {
		if n == 0 {
			break
		}
		if chosenIn(items, v) {
			continue
		}
		items = append(items, v)
		n--
	}
	return items
}

// confWalkItems appends up to n items from the round's confidence ranking,
// skipping the client's excluded items — the order-preserving filter that
// makes the shared global ranking reproduce a per-client stable sort.
func confWalkItems(items []int, confRank []int, excluded func(int) bool, n int) []int {
	for _, v := range confRank {
		if n == 0 {
			break
		}
		if excluded(v) {
			continue
		}
		items = append(items, v)
		n--
	}
	return items
}

// disperseSlot carries one dispersal target through a score batch.
type disperseSlot struct {
	tgt       disperseTarget
	ds        *rng.Stream
	elig      []int32 // cache-served eligible set (random arms only)
	eligCount int     // |eligible| = numItems − |exclusion set|
	items     []int   // chosen D̃ᵢ items, conf half then hard half
	preds     []comm.Prediction
	skip      bool // eligible set empty: D̃ᵢ is nil
}

// disperseBatchScratch is one worker's reusable state for the batched
// dispersal path: the chunk score matrix backing, the per-slot selectors,
// and the assembly buffers. Nothing here is allocated per batch once warm.
// excls holds one reusable exclusion bitset per slot for callers that build
// targets from the upload store (disperseTargetInto fills and returns them).
type disperseBatchScratch struct {
	slots     []disperseSlot
	excls     [disperseBatchClients]*bitset.Set
	scores    []float64 // batch×chunk (and batch×union) score backing
	users     []int     // active user ids for one scoring call
	rows      []int     // active slot index per score-matrix row
	sels      []metrics.LogitTopKSelector
	top       []int
	widened   []int // one client's eligible set widened for the random arms
	pairUsers []int // flattened (user, item) pairs for the final re-scoring
	pairItems []int
}

func newDisperseBatchScratch() *disperseBatchScratch {
	return &disperseBatchScratch{
		slots: make([]disperseSlot, disperseBatchClients),
		sels:  make([]metrics.LogitTopKSelector, disperseBatchClients),
	}
}

// scoreMat returns a rows×cols score matrix over the scratch backing,
// growing it as needed.
func (sc *disperseBatchScratch) scoreMat(rows, cols int) *tensor.Matrix {
	if need := rows * cols; cap(sc.scores) < need {
		sc.scores = make([]float64, need)
	}
	return tensor.FromSlice(rows, cols, sc.scores[:rows*cols])
}

// disperseBatch builds D̃ᵢ for one worker's batch of clients (Eq. 9), with
// the scoring passes batched across the whole group:
//
//  1. eligibility: the random arms fetch each client's materialised eligible
//     list from the shared eligibility cache; the deterministic arms need
//     only the eligible count (from the upload bitset) plus the bitset
//     itself, touching four bytes per excluded — not per eligible — item;
//  2. the confidence half walks the round's shared ranking per client (or
//     draws from the client's own stream in the random arms);
//  3. the hard half scores the batch against the item universe in
//     disperseScoreChunk-wide multi-user logit GEMM calls, streaming each
//     chunk's eligible logits into per-client bounded-heap logit-domain
//     selectors via windowed word walks over the upload bitsets — no
//     per-item membership probes, no full score vectors, and sigmoids only
//     for candidates that reach a heap;
//  4. the final re-scoring of every client's chosen items runs as one
//     ragged pair-batched multi-user pass.
//
// Each slot's preds is left ready for the wire: bitwise-identical to what
// Server.disperse produces for the same client and stream.
func (sv *Server) disperseBatch(mbs models.MultiBlockScorer, slots []disperseSlot, plan *dispersalPlan, sc *disperseBatchScratch) {
	nConf, nHard, confRandom, hardRandom := disperseArms(sv.cfg)

	// The random arms draw from a materialised eligible list; the
	// deterministic hard half streams eligibility from the bitset and needs
	// only the count; the pure-confidence path gets by on the bitset alone.
	needEligList := (nConf > 0 && confRandom) || (nHard > 0 && hardRandom)
	needEligCount := nHard > 0 && !hardRandom

	// Phase 1: eligibility + confidence half, per client.
	for si := range slots {
		s := &slots[si]
		s.items = s.items[:0]
		s.preds = nil
		s.skip = false
		if needEligList {
			s.elig = sv.elig.eligible(s.tgt, sv.numItems)
			s.eligCount = len(s.elig)
			if s.eligCount == 0 {
				s.skip = true
				continue
			}
		} else if needEligCount {
			s.eligCount = sv.numItems
			if s.tgt.excl != nil {
				s.eligCount -= s.tgt.excl.Count()
			}
			if s.eligCount == 0 {
				s.skip = true
				continue
			}
		}
		if nConf > 0 {
			if confRandom {
				sc.widened = candset.Widen(sc.widened, s.elig)
				k := nConf * 2
				if k > len(sc.widened) {
					k = len(sc.widened)
				}
				var unfilled int
				s.items, unfilled = pickItems(s.items, rng.SampleSlice(s.ds, sc.widened, k), nConf)
				s.items = fillItems(s.items, sc.widened, unfilled)
			} else {
				excl := s.tgt.excl
				s.items = confWalkItems(s.items, plan.confRank, func(v int) bool {
					return excl != nil && excl.Contains(v)
				}, nConf)
			}
		}
	}

	// Phase 2: hard half.
	if nHard > 0 && hardRandom {
		for si := range slots {
			s := &slots[si]
			if s.skip {
				continue
			}
			sc.widened = candset.Widen(sc.widened, s.elig)
			k := nHard * 3
			if k > len(sc.widened) {
				k = len(sc.widened)
			}
			var unfilled int
			s.items, unfilled = pickItems(s.items, rng.SampleSlice(s.ds, sc.widened, k), nHard)
			s.items = fillItems(s.items, sc.widened, unfilled)
		}
	} else if nHard > 0 {
		// Batched top-K: score the whole batch chunk-by-chunk over the item
		// universe in logit domain; per client, a windowed word walk over the
		// upload bitset's complement pushes exactly the eligible
		// (item, logit) pairs into that client's logit-domain selector, in
		// ascending item order, reading four bytes of bitset per 64
		// memberships. Pushing item ids preserves the scalar path's
		// (score desc, item asc) selection order, because the scalar path's
		// eligible-list indices are themselves ascending in item id; the
		// selector resolves σ-collapsed ties identically to the scalar path's
		// probability-domain selection, so only the sigmoid count changes —
		// paid per heap insertion instead of per eligible item.
		active := sc.users[:0]
		rows := sc.rows[:0]
		for si := range slots {
			s := &slots[si]
			if s.skip {
				continue
			}
			kSel := nHard + len(s.items)
			if kSel > s.eligCount {
				kSel = s.eligCount
			}
			sc.sels[len(rows)].Reset(kSel)
			active = append(active, s.tgt.id)
			rows = append(rows, si)
		}
		sc.users, sc.rows = active, rows
		if len(rows) > 0 {
			for lo := 0; lo < sv.numItems; lo += disperseScoreChunk {
				hi := lo + disperseScoreChunk
				if hi > sv.numItems {
					hi = sv.numItems
				}
				m := sc.scoreMat(len(rows), hi-lo)
				mbs.ScoreUsersBlockLogitsInto(m, active, sv.ident[lo:hi])
				for row, si := range rows {
					pushEligibleWindow(&sc.sels[row], slots[si].tgt.excl, m.Row(row), lo, hi)
				}
			}
			for row, si := range rows {
				s := &slots[si]
				sc.top = sc.sels[row].Into(sc.top)
				s.items, _ = pickItems(s.items, sc.top, nHard)
			}
		}
	}

	// Phase 3: final re-scoring of the chosen items as one ragged multi-user
	// pass — every client's (id, item) pairs concatenate into one pair list
	// scored by a single ScorePairsInto call, exactly Σ|D̃ᵢ| pair scores for
	// the batch. The pair kernels compute the same dot products / tower
	// forwards the scalar path's per-client re-scoring does, so values are
	// identical.
	pairUsers := sc.pairUsers[:0]
	pairItems := sc.pairItems[:0]
	for si := range slots {
		s := &slots[si]
		if s.skip {
			continue
		}
		s.preds = make([]comm.Prediction, len(s.items))
		for _, v := range s.items {
			pairUsers = append(pairUsers, s.tgt.id)
			pairItems = append(pairItems, v)
		}
	}
	sc.pairUsers, sc.pairItems = pairUsers, pairItems
	if len(pairItems) == 0 {
		return
	}
	if cap(sc.scores) < len(pairItems) {
		sc.scores = make([]float64, len(pairItems))
	}
	scores := sc.scores[:len(pairItems)]
	mbs.ScorePairsInto(scores, pairUsers, pairItems)
	off := 0
	for si := range slots {
		s := &slots[si]
		if s.skip {
			continue
		}
		for j, v := range s.items {
			s.preds[j] = comm.Prediction{User: s.tgt.id, Item: v, Score: scores[off+j]}
		}
		off += len(s.items)
	}
}
