package fed

import (
	"math"
	"testing"

	"ptffedrec/internal/models"
)

func TestQuantizedRunReducesTraffic(t *testing.T) {
	sp := tinySplit(t)
	base := fastConfig(models.KindNeuMF)
	base.Rounds = 2

	plain, err := NewTrainer(sp, base)
	if err != nil {
		t.Fatal(err)
	}
	hPlain, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}

	q := base
	q.QuantizeScores = true
	quant, err := NewTrainer(sp, q)
	if err != nil {
		t.Fatal(err)
	}
	hQuant, err := quant.Run()
	if err != nil {
		t.Fatal(err)
	}

	// 9/12 of the float32 traffic, exactly.
	ratio := float64(hQuant.TotalUploadBytes()) / float64(hPlain.TotalUploadBytes())
	if math.Abs(ratio-0.75) > 1e-9 {
		t.Fatalf("quantized/plain upload ratio = %v, want 0.75", ratio)
	}
	if hQuant.TotalDisperseBytes() >= hPlain.TotalDisperseBytes() {
		t.Fatal("quantization did not shrink dispersal")
	}
	// Quality must survive 8-bit scores.
	if hQuant.Final.Users == 0 {
		t.Fatal("quantized run evaluated no users")
	}
}

func TestQuantizedScoresOnGrid(t *testing.T) {
	sp := tinySplit(t)
	cfg := fastConfig(models.KindNeuMF)
	cfg.Rounds = 1
	cfg.QuantizeScores = true
	tr, err := NewTrainer(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr.RunRound(0)
	for _, c := range tr.Clients() {
		for _, p := range c.ServerData() {
			scaled := p.Score * 255
			if math.Abs(scaled-math.Round(scaled)) > 1e-6 {
				t.Fatalf("dispersed score %v not on the 1/255 grid", p.Score)
			}
		}
	}
}
