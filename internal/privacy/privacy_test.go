package privacy

import (
	"math"
	"testing"

	"ptffedrec/internal/comm"
	"ptffedrec/internal/rng"
)

func mkPreds(posScores, negScores []float64) ([]comm.Prediction, func(int) bool) {
	var preds []comm.Prediction
	posSet := map[int]bool{}
	id := 0
	for _, sc := range posScores {
		preds = append(preds, comm.Prediction{User: 0, Item: id, Score: sc})
		posSet[id] = true
		id++
	}
	for _, sc := range negScores {
		preds = append(preds, comm.Prediction{User: 0, Item: id, Score: sc})
		id++
	}
	return preds, func(v int) bool { return posSet[v] }
}

func TestSampleUploadRespectsBetaGamma(t *testing.T) {
	s := rng.New(1)
	pos := make([]int, 100)
	neg := make([]int, 1000)
	for i := range pos {
		pos[i] = i
	}
	for i := range neg {
		neg[i] = 100 + i
	}
	cfg := DefaultConfig()
	for trial := 0; trial < 50; trial++ {
		sp, sn, beta, gamma := SampleUpload(s, pos, neg, cfg)
		if beta < cfg.BetaMin || beta > cfg.BetaMax {
			t.Fatalf("beta = %v", beta)
		}
		if gamma < cfg.GammaMin || gamma > cfg.GammaMax {
			t.Fatalf("gamma = %v", gamma)
		}
		wantPos := int(math.Ceil(beta * 100))
		if len(sp) != wantPos {
			t.Fatalf("selected %d positives, want %d (beta=%v)", len(sp), wantPos, beta)
		}
		if len(sn) != gamma*len(sp) {
			t.Fatalf("selected %d negatives, want %d", len(sn), gamma*len(sp))
		}
	}
}

func TestSampleUploadRatioVaries(t *testing.T) {
	// The whole point of sampling: the positive fraction of the upload is no
	// longer the fixed 1/(1+4) the server could exploit.
	s := rng.New(2)
	pos := make([]int, 50)
	neg := make([]int, 500)
	for i := range pos {
		pos[i] = i
	}
	for i := range neg {
		neg[i] = 50 + i
	}
	fracs := map[float64]bool{}
	for trial := 0; trial < 30; trial++ {
		sp, sn, _, _ := SampleUpload(s, pos, neg, DefaultConfig())
		frac := float64(len(sp)) / float64(len(sp)+len(sn))
		fracs[math.Round(frac*100)/100] = true
	}
	if len(fracs) < 3 {
		t.Fatalf("positive fraction nearly constant across uploads: %v", fracs)
	}
}

func TestSampleUploadSmallPools(t *testing.T) {
	s := rng.New(3)
	sp, sn, _, _ := SampleUpload(s, []int{1}, []int{2}, DefaultConfig())
	if len(sp) != 1 || len(sn) != 1 {
		t.Fatalf("small pool: %v %v", sp, sn)
	}
	sp, sn, _, _ = SampleUpload(s, nil, []int{2, 3}, DefaultConfig())
	if len(sp) != 0 {
		t.Fatalf("no positives should select none, got %v", sp)
	}
	_ = sn
}

func TestSwapPerturbsTopPositives(t *testing.T) {
	preds, isPos := mkPreds([]float64{0.95, 0.9, 0.85, 0.8}, []float64{0.1, 0.2, 0.3, 0.4})
	s := rng.New(4)
	swapped := Swap(s, preds, isPos, 0.5)
	if swapped != 2 {
		t.Fatalf("swapped %d, want ceil(0.5*4) = 2", swapped)
	}
	// Multiset of scores unchanged (swap only exchanges).
	var sum float64
	for _, p := range preds {
		sum += p.Score
	}
	if math.Abs(sum-(0.95+0.9+0.85+0.8+0.1+0.2+0.3+0.4)) > 1e-12 {
		t.Fatal("swap changed the score multiset")
	}
	// At least one of the top-2 positives now carries a low score.
	lowered := 0
	for i, p := range preds {
		if i < 2 && p.Score < 0.5 {
			lowered++
		}
	}
	if lowered == 0 {
		t.Fatal("no top positive was lowered")
	}
}

func TestSwapNoNegatives(t *testing.T) {
	preds, isPos := mkPreds([]float64{0.9}, nil)
	if got := Swap(rng.New(5), preds, isPos, 0.5); got != 0 {
		t.Fatalf("swap with no negatives = %d", got)
	}
}

func TestAddLaplaceClamps(t *testing.T) {
	preds, _ := mkPreds([]float64{0.99, 0.01, 0.5}, []float64{0.5})
	AddLaplace(rng.New(6), preds, 2.0)
	for _, p := range preds {
		if p.Score < 0 || p.Score > 1 {
			t.Fatalf("LDP score out of range: %v", p.Score)
		}
	}
}

func TestAddLaplaceActuallyPerturbs(t *testing.T) {
	preds, _ := mkPreds([]float64{0.5, 0.5, 0.5, 0.5}, nil)
	AddLaplace(rng.New(7), preds, 0.5)
	moved := 0
	for _, p := range preds {
		if p.Score != 0.5 {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("LDP left all scores unchanged")
	}
}

func TestTopGuessAttackPerfectOnCleanUpload(t *testing.T) {
	// 2 positives with top scores among 10 items; fraction 0.2 -> guess 2.
	preds, isPos := mkPreds([]float64{0.9, 0.8}, []float64{0.1, 0.2, 0.3, 0.15, 0.25, 0.05, 0.35, 0.12})
	guessed := TopGuessAttack(preds, 0.2)
	if f1 := AttackF1(preds, guessed, isPos); f1 != 1 {
		t.Fatalf("clean-upload attack F1 = %v, want 1", f1)
	}
}

func TestTopGuessAttackDefeatedBySwap(t *testing.T) {
	posScores := []float64{0.99, 0.98, 0.97, 0.96}
	negScores := []float64{0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08,
		0.09, 0.10, 0.11, 0.12, 0.13, 0.14, 0.15, 0.16}
	preds, isPos := mkPreds(posScores, negScores)
	before := AttackF1(preds, TopGuessAttack(preds, 0.2), isPos)
	Swap(rng.New(8), preds, isPos, 0.5)
	after := AttackF1(preds, TopGuessAttack(preds, 0.2), isPos)
	if before != 1 {
		t.Fatalf("pre-swap F1 = %v", before)
	}
	if after >= before {
		t.Fatalf("swap did not reduce attack F1: %v -> %v", before, after)
	}
}

func TestTopGuessAttackMinimumOneGuess(t *testing.T) {
	preds, _ := mkPreds([]float64{0.9}, []float64{0.1})
	if got := TopGuessAttack(preds, 0.01); len(got) != 1 {
		t.Fatalf("guessed %d items, want 1", len(got))
	}
	if got := TopGuessAttack(nil, 0.2); len(got) != 0 {
		t.Fatal("empty upload should guess nothing")
	}
}

func TestAmplifyBySampling(t *testing.T) {
	eps, delta := AmplifyBySampling(1.0, 1e-5, 0.1)
	if eps >= 1.0 || eps <= 0 {
		t.Fatalf("amplified eps = %v, want in (0,1)", eps)
	}
	if math.Abs(delta-1e-6) > 1e-12 {
		t.Fatalf("amplified delta = %v", delta)
	}
	if e, d := AmplifyBySampling(1, 1e-5, 1.5); e != 1 || d != 1e-5 {
		t.Fatal("q>=1 should be identity")
	}
	if e, d := AmplifyBySampling(1, 1e-5, 0); e != 0 || d != 0 {
		t.Fatal("q=0 should be zero")
	}
}

func TestParseDefense(t *testing.T) {
	for _, s := range []string{"none", "ldp", "sampling", "sampling+swap"} {
		if _, ok := ParseDefense(s); !ok {
			t.Fatalf("ParseDefense(%q) failed", s)
		}
	}
	if _, ok := ParseDefense("xyz"); ok {
		t.Fatal("bad defense accepted")
	}
}
