// Package privacy implements §III-B2 of the paper: the privacy-preserving
// construction of the client upload D̂ᵗᵢ (sampling + swapping), the LDP
// baseline it is compared against, and the curious-but-honest server's
// "Top Guess Attack" used to measure leakage (Table V, Fig. 3).
package privacy

import (
	"math"
	"sort"

	"ptffedrec/internal/comm"
	"ptffedrec/internal/metrics"
	"ptffedrec/internal/rng"
)

// Defense selects the upload-perturbation mechanism.
type Defense string

// The defenses evaluated in Table V.
const (
	DefenseNone         Defense = "none"
	DefenseLDP          Defense = "ldp"
	DefenseSampling     Defense = "sampling"
	DefenseSamplingSwap Defense = "sampling+swap"
)

// ParseDefense converts a string (CLI flag) to a Defense.
func ParseDefense(s string) (Defense, bool) {
	switch Defense(s) {
	case DefenseNone, DefenseLDP, DefenseSampling, DefenseSamplingSwap:
		return Defense(s), true
	}
	return "", false
}

// Config carries the §IV-D defaults for the upload mechanism.
type Config struct {
	Defense Defense
	// Sampling: βᵗᵢ ~ U[BetaMin, BetaMax] is the fraction of positives
	// uploaded, γᵗᵢ ~ U{GammaMin..GammaMax} the negatives-per-positive ratio.
	BetaMin, BetaMax   float64
	GammaMin, GammaMax int
	// Swapping: λ is the fraction of high-scoring positives whose scores are
	// exchanged with negatives.
	Lambda float64
	// LDP: scale of the Laplace noise added to every score (b = Δf/ε with
	// sensitivity 1 for scores in [0,1]).
	LaplaceScale float64
}

// DefaultConfig returns the paper's settings: β∈[0.1,1], γ∈{1..4}, λ=0.1.
func DefaultConfig() Config {
	return Config{
		Defense:      DefenseSamplingSwap,
		BetaMin:      0.1,
		BetaMax:      1.0,
		GammaMin:     1,
		GammaMax:     4,
		Lambda:       0.1,
		LaplaceScale: 0.5,
	}
}

// SampleUpload draws the uploaded item subset from the client's trained item
// pool: a βᵗᵢ fraction of positives and γᵗᵢ negatives per selected positive
// (Eq. 7). It returns the selected positives and negatives separately so the
// caller can score them; the server only ever sees the merged, shuffled set.
func SampleUpload(s *rng.Stream, positives, negatives []int, cfg Config) (selPos, selNeg []int, beta float64, gamma int) {
	beta = s.Float64Range(cfg.BetaMin, cfg.BetaMax)
	gamma = s.IntRange(cfg.GammaMin, cfg.GammaMax)
	nPos := int(math.Ceil(beta * float64(len(positives))))
	if nPos > len(positives) {
		nPos = len(positives)
	}
	if nPos < 1 && len(positives) > 0 {
		nPos = 1
	}
	nNeg := gamma * nPos
	if nNeg > len(negatives) {
		nNeg = len(negatives)
	}
	selPos = rng.SampleSlice(s, positives, nPos)
	selNeg = rng.SampleSlice(s, negatives, nNeg)
	return selPos, selNeg, beta, gamma
}

// Swap perturbs the predictions in place (Eq. 8): it takes the λ fraction of
// positives with the highest scores and exchanges each one's score with a
// randomly chosen negative's score, destroying exactly the order information
// the Top Guess Attack relies on.
func Swap(s *rng.Stream, preds []comm.Prediction, isPositive func(item int) bool, lambda float64) int {
	var posIdx, negIdx []int
	for i, p := range preds {
		if isPositive(p.Item) {
			posIdx = append(posIdx, i)
		} else {
			negIdx = append(negIdx, i)
		}
	}
	if len(posIdx) == 0 || len(negIdx) == 0 {
		return 0
	}
	sort.SliceStable(posIdx, func(a, b int) bool { return preds[posIdx[a]].Score > preds[posIdx[b]].Score })
	n := int(math.Ceil(lambda * float64(len(posIdx))))
	if n > len(posIdx) {
		n = len(posIdx)
	}
	for k := 0; k < n; k++ {
		pi := posIdx[k]
		ni := negIdx[s.Intn(len(negIdx))]
		preds[pi].Score, preds[ni].Score = preds[ni].Score, preds[pi].Score
	}
	return n
}

// AddLaplace perturbs every score with Laplace(scale) noise clamped back to
// [0,1] — the traditional FedRec LDP baseline of Table V.
func AddLaplace(s *rng.Stream, preds []comm.Prediction, scale float64) {
	for i := range preds {
		v := preds[i].Score + s.Laplace(scale)
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		preds[i].Score = v
	}
}

// TopGuessAttack is the curious-but-honest server's inference from §III-B2:
// it assumes the uploaded set follows the platform-default negative sampling
// ratio and guesses the top posFraction·|upload| items by score as the
// client's positives (the paper uses posFraction = 0.2 for the 1:4 ratio).
func TopGuessAttack(preds []comm.Prediction, posFraction float64) map[int]bool {
	n := int(math.Round(posFraction * float64(len(preds))))
	if n < 1 && len(preds) > 0 {
		n = 1
	}
	scores := make([]float64, len(preds))
	for i, p := range preds {
		scores[i] = p.Score
	}
	guessed := map[int]bool{}
	// The guessed set is order-insensitive, so the bounded-heap selection is a
	// drop-in for the full sort (identical indices, O(n log k)).
	for _, idx := range metrics.TopKInto(nil, scores, n) {
		guessed[preds[idx].Item] = true
	}
	return guessed
}

// AttackF1 scores the attack's guess against the true positive items that
// appear in the upload. Only uploaded items count: the attack's target is
// exactly the positive/negative partition of D̂ᵗᵢ.
func AttackF1(preds []comm.Prediction, guessed map[int]bool, isPositive func(item int) bool) float64 {
	truth := map[int]bool{}
	for _, p := range preds {
		if isPositive(p.Item) {
			truth[p.Item] = true
		}
	}
	return metrics.F1Sets(guessed, truth)
}

// AmplifyBySampling applies the privacy-amplification-by-subsampling bound:
// running an (ε₀, δ₀)-DP mechanism on a q-subsample satisfies
// (ln(1+q(e^{ε₀}−1)), qδ₀)-DP. The sampling step of §III-B2 cites this
// noise-free DP argument; the helper lets experiments report the amplified
// budget for a given β.
func AmplifyBySampling(eps0, delta0, q float64) (eps, delta float64) {
	if q <= 0 {
		return 0, 0
	}
	if q >= 1 {
		return eps0, delta0
	}
	return math.Log(1 + q*(math.Exp(eps0)-1)), q * delta0
}
