package eval

import (
	"reflect"
	"testing"

	"ptffedrec/internal/data"
	"ptffedrec/internal/models"
	"ptffedrec/internal/rng"
)

// TestEvaluatorSelectionInvariance pins the selection engine's contract:
// Results are bitwise-identical across the fused chunk-streaming path, the
// bounded-heap-over-full-vector path, and the legacy sort path, for every
// model kind and workers ∈ {1, 2, 8}.
func TestEvaluatorSelectionInvariance(t *testing.T) {
	d := data.Generate(data.Tiny, 11)
	sp := d.Split(rng.New(2), 0.2)
	for _, kind := range []models.Kind{models.KindMF, models.KindNeuMF, models.KindLightGCN, models.KindNGCF} {
		m := trainedModel(t, kind, sp)

		sortEval := NewEvaluator(sp)
		sortEval.SortSelect = true
		ref := sortEval.Rank(m, 20, 1)
		if ref.Users == 0 {
			t.Fatalf("%s: no users evaluated", kind)
		}

		for _, workers := range []int{1, 2, 8} {
			fused := NewEvaluator(sp)
			if got := fused.Rank(m, 20, workers); got != ref {
				t.Fatalf("%s workers=%d: fused select %+v != sort %+v", kind, workers, got, ref)
			}
			if got := sortEval.Rank(m, 20, workers); got != ref {
				t.Fatalf("%s workers=%d: sort select %+v != workers=1 sort %+v", kind, workers, got, ref)
			}
			// Hiding BlockScorer forces the heap-over-full-vector path.
			if got := NewEvaluator(sp).Rank(scalarOnly{m}, 20, workers); got != ref {
				t.Fatalf("%s workers=%d: heap select %+v != sort %+v", kind, workers, got, ref)
			}
		}
	}
}

// TestEvaluatorReuseAcrossRounds checks the candidate cache stays correct as
// the model behind it changes: one Evaluator reused across training steps
// must match a fresh per-call evaluation every time.
func TestEvaluatorReuseAcrossRounds(t *testing.T) {
	d := data.Generate(data.Tiny, 13)
	sp := d.Split(rng.New(4), 0.2)
	m, err := models.New(models.KindMF, models.Config{
		NumUsers: sp.NumUsers, NumItems: sp.NumItems, Dim: 8, LR: 1e-2, Layers: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var batch []models.Sample
	for u := 0; u < sp.NumUsers; u++ {
		for _, v := range sp.Train[u] {
			batch = append(batch, models.Sample{User: u, Item: v, Label: 1})
		}
	}
	e := NewEvaluator(sp)
	for round := 0; round < 3; round++ {
		m.TrainBatch(batch)
		cached := e.Rank(m, 20, 2)
		if fresh := RankingWorkers(m, sp, 20, 2); cached != fresh {
			t.Fatalf("round %d: cached evaluator %+v != fresh %+v", round, cached, fresh)
		}
	}
}

// TestEvaluatorBuildWorkerInvariance pins the sharded cold build: the packed
// candidate cache — layout and every list — is identical for any worker
// count, and so are the metrics ranked from it.
func TestEvaluatorBuildWorkerInvariance(t *testing.T) {
	d := data.Generate(data.Tiny, 13)
	sp := d.Split(rng.New(4), 0.2)
	m := trainedModel(t, models.KindMF, sp)
	ref := NewEvaluatorWorkers(sp, 1)
	refRank := ref.Rank(m, 20, 1)
	for _, workers := range []int{2, 3, 8} {
		e := NewEvaluatorWorkers(sp, workers)
		if !reflect.DeepEqual(e.cache, ref.cache) {
			t.Fatalf("workers=%d: candidate cache differs from serial build", workers)
		}
		if got := e.Rank(m, 20, workers); got != refRank {
			t.Fatalf("workers=%d: metrics %+v != serial %+v", workers, got, refRank)
		}
	}
}

// TestEvaluatorCandidatesExcludeTrain checks the cache against the mask it
// replaced: every cached candidate list is exactly the ascending complement
// of the user's training positives.
func TestEvaluatorCandidatesExcludeTrain(t *testing.T) {
	d := data.Generate(data.Tiny, 7)
	sp := d.Split(rng.New(9), 0.2)
	e := NewEvaluator(sp)
	if e.Users() == 0 {
		t.Fatal("no users cached")
	}
	for i, u := range e.users {
		cand := e.cache.List(i)
		if want := sp.NumItems - len(sp.Train[u]); len(cand) != want {
			t.Fatalf("user %d: %d candidates, want %d", u, len(cand), want)
		}
		prev := -1
		for _, v32 := range cand {
			v := int(v32)
			if v <= prev {
				t.Fatalf("user %d: candidates not strictly ascending at %d", u, v)
			}
			prev = v
			if sp.InTrain(u, v) {
				t.Fatalf("user %d: cached candidate %d is a training positive", u, v)
			}
		}
	}
}

// TestEvaluatorAllocsPerUser is the hot-loop allocation regression test: with
// a block-scoring model and warm per-worker scratch, the evaluation loop must
// allocate only the per-call fixtures (result slots and one scratch), never
// per user — the ranked slice and relevance map that used to be rebuilt for
// every user now live in the scratch.
func TestEvaluatorAllocsPerUser(t *testing.T) {
	d := data.Generate(data.ML100KSmall, 11)
	sp := d.Split(rng.New(2), 0.2)
	m := trainedModel(t, models.KindMF, sp)
	e := NewEvaluator(sp)
	users := e.Users()
	if users < 100 {
		t.Fatalf("want a split with ≥100 evaluated users, got %d", users)
	}
	e.Rank(m, 20, 1) // warm lazily sized buffers inside the model
	allocs := testing.AllocsPerRun(10, func() {
		e.Rank(m, 20, 1)
	})
	// One worker's fixed per-call cost — recall/ndcg slots, the scratch and
	// its buffers/map, the fork-join closures — measures ≈25 regardless of
	// split size. Nothing may scale with the user count.
	const maxPerCall = 30
	if allocs > maxPerCall {
		t.Fatalf("Rank allocates %.0f times per call for %d users (> %d): per-user state leaked out of the scratch",
			allocs, users, maxPerCall)
	}
	if perUser := allocs / float64(users); perUser > 0.25 {
		t.Fatalf("Rank allocates %.2f per user, want < 0.25", perUser)
	}
}
