// Package eval computes the paper's ranking metrics (§IV-B): Recall@20 and
// NDCG@20 over every item the user has not interacted with in training, with
// the held-out 20% as relevance targets.
package eval

import (
	"ptffedrec/internal/data"
	"ptffedrec/internal/metrics"
)

// Scorer scores one user against a list of candidate items. models.Recommender
// satisfies this; federated clients adapt it to their local user index.
type Scorer interface {
	ScoreItems(u int, items []int) []float64
}

// ScorerFunc adapts a function to the Scorer interface.
type ScorerFunc func(u int, items []int) []float64

// ScoreItems implements Scorer.
func (f ScorerFunc) ScoreItems(u int, items []int) []float64 { return f(u, items) }

// Result holds user-averaged ranking metrics.
type Result struct {
	Recall, NDCG float64
	Users        int
}

// Ranking evaluates the scorer on a split at cutoff k. For each user with
// held-out items, every non-train item is scored; train positives are
// excluded from the candidate list.
func Ranking(s Scorer, sp *data.Split, k int) Result {
	var agg metrics.RankEval
	candidates := make([]int, 0, sp.NumItems)
	for u := 0; u < sp.NumUsers; u++ {
		if len(sp.Test[u]) == 0 {
			continue
		}
		candidates = candidates[:0]
		for v := 0; v < sp.NumItems; v++ {
			if !sp.InTrain(u, v) {
				candidates = append(candidates, v)
			}
		}
		scores := s.ScoreItems(u, candidates)
		top := metrics.TopK(scores, k)
		ranked := make([]int, len(top))
		for i, idx := range top {
			ranked[i] = candidates[idx]
		}
		relevant := make(map[int]bool, len(sp.Test[u]))
		for _, v := range sp.Test[u] {
			relevant[v] = true
		}
		agg.Add(ranked, relevant, k)
	}
	r, n := agg.Mean()
	return Result{Recall: r, NDCG: n, Users: agg.Users}
}
