// Package eval computes the paper's ranking metrics (§IV-B): Recall@20 and
// NDCG@20 over every item the user has not interacted with in training, with
// the held-out 20% as relevance targets.
//
// Evaluation is embarrassingly parallel across users, and once per-round
// traffic is kilobytes it dominates server-side wall-clock, so Ranking fans
// the user loop out over a worker pool. Per-user metric values are written to
// index-addressed slots and reduced sequentially in user order, so the result
// is bitwise-identical for every worker count.
//
// Two engines remove the remaining per-user round costs. The candidate cache:
// an Evaluator builds each user's candidate list from the immutable train
// mask once and reuses it every round, so the per-round loop never touches
// Split.InTrain. The selection engine: scorers that implement BlockScorer are
// driven chunk-wise through models.ScoreBlockTopK, so a user's scores stream
// through a bounded-heap top-k selection instead of materialising a
// NumItems-length vector and stable-sorting an index permutation. Both paths
// are bitwise-identical to the naive score-everything-then-sort evaluation,
// so Results never depend on the path taken.
package eval

import (
	"ptffedrec/internal/candset"
	"ptffedrec/internal/data"
	"ptffedrec/internal/metrics"
	"ptffedrec/internal/models"
	"ptffedrec/internal/par"
)

// Scorer scores one user against a list of candidate items. models.Recommender
// satisfies this; federated clients adapt it to their local user index.
//
// A Scorer handed to Ranking must tolerate concurrent ScoreItems calls for
// distinct users (Ranking never scores the same user from two goroutines).
// Scorers whose first call lazily builds shared state should implement Warmer.
type Scorer interface {
	ScoreItems(u int, items []int) []float64
}

// ScorerFunc adapts a function to the Scorer interface.
type ScorerFunc func(u int, items []int) []float64

// ScoreItems implements Scorer.
func (f ScorerFunc) ScoreItems(u int, items []int) []float64 { return f(u, items) }

// ScorerInto is an optional Scorer extension for models whose batch scoring
// can reuse a caller buffer (models.InplaceScorer satisfies it). The
// evaluator gives each worker one reusable score buffer for its whole share
// of users, cutting a per-user allocation of |candidates| floats from the hot
// loop.
type ScorerInto interface {
	ScoreItemsInto(dst []float64, u int, items []int) []float64
}

// BlockScorer is the batched scoring engine's contract (models.BlockScorer
// satisfies it): ScoreBlockInto fills dst — length len(items) — with user u's
// scores for the whole candidate block through matrix kernels, with results
// bitwise-identical to the per-item ScoreItems path. The evaluator prefers
// this path and fuses selection into it: the candidate list streams through
// models.ScoreBlockTopK in fixed-size chunks, so only a chunk of scores is
// ever materialised.
type BlockScorer interface {
	ScoreBlockInto(dst []float64, u int, items []int)
}

// scoreItems scores through the strongest non-fused path the scorer supports
// — batched block scoring, then buffer-reusing per-item, then plain
// ScoreItems. buf is owned by the calling goroutine and carried across users.
func scoreItems(s Scorer, buf *[]float64, u int, items []int) []float64 {
	if bs, ok := s.(BlockScorer); ok {
		out := *buf
		if cap(out) < len(items) {
			out = make([]float64, len(items))
		} else {
			out = out[:len(items)]
		}
		bs.ScoreBlockInto(out, u, items)
		*buf = out
		return out
	}
	if si, ok := s.(ScorerInto); ok {
		out := si.ScoreItemsInto(*buf, u, items)
		*buf = out
		return out
	}
	return s.ScoreItems(u, items)
}

// Warmer is an optional Scorer extension. WarmScoring precomputes any lazily
// cached shared state (e.g. a graph model's propagated embeddings) so that
// subsequent ScoreItems calls are read-only and safe to issue concurrently.
// The evaluator invokes it once before fanning out to workers.
type Warmer interface {
	WarmScoring()
}

// Result holds user-averaged ranking metrics.
type Result struct {
	Recall, NDCG float64
	Users        int
}

// Evaluator is the selection engine's round-persistent state for one split:
// the evaluated-user list and every user's candidate set, built exactly once
// — the train mask never changes across rounds — and reused by every Rank
// call. The candidate lists do not depend on the cutoff, so one Evaluator
// serves any k. It is scorer-agnostic and read-only after construction, so
// one Evaluator can serve concurrent Rank calls (the federated trainer holds
// one across rounds and shares it between the server and client evaluations).
//
// Candidates are stored in a candset.Packed — int32 in one contiguous
// backing array, four bytes per (user, candidate) pair, ≈760 MB at the full
// 50k-user × 4000-item profile and ≈20 MB at the default small profile — the
// memory the cache trades for never rebuilding candidate lists or probing
// the train mask again. One-shot callers (Ranking, RankingWorkers) use a
// streaming evaluator instead, which rebuilds each user's list in per-worker
// scratch and allocates no cache at all.
type Evaluator struct {
	sp *data.Split

	users []int           // users with held-out items, ascending
	cache *candset.Packed // per-user candidate lists, ascending; nil when streaming

	// SortSelect forces ranking through the legacy sort path — the full
	// score vector materialised, then metrics.TopK's stable sort over an
	// O(NumItems) index permutation — instead of the streaming bounded-heap
	// selection. Results are bitwise-identical either way; the scalability
	// experiment flips this to time select vs sort. Set before Rank, never
	// concurrently with it.
	SortSelect bool
}

// NewEvaluator builds the candidate cache for a split with GOMAXPROCS
// workers. Each user's candidate list is the ascending complement of their
// training positives, computed with one merge walk over the sorted train
// list.
func NewEvaluator(sp *data.Split) *Evaluator {
	return NewEvaluatorWorkers(sp, 0)
}

// NewEvaluatorWorkers is NewEvaluator with an explicit worker count
// (<= 0 means GOMAXPROCS) for the cold cache build: the packed layout is
// fixed by a size prefix-sum before any list is filled and each user's list
// is written by exactly one goroutine into its own range, so the cache is
// identical for every worker count.
func NewEvaluatorWorkers(sp *data.Split, workers int) *Evaluator {
	e := newStreamingEvaluator(sp)
	e.cache = candset.BuildPacked(len(e.users), par.Workers(workers),
		func(i int) int { return sp.NumItems - len(sp.Train[e.users[i]]) },
		func(i int, dst []int32) {
			candset.AppendComplementSorted(dst[:0], sp.NumItems, sp.Train[e.users[i]])
		})
	return e
}

// LazyEvaluator returns *ep, building the split's candidate cache into it on
// first use — the one lazy-init used by every trainer that holds a cached
// Evaluator across rounds.
func LazyEvaluator(ep **Evaluator, sp *data.Split) *Evaluator {
	if *ep == nil {
		*ep = NewEvaluator(sp)
	}
	return *ep
}

// newStreamingEvaluator builds an Evaluator without the candidate cache:
// Rank rebuilds each user's candidate list in per-worker scratch with the
// same merge walk. Right for one-shot evaluations, where a cache would be
// built and thrown away.
func newStreamingEvaluator(sp *data.Split) *Evaluator {
	e := &Evaluator{sp: sp}
	for u := 0; u < sp.NumUsers; u++ {
		if len(sp.Test[u]) > 0 {
			e.users = append(e.users, u)
		}
	}
	return e
}

// Users returns how many users the evaluator covers.
func (e *Evaluator) Users() int { return len(e.users) }

// scratch is one worker's reusable state for its whole share of users: the
// widened candidate list, the score buffer (non-fused paths only), the
// selection output, the ranked item list, the relevance set, and the fused
// selection engine's scratch. Nothing here is allocated per user.
type scratch struct {
	cand     []int
	scores   []float64
	top      []int
	ranked   []int
	relevant map[int]bool
	topk     models.TopKScratch
}

// Rank evaluates the scorer at cutoff k over the cached (or streamed)
// candidate sets with the given worker count (<= 0 means GOMAXPROCS).
// Metrics are bitwise-identical for every worker count and every
// selection/scoring path: per-user values depend only on the scorer, and the
// reduction runs sequentially in user order.
func (e *Evaluator) Rank(s Scorer, k, workers int) Result {
	if len(e.users) == 0 {
		return Result{}
	}
	workers = par.Workers(workers)
	if workers > 1 {
		if w, ok := s.(Warmer); ok {
			w.WarmScoring()
		}
	}
	recalls := make([]float64, len(e.users))
	ndcgs := make([]float64, len(e.users))
	// Chunk users so each worker reuses one scratch across its whole share
	// instead of allocating per user.
	chunk := (len(e.users) + workers - 1) / workers
	par.ForChunks(len(e.users), chunk, workers, func(lo, hi int) {
		sc := &scratch{
			cand:     make([]int, e.sp.NumItems),
			ranked:   make([]int, 0, k),
			relevant: make(map[int]bool, 16),
		}
		for i := lo; i < hi; i++ {
			recalls[i], ndcgs[i] = e.evalUser(s, sc, i, k)
		}
	})
	var agg metrics.RankEval
	for i := range e.users {
		agg.AddUser(recalls[i], ndcgs[i])
	}
	r, n := agg.Mean()
	return Result{Recall: r, NDCG: n, Users: agg.Users}
}

// evalUser ranks one user and returns their Recall@k and NDCG@k. All storage
// comes from the worker's scratch.
func (e *Evaluator) evalUser(s Scorer, sc *scratch, i, k int) (recall, ndcg float64) {
	u := e.users[i]
	var cand []int
	if e.cache != nil {
		cand = candset.Widen(sc.cand, e.cache.List(i))
	} else {
		// Streaming evaluator: rebuild the candidate list in scratch with the
		// same merge walk the cache build uses.
		cand = candset.AppendComplementSorted(sc.cand[:0], e.sp.NumItems, e.sp.Train[u])
	}
	var top []int
	bs, fused := s.(BlockScorer)
	switch {
	case e.SortSelect:
		// Legacy path: full score vector, stable sort of an O(n) index
		// permutation. Kept as the timing baseline and reference semantics.
		scores := scoreItems(s, &sc.scores, u, cand)
		top = metrics.TopK(scores, k)
	case fused:
		// Fused path: scores stream chunk-wise into a bounded-heap selection;
		// no full score vector exists.
		top = models.ScoreBlockTopK(bs, &sc.topk, u, cand, k)
	default:
		// Partial selection over a materialised score vector (scorers without
		// block scoring, e.g. per-client adapters).
		scores := scoreItems(s, &sc.scores, u, cand)
		sc.top = metrics.TopKInto(sc.top, scores, k)
		top = sc.top
	}
	ranked := sc.ranked[:0]
	for _, idx := range top {
		ranked = append(ranked, cand[idx])
	}
	sc.ranked = ranked
	clear(sc.relevant)
	for _, v := range e.sp.Test[u] {
		sc.relevant[v] = true
	}
	return metrics.RecallAtK(ranked, sc.relevant, k), metrics.NDCGAtK(ranked, sc.relevant, k)
}

// Ranking evaluates the scorer on a split at cutoff k with GOMAXPROCS
// workers. For each user with held-out items, every non-train item is scored;
// train positives are excluded from the candidate list.
func Ranking(s Scorer, sp *data.Split, k int) Result {
	return RankingWorkers(s, sp, k, 0)
}

// RankingWorkers is Ranking with an explicit worker count (<= 0 means
// GOMAXPROCS). It streams candidates from the train mask in per-worker
// scratch — no cache is allocated; callers that evaluate the same split every
// round should hold a persistent Evaluator instead, which additionally caches
// the candidate lists.
func RankingWorkers(s Scorer, sp *data.Split, k, workers int) Result {
	return newStreamingEvaluator(sp).Rank(s, k, workers)
}
