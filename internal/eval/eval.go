// Package eval computes the paper's ranking metrics (§IV-B): Recall@20 and
// NDCG@20 over every item the user has not interacted with in training, with
// the held-out 20% as relevance targets.
//
// Evaluation is embarrassingly parallel across users, and once per-round
// traffic is kilobytes it dominates server-side wall-clock, so Ranking fans
// the user loop out over a worker pool. Per-user metric values are written to
// index-addressed slots and reduced sequentially in user order, so the result
// is bitwise-identical for every worker count. Within a user, scorers that
// implement BlockScorer are driven through the batched scoring engine: the
// whole candidate list is scored with matrix kernels, again bitwise-identical
// to per-item scoring, so Results never depend on the path taken.
package eval

import (
	"ptffedrec/internal/data"
	"ptffedrec/internal/metrics"
	"ptffedrec/internal/par"
)

// Scorer scores one user against a list of candidate items. models.Recommender
// satisfies this; federated clients adapt it to their local user index.
//
// A Scorer handed to Ranking must tolerate concurrent ScoreItems calls for
// distinct users (Ranking never scores the same user from two goroutines).
// Scorers whose first call lazily builds shared state should implement Warmer.
type Scorer interface {
	ScoreItems(u int, items []int) []float64
}

// ScorerFunc adapts a function to the Scorer interface.
type ScorerFunc func(u int, items []int) []float64

// ScoreItems implements Scorer.
func (f ScorerFunc) ScoreItems(u int, items []int) []float64 { return f(u, items) }

// ScorerInto is an optional Scorer extension for models whose batch scoring
// can reuse a caller buffer (models.InplaceScorer satisfies it). Ranking
// gives each worker one reusable score buffer for its whole share of users,
// cutting a per-user allocation of |candidates| floats from the hot loop.
type ScorerInto interface {
	ScoreItemsInto(dst []float64, u int, items []int) []float64
}

// BlockScorer is the batched scoring engine's contract (models.BlockScorer
// satisfies it): ScoreBlockInto fills dst — length len(items) — with user u's
// scores for the whole candidate block through matrix kernels, with results
// bitwise-identical to the per-item ScoreItems path. Ranking prefers this
// path: one user's entire candidate list becomes a single row-gather GEMV (or
// chunked MLP forward) instead of |candidates| scalar dots.
type BlockScorer interface {
	ScoreBlockInto(dst []float64, u int, items []int)
}

// scoreItems scores through the strongest path the scorer supports — batched
// block scoring, then buffer-reusing per-item, then plain ScoreItems. buf is
// owned by the calling goroutine and carried across users.
func scoreItems(s Scorer, buf *[]float64, u int, items []int) []float64 {
	if bs, ok := s.(BlockScorer); ok {
		out := *buf
		if cap(out) < len(items) {
			out = make([]float64, len(items))
		} else {
			out = out[:len(items)]
		}
		bs.ScoreBlockInto(out, u, items)
		*buf = out
		return out
	}
	if si, ok := s.(ScorerInto); ok {
		out := si.ScoreItemsInto(*buf, u, items)
		*buf = out
		return out
	}
	return s.ScoreItems(u, items)
}

// Warmer is an optional Scorer extension. WarmScoring precomputes any lazily
// cached shared state (e.g. a graph model's propagated embeddings) so that
// subsequent ScoreItems calls are read-only and safe to issue concurrently.
// Ranking invokes it once before fanning out to workers.
type Warmer interface {
	WarmScoring()
}

// Result holds user-averaged ranking metrics.
type Result struct {
	Recall, NDCG float64
	Users        int
}

// Ranking evaluates the scorer on a split at cutoff k with GOMAXPROCS
// workers. For each user with held-out items, every non-train item is scored;
// train positives are excluded from the candidate list.
func Ranking(s Scorer, sp *data.Split, k int) Result {
	return RankingWorkers(s, sp, k, 0)
}

// RankingWorkers is Ranking with an explicit worker count (<= 0 means
// GOMAXPROCS). Metrics are bitwise-identical for every worker count: per-user
// values depend only on the scorer, and the reduction runs sequentially in
// user order.
func RankingWorkers(s Scorer, sp *data.Split, k, workers int) Result {
	users := make([]int, 0, sp.NumUsers)
	for u := 0; u < sp.NumUsers; u++ {
		if len(sp.Test[u]) > 0 {
			users = append(users, u)
		}
	}
	if len(users) == 0 {
		return Result{}
	}
	workers = par.Workers(workers)
	if workers > 1 {
		if w, ok := s.(Warmer); ok {
			w.WarmScoring()
		}
	}
	recalls := make([]float64, len(users))
	ndcgs := make([]float64, len(users))
	// Chunk users so each worker reuses one candidate buffer and one score
	// buffer across its whole share instead of allocating per user.
	chunk := (len(users) + workers - 1) / workers
	par.ForChunks(len(users), chunk, workers, func(lo, hi int) {
		buf := make([]int, 0, sp.NumItems)
		scores := make([]float64, 0, sp.NumItems)
		for i := lo; i < hi; i++ {
			recalls[i], ndcgs[i] = evalUser(s, sp, users[i], k, &buf, &scores)
		}
	})
	var agg metrics.RankEval
	for i := range users {
		agg.AddUser(recalls[i], ndcgs[i])
	}
	r, n := agg.Mean()
	return Result{Recall: r, NDCG: n, Users: agg.Users}
}

// evalUser scores one user's full candidate list and returns its Recall@k and
// NDCG@k. buf and scoreBuf are reusable buffers owned by the calling
// goroutine.
func evalUser(s Scorer, sp *data.Split, u, k int, buf *[]int, scoreBuf *[]float64) (recall, ndcg float64) {
	candidates := (*buf)[:0]
	for v := 0; v < sp.NumItems; v++ {
		if !sp.InTrain(u, v) {
			candidates = append(candidates, v)
		}
	}
	*buf = candidates
	scores := scoreItems(s, scoreBuf, u, candidates)
	top := metrics.TopK(scores, k)
	ranked := make([]int, len(top))
	for i, idx := range top {
		ranked[i] = candidates[idx]
	}
	relevant := make(map[int]bool, len(sp.Test[u]))
	for _, v := range sp.Test[u] {
		relevant[v] = true
	}
	return metrics.RecallAtK(ranked, relevant, k), metrics.NDCGAtK(ranked, relevant, k)
}
