// Package eval computes the paper's ranking metrics (§IV-B): Recall@20 and
// NDCG@20 over every item the user has not interacted with in training, with
// the held-out 20% as relevance targets.
//
// Evaluation is embarrassingly parallel across users, and once per-round
// traffic is kilobytes it dominates server-side wall-clock, so Ranking fans
// the user loop out over a worker pool. Per-user metric values are written to
// index-addressed slots and reduced sequentially in user order, so the result
// is bitwise-identical for every worker count.
//
// Three engines remove the remaining per-round costs. The candidate cache: an
// Evaluator builds each user's candidate list from the immutable train mask
// once and reuses it every round, so the per-round loop never touches
// Split.InTrain. The single-user selection engine: scorers that implement
// models.BlockScorer are driven chunk-wise through models.ScoreBlockTopK, so
// a user's scores stream through a bounded-heap top-k selection instead of
// materialising a NumItems-length vector and stable-sorting an index
// permutation. The multi-user batched engine: scorers that implement
// models.MultiBlockScorer score evalUsersBatch users per kernel call in
// logit domain — one gather-GEMM per (user batch, item window), each user's
// cached candidate list walked against the window, raw logits streamed into
// metrics.LogitTopKSelector under its tie-safe contract — so the
// item-embedding rows are loaded once per batch instead of once per user and
// the sigmoid is paid only for candidates that reach a heap, not once per
// (user, candidate). All paths are bitwise-identical to the naive
// score-everything-then-sort evaluation, so Results never depend on the path
// taken.
//
// The package consumes the models scoring interface family directly
// (models.Scorer and its InplaceScorer / BlockScorer / MultiBlockScorer
// refinements, models.Warmer for lazily built shared state); capability
// detection happens once per Rank call, not per user.
package eval

import (
	"ptffedrec/internal/candset"
	"ptffedrec/internal/data"
	"ptffedrec/internal/metrics"
	"ptffedrec/internal/models"
	"ptffedrec/internal/par"
	"ptffedrec/internal/tensor"
)

// evalUsersBatch is how many users the batched engine scores per kernel call:
// the multi-user GEMM loads each item-embedding row once per batch instead of
// once per user, and its interleaved accumulators hide FP-add latency. Purely
// a scheduling knob — the batch grouping never changes results. A var so
// tests can shrink it to force multi-batch runs on small user sets.
var evalUsersBatch = 16

// evalScoreChunk is the item-window width of the batched engine: a user
// batch's logits materialise batch×chunk at a time, streaming each window's
// candidate logits into the per-user selectors, so no full score vector ever
// exists. A var so tests can shrink it to force multi-window selections on
// small catalogues.
var evalScoreChunk = 1024

// caps is the one capability-detecting adapter between the evaluator and the
// models scoring interface family: every optional refinement is resolved once
// per Rank call, and scoreItems dispatches on the resolved fields instead of
// re-sniffing interfaces per user.
type caps struct {
	scorer models.Scorer
	into   models.InplaceScorer    // nil when unsupported
	block  models.BlockScorer      // nil when unsupported
	multi  models.MultiBlockScorer // nil when unsupported
}

func detectCaps(s models.Scorer) caps {
	c := caps{scorer: s}
	c.into, _ = s.(models.InplaceScorer)
	c.block, _ = s.(models.BlockScorer)
	c.multi, _ = s.(models.MultiBlockScorer)
	return c
}

// scoreItems scores through the strongest non-fused path the scorer supports
// — batched block scoring, then buffer-reusing per-item, then plain
// ScoreItems. buf is owned by the calling goroutine and carried across users.
func (c *caps) scoreItems(buf *[]float64, u int, items []int) []float64 {
	if c.block != nil {
		out := *buf
		if cap(out) < len(items) {
			out = make([]float64, len(items))
		} else {
			out = out[:len(items)]
		}
		c.block.ScoreBlockInto(out, u, items)
		*buf = out
		return out
	}
	if c.into != nil {
		out := c.into.ScoreItemsInto(*buf, u, items)
		*buf = out
		return out
	}
	return c.scorer.ScoreItems(u, items)
}

// Result holds user-averaged ranking metrics.
type Result struct {
	Recall, NDCG float64
	Users        int
}

// Evaluator is the selection engine's round-persistent state for one split:
// the evaluated-user list and every user's candidate set, built exactly once
// — the train mask never changes across rounds — and reused by every Rank
// call. The candidate lists do not depend on the cutoff, so one Evaluator
// serves any k. It is scorer-agnostic and read-only after construction, so
// one Evaluator can serve concurrent Rank calls (the federated trainer holds
// one across rounds and shares it between the server and client evaluations).
//
// Candidates are stored in a candset.Packed — int32 in one contiguous
// backing array, four bytes per (user, candidate) pair, ≈760 MB at the full
// 50k-user × 4000-item profile and ≈20 MB at the default small profile — the
// memory the cache trades for never rebuilding candidate lists or probing
// the train mask again. One-shot callers (Ranking, RankingWorkers) use a
// streaming evaluator instead, which rebuilds each user's list in per-worker
// scratch and allocates no cache at all (and therefore always ranks through
// the single-user engine).
type Evaluator struct {
	sp *data.Split

	users []int           // users with held-out items, ascending
	cache *candset.Packed // per-user candidate lists, ascending; nil when streaming
	ident []int           // identity item list 0..NumItems-1 for the batched windows

	// SortSelect forces ranking through the legacy sort path — the full
	// score vector materialised, then metrics.TopK's stable sort over an
	// O(NumItems) index permutation — instead of the streaming bounded-heap
	// selection. Results are bitwise-identical either way; the scalability
	// experiment flips this to time select vs sort. Set before Rank, never
	// concurrently with it.
	SortSelect bool

	// SingleUser forces ranking through the retained single-user engine —
	// one probability-domain ScoreBlockTopK selection per user — instead of
	// the multi-user batched logit engine. Results are bitwise-identical
	// either way; the knob exists as the timing baseline for the scalability
	// experiment's eval-users-scalar / eval-users-spdup columns and for
	// invariance tests (the same pattern as fed.Config.DisperseScalar for
	// dispersal). Set before Rank, never concurrently with it.
	SingleUser bool
}

// NewEvaluator builds the candidate cache for a split with GOMAXPROCS
// workers. Each user's candidate list is the ascending complement of their
// training positives, computed with one merge walk over the sorted train
// list.
func NewEvaluator(sp *data.Split) *Evaluator {
	return NewEvaluatorWorkers(sp, 0)
}

// NewEvaluatorWorkers is NewEvaluator with an explicit worker count
// (<= 0 means GOMAXPROCS) for the cold cache build: the packed layout is
// fixed by a size prefix-sum before any list is filled and each user's list
// is written by exactly one goroutine into its own range, so the cache is
// identical for every worker count.
func NewEvaluatorWorkers(sp *data.Split, workers int) *Evaluator {
	e := newStreamingEvaluator(sp)
	e.cache = candset.BuildPacked(len(e.users), par.Workers(workers),
		func(i int) int { return sp.NumItems - len(sp.Train[e.users[i]]) },
		func(i int, dst []int32) {
			candset.AppendComplementSorted(dst[:0], sp.NumItems, sp.Train[e.users[i]])
		})
	e.ident = make([]int, sp.NumItems)
	for v := range e.ident {
		e.ident[v] = v
	}
	return e
}

// LazyEvaluator returns *ep, building the split's candidate cache into it on
// first use — the one lazy-init used by every trainer that holds a cached
// Evaluator across rounds.
func LazyEvaluator(ep **Evaluator, sp *data.Split) *Evaluator {
	if *ep == nil {
		*ep = NewEvaluator(sp)
	}
	return *ep
}

// newStreamingEvaluator builds an Evaluator without the candidate cache:
// Rank rebuilds each user's candidate list in per-worker scratch with the
// same merge walk. Right for one-shot evaluations, where a cache would be
// built and thrown away.
func newStreamingEvaluator(sp *data.Split) *Evaluator {
	e := &Evaluator{sp: sp}
	for u := 0; u < sp.NumUsers; u++ {
		if len(sp.Test[u]) > 0 {
			e.users = append(e.users, u)
		}
	}
	return e
}

// Users returns how many users the evaluator covers.
func (e *Evaluator) Users() int { return len(e.users) }

// CacheBytes reports the candidate cache's resident bytes (0 for streaming
// evaluators) — the scalability experiment's memory-accounting hook.
func (e *Evaluator) CacheBytes() int64 {
	if e.cache == nil {
		return 0
	}
	return e.cache.MemoryBytes()
}

// scratch is one worker's reusable state for its whole share of users on the
// single-user paths: the widened candidate list, the score buffer (non-fused
// paths only), the selection output, the ranked item list, the relevance set,
// and the fused selection engine's scratch. Nothing here is allocated per
// user.
type scratch struct {
	cand     []int
	scores   []float64
	top      []int
	ranked   []int
	relevant map[int]bool
	topk     models.TopKScratch
}

// batchScratch is one worker's reusable state for the batched multi-user
// engine: the window logit matrix backing (plus its reusable header), one
// logit-domain selector and candidate cursor per batch slot, the selectors'
// three shared heap slabs, the ranked item list, and the relevance set.
// Nothing here is allocated per batch — and because the selectors borrow
// evalK-wide slab segments instead of growing their own arrays, building the
// scratch itself costs a fixed handful of allocations, not three per slot.
type batchScratch struct {
	k        int       // slab stride: the Rank call's cutoff
	scores   []float64 // batch×window logit backing
	mat      tensor.Matrix
	sels     []metrics.LogitTopKSelector
	selIdx   []int // evalUsersBatch×k selector heap slabs
	selLogit []float64
	selProb  []float64
	cursors  []int
	ranked   []int
	relevant map[int]bool
}

func newBatchScratch(k int) *batchScratch {
	return &batchScratch{
		k:        k,
		sels:     make([]metrics.LogitTopKSelector, evalUsersBatch),
		selIdx:   make([]int, evalUsersBatch*k),
		selLogit: make([]float64, evalUsersBatch*k),
		selProb:  make([]float64, evalUsersBatch*k),
		cursors:  make([]int, evalUsersBatch),
		ranked:   make([]int, 0, k),
		relevant: make(map[int]bool, 16),
	}
}

// resetSel points slot i's selector at its slab segment with cutoff kSel
// (≤ the slab stride, so the heap never outgrows the segment).
func (sc *batchScratch) resetSel(i, kSel int) {
	lo, hi := i*sc.k, (i+1)*sc.k
	sc.sels[i].ResetBacked(kSel, sc.selIdx[lo:lo:hi], sc.selLogit[lo:lo:hi], sc.selProb[lo:lo:hi])
}

// scoreMat returns a rows×cols logit matrix over the scratch backing,
// growing it as needed. The returned header lives in the scratch, so windows
// don't allocate.
func (sc *batchScratch) scoreMat(rows, cols int) *tensor.Matrix {
	if need := rows * cols; cap(sc.scores) < need {
		sc.scores = make([]float64, need)
	}
	sc.mat = tensor.Matrix{Rows: rows, Cols: cols, Data: sc.scores[:rows*cols]}
	return &sc.mat
}

// Rank evaluates the scorer at cutoff k over the cached (or streamed)
// candidate sets with the given worker count (<= 0 means GOMAXPROCS).
// Metrics are bitwise-identical for every worker count and every
// selection/scoring path: per-user values depend only on the scorer, and the
// reduction runs sequentially in user order.
func (e *Evaluator) Rank(s models.Scorer, k, workers int) Result {
	if len(e.users) == 0 {
		return Result{}
	}
	workers = par.Workers(workers)
	c := detectCaps(s)
	// The batched multi-user engine needs the multi-user logit contract and
	// the candidate cache (streaming evaluators rebuild lists per user, which
	// only the single-user loop does); SortSelect and SingleUser force the
	// respective baselines.
	batched := c.multi != nil && e.cache != nil && !e.SortSelect && !e.SingleUser
	if workers > 1 {
		if w, ok := s.(models.Warmer); ok {
			w.WarmScoring()
		}
	}
	recalls := make([]float64, len(e.users))
	ndcgs := make([]float64, len(e.users))
	// Chunk users so each worker reuses one scratch across its whole share
	// instead of allocating per user (or per batch).
	chunk := (len(e.users) + workers - 1) / workers
	if batched {
		par.ForChunks(len(e.users), chunk, workers, func(lo, hi int) {
			sc := newBatchScratch(k)
			for b := lo; b < hi; b += evalUsersBatch {
				be := b + evalUsersBatch
				if be > hi {
					be = hi
				}
				e.evalUserBatch(c.multi, sc, b, be, k, recalls, ndcgs)
			}
		})
	} else {
		par.ForChunks(len(e.users), chunk, workers, func(lo, hi int) {
			sc := &scratch{
				cand:     make([]int, e.sp.NumItems),
				ranked:   make([]int, 0, k),
				relevant: make(map[int]bool, 16),
			}
			for i := lo; i < hi; i++ {
				recalls[i], ndcgs[i] = e.evalUser(&c, sc, i, k)
			}
		})
	}
	var agg metrics.RankEval
	for i := range e.users {
		agg.AddUser(recalls[i], ndcgs[i])
	}
	r, n := agg.Mean()
	return Result{Recall: r, NDCG: n, Users: agg.Users}
}

// evalUser ranks one user through the single-user engine and returns their
// Recall@k and NDCG@k. All storage comes from the worker's scratch.
func (e *Evaluator) evalUser(c *caps, sc *scratch, i, k int) (recall, ndcg float64) {
	u := e.users[i]
	var cand []int
	if e.cache != nil {
		cand = candset.Widen(sc.cand, e.cache.List(i))
	} else {
		// Streaming evaluator: rebuild the candidate list in scratch with the
		// same merge walk the cache build uses.
		cand = candset.AppendComplementSorted(sc.cand[:0], e.sp.NumItems, e.sp.Train[u])
	}
	var top []int
	switch {
	case e.SortSelect:
		// Legacy path: full score vector, stable sort of an O(n) index
		// permutation. Kept as the timing baseline and reference semantics.
		scores := c.scoreItems(&sc.scores, u, cand)
		top = metrics.TopK(scores, k)
	case c.block != nil:
		// Fused path: scores stream chunk-wise into a bounded-heap selection;
		// no full score vector exists.
		top = models.ScoreBlockTopK(c.block, &sc.topk, u, cand, k)
	default:
		// Partial selection over a materialised score vector (scorers without
		// block scoring, e.g. per-client adapters).
		scores := c.scoreItems(&sc.scores, u, cand)
		sc.top = metrics.TopKInto(sc.top, scores, k)
		top = sc.top
	}
	ranked := sc.ranked[:0]
	for _, idx := range top {
		ranked = append(ranked, cand[idx])
	}
	sc.ranked = ranked
	return e.userMetrics(ranked, sc.relevant, u, k)
}

// evalUserBatch ranks users [b, be) of e.users through the batched multi-user
// logit engine: the batch's logits for each evalScoreChunk-wide item window
// come from one ScoreUsersBlockLogitsInto call, each user's ascending cached
// candidate list is walked across the window pushing (item, logit) into that
// user's logit-domain selector, and each selector's winners are the user's
// ranked items.
//
// Bitwise equivalence with the single-user engine, piece by piece: the logit
// windows match ScoreBlockLogitsInto's values for any window boundary
// (per-element independence, the MultiBlockScorer contract), so scoring the
// whole universe and reading only candidate positions yields exactly the
// logits of scoring the candidate list directly; candidate lists are
// ascending in item id, so pushing item ids preserves the single-user path's
// (score desc, position asc) selection order; and LogitTopKSelector resolves
// σ-collapsed ties exactly as the probability-domain selector does. Only the
// sigmoid count differs — paid per heap insertion here, per candidate there.
func (e *Evaluator) evalUserBatch(mbs models.MultiBlockScorer, sc *batchScratch, b, be, k int, recalls, ndcgs []float64) {
	n := be - b
	users := e.users[b:be]
	for i := 0; i < n; i++ {
		kSel := k
		if cl := len(e.cache.List(b + i)); kSel > cl {
			kSel = cl
		}
		sc.resetSel(i, kSel)
		sc.cursors[i] = 0
	}
	for lo := 0; lo < e.sp.NumItems; lo += evalScoreChunk {
		hi := lo + evalScoreChunk
		if hi > e.sp.NumItems {
			hi = e.sp.NumItems
		}
		m := sc.scoreMat(n, hi-lo)
		mbs.ScoreUsersBlockLogitsInto(m, users, e.ident[lo:hi])
		for i := 0; i < n; i++ {
			cand := e.cache.List(b + i)
			row := m.Row(i)
			cur := sc.cursors[i]
			for cur < len(cand) && int(cand[cur]) < hi {
				v := int(cand[cur])
				sc.sels[i].Push(v, row[v-lo])
				cur++
			}
			sc.cursors[i] = cur
		}
	}
	for i := 0; i < n; i++ {
		sc.ranked = sc.sels[i].Into(sc.ranked)
		recalls[b+i], ndcgs[b+i] = e.userMetrics(sc.ranked, sc.relevant, e.users[b+i], k)
	}
}

// userMetrics computes one user's Recall@k and NDCG@k from their ranked item
// list, rebuilding the relevance set in the worker's scratch map.
func (e *Evaluator) userMetrics(ranked []int, relevant map[int]bool, u, k int) (recall, ndcg float64) {
	clear(relevant)
	for _, v := range e.sp.Test[u] {
		relevant[v] = true
	}
	return metrics.RecallAtK(ranked, relevant, k), metrics.NDCGAtK(ranked, relevant, k)
}

// Ranking evaluates the scorer on a split at cutoff k with GOMAXPROCS
// workers. For each user with held-out items, every non-train item is scored;
// train positives are excluded from the candidate list.
func Ranking(s models.Scorer, sp *data.Split, k int) Result {
	return RankingWorkers(s, sp, k, 0)
}

// RankingWorkers is Ranking with an explicit worker count (<= 0 means
// GOMAXPROCS). It streams candidates from the train mask in per-worker
// scratch — no cache is allocated; callers that evaluate the same split every
// round should hold a persistent Evaluator instead, which additionally caches
// the candidate lists and unlocks the batched multi-user engine.
func RankingWorkers(s models.Scorer, sp *data.Split, k, workers int) Result {
	return newStreamingEvaluator(sp).Rank(s, k, workers)
}
