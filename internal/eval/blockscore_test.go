package eval

import (
	"testing"

	"ptffedrec/internal/data"
	"ptffedrec/internal/models"
	"ptffedrec/internal/rng"
)

// scalarOnly hides a model's BlockScorer so Ranking is forced through the
// per-item scoring path, while keeping the warm and buffer-reuse extensions.
type scalarOnly struct {
	m models.Recommender
}

func (s scalarOnly) ScoreItems(u int, items []int) []float64 {
	return s.m.ScoreItems(u, items)
}

func (s scalarOnly) ScoreItemsInto(dst []float64, u int, items []int) []float64 {
	return s.m.(models.InplaceScorer).ScoreItemsInto(dst, u, items)
}

func (s scalarOnly) WarmScoring() {
	if w, ok := s.m.(models.Warmer); ok {
		w.WarmScoring()
	}
}

// TestRankingBatchedMatchesScalar pins the engine-level guarantee: Results
// are bitwise-identical whether Ranking scores through ScoreBlockInto or the
// per-item path, for every model kind and worker count.
func TestRankingBatchedMatchesScalar(t *testing.T) {
	d := data.Generate(data.Tiny, 11)
	sp := d.Split(rng.New(2), 0.2)
	for _, kind := range []models.Kind{models.KindMF, models.KindNeuMF, models.KindLightGCN, models.KindNGCF} {
		m := trainedModel(t, kind, sp)
		if _, ok := m.(models.BlockScorer); !ok {
			t.Fatalf("%s does not implement BlockScorer", kind)
		}
		ref := RankingWorkers(scalarOnly{m}, sp, 20, 1)
		if ref.Users == 0 {
			t.Fatalf("%s: no users evaluated", kind)
		}
		for _, workers := range []int{1, 2, 8} {
			if got := RankingWorkers(m, sp, 20, workers); got != ref {
				t.Fatalf("%s: batched workers=%d %+v != scalar %+v", kind, workers, got, ref)
			}
			if got := RankingWorkers(scalarOnly{m}, sp, 20, workers); got != ref {
				t.Fatalf("%s: scalar workers=%d %+v != scalar workers=1 %+v", kind, workers, got, ref)
			}
		}
	}
}
