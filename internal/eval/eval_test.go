package eval

import (
	"math"
	"testing"

	"ptffedrec/internal/data"
	"ptffedrec/internal/models"
	"ptffedrec/internal/rng"
)

func TestRankingPerfectOracle(t *testing.T) {
	d := data.Generate(data.Tiny, 3)
	sp := d.Split(rng.New(1), 0.2)
	// Oracle scores test items 1, everything else 0.
	oracle := models.ScorerFunc(func(u int, items []int) []float64 {
		out := make([]float64, len(items))
		for i, v := range items {
			if sp.InTest(u, v) {
				out[i] = 1
			}
		}
		return out
	})
	res := Ranking(oracle, sp, 20)
	if res.Users == 0 {
		t.Fatal("no users evaluated")
	}
	// Every user has ≤20 test items at tiny scale, so the oracle is perfect.
	if math.Abs(res.Recall-1) > 1e-9 || math.Abs(res.NDCG-1) > 1e-9 {
		t.Fatalf("oracle metrics = %+v, want 1/1", res)
	}
}

func TestRankingAntiOracle(t *testing.T) {
	d := data.Generate(data.Tiny, 3)
	sp := d.Split(rng.New(1), 0.2)
	anti := models.ScorerFunc(func(u int, items []int) []float64 {
		out := make([]float64, len(items))
		for i, v := range items {
			if sp.InTest(u, v) {
				out[i] = 0
			} else {
				out[i] = 1
			}
		}
		return out
	})
	res := Ranking(anti, sp, 5)
	if res.Recall > 0.01 {
		t.Fatalf("anti-oracle recall = %v, want ≈0", res.Recall)
	}
}

func TestRankingExcludesTrainItems(t *testing.T) {
	d := data.Generate(data.Tiny, 3)
	sp := d.Split(rng.New(1), 0.2)
	sawTrain := false
	probe := models.ScorerFunc(func(u int, items []int) []float64 {
		for _, v := range items {
			if sp.InTrain(u, v) {
				sawTrain = true
			}
		}
		return make([]float64, len(items))
	})
	Ranking(probe, sp, 20)
	if sawTrain {
		t.Fatal("candidate list contained training positives")
	}
}

func TestRankingSkipsUsersWithoutTest(t *testing.T) {
	// Single-interaction users keep their item in train; they must not
	// count toward the average.
	dd, err := data.NewDataset("t", 2, 10, [][2]int{
		{0, 1},
		{1, 1}, {1, 2}, {1, 3}, {1, 4}, {1, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	sp := dd.Split(rng.New(2), 0.2)
	res := Ranking(models.ScorerFunc(func(u int, items []int) []float64 {
		return make([]float64, len(items))
	}), sp, 5)
	if res.Users != 1 {
		t.Fatalf("users evaluated = %d, want 1", res.Users)
	}
}
