package eval

import (
	"runtime"
	"testing"

	"ptffedrec/internal/data"
	"ptffedrec/internal/graph"
	"ptffedrec/internal/models"
	"ptffedrec/internal/rng"
)

// trainedModel builds a deterministic scorer with non-trivial scores: an MF
// model trained for one pass over the split's interactions.
func trainedModel(t *testing.T, kind models.Kind, sp *data.Split) models.Recommender {
	t.Helper()
	m, err := models.New(kind, models.Config{
		NumUsers: sp.NumUsers, NumItems: sp.NumItems, Dim: 8, LR: 1e-2, Layers: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	var batch []models.Sample
	for u := 0; u < sp.NumUsers; u++ {
		for _, v := range sp.Train[u] {
			batch = append(batch, models.Sample{User: u, Item: v, Label: 1})
		}
	}
	if gm, ok := m.(models.GraphRecommender); ok {
		g := graph.NewBipartite(sp.NumUsers, sp.NumItems)
		for u := 0; u < sp.NumUsers; u++ {
			for _, v := range sp.Train[u] {
				g.AddEdge(u, v, 1)
			}
		}
		gm.SetGraph(g)
	}
	m.TrainBatch(batch)
	return m
}

// TestRankingWorkersNoTestItems pins the empty-split edge case: a split with
// no held-out items must yield a zero Result at any worker count, as the
// serial evaluator always did, rather than panic in the chunking math.
func TestRankingWorkersNoTestItems(t *testing.T) {
	d := data.Generate(data.Tiny, 11)
	sp := d.Split(rng.New(2), 0.2)
	for u := range sp.Test {
		sp.Test[u] = nil
	}
	zero := models.ScorerFunc(func(u int, items []int) []float64 { return make([]float64, len(items)) })
	for _, workers := range []int{1, 4} {
		if got := RankingWorkers(zero, sp, 20, workers); got != (Result{}) {
			t.Fatalf("workers=%d: got %+v, want zero Result", workers, got)
		}
	}
}

// TestRankingWorkersDeterministic asserts the tentpole guarantee: metrics are
// bitwise-identical for every worker count, including workers=GOMAXPROCS.
func TestRankingWorkersDeterministic(t *testing.T) {
	d := data.Generate(data.Tiny, 11)
	sp := d.Split(rng.New(2), 0.2)
	for _, kind := range []models.Kind{models.KindMF, models.KindNeuMF, models.KindLightGCN, models.KindNGCF} {
		ref := RankingWorkers(trainedModel(t, kind, sp), sp, 20, 1)
		if ref.Users == 0 {
			t.Fatalf("%s: no users evaluated", kind)
		}
		// A fresh model per worker count leaves graph-model scoring caches
		// cold, so the parallel path must warm them before fanning out.
		for _, workers := range []int{2, 3, 8, runtime.GOMAXPROCS(0)} {
			got := RankingWorkers(trainedModel(t, kind, sp), sp, 20, workers)
			if got != ref {
				t.Fatalf("%s: workers=%d metrics %+v != workers=1 metrics %+v", kind, workers, got, ref)
			}
		}
		if got := Ranking(trainedModel(t, kind, sp), sp, 20); got != ref {
			t.Fatalf("%s: default Ranking %+v != workers=1 metrics %+v", kind, got, ref)
		}
	}
}
