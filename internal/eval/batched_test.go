package eval

import (
	"testing"

	"ptffedrec/internal/data"
	"ptffedrec/internal/models"
	"ptffedrec/internal/rng"
)

// TestBatchedEngineInvariance is the tentpole pin: the multi-user batched
// logit engine must produce bitwise-identical Results to the single-user
// probability-domain engine and to the legacy sort path, for every model
// kind and workers ∈ {1, 2, 8}. The batch and window knobs are shrunk so
// even the tiny split exercises partial batches, multi-window selections,
// and window boundaries that split candidate runs.
func TestBatchedEngineInvariance(t *testing.T) {
	defer func(b, c int) { evalUsersBatch, evalScoreChunk = b, c }(evalUsersBatch, evalScoreChunk)
	evalUsersBatch = 3
	evalScoreChunk = 48

	d := data.Generate(data.Tiny, 11)
	sp := d.Split(rng.New(2), 0.2)
	for _, kind := range []models.Kind{models.KindMF, models.KindNeuMF, models.KindLightGCN, models.KindNGCF} {
		m := trainedModel(t, kind, sp)
		if _, ok := m.(models.MultiBlockScorer); !ok {
			t.Fatalf("%s does not implement MultiBlockScorer", kind)
		}

		e := NewEvaluator(sp)
		e.SingleUser = true
		ref := e.Rank(m, 20, 1)
		e.SingleUser = false
		if ref.Users == 0 {
			t.Fatalf("%s: no users evaluated", kind)
		}

		for _, workers := range []int{1, 2, 8} {
			if got := e.Rank(m, 20, workers); got != ref {
				t.Fatalf("%s workers=%d: batched %+v != single-user %+v", kind, workers, got, ref)
			}
			e.SingleUser = true
			if got := e.Rank(m, 20, workers); got != ref {
				t.Fatalf("%s workers=%d: single-user %+v != workers=1 single-user %+v", kind, workers, got, ref)
			}
			e.SingleUser = false
			e.SortSelect = true
			if got := e.Rank(m, 20, workers); got != ref {
				t.Fatalf("%s workers=%d: sort %+v != single-user %+v", kind, workers, got, ref)
			}
			e.SortSelect = false
		}
	}
}

// TestBatchedEngineBatchSizeInvariance pins the scheduling-knob contract:
// the batch grouping and window width must never change results, including
// degenerate one-user batches and windows narrower than a candidate gap.
func TestBatchedEngineBatchSizeInvariance(t *testing.T) {
	defer func(b, c int) { evalUsersBatch, evalScoreChunk = b, c }(evalUsersBatch, evalScoreChunk)

	d := data.Generate(data.Tiny, 7)
	sp := d.Split(rng.New(5), 0.2)
	m := trainedModel(t, models.KindMF, sp)

	evalUsersBatch, evalScoreChunk = 16, 1024
	ref := NewEvaluator(sp).Rank(m, 20, 1)
	for _, shape := range []struct{ batch, chunk int }{
		{1, 1024}, {2, 7}, {5, 64}, {16, 1}, {64, 200},
	} {
		evalUsersBatch, evalScoreChunk = shape.batch, shape.chunk
		if got := NewEvaluator(sp).Rank(m, 20, 2); got != ref {
			t.Fatalf("batch=%d chunk=%d: %+v != reference %+v", shape.batch, shape.chunk, got, ref)
		}
	}
}

// TestBatchedEngineStreamingFallback checks the engine gate: a streaming
// evaluator (no candidate cache) must fall back to the single-user path and
// still match the cached batched result exactly.
func TestBatchedEngineStreamingFallback(t *testing.T) {
	d := data.Generate(data.Tiny, 9)
	sp := d.Split(rng.New(3), 0.2)
	m := trainedModel(t, models.KindLightGCN, sp)
	cached := NewEvaluator(sp).Rank(m, 20, 2)
	if streamed := RankingWorkers(m, sp, 20, 2); streamed != cached {
		t.Fatalf("streaming %+v != cached batched %+v", streamed, cached)
	}
}
