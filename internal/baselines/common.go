// Package baselines implements the three parameter-transmission federated
// recommenders the paper compares against (Table III/IV):
//
//   - FCF (Ammad-ud-din et al., 2019): FedAvg over a shared item-embedding
//     matrix, private per-client user vectors.
//   - FedMF (Chai et al., 2020): the same factorization, but item gradients
//     travel as Paillier ciphertexts (internal/hesim), which is what blows
//     its communication budget up in Table IV.
//   - MetaMF (Lin et al., 2020): a server-side meta-network generates
//     personalized item embeddings per user; clients hold only a private
//     user vector.
//
// All three transmit model parameters (or their encrypted gradients), which
// is exactly the behaviour PTF-FedRec removes.
package baselines

import (
	"fmt"
	"math"

	"ptffedrec/internal/data"
	"ptffedrec/internal/eval"
	"ptffedrec/internal/models"
	"ptffedrec/internal/rng"
)

// CipherMode selects how FedMF handles encryption.
type CipherMode string

// FedMF cipher modes: Real runs actual Paillier operations (tests and small
// universes); Accounted aggregates in plaintext but meters the exact
// ciphertext byte counts — the behaviour-preserving substitution documented
// in DESIGN.md.
const (
	CipherReal      CipherMode = "real"
	CipherAccounted CipherMode = "accounted"
)

// Config carries the shared baseline hyper-parameters (§IV-D: the baselines
// are "reproduced based on their papers" with the common dim-32 / Adam-1e-3
// setting; local epochs match the PTF clients).
type Config struct {
	Rounds         int
	LocalEpochs    int
	Dim            int
	LR             float64
	NegRatio       int
	ClientFraction float64
	EvalK          int
	Workers        int
	Seed           uint64

	// FedMF.
	Cipher   CipherMode
	KeyBits  int  // Paillier modulus bits (2048 realistic; tests use 256)
	SlotBits uint // packed slot width for ciphertext accounting
	FracBits uint // fixed-point fraction bits

	// MetaMF.
	CVDim      int // collaborative vector size
	MetaHidden int // meta-network hidden width
}

// DefaultConfig mirrors §IV-D for the baselines.
func DefaultConfig() Config {
	return Config{
		Rounds:         20,
		LocalEpochs:    5,
		Dim:            32,
		LR:             1e-3,
		NegRatio:       4,
		ClientFraction: 1.0,
		EvalK:          20,
		Seed:           1,
		Cipher:         CipherAccounted,
		KeyBits:        2048,
		SlotBits:       256,
		FracBits:       48,
		CVDim:          16,
		MetaHidden:     32,
	}
}

// Validate reports the first invalid field.
func (c Config) Validate() error {
	switch {
	case c.Rounds <= 0:
		return fmt.Errorf("baselines: Rounds = %d", c.Rounds)
	case c.LocalEpochs <= 0:
		return fmt.Errorf("baselines: LocalEpochs = %d", c.LocalEpochs)
	case c.Dim <= 0:
		return fmt.Errorf("baselines: Dim = %d", c.Dim)
	case c.NegRatio <= 0:
		return fmt.Errorf("baselines: NegRatio = %d", c.NegRatio)
	case c.ClientFraction <= 0 || c.ClientFraction > 1:
		return fmt.Errorf("baselines: ClientFraction = %v", c.ClientFraction)
	case c.EvalK <= 0:
		return fmt.Errorf("baselines: EvalK = %d", c.EvalK)
	}
	if c.Cipher != CipherReal && c.Cipher != CipherAccounted {
		return fmt.Errorf("baselines: Cipher = %q", c.Cipher)
	}
	return nil
}

// adamVec is a per-client Adam optimizer over one private vector (the user
// embedding that never leaves the device).
type adamVec struct {
	w, m, v []float64
	t       int
	lr      float64
}

func newAdamVec(s *rng.Stream, dim int, lr float64) *adamVec {
	a := &adamVec{w: make([]float64, dim), m: make([]float64, dim), v: make([]float64, dim), lr: lr}
	for i := range a.w {
		a.w[i] = s.Normal(0, 0.1)
	}
	return a
}

func (a *adamVec) step(g []float64) {
	const b1, b2, eps = 0.9, 0.999, 1e-8
	a.t++
	bc1 := 1 - math.Pow(b1, float64(a.t))
	bc2 := 1 - math.Pow(b2, float64(a.t))
	for k, gk := range g {
		a.m[k] = b1*a.m[k] + (1-b1)*gk
		a.v[k] = b2*a.v[k] + (1-b2)*gk*gk
		a.w[k] -= a.lr * (a.m[k] / bc1) / (math.Sqrt(a.v[k]/bc2) + eps)
	}
}

// localSamples builds user u's round-t training set: hard positives plus
// freshly sampled negatives at the configured ratio.
func localSamples(sp *data.Split, s *rng.Stream, u, negRatio int) []models.Sample {
	out := make([]models.Sample, 0, len(sp.Train[u])*(1+negRatio))
	for _, v := range sp.Train[u] {
		out = append(out, models.Sample{User: u, Item: v, Label: 1})
	}
	for _, v := range sp.SampleNegativesN(s, u, len(sp.Train[u])*negRatio) {
		out = append(out, models.Sample{User: u, Item: v, Label: 0})
	}
	return out
}

// FederatedBaseline is the contract the experiment harness drives.
type FederatedBaseline interface {
	Name() string
	RunRound(round int)
	Rounds() int
	Evaluate() eval.Result
	AvgBytesPerClientPerRound() float64
}

// Run executes every configured round of a baseline.
func Run(b FederatedBaseline) {
	for r := 0; r < b.Rounds(); r++ {
		b.RunRound(r)
	}
}
