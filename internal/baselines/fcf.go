package baselines

import (
	"runtime"
	"sync"

	"ptffedrec/internal/comm"
	"ptffedrec/internal/data"
	"ptffedrec/internal/eval"
	"ptffedrec/internal/models"
	"ptffedrec/internal/nn"
	"ptffedrec/internal/rng"
)

// FCF is federated collaborative filtering: the server owns the public item
// embedding matrix Q; each client owns a private user vector pᵤ. Every round
// the server broadcasts Q, clients train locally and upload dense item
// gradients, and the server applies the averaged gradient with Adam.
type FCF struct {
	cfg   Config
	split *data.Split

	items *nn.Param // V×d public item embeddings
	opt   *nn.Adam
	users []*adamVec // private per-client vectors (live on devices)

	meter *comm.Meter
	root  *rng.Stream

	// evaluator caches the per-user candidate sets across Evaluate calls.
	evaluator *eval.Evaluator
}

// NewFCF builds the baseline for a split.
func NewFCF(sp *data.Split, cfg Config) (*FCF, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed).Derive("fcf")
	f := &FCF{
		cfg:   cfg,
		split: sp,
		items: nn.NewParam("fcf.Q", sp.NumItems, cfg.Dim),
		opt:   nn.NewAdam(cfg.LR),
		meter: comm.NewMeter(),
		root:  root,
	}
	nn.Normal(root.Derive("items"), f.items.W, 0.1)
	for u := 0; u < sp.NumUsers; u++ {
		f.users = append(f.users, newAdamVec(root.DeriveN("user", u), cfg.Dim, cfg.LR))
	}
	return f, nil
}

// Name implements FederatedBaseline.
func (f *FCF) Name() string { return "FCF" }

// Rounds implements FederatedBaseline.
func (f *FCF) Rounds() int { return f.cfg.Rounds }

// Meter exposes the communication meter.
func (f *FCF) Meter() *comm.Meter { return f.meter }

// payloadBytes is the per-direction parameter payload: the full float32 item
// matrix, exactly what the original FCF ships.
func (f *FCF) payloadBytes() int {
	return comm.Float32BlockSize(f.split.NumItems * f.cfg.Dim)
}

// RunRound implements FederatedBaseline.
func (f *FCF) RunRound(round int) {
	sel := f.root.DeriveN("select", round)
	n := int(f.cfg.ClientFraction * float64(f.split.NumUsers))
	if n < 1 {
		n = 1
	}
	idx := sel.SampleInts(f.split.NumUsers, n)

	workers := f.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	grads := make([][]float64, len(idx)) // dense V×d per client
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, u := range idx {
		wg.Add(1)
		go func(slot, u int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			f.meter.AddDown(u, f.payloadBytes())
			grads[slot] = f.clientUpdate(u, round)
			f.meter.AddUp(u, f.payloadBytes())
		}(i, u)
	}
	wg.Wait()

	// FedAvg: mean gradient over participants, then a server Adam step.
	inv := 1.0 / float64(len(idx))
	for _, g := range grads {
		for j, v := range g {
			f.items.Grad.Data[j] += v * inv
		}
	}
	f.opt.Step([]*nn.Param{f.items})
	f.meter.EndRound()
}

// clientUpdate trains user u's private vector locally against the current Q
// and returns the dense item-gradient block it uploads.
func (f *FCF) clientUpdate(u, round int) []float64 {
	s := f.root.DeriveN("clientrng", u).DeriveN("round", round)
	dim := f.cfg.Dim
	grad := make([]float64, f.split.NumItems*dim)
	p := f.users[u]
	du := make([]float64, dim)
	for e := 0; e < f.cfg.LocalEpochs; e++ {
		samples := localSamples(f.split, s, u, f.cfg.NegRatio)
		s.Shuffle(len(samples), func(i, j int) { samples[i], samples[j] = samples[j], samples[i] })
		for _, smp := range samples {
			q := f.items.W.Row(smp.Item)
			pred := nn.Sigmoid(dotVec(p.w, q))
			g := pred - smp.Label
			for k := 0; k < dim; k++ {
				du[k] = g * q[k]
				grad[smp.Item*dim+k] += g * p.w[k]
			}
			p.step(du)
		}
	}
	return grad
}

// Evaluate implements FederatedBaseline.
func (f *FCF) Evaluate() eval.Result {
	scorer := models.ScorerFunc(func(u int, items []int) []float64 {
		out := make([]float64, len(items))
		for i, v := range items {
			out[i] = nn.Sigmoid(dotVec(f.users[u].w, f.items.W.Row(v)))
		}
		return out
	})
	return eval.LazyEvaluator(&f.evaluator, f.split).Rank(scorer, f.cfg.EvalK, 0)
}

// AvgBytesPerClientPerRound implements FederatedBaseline.
func (f *FCF) AvgBytesPerClientPerRound() float64 { return f.meter.AvgPerClientPerRound() }

func dotVec(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}
