package baselines

import (
	"runtime"
	"sync"

	"ptffedrec/internal/comm"
	"ptffedrec/internal/data"
	"ptffedrec/internal/emb"
	"ptffedrec/internal/eval"
	"ptffedrec/internal/models"
	"ptffedrec/internal/nn"
	"ptffedrec/internal/rng"
	"ptffedrec/internal/tensor"
)

// MetaMF keeps a meta-network on the server that generates private,
// personalized item embeddings for each user from a learned collaborative
// vector:
//
//	(scaleᵤ, shiftᵤ) = MLP(cvᵤ)
//	Qᵤ[v] = Base[v] ⊙ (1 + scaleᵤ) + shiftᵤ
//
// The server sends each client its generated Qᵤ; the client trains a private
// pᵤ locally and uploads dQᵤ, which the server backpropagates through the
// generator into Base, the MLP, and cvᵤ. This is the FiLM-style
// simplification of Lin et al.'s meta recommender documented in DESIGN.md —
// it keeps the property Table IV measures (per-user generated embeddings,
// parameter-sized traffic slightly above FCF's).
type MetaMF struct {
	cfg   Config
	split *data.Split

	base *nn.Param  // V×d shared base item embeddings
	cv   *emb.Table // U×cvDim collaborative vectors
	l1   *nn.Dense  // cvDim -> hidden
	l2   *nn.Dense  // hidden -> 2d (scale ‖ shift)
	opt  *nn.Adam

	users []*adamVec

	meter *comm.Meter
	root  *rng.Stream

	// evaluator caches the per-user candidate sets across Evaluate calls.
	evaluator *eval.Evaluator
}

// NewMetaMF builds the baseline for a split.
func NewMetaMF(sp *data.Split, cfg Config) (*MetaMF, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed).Derive("metamf")
	m := &MetaMF{
		cfg:   cfg,
		split: sp,
		base:  nn.NewParam("metamf.base", sp.NumItems, cfg.Dim),
		cv:    emb.NewTable(root.Derive("cv"), sp.NumUsers, cfg.CVDim, emb.DefaultAdam(cfg.LR)),
		l1:    nn.NewDense("metamf.l1", cfg.CVDim, cfg.MetaHidden, root.Derive("l1")),
		l2:    nn.NewDense("metamf.l2", cfg.MetaHidden, 2*cfg.Dim, root.Derive("l2")),
		opt:   nn.NewAdam(cfg.LR),
		meter: comm.NewMeter(),
		root:  root,
	}
	nn.Normal(root.Derive("base"), m.base.W, 0.1)
	for u := 0; u < sp.NumUsers; u++ {
		m.users = append(m.users, newAdamVec(root.DeriveN("user", u), cfg.Dim, cfg.LR))
	}
	return m, nil
}

// Name implements FederatedBaseline.
func (m *MetaMF) Name() string { return "MetaMF" }

// Rounds implements FederatedBaseline.
func (m *MetaMF) Rounds() int { return m.cfg.Rounds }

// Meter exposes the communication meter.
func (m *MetaMF) Meter() *comm.Meter { return m.meter }

// generate runs the meta-network for user u, returning the modulation and
// the intermediates needed for backprop.
func (m *MetaMF) generate(u int) (x, h1, a1, out *tensor.Matrix, scale, shift []float64) {
	x = tensor.FromSlice(1, m.cfg.CVDim, tensor.CloneVec(m.cv.Row(u)))
	h1 = m.l1.Forward(x)
	a1 = nn.ReLU(h1)
	out = m.l2.Forward(a1)
	scale = out.Row(0)[:m.cfg.Dim]
	shift = out.Row(0)[m.cfg.Dim:]
	return x, h1, a1, out, scale, shift
}

// generatedItems materialises Qᵤ — the payload the server ships to client u.
func (m *MetaMF) generatedItems(scale, shift []float64) *tensor.Matrix {
	q := tensor.New(m.split.NumItems, m.cfg.Dim)
	for v := 0; v < m.split.NumItems; v++ {
		b := m.base.W.Row(v)
		row := q.Row(v)
		for k := 0; k < m.cfg.Dim; k++ {
			row[k] = b[k]*(1+scale[k]) + shift[k]
		}
	}
	return q
}

// downBytes counts the generated embeddings plus the modulation vector.
func (m *MetaMF) downBytes() int {
	return comm.Float32BlockSize(m.split.NumItems*m.cfg.Dim + 2*m.cfg.Dim)
}

// upBytes counts the uploaded dQᵤ block.
func (m *MetaMF) upBytes() int {
	return comm.Float32BlockSize(m.split.NumItems * m.cfg.Dim)
}

// RunRound implements FederatedBaseline.
func (m *MetaMF) RunRound(round int) {
	sel := m.root.DeriveN("select", round)
	n := int(m.cfg.ClientFraction * float64(m.split.NumUsers))
	if n < 1 {
		n = 1
	}
	idx := sel.SampleInts(m.split.NumUsers, n)

	workers := m.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	grads := make([][]float64, len(idx))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, u := range idx {
		wg.Add(1)
		go func(slot, u int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			_, _, _, _, scale, shift := m.generate(u)
			q := m.generatedItems(scale, shift)
			m.meter.AddDown(u, m.downBytes())
			grads[slot] = m.clientUpdate(u, round, q)
			m.meter.AddUp(u, m.upBytes())
		}(i, u)
	}
	wg.Wait()

	// Server: backprop every client's dQᵤ through the generator.
	inv := 1.0 / float64(len(idx))
	dim := m.cfg.Dim
	for slot, u := range idx {
		dq := grads[slot]
		x, h1, a1, _, scale, _ := m.generate(u)
		dscale := make([]float64, dim)
		dshift := make([]float64, dim)
		for v := 0; v < m.split.NumItems; v++ {
			b := m.base.W.Row(v)
			bg := m.base.Grad.Row(v)
			for k := 0; k < dim; k++ {
				g := dq[v*dim+k] * inv
				if g == 0 {
					continue
				}
				bg[k] += g * (1 + scale[k])
				dscale[k] += g * b[k]
				dshift[k] += g
			}
		}
		dout := tensor.New(1, 2*dim)
		copy(dout.Row(0)[:dim], dscale)
		copy(dout.Row(0)[dim:], dshift)
		da1 := m.l2.Backward(a1, dout)
		dh1 := nn.ReLUBackward(h1, da1)
		dx := m.l1.Backward(x, dh1)
		m.cv.Accumulate(u, dx.Row(0))
	}
	params := []*nn.Param{m.base}
	params = append(params, m.l1.Params()...)
	params = append(params, m.l2.Params()...)
	m.opt.Step(params)
	m.cv.Step()
	m.meter.EndRound()
}

// clientUpdate trains pᵤ against the generated Qᵤ and returns dQᵤ.
func (m *MetaMF) clientUpdate(u, round int, q *tensor.Matrix) []float64 {
	s := m.root.DeriveN("clientrng", u).DeriveN("round", round)
	dim := m.cfg.Dim
	grad := make([]float64, m.split.NumItems*dim)
	p := m.users[u]
	du := make([]float64, dim)
	for e := 0; e < m.cfg.LocalEpochs; e++ {
		samples := localSamples(m.split, s, u, m.cfg.NegRatio)
		s.Shuffle(len(samples), func(i, j int) { samples[i], samples[j] = samples[j], samples[i] })
		for _, smp := range samples {
			qv := q.Row(smp.Item)
			pred := nn.Sigmoid(dotVec(p.w, qv))
			g := pred - smp.Label
			for k := 0; k < dim; k++ {
				du[k] = g * qv[k]
				grad[smp.Item*dim+k] += g * p.w[k]
			}
			p.step(du)
		}
	}
	return grad
}

// Evaluate implements FederatedBaseline.
func (m *MetaMF) Evaluate() eval.Result {
	scorer := models.ScorerFunc(func(u int, items []int) []float64 {
		_, _, _, _, scale, shift := m.generate(u)
		out := make([]float64, len(items))
		p := m.users[u].w
		for i, v := range items {
			b := m.base.W.Row(v)
			var s float64
			for k := 0; k < m.cfg.Dim; k++ {
				s += p[k] * (b[k]*(1+scale[k]) + shift[k])
			}
			out[i] = nn.Sigmoid(s)
		}
		return out
	})
	return eval.LazyEvaluator(&m.evaluator, m.split).Rank(scorer, m.cfg.EvalK, 0)
}

// AvgBytesPerClientPerRound implements FederatedBaseline.
func (m *MetaMF) AvgBytesPerClientPerRound() float64 { return m.meter.AvgPerClientPerRound() }
