package baselines

import (
	"fmt"
	"math/big"
	"runtime"
	"sync"

	"ptffedrec/internal/comm"
	"ptffedrec/internal/data"
	"ptffedrec/internal/eval"
	"ptffedrec/internal/hesim"
	"ptffedrec/internal/models"
	"ptffedrec/internal/nn"
	"ptffedrec/internal/rng"
	"ptffedrec/internal/tensor"
)

// FedMF is secure federated matrix factorization: item gradients travel as
// Paillier ciphertexts so the server can aggregate without seeing plaintext.
// Clients share the secret key; they upload E(−lr·g/|Uᵗ|) so the server's
// homomorphic sum directly yields the update (scale never grows).
//
// In CipherReal mode every value is really encrypted/aggregated/decrypted
// through internal/hesim — feasible for test-sized universes. In
// CipherAccounted mode (the default) aggregation runs in plaintext but the
// meter charges the exact ciphertext byte counts; Table IV's costs come from
// the ciphertext math either way.
type FedMF struct {
	cfg   Config
	split *data.Split

	items *tensor.Matrix // V×d plaintext view of the item matrix
	users []*adamVec

	key    *hesim.PrivateKey
	fp     *hesim.FixedPoint
	packer *hesim.Packer
	ctQ    []*hesim.Ciphertext // Real mode: one ciphertext per value

	meter *comm.Meter
	root  *rng.Stream

	// evaluator caches the per-user candidate sets across Evaluate calls.
	evaluator *eval.Evaluator
}

// NewFedMF builds the baseline. Real mode generates an actual key pair and
// an encrypted copy of the item matrix.
func NewFedMF(sp *data.Split, cfg Config) (*FedMF, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed).Derive("fedmf")
	f := &FedMF{
		cfg:   cfg,
		split: sp,
		items: tensor.New(sp.NumItems, cfg.Dim),
		meter: comm.NewMeter(),
		root:  root,
	}
	init := root.Derive("items")
	for i := range f.items.Data {
		f.items.Data[i] = init.Normal(0, 0.1)
	}
	for u := 0; u < sp.NumUsers; u++ {
		f.users = append(f.users, newAdamVec(root.DeriveN("user", u), cfg.Dim, cfg.LR))
	}
	key, err := hesim.GenerateKey(nil, cfg.KeyBits)
	if err != nil {
		return nil, fmt.Errorf("baselines: fedmf keygen: %w", err)
	}
	f.key = key
	f.fp = hesim.NewFixedPoint(&key.PublicKey, cfg.FracBits)
	f.packer = hesim.NewPacker(&key.PublicKey, cfg.SlotBits, cfg.FracBits)
	if cfg.Cipher == CipherReal {
		f.ctQ = make([]*hesim.Ciphertext, len(f.items.Data))
		for i, v := range f.items.Data {
			z, err := f.fp.Encode(v)
			if err != nil {
				return nil, fmt.Errorf("baselines: fedmf encode: %w", err)
			}
			ct, err := key.Encrypt(nil, z)
			if err != nil {
				return nil, fmt.Errorf("baselines: fedmf encrypt: %w", err)
			}
			f.ctQ[i] = ct
		}
	}
	return f, nil
}

// Name implements FederatedBaseline.
func (f *FedMF) Name() string { return "FedMF" }

// Rounds implements FederatedBaseline.
func (f *FedMF) Rounds() int { return f.cfg.Rounds }

// Meter exposes the communication meter.
func (f *FedMF) Meter() *comm.Meter { return f.meter }

// payloadBytes is the per-direction encrypted payload: the whole item matrix
// as packed Paillier ciphertexts. Uploading gradients for every item (zeros
// included) is what hides which items a client interacted with — and what
// makes FedMF the most expensive row of Table IV.
func (f *FedMF) payloadBytes() int {
	values := f.split.NumItems * f.cfg.Dim
	slots := f.packer.Slots
	cts := (values + slots - 1) / slots
	return cts * hesim.CiphertextBytes(f.cfg.KeyBits)
}

// RunRound implements FederatedBaseline.
func (f *FedMF) RunRound(round int) {
	sel := f.root.DeriveN("select", round)
	n := int(f.cfg.ClientFraction * float64(f.split.NumUsers))
	if n < 1 {
		n = 1
	}
	idx := sel.SampleInts(f.split.NumUsers, n)

	workers := f.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	grads := make([][]float64, len(idx))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, u := range idx {
		wg.Add(1)
		go func(slot, u int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			f.meter.AddDown(u, f.payloadBytes())
			grads[slot] = f.clientUpdate(u, round)
			f.meter.AddUp(u, f.payloadBytes())
		}(i, u)
	}
	wg.Wait()

	scale := -f.cfg.LR / float64(len(idx))
	if f.cfg.Cipher == CipherReal {
		// Each client encrypts −lr·g/n; the server homomorphically adds all
		// contributions into the encrypted item matrix.
		for _, g := range grads {
			for j, v := range g {
				if v == 0 {
					continue
				}
				z, err := f.fp.Encode(scale * v)
				if err != nil {
					continue // gradient overflowed fixed-point; drop it
				}
				ct, err := f.key.Encrypt(nil, z)
				if err != nil {
					continue
				}
				f.ctQ[j] = f.key.Add(f.ctQ[j], ct)
			}
		}
		// Refresh the plaintext view from the ciphertexts (clients would do
		// this with the shared key at the next download).
		for j := range f.items.Data {
			f.items.Data[j] = f.fp.Decode(f.key.Decrypt(f.ctQ[j]))
		}
	} else {
		for _, g := range grads {
			for j, v := range g {
				f.items.Data[j] += scale * v
			}
		}
	}
	f.meter.EndRound()
}

// clientUpdate mirrors FCF's local step (private user vector + dense item
// gradient); only the transport differs.
func (f *FedMF) clientUpdate(u, round int) []float64 {
	s := f.root.DeriveN("clientrng", u).DeriveN("round", round)
	dim := f.cfg.Dim
	grad := make([]float64, f.split.NumItems*dim)
	p := f.users[u]
	du := make([]float64, dim)
	for e := 0; e < f.cfg.LocalEpochs; e++ {
		samples := localSamples(f.split, s, u, f.cfg.NegRatio)
		s.Shuffle(len(samples), func(i, j int) { samples[i], samples[j] = samples[j], samples[i] })
		for _, smp := range samples {
			q := f.items.Row(smp.Item)
			pred := nn.Sigmoid(dotVec(p.w, q))
			g := pred - smp.Label
			for k := 0; k < dim; k++ {
				du[k] = g * q[k]
				grad[smp.Item*dim+k] += g * p.w[k]
			}
			p.step(du)
		}
	}
	return grad
}

// DecryptedItems returns the item matrix recovered from ciphertext (Real
// mode only) so tests can verify the encrypted and plaintext paths agree.
func (f *FedMF) DecryptedItems() (*tensor.Matrix, error) {
	if f.cfg.Cipher != CipherReal {
		return nil, fmt.Errorf("baselines: DecryptedItems requires CipherReal")
	}
	out := tensor.New(f.split.NumItems, f.cfg.Dim)
	for j := range out.Data {
		out.Data[j] = f.fp.Decode(f.key.Decrypt(f.ctQ[j]))
	}
	return out, nil
}

// HomomorphicSmokeTest exercises one encrypt-add-decrypt cycle with the
// session key, verifying the key material works (used by examples).
func (f *FedMF) HomomorphicSmokeTest() error {
	a, err := f.key.Encrypt(nil, big.NewInt(2))
	if err != nil {
		return err
	}
	b, err := f.key.Encrypt(nil, big.NewInt(3))
	if err != nil {
		return err
	}
	if got := f.key.Decrypt(f.key.Add(a, b)); got.Int64() != 5 {
		return fmt.Errorf("baselines: homomorphic smoke test got %v", got)
	}
	return nil
}

// Evaluate implements FederatedBaseline.
func (f *FedMF) Evaluate() eval.Result {
	scorer := models.ScorerFunc(func(u int, items []int) []float64 {
		out := make([]float64, len(items))
		for i, v := range items {
			out[i] = nn.Sigmoid(dotVec(f.users[u].w, f.items.Row(v)))
		}
		return out
	})
	return eval.LazyEvaluator(&f.evaluator, f.split).Rank(scorer, f.cfg.EvalK, 0)
}

// AvgBytesPerClientPerRound implements FederatedBaseline.
func (f *FedMF) AvgBytesPerClientPerRound() float64 { return f.meter.AvgPerClientPerRound() }
