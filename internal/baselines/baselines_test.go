package baselines

import (
	"math"
	"testing"

	"ptffedrec/internal/data"
	"ptffedrec/internal/rng"
)

func tinySplit(t *testing.T) *data.Split {
	t.Helper()
	d := data.Generate(data.Tiny, 42)
	return d.Split(rng.New(1), 0.2)
}

func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Rounds = 3
	cfg.LocalEpochs = 2
	cfg.Dim = 8
	cfg.LR = 0.01
	cfg.Workers = 4
	cfg.KeyBits = 256
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Rounds = 0 },
		func(c *Config) { c.LocalEpochs = 0 },
		func(c *Config) { c.Dim = 0 },
		func(c *Config) { c.NegRatio = 0 },
		func(c *Config) { c.ClientFraction = 0 },
		func(c *Config) { c.EvalK = 0 },
		func(c *Config) { c.Cipher = "bogus" },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func TestAdamVecConverges(t *testing.T) {
	a := newAdamVec(rng.New(1), 2, 0.05)
	target := []float64{0.4, -0.6}
	for i := 0; i < 800; i++ {
		g := []float64{2 * (a.w[0] - target[0]), 2 * (a.w[1] - target[1])}
		a.step(g)
	}
	for k := range target {
		if math.Abs(a.w[k]-target[k]) > 1e-2 {
			t.Fatalf("adamVec dim %d = %v, want %v", k, a.w[k], target[k])
		}
	}
}

func TestLocalSamplesShape(t *testing.T) {
	sp := tinySplit(t)
	s := rng.New(2)
	samples := localSamples(sp, s, 0, 4)
	nPos := len(sp.Train[0])
	if len(samples) != nPos*5 {
		t.Fatalf("samples = %d, want %d", len(samples), nPos*5)
	}
	for i, smp := range samples {
		if i < nPos && smp.Label != 1 {
			t.Fatal("positives must come first with label 1")
		}
		if i >= nPos && smp.Label != 0 {
			t.Fatal("negatives must have label 0")
		}
	}
}

func TestFCFLearnsAndMeters(t *testing.T) {
	sp := tinySplit(t)
	f, err := NewFCF(sp, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	before := f.Evaluate()
	Run(f)
	after := f.Evaluate()
	if after.Users == 0 {
		t.Fatal("no users evaluated")
	}
	if after.NDCG < before.NDCG-0.02 {
		t.Fatalf("FCF got worse: %v -> %v", before.NDCG, after.NDCG)
	}
	// Comm = 2 × item matrix per round (float32).
	want := float64(2 * 4 * sp.NumItems * 8)
	if got := f.AvgBytesPerClientPerRound(); math.Abs(got-want) > 1 {
		t.Fatalf("FCF bytes = %v, want %v", got, want)
	}
}

func TestFedMFAccountedCostsExceedFCF(t *testing.T) {
	sp := tinySplit(t)
	cfg := fastConfig()
	fcf, err := NewFCF(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fedmf, err := NewFedMF(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fcf.RunRound(0)
	fedmf.RunRound(0)
	if fedmf.AvgBytesPerClientPerRound() <= fcf.AvgBytesPerClientPerRound() {
		t.Fatalf("FedMF (%v) should cost more than FCF (%v)",
			fedmf.AvgBytesPerClientPerRound(), fcf.AvgBytesPerClientPerRound())
	}
}

func TestFedMFRealMatchesAccounted(t *testing.T) {
	// The encrypted aggregation path must produce (within fixed-point
	// error) the same item matrix as plaintext aggregation.
	d := data.Generate(data.Profile{
		Name: "micro", NumUsers: 6, NumItems: 10,
		Interactions: 30, ZipfExponent: 1, Clusters: 2, ClusterBias: 0.7, MinPerUser: 3,
	}, 7)
	sp := d.Split(rng.New(3), 0.2)

	cfg := fastConfig()
	cfg.Rounds = 2
	cfg.Dim = 4
	cfg.Workers = 1

	cfgReal := cfg
	cfgReal.Cipher = CipherReal
	real, err := NewFedMF(sp, cfgReal)
	if err != nil {
		t.Fatal(err)
	}
	cfgAcc := cfg
	cfgAcc.Cipher = CipherAccounted
	acc, err := NewFedMF(sp, cfgAcc)
	if err != nil {
		t.Fatal(err)
	}
	Run(real)
	Run(acc)

	// Same seed -> same plaintext trajectory; Real additionally keeps the
	// ciphertext state in sync with its plaintext view.
	dec, err := real.DecryptedItems()
	if err != nil {
		t.Fatal(err)
	}
	for j := range dec.Data {
		if math.Abs(dec.Data[j]-real.items.Data[j]) > 1e-6 {
			t.Fatalf("ciphertext/plaintext diverged at %d: %v vs %v", j, dec.Data[j], real.items.Data[j])
		}
		if math.Abs(real.items.Data[j]-acc.items.Data[j]) > 1e-5 {
			t.Fatalf("real/accounted diverged at %d: %v vs %v", j, real.items.Data[j], acc.items.Data[j])
		}
	}
	if _, err := acc.DecryptedItems(); err == nil {
		t.Fatal("DecryptedItems should fail in accounted mode")
	}
}

func TestFedMFHomomorphicSmokeTest(t *testing.T) {
	sp := tinySplit(t)
	f, err := NewFedMF(sp, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := f.HomomorphicSmokeTest(); err != nil {
		t.Fatal(err)
	}
}

func TestMetaMFLearnsAndMeters(t *testing.T) {
	sp := tinySplit(t)
	m, err := NewMetaMF(sp, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	Run(m)
	res := m.Evaluate()
	if res.Users == 0 {
		t.Fatal("no users evaluated")
	}
	// MetaMF ships generated Q down + dQ up, so it must cost slightly more
	// than FCF's 2×Q.
	fcfBytes := float64(2 * 4 * sp.NumItems * 8)
	if got := m.AvgBytesPerClientPerRound(); got <= fcfBytes {
		t.Fatalf("MetaMF bytes = %v, want > FCF's %v", got, fcfBytes)
	}
}

func TestMetaMFPersonalization(t *testing.T) {
	// Different users must receive different generated item embeddings once
	// cv vectors have been trained apart.
	sp := tinySplit(t)
	cfg := fastConfig()
	m, err := NewMetaMF(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	Run(m)
	_, _, _, _, s0, _ := m.generate(0)
	_, _, _, _, s1, _ := m.generate(1)
	diff := 0.0
	for k := range s0 {
		diff += math.Abs(s0[k] - s1[k])
	}
	if diff == 0 {
		t.Fatal("meta-network generates identical modulation for all users")
	}
}

func TestBaselinesDeterministic(t *testing.T) {
	sp := tinySplit(t)
	cfg := fastConfig()
	cfg.Rounds = 2
	runFCF := func() float64 {
		f, err := NewFCF(sp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		Run(f)
		return f.Evaluate().NDCG
	}
	if runFCF() != runFCF() {
		t.Fatal("FCF not deterministic")
	}
	runMeta := func() float64 {
		m, err := NewMetaMF(sp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		Run(m)
		return m.Evaluate().NDCG
	}
	if runMeta() != runMeta() {
		t.Fatal("MetaMF not deterministic")
	}
}

func TestClientFraction(t *testing.T) {
	sp := tinySplit(t)
	cfg := fastConfig()
	cfg.ClientFraction = 0.5
	f, err := NewFCF(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.RunRound(0)
	// Only half the clients should have traffic.
	withTraffic := 0
	for u := 0; u < sp.NumUsers; u++ {
		if f.meter.TotalUp() > 0 {
			withTraffic++
			break
		}
	}
	if withTraffic == 0 {
		t.Fatal("no traffic at all")
	}
}
