package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"ptffedrec/internal/data"
)

func TestRunScalability(t *testing.T) {
	o := testOptions()
	o.ProfilesOverride = []data.Profile{data.Tiny}
	res, err := RunScalability(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 2 {
		t.Fatalf("want at least the workers=1 row plus one parallel row, got %d", len(res.Rows))
	}
	if res.Rows[0].Workers != 1 {
		t.Fatalf("first row workers = %d, want 1", res.Rows[0].Workers)
	}
	if !res.Deterministic {
		t.Fatal("metrics differ across worker counts")
	}
	for _, row := range res.Rows {
		if row.Recall != res.Rows[0].Recall || row.NDCG != res.Rows[0].NDCG {
			t.Fatalf("row %+v metrics differ from baseline %+v", row, res.Rows[0])
		}
		// Per-phase timings must be populated and account for the round: the
		// LightGCN server guarantees non-zero graph-build and SGD phases.
		if row.ServerTrainSecs <= 0 || row.GraphSecs <= 0 || row.ClientSecs <= 0 {
			t.Fatalf("row %+v missing per-phase timings", row)
		}
		if row.ServerTrainSpeedup <= 0 || row.GraphSpeedup <= 0 {
			t.Fatalf("row %+v missing per-phase speedups", row)
		}
		// The batched-vs-scalar comparison must be populated (its speedup is
		// timing-dependent, but both timings must exist).
		if row.EvalScalarSecs <= 0 || row.BatchedEvalSpeedup <= 0 {
			t.Fatalf("row %+v missing batched-vs-scalar eval comparison", row)
		}
		// Likewise the selection engine's select-vs-sort comparison.
		if row.EvalSortSecs <= 0 || row.SelectSpeedup <= 0 {
			t.Fatalf("row %+v missing select-vs-sort eval comparison", row)
		}
		// And the dispersal engine's batched-vs-scalar comparison.
		if row.DisperseBatchedSecs <= 0 || row.DisperseScalarSecs <= 0 || row.DisperseSpeedup <= 0 {
			t.Fatalf("row %+v missing batched-vs-scalar dispersal comparison", row)
		}
		// And the graph engine's incremental-vs-full comparison: both phase
		// timings, their ratio, and the maintained engine's footprint.
		if row.GraphIncrSecs <= 0 || row.GraphFullSecs <= 0 || row.GraphRebuildSpeedup <= 0 {
			t.Fatalf("row %+v missing incremental-vs-full graph comparison", row)
		}
		if row.GraphEngineBytes <= 0 {
			t.Fatalf("row %+v missing graph engine footprint", row)
		}
	}
	if res.OverlapSequentialSecs <= 0 || res.OverlapConcurrentSecs <= 0 || res.OverlapSpeedup <= 0 {
		t.Fatalf("missing eval+dispersal overlap measurement: %+v", res)
	}
	// The networked loopback measurement runs on small profiles and must both
	// land its columns and keep Deterministic true (the history it produces
	// over the wire is cross-checked against the in-process rows above).
	if res.NetRoundSecs <= 0 || res.NetWireBytes <= 0 {
		t.Fatalf("missing networked loopback measurement: %+v", res)
	}

	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "metrics identical across worker counts and scoring paths: true") {
		t.Fatalf("unexpected report:\n%s", buf.String())
	}

	// The -json path serialises the result verbatim; it must round-trip.
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back ScalabilityResult
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Profile != res.Profile || len(back.Rows) != len(res.Rows) {
		t.Fatalf("JSON round-trip mismatch: %+v vs %+v", back, res)
	}
}
