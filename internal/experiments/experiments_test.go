package experiments

import (
	"bytes"
	"strings"
	"testing"

	"ptffedrec/internal/data"
)

// testOptions uses the Tiny profile so the whole experiment grid stays fast.
func testOptions() Options {
	o := DefaultOptions()
	o.ProfilesOverride = []data.Profile{data.Tiny}
	return o
}

func TestProfilesByScale(t *testing.T) {
	small := Options{Scale: ScaleSmall}.Profiles()
	full := Options{Scale: ScaleFull}.Profiles()
	if len(small) != 3 || len(full) != 3 {
		t.Fatal("want 3 datasets per scale")
	}
	if small[0].NumUsers >= full[0].NumUsers {
		t.Fatal("small profile not smaller than full")
	}
	if full[0].NumUsers != 943 {
		t.Fatalf("full ML profile users = %d", full[0].NumUsers)
	}
}

func TestRunTable2(t *testing.T) {
	res := RunTable2(testOptions())
	if len(res.Stats) != 1 {
		t.Fatalf("stats rows = %d", len(res.Stats))
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Table II") {
		t.Fatal("missing header")
	}
}

func TestRunTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment grid; skipped in -short")
	}
	res, err := RunTable3(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	// 3 centralized + 3 baselines + 3 PTF = 9 rows.
	if len(res.Rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(res.Rows))
	}
	for _, row := range res.Rows {
		if len(row.Cells) != 1 {
			t.Fatalf("row %s has %d cells", row.Method, len(row.Cells))
		}
		c := row.Cells[0]
		if c.Recall < 0 || c.Recall > 1 || c.NDCG < 0 || c.NDCG > 1 {
			t.Fatalf("row %s metrics out of range: %+v", row.Method, c)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "PTF-FedRec(ngcf)") {
		t.Fatalf("missing PTF row in output:\n%s", buf.String())
	}
}

func TestRunTable4CommunicationOrdering(t *testing.T) {
	res, err := RunTable4(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	byMethod := map[string]float64{}
	for _, row := range res.Rows {
		byMethod[row.Method] = row.Bytes[0]
	}
	// The paper's headline ordering: FedMF >> FCF/MetaMF >> PTF-FedRec.
	if !(byMethod["FedMF"] > byMethod["FCF"]) {
		t.Fatalf("FedMF (%v) should exceed FCF (%v)", byMethod["FedMF"], byMethod["FCF"])
	}
	if !(byMethod["MetaMF"] > byMethod["FCF"]) {
		t.Fatalf("MetaMF (%v) should slightly exceed FCF (%v)", byMethod["MetaMF"], byMethod["FCF"])
	}
	if !(byMethod["PTF-FedRec"] < byMethod["FCF"]/10) {
		t.Fatalf("PTF (%v) should be at least 10x below FCF (%v)", byMethod["PTF-FedRec"], byMethod["FCF"])
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Table IV") {
		t.Fatal("missing header")
	}
}

func TestRunTable5AndTable6(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment grid; skipped in -short")
	}
	res, err := RunTable5(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("defense rows = %d", len(res.Rows))
	}
	byDefense := map[string]float64{}
	for _, row := range res.Rows {
		byDefense[row.Defense] = row.F1[0]
	}
	if byDefense["none"] < byDefense["sampling+swap"] {
		t.Fatalf("no-defense F1 (%v) should exceed sampling+swap (%v)",
			byDefense["none"], byDefense["sampling+swap"])
	}
	t6 := DeriveTable6(res)
	if len(t6.Rows) != 3 {
		t.Fatalf("table6 rows = %d", len(t6.Rows))
	}
	var buf bytes.Buffer
	res.Print(&buf)
	t6.Print(&buf)
	if !strings.Contains(buf.String(), "Table VI") {
		t.Fatal("missing table6 header")
	}
}

func TestRunTable7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment grid; skipped in -short")
	}
	res, err := RunTable7(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "conf+hard") {
		t.Fatal("missing strategy row")
	}
}

func TestRunTable8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment grid; skipped in -short")
	}
	res, err := RunTable8(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NDCG) != 3 || len(res.NDCG[0]) != 3 {
		t.Fatalf("matrix shape %dx%d", len(res.NDCG), len(res.NDCG[0]))
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "client\\server") {
		t.Fatal("missing matrix header")
	}
}

func TestRunFig4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment grid; skipped in -short")
	}
	res, err := RunFig4(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NDCG) != 1 || len(res.NDCG[0]) != len(res.Alphas) {
		t.Fatal("fig4 series shape wrong")
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "α=10") {
		t.Fatal("missing alpha labels")
	}
}

func TestRunDispatcher(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("table2", testOptions(), &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
	if err := Run("bogus", testOptions(), &buf); err == nil {
		t.Fatal("bogus experiment accepted")
	}
}

func TestExperimentIDsAllDispatchable(t *testing.T) {
	// Every advertised id must at least be recognised by the dispatcher.
	// (Run on tiny data for the cheap ones only; here we just check the
	// error path distinguishes known from unknown.)
	for _, id := range ExperimentIDs {
		found := false
		for _, known := range ExperimentIDs {
			if id == known {
				found = true
			}
		}
		if !found {
			t.Fatalf("id %s missing", id)
		}
	}
}
