package experiments

import (
	"fmt"
	"io"

	"ptffedrec/internal/fed"
	"ptffedrec/internal/models"
	"ptffedrec/internal/privacy"
)

// --------------------------------------------------------------- Figure 3

// SweepPoint is one hyper-parameter setting's outcome.
type SweepPoint struct {
	Label string
	NDCG  float64
	F1    float64
}

// Fig3Result holds the three privacy hyper-parameter sweeps per dataset.
type Fig3Result struct {
	Datasets []string
	// Beta[d], Gamma[d], Lambda[d] are the sweep series for dataset d.
	Beta, Gamma, Lambda [][]SweepPoint
}

// RunFig3 sweeps the β sampling range, the γ range, and the swap rate λ,
// measuring NDCG@20 and attack F1 as in Fig. 3 (server: NGCF).
func RunFig3(o Options) (Fig3Result, error) {
	res := Fig3Result{}
	betaRanges := [][2]float64{{0.1, 1}, {0.3, 1}, {0.5, 1}, {0.7, 1}}
	gammaRanges := [][2]int{{1, 4}, {2, 4}, {3, 4}, {4, 4}}
	lambdas := []float64{0.05, 0.1, 0.15, 0.2}

	for _, p := range o.Profiles() {
		res.Datasets = append(res.Datasets, p.Name)
		sp := o.split(p)

		var betaSeries []SweepPoint
		for _, br := range betaRanges {
			o.logf("fig3: %s beta=[%.1f,%.1f]\n", p.Name, br[0], br[1])
			h, _, err := o.runPTF(sp, models.KindNGCF, func(c *fed.Config) {
				c.Privacy.BetaMin, c.Privacy.BetaMax = br[0], br[1]
			})
			if err != nil {
				return res, fmt.Errorf("fig3 beta on %s: %w", p.Name, err)
			}
			betaSeries = append(betaSeries, SweepPoint{
				Label: fmt.Sprintf("[%.1f,%.1f]", br[0], br[1]),
				NDCG:  h.Final.NDCG,
				F1:    lateRoundAttackF1(h),
			})
		}
		res.Beta = append(res.Beta, betaSeries)

		var gammaSeries []SweepPoint
		for _, gr := range gammaRanges {
			o.logf("fig3: %s gamma=[%d,%d]\n", p.Name, gr[0], gr[1])
			h, _, err := o.runPTF(sp, models.KindNGCF, func(c *fed.Config) {
				c.Privacy.GammaMin, c.Privacy.GammaMax = gr[0], gr[1]
			})
			if err != nil {
				return res, fmt.Errorf("fig3 gamma on %s: %w", p.Name, err)
			}
			gammaSeries = append(gammaSeries, SweepPoint{
				Label: fmt.Sprintf("[%d,%d]", gr[0], gr[1]),
				NDCG:  h.Final.NDCG,
				F1:    lateRoundAttackF1(h),
			})
		}
		res.Gamma = append(res.Gamma, gammaSeries)

		var lambdaSeries []SweepPoint
		for _, l := range lambdas {
			o.logf("fig3: %s lambda=%.2f\n", p.Name, l)
			h, _, err := o.runPTF(sp, models.KindNGCF, func(c *fed.Config) {
				c.Privacy.Lambda = l
			})
			if err != nil {
				return res, fmt.Errorf("fig3 lambda on %s: %w", p.Name, err)
			}
			lambdaSeries = append(lambdaSeries, SweepPoint{
				Label: fmt.Sprintf("%.2f", l),
				NDCG:  h.Final.NDCG,
				F1:    lateRoundAttackF1(h),
			})
		}
		res.Lambda = append(res.Lambda, lambdaSeries)
	}
	return res, nil
}

// Print renders the three sweep panels per dataset.
func (r Fig3Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 3: privacy hyper-parameter sweeps (NDCG@20 / attack F1)")
	panels := []struct {
		name   string
		series [][]SweepPoint
	}{
		{"beta range", r.Beta}, {"gamma range", r.Gamma}, {"lambda", r.Lambda},
	}
	for di, dname := range r.Datasets {
		fmt.Fprintf(w, "  dataset %s\n", dname)
		for _, panel := range panels {
			fmt.Fprintf(w, "    %-12s:", panel.name)
			for _, pt := range panel.series[di] {
				fmt.Fprintf(w, "  %s N=%.4f F1=%.3f", pt.Label, pt.NDCG, pt.F1)
			}
			fmt.Fprintln(w)
		}
	}
}

// --------------------------------------------------------------- Figure 4

// Fig4Result holds the α sweep (size of D̃ᵢ) per dataset.
type Fig4Result struct {
	Datasets []string
	Alphas   []int
	NDCG     [][]float64 // [dataset][alpha]
}

// RunFig4 sweeps α ∈ {10,30,50,70,90} (server: NGCF).
func RunFig4(o Options) (Fig4Result, error) {
	res := Fig4Result{Alphas: []int{10, 30, 50, 70, 90}}
	for _, p := range o.Profiles() {
		res.Datasets = append(res.Datasets, p.Name)
		sp := o.split(p)
		var series []float64
		for _, a := range res.Alphas {
			o.logf("fig4: %s alpha=%d\n", p.Name, a)
			h, _, err := o.runPTF(sp, models.KindNGCF, func(c *fed.Config) {
				c.Alpha = a
			})
			if err != nil {
				return res, fmt.Errorf("fig4 alpha=%d on %s: %w", a, p.Name, err)
			}
			series = append(series, h.Final.NDCG)
		}
		res.NDCG = append(res.NDCG, series)
	}
	return res, nil
}

// Print renders the sweep.
func (r Fig4Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 4: impact of dispersed-set size α on NDCG@20")
	for di, dname := range r.Datasets {
		fmt.Fprintf(w, "  %-18s:", dname)
		for ai, a := range r.Alphas {
			fmt.Fprintf(w, "  α=%-3d %.4f", a, r.NDCG[di][ai])
		}
		fmt.Fprintln(w)
	}
}

// --------------------------------------------- Extra ablation: server graph

// AblationServerGraphResult sweeps the soft-positive threshold the server
// uses to rebuild its graph from uploads — a design choice the paper leaves
// open (DESIGN.md §3).
type AblationServerGraphResult struct {
	Thresholds []float64
	NDCG       []float64
}

// RunAblationServerGraph sweeps the threshold on the MovieLens profile.
func RunAblationServerGraph(o Options) (AblationServerGraphResult, error) {
	res := AblationServerGraphResult{Thresholds: []float64{0.3, 0.5, 0.7}}
	sp := o.split(o.Profiles()[0])
	for _, th := range res.Thresholds {
		o.logf("ablation-servergraph: threshold=%.1f\n", th)
		h, _, err := o.runPTF(sp, models.KindLightGCN, func(c *fed.Config) {
			c.GraphThreshold = th
		})
		if err != nil {
			return res, err
		}
		res.NDCG = append(res.NDCG, h.Final.NDCG)
	}
	return res, nil
}

// Print renders the ablation.
func (r AblationServerGraphResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Ablation: server graph soft-positive threshold (LightGCN server, NDCG@20)")
	for i, th := range r.Thresholds {
		fmt.Fprintf(w, "  threshold %.1f: %.4f\n", th, r.NDCG[i])
	}
}

// ------------------------------------------- Extra ablation: noise frontier

// AblationNoiseResult compares the privacy/utility frontier of swap noise
// (λ sweep) against Laplace noise (scale sweep) on one dataset.
type AblationNoiseResult struct {
	SwapPoints    []SweepPoint // varying λ
	LaplacePoints []SweepPoint // varying scale
}

// RunAblationNoise traces both frontiers on the MovieLens profile.
func RunAblationNoise(o Options) (AblationNoiseResult, error) {
	res := AblationNoiseResult{}
	sp := o.split(o.Profiles()[0])
	for _, l := range []float64{0.05, 0.1, 0.2, 0.4} {
		o.logf("ablation-noise: swap lambda=%.2f\n", l)
		h, _, err := o.runPTF(sp, models.KindNGCF, func(c *fed.Config) {
			c.Privacy.Defense = privacy.DefenseSamplingSwap
			c.Privacy.Lambda = l
		})
		if err != nil {
			return res, err
		}
		res.SwapPoints = append(res.SwapPoints, SweepPoint{
			Label: fmt.Sprintf("λ=%.2f", l), NDCG: h.Final.NDCG, F1: lateRoundAttackF1(h),
		})
	}
	for _, s := range []float64{0.1, 0.25, 0.5, 1.0} {
		o.logf("ablation-noise: laplace scale=%.2f\n", s)
		h, _, err := o.runPTF(sp, models.KindNGCF, func(c *fed.Config) {
			c.Privacy.Defense = privacy.DefenseLDP
			c.Privacy.LaplaceScale = s
		})
		if err != nil {
			return res, err
		}
		res.LaplacePoints = append(res.LaplacePoints, SweepPoint{
			Label: fmt.Sprintf("b=%.2f", s), NDCG: h.Final.NDCG, F1: lateRoundAttackF1(h),
		})
	}
	return res, nil
}

// Print renders both frontiers.
func (r AblationNoiseResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Ablation: swap vs Laplace privacy/utility frontier (NGCF server)")
	fmt.Fprint(w, "  swap   :")
	for _, p := range r.SwapPoints {
		fmt.Fprintf(w, "  %s N=%.4f F1=%.3f", p.Label, p.NDCG, p.F1)
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, "  laplace:")
	for _, p := range r.LaplacePoints {
		fmt.Fprintf(w, "  %s N=%.4f F1=%.3f", p.Label, p.NDCG, p.F1)
	}
	fmt.Fprintln(w)
}
