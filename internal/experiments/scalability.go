package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"runtime"
	"time"

	"ptffedrec/internal/comm"
	"ptffedrec/internal/coord"
	"ptffedrec/internal/data"
	"ptffedrec/internal/eval"
	"ptffedrec/internal/fed"
	"ptffedrec/internal/models"
)

// ScalabilityRow records one worker count's timings on the large-scale
// profile. Speedups are relative to the workers=1 row. The per-phase columns
// break the round down so speedup is attributable: client training rides
// Workers, server SGD rides TrainWorkers, the graph/CSR build rides both.
type ScalabilityRow struct {
	Workers      int     `json:"workers"`
	RoundSecs    float64 `json:"round_secs"`     // mean wall-clock per global round
	RoundsPerSec float64 `json:"rounds_per_sec"` // 1/RoundSecs
	RoundSpeedup float64 `json:"round_speedup"`  // vs workers=1
	EvalSecs     float64 `json:"eval_secs"`      // one full eval pass (batched engine; == eval_users_batched_secs)
	EvalSpeedup  float64 `json:"eval_speedup"`   // vs workers=1
	Recall       float64 `json:"recall"`         // must match across rows
	NDCG         float64 `json:"ndcg"`           // must match across rows

	// Batched-vs-scalar comparison at this worker count: the same evaluation
	// forced through the per-item scoring path (the pre-BlockScorer hot
	// loop), and the speedup the matrix-kernel engine buys over it. The two
	// runs must produce bitwise-identical metrics.
	EvalScalarSecs     float64 `json:"eval_scalar_secs"`
	BatchedEvalSpeedup float64 `json:"batched_eval_speedup"`

	// Select-vs-sort comparison at this worker count: the same evaluation
	// with ranking forced through the legacy sort path (full score vector,
	// stable sort of an O(NumItems) index permutation per user) against the
	// fused streaming bounded-heap selection engine, and the speedup the
	// engine buys. Metrics must again be bitwise-identical.
	EvalSortSecs  float64 `json:"eval_sort_secs"`
	SelectSpeedup float64 `json:"select_speedup"`

	// Multi-user-vs-single-user eval engine comparison at this worker count,
	// measured as paired alternating passes on the trained model (min of
	// three per engine, GC before each, so one collection can't bias either
	// side): the batched engine scores 16-user groups through multi-user
	// logit GEMM calls with logit-domain selection; the single-user engine
	// runs one fused probability-domain selection per user. The two runs
	// must produce bitwise-identical metrics; the speedup is what
	// user-batching buys.
	EvalUsersBatchedSecs float64 `json:"eval_users_batched_secs"`
	EvalUsersScalarSecs  float64 `json:"eval_users_scalar_secs"`
	EvalUsersSpeedup     float64 `json:"eval_users_speedup"`

	// Per-phase mean seconds per round.
	ClientSecs      float64 `json:"client_secs"`
	AbsorbSecs      float64 `json:"absorb_secs"`
	GraphSecs       float64 `json:"graph_secs"`
	ServerTrainSecs float64 `json:"server_train_secs"`
	DisperseSecs    float64 `json:"disperse_secs"`

	// Batched-vs-scalar dispersal comparison at this worker count, measured
	// by fed.Trainer.BenchDispersal: repeated dispersal-only sweeps over
	// every client on the frozen trained model, once through the round-scoped
	// multi-user batched engine (shared eligibility cache + multi-user GEMM
	// scoring) and once through the per-client scalar engine. The engines'
	// outputs must be identical; the speedup is what the batched engine buys.
	// Complementarily, the same training re-run end-to-end under
	// Config.DisperseScalar must reproduce the history bit for bit.
	DisperseBatchedSecs float64 `json:"disperse_batched_secs"`
	DisperseScalarSecs  float64 `json:"disperse_scalar_secs"`
	DisperseSpeedup     float64 `json:"disperse_speedup"`

	// Speedups vs workers=1 for the two server-side hot paths the gradient
	// workspace engine and the parallel CSR build attack.
	ServerTrainSpeedup float64 `json:"server_train_speedup"`
	GraphSpeedup       float64 `json:"graph_speedup"`

	// Incremental-vs-full graph engine comparison at this worker count: the
	// same training re-run under Config.FullGraphRebuild (every round
	// re-selects all stored users' edges and rebuilds the adjacency from
	// triplets) against the default incremental engine (dirty users only,
	// maintained rows/degrees/postings), as mean graph-phase seconds per
	// round. The re-run's history must match the incremental run bit for bit
	// (folded into Deterministic); the speedup is what dirty-delta
	// maintenance buys. GraphEngineBytes is the incremental engine's retained
	// footprint (rows, postings, degree vectors, staging scratch).
	GraphIncrSecs       float64 `json:"graph_incr_secs"`
	GraphFullSecs       float64 `json:"graph_full_secs"`
	GraphRebuildSpeedup float64 `json:"graph_rebuild_speedup"`
	GraphEngineBytes    int64   `json:"graph_engine_bytes"`

	// Memory accounting for this row's trainer. PeakHeapBytes is the largest
	// live heap observed at phase boundaries (post-GC samples, so it tracks
	// retained state, not allocator slack). The store/cache columns are exact
	// footprints from the components' own accounting: the server's flat
	// upload store (slab + index), its bounded eligibility LRU, and the
	// evaluator's packed candidate cache. BytesPerUser is the per-user
	// server-side state — (upload store + eligibility cache) / users — the
	// figure the flat-memory design holds flat as users grow.
	PeakHeapBytes    uint64  `json:"peak_heap_bytes"`
	UploadStoreBytes int64   `json:"upload_store_bytes"`
	EligCacheBytes   int64   `json:"elig_cache_bytes"`
	CandCacheBytes   int64   `json:"cand_cache_bytes"`
	BytesPerUser     float64 `json:"bytes_per_user"`
}

// ScalabilityResult is the scalability experiment's report: the parallel
// round engine and evaluator timed at increasing worker counts on the
// large-scale profile, with a determinism cross-check.
type ScalabilityResult struct {
	Profile       string           `json:"profile"`
	Users         int              `json:"users"`
	Items         int              `json:"items"`
	Rounds        int              `json:"rounds"`
	GOMAXPROCS    int              `json:"gomaxprocs"`
	Rows          []ScalabilityRow `json:"rows"`
	Deterministic bool             `json:"deterministic"` // identical history+metrics across worker counts and scoring paths

	// Overlap compares the round's dispersal+eval tail executed sequentially
	// (RunRound then EvaluateServer) against the concurrent RunRoundEval
	// path, at the sweep's max worker count, summed over the run's rounds.
	OverlapSequentialSecs float64 `json:"overlap_sequential_secs"`
	OverlapConcurrentSecs float64 `json:"overlap_concurrent_secs"`
	OverlapSpeedup        float64 `json:"overlap_speedup"`

	// Cross-round pipelining: the same training at the sweep's max worker
	// count under partial participation (fraction 0.3, so round r+1 has
	// dependency-free clients to overlap), once through the serialized
	// RunRound loop and once through the dependency-gated double-buffered
	// pipeline, as paired alternating full runs (min of three per schedule,
	// a forced GC before each) so allocator drift lands on neither side.
	// The two histories must match bit for bit (folded into Deterministic);
	// the speedup is what overlapping round r+1's free client wave with
	// round r's server phases buys. On a single-core host the pipeline's
	// overlap gate trains the free wave inline, so parity (~1x) is the
	// honest expected result there.
	SeqRoundSecs    float64 `json:"seq_round_secs"`
	PipeRoundSecs   float64 `json:"pipe_round_secs"`
	PipelineSpeedup float64 `json:"pipeline_speedup"`

	// Networked round engine over a loopback transport: the same training
	// driven through coord.Coordinator plus two coord.Participants speaking
	// the wire protocol over real HTTP on a loopback listener, at the sweep's
	// max worker count. The round history must match the in-process rows bit
	// for bit (folded into Deterministic). NetRoundSecs is mean wall-clock
	// per networked round on the serialized schedule (SequentialRounds: the
	// announce/wait/close/fetch baseline; the run's final evaluation pass,
	// ~eval_secs, is amortised into it); NetPipeRoundSecs is the same run
	// under the pipelined coordinator — next round's cohort announced during
	// the straggler window, dispersals and round-ends pushed into the poll
	// log. NetWireBytes is total frame bytes crossing the transport both
	// ways on the sequential run. Gated to small profiles — the loopback
	// run issues one HTTP request per upload.
	NetRoundSecs     float64 `json:"net_round_secs,omitempty"`
	NetPipeRoundSecs float64 `json:"net_pipe_round_secs,omitempty"`
	NetWireBytes     int64   `json:"net_wire_bytes,omitempty"`

	// MemoryProfile marks the huge-profile mode (NumUsers ≥
	// memoryProfileUsers): a streamed split, lazy clients, sampled
	// participation and no evaluation — a memory-scalability measurement
	// with a single row, rather than a worker sweep. MapUploadStoreBytes is
	// the retained map baseline's store footprint after the same training;
	// the flat-vs-map round histories are cross-checked into Deterministic.
	MemoryProfile       bool  `json:"memory_profile,omitempty"`
	MapUploadStoreBytes int64 `json:"map_upload_store_bytes,omitempty"`
}

// memoryProfileUsers is the user count at which RunScalability switches to
// the memory-profile mode: past it, materialising the dataset, eager
// clients, or a full candidate cache (users × items) would dominate — or
// exceed — the very footprint being measured.
const memoryProfileUsers = 200_000

// heapSampler tracks the largest live heap seen at sampling points. Samples
// land right after forced GCs or phase boundaries, so the peak reflects
// retained state rather than transient allocator slack.
type heapSampler struct {
	peak uint64
	ms   runtime.MemStats
}

func (h *heapSampler) sample() {
	runtime.ReadMemStats(&h.ms)
	if h.ms.HeapAlloc > h.peak {
		h.peak = h.ms.HeapAlloc
	}
}

// scalabilityWorkerCounts returns the worker counts to sweep: doubling steps
// up to GOMAXPROCS, always starting at 1 and, when the host is single-core,
// still including 2 so the report exercises worker-count invariance.
func scalabilityWorkerCounts() []int {
	maxProcs := runtime.GOMAXPROCS(0)
	counts := []int{1}
	for w := 2; w <= maxProcs; w *= 2 {
		counts = append(counts, w)
	}
	if counts[len(counts)-1] != maxProcs && maxProcs > 1 {
		counts = append(counts, maxProcs)
	}
	if maxProcs == 1 {
		counts = append(counts, 2)
	}
	return counts
}

// RunScalability times the parallel round engine and the parallel evaluator
// at increasing worker counts on the large-scale profile (50k users at full
// scale). Every sweep point re-runs the same seeded training, so the rows
// double as a determinism check: Recall/NDCG and the per-round history must
// be identical for every worker count.
func RunScalability(o Options) (*ScalabilityResult, error) {
	p := data.LargeScaleSmall
	if o.Scale == ScaleFull {
		p = data.LargeScale
	}
	if len(o.ProfilesOverride) > 0 {
		p = o.ProfilesOverride[0]
	}
	if p.NumUsers >= memoryProfileUsers {
		return runScalabilityMemory(o, p)
	}
	sp := o.split(p)

	// MF clients keep per-client state tiny (lazy embedding rows only), which
	// is what makes tens of thousands of in-process clients feasible. The
	// server runs LightGCN so the sweep exercises every parallel server path:
	// the per-round graph/CSR rebuild, the sharded SpMM propagation, and the
	// gradient workspace engine. A large server batch keeps the propagation
	// count per round bounded (one forward cache per optimizer step).
	cfg := fed.DefaultConfig(models.KindLightGCN)
	cfg.ClientModel = models.KindMF
	cfg.Seed = o.Seed
	cfg.Dim = 16
	cfg.Rounds = 3
	cfg.ClientEpochs = 1
	cfg.ServerEpochs = 1
	cfg.ClientBatch = 32
	cfg.ServerBatch = 8192
	if o.Quick {
		cfg.Rounds = 2
	}
	if o.Scale == ScaleFull {
		// 50k clients per round would dominate the sweep; a 10% sample per
		// round keeps full-scale sweeps tractable while every client still
		// exists (the evaluator always covers all 50k users).
		cfg.ClientFraction = 0.1
	}

	res := &ScalabilityResult{
		Profile:       p.Name,
		Users:         sp.NumUsers,
		Items:         sp.NumItems,
		Rounds:        cfg.Rounds,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Deterministic: true,
	}

	// One candidate cache serves every trainer and every timed pass: it
	// depends only on the split, constant across the sweep, so no timed
	// region ever pays the one-off cache construction and no trainer holds a
	// duplicate copy.
	evaluator := eval.NewEvaluator(sp)

	// Untimed warmup: one round + eval on a throwaway trainer, so the timed
	// sweep doesn't charge the first row for heap growth and page-cache
	// warmup (visible as a large workers=1 outlier otherwise).
	{
		wcfg := cfg
		wcfg.Rounds = 1
		warm, err := fed.NewTrainer(sp, wcfg)
		if err != nil {
			return nil, fmt.Errorf("scalability: %w", err)
		}
		warm.ShareEvaluator(evaluator)
		warm.RunRound(0)
		warm.EvaluateServer()
	}

	var refRounds []fed.RoundStats
	var refEval eval.Result
	for _, workers := range scalabilityWorkerCounts() {
		o.logf("scalability: workers=%d\n", workers)
		wcfg := cfg
		wcfg.Workers = workers
		wcfg.EvalWorkers = workers
		wcfg.TrainWorkers = workers
		tr, err := fed.NewTrainer(sp, wcfg)
		if err != nil {
			return nil, fmt.Errorf("scalability: %w", err)
		}
		// Time the round engine and the evaluator separately so the report
		// attributes speedup to the right path. A forced GC before each timed
		// segment keeps one segment's garbage from being collected on a later
		// segment's clock — the paired engine comparisons below depend on it.
		runtime.GC()
		var hs heapSampler
		rounds := make([]fed.RoundStats, 0, wcfg.Rounds)
		start := time.Now()
		for round := 0; round < wcfg.Rounds; round++ {
			rounds = append(rounds, tr.RunRound(round))
		}
		trainSecs := time.Since(start).Seconds()
		hs.sample()
		phases := tr.PhaseSeconds()

		// The eval engines head to head on the trained state: the multi-user
		// batched logit engine against the retained single-user engine, as
		// paired alternating passes — min of three per engine, a forced GC
		// before each pass — so allocator noise lands on neither side
		// systematically. Outputs must be bitwise-identical. The batched min
		// doubles as the row's primary eval timing: a single unpaired pass
		// drifts with the process's allocator state enough to fake a
		// worker-scaling regression on single-core hosts.
		var ev eval.Result
		evalUsersBatchedSecs, evalUsersScalarSecs := math.Inf(1), math.Inf(1)
		for g := 0; g < 3; g++ {
			runtime.GC()
			start = time.Now()
			evBatched := evaluator.Rank(tr.Server().Model(), wcfg.EvalK, workers)
			if t := time.Since(start).Seconds(); t < evalUsersBatchedSecs {
				evalUsersBatchedSecs = t
			}
			runtime.GC()
			evaluator.SingleUser = true
			start = time.Now()
			evSingle := evaluator.Rank(tr.Server().Model(), wcfg.EvalK, workers)
			evaluator.SingleUser = false
			if t := time.Since(start).Seconds(); t < evalUsersScalarSecs {
				evalUsersScalarSecs = t
			}
			if g == 0 {
				ev = evBatched
			}
			if evBatched != ev || evSingle != ev {
				res.Deterministic = false
			}
		}
		evalSecs := evalUsersBatchedSecs

		// The same evaluation through the per-item scoring path: the gap to
		// evalSecs is what the batched BlockScorer engine buys.
		start = time.Now()
		evScalar := evaluator.Rank(scalarScorer{tr.Server().Model()}, wcfg.EvalK, workers)
		evalScalarSecs := time.Since(start).Seconds()
		if evScalar != ev {
			res.Deterministic = false
		}

		// And with ranking forced through the legacy full-sort selection: the
		// gap to evalSecs is what the fused top-K selection engine buys.
		evaluator.SortSelect = true
		start = time.Now()
		evSort := evaluator.Rank(tr.Server().Model(), wcfg.EvalK, workers)
		evalSortSecs := time.Since(start).Seconds()
		evaluator.SortSelect = false
		if evSort != ev {
			res.Deterministic = false
		}

		// The dispersal engines head to head on the trained state: repeated
		// dispersal-only sweeps keep the paired comparison off the round
		// timers' noise floor, and the engines' outputs must be identical.
		disperseBatchedSecs, disperseScalarSecs, disperseIdentical := tr.BenchDispersal(5)
		if !disperseIdentical {
			res.Deterministic = false
		}

		// The graph engines head to head, end to end: the same training re-run
		// under Config.FullGraphRebuild must reproduce the round history bit
		// for bit, and its graph phase is the full-rebuild baseline the
		// graph-spdup column measures the incremental engine against. At this
		// sweep's dense per-round participation the incremental engine
		// restages most of the store, so near-parity is the expected sweep
		// result; the partial-participation memory profile is where the
		// dirty-delta path pays off.
		fcfg := wcfg
		fcfg.FullGraphRebuild = true
		ftr, err := fed.NewTrainer(sp, fcfg)
		if err != nil {
			return nil, fmt.Errorf("scalability: %w", err)
		}
		fullRounds := make([]fed.RoundStats, 0, fcfg.Rounds)
		for round := 0; round < fcfg.Rounds; round++ {
			fullRounds = append(fullRounds, ftr.RunRound(round))
		}
		if !roundsEqual(rounds, fullRounds) {
			res.Deterministic = false
		}
		graphFullSecs := ftr.PhaseSeconds().GraphBuild

		// And end-to-end, once per sweep (worker-count invariance is already
		// pinned by the refRounds comparison below, so re-training per row
		// would only double the sweep's wall-clock): the same training forced
		// through the per-client scalar dispersal engine must reproduce the
		// history bit for bit.
		if len(res.Rows) == 0 {
			scfg := wcfg
			scfg.DisperseScalar = true
			scfg.EvalSingleUser = true
			// The baseline trainer also runs the retained map upload store and
			// the full graph rebuild, so the committed bench doubles as an
			// end-to-end pin of every baseline knob at once.
			scfg.MapUploadStore = true
			scfg.FullGraphRebuild = true
			str, err := fed.NewTrainer(sp, scfg)
			if err != nil {
				return nil, fmt.Errorf("scalability: %w", err)
			}
			scalarRounds := make([]fed.RoundStats, 0, scfg.Rounds)
			for round := 0; round < scfg.Rounds; round++ {
				scalarRounds = append(scalarRounds, str.RunRound(round))
			}
			if !roundsEqual(rounds, scalarRounds) {
				res.Deterministic = false
			}
			// The trained models are bit-identical, so the scalar trainer's
			// own evaluation — running single-user via the Config.EvalSingleUser
			// knob — must reproduce the batched metrics exactly.
			if se := str.EvaluateServer(); se != ev {
				res.Deterministic = false
			}
		}

		perRound := 1 / float64(cfg.Rounds)
		row := ScalabilityRow{
			Workers:              workers,
			RoundSecs:            trainSecs * perRound,
			EvalSecs:             evalSecs,
			EvalScalarSecs:       evalScalarSecs,
			EvalSortSecs:         evalSortSecs,
			Recall:               ev.Recall,
			NDCG:                 ev.NDCG,
			ClientSecs:           phases.ClientTrain * perRound,
			AbsorbSecs:           phases.Absorb * perRound,
			GraphSecs:            phases.GraphBuild * perRound,
			ServerTrainSecs:      phases.ServerTrain * perRound,
			DisperseSecs:         phases.Disperse * perRound,
			DisperseBatchedSecs:  disperseBatchedSecs,
			DisperseScalarSecs:   disperseScalarSecs,
			EvalUsersBatchedSecs: evalUsersBatchedSecs,
			EvalUsersScalarSecs:  evalUsersScalarSecs,
			GraphIncrSecs:        phases.GraphBuild * perRound,
			GraphFullSecs:        graphFullSecs * perRound,
			GraphEngineBytes:     tr.Server().GraphEngineBytes(),
		}
		if row.GraphIncrSecs > 0 {
			row.GraphRebuildSpeedup = row.GraphFullSecs / row.GraphIncrSecs
		}
		if row.RoundSecs > 0 {
			row.RoundsPerSec = 1 / row.RoundSecs
		}
		if row.EvalSecs > 0 {
			row.BatchedEvalSpeedup = row.EvalScalarSecs / row.EvalSecs
			row.SelectSpeedup = row.EvalSortSecs / row.EvalSecs
		}
		if row.DisperseBatchedSecs > 0 {
			row.DisperseSpeedup = row.DisperseScalarSecs / row.DisperseBatchedSecs
		}
		if row.EvalUsersBatchedSecs > 0 {
			row.EvalUsersSpeedup = row.EvalUsersScalarSecs / row.EvalUsersBatchedSecs
		}
		hs.sample()
		row.PeakHeapBytes = hs.peak
		row.UploadStoreBytes = tr.Server().UploadStoreBytes()
		row.EligCacheBytes = tr.Server().EligCacheBytes()
		row.CandCacheBytes = evaluator.CacheBytes()
		if sp.NumUsers > 0 {
			row.BytesPerUser = float64(row.UploadStoreBytes+row.EligCacheBytes) / float64(sp.NumUsers)
		}
		if len(res.Rows) == 0 {
			refRounds, refEval = rounds, ev
			row.RoundSpeedup, row.EvalSpeedup = 1, 1
			row.ServerTrainSpeedup, row.GraphSpeedup = 1, 1
		} else {
			base := res.Rows[0]
			if row.RoundSecs > 0 {
				row.RoundSpeedup = base.RoundSecs / row.RoundSecs
			}
			if row.EvalSecs > 0 {
				row.EvalSpeedup = base.EvalSecs / row.EvalSecs
			}
			if row.ServerTrainSecs > 0 {
				row.ServerTrainSpeedup = base.ServerTrainSecs / row.ServerTrainSecs
			}
			if row.GraphSecs > 0 {
				row.GraphSpeedup = base.GraphSecs / row.GraphSecs
			}
			if ev != refEval || !roundsEqual(refRounds, rounds) {
				res.Deterministic = false
			}
		}
		res.Rows = append(res.Rows, row)
	}

	// Eval+dispersal overlap: run the same training twice at the sweep's max
	// worker count — once dispersing then evaluating sequentially, once with
	// RunRoundEval overlapping the two — and compare the tails. The traces
	// must stay identical; only wall-clock may differ.
	{
		counts := scalabilityWorkerCounts()
		ocfg := cfg
		ocfg.Workers = counts[len(counts)-1]
		ocfg.EvalWorkers = ocfg.Workers
		ocfg.TrainWorkers = ocfg.Workers
		seqTr, err := fed.NewTrainer(sp, ocfg)
		if err != nil {
			return nil, fmt.Errorf("scalability: %w", err)
		}
		conTr, err := fed.NewTrainer(sp, ocfg)
		if err != nil {
			return nil, fmt.Errorf("scalability: %w", err)
		}
		// Both trainers reuse the sweep's candidate cache, so neither timed
		// tail pays a lazy cache build and no duplicate copy is held.
		seqTr.ShareEvaluator(evaluator)
		conTr.ShareEvaluator(evaluator)
		var seqEvalSecs float64
		for round := 0; round < ocfg.Rounds; round++ {
			seqStats := seqTr.RunRound(round)
			start := time.Now()
			seqEval := seqTr.EvaluateServer()
			seqEvalSecs += time.Since(start).Seconds()
			conStats, conEval := conTr.RunRoundEval(round)
			if seqEval != conEval {
				res.Deterministic = false
			}
			seqStats.Recall, seqStats.NDCG, seqStats.Evaluated = seqEval.Recall, seqEval.NDCG, true
			if seqStats != conStats {
				res.Deterministic = false
			}
		}
		res.OverlapSequentialSecs = seqTr.PhaseSeconds().Disperse + seqEvalSecs
		res.OverlapConcurrentSecs = conTr.PhaseSeconds().DisperseEvalWall
		if res.OverlapConcurrentSecs > 0 {
			res.OverlapSpeedup = res.OverlapSequentialSecs / res.OverlapConcurrentSecs
		}
	}

	// Cross-round pipelining head to head: the serialized RunRound loop
	// against the dependency-gated double-buffered pipeline, at the sweep's
	// max worker count under partial participation (a full-participation
	// round gates every client of round r+1 on round r's dispersals, leaving
	// the pipeline nothing to overlap). Paired alternating full runs, min of
	// three per schedule, a forced GC before each timed run; the histories
	// must match bit for bit.
	{
		counts := scalabilityWorkerCounts()
		pcfg := cfg
		pcfg.Workers = counts[len(counts)-1]
		pcfg.EvalWorkers = pcfg.Workers
		pcfg.TrainWorkers = pcfg.Workers
		pcfg.ClientFraction = 0.3
		pcfg.EvalEvery = 0
		o.logf("scalability: pipeline comparison (workers=%d, fraction=%.2f)\n", pcfg.Workers, pcfg.ClientFraction)
		seqSecs, pipeSecs := math.Inf(1), math.Inf(1)
		var seqRounds []fed.RoundStats
		for g := 0; g < 3; g++ {
			str, err := fed.NewTrainer(sp, pcfg)
			if err != nil {
				return nil, fmt.Errorf("scalability: %w", err)
			}
			runtime.GC()
			start := time.Now()
			rounds := make([]fed.RoundStats, 0, pcfg.Rounds)
			for round := 0; round < pcfg.Rounds; round++ {
				rounds = append(rounds, str.RunRound(round))
			}
			if t := time.Since(start).Seconds(); t < seqSecs {
				seqSecs = t
			}
			ptr, err := fed.NewTrainer(sp, pcfg)
			if err != nil {
				return nil, fmt.Errorf("scalability: %w", err)
			}
			runtime.GC()
			start = time.Now()
			pipeRounds := ptr.RunPipelined()
			if t := time.Since(start).Seconds(); t < pipeSecs {
				pipeSecs = t
			}
			if g == 0 {
				seqRounds = rounds
			}
			if !roundsEqual(seqRounds, rounds) || !roundsEqual(seqRounds, pipeRounds) {
				res.Deterministic = false
			}
		}
		res.SeqRoundSecs = seqSecs / float64(pcfg.Rounds)
		res.PipeRoundSecs = pipeSecs / float64(pcfg.Rounds)
		if res.PipeRoundSecs > 0 {
			res.PipelineSpeedup = res.SeqRoundSecs / res.PipeRoundSecs
		}
	}

	// Networked round engine: the same training once more through the
	// coordinator service and two participants over a loopback HTTP listener,
	// at the sweep's max worker count — first on the serialized schedule
	// (SequentialRounds, the retained baseline), then under the pipelined
	// coordinator. One HTTP request per upload makes this O(users) requests
	// per round, so it is gated to small profiles; both histories must still
	// match the in-process rows bit for bit.
	if sp.NumUsers <= netLoopbackMaxUsers {
		counts := scalabilityWorkerCounts()
		ncfg := cfg
		ncfg.Workers = counts[len(counts)-1]
		ncfg.EvalWorkers = ncfg.Workers
		ncfg.TrainWorkers = ncfg.Workers
		// The sweep rows time bare rounds; keep per-round evaluation out of
		// the networked run too so the histories stay comparable.
		ncfg.EvalEvery = 0
		ncfg.SequentialRounds = true
		o.logf("scalability: networked loopback run (workers=%d, sequential)\n", ncfg.Workers)
		netSecs, netBytes, netRounds, err := runLoopback(sp, ncfg, p, o.Seed, evaluator)
		if err != nil {
			return nil, fmt.Errorf("scalability: loopback: %w", err)
		}
		if !roundsEqual(refRounds, netRounds) {
			res.Deterministic = false
		}
		res.NetRoundSecs = netSecs / float64(ncfg.Rounds)
		res.NetWireBytes = netBytes

		ncfg.SequentialRounds = false
		o.logf("scalability: networked loopback run (workers=%d, pipelined)\n", ncfg.Workers)
		pipeSecs, _, pipeRounds, err := runLoopback(sp, ncfg, p, o.Seed, evaluator)
		if err != nil {
			return nil, fmt.Errorf("scalability: loopback: %w", err)
		}
		if !roundsEqual(refRounds, pipeRounds) {
			res.Deterministic = false
		}
		res.NetPipeRoundSecs = pipeSecs / float64(ncfg.Rounds)
	}
	return res, nil
}

// netLoopbackMaxUsers bounds the profiles the networked loopback measurement
// runs on: past it the O(users) HTTP requests per round would dominate the
// sweep's wall-clock.
const netLoopbackMaxUsers = 10_000

// runLoopback drives one full training run through the networked coordinator
// on a loopback listener with two participants splitting the user universe,
// returning the run's wall-clock seconds, total wire bytes (both directions),
// and the round history for the bitwise cross-check.
func runLoopback(sp *data.Split, cfg fed.Config, p data.Profile, seed uint64, evaluator *eval.Evaluator) (float64, int64, []fed.RoundStats, error) {
	c, err := coord.New(sp, cfg, coord.Options{Profile: p.Name, DataSeed: seed, TestFrac: 0.2})
	if err != nil {
		return 0, 0, nil, err
	}
	c.ShareEvaluator(evaluator)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, 0, nil, err
	}
	srv := &http.Server{Handler: c.Handler()}
	go srv.Serve(ln)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Minute)
	defer cancel()
	base := "http://" + ln.Addr().String()
	half := sp.NumUsers / 2
	errCh := make(chan error, 2)
	for _, r := range [][2]int{{0, half}, {half, sp.NumUsers}} {
		pt, err := coord.Join(base, r[0], r[1], nil)
		if err != nil {
			return 0, 0, nil, err
		}
		go func() { errCh <- pt.Run(ctx) }()
	}
	start := time.Now()
	h, err := c.Run(ctx)
	secs := time.Since(start).Seconds()
	if err != nil {
		return 0, 0, nil, err
	}
	for i := 0; i < 2; i++ {
		if perr := <-errCh; perr != nil {
			return 0, 0, nil, perr
		}
	}
	in, out := c.WireBytes()
	return secs, in + out, h.Rounds, nil
}

// runScalabilityMemory is the huge-profile arm of the scalability experiment:
// a memory-scalability measurement at a user count (Huge1M's million users)
// where the ordinary sweep's materialised dataset, eager clients and full
// candidate cache are off the table. The split streams straight from the
// generator, clients build lazily on first participation, each round samples
// a few thousand participants, and no evaluator exists — so the retained
// state under measurement is exactly the server's per-user structures: the
// flat upload store, the bounded eligibility cache, and the incremental
// graph engine's maintained rows. The same training then re-runs on the
// retained map-based store and again under the full per-round graph rebuild;
// all three round histories must match bit for bit, the two stores'
// footprints are reported side by side, and the graph-incr/graph-full gap is
// the partial-participation payoff of the dirty-delta engine (a few thousand
// participants against a million-user store).
func runScalabilityMemory(o Options, p data.Profile) (*ScalabilityResult, error) {
	var hs heapSampler
	o.logf("scalability: memory profile %s (%d users, streamed split)\n", p.Name, p.NumUsers)
	sp := data.StreamSplit(p, o.Seed, 0.2)
	runtime.GC()
	hs.sample()

	// Same model pairing as the sweep (MF clients under a LightGCN server),
	// with the per-round participant count pinned near the full-scale sweep's
	// (~5k clients) so round cost stays bounded while the store still
	// accumulates fresh users every round.
	cfg := fed.DefaultConfig(models.KindLightGCN)
	cfg.ClientModel = models.KindMF
	cfg.Seed = o.Seed
	cfg.Dim = 16
	cfg.Rounds = 2
	cfg.ClientEpochs = 1
	cfg.ServerEpochs = 1
	cfg.ClientBatch = 32
	cfg.ServerBatch = 8192
	cfg.LazyClients = true
	cfg.Workers = runtime.GOMAXPROCS(0)
	cfg.EvalWorkers = cfg.Workers
	cfg.TrainWorkers = cfg.Workers
	cfg.ClientFraction = 5000 / float64(p.NumUsers)
	if cfg.ClientFraction > 1 {
		cfg.ClientFraction = 1
	}
	if o.Rounds > 0 {
		cfg.Rounds = o.Rounds
	}

	res := &ScalabilityResult{
		Profile:       p.Name,
		Users:         sp.NumUsers,
		Items:         sp.NumItems,
		Rounds:        cfg.Rounds,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Deterministic: true,
		MemoryProfile: true,
	}

	run := func(mapStore, fullRebuild bool) (*fed.Trainer, []fed.RoundStats, error) {
		rcfg := cfg
		rcfg.MapUploadStore = mapStore
		rcfg.FullGraphRebuild = fullRebuild
		tr, err := fed.NewTrainer(sp, rcfg)
		if err != nil {
			return nil, nil, fmt.Errorf("scalability: %w", err)
		}
		rounds := make([]fed.RoundStats, 0, rcfg.Rounds)
		for round := 0; round < rcfg.Rounds; round++ {
			o.logf("scalability: memory profile round %d (map=%v full-graph=%v)\n", round, mapStore, fullRebuild)
			rounds = append(rounds, tr.RunRound(round))
			hs.sample()
		}
		return tr, rounds, nil
	}

	start := time.Now()
	flatTr, flatRounds, err := run(false, false)
	if err != nil {
		return nil, err
	}
	trainSecs := time.Since(start).Seconds()
	phases := flatTr.PhaseSeconds()
	perRound := 1 / float64(cfg.Rounds)
	row := ScalabilityRow{
		Workers:          cfg.Workers,
		RoundSecs:        trainSecs * perRound,
		ClientSecs:       phases.ClientTrain * perRound,
		AbsorbSecs:       phases.Absorb * perRound,
		GraphSecs:        phases.GraphBuild * perRound,
		ServerTrainSecs:  phases.ServerTrain * perRound,
		DisperseSecs:     phases.Disperse * perRound,
		UploadStoreBytes: flatTr.Server().UploadStoreBytes(),
		EligCacheBytes:   flatTr.Server().EligCacheBytes(),
		GraphIncrSecs:    phases.GraphBuild * perRound,
		GraphEngineBytes: flatTr.Server().GraphEngineBytes(),
	}
	if row.RoundSecs > 0 {
		row.RoundsPerSec = 1 / row.RoundSecs
	}
	row.BytesPerUser = float64(row.UploadStoreBytes+row.EligCacheBytes) / float64(sp.NumUsers)

	// Map-store baseline: identical training, retained store implementation.
	mapTr, mapRounds, err := run(true, false)
	if err != nil {
		return nil, err
	}
	if !roundsEqual(flatRounds, mapRounds) {
		res.Deterministic = false
	}
	res.MapUploadStoreBytes = mapTr.Server().UploadStoreBytes()

	// Full-rebuild baseline: identical training, per-round from-scratch graph
	// reconstruction. At a few thousand participants per round against the
	// million-user store, this gap is the incremental engine's headline number.
	fullTr, fullRounds, err := run(false, true)
	if err != nil {
		return nil, err
	}
	if !roundsEqual(flatRounds, fullRounds) {
		res.Deterministic = false
	}
	row.GraphFullSecs = fullTr.PhaseSeconds().GraphBuild * perRound
	if row.GraphIncrSecs > 0 {
		row.GraphRebuildSpeedup = row.GraphFullSecs / row.GraphIncrSecs
	}

	hs.sample()
	row.PeakHeapBytes = hs.peak
	res.Rows = append(res.Rows, row)
	return res, nil
}

// scalarScorer hides a model's BlockScorer so evaluation is forced through
// the per-item scoring path, keeping the warm-up and buffer-reuse extensions
// — the baseline the batched-vs-scalar comparison rows measure against.
type scalarScorer struct {
	m models.Recommender
}

func (s scalarScorer) ScoreItems(u int, items []int) []float64 { return s.m.ScoreItems(u, items) }

func (s scalarScorer) ScoreItemsInto(dst []float64, u int, items []int) []float64 {
	if is, ok := s.m.(models.InplaceScorer); ok {
		return is.ScoreItemsInto(dst, u, items)
	}
	return s.m.ScoreItems(u, items)
}

func (s scalarScorer) WarmScoring() {
	if w, ok := s.m.(models.Warmer); ok {
		w.WarmScoring()
	}
}

// roundsEqual compares two training traces field by field. Bitwise float
// equality is intentional: the round engine promises identical results for
// every worker count.
func roundsEqual(a, b []fed.RoundStats) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Print renders the sweep (or, for huge profiles, the memory profile).
func (r *ScalabilityResult) Print(w io.Writer) {
	if r.MemoryProfile {
		row := r.Rows[0]
		fmt.Fprintf(w, "Scalability (memory profile): %s (%d users × %d items), %d rounds, GOMAXPROCS=%d\n",
			r.Profile, r.Users, r.Items, r.Rounds, r.GOMAXPROCS)
		fmt.Fprintf(w, "  round-secs=%.3f  client=%.3f absorb=%.3f graph=%.3f server-sgd=%.3f disperse=%.3f\n",
			row.RoundSecs, row.ClientSecs, row.AbsorbSecs, row.GraphSecs, row.ServerTrainSecs, row.DisperseSecs)
		fmt.Fprintf(w, "  graph engines: graph-incr=%.3f graph-full=%.3f graph-spdup=%.2fx  engine=%s\n",
			row.GraphIncrSecs, row.GraphFullSecs, row.GraphRebuildSpeedup,
			comm.FormatBytes(float64(row.GraphEngineBytes)))
		fmt.Fprintf(w, "  peak-heap=%s  upload-store=%s  elig-cache=%s  server-state=%.1f bytes/user\n",
			comm.FormatBytes(float64(row.PeakHeapBytes)), comm.FormatBytes(float64(row.UploadStoreBytes)),
			comm.FormatBytes(float64(row.EligCacheBytes)), row.BytesPerUser)
		// At sparse per-round participation the flat store's fixed-stride
		// index (12 B/user) dominates and the map can be smaller; the flat
		// store wins as the uploaded population densifies. Print both sizes
		// without editorialising.
		fmt.Fprintf(w, "  map-baseline store=%s  flat store=%s (index is 12 B/user fixed)\n",
			comm.FormatBytes(float64(r.MapUploadStoreBytes)), comm.FormatBytes(float64(row.UploadStoreBytes)))
		fmt.Fprintf(w, "  flat-vs-map round histories identical: %v\n", r.Deterministic)
		return
	}
	fmt.Fprintf(w, "Scalability: %s (%d users × %d items), %d rounds, GOMAXPROCS=%d\n",
		r.Profile, r.Users, r.Items, r.Rounds, r.GOMAXPROCS)
	fmt.Fprintf(w, "  %-8s %12s %12s %10s %10s %10s %12s %12s %12s %12s\n",
		"workers", "round-secs", "rounds/sec", "round-spdup", "eval-secs", "eval-spdup",
		"eval-scalar", "batch-spdup", "eval-sort", "select-spdup")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-8d %12.3f %12.3f %10.2fx %10.3f %10.2fx %12.3f %11.2fx %12.3f %11.2fx\n",
			row.Workers, row.RoundSecs, row.RoundsPerSec, row.RoundSpeedup, row.EvalSecs, row.EvalSpeedup,
			row.EvalScalarSecs, row.BatchedEvalSpeedup, row.EvalSortSecs, row.SelectSpeedup)
	}
	fmt.Fprintln(w, "  eval engines (secs/pass, min of 3 paired passes):")
	fmt.Fprintf(w, "  %-8s %18s %17s %16s\n",
		"workers", "eval-users-batched", "eval-users-scalar", "eval-users-spdup")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-8d %18.3f %17.3f %15.2fx\n",
			row.Workers, row.EvalUsersBatchedSecs, row.EvalUsersScalarSecs, row.EvalUsersSpeedup)
	}
	fmt.Fprintln(w, "  per-phase (secs/round) + dispersal engine sweeps (secs/sweep):")
	fmt.Fprintf(w, "  %-8s %10s %10s %10s %12s %10s %15s %15s %15s %12s %12s\n",
		"workers", "client", "absorb", "graph", "server-sgd", "disperse",
		"disperse-batch", "disperse-scalar", "disperse-spdup", "sgd-spdup", "graph-spdup")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-8d %10.3f %10.3f %10.3f %12.3f %10.3f %15.3f %15.3f %14.2fx %11.2fx %11.2fx\n",
			row.Workers, row.ClientSecs, row.AbsorbSecs, row.GraphSecs,
			row.ServerTrainSecs, row.DisperseSecs, row.DisperseBatchedSecs, row.DisperseScalarSecs,
			row.DisperseSpeedup, row.ServerTrainSpeedup, row.GraphSpeedup)
	}
	fmt.Fprintln(w, "  graph engines (secs/round, incremental vs full rebuild):")
	fmt.Fprintf(w, "  %-8s %12s %12s %12s %12s\n",
		"workers", "graph-incr", "graph-full", "graph-spdup", "graph-bytes")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-8d %12.3f %12.3f %11.2fx %12s\n",
			row.Workers, row.GraphIncrSecs, row.GraphFullSecs, row.GraphRebuildSpeedup,
			comm.FormatBytes(float64(row.GraphEngineBytes)))
	}
	fmt.Fprintln(w, "  memory (post-run retained state; peak = max live heap at phase boundaries):")
	fmt.Fprintf(w, "  %-8s %12s %13s %12s %12s %16s\n",
		"workers", "peak-heap", "upload-store", "elig-cache", "cand-cache", "server-B/user")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-8d %12s %13s %12s %12s %16.1f\n",
			row.Workers, comm.FormatBytes(float64(row.PeakHeapBytes)),
			comm.FormatBytes(float64(row.UploadStoreBytes)), comm.FormatBytes(float64(row.EligCacheBytes)),
			comm.FormatBytes(float64(row.CandCacheBytes)), row.BytesPerUser)
	}
	fmt.Fprintf(w, "  eval+dispersal tail: sequential %.3fs, overlapped %.3fs (%.2fx)\n",
		r.OverlapSequentialSecs, r.OverlapConcurrentSecs, r.OverlapSpeedup)
	if r.PipeRoundSecs > 0 {
		fmt.Fprintf(w, "  cross-round pipeline (fraction 0.3): sequential %.3f s/round, pipelined %.3f s/round (%.2fx)\n",
			r.SeqRoundSecs, r.PipeRoundSecs, r.PipelineSpeedup)
	}
	if r.NetRoundSecs > 0 {
		fmt.Fprintf(w, "  networked loopback: sequential %.3f s/round, pipelined %.3f s/round, %s on the wire\n",
			r.NetRoundSecs, r.NetPipeRoundSecs, comm.FormatBytes(float64(r.NetWireBytes)))
	}
	fmt.Fprintf(w, "  metrics identical across worker counts and scoring paths: %v (recall@20=%.4f ndcg@20=%.4f)\n",
		r.Deterministic, r.Rows[0].Recall, r.Rows[0].NDCG)
}
