package experiments

import (
	"fmt"
	"io"

	"ptffedrec/internal/comm"
	"ptffedrec/internal/data"
	"ptffedrec/internal/fed"
	"ptffedrec/internal/models"
	"ptffedrec/internal/privacy"
)

// ---------------------------------------------------------------- Table II

// Table2Result holds the dataset statistics rows.
type Table2Result struct {
	Stats []data.Stats
}

// RunTable2 regenerates the dataset statistics table.
func RunTable2(o Options) Table2Result {
	var res Table2Result
	for _, p := range o.Profiles() {
		d := data.Generate(p, o.Seed)
		res.Stats = append(res.Stats, d.Stats())
	}
	return res
}

// Print renders the table.
func (r Table2Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Table II: dataset statistics")
	for _, s := range r.Stats {
		fmt.Fprintf(w, "  %s\n", s)
	}
}

// --------------------------------------------------------------- Table III

// Table3Row is one method's metrics across the datasets.
type Table3Row struct {
	Method string
	Cells  []Cell // aligned with Datasets
}

// Table3Result mirrors the paper's main effectiveness comparison.
type Table3Result struct {
	Datasets []string
	Rows     []Table3Row
}

// RunTable3 trains every centralized, baseline and PTF-FedRec configuration
// on every dataset.
func RunTable3(o Options) (Table3Result, error) {
	res := Table3Result{}
	splits := map[string]*data.Split{}
	for _, p := range o.Profiles() {
		res.Datasets = append(res.Datasets, p.Name)
		splits[p.Name] = o.split(p)
	}

	addRow := func(method string, run func(sp *data.Split) (Cell, error)) error {
		row := Table3Row{Method: method}
		for _, name := range res.Datasets {
			o.logf("table3: %s / %s\n", method, name)
			c, err := run(splits[name])
			if err != nil {
				return fmt.Errorf("table3 %s on %s: %w", method, name, err)
			}
			row.Cells = append(row.Cells, c)
		}
		res.Rows = append(res.Rows, row)
		return nil
	}

	for _, kind := range []models.Kind{models.KindNeuMF, models.KindNGCF, models.KindLightGCN} {
		kind := kind
		if err := addRow("Central-"+string(kind), func(sp *data.Split) (Cell, error) {
			r, err := o.runCentral(sp, kind)
			return Cell{r.Recall, r.NDCG}, err
		}); err != nil {
			return res, err
		}
	}
	for _, b := range []string{"FCF", "FedMF", "MetaMF"} {
		b := b
		if err := addRow(b, func(sp *data.Split) (Cell, error) {
			r, _, err := o.runBaseline(sp, b)
			return Cell{r.Recall, r.NDCG}, err
		}); err != nil {
			return res, err
		}
	}
	for _, kind := range []models.Kind{models.KindNeuMF, models.KindNGCF, models.KindLightGCN} {
		kind := kind
		if err := addRow("PTF-FedRec("+string(kind)+")", func(sp *data.Split) (Cell, error) {
			h, _, err := o.runPTF(sp, kind, nil)
			if err != nil {
				return Cell{}, err
			}
			return Cell{h.Final.Recall, h.Final.NDCG}, nil
		}); err != nil {
			return res, err
		}
	}
	return res, nil
}

// Print renders the table in the paper's layout.
func (r Table3Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Table III: recommendation performance (Recall@20 / NDCG@20)")
	fmt.Fprintf(w, "  %-24s", "method")
	for _, d := range r.Datasets {
		fmt.Fprintf(w, " | %-17s", d)
	}
	fmt.Fprintln(w)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-24s", row.Method)
		for _, c := range row.Cells {
			fmt.Fprintf(w, " | %.4f / %.4f ", c.Recall, c.NDCG)
		}
		fmt.Fprintln(w)
	}
}

// ---------------------------------------------------------------- Table IV

// Table4Row is one method's average per-client per-round bytes per dataset.
type Table4Row struct {
	Method string
	Bytes  []float64
}

// Table4Result mirrors the communication-cost comparison.
type Table4Result struct {
	Datasets []string
	Rows     []Table4Row
}

// RunTable4 measures communication for the three baselines and PTF-FedRec.
// PTF-FedRec's costs are identical across server models (only predictions
// travel), so a single row is reported, as in the paper.
func RunTable4(o Options) (Table4Result, error) {
	res := Table4Result{}
	rows := map[string]*Table4Row{}
	for _, m := range []string{"FCF", "FedMF", "MetaMF", "PTF-FedRec"} {
		rows[m] = &Table4Row{Method: m}
	}
	for _, p := range o.Profiles() {
		res.Datasets = append(res.Datasets, p.Name)
		sp := o.split(p)
		for _, b := range []string{"FCF", "FedMF", "MetaMF"} {
			o.logf("table4: %s / %s\n", b, p.Name)
			_, bytes, err := o.runBaseline(sp, b)
			if err != nil {
				return res, fmt.Errorf("table4 %s on %s: %w", b, p.Name, err)
			}
			rows[b].Bytes = append(rows[b].Bytes, bytes)
		}
		o.logf("table4: PTF-FedRec / %s\n", p.Name)
		_, tr, err := o.runPTF(sp, models.KindNeuMF, nil)
		if err != nil {
			return res, fmt.Errorf("table4 ptf on %s: %w", p.Name, err)
		}
		rows["PTF-FedRec"].Bytes = append(rows["PTF-FedRec"].Bytes, tr.Meter().AvgPerClientPerRound())
	}
	for _, m := range []string{"FCF", "FedMF", "MetaMF", "PTF-FedRec"} {
		res.Rows = append(res.Rows, *rows[m])
	}
	return res, nil
}

// Print renders the table.
func (r Table4Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Table IV: average communication cost per client per round")
	fmt.Fprintf(w, "  %-12s", "method")
	for _, d := range r.Datasets {
		fmt.Fprintf(w, " | %-16s", d)
	}
	fmt.Fprintln(w)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-12s", row.Method)
		for _, b := range row.Bytes {
			fmt.Fprintf(w, " | %-16s", comm.FormatBytes(b))
		}
		fmt.Fprintln(w)
	}
}

// ----------------------------------------------------------------- Table V

// Table5Row is one defense's attack F1 and model NDCG per dataset.
type Table5Row struct {
	Defense string
	F1      []float64
	NDCG    []float64
}

// Table5Result mirrors the privacy-mechanism comparison (server: NGCF).
type Table5Result struct {
	Datasets []string
	Rows     []Table5Row
}

// RunTable5 runs PTF-FedRec(NGCF) under each defense and measures both the
// Top Guess Attack and the recommendation quality.
func RunTable5(o Options) (Table5Result, error) {
	res := Table5Result{}
	defenses := []privacy.Defense{
		privacy.DefenseNone, privacy.DefenseLDP,
		privacy.DefenseSampling, privacy.DefenseSamplingSwap,
	}
	splits := map[string]*data.Split{}
	for _, p := range o.Profiles() {
		res.Datasets = append(res.Datasets, p.Name)
		splits[p.Name] = o.split(p)
	}
	for _, d := range defenses {
		row := Table5Row{Defense: string(d)}
		for _, name := range res.Datasets {
			o.logf("table5: %s / %s\n", d, name)
			h, _, err := o.runPTF(splits[name], models.KindNGCF, func(c *fed.Config) {
				c.Privacy.Defense = d
			})
			if err != nil {
				return res, fmt.Errorf("table5 %s on %s: %w", d, name, err)
			}
			// The attack is scored on late-round uploads, once local models
			// actually order positives above negatives.
			row.F1 = append(row.F1, lateRoundAttackF1(h))
			row.NDCG = append(row.NDCG, h.Final.NDCG)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// lateRoundAttackF1 averages the attack over the second half of training.
func lateRoundAttackF1(h *fed.History) float64 {
	if len(h.Rounds) == 0 {
		return 0
	}
	start := len(h.Rounds) / 2
	var sum float64
	for _, rs := range h.Rounds[start:] {
		sum += rs.AttackF1
	}
	return sum / float64(len(h.Rounds)-start)
}

// Print renders the table.
func (r Table5Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Table V: Top Guess Attack F1 (lower = better privacy) and NDCG@20")
	fmt.Fprintf(w, "  %-15s", "defense")
	for _, d := range r.Datasets {
		fmt.Fprintf(w, " | %-17s", d)
	}
	fmt.Fprintln(w)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-15s", row.Defense)
		for i := range row.F1 {
			fmt.Fprintf(w, " | F1=%.3f N=%.4f", row.F1[i], row.NDCG[i])
		}
		fmt.Fprintln(w)
	}
}

// ---------------------------------------------------------------- Table VI

// Table6Result derives the ΔF1/ΔNDCG cost-effectiveness ratios from Table V.
type Table6Result struct {
	Datasets []string
	Rows     []Table6RowT
}

// Table6RowT is one defense's ratio per dataset.
type Table6RowT struct {
	Defense string
	Ratio   []float64
}

// DeriveTable6 computes ΔF1/ΔNDCG against the no-defense row; higher means
// the defense buys more privacy per unit of lost utility.
func DeriveTable6(t5 Table5Result) Table6Result {
	res := Table6Result{Datasets: t5.Datasets}
	var base *Table5Row
	for i := range t5.Rows {
		if t5.Rows[i].Defense == string(privacy.DefenseNone) {
			base = &t5.Rows[i]
		}
	}
	if base == nil {
		return res
	}
	for _, row := range t5.Rows {
		if row.Defense == string(privacy.DefenseNone) {
			continue
		}
		out := Table6RowT{Defense: row.Defense}
		for i := range row.F1 {
			dF1 := base.F1[i] - row.F1[i]
			dN := base.NDCG[i] - row.NDCG[i]
			if dN <= 1e-9 {
				dN = 1e-9 // defense cost ≈ free; report a large ratio
			}
			out.Ratio = append(out.Ratio, dF1/dN)
		}
		res.Rows = append(res.Rows, out)
	}
	return res
}

// Print renders the table.
func (r Table6Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Table VI: defense cost-effectiveness ΔF1/ΔNDCG (higher is better)")
	fmt.Fprintf(w, "  %-15s", "defense")
	for _, d := range r.Datasets {
		fmt.Fprintf(w, " | %-14s", d)
	}
	fmt.Fprintln(w)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-15s", row.Defense)
		for _, v := range row.Ratio {
			fmt.Fprintf(w, " | %-14.1f", v)
		}
		fmt.Fprintln(w)
	}
}

// --------------------------------------------------------------- Table VII

// Table7Result is the D̃ᵢ-construction ablation.
type Table7Result struct {
	Datasets []string
	Rows     []Table3Row // same cell shape as Table III
}

// RunTable7 compares the dispersal strategies (server: NGCF).
func RunTable7(o Options) (Table7Result, error) {
	res := Table7Result{}
	splits := map[string]*data.Split{}
	for _, p := range o.Profiles() {
		res.Datasets = append(res.Datasets, p.Name)
		splits[p.Name] = o.split(p)
	}
	for _, mode := range []fed.DisperseMode{
		fed.DisperseConfHard, fed.DisperseNoHard, fed.DisperseNoConf, fed.DisperseAllRandom,
	} {
		row := Table3Row{Method: string(mode)}
		for _, name := range res.Datasets {
			o.logf("table7: %s / %s\n", mode, name)
			h, _, err := o.runPTF(splits[name], models.KindNGCF, func(c *fed.Config) {
				c.Disperse = mode
			})
			if err != nil {
				return res, fmt.Errorf("table7 %s on %s: %w", mode, name, err)
			}
			row.Cells = append(row.Cells, Cell{h.Final.Recall, h.Final.NDCG})
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Print renders the table.
func (r Table7Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Table VII: D̃ᵢ item-selection ablation (Recall@20 / NDCG@20)")
	fmt.Fprintf(w, "  %-18s", "strategy")
	for _, d := range r.Datasets {
		fmt.Fprintf(w, " | %-17s", d)
	}
	fmt.Fprintln(w)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-18s", row.Method)
		for _, c := range row.Cells {
			fmt.Fprintf(w, " | %.4f / %.4f ", c.Recall, c.NDCG)
		}
		fmt.Fprintln(w)
	}
}

// -------------------------------------------------------------- Table VIII

// Table8Result is the client×server model-combination matrix (NDCG@20) on
// the MovieLens profile.
type Table8Result struct {
	ClientKinds []models.Kind
	ServerKinds []models.Kind
	NDCG        [][]float64 // [client][server]
}

// RunTable8 trains every client/server model combination.
func RunTable8(o Options) (Table8Result, error) {
	kinds := []models.Kind{models.KindNeuMF, models.KindNGCF, models.KindLightGCN}
	res := Table8Result{ClientKinds: kinds, ServerKinds: kinds}
	sp := o.split(o.Profiles()[0]) // MovieLens profile
	for _, ck := range kinds {
		row := make([]float64, 0, len(kinds))
		for _, sk := range kinds {
			o.logf("table8: client=%s server=%s\n", ck, sk)
			h, _, err := o.runPTF(sp, sk, func(c *fed.Config) {
				c.ClientModel = ck
			})
			if err != nil {
				return res, fmt.Errorf("table8 %s/%s: %w", ck, sk, err)
			}
			row = append(row, h.Final.NDCG)
		}
		res.NDCG = append(res.NDCG, row)
	}
	return res, nil
}

// Print renders the matrix.
func (r Table8Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Table VIII: NDCG@20 for client×server model combinations (MovieLens profile)")
	fmt.Fprintf(w, "  %-14s", "client\\server")
	for _, sk := range r.ServerKinds {
		fmt.Fprintf(w, " | %-9s", sk)
	}
	fmt.Fprintln(w)
	for i, ck := range r.ClientKinds {
		fmt.Fprintf(w, "  %-14s", ck)
		for _, v := range r.NDCG[i] {
			fmt.Fprintf(w, " | %-9.4f", v)
		}
		fmt.Fprintln(w)
	}
}
