// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV). Each runner builds the workloads, drives the trainers in
// internal/fed, internal/baselines and internal/central, and returns typed
// results that print in the shape of the corresponding paper table.
//
// Two scales are supported: ScaleSmall runs the calibrated scaled-down
// dataset profiles (minutes on a laptop; the default for benchmarks), and
// ScaleFull runs the paper-sized profiles. The Quick flag additionally
// shortens training for smoke-level runs. Relative orderings — the paper's
// claims — are stable across scales; absolute values are recorded in
// EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"

	"ptffedrec/internal/baselines"
	"ptffedrec/internal/central"
	"ptffedrec/internal/data"
	"ptffedrec/internal/eval"
	"ptffedrec/internal/fed"
	"ptffedrec/internal/models"
)

// Scale selects the dataset profiles.
type Scale string

// Dataset scales.
const (
	ScaleSmall Scale = "small"
	ScaleFull  Scale = "full"
)

// Options configures a whole experiment run.
type Options struct {
	Scale Scale
	Quick bool // shorten training (benchmark smoke runs)
	Seed  uint64
	Out   io.Writer // nil silences progress output

	// ProfilesOverride replaces the scale-selected datasets (tests use the
	// Tiny profile to keep the full grid fast).
	ProfilesOverride []data.Profile

	// Rounds, when positive, overrides the global round count of the
	// memory-profile scalability mode (the huge profiles). Only that mode
	// honours it: the worker-sweep and table experiments keep their tuned
	// round counts so committed benchmarks stay comparable across runs.
	Rounds int
}

// DefaultOptions returns the benchmark-friendly configuration.
func DefaultOptions() Options {
	return Options{Scale: ScaleSmall, Quick: true, Seed: 1}
}

// Profiles returns the three evaluation datasets at the requested scale, in
// the paper's order (MovieLens, Steam, Gowalla).
func (o Options) Profiles() []data.Profile {
	if len(o.ProfilesOverride) > 0 {
		return o.ProfilesOverride
	}
	if o.Scale == ScaleFull {
		return []data.Profile{data.ML100K, data.Steam200K, data.Gowalla}
	}
	return []data.Profile{data.ML100KSmall, data.SteamSmall, data.GowallaSmall}
}

// logf writes progress output if a writer is configured.
func (o Options) logf(format string, args ...any) {
	if o.Out != nil {
		fmt.Fprintf(o.Out, format, args...)
	}
}

// split generates and splits one dataset deterministically. It streams the
// generation — working memory is one user's profile plus the Split itself,
// never the materialised Dataset — and produces output identical to
// Generate+Dataset.Split (pinned by internal/data's stream equality tests).
func (o Options) split(p data.Profile) *data.Split {
	return data.StreamSplit(p, o.Seed, 0.2)
}

// fedConfig returns the PTF-FedRec configuration for this run scale. The
// small profiles have ~6x shorter user profiles than the paper's datasets,
// so batch sizes shrink proportionally to keep the number of optimizer steps
// per round comparable to the paper's setting.
func (o Options) fedConfig(server models.Kind) fed.Config {
	cfg := fed.DefaultConfig(server)
	cfg.Seed = o.Seed
	if o.Scale != ScaleFull {
		cfg.ClientBatch = 16
		cfg.ServerBatch = 256
		cfg.LR = 2e-3
	}
	if o.Quick {
		cfg.Rounds = 6
		cfg.ClientEpochs = 2
		cfg.ServerEpochs = 1
		cfg.Dim = 16
	}
	return cfg
}

// baselineConfig returns the parameter-transmission baseline configuration.
func (o Options) baselineConfig() baselines.Config {
	cfg := baselines.DefaultConfig()
	cfg.Seed = o.Seed
	cfg.LR = 5e-3 // pointwise SGD-style local updates converge slowly at 1e-3
	if o.Quick {
		cfg.Rounds = 6
		cfg.LocalEpochs = 2
		cfg.Dim = 16
	}
	return cfg
}

// centralConfig returns the centralized-training configuration.
func (o Options) centralConfig(kind models.Kind) central.Config {
	cfg := central.DefaultConfig(kind)
	cfg.Seed = o.Seed
	if o.Scale != ScaleFull {
		cfg.BatchSize = 256
		cfg.LR = 2e-3
	}
	if o.Quick {
		cfg.Epochs = 10
		cfg.Dim = 16
	}
	return cfg
}

// runPTF trains PTF-FedRec with the given server model and returns the
// history and trainer.
func (o Options) runPTF(sp *data.Split, server models.Kind, mutate func(*fed.Config)) (*fed.History, *fed.Trainer, error) {
	cfg := o.fedConfig(server)
	if mutate != nil {
		mutate(&cfg)
	}
	tr, err := fed.NewTrainer(sp, cfg)
	if err != nil {
		return nil, nil, err
	}
	h, err := tr.Run()
	if err != nil {
		return nil, nil, err
	}
	return h, tr, nil
}

// runCentral trains a centralized model and evaluates it.
func (o Options) runCentral(sp *data.Split, kind models.Kind) (eval.Result, error) {
	tr, err := central.NewTrainer(sp, o.centralConfig(kind))
	if err != nil {
		return eval.Result{}, err
	}
	tr.Run()
	return tr.Evaluate(o.evalK()), nil
}

func (o Options) evalK() int { return 20 }

// runBaseline constructs, trains and evaluates one federated baseline.
func (o Options) runBaseline(sp *data.Split, name string) (eval.Result, float64, error) {
	cfg := o.baselineConfig()
	var b baselines.FederatedBaseline
	var err error
	switch name {
	case "FCF":
		b, err = baselines.NewFCF(sp, cfg)
	case "FedMF":
		b, err = baselines.NewFedMF(sp, cfg)
	case "MetaMF":
		b, err = baselines.NewMetaMF(sp, cfg)
	default:
		return eval.Result{}, 0, fmt.Errorf("experiments: unknown baseline %q", name)
	}
	if err != nil {
		return eval.Result{}, 0, err
	}
	baselines.Run(b)
	return b.Evaluate(), b.AvgBytesPerClientPerRound(), nil
}

// Cell is one (Recall, NDCG) measurement.
type Cell struct {
	Recall, NDCG float64
}

// ExperimentIDs lists every runnable experiment for the CLI.
var ExperimentIDs = []string{
	"table2", "table3", "table4", "table5", "table6", "table7", "table8",
	"fig3", "fig4", "ablation-servergraph", "ablation-noise", "scalability",
}
