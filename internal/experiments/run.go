package experiments

import (
	"fmt"
	"io"
)

// Run executes one experiment by id and prints its result to w. It is the
// entry point behind `ptfbench -exp <id>` and the root-level benchmarks.
func Run(id string, o Options, w io.Writer) error {
	switch id {
	case "table2":
		RunTable2(o).Print(w)
	case "table3":
		res, err := RunTable3(o)
		if err != nil {
			return err
		}
		res.Print(w)
	case "table4":
		res, err := RunTable4(o)
		if err != nil {
			return err
		}
		res.Print(w)
	case "table5":
		res, err := RunTable5(o)
		if err != nil {
			return err
		}
		res.Print(w)
	case "table6":
		t5, err := RunTable5(o)
		if err != nil {
			return err
		}
		DeriveTable6(t5).Print(w)
	case "table7":
		res, err := RunTable7(o)
		if err != nil {
			return err
		}
		res.Print(w)
	case "table8":
		res, err := RunTable8(o)
		if err != nil {
			return err
		}
		res.Print(w)
	case "fig3":
		res, err := RunFig3(o)
		if err != nil {
			return err
		}
		res.Print(w)
	case "fig4":
		res, err := RunFig4(o)
		if err != nil {
			return err
		}
		res.Print(w)
	case "ablation-servergraph":
		res, err := RunAblationServerGraph(o)
		if err != nil {
			return err
		}
		res.Print(w)
	case "ablation-noise":
		res, err := RunAblationNoise(o)
		if err != nil {
			return err
		}
		res.Print(w)
	default:
		return fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, ExperimentIDs)
	}
	return nil
}
