package experiments

import (
	"fmt"
	"io"
)

// Renderer is implemented by every experiment result: Print writes the
// paper-style table. The concrete types behind it are plain structs, so they
// also serialise directly to JSON (ptfbench -json).
type Renderer interface {
	Print(w io.Writer)
}

// ResultFor executes one experiment by id and returns its typed result.
func ResultFor(id string, o Options) (Renderer, error) {
	switch id {
	case "table2":
		return RunTable2(o), nil
	case "table3":
		return RunTable3(o)
	case "table4":
		return RunTable4(o)
	case "table5":
		return RunTable5(o)
	case "table6":
		t5, err := RunTable5(o)
		if err != nil {
			return nil, err
		}
		return DeriveTable6(t5), nil
	case "table7":
		return RunTable7(o)
	case "table8":
		return RunTable8(o)
	case "fig3":
		return RunFig3(o)
	case "fig4":
		return RunFig4(o)
	case "ablation-servergraph":
		return RunAblationServerGraph(o)
	case "ablation-noise":
		return RunAblationNoise(o)
	case "scalability":
		return RunScalability(o)
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, ExperimentIDs)
	}
}

// Run executes one experiment by id and prints its result to w. It is the
// entry point behind `ptfbench -exp <id>` and the root-level benchmarks.
func Run(id string, o Options, w io.Writer) error {
	res, err := ResultFor(id, o)
	if err != nil {
		return err
	}
	res.Print(w)
	return nil
}
