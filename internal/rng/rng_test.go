package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestDeriveIndependentOfConsumption(t *testing.T) {
	a := New(1)
	a.Float64()
	a.Float64()
	b := New(1)
	if a.Derive("x").Float64() != b.Derive("x").Float64() {
		t.Fatal("Derive depends on parent consumption")
	}
}

func TestDeriveDistinctNames(t *testing.T) {
	s := New(5)
	x := s.Derive("alpha").Float64()
	y := s.Derive("beta").Float64()
	if x == y {
		t.Fatal("distinct names produced identical streams (collision)")
	}
}

func TestDeriveNDistinct(t *testing.T) {
	s := New(9)
	seen := map[float64]bool{}
	for i := 0; i < 50; i++ {
		v := s.DeriveN("client", i).Float64()
		if seen[v] {
			t.Fatalf("DeriveN collision at %d", i)
		}
		seen[v] = true
	}
}

func TestIntRangeBounds(t *testing.T) {
	s := New(3)
	for i := 0; i < 1000; i++ {
		v := s.IntRange(2, 5)
		if v < 2 || v > 5 {
			t.Fatalf("IntRange(2,5) = %d", v)
		}
	}
}

func TestFloat64RangeBounds(t *testing.T) {
	s := New(3)
	for i := 0; i < 1000; i++ {
		v := s.Float64Range(0.1, 1.0)
		if v < 0.1 || v >= 1.0 {
			t.Fatalf("Float64Range = %v", v)
		}
	}
}

func TestSampleIntsDistinct(t *testing.T) {
	s := New(7)
	for _, k := range []int{0, 1, 5, 50, 99, 100, 150} {
		got := s.SampleInts(100, k)
		wantLen := k
		if k > 100 {
			wantLen = 100
		}
		if len(got) != wantLen {
			t.Fatalf("SampleInts(100,%d) len = %d", k, len(got))
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= 100 {
				t.Fatalf("SampleInts out of range: %d", v)
			}
			if seen[v] {
				t.Fatalf("SampleInts duplicate: %d", v)
			}
			seen[v] = true
		}
	}
}

func TestSampleIntsUniformish(t *testing.T) {
	// Every element should be selected roughly equally often.
	s := New(11)
	counts := make([]int, 20)
	const trials = 20000
	for i := 0; i < trials; i++ {
		for _, v := range s.SampleInts(20, 3) {
			counts[v]++
		}
	}
	want := float64(trials) * 3 / 20
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.15 {
			t.Fatalf("element %d drawn %d times, want ≈%v", i, c, want)
		}
	}
}

func TestSampleSlice(t *testing.T) {
	s := New(13)
	xs := []string{"a", "b", "c", "d"}
	got := SampleSlice(s, xs, 2)
	if len(got) != 2 || got[0] == got[1] {
		t.Fatalf("SampleSlice -> %v", got)
	}
}

func TestLaplaceSymmetricZeroMean(t *testing.T) {
	s := New(17)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Laplace(1.0)
	}
	if math.Abs(sum/n) > 0.02 {
		t.Fatalf("Laplace mean = %v, want ≈0", sum/n)
	}
}

func TestLaplaceScale(t *testing.T) {
	// Var(Laplace(b)) = 2b². Check empirically for b = 2.
	s := New(19)
	const n = 200000
	var ss float64
	for i := 0; i < n; i++ {
		v := s.Laplace(2.0)
		ss += v * v
	}
	got := ss / n
	if math.Abs(got-8) > 0.5 {
		t.Fatalf("Laplace(2) variance = %v, want ≈8", got)
	}
}

func TestZipfSkew(t *testing.T) {
	s := New(23)
	z := NewZipf(s, 100, 1.0)
	counts := make([]int, 100)
	for i := 0; i < 50000; i++ {
		counts[z.Draw()]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("Zipf not skewed: head %d vs mid %d", counts[0], counts[50])
	}
	// Head rank should account for roughly 1/H(100) ≈ 19% of mass.
	frac := float64(counts[0]) / 50000
	if frac < 0.12 || frac > 0.28 {
		t.Fatalf("Zipf head mass = %v, want ≈0.19", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		p := New(seed).Perm(30)
		seen := map[int]bool{}
		for _, v := range p {
			if v < 0 || v >= 30 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == 30
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBernoulliRate(t *testing.T) {
	s := New(29)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	if math.Abs(float64(hits)/n-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %v", float64(hits)/n)
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(31)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Exponential(2.0)
	}
	if math.Abs(sum/n-0.5) > 0.02 {
		t.Fatalf("Exp(2) mean = %v, want 0.5", sum/n)
	}
}
