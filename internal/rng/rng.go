// Package rng provides deterministic, splittable random number streams.
//
// Every stochastic component of the system (data generation, negative
// sampling, client selection, the β/γ/λ privacy mechanisms, weight
// initialization) draws from a named stream derived from a single experiment
// seed, so a run is reproducible end-to-end and two components never share a
// stream by accident.
package rng

import (
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
)

// Stream is a deterministic random stream. It wraps math/rand with the
// sampling helpers used across the repository. A Stream is not safe for
// concurrent use; derive one stream per goroutine.
type Stream struct {
	r    *rand.Rand
	seed uint64
}

// New returns a stream seeded with seed.
func New(seed uint64) *Stream {
	return &Stream{r: rand.New(rand.NewSource(int64(seed))), seed: seed}
}

// Derive returns an independent stream keyed by name. Deriving the same name
// from the same parent seed always yields the same stream, regardless of how
// much the parent has been consumed.
func (s *Stream) Derive(name string) *Stream {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return New(s.seed ^ h.Sum64() ^ 0x9e3779b97f4a7c15)
}

// DeriveN returns an independent stream keyed by name and an index, for
// per-client or per-round streams.
func (s *Stream) DeriveN(name string, n int) *Stream {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	x := s.seed ^ h.Sum64() ^ (uint64(n)+1)*0x9e3779b97f4a7c15
	// One round of splitmix64 finalisation so consecutive indices decorrelate.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return New(x)
}

// Float64 returns a uniform value in [0, 1).
func (s *Stream) Float64() float64 { return s.r.Float64() }

// Float64Range returns a uniform value in [lo, hi).
func (s *Stream) Float64Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// Intn returns a uniform value in [0, n).
func (s *Stream) Intn(n int) int { return s.r.Intn(n) }

// IntRange returns a uniform value in [lo, hi] (inclusive).
func (s *Stream) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange hi < lo")
	}
	return lo + s.r.Intn(hi-lo+1)
}

// Bernoulli returns true with probability p.
func (s *Stream) Bernoulli(p float64) bool { return s.r.Float64() < p }

// Normal returns a sample from N(mean, stddev²).
func (s *Stream) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.r.NormFloat64()
}

// Laplace returns a sample from the Laplace distribution with location 0 and
// the given scale (b = sensitivity/ε for local differential privacy).
func (s *Stream) Laplace(scale float64) float64 {
	u := s.r.Float64() - 0.5
	if u >= 0 {
		return -scale * math.Log(1-2*u)
	}
	return scale * math.Log(1+2*u)
}

// Exponential returns a sample from Exp(rate).
func (s *Stream) Exponential(rate float64) float64 {
	return s.r.ExpFloat64() / rate
}

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle randomly permutes n elements using swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// SampleInts returns k distinct values drawn uniformly from [0, n) in random
// order. If k >= n it returns a permutation of all n values.
func (s *Stream) SampleInts(n, k int) []int {
	if k >= n {
		return s.Perm(n)
	}
	// Partial Fisher–Yates over a lazily materialised identity permutation:
	// O(k) memory via map fallback only when k << n.
	if k*4 >= n {
		p := s.Perm(n)
		return p[:k]
	}
	chosen := make(map[int]int, k)
	out := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + s.r.Intn(n-i)
		vj, ok := chosen[j]
		if !ok {
			vj = j
		}
		vi, ok := chosen[i]
		if !ok {
			vi = i
		}
		out[i] = vj
		chosen[j] = vi
	}
	return out
}

// SampleSlice returns k distinct elements of xs drawn uniformly.
func SampleSlice[T any](s *Stream, xs []T, k int) []T {
	idx := s.SampleInts(len(xs), k)
	out := make([]T, len(idx))
	for i, j := range idx {
		out[i] = xs[j]
	}
	return out
}

// Zipf draws values in [0, n) with P(i) ∝ 1/(i+1)^exponent, matching the
// long-tailed item popularity of real recommendation data.
type Zipf struct {
	cdf []float64
	s   *Stream
}

// NewZipf builds a Zipf sampler over n ranks with the given exponent.
func NewZipf(s *Stream, n int, exponent float64) *Zipf {
	cdf := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), exponent)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{cdf: cdf, s: s}
}

// Draw returns one rank in [0, n).
func (z *Zipf) Draw() int {
	u := z.s.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}
