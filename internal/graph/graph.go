// Package graph builds the bipartite user–item interaction graphs consumed by
// the graph recommenders (NGCF, LightGCN).
//
// Nodes are indexed user-first: node u for users 0..U-1, node U+v for items
// 0..V-1. The propagation operator is the symmetric normalized adjacency
// Â = D^{-1/2} (A) D^{-1/2}, optionally with self loops (Â + I) for NGCF's
// self-retaining message.
package graph

import (
	"math"

	"ptffedrec/internal/par"
	"ptffedrec/internal/tensor"
)

// Edge is one user–item interaction with an optional confidence weight.
// PTF-FedRec's server builds its graph from uploaded prediction scores, so
// weights are in (0, 1]; raw interaction graphs use weight 1.
type Edge struct {
	User, Item int
	Weight     float64
}

// Bipartite is a user–item interaction graph.
type Bipartite struct {
	NumUsers, NumItems int
	edges              []Edge
	userDeg, itemDeg   []float64
}

// NewBipartite returns an empty graph over the given universe sizes.
func NewBipartite(numUsers, numItems int) *Bipartite {
	return &Bipartite{
		NumUsers: numUsers,
		NumItems: numItems,
		userDeg:  make([]float64, numUsers),
		itemDeg:  make([]float64, numItems),
	}
}

// AddEdge records an interaction. Duplicate edges accumulate weight.
func (g *Bipartite) AddEdge(user, item int, weight float64) {
	g.edges = append(g.edges, Edge{User: user, Item: item, Weight: weight})
	g.userDeg[user] += weight
	g.itemDeg[item] += weight
}

// NumEdges returns the number of recorded interactions.
func (g *Bipartite) NumEdges() int { return len(g.edges) }

// NumNodes returns the total node count (users + items).
func (g *Bipartite) NumNodes() int { return g.NumUsers + g.NumItems }

// UserDegree returns the (weighted) degree of user u.
func (g *Bipartite) UserDegree(u int) float64 { return g.userDeg[u] }

// ItemDegree returns the (weighted) degree of item v.
func (g *Bipartite) ItemDegree(v int) float64 { return g.itemDeg[v] }

// adjEdgeChunk is the edge-range granularity of the parallel triplet fill. A
// scheduling knob only: every triplet is written to a slot derived from its
// edge index, so the partitioning never affects the result.
const adjEdgeChunk = 4096

// normVal is the symmetric normalization of a single edge weight:
// w / sqrt(du·dv). It is the one place this expression lives — the full
// triplet build and the incremental engine both call it, so their outputs
// are bitwise-equal by construction, not by accident of compilation.
func normVal(w, du, dv float64) float64 {
	return w / math.Sqrt(du*dv)
}

// normalizedTriplets fills the symmetric (edge, mirror) triplet pairs for
// every edge with positive endpoint degrees, sharding the normalisation over
// workers, and compacts out the skipped edges in index order — exactly the
// serial construction's triplet sequence.
func (g *Bipartite) normalizedTriplets(extra, workers int) []tensor.Triplet {
	trips := make([]tensor.Triplet, 2*len(g.edges), 2*len(g.edges)+extra)
	par.ForChunks(len(g.edges), adjEdgeChunk, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := g.edges[i]
			du := g.userDeg[e.User]
			dv := g.itemDeg[e.Item]
			if du <= 0 || dv <= 0 {
				trips[2*i] = tensor.Triplet{Row: -1}
				trips[2*i+1] = tensor.Triplet{Row: -1}
				continue
			}
			w := normVal(e.Weight, du, dv)
			un := e.User
			vn := g.NumUsers + e.Item
			trips[2*i] = tensor.Triplet{Row: un, Col: vn, Val: w}
			trips[2*i+1] = tensor.Triplet{Row: vn, Col: un, Val: w}
		}
	})
	// Compact out skip markers (zero-degree endpoints are rare; the common
	// case moves nothing).
	out := trips[:0]
	for _, t := range trips {
		if t.Row >= 0 {
			out = append(out, t)
		}
	}
	return out
}

// NormalizedAdj returns the symmetric normalized adjacency
// Â = D^{-1/2} A D^{-1/2} over the (users+items) node set. Isolated nodes
// produce empty rows, which simply propagate nothing.
func (g *Bipartite) NormalizedAdj() *tensor.CSR {
	return g.NormalizedAdjPar(1)
}

// NormalizedAdjPar is NormalizedAdj with the triplet construction and CSR row
// bucketing sharded over workers. The matrix is bitwise-identical to the
// serial build for every worker count.
func (g *Bipartite) NormalizedAdjPar(workers int) *tensor.CSR {
	n := g.NumNodes()
	return tensor.NewCSRPar(n, n, g.normalizedTriplets(0, workers), workers)
}

// NormalizedAdjSelf returns Â + I, the self-loop-augmented propagation
// operator NGCF uses for its self-retaining term.
func (g *Bipartite) NormalizedAdjSelf() *tensor.CSR {
	return g.NormalizedAdjSelfPar(1)
}

// NormalizedAdjSelfPar is NormalizedAdjSelf with the same worker-count
// invariance as NormalizedAdjPar.
func (g *Bipartite) NormalizedAdjSelfPar(workers int) *tensor.CSR {
	n := g.NumNodes()
	trips := g.normalizedTriplets(n, workers)
	for i := 0; i < n; i++ {
		trips = append(trips, tensor.Triplet{Row: i, Col: i, Val: 1})
	}
	return tensor.NewCSRPar(n, n, trips, workers)
}

// UserNode returns the node index for user u.
func (g *Bipartite) UserNode(u int) int { return u }

// ItemNode returns the node index for item v.
func (g *Bipartite) ItemNode(v int) int { return g.NumUsers + v }
