package graph

import (
	"math"
	"testing"

	"ptffedrec/internal/tensor"
)

func buildSmall() *Bipartite {
	// 2 users, 3 items. u0-{i0,i1}, u1-{i1,i2}.
	g := NewBipartite(2, 3)
	g.AddEdge(0, 0, 1)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 1, 1)
	g.AddEdge(1, 2, 1)
	return g
}

func TestDegrees(t *testing.T) {
	g := buildSmall()
	if g.UserDegree(0) != 2 || g.UserDegree(1) != 2 {
		t.Fatal("user degrees wrong")
	}
	if g.ItemDegree(0) != 1 || g.ItemDegree(1) != 2 || g.ItemDegree(2) != 1 {
		t.Fatal("item degrees wrong")
	}
	if g.NumEdges() != 4 || g.NumNodes() != 5 {
		t.Fatal("counts wrong")
	}
}

func TestNodeIndexing(t *testing.T) {
	g := buildSmall()
	if g.UserNode(1) != 1 || g.ItemNode(0) != 2 || g.ItemNode(2) != 4 {
		t.Fatal("node indexing wrong")
	}
}

func TestNormalizedAdjSymmetric(t *testing.T) {
	g := buildSmall()
	a := g.NormalizedAdj().Dense()
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if math.Abs(a.At(i, j)-a.At(j, i)) > 1e-12 {
				t.Fatalf("Â not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestNormalizedAdjValues(t *testing.T) {
	g := buildSmall()
	a := g.NormalizedAdj()
	// Edge u0-i1: deg(u0)=2, deg(i1)=2 -> 1/sqrt(4) = 0.5.
	if math.Abs(a.At(0, g.ItemNode(1))-0.5) > 1e-12 {
		t.Fatalf("Â[u0,i1] = %v, want 0.5", a.At(0, g.ItemNode(1)))
	}
	// Edge u0-i0: deg(u0)=2, deg(i0)=1 -> 1/sqrt(2).
	want := 1 / math.Sqrt(2)
	if math.Abs(a.At(0, g.ItemNode(0))-want) > 1e-12 {
		t.Fatalf("Â[u0,i0] = %v, want %v", a.At(0, g.ItemNode(0)), want)
	}
	// No user-user or item-item entries.
	if a.At(0, 1) != 0 || a.At(g.ItemNode(0), g.ItemNode(1)) != 0 {
		t.Fatal("Â has same-side entries")
	}
	// No self loops in the plain operator.
	if a.At(0, 0) != 0 {
		t.Fatal("Â has self loop")
	}
}

func TestNormalizedAdjSelfLoops(t *testing.T) {
	g := buildSmall()
	a := g.NormalizedAdjSelf()
	for i := 0; i < g.NumNodes(); i++ {
		if math.Abs(a.At(i, i)-1) > 1e-12 {
			t.Fatalf("Â+I diagonal at %d = %v", i, a.At(i, i))
		}
	}
	// Off-diagonal structure unchanged.
	if math.Abs(a.At(0, g.ItemNode(1))-0.5) > 1e-12 {
		t.Fatal("Â+I off-diagonal wrong")
	}
}

func TestWeightedEdges(t *testing.T) {
	g := NewBipartite(1, 1)
	g.AddEdge(0, 0, 0.5)
	a := g.NormalizedAdj()
	// deg(u)=0.5, deg(i)=0.5 -> 0.5/sqrt(0.25) = 1.
	if math.Abs(a.At(0, 1)-1) > 1e-12 {
		t.Fatalf("weighted Â = %v, want 1", a.At(0, 1))
	}
}

func TestDuplicateEdgesAccumulate(t *testing.T) {
	g := NewBipartite(1, 1)
	g.AddEdge(0, 0, 1)
	g.AddEdge(0, 0, 1)
	if g.UserDegree(0) != 2 {
		t.Fatal("duplicate edge did not accumulate degree")
	}
	a := g.NormalizedAdj()
	// Both triplets sum: 2 edges of w=1/sqrt(4) each = 1.
	if math.Abs(a.At(0, 1)-1) > 1e-12 {
		t.Fatalf("duplicate edges Â = %v", a.At(0, 1))
	}
}

func TestIsolatedNodesEmptyRows(t *testing.T) {
	g := NewBipartite(2, 2)
	g.AddEdge(0, 0, 1)
	a := g.NormalizedAdj()
	// user 1 and item 1 are isolated: their rows are empty.
	if a.RowNNZ(1) != 0 || a.RowNNZ(g.ItemNode(1)) != 0 {
		t.Fatal("isolated node has entries")
	}
}

func TestPropagationMixesNeighbors(t *testing.T) {
	// One propagation step from a one-hot signal reaches exactly neighbors.
	g := buildSmall()
	a := g.NormalizedAdj()
	x := make([]float64, g.NumNodes())
	x[g.ItemNode(1)] = 1 // signal at item 1
	// y = Â x: users 0 and 1 both connect to item 1.
	y := make([]float64, g.NumNodes())
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			y[i] += a.Val[p] * x[a.ColIdx[p]]
		}
	}
	if y[0] <= 0 || y[1] <= 0 {
		t.Fatal("signal did not reach item 1's neighbors")
	}
	if y[g.ItemNode(0)] != 0 || y[g.ItemNode(2)] != 0 {
		t.Fatal("signal leaked to non-neighbors in one hop")
	}
}

// randomGraph builds a graph big enough to span several parallel chunks,
// including a zero-weight edge cluster that exercises the skip compaction.
func randomGraph(users, items, edges int) *Bipartite {
	g := NewBipartite(users, items)
	state := uint64(12345)
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	// Random edges avoid the last user/item so those stay at exactly zero
	// degree below.
	for i := 0; i < edges; i++ {
		w := 0.05 + float64(next(95))/100
		g.AddEdge(next(users-1), next(items-1), w)
	}
	// An isolated user–item pair whose only edge has weight 0: both endpoint
	// degrees are 0, so the edge hits the skip/compaction path.
	g.AddEdge(users-1, items-1, 0)
	return g
}

// TestNormalizedAdjParMatchesSerial pins the parallel adjacency build's
// bitwise equality with the serial one, for both operators.
func TestNormalizedAdjParMatchesSerial(t *testing.T) {
	g := randomGraph(800, 600, 20000)
	adj := g.NormalizedAdj()
	adjSelf := g.NormalizedAdjSelf()
	for _, workers := range []int{2, 3, 8} {
		p := g.NormalizedAdjPar(workers)
		ps := g.NormalizedAdjSelfPar(workers)
		for _, pair := range []struct {
			name string
			a, b *tensor.CSR
		}{{"adj", adj, p}, {"adj+I", adjSelf, ps}} {
			if pair.a.NNZ() != pair.b.NNZ() {
				t.Fatalf("%s workers=%d: NNZ %d vs %d", pair.name, workers, pair.a.NNZ(), pair.b.NNZ())
			}
			for i := range pair.a.Val {
				if pair.a.Val[i] != pair.b.Val[i] || pair.a.ColIdx[i] != pair.b.ColIdx[i] {
					t.Fatalf("%s workers=%d: entry %d differs", pair.name, workers, i)
				}
			}
			for r := 0; r <= pair.a.Rows; r++ {
				if pair.a.RowPtr[r] != pair.b.RowPtr[r] {
					t.Fatalf("%s workers=%d: RowPtr[%d] differs", pair.name, workers, r)
				}
			}
		}
	}
}
