package graph

import (
	"fmt"
	"sort"

	"ptffedrec/internal/par"
	"ptffedrec/internal/tensor"
)

// Incremental maintains the normalized bipartite adjacency under per-round
// deltas, so a round that changes k users costs O(k users + affected items)
// instead of the O(all users, all edges) full rebuild.
//
// The maintained state mirrors exactly what the full build derives from the
// edge list:
//
//   - userDeg/itemDeg — the weighted degree vectors, recomputed (never
//     adjusted by +=delta) so the float accumulation order matches the full
//     build's AddEdge sequence: user degrees sum a user's edges in fill
//     order; item degrees sum contributions in (user ascending, fill order
//     within user) — the global AddEdge order of the full rebuild.
//   - rowItems/rowVals — each user's CSR row: distinct items ascending with
//     the duplicate-summed normalized value, matching NewCSRPar's stable
//     column sort + left-to-right duplicate summation.
//   - post — per-item postings: every raw edge contribution touching the
//     item in full-build accumulation order, each carrying the weight and
//     the position of its (user,item) group inside the user's row, so a
//     degree change at the item patches the mirrored user-row value in
//     place.
//   - itemRowUsers/itemRowVals — each item's CSR row (users ascending),
//     the mirror of rowVals, kept so adjacency assembly is a pure copy.
//
// Values are computed with the same normVal expression as the full triplet
// build and summed per duplicate group left-to-right, so both adjacency
// variants assembled from this state are bitwise-identical to
// NormalizedAdjPar / NormalizedAdjSelfPar on the equivalent Bipartite — at
// every worker count. The engine requires strictly positive edge weights
// (the full build's zero-degree skip would otherwise make row membership
// data-dependent); Commit panics if a staged weight violates that, and the
// federated server checks first and falls back to the full rebuild instead.
type Incremental struct {
	numUsers, numItems int

	userDeg []float64
	itemDeg []float64

	rowItems [][]int32
	rowVals  [][]float64

	post         [][]incPosting
	itemRowUsers [][]int32
	itemRowVals  [][]float64

	// Staging buffers: the users replaced this round (ascending) with their
	// new edge sets flattened in fill order (stagedOff offsets per user).
	stagedUsers []int32
	stagedOff   []int32
	stagedItems []int32
	stagedW     []float64
	badWeight   bool

	// Commit scratch. itemDelta[v] holds the staged groups landing on item v
	// (users ascending, truncated lazily via the itemGen stamp); affected is
	// the set of items whose degree may change this commit. The generation
	// stamps avoid O(universe) clearing per commit.
	itemDelta [][]incDelta
	affected  []int32
	itemGen   []uint64
	userGen   []uint64
	gen       uint64
}

// incPosting is one raw edge contribution to an item, in full-build
// accumulation order: user ascending, fill order within a user. pos is the
// index of the contribution's (user,item) group in the user's row, so item
// degree changes can patch the mirrored row value in place.
type incPosting struct {
	user int32
	pos  int32
	w    float64
}

// incDelta references one staged (user,item) group: pos is the group's index
// in the user's new row, off/n locate the group's weights (fill order) in the
// staged slab.
type incDelta struct {
	user int32
	pos  int32
	off  int32
	n    int32
}

// NewIncremental returns an empty engine over the given universe. The empty
// state is the full build of an empty store, so the first Commit (which sees
// every stored user as dirty) bootstraps it without a special case.
func NewIncremental(numUsers, numItems int) *Incremental {
	return &Incremental{
		numUsers:     numUsers,
		numItems:     numItems,
		userDeg:      make([]float64, numUsers),
		itemDeg:      make([]float64, numItems),
		rowItems:     make([][]int32, numUsers),
		rowVals:      make([][]float64, numUsers),
		post:         make([][]incPosting, numItems),
		itemRowUsers: make([][]int32, numItems),
		itemRowVals:  make([][]float64, numItems),
		itemDelta:    make([][]incDelta, numItems),
		itemGen:      make([]uint64, numItems),
		userGen:      make([]uint64, numUsers),
		stagedOff:    []int32{0},
	}
}

// NumUsers returns the user-side universe size.
func (inc *Incremental) NumUsers() int { return inc.numUsers }

// NumItems returns the item-side universe size.
func (inc *Incremental) NumItems() int { return inc.numItems }

// Begin resets the staging buffers for a new round of deltas.
func (inc *Incremental) Begin() {
	inc.stagedUsers = inc.stagedUsers[:0]
	inc.stagedOff = append(inc.stagedOff[:0], 0)
	inc.stagedItems = inc.stagedItems[:0]
	inc.stagedW = inc.stagedW[:0]
	inc.badWeight = false
}

// StageUser records user u's complete replacement edge set in fill order
// (items may repeat — duplicates accumulate like AddEdge). Users must be
// staged in ascending order, each at most once; an empty edge set clears the
// user's row. Edge.User is ignored; only Item and Weight are read.
func (inc *Incremental) StageUser(u int, edges []Edge) {
	if u < 0 || u >= inc.numUsers {
		panic(fmt.Sprintf("graph: staged user %d out of range [0,%d)", u, inc.numUsers))
	}
	if n := len(inc.stagedUsers); n > 0 && int(inc.stagedUsers[n-1]) >= u {
		panic("graph: StageUser calls must be strictly ascending by user")
	}
	inc.stagedUsers = append(inc.stagedUsers, int32(u))
	for _, e := range edges {
		if e.Item < 0 || e.Item >= inc.numItems {
			panic(fmt.Sprintf("graph: staged item %d out of range [0,%d)", e.Item, inc.numItems))
		}
		if !(e.Weight > 0) {
			inc.badWeight = true
		}
		inc.stagedItems = append(inc.stagedItems, int32(e.Item))
		inc.stagedW = append(inc.stagedW, e.Weight)
	}
	inc.stagedOff = append(inc.stagedOff, int32(len(inc.stagedItems)))
}

// BadWeight reports whether any staged edge carried a non-positive (or NaN)
// weight. Callers that can fall back to the full rebuild should check this
// before Commit, which panics on the same condition.
func (inc *Incremental) BadWeight() bool { return inc.badWeight }

// itemWSorter stable-sorts a staged (item, weight) span by item, preserving
// fill order within equal items — the order NewCSRPar's stable column sort
// leaves duplicates in.
type itemWSorter struct {
	items []int32
	w     []float64
}

func (s *itemWSorter) Len() int           { return len(s.items) }
func (s *itemWSorter) Less(i, j int) bool { return s.items[i] < s.items[j] }
func (s *itemWSorter) Swap(i, j int) {
	s.items[i], s.items[j] = s.items[j], s.items[i]
	s.w[i], s.w[j] = s.w[j], s.w[i]
}

// incItemChunk is the affected-item granularity of the parallel patch pass.
// Scheduling only: every item's rebuild writes item-local state plus
// disjoint user-row slots, so partitioning never affects the result.
const incItemChunk = 256

// Commit applies the staged replacements. Three passes:
//
//  1. Per staged user (parallel, disjoint writes): recompute the user degree
//     as the fill-order sum, then stable-sort the span by item.
//  2. Serial sweep (users ascending): stamp staged users, collect the
//     affected-item set (old row ∪ new row of every staged user — only these
//     items' degrees can change), install the new row columns, and record
//     each staged group on its item (ascending-user order by construction).
//  3. Per affected item (parallel): splice the postings (drop staged users'
//     old contributions, merge in their new groups by user), recompute the
//     item degree as the ordered postings sum, and recompute every group
//     value at the item — clean users' mirrored row entries are patched in
//     place through the stored group position.
//
// Only slots owned by the item (or by a group that exactly one item owns)
// are written in pass 3, so the parallel pass is race-free and the result is
// identical for every worker count.
func (inc *Incremental) Commit(workers int) {
	if inc.badWeight {
		panic("graph: Incremental requires strictly positive edge weights; callers must check BadWeight and fall back to a full rebuild")
	}
	workers = par.Workers(workers)
	nStaged := len(inc.stagedUsers)
	inc.gen++
	gen := inc.gen
	inc.affected = inc.affected[:0]
	if nStaged == 0 {
		return
	}

	// Pass 1: degrees + span sorts, parallel over staged users.
	degSort := func(lo, hi int) {
		var s itemWSorter
		for k := lo; k < hi; k++ {
			a, b := inc.stagedOff[k], inc.stagedOff[k+1]
			d := 0.0
			for _, w := range inc.stagedW[a:b] {
				d += w
			}
			inc.userDeg[inc.stagedUsers[k]] = d
			s.items = inc.stagedItems[a:b]
			s.w = inc.stagedW[a:b]
			sort.Stable(&s)
		}
	}
	if workers <= 1 || nStaged < 2*incItemChunk {
		degSort(0, nStaged)
	} else {
		chunk := (nStaged + workers - 1) / workers
		par.ForChunks(nStaged, chunk, workers, degSort)
	}

	// Pass 2: affected set, new row columns, per-item staged groups.
	for k := 0; k < nStaged; k++ {
		u := int(inc.stagedUsers[k])
		inc.userGen[u] = gen
		for _, v := range inc.rowItems[u] {
			inc.touch(v)
		}
		lo, hi := int(inc.stagedOff[k]), int(inc.stagedOff[k+1])
		row := inc.rowItems[u][:0]
		for s := lo; s < hi; {
			v := inc.stagedItems[s]
			e := s + 1
			for e < hi && inc.stagedItems[e] == v {
				e++
			}
			inc.touch(v)
			inc.itemDelta[v] = append(inc.itemDelta[v], incDelta{
				user: int32(u), pos: int32(len(row)), off: int32(s), n: int32(e - s),
			})
			row = append(row, v)
			s = e
		}
		inc.rowItems[u] = row
		rv := inc.rowVals[u]
		if cap(rv) < len(row) {
			rv = make([]float64, len(row))
		} else {
			rv = rv[:len(row)]
		}
		inc.rowVals[u] = rv
	}

	// Pass 3: splice postings, recompute item degrees and group values.
	par.ForChunks(len(inc.affected), incItemChunk, workers, func(lo, hi int) {
		var merged []incPosting
		for ai := lo; ai < hi; ai++ {
			v := inc.affected[ai]
			merged = inc.spliceItem(int(v), gen, merged[:0])
			dv := 0.0
			for i := range merged {
				dv += merged[i].w
			}
			inc.itemDeg[v] = dv
			users := inc.itemRowUsers[v][:0]
			vals := inc.itemRowVals[v][:0]
			for s := 0; s < len(merged); {
				u := merged[s].user
				pos := merged[s].pos
				du := inc.userDeg[u]
				val := 0.0
				e := s
				for e < len(merged) && merged[e].user == u {
					val += normVal(merged[e].w, du, dv)
					e++
				}
				users = append(users, u)
				vals = append(vals, val)
				inc.rowVals[u][pos] = val
				s = e
			}
			inc.itemRowUsers[v] = users
			inc.itemRowVals[v] = vals
			inc.post[v] = append(inc.post[v][:0], merged...)
		}
	})
}

// touch adds item v to the affected set the first time it is seen this
// commit, truncating its staged-group list. Called only from the serial
// pass-2 sweep.
func (inc *Incremental) touch(v int32) {
	if inc.itemGen[v] != inc.gen {
		inc.itemGen[v] = inc.gen
		inc.itemDelta[v] = inc.itemDelta[v][:0]
		inc.affected = append(inc.affected, v)
	}
}

// spliceItem merges item v's surviving old postings with its staged groups
// into dst, in (user ascending, fill order) — the full build's accumulation
// order. Old entries of staged users (userGen stamp == gen) are dropped;
// staged and surviving users are disjoint, and both streams are ascending.
func (inc *Incremental) spliceItem(v int, gen uint64, dst []incPosting) []incPosting {
	old := inc.post[v]
	delta := inc.itemDelta[v]
	i, k := 0, 0
	for {
		for i < len(old) && inc.userGen[old[i].user] == gen {
			i++
		}
		if i < len(old) && (k >= len(delta) || old[i].user < delta[k].user) {
			dst = append(dst, old[i])
			i++
			continue
		}
		if k >= len(delta) {
			return dst
		}
		d := delta[k]
		k++
		for j := int32(0); j < d.n; j++ {
			dst = append(dst, incPosting{user: d.user, pos: d.pos, w: inc.stagedW[d.off+j]})
		}
	}
}

// incRowChunk is the row granularity of the parallel adjacency copy.
const incRowChunk = 4096

// AdjInto assembles the maintained normalized adjacency Â into dst (reusing
// its buffers; pass nil to allocate) and returns it. The result is
// bitwise-identical to NormalizedAdjPar on the equivalent Bipartite.
func (inc *Incremental) AdjInto(dst *tensor.CSR, workers int) *tensor.CSR {
	return inc.adjInto(dst, workers, false)
}

// AdjSelfInto is AdjInto for the self-loop-augmented operator Â + I,
// bitwise-identical to NormalizedAdjSelfPar: the unit diagonal lands first
// in user rows (col u precedes every item column U+v) and last in item rows,
// exactly where the full build's stable column sort places the appended
// identity triplets.
func (inc *Incremental) AdjSelfInto(dst *tensor.CSR, workers int) *tensor.CSR {
	return inc.adjInto(dst, workers, true)
}

func (inc *Incremental) adjInto(dst *tensor.CSR, workers int, self bool) *tensor.CSR {
	if dst == nil {
		dst = &tensor.CSR{}
	}
	U := inc.numUsers
	n := U + inc.numItems
	diag := 0
	if self {
		diag = 1
	}
	dst.Reshape(n, n)
	rp := dst.RowPtr
	rp[0] = 0
	for u := 0; u < U; u++ {
		rp[u+1] = rp[u] + len(inc.rowItems[u]) + diag
	}
	for v := 0; v < inc.numItems; v++ {
		rp[U+v+1] = rp[U+v] + len(inc.itemRowUsers[v]) + diag
	}
	dst.GrowNNZ()
	par.ForChunks(n, incRowChunk, par.Workers(workers), func(lo, hi int) {
		for r := lo; r < hi; r++ {
			out := rp[r]
			if r < U {
				if self {
					dst.ColIdx[out] = r
					dst.Val[out] = 1
					out++
				}
				row, vals := inc.rowItems[r], inc.rowVals[r]
				for j, v := range row {
					dst.ColIdx[out+j] = U + int(v)
					dst.Val[out+j] = vals[j]
				}
			} else {
				row, vals := inc.itemRowUsers[r-U], inc.itemRowVals[r-U]
				for j, u := range row {
					dst.ColIdx[out+j] = int(u)
					dst.Val[out+j] = vals[j]
				}
				if self {
					dst.ColIdx[rp[r+1]-1] = r
					dst.Val[rp[r+1]-1] = 1
				}
			}
		}
	})
	return dst
}

// sliceHeaderBytes is the size of a Go slice header, counted once per
// maintained per-user/per-item row.
const sliceHeaderBytes = 24

// MemoryBytes estimates the engine's resident footprint: degree and stamp
// vectors, per-user rows (the dominant per-user cost: two slice headers plus
// 12 B per distinct item), per-item postings (16 B per raw edge) and rows,
// and the staging/scratch buffers at their current capacity.
func (inc *Incremental) MemoryBytes() int64 {
	b := int64(len(inc.userDeg)+len(inc.itemDeg)) * 8
	b += int64(len(inc.userGen)+len(inc.itemGen)) * 8
	b += int64(len(inc.rowItems)+len(inc.itemRowUsers)) * 2 * sliceHeaderBytes
	b += int64(len(inc.post)+len(inc.itemDelta)) * sliceHeaderBytes
	for _, r := range inc.rowItems {
		b += int64(cap(r)) * 4
	}
	for _, r := range inc.rowVals {
		b += int64(cap(r)) * 8
	}
	for _, p := range inc.post {
		b += int64(cap(p)) * 16
	}
	for v := range inc.itemRowUsers {
		b += int64(cap(inc.itemRowUsers[v]))*4 + int64(cap(inc.itemRowVals[v]))*8
	}
	for _, d := range inc.itemDelta {
		b += int64(cap(d)) * 16
	}
	b += int64(cap(inc.stagedUsers))*4 + int64(cap(inc.stagedOff))*4
	b += int64(cap(inc.stagedItems))*4 + int64(cap(inc.stagedW))*8
	b += int64(cap(inc.affected)) * 4
	return b
}
