package graph

import (
	"math"
	"testing"

	"ptffedrec/internal/tensor"
)

// fullBuild constructs the from-scratch Bipartite for the given per-user edge
// sets, adding edges in the same order the federated server does: users
// ascending, fill order within a user.
func fullBuild(numUsers, numItems int, rows [][]Edge) *Bipartite {
	g := NewBipartite(numUsers, numItems)
	for u, es := range rows {
		for _, e := range es {
			g.AddEdge(u, e.Item, e.Weight)
		}
	}
	return g
}

// requireCSRBitwise fails unless a and b are exactly equal: same shape, same
// row pointers, same columns, and bit-identical values.
func requireCSRBitwise(t *testing.T, name string, a, b *tensor.CSR) {
	t.Helper()
	if a.Rows != b.Rows || a.Cols != b.Cols {
		t.Fatalf("%s: shape %dx%d vs %dx%d", name, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if a.NNZ() != b.NNZ() {
		t.Fatalf("%s: NNZ %d vs %d", name, a.NNZ(), b.NNZ())
	}
	for r := 0; r <= a.Rows; r++ {
		if a.RowPtr[r] != b.RowPtr[r] {
			t.Fatalf("%s: RowPtr[%d] = %d vs %d", name, r, a.RowPtr[r], b.RowPtr[r])
		}
	}
	for i := range a.Val {
		if a.ColIdx[i] != b.ColIdx[i] {
			t.Fatalf("%s: ColIdx[%d] = %d vs %d", name, i, a.ColIdx[i], b.ColIdx[i])
		}
		if math.Float64bits(a.Val[i]) != math.Float64bits(b.Val[i]) {
			t.Fatalf("%s: Val[%d] = %x vs %x", name, i, a.Val[i], b.Val[i])
		}
	}
}

// incState drives one Incremental engine plus the reference per-user edge
// sets, checking the assembled operators against the full build after every
// commit. The adjacency destinations are reused across rounds, so the
// buffer-reuse path is exercised continuously.
type incState struct {
	users, items int
	workers      int
	inc          *Incremental
	rows         [][]Edge
	adj, adjSelf *tensor.CSR
}

func newIncState(users, items, workers int) *incState {
	return &incState{
		users:   users,
		items:   items,
		workers: workers,
		inc:     NewIncremental(users, items),
		rows:    make([][]Edge, users),
	}
}

// round replaces the given users' edge sets (staged ascending) and verifies
// both assembled operators bitwise against the from-scratch build.
func (st *incState) round(t *testing.T, staged []int, edges [][]Edge) {
	t.Helper()
	st.inc.Begin()
	for i, u := range staged {
		st.inc.StageUser(u, edges[i])
		st.rows[u] = append(st.rows[u][:0], edges[i]...)
	}
	if st.inc.BadWeight() {
		t.Fatal("unexpected BadWeight on positive-weight round")
	}
	st.inc.Commit(st.workers)
	full := fullBuild(st.users, st.items, st.rows)
	st.adj = st.inc.AdjInto(st.adj, st.workers)
	st.adjSelf = st.inc.AdjSelfInto(st.adjSelf, st.workers)
	requireCSRBitwise(t, "adj", full.NormalizedAdjPar(st.workers), st.adj)
	requireCSRBitwise(t, "adj+I", full.NormalizedAdjSelfPar(st.workers), st.adjSelf)
}

// TestIncrementalMatchesFullScripted walks a hand-written delta sequence
// through the cases the engine must get right: bootstrap, overlapping
// re-uploads that shift shared item degrees, duplicate items in one upload,
// shrinking and emptying a row, and touching previously isolated nodes.
func TestIncrementalMatchesFullScripted(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		st := newIncState(6, 5, workers)
		// Bootstrap: three users.
		st.round(t, []int{0, 2, 4}, [][]Edge{
			{{Item: 0, Weight: 0.9}, {Item: 3, Weight: 0.4}},
			{{Item: 3, Weight: 0.7}, {Item: 1, Weight: 0.2}},
			{{Item: 0, Weight: 0.5}},
		})
		// Re-upload user 2 (changes item 3's degree, patching user 0's clean
		// entry) and add user 1 with a duplicate item.
		st.round(t, []int{1, 2}, [][]Edge{
			{{Item: 2, Weight: 0.6}, {Item: 2, Weight: 0.3}, {Item: 4, Weight: 0.8}},
			{{Item: 3, Weight: 0.1}},
		})
		// Shrink user 1 to one item, empty user 4 entirely (item 0 loses a
		// contribution), and introduce user 5 on a fresh item.
		st.round(t, []int{1, 4, 5}, [][]Edge{
			{{Item: 4, Weight: 0.35}},
			{},
			{{Item: 1, Weight: 0.95}, {Item: 0, Weight: 0.05}},
		})
		// A no-op round: nothing staged, nothing may change.
		st.round(t, nil, nil)
		// Re-upload everyone at once (full participation degenerates to a
		// rebuild of every row).
		st.round(t, []int{0, 1, 2, 3, 4, 5}, [][]Edge{
			{{Item: 1, Weight: 0.11}},
			{{Item: 2, Weight: 0.22}},
			{{Item: 3, Weight: 0.33}},
			{{Item: 4, Weight: 0.44}},
			{{Item: 0, Weight: 0.55}},
			{},
		})
	}
}

// TestIncrementalRandomRounds runs a larger randomized absorb sequence per
// worker count, spanning participation from a single user to everyone.
func TestIncrementalRandomRounds(t *testing.T) {
	const users, items = 120, 40
	for _, workers := range []int{1, 2, 8} {
		st := newIncState(users, items, workers)
		state := uint64(777)
		next := func(n int) int {
			state = state*6364136223846793005 + 1442695040888963407
			return int((state >> 33) % uint64(n))
		}
		rounds := 8
		if testing.Short() {
			rounds = 4
		}
		for r := 0; r < rounds; r++ {
			part := 1 + next(users)
			staged := make([]int, 0, part)
			seen := make(map[int]bool, part)
			for len(staged) < part {
				u := next(users)
				if !seen[u] {
					seen[u] = true
					staged = append(staged, u)
				}
			}
			// StageUser requires ascending order, as the store delivers.
			for i := 1; i < len(staged); i++ {
				for j := i; j > 0 && staged[j] < staged[j-1]; j-- {
					staged[j], staged[j-1] = staged[j-1], staged[j]
				}
			}
			edges := make([][]Edge, len(staged))
			for i := range staged {
				m := next(10)
				es := make([]Edge, 0, m)
				for j := 0; j < m; j++ {
					es = append(es, Edge{Item: next(items), Weight: 0.05 + float64(next(95))/100})
				}
				edges[i] = es
			}
			st.round(t, staged, edges)
		}
	}
}

// TestIncrementalBadWeight pins the refusal contract: a non-positive staged
// weight flips BadWeight (the caller's cue to fall back to the full rebuild)
// and Commit panics rather than maintaining data-dependent row membership.
func TestIncrementalBadWeight(t *testing.T) {
	inc := NewIncremental(2, 2)
	inc.Begin()
	inc.StageUser(0, []Edge{{Item: 0, Weight: 0}})
	if !inc.BadWeight() {
		t.Fatal("zero weight not flagged")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Commit did not panic on bad weight")
		}
	}()
	inc.Commit(1)
}

// FuzzIncremental feeds randomized delta sequences (derived from the fuzzed
// seed) through the engine, asserting the maintained adjacency bitwise-equals
// a from-scratch NormalizedAdjPar build after every round.
func FuzzIncremental(f *testing.F) {
	f.Add(uint64(1), uint8(3))
	f.Add(uint64(42), uint8(1))
	f.Add(uint64(9999), uint8(6))
	f.Fuzz(func(t *testing.T, seed uint64, nRounds uint8) {
		const users, items = 30, 12
		state := seed
		next := func(n int) int {
			state = state*6364136223846793005 + 1442695040888963407
			return int((state >> 33) % uint64(n))
		}
		st := newIncState(users, items, 1+next(8))
		rounds := int(nRounds%6) + 1
		for r := 0; r < rounds; r++ {
			var staged []int
			for u := 0; u < users; u++ {
				if next(100) < 1+next(100) {
					staged = append(staged, u)
				}
			}
			edges := make([][]Edge, len(staged))
			for i := range staged {
				m := next(8)
				for j := 0; j < m; j++ {
					edges[i] = append(edges[i], Edge{Item: next(items), Weight: 0.05 + float64(next(95))/100})
				}
			}
			st.round(t, staged, edges)
		}
	})
}

// TestIncrementalMemoryBytes sanity-checks the footprint accounting: a
// populated engine reports more than an empty one, and both are positive.
func TestIncrementalMemoryBytes(t *testing.T) {
	empty := NewIncremental(10, 10).MemoryBytes()
	if empty <= 0 {
		t.Fatal("empty engine reports no memory")
	}
	inc := NewIncremental(10, 10)
	inc.Begin()
	inc.StageUser(3, []Edge{{Item: 1, Weight: 0.5}, {Item: 7, Weight: 0.25}})
	inc.Commit(1)
	if inc.MemoryBytes() <= empty {
		t.Fatal("populated engine does not report edge payload")
	}
}
