// Package central trains a recommender the pre-federated way: all
// interactions on one machine. It provides the upper-bound rows of Table III
// (centralized NeuMF / NGCF / LightGCN).
package central

import (
	"fmt"

	"ptffedrec/internal/data"
	"ptffedrec/internal/eval"
	"ptffedrec/internal/graph"
	"ptffedrec/internal/models"
	"ptffedrec/internal/rng"
)

// Config controls centralized training. Defaults mirror §IV-D.
type Config struct {
	Model     models.Kind
	Dim       int
	LR        float64
	Layers    int
	Epochs    int
	BatchSize int
	NegRatio  int
	Seed      uint64
}

// DefaultConfig returns the paper's centralized-training settings.
func DefaultConfig(kind models.Kind) Config {
	return Config{
		Model:     kind,
		Dim:       32,
		LR:        1e-3,
		Layers:    3,
		Epochs:    30,
		BatchSize: 1024,
		NegRatio:  4,
		Seed:      1,
	}
}

// Trainer owns the model and the training loop.
type Trainer struct {
	cfg   Config
	split *data.Split
	model models.Recommender
	s     *rng.Stream

	// evaluator caches the per-user candidate sets across Evaluate calls
	// (the split is immutable; the cache is cutoff-independent).
	evaluator *eval.Evaluator
}

// NewTrainer builds the model (and, for graph recommenders, the training
// interaction graph) for the given split.
func NewTrainer(sp *data.Split, cfg Config) (*Trainer, error) {
	mcfg := models.Config{
		NumUsers: sp.NumUsers,
		NumItems: sp.NumItems,
		Dim:      cfg.Dim,
		LR:       cfg.LR,
		Layers:   cfg.Layers,
		Seed:     cfg.Seed,
	}
	m, err := models.New(cfg.Model, mcfg)
	if err != nil {
		return nil, fmt.Errorf("central: %w", err)
	}
	if gm, ok := m.(models.GraphRecommender); ok {
		g := graph.NewBipartite(sp.NumUsers, sp.NumItems)
		for u, items := range sp.Train {
			for _, v := range items {
				g.AddEdge(u, v, 1)
			}
		}
		gm.SetGraph(g)
	}
	return &Trainer{cfg: cfg, split: sp, model: m, s: rng.New(cfg.Seed).Derive("central")}, nil
}

// Model returns the trained recommender.
func (t *Trainer) Model() models.Recommender { return t.model }

// TrainEpoch samples fresh negatives, shuffles, and runs one pass over the
// training set, returning the mean batch loss.
func (t *Trainer) TrainEpoch() float64 {
	var samples []models.Sample
	for u, items := range t.split.Train {
		for _, v := range items {
			samples = append(samples, models.Sample{User: u, Item: v, Label: 1})
		}
		for _, v := range t.split.SampleNegatives(t.s, u, t.cfg.NegRatio) {
			samples = append(samples, models.Sample{User: u, Item: v, Label: 0})
		}
	}
	t.s.Shuffle(len(samples), func(i, j int) { samples[i], samples[j] = samples[j], samples[i] })
	var total float64
	batches := 0
	for off := 0; off < len(samples); off += t.cfg.BatchSize {
		end := off + t.cfg.BatchSize
		if end > len(samples) {
			end = len(samples)
		}
		total += t.model.TrainBatch(samples[off:end])
		batches++
	}
	if batches == 0 {
		return 0
	}
	return total / float64(batches)
}

// Run trains for the configured number of epochs and returns the final
// epoch's mean loss.
func (t *Trainer) Run() float64 {
	var loss float64
	for e := 0; e < t.cfg.Epochs; e++ {
		loss = t.TrainEpoch()
	}
	return loss
}

// Evaluate computes Recall@k and NDCG@k on the held-out items, reusing the
// trainer's cached candidate sets across calls.
func (t *Trainer) Evaluate(k int) eval.Result {
	return eval.LazyEvaluator(&t.evaluator, t.split).Rank(t.model, k, 0)
}
