package central

import (
	"testing"

	"ptffedrec/internal/data"
	"ptffedrec/internal/models"
	"ptffedrec/internal/rng"
)

func tinySplit(t *testing.T) *data.Split {
	t.Helper()
	d := data.Generate(data.Tiny, 42)
	return d.Split(rng.New(1), 0.2)
}

func fastConfig(kind models.Kind) Config {
	cfg := DefaultConfig(kind)
	cfg.Epochs = 8
	cfg.Dim = 8
	cfg.LR = 0.01
	cfg.BatchSize = 64
	return cfg
}

func TestCentralizedTrainingAllModels(t *testing.T) {
	sp := tinySplit(t)
	for _, kind := range []models.Kind{models.KindNeuMF, models.KindNGCF, models.KindLightGCN} {
		tr, err := NewTrainer(sp, fastConfig(kind))
		if err != nil {
			t.Fatal(err)
		}
		first := tr.TrainEpoch()
		var last float64
		for e := 0; e < 7; e++ {
			last = tr.TrainEpoch()
		}
		if last >= first {
			t.Fatalf("%s: loss did not decrease (%v -> %v)", kind, first, last)
		}
		res := tr.Evaluate(20)
		if res.Users == 0 {
			t.Fatalf("%s: no users evaluated", kind)
		}
		if res.Recall < 0 || res.Recall > 1 {
			t.Fatalf("%s: recall = %v", kind, res.Recall)
		}
	}
}

func TestCentralizedBeatsRandomRanking(t *testing.T) {
	// A trained centralized model must comfortably beat a random scorer.
	sp := tinySplit(t)
	tr, err := NewTrainer(sp, fastConfig(models.KindLightGCN))
	if err != nil {
		t.Fatal(err)
	}
	tr.Run()
	trained := tr.Evaluate(20)

	// Random baseline: expected recall@20 ≈ 20 / numItems candidates.
	if trained.Recall < 20.0/float64(sp.NumItems) {
		t.Fatalf("trained recall %v below random floor", trained.Recall)
	}
}

func TestNewTrainerRejectsBadModel(t *testing.T) {
	sp := tinySplit(t)
	cfg := fastConfig("bogus")
	if _, err := NewTrainer(sp, cfg); err == nil {
		t.Fatal("bogus model accepted")
	}
}

func TestRunReturnsFinalLoss(t *testing.T) {
	sp := tinySplit(t)
	cfg := fastConfig(models.KindNeuMF)
	cfg.Epochs = 2
	tr, err := NewTrainer(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if loss := tr.Run(); loss <= 0 {
		t.Fatalf("final loss = %v", loss)
	}
	if tr.Model() == nil {
		t.Fatal("nil model")
	}
}
