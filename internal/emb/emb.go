// Package emb provides embedding tables with sparse Adam updates.
//
// Two variants exist: Table is a dense |rows|×dim matrix used by the server
// models (which see the whole catalogue), and LazyTable allocates rows on
// first touch — a PTF-FedRec client only ever scores its own trained items
// plus the server-dispersed items, so per-client memory stays proportional to
// the user's profile instead of the item catalogue.
package emb

import (
	"fmt"
	"io"
	"math"
	"sort"

	"ptffedrec/internal/persist"
	"ptffedrec/internal/rng"
	"ptffedrec/internal/tensor"
)

// AdamHyper carries the Adam hyper-parameters shared by both table kinds.
type AdamHyper struct {
	LR, Beta1, Beta2, Eps float64
}

// DefaultAdam returns the paper's optimizer settings (lr as given).
func DefaultAdam(lr float64) AdamHyper {
	return AdamHyper{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Table is a dense embedding table with per-row Adam state. Rows are updated
// sparsely: only rows touched by a batch pay optimizer cost.
type Table struct {
	Dim  int
	W    *tensor.Matrix
	grad map[int][]float64
	m, v *tensor.Matrix
	step map[int]int
	hy   AdamHyper
}

// NewTable allocates a rows×dim table initialized with N(0, 0.01) — the
// conventional embedding init for collaborative filtering models.
func NewTable(s *rng.Stream, rows, dim int, hy AdamHyper) *Table {
	t := &Table{
		Dim:  dim,
		W:    tensor.New(rows, dim),
		grad: map[int][]float64{},
		m:    tensor.New(rows, dim),
		v:    tensor.New(rows, dim),
		step: map[int]int{},
		hy:   hy,
	}
	for i := range t.W.Data {
		t.W.Data[i] = s.Normal(0, 0.1)
	}
	return t
}

// Rows returns the number of rows in the table.
func (t *Table) Rows() int { return t.W.Rows }

// Row returns row i (aliases storage — do not mutate outside Accumulate/Step).
func (t *Table) Row(i int) []float64 { return t.W.Row(i) }

// Accumulate adds g into the pending gradient for row i.
func (t *Table) Accumulate(i int, g []float64) {
	buf, ok := t.grad[i]
	if !ok {
		buf = make([]float64, t.Dim)
		t.grad[i] = buf
	}
	tensor.AddVec(g, buf)
}

// Step applies sparse Adam to every row with a pending gradient, then clears
// the pending set. Each row keeps its own step counter for bias correction,
// matching the sparse-Adam behaviour of mainstream frameworks.
func (t *Table) Step() {
	for i, g := range t.grad {
		t.step[i]++
		st := t.step[i]
		bc1 := 1 - math.Pow(t.hy.Beta1, float64(st))
		bc2 := 1 - math.Pow(t.hy.Beta2, float64(st))
		w := t.W.Row(i)
		m := t.m.Row(i)
		v := t.v.Row(i)
		for k, gk := range g {
			m[k] = t.hy.Beta1*m[k] + (1-t.hy.Beta1)*gk
			v[k] = t.hy.Beta2*v[k] + (1-t.hy.Beta2)*gk*gk
			w[k] -= t.hy.LR * (m[k] / bc1) / (math.Sqrt(v[k]/bc2) + t.hy.Eps)
		}
		delete(t.grad, i)
	}
}

// PendingRows returns how many rows have uncommitted gradients.
func (t *Table) PendingRows() int { return len(t.grad) }

// Snapshot writes the table's weights (not optimizer state) to w.
func (t *Table) Snapshot(w io.Writer) error {
	return persist.WriteFloat64s(w, t.W.Data)
}

// Restore reads weights previously written by Snapshot into the table. The
// table's shape must match; optimizer state is untouched (pair with
// RestoreMoments for exact checkpoint-resume).
func (t *Table) Restore(r io.Reader) error {
	return persist.ReadFloat64sInto(r, t.W.Data)
}

// SnapshotMoments writes the table's sparse-Adam state — per-row step
// counters and both moment matrices — so a restored table resumes training
// exactly where the snapshot left off. Call between optimizer steps (no
// pending gradients).
func (t *Table) SnapshotMoments(w io.Writer) error {
	ids := make([]int, 0, len(t.step))
	for id := range t.step {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	counts := make([]int, len(ids))
	for i, id := range ids {
		counts[i] = t.step[id]
	}
	if err := persist.WriteInts(w, ids); err != nil {
		return err
	}
	if err := persist.WriteInts(w, counts); err != nil {
		return err
	}
	if err := persist.WriteFloat64s(w, t.m.Data); err != nil {
		return err
	}
	return persist.WriteFloat64s(w, t.v.Data)
}

// RestoreMoments reads optimizer state previously written by SnapshotMoments.
func (t *Table) RestoreMoments(r io.Reader) error {
	ids, err := persist.ReadInts(r)
	if err != nil {
		return err
	}
	counts, err := persist.ReadInts(r)
	if err != nil {
		return err
	}
	if len(ids) != len(counts) {
		return fmt.Errorf("emb: moment snapshot has %d ids, %d counts", len(ids), len(counts))
	}
	t.step = make(map[int]int, len(ids))
	for i, id := range ids {
		t.step[id] = counts[i]
	}
	if err := persist.ReadFloat64sInto(r, t.m.Data); err != nil {
		return err
	}
	return persist.ReadFloat64sInto(r, t.v.Data)
}

// PendingGrad returns a copy of row i's uncommitted gradient, or nil if the
// row has no pending update. Intended for tests and debugging.
func (t *Table) PendingGrad(i int) []float64 {
	g, ok := t.grad[i]
	if !ok {
		return nil
	}
	out := make([]float64, len(g))
	copy(out, g)
	return out
}

// LazyTable is an embedding table that materialises rows on demand.
type LazyTable struct {
	Dim  int
	rows map[int]*lazyRow
	init func(out []float64)
	hy   AdamHyper
}

type lazyRow struct {
	w, m, v, grad []float64
	step          int
	dirty         bool
}

// NewLazyTable returns an empty table; each first-touched row is filled with
// N(0, 0.01) values from a stream derived per row id, so the same row gets
// the same init regardless of touch order.
func NewLazyTable(s *rng.Stream, dim int, hy AdamHyper) *LazyTable {
	base := s.Derive("lazytable")
	return &LazyTable{
		Dim:  dim,
		rows: map[int]*lazyRow{},
		hy:   hy,
		init: func(out []float64) {
			for i := range out {
				out[i] = base.Normal(0, 0.1)
			}
		},
	}
}

// Row returns row i, materialising it on first use.
func (t *LazyTable) Row(i int) []float64 { return t.row(i).w }

// Materialized reports whether row i has been allocated.
func (t *LazyTable) Materialized(i int) bool {
	_, ok := t.rows[i]
	return ok
}

// Len returns the number of materialised rows.
func (t *LazyTable) Len() int { return len(t.rows) }

func (t *LazyTable) row(i int) *lazyRow {
	r, ok := t.rows[i]
	if !ok {
		r = &lazyRow{
			w:    make([]float64, t.Dim),
			m:    make([]float64, t.Dim),
			v:    make([]float64, t.Dim),
			grad: make([]float64, t.Dim),
		}
		t.init(r.w)
		t.rows[i] = r
	}
	return r
}

// Accumulate adds g into the pending gradient for row i.
func (t *LazyTable) Accumulate(i int, g []float64) {
	r := t.row(i)
	tensor.AddVec(g, r.grad)
	r.dirty = true
}

// Snapshot writes the materialised rows (ids + weights) to w.
func (t *LazyTable) Snapshot(w io.Writer) error {
	ids := make([]int, 0, len(t.rows))
	for id := range t.rows {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	if err := persist.WriteInts(w, ids); err != nil {
		return err
	}
	for _, id := range ids {
		if err := persist.WriteFloat64s(w, t.rows[id].w); err != nil {
			return err
		}
	}
	return nil
}

// Restore reads rows previously written by Snapshot, materialising them as
// needed. Optimizer state is untouched (pair with RestoreMoments for exact
// checkpoint-resume).
func (t *LazyTable) Restore(r io.Reader) error {
	ids, err := persist.ReadInts(r)
	if err != nil {
		return err
	}
	for _, id := range ids {
		row := t.row(id)
		if err := persist.ReadFloat64sInto(r, row.w); err != nil {
			return err
		}
	}
	return nil
}

// SnapshotMoments writes every materialised row's sparse-Adam state (step
// counter and both moment vectors) in the same sorted-id order Snapshot uses.
// Call between optimizer steps (no pending gradients).
func (t *LazyTable) SnapshotMoments(w io.Writer) error {
	ids := make([]int, 0, len(t.rows))
	for id := range t.rows {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	steps := make([]int, len(ids))
	for i, id := range ids {
		steps[i] = t.rows[id].step
	}
	if err := persist.WriteInts(w, ids); err != nil {
		return err
	}
	if err := persist.WriteInts(w, steps); err != nil {
		return err
	}
	for _, id := range ids {
		if err := persist.WriteFloat64s(w, t.rows[id].m); err != nil {
			return err
		}
		if err := persist.WriteFloat64s(w, t.rows[id].v); err != nil {
			return err
		}
	}
	return nil
}

// RestoreMoments reads optimizer state previously written by SnapshotMoments,
// materialising rows as needed.
func (t *LazyTable) RestoreMoments(r io.Reader) error {
	ids, err := persist.ReadInts(r)
	if err != nil {
		return err
	}
	steps, err := persist.ReadInts(r)
	if err != nil {
		return err
	}
	if len(ids) != len(steps) {
		return fmt.Errorf("emb: moment snapshot has %d ids, %d steps", len(ids), len(steps))
	}
	for i, id := range ids {
		row := t.row(id)
		row.step = steps[i]
		if err := persist.ReadFloat64sInto(r, row.m); err != nil {
			return err
		}
		if err := persist.ReadFloat64sInto(r, row.v); err != nil {
			return err
		}
	}
	return nil
}

// PendingGrad returns a copy of row i's uncommitted gradient, or nil if the
// row has no pending update. Intended for tests and debugging.
func (t *LazyTable) PendingGrad(i int) []float64 {
	r, ok := t.rows[i]
	if !ok || !r.dirty {
		return nil
	}
	out := make([]float64, len(r.grad))
	copy(out, r.grad)
	return out
}

// Step applies sparse Adam to all dirty rows.
func (t *LazyTable) Step() {
	for _, r := range t.rows {
		if !r.dirty {
			continue
		}
		r.step++
		bc1 := 1 - math.Pow(t.hy.Beta1, float64(r.step))
		bc2 := 1 - math.Pow(t.hy.Beta2, float64(r.step))
		for k, gk := range r.grad {
			r.m[k] = t.hy.Beta1*r.m[k] + (1-t.hy.Beta1)*gk
			r.v[k] = t.hy.Beta2*r.v[k] + (1-t.hy.Beta2)*gk*gk
			r.w[k] -= t.hy.LR * (r.m[k] / bc1) / (math.Sqrt(r.v[k]/bc2) + t.hy.Eps)
			r.grad[k] = 0
		}
		r.dirty = false
	}
}
