package emb

import (
	"math"
	"testing"

	"ptffedrec/internal/rng"
)

func TestTableInitNonZero(t *testing.T) {
	tab := NewTable(rng.New(1), 5, 4, DefaultAdam(0.01))
	if tab.Rows() != 5 {
		t.Fatalf("Rows = %d", tab.Rows())
	}
	var norm float64
	for _, v := range tab.W.Data {
		norm += v * v
	}
	if norm == 0 {
		t.Fatal("table initialized to zero")
	}
}

func TestTableSparseStep(t *testing.T) {
	tab := NewTable(rng.New(2), 3, 2, DefaultAdam(0.1))
	before0 := append([]float64(nil), tab.Row(0)...)
	before1 := append([]float64(nil), tab.Row(1)...)
	tab.Accumulate(1, []float64{1, -1})
	if tab.PendingRows() != 1 {
		t.Fatalf("PendingRows = %d", tab.PendingRows())
	}
	tab.Step()
	if tab.PendingRows() != 0 {
		t.Fatal("Step did not clear pending gradients")
	}
	for k := range before0 {
		if tab.Row(0)[k] != before0[k] {
			t.Fatal("untouched row 0 changed")
		}
	}
	// Row 1 should move against the gradient: first Adam step ≈ lr.
	if math.Abs(tab.Row(1)[0]-(before1[0]-0.1)) > 1e-3 {
		t.Fatalf("row1[0] moved %v, want ≈ -lr", tab.Row(1)[0]-before1[0])
	}
	if math.Abs(tab.Row(1)[1]-(before1[1]+0.1)) > 1e-3 {
		t.Fatalf("row1[1] moved %v, want ≈ +lr", tab.Row(1)[1]-before1[1])
	}
}

func TestTableAccumulateSums(t *testing.T) {
	tab := NewTable(rng.New(3), 2, 2, DefaultAdam(0.1))
	tab.Accumulate(0, []float64{1, 0})
	tab.Accumulate(0, []float64{1, 0})
	w0 := append([]float64(nil), tab.Row(0)...)
	tab.Step()
	// Gradient 2 on dim 0, 0 on dim 1: dim 1 stays put.
	if tab.Row(0)[1] != w0[1] {
		t.Fatal("zero-gradient dimension moved")
	}
	if tab.Row(0)[0] >= w0[0] {
		t.Fatal("positive gradient did not decrease weight")
	}
}

func TestTableConvergesToTarget(t *testing.T) {
	// Minimise ||w - target||² for one row.
	tab := NewTable(rng.New(4), 1, 3, DefaultAdam(0.05))
	target := []float64{0.5, -0.25, 1.0}
	for i := 0; i < 800; i++ {
		w := tab.Row(0)
		g := make([]float64, 3)
		for k := range g {
			g[k] = 2 * (w[k] - target[k])
		}
		tab.Accumulate(0, g)
		tab.Step()
	}
	for k, tv := range target {
		if math.Abs(tab.Row(0)[k]-tv) > 1e-2 {
			t.Fatalf("dim %d converged to %v, want %v", k, tab.Row(0)[k], tv)
		}
	}
}

func TestLazyTableMaterialisesOnDemand(t *testing.T) {
	tab := NewLazyTable(rng.New(5), 4, DefaultAdam(0.01))
	if tab.Len() != 0 {
		t.Fatal("new lazy table not empty")
	}
	if tab.Materialized(7) {
		t.Fatal("row 7 should not exist yet")
	}
	r := tab.Row(7)
	if len(r) != 4 {
		t.Fatalf("row len = %d", len(r))
	}
	if !tab.Materialized(7) || tab.Len() != 1 {
		t.Fatal("row 7 not materialised")
	}
	var norm float64
	for _, v := range r {
		norm += v * v
	}
	if norm == 0 {
		t.Fatal("lazy row initialized to zero")
	}
}

func TestLazyTableRowStable(t *testing.T) {
	tab := NewLazyTable(rng.New(6), 3, DefaultAdam(0.01))
	a := append([]float64(nil), tab.Row(2)...)
	b := tab.Row(2)
	for k := range a {
		if a[k] != b[k] {
			t.Fatal("re-reading a row changed it")
		}
	}
}

func TestLazyTableStepOnlyDirty(t *testing.T) {
	tab := NewLazyTable(rng.New(7), 2, DefaultAdam(0.1))
	w0 := append([]float64(nil), tab.Row(0)...)
	_ = tab.Row(1) // materialised but never updated
	w1 := append([]float64(nil), tab.Row(1)...)
	tab.Accumulate(0, []float64{1, 1})
	tab.Step()
	if tab.Row(1)[0] != w1[0] {
		t.Fatal("clean row moved")
	}
	if tab.Row(0)[0] >= w0[0] {
		t.Fatal("dirty row did not move against gradient")
	}
	// Second step without new gradient must not move row 0 again.
	after := append([]float64(nil), tab.Row(0)...)
	tab.Step()
	if tab.Row(0)[0] != after[0] {
		t.Fatal("Step without gradient moved a row")
	}
}

func TestLazyTableConverges(t *testing.T) {
	tab := NewLazyTable(rng.New(8), 2, DefaultAdam(0.05))
	target := []float64{-0.3, 0.8}
	for i := 0; i < 800; i++ {
		w := tab.Row(11)
		tab.Accumulate(11, []float64{2 * (w[0] - target[0]), 2 * (w[1] - target[1])})
		tab.Step()
	}
	for k, tv := range target {
		if math.Abs(tab.Row(11)[k]-tv) > 1e-2 {
			t.Fatalf("dim %d = %v, want %v", k, tab.Row(11)[k], tv)
		}
	}
}
