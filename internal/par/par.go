// Package par provides the small deterministic fork–join primitive behind the
// parallel round engine and the parallel evaluator.
//
// Determinism contract: For distributes loop indices over goroutines, but the
// caller decides what each index writes. As long as fn(i) writes only to
// slot i of a pre-sized output (and any shared reads are warmed beforehand),
// the result is identical for every worker count — reductions then happen
// sequentially over the slots in index order, so even floating-point sums are
// bitwise-stable.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: any value <= 0 means GOMAXPROCS.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForChunks splits [0, n) into contiguous chunks of the given size and runs
// fn(lo, hi) for each chunk, distributing chunks over at most workers
// goroutines. Chunk boundaries depend only on n and size — never on workers —
// so per-chunk results a caller collects (and later reduces in chunk order)
// are identical for every worker count.
func ForChunks(n, size, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if size <= 0 {
		size = 1
	}
	nChunks := (n + size - 1) / size
	For(nChunks, workers, func(c int) {
		lo := c * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}

// For runs fn(i) for every i in [0, n), distributing indices over at most
// workers goroutines. workers <= 1 degenerates to a plain loop on the calling
// goroutine. Indices are claimed through an atomic counter, so each runs
// exactly once; fn must confine its writes to per-index state.
//
// workers is additionally clamped to GOMAXPROCS: the determinism contract
// makes results independent of the goroutine count, so spawning more
// goroutines than schedulable threads buys nothing and costs scheduler
// churn — on a single-core host, an oversubscribed fan-out is strictly
// slower than the plain loop it replaces.
func For(n, workers int, fn func(i int)) {
	if p := runtime.GOMAXPROCS(0); workers > p {
		workers = p
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
