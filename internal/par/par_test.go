package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 7, 64} {
		for _, n := range []int{0, 1, 5, 100} {
			counts := make([]int32, n)
			For(n, workers, func(i int) { atomic.AddInt32(&counts[i], 1) })
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForSerialPathOrdered(t *testing.T) {
	var got []int
	For(5, 1, func(i int) { got = append(got, i) })
	for i, v := range got {
		if v != i {
			t.Fatalf("serial For out of order: %v", got)
		}
	}
}

// TestForClampsToGOMAXPROCS pins the oversubscription fix: on a
// GOMAXPROCS=1 host, any requested worker count must degenerate to the plain
// serial loop — no goroutines spawned, indices visited in order — because
// extra goroutines on one schedulable thread are pure scheduler overhead.
func TestForClampsToGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	for _, workers := range []int{2, 8, 64} {
		var got []int
		// Appending without synchronisation is the assertion: it is only safe
		// (and only ordered) if For ran inline on the calling goroutine.
		For(50, workers, func(i int) { got = append(got, i) })
		for i, v := range got {
			if v != i {
				t.Fatalf("workers=%d under GOMAXPROCS=1: indices out of order at %d: %v", workers, i, got[:i+1])
			}
		}
		if len(got) != 50 {
			t.Fatalf("workers=%d under GOMAXPROCS=1: visited %d of 50 indices", workers, len(got))
		}
	}
}

func TestWorkers(t *testing.T) {
	if w := Workers(0); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", w)
	}
	if w := Workers(-3); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS", w)
	}
	if w := Workers(5); w != 5 {
		t.Fatalf("Workers(5) = %d", w)
	}
}
