package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"ptffedrec/internal/comm"
	"ptffedrec/internal/data"
	"ptffedrec/internal/fed"
	"ptffedrec/internal/par"
)

// uploadChunkPreds is the number of predictions carried per MsgUploadChunk
// frame. A variable so tests can force multi-chunk uploads on tiny data.
var uploadChunkPreds = 512

// Participant runs the client side for a contiguous user range against a
// coordinator, speaking only the wire protocol: it reconstructs the shared
// world from the JoinAck (dataset profile + seed + config), runs each
// announced round through fed.ClientHost, streams uploads, and delivers the
// fetched dispersals. Under a FaultPlan the host's fault draws surface as
// real transport behaviour: a dropped client posts an empty body, a
// truncated one cuts its stream before the end frame.
type Participant struct {
	base   string
	hc     *http.Client
	token  uint64
	lo, hi int
	cfg    fed.Config
	codec  comm.Codec
	host   *fed.ClientHost
}

// Join registers with the coordinator at base (e.g. "http://host:port") as
// the host of users [lo, hi) and rebuilds the shared world from the
// acknowledgement. hc may be nil for http.DefaultClient.
func Join(base string, lo, hi int, hc *http.Client) (*Participant, error) {
	if hc == nil {
		hc = http.DefaultClient
	}
	base = strings.TrimRight(base, "/")
	body := comm.AppendFrame(nil, comm.MsgJoin, comm.EncodeJoin(comm.Join{UserLo: lo, UserHi: hi}))
	resp, err := hc.Post(base+"/v1/join", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	mt, payload, err := comm.ReadFrame(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("coord: join reply: %w", err)
	}
	if mt == comm.MsgError {
		return nil, fmt.Errorf("coord: join refused: %s", payload)
	}
	if mt != comm.MsgJoinAck {
		return nil, fmt.Errorf("coord: join reply is %v, want %v", mt, comm.MsgJoinAck)
	}
	ack, err := comm.DecodeJoinAck(payload)
	if err != nil {
		return nil, err
	}

	var cfg fed.Config
	if err := json.Unmarshal(ack.ConfigJSON, &cfg); err != nil {
		return nil, fmt.Errorf("coord: join-ack config: %w", err)
	}
	// Hosting a slice of the universe, the participant materialises only the
	// clients that actually participate; lazy construction is bitwise-neutral.
	cfg.LazyClients = true
	profile, err := data.ProfileByName(ack.Profile)
	if err != nil {
		return nil, err
	}
	// The same split recipe the coordinator used — both sides derive it
	// purely from (profile, seed, frac), no dataset bytes cross the wire.
	sp := data.StreamSplit(profile, ack.DataSeed, ack.TestFrac)
	host, err := fed.NewClientHost(sp, cfg)
	if err != nil {
		return nil, err
	}
	return &Participant{
		base:  base,
		hc:    hc,
		token: ack.Token,
		lo:    lo,
		hi:    hi,
		cfg:   cfg,
		codec: comm.CodecFor(cfg.QuantizeScores),
		host:  host,
	}, nil
}

// Token returns the session token the coordinator assigned.
func (p *Participant) Token() uint64 { return p.token }

// Run processes announcements until shutdown. Under the default pipelined
// schedule the coordinator pushes dispersals and round-end markers into the
// poll stream and announces round r+1 during round r's collection; the
// participant starts each announced round's dependency-free clients
// immediately and holds the dispersal-gated ones (those in the previous
// cohort) until the previous round's end marker. Under Config.SequentialRounds
// every RoundStart runs the full hosted slice and fetches the round's
// dispersals over /v1/result.
func (p *Participant) Run(ctx context.Context) error {
	if p.cfg.SequentialRounds {
		return p.runSequential(ctx)
	}
	return p.runPipelined(ctx)
}

// runSequential is the serialized schedule: train every hosted client of the
// announced round, then fetch its dispersals. Stray MsgDisperse events in the
// poll stream (the retention store flushing a previously-unhosted user's D̃ᵢ)
// are delivered in place.
func (p *Participant) runSequential(ctx context.Context) error {
	after := 0
	for {
		frames, err := p.poll(ctx, after)
		if err != nil {
			return err
		}
		for _, f := range frames {
			switch f.mt {
			case comm.MsgRoundStart:
				rs, err := comm.DecodeRoundStart(f.payload)
				if err != nil {
					return err
				}
				if err := p.runRound(ctx, rs); err != nil {
					return err
				}
				after++
			case comm.MsgDisperse:
				if err := p.deliver(f.payload); err != nil {
					return err
				}
				after++
			case comm.MsgRoundEnd:
				// Only the pipelined coordinator pushes these; tolerate and
				// advance past one in the log.
				after++
			case comm.MsgShutdown:
				p.leave(ctx)
				return nil
			case comm.MsgAck:
				// Heartbeat: re-poll with the same cursor.
			case comm.MsgError:
				return fmt.Errorf("coord: poll: %s", f.payload)
			default:
				return fmt.Errorf("coord: unexpected %v frame from poll", f.mt)
			}
		}
	}
}

// wave is one in-flight hosted training wave. Later waves order themselves
// behind earlier-round waves that could still be training a shared user (a
// straggler past a deadline-closed round).
type wave struct {
	round int
	done  chan struct{}
}

// runPipelined is the event-driven schedule. Per announced round the hosted
// cohort splits into a free wave (users not in the previous cohort — no
// inbound dispersal, train immediately, overlapping the coordinator's close
// of the previous round) and a gated wave (users in the previous cohort —
// train once the previous round's pushed dispersals and end marker arrive).
// The coordinator orders each session's log as RS(r), RS(r+1), D(r)…, RE(r),
// RS(r+2), … so at most one gated wave is ever outstanding.
func (p *Participant) runPipelined(ctx context.Context) error {
	after := 0
	var wg sync.WaitGroup
	errCh := make(chan error, 1)
	record := func(err error) {
		if err != nil {
			select {
			case errCh <- err:
			default:
			}
		}
	}
	firstErr := func() error {
		select {
		case err := <-errCh:
			return err
		default:
			return nil
		}
	}

	// Wave ordering: a wave for round R must not overlap an earlier wave
	// still training one of its users. Free users of round R sat out round
	// R-1 but may sit in any older cohort, so they wait for waves of rounds
	// ≤ R-2; gated users sit in cohort(R-1), so they wait for rounds ≤ R-1.
	// In the normal schedule those waves finished long ago (their uploads
	// resolved before the dependency round closed) — the ordering only bites
	// when a deadline cut a round loose while its clients were mid-training.
	var waves []wave
	launch := func(round int, users []int, waitBelow int) {
		if len(users) == 0 {
			return
		}
		var deps []chan struct{}
		kept := waves[:0]
		for _, w := range waves {
			select {
			case <-w.done:
				continue // finished; forget it
			default:
			}
			if w.round <= waitBelow {
				deps = append(deps, w.done)
			}
			kept = append(kept, w)
		}
		done := make(chan struct{})
		waves = append(kept, wave{round: round, done: done})
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(done)
			for _, d := range deps {
				<-d
			}
			record(p.runUsers(ctx, round, users))
		}()
	}

	prevRound := -1
	prevUsers := map[int]bool{}
	endedThrough := -1
	gatedRound := -1
	var gatedUsers []int

	for {
		if err := firstErr(); err != nil {
			wg.Wait()
			return err
		}
		frames, err := p.poll(ctx, after)
		if err != nil {
			wg.Wait()
			return err
		}
		for _, f := range frames {
			switch f.mt {
			case comm.MsgRoundStart:
				rs, err := comm.DecodeRoundStart(f.payload)
				if err != nil {
					wg.Wait()
					return err
				}
				var free, gated []int
				if rs.Round-1 == prevRound && endedThrough < prevRound {
					for _, u := range rs.Users {
						if prevUsers[u] {
							gated = append(gated, u)
						} else {
							free = append(free, u)
						}
					}
				} else {
					// First announcement, or the previous round already
					// ended: every hosted client is dependency-free.
					free = rs.Users
				}
				launch(rs.Round, free, rs.Round-2)
				if len(gated) > 0 {
					gatedRound, gatedUsers = rs.Round, gated
				}
				prevRound = rs.Round
				prevUsers = make(map[int]bool, len(rs.Users))
				for _, u := range rs.Users {
					prevUsers[u] = true
				}
				after++
			case comm.MsgDisperse:
				// Pushed deliveries land on the event loop; the target's own
				// training for the dispersal's round has finished (its upload
				// produced the dispersal) and in-flight waves only touch
				// other users' clients.
				if err := p.deliver(f.payload); err != nil {
					wg.Wait()
					return err
				}
				after++
			case comm.MsgRoundEnd:
				r, err := comm.DecodeRound(f.payload)
				if err != nil {
					wg.Wait()
					return err
				}
				if r > endedThrough {
					endedThrough = r
				}
				if gatedRound == r+1 {
					launch(gatedRound, gatedUsers, r)
					gatedRound, gatedUsers = -1, nil
				}
				after++
			case comm.MsgShutdown:
				wg.Wait()
				p.leave(ctx)
				return firstErr()
			case comm.MsgAck:
				// Heartbeat: re-poll with the same cursor.
			case comm.MsgError:
				wg.Wait()
				return fmt.Errorf("coord: poll: %s", f.payload)
			default:
				wg.Wait()
				return fmt.Errorf("coord: unexpected %v frame from poll", f.mt)
			}
		}
	}
}

// deliver decodes one pushed dispersal and hands it to the hosted client.
func (p *Participant) deliver(payload []byte) error {
	d, err := comm.DecodeDisperse(payload)
	if err != nil {
		return err
	}
	if d.User < p.lo || d.User >= p.hi {
		return fmt.Errorf("coord: dispersal for user %d outside hosted range [%d, %d)", d.User, p.lo, p.hi)
	}
	preds, err := d.Codec.Decode(d.Payload)
	if err != nil {
		return err
	}
	p.host.Deliver(d.User, preds)
	return nil
}

type frame struct {
	mt      comm.MsgType
	payload []byte
}

// poll long-polls the announcement channel past the cursor.
func (p *Participant) poll(ctx context.Context, after int) ([]frame, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/poll?token=%d&after=%d", p.base, p.token, after), nil)
	if err != nil {
		return nil, err
	}
	resp, err := p.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var frames []frame
	for {
		mt, payload, err := comm.ReadFrame(resp.Body)
		if err == io.EOF {
			return frames, nil
		}
		if err != nil {
			return nil, fmt.Errorf("coord: poll stream: %w", err)
		}
		frames = append(frames, frame{mt: mt, payload: payload})
	}
}

// runRound executes the hosted slice of one announced round: parallel local
// training + uploads on the configured worker pool, then the dispersal
// fetch. Each worker touches only its own user's client, exactly like the
// in-process trainer's round loop.
func (p *Participant) runRound(ctx context.Context, rs comm.RoundStart) error {
	if err := p.runUsers(ctx, rs.Round, rs.Users); err != nil {
		return err
	}
	return p.fetchResult(ctx, rs.Round)
}

// runUsers trains and uploads the listed hosted users for one round on the
// configured worker pool.
func (p *Participant) runUsers(ctx context.Context, round int, users []int) error {
	workers := par.Workers(p.cfg.Workers)
	errs := make([]error, len(users))
	par.For(len(users), workers, func(i int) {
		res := p.host.RunClientRound(round, users[i])
		errs[i] = p.upload(ctx, round, res)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// upload posts one user's round result as a frame stream. A host-level
// dropout becomes an empty body (connection drop); a truncation sends the
// transmitted prefix and omits the end frame (short write).
func (p *Participant) upload(ctx context.Context, round int, res fed.ClientRoundResult) error {
	// The body builds into a pooled frame buffer: a participant's steady
	// state is one of these per client per round, and the pool keeps that
	// allocation-free once warm. The buffer is returned only after the
	// response is fully handled — the HTTP client may re-read the request
	// body for a retry.
	body := comm.GetFrameBuffer()
	defer comm.PutFrameBuffer(body)
	if !res.Dropped {
		body.Append(comm.MsgUploadBegin, comm.EncodeUploadBegin(comm.UploadBegin{
			Round:    round,
			User:     res.ID,
			Codec:    p.codec,
			Count:    len(res.Preds),
			Loss:     res.Loss,
			AttackF1: res.AttackF1,
		}))
		payload := res.WirePayload()
		chunkBytes := uploadChunkPreds * p.codec.WireSize()
		for off := 0; off < len(payload); off += chunkBytes {
			end := off + chunkBytes
			if end > len(payload) {
				end = len(payload)
			}
			body.Append(comm.MsgUploadChunk, payload[off:end])
		}
		if res.SendPreds == len(res.Preds) {
			body.Append(comm.MsgUploadEnd, nil)
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		fmt.Sprintf("%s/v1/upload?token=%d&round=%d&user=%d", p.base, p.token, round, res.ID),
		bytes.NewReader(body.Bytes()))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := p.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	mt, payload, err := comm.ReadFrame(resp.Body)
	if err != nil {
		return fmt.Errorf("coord: upload reply: %w", err)
	}
	if mt == comm.MsgError {
		if strings.Contains(string(payload), "closed") {
			// Straggler: the round's deadline passed while this upload was in
			// flight. The coordinator counted the client as dropped; the run
			// continues.
			return nil
		}
		return fmt.Errorf("coord: upload refused: %s", payload)
	}
	if mt != comm.MsgAck {
		return fmt.Errorf("coord: upload reply is %v, want %v", mt, comm.MsgAck)
	}
	return nil
}

// fetchResult streams the round's dispersals and delivers them to the hosted
// clients.
func (p *Participant) fetchResult(ctx context.Context, round int) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/result?token=%d&round=%d", p.base, p.token, round), nil)
	if err != nil {
		return err
	}
	resp, err := p.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	for {
		mt, payload, err := comm.ReadFrame(resp.Body)
		if err != nil {
			return fmt.Errorf("coord: result stream: %w", err)
		}
		switch mt {
		case comm.MsgDisperse:
			d, err := comm.DecodeDisperse(payload)
			if err != nil {
				return err
			}
			if d.User < p.lo || d.User >= p.hi {
				return fmt.Errorf("coord: dispersal for user %d outside hosted range [%d, %d)", d.User, p.lo, p.hi)
			}
			preds, err := d.Codec.Decode(d.Payload)
			if err != nil {
				return err
			}
			p.host.Deliver(d.User, preds)
		case comm.MsgRoundEnd:
			got, err := comm.DecodeRound(payload)
			if err != nil {
				return err
			}
			if got != round {
				return fmt.Errorf("coord: round-end names round %d, want %d", got, round)
			}
			return nil
		case comm.MsgError:
			return fmt.Errorf("coord: result refused: %s", payload)
		default:
			return fmt.Errorf("coord: unexpected %v frame in result stream", mt)
		}
	}
}

// leave deregisters the session; best-effort, errors are ignored (the
// coordinator also tolerates vanished sessions).
func (p *Participant) leave(ctx context.Context) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		fmt.Sprintf("%s/v1/leave?token=%d", p.base, p.token), nil)
	if err != nil {
		return
	}
	if resp, err := p.hc.Do(req); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}
