package coord

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ptffedrec/internal/comm"
	"ptffedrec/internal/data"
	"ptffedrec/internal/fed"
	"ptffedrec/internal/models"
)

const (
	testSeed = 42
	testFrac = 0.2
)

// testSplit builds the shared world through the same recipe the participant
// reconstructs from a JoinAck, so the reference trainer and the networked
// path train on identical data.
func testSplit() *data.Split { return data.StreamSplit(data.Tiny, testSeed, testFrac) }

func testConfig(server models.Kind, workers int) fed.Config {
	cfg := fed.DefaultConfig(server)
	cfg.ClientModel = models.KindMF
	cfg.Rounds = 2
	cfg.EvalEvery = 1
	cfg.ClientEpochs = 1
	cfg.ServerEpochs = 1
	cfg.Dim = 8
	cfg.Alpha = 10
	cfg.LR = 5e-3
	cfg.Workers = workers
	cfg.EvalWorkers = workers
	return cfg
}

func testOptions() Options {
	return Options{Profile: data.Tiny.Name, DataSeed: testSeed, TestFrac: testFrac}
}

// requireEqualHistories compares two training traces with bitwise float
// equality — the loopback contract mirrors the in-process engine's.
func requireEqualHistories(t *testing.T, label string, a, b *fed.History) {
	t.Helper()
	if len(a.Rounds) != len(b.Rounds) {
		t.Fatalf("%s: round counts differ: %d vs %d", label, len(a.Rounds), len(b.Rounds))
	}
	for i := range a.Rounds {
		if a.Rounds[i] != b.Rounds[i] {
			t.Fatalf("%s: round %d differs:\n  %+v\n  %+v", label, i, a.Rounds[i], b.Rounds[i])
		}
	}
	if a.Final != b.Final || a.MeanAttackF1 != b.MeanAttackF1 {
		t.Fatalf("%s: final results differ: %+v/%v vs %+v/%v",
			label, a.Final, a.MeanAttackF1, b.Final, b.MeanAttackF1)
	}
}

// referenceHistory runs the in-process trainer on the same world.
func referenceHistory(t *testing.T, cfg fed.Config) *fed.History {
	t.Helper()
	tr, err := fed.NewTrainer(testSplit(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// runNetworked drives a full coordinator run over a loopback HTTP server with
// one participant per user range, returning the coordinator's history.
func runNetworked(t *testing.T, cfg fed.Config, opts Options, ranges [][2]int) (*fed.History, *Coordinator) {
	t.Helper()
	c, err := New(testSplit(), cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	errs := make([]error, len(ranges))
	var wg sync.WaitGroup
	for i, r := range ranges {
		p, err := Join(srv.URL, r[0], r[1], srv.Client())
		if err != nil {
			t.Fatalf("join [%d, %d): %v", r[0], r[1], err)
		}
		wg.Add(1)
		go func(i int, p *Participant) {
			defer wg.Done()
			errs[i] = p.Run(ctx)
		}(i, p)
	}
	h, err := c.Run(ctx)
	if err != nil {
		t.Fatalf("coordinator run: %v", err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("participant %d: %v", i, err)
		}
	}
	return h, c
}

// TestLoopbackBitwise is the tentpole contract: a coordinator plus two
// participants over a loopback HTTP transport reproduces the in-process
// fed.Trainer history bitwise, across server model kinds and worker counts.
func TestLoopbackBitwise(t *testing.T) {
	kinds := []models.Kind{models.KindNeuMF, models.KindLightGCN}
	if testing.Short() {
		kinds = kinds[:1]
	}
	for _, server := range kinds {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", server, workers), func(t *testing.T) {
				cfg := testConfig(server, workers)
				ref := referenceHistory(t, cfg)
				h, c := runNetworked(t, cfg, testOptions(), [][2]int{{0, 20}, {20, 40}})
				requireEqualHistories(t, fmt.Sprintf("%s/w%d", server, workers), ref, h)
				if in, out := c.WireBytes(); in <= 0 || out <= 0 {
					t.Fatalf("transport meter did not move: in=%d out=%d", in, out)
				}
			})
		}
	}
}

// TestLoopbackBitwiseFaulted pins the fault routing through the transport: a
// FaultPlan's dropouts arrive as empty upload bodies and its truncations as
// upload streams cut before MsgUploadEnd, and the server-side classification
// reproduces the in-process faulted history bitwise. uploadChunkPreds shrinks
// so truncated uploads still span several chunk frames on the tiny catalogue.
func TestLoopbackBitwiseFaulted(t *testing.T) {
	defer func(old int) { uploadChunkPreds = old }(uploadChunkPreds)
	uploadChunkPreds = 3

	cfg := testConfig(models.KindLightGCN, 4)
	cfg.Faults = fed.FaultPlan{DropoutRate: 0.3, TruncateRate: 0.5}
	ref := referenceHistory(t, cfg)
	dropped := 0
	for _, rs := range ref.Rounds {
		dropped += rs.Dropped
	}
	if dropped == 0 {
		t.Fatal("fault plan produced no dropouts; the test exercises nothing")
	}
	h, _ := runNetworked(t, cfg, testOptions(), [][2]int{{0, 15}, {15, 40}})
	requireEqualHistories(t, "faulted loopback", ref, h)
}

// TestStragglerDeadline covers partial participation: one live participant
// and one registered-but-silent session. The round deadline fires, the silent
// host's users are counted as dropped, and the run completes every round
// instead of waiting forever.
func TestStragglerDeadline(t *testing.T) {
	cfg := testConfig(models.KindNeuMF, 2)
	opts := testOptions()
	opts.Deadline = 500 * time.Millisecond

	c, err := New(testSplit(), cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	if _, err := Join(srv.URL, 20, 40, srv.Client()); err != nil {
		t.Fatalf("silent join: %v", err)
	}
	live, err := Join(srv.URL, 0, 20, srv.Client())
	if err != nil {
		t.Fatalf("live join: %v", err)
	}
	var wg sync.WaitGroup
	var liveErr error
	wg.Add(1)
	go func() { defer wg.Done(); liveErr = live.Run(ctx) }()

	h, err := c.Run(ctx)
	if err != nil {
		t.Fatalf("coordinator run: %v", err)
	}
	wg.Wait()
	if liveErr != nil {
		t.Fatalf("live participant: %v", liveErr)
	}
	if len(h.Rounds) != cfg.Rounds {
		t.Fatalf("run produced %d rounds, want %d", len(h.Rounds), cfg.Rounds)
	}
	for _, rs := range h.Rounds {
		// ClientFraction 1.0 selects every user: the silent host's 20 are
		// dropped by the deadline every round.
		if rs.Dropped < 20 {
			t.Fatalf("round %d: %d dropped, want at least the 20 silent-hosted users", rs.Round, rs.Dropped)
		}
		if rs.Dropped == rs.Participants {
			t.Fatalf("round %d: every client dropped; the live half never landed", rs.Round)
		}
	}
}

// TestJoinLeaveLifecycle pins the registry rules: overlapping and
// out-of-range joins are refused, a vacated range can be re-joined, leaving
// mid-round resolves the departed host's pending users as dropped, and a join
// after the run finished receives an immediate shutdown.
func TestJoinLeaveLifecycle(t *testing.T) {
	cfg := testConfig(models.KindMF, 2)
	c, err := New(testSplit(), cfg, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	p1, err := Join(srv.URL, 0, 20, srv.Client())
	if err != nil {
		t.Fatalf("first join: %v", err)
	}
	if _, err := Join(srv.URL, 10, 30, srv.Client()); err == nil || !strings.Contains(err.Error(), "overlaps") {
		t.Fatalf("overlapping join: err = %v, want overlap refusal", err)
	}
	if _, err := Join(srv.URL, 30, 99, srv.Client()); err == nil || !strings.Contains(err.Error(), "universe") {
		t.Fatalf("out-of-range join: err = %v, want range refusal", err)
	}
	p1.leave(ctx)
	p2, err := Join(srv.URL, 10, 30, srv.Client())
	if err != nil {
		t.Fatalf("re-join of vacated range: %v", err)
	}

	// p2 never polls. Round 0 waits on its hosted users (no deadline set);
	// leaving must resolve them as dropped so the run can finish.
	done := make(chan struct{})
	var h *fed.History
	var runErr error
	go func() {
		defer close(done)
		h, runErr = c.Run(ctx)
	}()
	time.Sleep(100 * time.Millisecond)
	p2.leave(ctx)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("run did not finish after the sole session left")
	}
	if runErr != nil {
		t.Fatalf("coordinator run: %v", runErr)
	}
	for _, rs := range h.Rounds {
		if rs.Dropped != rs.Participants {
			t.Fatalf("round %d: %d of %d dropped, want all (nobody hosted anyone)",
				rs.Round, rs.Dropped, rs.Participants)
		}
	}

	// The coordinator is down: a late joiner is told to shut down at once.
	p3, err := Join(srv.URL, 0, 5, srv.Client())
	if err != nil {
		t.Fatalf("post-run join: %v", err)
	}
	if err := p3.Run(ctx); err != nil {
		t.Fatalf("post-run participant should see an immediate shutdown: %v", err)
	}
}

// encodeUpload builds an upload body for readUpload tests.
func encodeUpload(round, user int, codec comm.Codec, preds []comm.Prediction, sendPreds int, end bool) []byte {
	var b bytes.Buffer
	comm.WriteFrame(&b, comm.MsgUploadBegin, comm.EncodeUploadBegin(comm.UploadBegin{
		Round: round, User: user, Codec: codec, Count: len(preds),
		Loss: 0.25, AttackF1: 0.5,
	}))
	payload := codec.Encode(preds)[:sendPreds*codec.WireSize()]
	for off := 0; off < len(payload); off += 2 * codec.WireSize() {
		hi := off + 2*codec.WireSize()
		if hi > len(payload) {
			hi = len(payload)
		}
		comm.WriteFrame(&b, comm.MsgUploadChunk, payload[off:hi])
	}
	if end {
		comm.WriteFrame(&b, comm.MsgUploadEnd, nil)
	}
	return b.Bytes()
}

// TestReadUploadClassification pins the server-side body classification:
// empty body → drop, missing end frame → truncated prefix, end frame →
// complete, and protocol violations → errors.
func TestReadUploadClassification(t *testing.T) {
	c := &Coordinator{}
	codec := comm.CodecFor(false)
	preds := []comm.Prediction{
		{User: 7, Item: 3, Score: 0.5},
		{User: 7, Item: 9, Score: -1.25},
		{User: 7, Item: 12, Score: 2},
		{User: 7, Item: 44, Score: 0.125},
	}

	o, err := c.readUpload(bytes.NewReader(nil), 1, 7)
	if err != nil || !o.Dropped {
		t.Fatalf("empty body: outcome %+v, err %v; want a drop", o, err)
	}

	o, err = c.readUpload(bytes.NewReader(encodeUpload(1, 7, codec, preds, len(preds), true)), 1, 7)
	if err != nil || o.Dropped || len(o.Upload) != len(preds) {
		t.Fatalf("complete body: outcome %+v, err %v; want %d predictions", o, err, len(preds))
	}
	for i := range preds {
		if o.Upload[i] != preds[i] {
			t.Fatalf("complete body: prediction %d = %+v, want %+v", i, o.Upload[i], preds[i])
		}
	}
	if o.UploadBytes != len(preds)*codec.WireSize() {
		t.Fatalf("complete body: UploadBytes = %d, want %d", o.UploadBytes, len(preds)*codec.WireSize())
	}
	if o.Loss != 0.25 || o.AttackF1 != 0.5 {
		t.Fatalf("complete body: metrics %v/%v did not survive the begin frame", o.Loss, o.AttackF1)
	}

	o, err = c.readUpload(bytes.NewReader(encodeUpload(1, 7, codec, preds, 2, false)), 1, 7)
	if err != nil || o.Dropped || len(o.Upload) != 2 {
		t.Fatalf("truncated body: outcome %+v, err %v; want the 2-prediction prefix", o, err)
	}

	o, err = c.readUpload(bytes.NewReader(encodeUpload(1, 7, codec, preds, 0, false)), 1, 7)
	if err != nil || !o.Dropped {
		t.Fatalf("begin-only body: outcome %+v, err %v; want a drop", o, err)
	}

	if _, err = c.readUpload(bytes.NewReader(encodeUpload(1, 7, codec, preds, 2, true)), 1, 7); err == nil {
		t.Fatal("count mismatch with end frame must be a protocol error")
	}
	if _, err = c.readUpload(bytes.NewReader(encodeUpload(2, 7, codec, preds, 4, true)), 1, 7); err == nil {
		t.Fatal("round mismatch must be a protocol error")
	}
	if _, err = c.readUpload(bytes.NewReader([]byte("not a frame stream")), 1, 7); err == nil {
		t.Fatal("garbage bytes must be a protocol error")
	}
	if _, err = c.readUpload(bytes.NewReader(comm.AppendFrame(nil, comm.MsgAck, nil)), 1, 7); err == nil {
		t.Fatal("a non-begin opening frame must be a protocol error")
	}
}

// TestMalformedUploadOverHTTP drives a garbage upload through the HTTP layer:
// the server answers MsgError, resolves the slot as dropped, and the run
// still completes under the deadline.
func TestMalformedUploadOverHTTP(t *testing.T) {
	cfg := testConfig(models.KindMF, 1)
	cfg.Rounds = 1
	opts := testOptions()
	opts.Deadline = 300 * time.Millisecond

	c, err := New(testSplit(), cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	p, err := Join(srv.URL, 0, 40, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var h *fed.History
	go func() {
		defer close(done)
		h, _ = c.Run(ctx)
	}()

	resp, err := srv.Client().Post(
		fmt.Sprintf("%s/v1/upload?token=%d&round=0&user=3", srv.URL, p.Token()),
		"application/octet-stream", strings.NewReader(strings.Repeat("garbage", 4)))
	if err != nil {
		t.Fatal(err)
	}
	mt, payload, err := comm.ReadFrame(resp.Body)
	resp.Body.Close()
	if err != nil || mt != comm.MsgError {
		t.Fatalf("garbage upload reply: %v %q err=%v, want MsgError", mt, payload, err)
	}

	<-done
	if h == nil || len(h.Rounds) != 1 {
		t.Fatalf("run did not complete after malformed upload: %+v", h)
	}
	if h.Rounds[0].Dropped == 0 {
		t.Fatal("malformed upload should have left its user dropped")
	}
}
