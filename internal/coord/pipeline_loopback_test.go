package coord

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"ptffedrec/internal/comm"
	"ptffedrec/internal/fed"
	"ptffedrec/internal/models"
)

// TestLoopbackBitwiseSequentialMode pins the retained baseline schedule over
// the wire: with Config.SequentialRounds both halves fall back to the
// serialized announce/wait/close/publish loop and the /v1/result fetch, and
// the history still matches the (sequential) in-process trainer bitwise.
// Together with TestLoopbackBitwise — which runs the pipelined default on
// both sides — and the in-process pipelined-vs-sequential invariance suite,
// this closes the loop: all four schedule/transport combinations produce one
// history.
func TestLoopbackBitwiseSequentialMode(t *testing.T) {
	cfg := testConfig(models.KindLightGCN, 4)
	cfg.SequentialRounds = true
	ref := referenceHistory(t, cfg)
	h, _ := runNetworked(t, cfg, testOptions(), [][2]int{{0, 20}, {20, 40}})
	requireEqualHistories(t, "sequential-mode loopback", ref, h)
}

// TestLoopbackBitwisePartialFraction exercises the pipeline's free wave over
// the wire: partial participation makes cohorts differ round to round, so
// each announced round has dependency-free clients that train during the
// previous round's window, plus dispersal-gated ones held for the pushed
// round-end. The networked history must still match the pipelined in-process
// run bitwise, clean and faulted.
func TestLoopbackBitwisePartialFraction(t *testing.T) {
	defer func(old int) { uploadChunkPreds = old }(uploadChunkPreds)
	uploadChunkPreds = 3

	for _, faulted := range []bool{false, true} {
		cfg := testConfig(models.KindNeuMF, 4)
		cfg.Rounds = 4
		cfg.ClientFraction = 0.4
		if faulted {
			cfg.Faults = fed.FaultPlan{DropoutRate: 0.25, TruncateRate: 0.4}
		}
		ref := referenceHistory(t, cfg)
		h, _ := runNetworked(t, cfg, testOptions(), [][2]int{{0, 15}, {15, 40}})
		label := "partial-fraction loopback"
		if faulted {
			label += " (faulted)"
		}
		requireEqualHistories(t, label, ref, h)
	}
}

// decodeSessionDisperses parses a session's event log, returning the users of
// every MsgDisperse frame in order.
func decodeSessionDisperses(t *testing.T, s *session) []int {
	t.Helper()
	var users []int
	for _, frame := range s.events {
		mt, payload, err := comm.ReadFrame(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("event frame: %v", err)
		}
		if mt != comm.MsgDisperse {
			continue
		}
		d, err := comm.DecodeDisperse(payload)
		if err != nil {
			t.Fatal(err)
		}
		users = append(users, d.User)
	}
	return users
}

// TestPendingDispersalStore unit-tests the bounded retention store: newest
// payload supersedes per user, the oldest-stashed user is evicted past the
// budget, pruning a round stashes exactly its undelivered dispersals, and a
// flush moves a session's hosted range into its event log.
func TestPendingDispersalStore(t *testing.T) {
	cfg := testConfig(models.KindMF, 1)
	opts := testOptions()
	opts.PendingDispersals = 2
	c, err := New(testSplit(), cfg, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Payloads must be stride-valid for the codec so a flush's MsgDisperse
	// frames decode.
	stride := comm.CodecFor(cfg.QuantizeScores).WireSize()
	pay := func(b byte) []byte { return bytes.Repeat([]byte{b}, stride) }
	c.mu.Lock()
	c.stashPendingLocked(0, fed.Dispersal{ID: 1, Payload: pay(1)})
	c.stashPendingLocked(0, fed.Dispersal{ID: 2, Payload: pay(2)})
	c.stashPendingLocked(1, fed.Dispersal{ID: 3, Payload: pay(3)}) // evicts user 1
	c.stashPendingLocked(2, fed.Dispersal{ID: 2, Payload: pay(9)}) // supersedes in place
	c.mu.Unlock()

	if _, ok := c.pending[1]; ok {
		t.Fatal("user 1 should have been evicted (oldest stash)")
	}
	if got := c.pending[2]; got.round != 2 || !bytes.Equal(got.payload, pay(9)) {
		t.Fatalf("user 2 retention = round %d payload %v, want the superseding round-2 payload", got.round, got.payload)
	}
	if len(c.pending) != 2 {
		t.Fatalf("retention holds %d users, want 2 (budget)", len(c.pending))
	}

	// Pruning a round stashes only its undelivered dispersals, and the
	// budget still holds: retaining user 5 evicts user 2 (oldest stash).
	rs := &roundState{
		round:      7,
		dispersals: []fed.Dispersal{{ID: 5, Payload: pay(5)}, {ID: 6, Payload: pay(6)}},
		delivered:  []bool{false, true},
	}
	c.mu.Lock()
	c.rounds[7] = rs
	c.pruneRoundLocked(7)
	c.mu.Unlock()
	if c.rounds[7] != nil {
		t.Fatal("pruned round still live")
	}
	if _, ok := c.pending[5]; !ok {
		t.Fatal("undelivered dispersal for user 5 was not retained on prune")
	}
	if _, ok := c.pending[6]; ok {
		t.Fatal("delivered dispersal for user 6 must not be retained")
	}
	if _, ok := c.pending[2]; ok {
		t.Fatal("user 2 should have been evicted to keep the prune stash within budget")
	}
	if len(c.pending) != 2 {
		t.Fatalf("retention holds %d users after prune, want 2 (budget)", len(c.pending))
	}

	// Flushing a session delivers its hosted range — [0,5) covers user 3
	// but not user 5 — and leaves the rest retained.
	s := &session{lo: 0, hi: 5, wake: make(chan struct{})}
	c.mu.Lock()
	c.flushPendingLocked(s)
	c.mu.Unlock()
	if got := decodeSessionDisperses(t, s); len(got) != 1 || got[0] != 3 {
		t.Fatalf("flush delivered users %v, want exactly [3]", got)
	}
	if _, ok := c.pending[3]; ok {
		t.Fatal("flushed dispersal still retained")
	}
	if _, ok := c.pending[5]; !ok {
		t.Fatal("out-of-range retention for user 5 should have survived the flush")
	}
}

// TestLateJoinReceivesRetainedDispersals is the satellite's end-to-end case:
// a host uploads its users' round and leaves before the round's dispersals
// are published, so the coordinator has responders with no session to push
// to. The dispersals must land in the retention store instead of vanishing,
// and a host joining after the fact (even after the whole run finished)
// receives them on its first poll, ahead of the shutdown notice.
func TestLateJoinReceivesRetainedDispersals(t *testing.T) {
	cfg := testConfig(models.KindMF, 2)
	c, err := New(testSplit(), cfg, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	p, err := Join(srv.URL, 0, 40, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	var h *fed.History
	go func() {
		var err error
		h, err = c.Run(ctx)
		runDone <- err
	}()

	// Upload round 0 for all but one user directly (no poll loop), then
	// leave: the departure resolves the last user as dropped, the round
	// closes and publishes with no session left to push its dispersals to.
	users := make([]int, 39)
	for i := range users {
		users[i] = i
	}
	if err := p.runUsers(ctx, 0, users); err != nil {
		t.Fatalf("uploads: %v", err)
	}
	p.leave(ctx)
	if err := <-runDone; err != nil {
		t.Fatalf("coordinator run: %v", err)
	}
	if len(h.Rounds) != cfg.Rounds {
		t.Fatalf("run produced %d rounds, want %d", len(h.Rounds), cfg.Rounds)
	}

	c.mu.Lock()
	retained := len(c.pending)
	c.mu.Unlock()
	if retained == 0 {
		t.Fatal("publishing a round with no live sessions retained no dispersals")
	}

	// The late host's join flushes its users' retained D̃ᵢ into its event
	// log ahead of the shutdown notice; its Run delivers them and exits.
	late, err := Join(srv.URL, 0, 40, srv.Client())
	if err != nil {
		t.Fatalf("late join: %v", err)
	}
	if err := late.Run(ctx); err != nil {
		t.Fatalf("late participant: %v", err)
	}
	c.mu.Lock()
	left := len(c.pending)
	c.mu.Unlock()
	if left != 0 {
		t.Fatalf("%d retained dispersals survived their host's join", left)
	}
}

// TestPipelinedEventOrdering pins the session-log invariant the participant
// relies on — round r+1's start is announced before round r's end marker, so
// at most one gated wave is ever outstanding. A silent observer session
// (whose users the deadline drops) keeps its full event log readable after
// the run.
func TestPipelinedEventOrdering(t *testing.T) {
	cfg := testConfig(models.KindMF, 2)
	cfg.Rounds = 3
	opts := testOptions()
	opts.Deadline = 500 * time.Millisecond

	c, err := New(testSplit(), cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	observer, err := Join(srv.URL, 39, 40, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	worker, err := Join(srv.URL, 0, 39, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- worker.Run(ctx) }()
	if _, err := c.Run(ctx); err != nil {
		t.Fatalf("coordinator run: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("worker participant: %v", err)
	}

	c.mu.Lock()
	s := c.sessions[observer.Token()]
	var events [][]byte
	if s != nil {
		events = append(events, s.events...)
	}
	c.mu.Unlock()
	if s == nil {
		t.Fatal("observer session vanished")
	}

	startAt := map[int]int{} // round -> event index of its RoundStart
	endAt := map[int]int{}
	for i, raw := range events {
		mt, payload, err := comm.ReadFrame(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		switch mt {
		case comm.MsgRoundStart:
			rs, err := comm.DecodeRoundStart(payload)
			if err != nil {
				t.Fatal(err)
			}
			startAt[rs.Round] = i
		case comm.MsgRoundEnd:
			r, err := comm.DecodeRound(payload)
			if err != nil {
				t.Fatal(err)
			}
			endAt[r] = i
		}
	}
	for r := 0; r < cfg.Rounds; r++ {
		if _, ok := startAt[r]; !ok {
			t.Fatalf("round %d never announced to the observer", r)
		}
		if _, ok := endAt[r]; !ok {
			t.Fatalf("round %d end marker never pushed to the observer", r)
		}
		if r+1 < cfg.Rounds && startAt[r+1] > endAt[r] {
			t.Fatalf("round %d announced at event %d, after round %d ended at %d — the pipeline never overlapped",
				r+1, startAt[r+1], r, endAt[r])
		}
		if r > 0 && endAt[r] < endAt[r-1] {
			t.Fatalf("round ends out of order: end(%d)=%d before end(%d)=%d", r, endAt[r], r-1, endAt[r-1])
		}
	}
}
