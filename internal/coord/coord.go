// Package coord is the networked deployment of PTF-FedRec: an HTTP
// coordinator service wrapping fed.RoundEngine, and a Participant that runs
// fed.ClientHost against it speaking only the comm wire protocol.
//
// The transport carries nothing the protocol does not: registration
// (join/leave), round announcements over a long-poll channel, streamed
// upload bodies, and streamed dispersal results. Both halves derive their
// randomness purely from the shared seed, so a coordinator plus any
// partition of users across participants reproduces the in-process
// fed.Trainer history bitwise — the loopback suite pins exactly that.
//
// Fault semantics follow real transports: an empty upload body is a
// connection drop (the client is counted as dropped), an upload stream that
// ends after at least one prediction without its MsgUploadEnd frame is a
// short write (the server keeps the received prefix). A round with a
// configured straggler deadline closes with partial participation — pending
// clients become dropped — instead of waiting forever.
package coord

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ptffedrec/internal/comm"
	"ptffedrec/internal/data"
	"ptffedrec/internal/eval"
	"ptffedrec/internal/fed"
)

// pollWait is how long a /v1/poll request parks before returning a
// heartbeat. A variable so tests can shrink it.
var pollWait = 25 * time.Second

// Options configures the coordinator service beyond the protocol Config.
type Options struct {
	// Profile names the synthetic dataset profile participants rebuild their
	// split from (data.ProfileByName); DataSeed and TestFrac complete the
	// split recipe. These ride the JoinAck.
	Profile  string
	DataSeed uint64
	TestFrac float64

	// Deadline bounds how long a round waits for its pending uploads after
	// announcement. Zero waits forever. When it expires the round closes
	// with the stragglers counted as dropped.
	Deadline time.Duration

	// PendingDispersals bounds the retention store for undelivered
	// dispersals (users nobody currently hosts, or hosts that fell rounds
	// behind): at most this many users keep their latest undelivered D̃ᵢ,
	// evicted oldest-stash-first. Retained dispersals are flushed into a
	// session's event log when the user's host joins or at the next
	// round-start announcement. 0 means DefaultPendingDispersals.
	PendingDispersals int
}

// DefaultPendingDispersals is the default Options.PendingDispersals budget.
const DefaultPendingDispersals = 4096

// session is one registered participant process hosting users [lo, hi).
type session struct {
	token  uint64
	lo, hi int

	// events is the session's announcement log (framed RoundStart/Shutdown
	// messages); /v1/poll serves the suffix past the caller's cursor. wake is
	// closed and replaced whenever an event lands.
	events [][]byte
	wake   chan struct{}
}

// roundState tracks one announced round until its result is published.
type roundState struct {
	round      int
	slots      map[int]int // user -> outcome slot (Select order)
	unresolved map[int]bool
	outcomes   []fed.ClientOutcome
	pending    int

	closed bool          // no further uploads accepted
	done   chan struct{} // closed when every pending upload resolved (or deadline)

	stats       fed.RoundStats
	dispersals  []fed.Dispersal
	delivered   []bool // per-dispersal: reached a session log or the retention store
	resultReady chan struct{}
}

// pendingDisp is one user's latest undelivered dispersal, retained after its
// round left the live window.
type pendingDisp struct {
	round   int
	payload []byte
}

// Coordinator serves the PTF-FedRec server side over HTTP: participant
// lifecycle, per-round cohort announcements, upload ingestion, and dispersal
// delivery, with fed.RoundEngine doing all protocol computation.
type Coordinator struct {
	engine     *fed.RoundEngine
	split      *data.Split
	cfg        fed.Config
	opts       Options
	configJSON []byte
	evaluator  *eval.Evaluator

	mu        sync.Mutex
	sessions  map[uint64]*session
	nextToken uint64
	rounds    map[int]*roundState
	down      bool // run finished; new joins get an immediate shutdown

	// pending retains each user's latest undelivered dispersal (bounded by
	// Options.PendingDispersals); pendingQ records stash order for eviction.
	pending  map[int]pendingDisp
	pendingQ []int
	codec    comm.Codec

	// wireIn/wireOut count every frame byte crossing the HTTP boundary —
	// the transport-level complement of the engine's protocol-level Meter.
	wireIn, wireOut atomic.Int64
}

// New builds a coordinator for the split. cfg drives the embedded round
// engine; opts describes the world participants reconstruct and the round
// deadline policy.
func New(sp *data.Split, cfg fed.Config, opts Options) (*Coordinator, error) {
	engine, err := fed.NewRoundEngine(sp.NumUsers, sp.NumItems, cfg)
	if err != nil {
		return nil, err
	}
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		return nil, fmt.Errorf("coord: marshal config: %w", err)
	}
	return &Coordinator{
		engine:     engine,
		split:      sp,
		cfg:        cfg,
		opts:       opts,
		configJSON: cfgJSON,
		sessions:   make(map[uint64]*session),
		rounds:     make(map[int]*roundState),
		pending:    make(map[int]pendingDisp),
		codec:      comm.CodecFor(cfg.QuantizeScores),
	}, nil
}

// Engine exposes the embedded round engine (final model, meter, phases).
func (c *Coordinator) Engine() *fed.RoundEngine { return c.engine }

// WireBytes reports total frame bytes received and sent over the transport.
func (c *Coordinator) WireBytes() (in, out int64) {
	return c.wireIn.Load(), c.wireOut.Load()
}

// Sessions reports the number of registered participant sessions; a server
// can hold the run until enough hosts have joined.
func (c *Coordinator) Sessions() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.sessions)
}

// ShareEvaluator hands the coordinator a prebuilt candidate cache for its
// split (see fed.Trainer.ShareEvaluator). Call before Run.
func (c *Coordinator) ShareEvaluator(e *eval.Evaluator) { c.evaluator = e }

// Handler returns the coordinator's HTTP API.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/join", c.handleJoin)
	mux.HandleFunc("/v1/leave", c.handleLeave)
	mux.HandleFunc("/v1/poll", c.handlePoll)
	mux.HandleFunc("/v1/upload", c.handleUpload)
	mux.HandleFunc("/v1/result", c.handleResult)
	return mux
}

// Run drives the configured number of rounds against whatever participants
// have joined, then evaluates, broadcasts shutdown, and returns the history.
// The history is bitwise-identical to fed.Trainer.Run on the same (split,
// config) when every user is hosted and no transport faults strike.
//
// By default the schedule is pipelined: round r+1's cohort is announced while
// round r is still collecting uploads (Select is a pure function of the
// seed), and round r's dispersals plus its round-end marker are pushed into
// the sessions' poll logs at close instead of waiting for /v1/result — so a
// participant's dependency-free clients train during round r's straggler
// window, and one long-poll round trip plus the server phase leave the
// networked critical path. Config.SequentialRounds retains the serialized
// schedule (announce, wait, close, publish, repeat) as the timing baseline;
// histories are bitwise-identical either way because uploads are absorbed in
// cohort slot order regardless of arrival order.
func (c *Coordinator) Run(ctx context.Context) (*fed.History, error) {
	pipelined := !c.cfg.SequentialRounds
	h := &fed.History{}
	evaluator := func() *eval.Evaluator {
		if c.evaluator == nil {
			c.evaluator = c.engine.NewEvaluator(c.split)
		}
		return c.evaluator
	}
	// ahead queues announced-but-unclosed rounds in order: the pipeline keeps
	// one round announced beyond the one being collected.
	var ahead []*roundState
	announce := func(round int) {
		if round < c.cfg.Rounds {
			ahead = append(ahead, c.openRound(round, c.engine.Select(round)))
		}
	}
	announce(0)
	if pipelined {
		announce(1)
	}
	for round := 0; round < c.cfg.Rounds; round++ {
		rs := ahead[0]
		ahead = ahead[1:]
		if err := c.waitRound(ctx, rs); err != nil {
			return nil, err
		}
		stats, dispersals := c.engine.CloseRound(round, rs.outcomes, nil)
		if c.cfg.EvalEvery > 0 && (round+1)%c.cfg.EvalEvery == 0 {
			res := c.engine.Evaluate(evaluator())
			stats.Recall, stats.NDCG, stats.Evaluated = res.Recall, res.NDCG, true
		}
		c.publishRound(rs, stats, dispersals, pipelined)
		h.Rounds = append(h.Rounds, stats)
		h.MeanAttackF1 += stats.AttackF1
		if pipelined {
			announce(round + 2)
		} else {
			announce(round + 1)
		}
	}
	if len(h.Rounds) > 0 {
		h.MeanAttackF1 /= float64(len(h.Rounds))
	}
	h.Final = c.engine.Evaluate(evaluator())
	c.mu.Lock()
	c.down = true
	shutdown := comm.AppendFrame(nil, comm.MsgShutdown, nil)
	for _, s := range c.sessions {
		c.announceLocked(s, shutdown)
	}
	c.mu.Unlock()
	return h, nil
}

// publishRound stores the round's result and wakes /v1/result waiters. Under
// the pipelined schedule (push) it also delivers: each dispersal is appended
// to its host session's event log (or retained for an absent host), and every
// session gets the round-end marker that releases its dispersal-gated
// clients — participants never call /v1/result.
func (c *Coordinator) publishRound(rs *roundState, stats fed.RoundStats, dispersals []fed.Dispersal, push bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rs.stats = stats
	rs.dispersals = dispersals
	rs.delivered = make([]bool, len(dispersals))
	if push {
		for i, d := range dispersals {
			rs.delivered[i] = true // reaches a log or the retention store now
			s := c.sessionForLocked(d.ID)
			if s == nil {
				c.stashPendingLocked(rs.round, d)
				continue
			}
			c.announceLocked(s, comm.AppendFrame(nil, comm.MsgDisperse, comm.EncodeDisperse(comm.Disperse{
				User:    d.ID,
				Codec:   c.codec,
				Payload: d.Payload,
			})))
		}
		end := comm.AppendFrame(nil, comm.MsgRoundEnd, comm.EncodeRound(rs.round))
		for _, s := range c.sessions {
			c.announceLocked(s, end)
		}
	}
	close(rs.resultReady)
}

// stashPendingLocked retains a user's undelivered dispersal, newest
// superseding older, evicting the oldest-stashed user past the budget.
// c.mu held.
func (c *Coordinator) stashPendingLocked(round int, d fed.Dispersal) {
	limit := c.opts.PendingDispersals
	if limit <= 0 {
		limit = DefaultPendingDispersals
	}
	if _, ok := c.pending[d.ID]; ok {
		c.pending[d.ID] = pendingDisp{round: round, payload: d.Payload}
		return
	}
	for len(c.pending) >= limit && len(c.pendingQ) > 0 {
		u := c.pendingQ[0]
		c.pendingQ = c.pendingQ[1:]
		if _, live := c.pending[u]; live {
			delete(c.pending, u)
			break
		}
		// Stale queue entry (that user's dispersal was since flushed): keep
		// popping until a live one is evicted.
	}
	c.pending[d.ID] = pendingDisp{round: round, payload: d.Payload}
	c.pendingQ = append(c.pendingQ, d.ID)
}

// flushPendingLocked moves every retained dispersal the session hosts into
// its event log. Delivery order across users is irrelevant (distinct
// clients); a client sees its newest available D̃ᵢ, exactly what late
// delivery means. c.mu held.
func (c *Coordinator) flushPendingLocked(s *session) {
	if len(c.pending) == 0 {
		return
	}
	for u, pd := range c.pending {
		if u < s.lo || u >= s.hi {
			continue
		}
		c.announceLocked(s, comm.AppendFrame(nil, comm.MsgDisperse, comm.EncodeDisperse(comm.Disperse{
			User:    u,
			Codec:   c.codec,
			Payload: pd.payload,
		})))
		delete(c.pending, u)
	}
}

// pruneRoundLocked drops a round from the live tail, moving any dispersal
// that never reached a session log into the retention store — a host that
// fell this far behind still gets its users' latest D̃ᵢ on its next
// announcement instead of silently losing it. c.mu held.
func (c *Coordinator) pruneRoundLocked(round int) {
	rs := c.rounds[round]
	if rs == nil {
		return
	}
	for i, d := range rs.dispersals {
		if !rs.delivered[i] {
			c.stashPendingLocked(round, d)
		}
	}
	delete(c.rounds, round)
}

// openRound binds the selected cohort to outcome slots, announces the round
// to every session, and returns its state. Users no session hosts are
// resolved as dropped immediately — a real deployment cannot train a user
// nobody runs.
func (c *Coordinator) openRound(round int, users []int) *roundState {
	rs := &roundState{
		round:       round,
		slots:       make(map[int]int, len(users)),
		unresolved:  make(map[int]bool),
		outcomes:    make([]fed.ClientOutcome, len(users)),
		done:        make(chan struct{}),
		resultReady: make(chan struct{}),
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for slot, u := range users {
		rs.slots[u] = slot
		rs.outcomes[slot] = fed.ClientOutcome{ID: u, Dropped: true}
		if c.sessionForLocked(u) != nil {
			rs.unresolved[u] = true
			rs.pending++
		}
	}
	if rs.pending == 0 {
		rs.closed = true
		close(rs.done)
	}
	c.rounds[round] = rs
	// Keep a short tail of closed rounds so a participant one round behind
	// can still fetch its dispersals; anything undelivered moves to the
	// bounded retention store instead of vanishing.
	c.pruneRoundLocked(round - 3)
	for _, s := range c.sessions {
		c.flushPendingLocked(s)
		hosted := make([]int, 0, 8)
		for _, u := range users {
			if s.lo <= u && u < s.hi {
				hosted = append(hosted, u)
			}
		}
		c.announceLocked(s, comm.AppendFrame(nil, comm.MsgRoundStart,
			comm.EncodeRoundStart(comm.RoundStart{Round: round, Users: hosted})))
	}
	return rs
}

// waitRound blocks until the round's uploads resolve, the straggler deadline
// expires (pending clients become dropped), or ctx ends.
func (c *Coordinator) waitRound(ctx context.Context, rs *roundState) error {
	var deadline <-chan time.Time
	if c.opts.Deadline > 0 {
		timer := time.NewTimer(c.opts.Deadline)
		defer timer.Stop()
		deadline = timer.C
	}
	select {
	case <-rs.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-deadline:
		c.mu.Lock()
		if !rs.closed {
			// Slots were pre-initialised as dropped, so stragglers need only
			// be forgotten.
			rs.closed = true
			for u := range rs.unresolved {
				delete(rs.unresolved, u)
			}
			rs.pending = 0
			close(rs.done)
		}
		c.mu.Unlock()
		return nil
	}
}

// sessionForLocked finds the session hosting user u, if any. c.mu held.
func (c *Coordinator) sessionForLocked(u int) *session {
	for _, s := range c.sessions {
		if s.lo <= u && u < s.hi {
			return s
		}
	}
	return nil
}

// announceLocked appends a framed event to the session's log and wakes any
// parked poll. c.mu held.
func (c *Coordinator) announceLocked(s *session, frame []byte) {
	s.events = append(s.events, frame)
	close(s.wake)
	s.wake = make(chan struct{})
}

// resolveUpload records one user's outcome, closing the round when it was
// the last pending upload. Returns false when the round no longer accepts
// uploads for this user (closed, unknown, or already resolved).
func (c *Coordinator) resolveUpload(round int, user int, o fed.ClientOutcome) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	rs := c.rounds[round]
	if rs == nil || rs.closed || !rs.unresolved[user] {
		return false
	}
	rs.outcomes[rs.slots[user]] = o
	delete(rs.unresolved, user)
	rs.pending--
	if rs.pending == 0 {
		rs.closed = true
		close(rs.done)
	}
	return true
}

// --- HTTP handlers -------------------------------------------------------

// countReader counts body bytes for the transport meter.
type countReader struct {
	r io.Reader
	n int64
}

func (cr *countReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

// writeFrame sends one framed message and meters it.
func (c *Coordinator) writeFrame(w io.Writer, t comm.MsgType, payload []byte) {
	n, _ := comm.WriteFrame(w, t, payload)
	c.wireOut.Add(int64(n))
}

// writeError sends a MsgError frame.
func (c *Coordinator) writeError(w http.ResponseWriter, format string, args ...any) {
	c.writeFrame(w, comm.MsgError, []byte(fmt.Sprintf(format, args...)))
}

// queryInt parses a required integer query parameter.
func queryInt(r *http.Request, key string) (int64, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return 0, fmt.Errorf("coord: missing %q parameter", key)
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("coord: bad %q parameter: %v", key, err)
	}
	return n, nil
}

// sessionFromQuery resolves the token parameter to a live session.
func (c *Coordinator) sessionFromQuery(r *http.Request) (*session, error) {
	tok, err := queryInt(r, "token")
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	s := c.sessions[uint64(tok)]
	c.mu.Unlock()
	if s == nil {
		return nil, fmt.Errorf("coord: unknown session token %d", tok)
	}
	return s, nil
}

func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	cr := &countReader{r: r.Body}
	defer func() { c.wireIn.Add(cr.n) }()
	mt, payload, err := comm.ReadFrame(cr)
	if err != nil || mt != comm.MsgJoin {
		c.writeError(w, "coord: join expects a %v frame: %v", comm.MsgJoin, err)
		return
	}
	j, err := comm.DecodeJoin(payload)
	if err != nil {
		c.writeError(w, "%v", err)
		return
	}
	if j.UserLo < 0 || j.UserHi > c.split.NumUsers || j.UserLo >= j.UserHi {
		c.writeError(w, "coord: join range [%d, %d) outside universe of %d users",
			j.UserLo, j.UserHi, c.split.NumUsers)
		return
	}
	c.mu.Lock()
	for _, s := range c.sessions {
		if j.UserLo < s.hi && s.lo < j.UserHi {
			c.mu.Unlock()
			c.writeError(w, "coord: join range [%d, %d) overlaps session %d hosting [%d, %d)",
				j.UserLo, j.UserHi, s.token, s.lo, s.hi)
			return
		}
	}
	c.nextToken++
	s := &session{token: c.nextToken, lo: j.UserLo, hi: j.UserHi, wake: make(chan struct{})}
	c.sessions[s.token] = s
	// A joining host immediately receives any retained dispersals for its
	// range — users whose D̃ᵢ outlived their round while nobody hosted them.
	c.flushPendingLocked(s)
	if c.down {
		s.events = append(s.events, comm.AppendFrame(nil, comm.MsgShutdown, nil))
	}
	c.mu.Unlock()
	c.writeFrame(w, comm.MsgJoinAck, comm.EncodeJoinAck(comm.JoinAck{
		Token:      s.token,
		NumUsers:   c.split.NumUsers,
		NumItems:   c.split.NumItems,
		DataSeed:   c.opts.DataSeed,
		TestFrac:   c.opts.TestFrac,
		Profile:    c.opts.Profile,
		ConfigJSON: c.configJSON,
	}))
}

func (c *Coordinator) handleLeave(w http.ResponseWriter, r *http.Request) {
	s, err := c.sessionFromQuery(r)
	if err != nil {
		c.writeError(w, "%v", err)
		return
	}
	c.mu.Lock()
	delete(c.sessions, s.token)
	// A departed host's pending users resolve as dropped so open rounds can
	// close; their slots were pre-initialised that way.
	for _, rs := range c.rounds {
		if rs.closed {
			continue
		}
		for u := range rs.unresolved {
			if s.lo <= u && u < s.hi {
				delete(rs.unresolved, u)
				rs.pending--
			}
		}
		if rs.pending == 0 {
			rs.closed = true
			close(rs.done)
		}
	}
	c.mu.Unlock()
	c.writeFrame(w, comm.MsgAck, nil)
}

func (c *Coordinator) handlePoll(w http.ResponseWriter, r *http.Request) {
	s, err := c.sessionFromQuery(r)
	if err != nil {
		c.writeError(w, "%v", err)
		return
	}
	after, err := queryInt(r, "after")
	if err != nil {
		c.writeError(w, "%v", err)
		return
	}
	deadline := time.NewTimer(pollWait)
	defer deadline.Stop()
	for {
		c.mu.Lock()
		if int(after) > len(s.events) {
			c.mu.Unlock()
			c.writeError(w, "coord: poll cursor %d past event log (%d events)", after, len(s.events))
			return
		}
		if int(after) < len(s.events) {
			pendingEvents := make([][]byte, len(s.events)-int(after))
			copy(pendingEvents, s.events[after:])
			c.mu.Unlock()
			for _, frame := range pendingEvents {
				n, _ := w.Write(frame)
				c.wireOut.Add(int64(n))
			}
			return
		}
		wake := s.wake
		c.mu.Unlock()
		select {
		case <-wake:
		case <-deadline.C:
			// Heartbeat: the participant re-polls with the same cursor.
			c.writeFrame(w, comm.MsgAck, nil)
			return
		case <-r.Context().Done():
			return
		}
	}
}

// handleUpload ingests one user's upload stream for an open round. The body
// classifies the client exactly as a lossy transport would: empty body →
// dropped; begin + at least one prediction but no end frame → truncated
// responder (the decoded prefix counts); end frame → complete responder.
func (c *Coordinator) handleUpload(w http.ResponseWriter, r *http.Request) {
	s, err := c.sessionFromQuery(r)
	if err != nil {
		c.writeError(w, "%v", err)
		return
	}
	round, err := queryInt(r, "round")
	if err != nil {
		c.writeError(w, "%v", err)
		return
	}
	user, err := queryInt(r, "user")
	if err != nil {
		c.writeError(w, "%v", err)
		return
	}
	if int(user) < s.lo || int(user) >= s.hi {
		c.writeError(w, "coord: session %d does not host user %d", s.token, user)
		return
	}

	cr := &countReader{r: r.Body}
	outcome, perr := c.readUpload(cr, int(round), int(user))
	c.wireIn.Add(cr.n)
	if perr != nil {
		// Malformed streams (bad magic, wrong frame order, codec garbage)
		// are protocol errors, not transport faults: reject, and resolve the
		// slot as dropped so the round never hangs on a broken peer.
		c.resolveUpload(int(round), int(user), fed.ClientOutcome{ID: int(user), Dropped: true})
		c.writeError(w, "%v", perr)
		return
	}
	if !c.resolveUpload(int(round), int(user), outcome) {
		c.writeError(w, "coord: round %d closed for user %d", round, user)
		return
	}
	c.writeFrame(w, comm.MsgAck, comm.EncodeRound(int(round)))
}

// readUpload parses an upload body into the outcome the engine absorbs.
// Transport cuts (clean EOF without MsgUploadEnd, or a frame severed
// mid-payload) classify as drop/truncation; anything else is an error.
func (c *Coordinator) readUpload(body io.Reader, round, user int) (fed.ClientOutcome, error) {
	mt, payload, err := comm.ReadFrame(body)
	if err == io.EOF {
		return fed.ClientOutcome{ID: user, Dropped: true}, nil // connection drop
	}
	if err != nil && err != io.ErrUnexpectedEOF {
		return fed.ClientOutcome{}, err
	}
	if err == io.ErrUnexpectedEOF {
		return fed.ClientOutcome{ID: user, Dropped: true}, nil // cut inside the opening frame
	}
	if mt != comm.MsgUploadBegin {
		return fed.ClientOutcome{}, fmt.Errorf("coord: upload stream opens with %v, want %v", mt, comm.MsgUploadBegin)
	}
	begin, err := comm.DecodeUploadBegin(payload)
	if err != nil {
		return fed.ClientOutcome{}, err
	}
	if begin.Round != round || begin.User != user {
		return fed.ClientOutcome{}, fmt.Errorf("coord: upload-begin names round %d user %d, request says round %d user %d",
			begin.Round, begin.User, round, user)
	}

	var preds []comm.Prediction
	var predBytes int
	complete := false
	for !complete {
		mt, payload, err = comm.ReadFrame(body)
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			break // transport cut after the opening frame
		}
		if err != nil {
			return fed.ClientOutcome{}, err
		}
		switch mt {
		case comm.MsgUploadChunk:
			chunk, err := begin.Codec.Decode(payload)
			if err != nil {
				return fed.ClientOutcome{}, err
			}
			preds = append(preds, chunk...)
			predBytes += len(payload)
		case comm.MsgUploadEnd:
			complete = true
		default:
			return fed.ClientOutcome{}, fmt.Errorf("coord: unexpected %v frame inside upload stream", mt)
		}
	}
	if complete && len(preds) != begin.Count {
		return fed.ClientOutcome{}, fmt.Errorf("coord: upload declared %d predictions, carried %d", begin.Count, len(preds))
	}
	if len(preds) == 0 {
		// Begin frame but no predictions survived: nothing to train on —
		// the client drops.
		return fed.ClientOutcome{ID: user, Dropped: true}, nil
	}
	return fed.ClientOutcome{
		ID:          user,
		Upload:      preds,
		UploadBytes: predBytes,
		Loss:        begin.Loss,
		AttackF1:    begin.AttackF1,
	}, nil
}

// handleResult streams the session's dispersals for a closed round: one
// MsgDisperse per hosted responder, then MsgRoundEnd. Blocks until the
// round's result is published.
func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	s, err := c.sessionFromQuery(r)
	if err != nil {
		c.writeError(w, "%v", err)
		return
	}
	round, err := queryInt(r, "round")
	if err != nil {
		c.writeError(w, "%v", err)
		return
	}
	c.mu.Lock()
	rs := c.rounds[int(round)]
	c.mu.Unlock()
	if rs == nil {
		c.writeError(w, "coord: round %d is not available (never opened, or pruned)", round)
		return
	}
	select {
	case <-rs.resultReady:
	case <-r.Context().Done():
		return
	}
	// dispersals is immutable once resultReady closes; the delivered marks
	// are set under the lock (pruneRoundLocked reads them) and the frames
	// written outside it.
	c.mu.Lock()
	var frames [][]byte
	for i, d := range rs.dispersals {
		if d.ID < s.lo || d.ID >= s.hi {
			continue
		}
		rs.delivered[i] = true
		frames = append(frames, comm.AppendFrame(nil, comm.MsgDisperse, comm.EncodeDisperse(comm.Disperse{
			User:    d.ID,
			Codec:   c.codec,
			Payload: d.Payload,
		})))
	}
	c.mu.Unlock()
	for _, f := range frames {
		n, _ := w.Write(f)
		c.wireOut.Add(int64(n))
	}
	c.writeFrame(w, comm.MsgRoundEnd, comm.EncodeRound(int(round)))
}
