// Package nn implements the neural-network substrate for the recommenders:
// trainable parameters, layers with hand-derived backpropagation, losses and
// optimizers. There is no autodiff — every model in internal/models derives
// its gradients analytically and the tests verify them against finite
// differences.
package nn

import (
	"math"

	"ptffedrec/internal/rng"
	"ptffedrec/internal/tensor"
)

// Param is a trainable matrix with an accumulated gradient.
type Param struct {
	Name string
	W    *tensor.Matrix
	Grad *tensor.Matrix
}

// NewParam allocates a rows×cols parameter with zero values and gradient.
func NewParam(name string, rows, cols int) *Param {
	return &Param{
		Name: name,
		W:    tensor.New(rows, cols),
		Grad: tensor.New(rows, cols),
	}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// NumValues returns the number of scalar values in the parameter.
func (p *Param) NumValues() int { return len(p.W.Data) }

// Xavier fills m with the Glorot/Xavier uniform distribution
// U(±sqrt(6/(fanIn+fanOut))), the initialization used by the reference
// implementations of NeuMF/NGCF/LightGCN.
func Xavier(s *rng.Stream, m *tensor.Matrix, fanIn, fanOut int) {
	limit := math.Sqrt(6 / float64(fanIn+fanOut))
	for i := range m.Data {
		m.Data[i] = s.Float64Range(-limit, limit)
	}
}

// Normal fills m with N(0, std²) values.
func Normal(s *rng.Stream, m *tensor.Matrix, std float64) {
	for i := range m.Data {
		m.Data[i] = s.Normal(0, std)
	}
}
