package nn

import "math"

// bceEps clamps predictions away from 0 and 1 so log never overflows. The
// paper's losses (Eq. 3 and Eq. 5) are binary cross-entropy with hard labels
// on the client's own data and soft labels everywhere else.
const bceEps = 1e-7

// BCE returns the mean binary cross-entropy between predictions (post
// sigmoid) and targets in [0,1].
func BCE(pred, target []float64) float64 {
	if len(pred) != len(target) {
		panic("nn: BCE length mismatch")
	}
	if len(pred) == 0 {
		return 0
	}
	var sum float64
	for i, p := range pred {
		p = clamp01(p)
		t := target[i]
		sum += -(t*math.Log(p) + (1-t)*math.Log(1-p))
	}
	return sum / float64(len(pred))
}

// BCEOne returns the unreduced binary cross-entropy of a single
// (prediction, target) pair, with the same clamping as BCE. The gradient
// workspace engine uses it to sum chunk losses before one final mean.
func BCEOne(pred, target float64) float64 {
	p := clamp01(pred)
	return -(target*math.Log(p) + (1-target)*math.Log(1-p))
}

// BCELogitGrad returns dL/dlogit for the sigmoid+BCE composition with mean
// reduction: (σ(logit) − target) / n. Passing the already-computed prediction
// avoids recomputing the sigmoid.
func BCELogitGrad(pred, target []float64) []float64 {
	if len(pred) != len(target) {
		panic("nn: BCELogitGrad length mismatch")
	}
	n := float64(len(pred))
	out := make([]float64, len(pred))
	for i, p := range pred {
		out[i] = (p - target[i]) / n
	}
	return out
}

func clamp01(p float64) float64 {
	if p < bceEps {
		return bceEps
	}
	if p > 1-bceEps {
		return 1 - bceEps
	}
	return p
}
