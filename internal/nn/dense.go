package nn

import (
	"fmt"

	"ptffedrec/internal/rng"
	"ptffedrec/internal/tensor"
)

// Dense is a fully connected layer computing y = x·W + b for a batch of row
// vectors x.
type Dense struct {
	In, Out int
	W       *Param // In×Out
	B       *Param // 1×Out
}

// NewDense returns a Dense layer with Xavier-initialized weights and zero
// bias.
func NewDense(name string, in, out int, s *rng.Stream) *Dense {
	d := &Dense{
		In:  in,
		Out: out,
		W:   NewParam(name+".W", in, out),
		B:   NewParam(name+".b", 1, out),
	}
	Xavier(s, d.W.W, in, out)
	return d
}

// Forward computes x·W + b. x is batch×In; the result is batch×Out.
func (d *Dense) Forward(x *tensor.Matrix) *tensor.Matrix {
	return d.ForwardInto(tensor.New(x.Rows, d.Out), x)
}

// ForwardInto computes dst = x·W + b, reusing dst's storage — the
// allocation-free forward batched scoring drives through a preallocated
// workspace. dst must be x.Rows×Out; it is returned for chaining.
func (d *Dense) ForwardInto(dst, x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != d.In {
		panic(fmt.Sprintf("nn: Dense %s forward with %d inputs, want %d", d.W.Name, x.Cols, d.In))
	}
	if dst.Rows != x.Rows || dst.Cols != d.Out {
		panic(fmt.Sprintf("nn: Dense %s ForwardInto dst %dx%d for batch %d", d.W.Name, dst.Rows, dst.Cols, x.Rows))
	}
	tensor.MatMulInto(dst, x, d.W.W)
	for i := 0; i < dst.Rows; i++ {
		tensor.AddVec(d.B.W.Row(0), dst.Row(i))
	}
	return dst
}

// Backward accumulates dW = xᵀ·dy and db = Σ dy into the layer's gradients
// and returns dx = dy·Wᵀ. x must be the same batch passed to Forward.
func (d *Dense) Backward(x, dy *tensor.Matrix) *tensor.Matrix {
	return d.BackwardInto(x, dy, d.W.Grad, d.B.Grad)
}

// BackwardInto is Backward with caller-provided gradient accumulators, so a
// batch shard can collect its parameter gradients into a private workspace
// instead of the layer's shared Grad matrices. wGrad must be In×Out and
// bGrad 1×Out.
func (d *Dense) BackwardInto(x, dy, wGrad, bGrad *tensor.Matrix) *tensor.Matrix {
	if dy.Cols != d.Out || x.Rows != dy.Rows {
		panic(fmt.Sprintf("nn: Dense %s backward shapes x=%dx%d dy=%dx%d",
			d.W.Name, x.Rows, x.Cols, dy.Rows, dy.Cols))
	}
	wGrad.AddInPlace(tensor.MatMulATB(x, dy))
	brow := bGrad.Row(0)
	for i := 0; i < dy.Rows; i++ {
		tensor.AddVec(dy.Row(i), brow)
	}
	return tensor.MatMulABT(dy, d.W.W)
}

// Params returns the layer's trainable parameters.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }
