package nn

import (
	"fmt"
	"math"

	"ptffedrec/internal/tensor"
)

// Sigmoid returns σ(x) computed in a numerically stable way.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// SigmoidMat applies σ element-wise, returning a new matrix.
func SigmoidMat(x *tensor.Matrix) *tensor.Matrix {
	out := x.Clone()
	out.Apply(Sigmoid)
	return out
}

// ReLU applies max(0, x) element-wise, returning a new matrix.
func ReLU(x *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(x.Rows, x.Cols)
	ReLUInto(out, x)
	return out
}

// ReLUInto computes dst = max(0, x) element-wise, reusing dst's storage.
func ReLUInto(dst, x *tensor.Matrix) *tensor.Matrix {
	if dst.Rows != x.Rows || dst.Cols != x.Cols {
		panic(fmt.Sprintf("nn: ReLUInto dst %dx%d for %dx%d", dst.Rows, dst.Cols, x.Rows, x.Cols))
	}
	for i, v := range x.Data {
		if v > 0 {
			dst.Data[i] = v
		} else {
			dst.Data[i] = 0
		}
	}
	return dst
}

// ReLUBackward masks the upstream gradient dy by the activation pattern of
// the pre-activation input x: dx = dy ⊙ 1[x > 0].
func ReLUBackward(x, dy *tensor.Matrix) *tensor.Matrix {
	out := dy.Clone()
	for i, v := range x.Data {
		if v <= 0 {
			out.Data[i] = 0
		}
	}
	return out
}

// LeakyReLU applies max(αx, x) element-wise (NGCF uses α = 0.2).
func LeakyReLU(x *tensor.Matrix, alpha float64) *tensor.Matrix {
	out := x.Clone()
	out.Apply(func(v float64) float64 {
		if v > 0 {
			return v
		}
		return alpha * v
	})
	return out
}

// LeakyReLUBackward computes dx = dy ⊙ LeakyReLU'(x).
func LeakyReLUBackward(x, dy *tensor.Matrix, alpha float64) *tensor.Matrix {
	out := dy.Clone()
	for i, v := range x.Data {
		if v <= 0 {
			out.Data[i] *= alpha
		}
	}
	return out
}

// Tanh applies tanh element-wise, returning a new matrix.
func Tanh(x *tensor.Matrix) *tensor.Matrix {
	out := x.Clone()
	out.Apply(math.Tanh)
	return out
}

// TanhBackward computes dx = dy ⊙ (1 − tanh(x)²) given the activation output
// y = tanh(x).
func TanhBackward(y, dy *tensor.Matrix) *tensor.Matrix {
	out := dy.Clone()
	for i, v := range y.Data {
		out.Data[i] *= 1 - v*v
	}
	return out
}
