package nn

import (
	"io"
	"math"

	"ptffedrec/internal/persist"
	"ptffedrec/internal/tensor"
)

// Optimizer applies accumulated gradients to parameters and clears them.
type Optimizer interface {
	// Step updates every parameter from its gradient and zeroes the
	// gradients.
	Step(params []*Param)
}

// SGD is plain stochastic gradient descent with optional L2 weight decay.
type SGD struct {
	LR          float64
	WeightDecay float64
}

// Step applies p.W -= lr * (p.Grad + wd*p.W) and zeroes gradients.
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		for i, g := range p.Grad.Data {
			p.W.Data[i] -= o.LR * (g + o.WeightDecay*p.W.Data[i])
		}
		p.ZeroGrad()
	}
}

// Adam implements Kingma & Ba (2014) with per-parameter moment state. The
// paper uses Adam with lr = 1e-3 for every model.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	WeightDecay           float64

	state map[*Param]*adamState
}

type adamState struct {
	m, v *tensor.Matrix
	t    int
}

// NewAdam returns an Adam optimizer with the standard β₁=0.9, β₂=0.999,
// ε=1e-8 defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, state: map[*Param]*adamState{}}
}

// Step applies one Adam update to every parameter and zeroes gradients.
func (o *Adam) Step(params []*Param) {
	for _, p := range params {
		st, ok := o.state[p]
		if !ok {
			st = &adamState{m: tensor.New(p.W.Rows, p.W.Cols), v: tensor.New(p.W.Rows, p.W.Cols)}
			o.state[p] = st
		}
		st.t++
		bc1 := 1 - math.Pow(o.Beta1, float64(st.t))
		bc2 := 1 - math.Pow(o.Beta2, float64(st.t))
		for i, g := range p.Grad.Data {
			g += o.WeightDecay * p.W.Data[i]
			st.m.Data[i] = o.Beta1*st.m.Data[i] + (1-o.Beta1)*g
			st.v.Data[i] = o.Beta2*st.v.Data[i] + (1-o.Beta2)*g*g
			mHat := st.m.Data[i] / bc1
			vHat := st.v.Data[i] / bc2
			p.W.Data[i] -= o.LR * mHat / (math.Sqrt(vHat) + o.Eps)
		}
		p.ZeroGrad()
	}
}

// SnapshotState writes the optimizer's moment estimates for params, in the
// given order — the caller's canonical parameter order versions the layout.
// Parameters that have never been stepped serialise as a zero state, which is
// exactly the state Step would lazily create for them.
func (o *Adam) SnapshotState(w io.Writer, params []*Param) error {
	for _, p := range params {
		st, ok := o.state[p]
		if !ok {
			st = &adamState{m: tensor.New(p.W.Rows, p.W.Cols), v: tensor.New(p.W.Rows, p.W.Cols)}
		}
		if err := persist.WriteUint64(w, uint64(st.t)); err != nil {
			return err
		}
		if err := persist.WriteFloat64s(w, st.m.Data); err != nil {
			return err
		}
		if err := persist.WriteFloat64s(w, st.v.Data); err != nil {
			return err
		}
	}
	return nil
}

// RestoreState reads moment estimates previously written by SnapshotState
// with the same parameter order, so a restored model's next Step continues
// the bias-corrected moment sequence exactly.
func (o *Adam) RestoreState(r io.Reader, params []*Param) error {
	for _, p := range params {
		st, ok := o.state[p]
		if !ok {
			st = &adamState{m: tensor.New(p.W.Rows, p.W.Cols), v: tensor.New(p.W.Rows, p.W.Cols)}
			o.state[p] = st
		}
		t, err := persist.ReadUint64(r)
		if err != nil {
			return err
		}
		st.t = int(t)
		if err := persist.ReadFloat64sInto(r, st.m.Data); err != nil {
			return err
		}
		if err := persist.ReadFloat64sInto(r, st.v.Data); err != nil {
			return err
		}
	}
	return nil
}

// ClipGradNorm rescales all gradients so their global L2 norm is at most
// maxNorm, returning the pre-clip norm. Stabilises the early rounds of the
// graph models on sparse uploads.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	var total float64
	for _, p := range params {
		for _, g := range p.Grad.Data {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			p.Grad.Scale(scale)
		}
	}
	return norm
}
