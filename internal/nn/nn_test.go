package nn

import (
	"math"
	"testing"
	"testing/quick"

	"ptffedrec/internal/rng"
	"ptffedrec/internal/tensor"
)

func TestSigmoidStable(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1000, 1},
		{-1000, 0},
	}
	for _, c := range cases {
		got := Sigmoid(c.x)
		if math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("Sigmoid(%v) = %v, want %v", c.x, got, c.want)
		}
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("Sigmoid(%v) not finite", c.x)
		}
	}
}

func TestSigmoidSymmetry(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		return math.Abs(Sigmoid(x)+Sigmoid(-x)-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReLUForwardBackward(t *testing.T) {
	x := tensor.FromSlice(1, 4, []float64{-1, 0, 2, -3})
	y := ReLU(x)
	want := []float64{0, 0, 2, 0}
	for i, w := range want {
		if y.Data[i] != w {
			t.Fatalf("ReLU[%d] = %v", i, y.Data[i])
		}
	}
	dy := tensor.FromSlice(1, 4, []float64{1, 1, 1, 1})
	dx := ReLUBackward(x, dy)
	wantG := []float64{0, 0, 1, 0}
	for i, w := range wantG {
		if dx.Data[i] != w {
			t.Fatalf("ReLUBackward[%d] = %v", i, dx.Data[i])
		}
	}
}

func TestLeakyReLU(t *testing.T) {
	x := tensor.FromSlice(1, 2, []float64{-2, 3})
	y := LeakyReLU(x, 0.2)
	if y.Data[0] != -0.4 || y.Data[1] != 3 {
		t.Fatalf("LeakyReLU -> %v", y.Data)
	}
	dx := LeakyReLUBackward(x, tensor.FromSlice(1, 2, []float64{1, 1}), 0.2)
	if dx.Data[0] != 0.2 || dx.Data[1] != 1 {
		t.Fatalf("LeakyReLUBackward -> %v", dx.Data)
	}
}

func TestTanhBackward(t *testing.T) {
	x := tensor.FromSlice(1, 1, []float64{0.7})
	y := Tanh(x)
	dy := tensor.FromSlice(1, 1, []float64{1})
	dx := TanhBackward(y, dy)
	want := 1 - math.Tanh(0.7)*math.Tanh(0.7)
	if math.Abs(dx.Data[0]-want) > 1e-12 {
		t.Fatalf("TanhBackward = %v, want %v", dx.Data[0], want)
	}
}

func TestBCEKnownValues(t *testing.T) {
	// Perfect prediction -> ~0 loss; 0.5 prediction -> ln 2.
	if got := BCE([]float64{0.5}, []float64{1}); math.Abs(got-math.Ln2) > 1e-9 {
		t.Fatalf("BCE(0.5,1) = %v, want ln2", got)
	}
	if got := BCE([]float64{1 - 1e-9}, []float64{1}); got > 1e-5 {
		t.Fatalf("BCE(≈1,1) = %v, want ≈0", got)
	}
	if got := BCE(nil, nil); got != 0 {
		t.Fatalf("BCE(empty) = %v", got)
	}
}

func TestBCEClampsExtremes(t *testing.T) {
	got := BCE([]float64{0, 1}, []float64{1, 0})
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("BCE at extremes not finite: %v", got)
	}
}

func TestBCESoftLabels(t *testing.T) {
	// With soft target t, loss is minimised at p = t.
	at := BCE([]float64{0.3}, []float64{0.3})
	off := BCE([]float64{0.5}, []float64{0.3})
	if at >= off {
		t.Fatalf("soft-label BCE not minimised at target: %v vs %v", at, off)
	}
}

// numGrad computes the centered finite difference of f at x[i].
func numGrad(f func() float64, x []float64, i int) float64 {
	const h = 1e-6
	orig := x[i]
	x[i] = orig + h
	fp := f()
	x[i] = orig - h
	fm := f()
	x[i] = orig
	return (fp - fm) / (2 * h)
}

func TestDenseGradCheck(t *testing.T) {
	s := rng.New(42)
	d := NewDense("t", 3, 2, s)
	x := tensor.FromSlice(2, 3, []float64{0.1, -0.2, 0.3, 0.5, 0.4, -0.1})
	target := []float64{1, 0, 0.7, 0.2}

	loss := func() float64 {
		y := d.Forward(x)
		pred := make([]float64, len(y.Data))
		for i, v := range y.Data {
			pred[i] = Sigmoid(v)
		}
		return BCE(pred, target)
	}

	// Analytic gradients.
	y := d.Forward(x)
	pred := make([]float64, len(y.Data))
	for i, v := range y.Data {
		pred[i] = Sigmoid(v)
	}
	g := BCELogitGrad(pred, target)
	dy := tensor.FromSlice(2, 2, g)
	dx := d.Backward(x, dy)

	// Check W gradient.
	for i := range d.W.W.Data {
		want := numGrad(loss, d.W.W.Data, i)
		got := d.W.Grad.Data[i]
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("dW[%d] = %v, want %v", i, got, want)
		}
	}
	// Check b gradient.
	for i := range d.B.W.Data {
		want := numGrad(loss, d.B.W.Data, i)
		got := d.B.Grad.Data[i]
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("db[%d] = %v, want %v", i, got, want)
		}
	}
	// Check input gradient.
	for i := range x.Data {
		want := numGrad(loss, x.Data, i)
		if math.Abs(dx.Data[i]-want) > 1e-6 {
			t.Fatalf("dx[%d] = %v, want %v", i, dx.Data[i], want)
		}
	}
}

func TestSGDStep(t *testing.T) {
	p := NewParam("p", 1, 2)
	p.W.Data[0], p.W.Data[1] = 1, 2
	p.Grad.Data[0], p.Grad.Data[1] = 0.5, -0.5
	(&SGD{LR: 0.1}).Step([]*Param{p})
	if math.Abs(p.W.Data[0]-0.95) > 1e-12 || math.Abs(p.W.Data[1]-2.05) > 1e-12 {
		t.Fatalf("SGD -> %v", p.W.Data)
	}
	if p.Grad.Data[0] != 0 {
		t.Fatal("SGD did not zero gradients")
	}
}

func TestSGDWeightDecay(t *testing.T) {
	p := NewParam("p", 1, 1)
	p.W.Data[0] = 1
	(&SGD{LR: 0.1, WeightDecay: 0.5}).Step([]*Param{p})
	if math.Abs(p.W.Data[0]-0.95) > 1e-12 {
		t.Fatalf("SGD decay -> %v", p.W.Data[0])
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimise (w-3)² — Adam should land close to 3.
	p := NewParam("w", 1, 1)
	opt := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		p.Grad.Data[0] = 2 * (p.W.Data[0] - 3)
		opt.Step([]*Param{p})
	}
	if math.Abs(p.W.Data[0]-3) > 1e-3 {
		t.Fatalf("Adam converged to %v, want 3", p.W.Data[0])
	}
}

func TestAdamFirstStepMagnitude(t *testing.T) {
	// Bias correction makes the first step ≈ lr regardless of gradient scale.
	p := NewParam("w", 1, 1)
	p.Grad.Data[0] = 1e-4
	NewAdam(0.01).Step([]*Param{p})
	if math.Abs(math.Abs(p.W.Data[0])-0.01) > 1e-4 {
		t.Fatalf("first Adam step = %v, want ≈0.01", p.W.Data[0])
	}
}

func TestClipGradNorm(t *testing.T) {
	p := NewParam("p", 1, 2)
	p.Grad.Data[0], p.Grad.Data[1] = 3, 4 // norm 5
	pre := ClipGradNorm([]*Param{p}, 1)
	if math.Abs(pre-5) > 1e-12 {
		t.Fatalf("pre-clip norm = %v", pre)
	}
	var norm float64
	for _, g := range p.Grad.Data {
		norm += g * g
	}
	if math.Abs(math.Sqrt(norm)-1) > 1e-9 {
		t.Fatalf("post-clip norm = %v", math.Sqrt(norm))
	}
}

func TestClipGradNormNoop(t *testing.T) {
	p := NewParam("p", 1, 1)
	p.Grad.Data[0] = 0.5
	ClipGradNorm([]*Param{p}, 1)
	if p.Grad.Data[0] != 0.5 {
		t.Fatal("clip modified a small gradient")
	}
}

func TestXavierRange(t *testing.T) {
	s := rng.New(1)
	m := tensor.New(10, 10)
	Xavier(s, m, 10, 10)
	limit := math.Sqrt(6.0 / 20)
	for _, v := range m.Data {
		if v < -limit || v > limit {
			t.Fatalf("Xavier value %v outside ±%v", v, limit)
		}
	}
	if m.Norm() == 0 {
		t.Fatal("Xavier left matrix zero")
	}
}
