package metrics

import (
	"math"
	"reflect"
	"testing"

	"ptffedrec/internal/nn"
	"ptffedrec/internal/rng"
)

// probPushAll is the probability-domain reference for the logit selector: σ
// applied to every logit, then the ordinary TopKSelector — exactly the
// computation the logit-domain engine replaces, pushed in the same ascending
// index order.
func probPushAll(logits []float64, k int) []int {
	var sel TopKSelector
	sel.Reset(k)
	for i, l := range logits {
		sel.Push(i, nn.Sigmoid(l))
	}
	return sel.Into(nil)
}

func logitPushAll(sel *LogitTopKSelector, logits []float64, k int) []int {
	sel.Reset(k)
	for i, l := range logits {
		sel.Push(i, l)
	}
	return sel.Into(nil)
}

// adversarialLogits builds a vector designed to break a selector that trusts
// logit comparisons through the sigmoid: saturated tails (σ rounds to exactly
// 0 or 1, so distinct logits collapse), math.Nextafter neighbours (adjacent
// representable logits whose probabilities collapse because σ' compresses),
// exact duplicates, and a few moderate values that stay distinct.
func adversarialLogits(s *rng.Stream, n int) []float64 {
	logits := make([]float64, n)
	for i := range logits {
		switch s.Intn(5) {
		case 0: // saturated high: σ == 1.0 for all of these
			logits[i] = 40 + s.Float64()
		case 1: // saturated low: σ == 0.0
			logits[i] = -40 - s.Float64()
		case 2: // nextafter pair seeds: collapse under σ almost surely
			base := s.Float64()*8 - 4
			logits[i] = math.Nextafter(base, math.Inf(1))
		case 3: // exact duplicates from a tiny grid
			logits[i] = float64(s.Intn(4)) - 2
		default:
			logits[i] = s.Normal(0, 3)
		}
	}
	return logits
}

// TestLogitTopKSelectorMatchesProbability is the tie-safety pin for the
// logit-domain engine: for logit vectors engineered so that σ collapses
// distinct logits to equal probabilities (saturated tails, nextafter
// neighbours, exact duplicates), selecting raw logits must reproduce the
// probability-domain selection exactly — same indices, same order.
func TestLogitTopKSelectorMatchesProbability(t *testing.T) {
	s := rng.New(17)
	var sel LogitTopKSelector
	for trial := 0; trial < 500; trial++ {
		n := 1 + s.Intn(200)
		k := s.Intn(n + 5)
		logits := adversarialLogits(s, n)
		want := probPushAll(logits, k)
		got := logitPushAll(&sel, logits, k)
		if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
			t.Fatalf("trial %d (n=%d k=%d): logit selection %v != probability selection %v\nlogits: %v",
				trial, n, k, got, want, logits)
		}
	}
}

// TestLogitTopKSelectorCollapsedTies drives the selector through vectors
// where every probability is identical — all logits saturated high — so the
// whole selection is tie-breaking, plus the all-saturated-low and constant
// cases. The selection must be the first k indices, as (prob desc, idx asc)
// demands.
func TestLogitTopKSelectorCollapsedTies(t *testing.T) {
	var sel LogitTopKSelector
	for _, logits := range [][]float64{
		{50, 51, 52, 53, 54, 55, 56, 57},         // σ == 1 everywhere, logits ascending
		{57, 56, 55, 54, 53, 52, 51, 50},         // σ == 1 everywhere, logits descending
		{-50, -51, -52, -53, -54, -55, -56, -57}, // σ == 0 everywhere
		{1.5, 1.5, 1.5, 1.5, 1.5, 1.5, 1.5, 1.5}, // exact duplicates
	} {
		for k := 0; k <= len(logits)+2; k++ {
			want := probPushAll(logits, k)
			got := logitPushAll(&sel, logits, k)
			if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
				t.Fatalf("logits %v k=%d: logit selection %v != probability selection %v",
					logits, k, got, want)
			}
		}
	}
}

// TestLogitTopKSelectorChunkedPush pins the streaming contract the batched
// evaluator and dispersal rely on: pushing the same ascending-index logits in
// arbitrary chunks yields the same selection as a single pass.
func TestLogitTopKSelectorChunkedPush(t *testing.T) {
	s := rng.New(23)
	var sel LogitTopKSelector
	for trial := 0; trial < 200; trial++ {
		n := 1 + s.Intn(300)
		k := 1 + s.Intn(25)
		chunk := 1 + s.Intn(40)
		logits := adversarialLogits(s, n)
		sel.Reset(k)
		for off := 0; off < n; off += chunk {
			end := off + chunk
			if end > n {
				end = n
			}
			for i := off; i < end; i++ {
				sel.Push(i, logits[i])
			}
		}
		got := sel.Into(nil)
		if want := probPushAll(logits, k); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (n=%d k=%d chunk=%d): chunked logit selection %v, want %v",
				trial, n, k, chunk, got, want)
		}
	}
}

// TestLogitTopKSelectorResetBacked checks the slab contract: selectors backed
// by segments of shared slabs select identically and never allocate.
func TestLogitTopKSelectorResetBacked(t *testing.T) {
	s := rng.New(29)
	const k, slots = 10, 4
	idx := make([]int, slots*k)
	logit := make([]float64, slots*k)
	prob := make([]float64, slots*k)
	sels := make([]LogitTopKSelector, slots)
	vectors := make([][]float64, slots)
	for i := range vectors {
		vectors[i] = adversarialLogits(s, 120)
	}
	var out []int
	run := func() {
		for i := range sels {
			lo, hi := i*k, (i+1)*k
			sels[i].ResetBacked(k, idx[lo:lo:hi], logit[lo:lo:hi], prob[lo:lo:hi])
			for j, l := range vectors[i] {
				sels[i].Push(j, l)
			}
		}
	}
	run()
	for i := range sels {
		out = sels[i].Into(out)
		if want := probPushAll(vectors[i], k); !reflect.DeepEqual(out, want) {
			t.Fatalf("slot %d: slab-backed selection %v, want %v", i, out, want)
		}
	}
	allocs := testing.AllocsPerRun(20, run)
	if allocs != 0 {
		t.Fatalf("slab-backed selections allocate %v times per run", allocs)
	}
}

// FuzzLogitTopKSelectorMatchesProbability is the engine-equivalence fuzz: for
// arbitrary byte-derived logit vectors mapped onto a scale that spans both
// saturated tails and the dense centre of σ, logit-domain selection must
// equal σ-then-select exactly.
func FuzzLogitTopKSelectorMatchesProbability(f *testing.F) {
	f.Add([]byte{}, 5)
	f.Add([]byte{0, 0, 0, 0}, 2)
	f.Add([]byte{255, 254, 253, 252, 251}, 3)
	f.Add([]byte{128, 127, 129, 128, 128}, 4)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 20)
	f.Fuzz(func(t *testing.T, data []byte, k int) {
		if k < 0 || k > len(data)+8 {
			return
		}
		logits := make([]float64, len(data))
		for i, b := range data {
			// [-51, 51]: bytes near the ends saturate σ, the middle stays
			// distinct, and repeated bytes give exact duplicates.
			logits[i] = (float64(b) - 127.5) * 0.4
		}
		want := probPushAll(logits, k)
		var sel LogitTopKSelector
		if got := logitPushAll(&sel, logits, k); len(want) > 0 && !reflect.DeepEqual(got, want) {
			t.Fatalf("logit selection %v, want %v (logits %v, k %d)", got, want, logits, k)
		}
	})
}
