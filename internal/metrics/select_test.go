package metrics

import (
	"reflect"
	"testing"

	"ptffedrec/internal/rng"
)

// refTopK is TopK's documented semantics, spelled out independently: the
// indices ordered by (score desc, index asc), truncated to k.
func refTopK(scores []float64, k int) []int {
	got := TopK(scores, k)
	out := make([]int, len(got))
	copy(out, got)
	return out
}

// pushAll streams every score through a TopKSelector and returns the
// selection.
func pushAll(scores []float64, k int) []int {
	var sel TopKSelector
	sel.Reset(k)
	for i, s := range scores {
		sel.Push(i, s)
	}
	return sel.Into(nil)
}

// TestTopKIntoMatchesSortTrials fuzzes the bounded-heap selection and the
// streaming selector against the stable-sort reference on tie-heavy vectors
// (scores drawn from a small grid, so duplicates are the norm) including
// k = 0, k ≥ n, and single-element edge cases.
func TestTopKIntoMatchesSortTrials(t *testing.T) {
	s := rng.New(99)
	var buf []int
	for trial := 0; trial < 600; trial++ {
		n := 1 + s.Intn(150)
		k := s.Intn(n + 5)
		scores := make([]float64, n)
		for i := range scores {
			// A small grid makes ties frequent; every 7th trial uses a
			// constant vector so the whole selection is tie-breaking.
			if trial%7 == 0 {
				scores[i] = 0.5
			} else {
				scores[i] = float64(s.Intn(10)) / 9
			}
		}
		want := refTopK(scores, k)
		buf = TopKInto(buf, scores, k)
		if len(want) == 0 {
			if len(buf) != 0 {
				t.Fatalf("trial %d: TopKInto = %v, want empty", trial, buf)
			}
		} else if !reflect.DeepEqual(buf, want) {
			t.Fatalf("trial %d (n=%d k=%d): TopKInto = %v, want %v", trial, n, k, buf, want)
		}
		got := pushAll(scores, k)
		if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
			t.Fatalf("trial %d (n=%d k=%d): TopKSelector = %v, want %v", trial, n, k, got, want)
		}
	}
}

// TestTopKSelectorChunkedPushMatches pins the streaming contract ScoreBlockTopK
// relies on: pushing the same scores in chunks (with Reset between selections)
// yields the same order as a single pass and as the sort path.
func TestTopKSelectorChunkedPushMatches(t *testing.T) {
	s := rng.New(3)
	var sel TopKSelector
	for trial := 0; trial < 200; trial++ {
		n := 1 + s.Intn(300)
		k := 1 + s.Intn(25)
		chunk := 1 + s.Intn(40)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = float64(s.Intn(6)) / 5
		}
		sel.Reset(k)
		for off := 0; off < n; off += chunk {
			end := off + chunk
			if end > n {
				end = n
			}
			for i := off; i < end; i++ {
				sel.Push(i, scores[i])
			}
		}
		got := sel.Into(nil)
		if want := refTopK(scores, k); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (n=%d k=%d chunk=%d): chunked selector = %v, want %v",
				trial, n, k, chunk, got, want)
		}
	}
}

// TestTopKIntoReusesDst checks the allocation contract: a dst with capacity k
// is reused, not replaced.
func TestTopKIntoReusesDst(t *testing.T) {
	scores := []float64{0.3, 0.9, 0.1, 0.9, 0.5}
	dst := make([]int, 0, 3)
	out := TopKInto(dst, scores, 3)
	if want := []int{1, 3, 4}; !reflect.DeepEqual(out, want) {
		t.Fatalf("TopKInto = %v, want %v", out, want)
	}
	if &out[0] != &dst[:1][0] {
		t.Fatal("TopKInto did not reuse dst's storage")
	}
	allocs := testing.AllocsPerRun(100, func() {
		out = TopKInto(out, scores, 3)
	})
	if allocs != 0 {
		t.Fatalf("TopKInto with warm dst allocates %v times per run", allocs)
	}
}

// FuzzTopKIntoMatchesSort is the equality fuzz the selection engine's
// bitwise-identity contract rests on: for arbitrary byte-derived score
// vectors — quantized to a coarse grid so duplicate scores and long tie runs
// dominate — TopKInto and the streaming TopKSelector must reproduce the
// stable-sort TopK order exactly.
func FuzzTopKIntoMatchesSort(f *testing.F) {
	f.Add([]byte{}, 5)
	f.Add([]byte{0, 0, 0, 0}, 2)
	f.Add([]byte{255, 0, 255, 0, 128}, 3)
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7}, 4)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 20)
	f.Fuzz(func(t *testing.T, data []byte, k int) {
		if k < 0 || k > len(data)+8 {
			return
		}
		scores := make([]float64, len(data))
		for i, b := range data {
			// 16 distinct values force heavy ties on any input of real length.
			scores[i] = float64(b%16) / 15
		}
		want := refTopK(scores, k)
		if got := TopKInto(nil, scores, k); !reflect.DeepEqual(got, append([]int{}, want...)) && len(want) > 0 {
			t.Fatalf("TopKInto = %v, want %v (scores %v, k %d)", got, want, scores, k)
		}
		if got := pushAll(scores, k); !reflect.DeepEqual(got, append([]int{}, want...)) && len(want) > 0 {
			t.Fatalf("TopKSelector = %v, want %v (scores %v, k %d)", got, want, scores, k)
		}
	})
}

// BenchmarkTopKSelect compares the full stable sort against the bounded-heap
// selection at eval-shaped sizes (a 4000-item catalogue, k=20) — the per-user
// cost the selection engine removes from the evaluation hot loop.
func BenchmarkTopKSelect(b *testing.B) {
	s := rng.New(1)
	scores := make([]float64, 4000)
	for i := range scores {
		scores[i] = s.Float64()
	}
	b.Run("sort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			TopK(scores, 20)
		}
	})
	b.Run("heap", func(b *testing.B) {
		var dst []int
		for i := 0; i < b.N; i++ {
			dst = TopKInto(dst, scores, 20)
		}
	})
}
