// Package metrics implements the evaluation measures used in the paper:
// Recall@K and NDCG@K for recommendation quality (computed over all items the
// user has not interacted with, as in §IV-B) and the F1 score for the Top
// Guess Attack's inference quality.
//
// It also hosts the selection engine those measures run on: TopK (the
// stable-sort reference), TopKInto (bounded-heap partial selection),
// TopKSelector (the streaming probability-domain selector), and
// LogitTopKSelector (the streaming logit-domain selector, which defers the
// sigmoid to the candidates that matter). All four produce the same index
// order — (score desc, index asc) — so callers pick by cost, never by result.
package metrics

import (
	"math"
	"sort"

	"ptffedrec/internal/nn"
)

// RecallAtK returns |topK ∩ relevant| / |relevant|.
func RecallAtK(ranked []int, relevant map[int]bool, k int) float64 {
	if len(relevant) == 0 {
		return 0
	}
	if k > len(ranked) {
		k = len(ranked)
	}
	hits := 0
	for _, v := range ranked[:k] {
		if relevant[v] {
			hits++
		}
	}
	return float64(hits) / float64(len(relevant))
}

// NDCGAtK returns the normalized discounted cumulative gain at rank k with
// binary relevance.
func NDCGAtK(ranked []int, relevant map[int]bool, k int) float64 {
	if len(relevant) == 0 {
		return 0
	}
	if k > len(ranked) {
		k = len(ranked)
	}
	var dcg float64
	for i, v := range ranked[:k] {
		if relevant[v] {
			dcg += 1 / math.Log2(float64(i)+2)
		}
	}
	ideal := len(relevant)
	if ideal > k {
		ideal = k
	}
	var idcg float64
	for i := 0; i < ideal; i++ {
		idcg += 1 / math.Log2(float64(i)+2)
	}
	if idcg == 0 {
		return 0
	}
	return dcg / idcg
}

// PrecisionAtK returns |topK ∩ relevant| / k.
func PrecisionAtK(ranked []int, relevant map[int]bool, k int) float64 {
	if k <= 0 {
		return 0
	}
	if k > len(ranked) {
		k = len(ranked)
	}
	if k == 0 {
		return 0
	}
	hits := 0
	for _, v := range ranked[:k] {
		if relevant[v] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// HitRateAtK returns 1 if any relevant item appears in the top k.
func HitRateAtK(ranked []int, relevant map[int]bool, k int) float64 {
	if k > len(ranked) {
		k = len(ranked)
	}
	for _, v := range ranked[:k] {
		if relevant[v] {
			return 1
		}
	}
	return 0
}

// F1Sets returns the F1 score of a predicted set against a truth set.
func F1Sets(predicted, truth map[int]bool) float64 {
	if len(predicted) == 0 || len(truth) == 0 {
		return 0
	}
	tp := 0
	for v := range predicted {
		if truth[v] {
			tp++
		}
	}
	if tp == 0 {
		return 0
	}
	precision := float64(tp) / float64(len(predicted))
	recall := float64(tp) / float64(len(truth))
	return 2 * precision * recall / (precision + recall)
}

// AUC returns the probability a random positive outscores a random negative.
func AUC(posScores, negScores []float64) float64 {
	if len(posScores) == 0 || len(negScores) == 0 {
		return 0.5
	}
	wins := 0.0
	for _, p := range posScores {
		for _, n := range negScores {
			switch {
			case p > n:
				wins++
			case p == n:
				wins += 0.5
			}
		}
	}
	return wins / float64(len(posScores)*len(negScores))
}

// TopK returns the indices of the k largest scores, highest first. Ties
// break toward the lower index for determinism.
//
// It stable-sorts a full O(n) index permutation, which makes it the reference
// semantics of the selection engine: TopKInto and TopKSelector produce the
// exact same index order in O(n log k) without materialising the permutation.
// Hot paths should prefer those; TopK remains for small inputs and as the
// baseline the select-vs-sort comparisons measure against.
func TopK(scores []float64, k int) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// TopKInto returns the indices of the k largest scores ordered
// (score desc, index asc) — bitwise-identical to TopK's stable-sort order —
// selecting through a bounded min-heap: O(n log k) instead of O(n log n),
// with zero allocations once dst has capacity k. dst's storage is reused
// when possible.
func TopKInto(dst []int, scores []float64, k int) []int {
	if k > len(scores) {
		k = len(scores)
	}
	if k <= 0 {
		return dst[:0]
	}
	// heap[i] is an index into scores; the root is the worst kept candidate:
	// lower score, or equal score and larger index.
	worse := func(a, b int) bool {
		if scores[a] != scores[b] {
			return scores[a] < scores[b]
		}
		return a > b
	}
	if cap(dst) < k {
		dst = make([]int, k)
	}
	heap := dst[:k]
	siftDown := func(i, size int) {
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < size && worse(heap[l], heap[m]) {
				m = l
			}
			if r < size && worse(heap[r], heap[m]) {
				m = r
			}
			if m == i {
				return
			}
			heap[i], heap[m] = heap[m], heap[i]
			i = m
		}
	}
	for i := range heap {
		heap[i] = i
	}
	for i := k/2 - 1; i >= 0; i-- {
		siftDown(i, k)
	}
	for i := k; i < len(scores); i++ {
		if worse(heap[0], i) {
			heap[0] = i
			siftDown(0, k)
		}
	}
	// Heapsort the kept indices: popping the min-heap's root (the worst
	// remaining candidate) to the shrinking tail leaves the slice ordered
	// best-first — (score desc, index asc) — allocation-free.
	for end := k - 1; end > 0; end-- {
		heap[0], heap[end] = heap[end], heap[0]
		siftDown(0, end)
	}
	return heap
}

// TopKSelector is the streaming half of the selection engine: scores are
// pushed one (index, score) pair at a time — e.g. chunk-wise from a batched
// scorer that never materialises the full score vector — and the selector
// keeps the k best in a bounded min-heap. Into then yields the indices in
// (score desc, index asc) order, bitwise-identical to TopK over the full
// vector. Because (score, index) is a strict total order, the selected set
// and its final order do not depend on push order.
//
// The zero value is unusable: call Reset(k) before each selection.
type TopKSelector struct {
	k     int
	idx   []int
	score []float64
}

// Reset prepares the selector for a fresh selection of up to k indices,
// retaining the previous selection's storage.
func (s *TopKSelector) Reset(k int) {
	s.k = k
	s.idx = s.idx[:0]
	s.score = s.score[:0]
}

// worse reports whether heap slot a holds a worse candidate than slot b:
// lower score, or equal score and larger index.
func (s *TopKSelector) worse(a, b int) bool {
	if s.score[a] != s.score[b] {
		return s.score[a] < s.score[b]
	}
	return s.idx[a] > s.idx[b]
}

func (s *TopKSelector) swap(a, b int) {
	s.idx[a], s.idx[b] = s.idx[b], s.idx[a]
	s.score[a], s.score[b] = s.score[b], s.score[a]
}

func (s *TopKSelector) siftDown(i, size int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < size && s.worse(l, m) {
			m = l
		}
		if r < size && s.worse(r, m) {
			m = r
		}
		if m == i {
			return
		}
		s.swap(i, m)
		i = m
	}
}

// Push offers one (index, score) pair. Indices must be distinct within a
// selection; scores may repeat freely. The overwhelmingly common case on a
// full selection — the newcomer loses to the worst kept candidate (lower
// score, or equal score and larger index) — returns from this small,
// inlinable wrapper without a call; heap maintenance lives in pushHeap.
func (s *TopKSelector) Push(i int, score float64) {
	if s.k <= 0 {
		return
	}
	if len(s.idx) == s.k {
		if score < s.score[0] || (score == s.score[0] && i > s.idx[0]) {
			return
		}
	}
	s.pushHeap(i, score)
}

// pushHeap inserts a pair that survived Push's reject test: growing the heap
// while it is below k, replacing the root otherwise.
func (s *TopKSelector) pushHeap(i int, score float64) {
	if len(s.idx) < s.k {
		s.idx = append(s.idx, i)
		s.score = append(s.score, score)
		for c := len(s.idx) - 1; c > 0; {
			p := (c - 1) / 2
			if !s.worse(c, p) {
				break
			}
			s.swap(c, p)
			c = p
		}
		return
	}
	s.idx[0], s.score[0] = i, score
	s.siftDown(0, s.k)
}

// PushRow offers a contiguous run of scores whose indices are base, base+1,
// … — one batched score row from the scoring engines — equivalent to calling
// Push(base+j, scores[j]) for every j. Because (score, index) is a strict
// total order, feeding rows is interchangeable with element pushes.
func (s *TopKSelector) PushRow(base int, scores []float64) {
	for j, sc := range scores {
		s.Push(base+j, sc)
	}
}

// Into writes the selected indices into dst (reusing its storage when it has
// capacity) ordered (score desc, index asc). It consumes the selection: call
// Reset before pushing again.
func (s *TopKSelector) Into(dst []int) []int {
	n := len(s.idx)
	for end := n - 1; end > 0; end-- {
		s.swap(0, end)
		s.siftDown(0, end)
	}
	if cap(dst) < n {
		dst = make([]int, n)
	}
	dst = dst[:n]
	copy(dst, s.idx)
	return dst
}

// LogitTopKSelector is the logit-domain half of the selection engine: callers
// push raw logits and the selector keeps the k candidates whose probabilities
// σ(logit) are highest, computing σ (nn.Sigmoid) lazily — only for pushes that
// survive the logit-domain reject test, roughly k·ln(n/k) of n pushes —
// instead of once per candidate. Into yields the selected indices in
// (σ(logit) desc, index asc) order, bitwise-identical to a TopKSelector fed
// σ(logit) for every push.
//
// Tie safety is the subtle part of that equivalence. σ is monotone
// non-decreasing but not injective in floats: distinct logits collapse to the
// same probability wherever σ's slope drops below the local ulp spacing (the
// saturated tails, but also adjacent doubles anywhere), so a logit-domain
// strict comparison would order candidates that the probability domain ties —
// and ties break toward the smaller index. The selector therefore imposes one
// contract: within a selection, indices must be pushed in ascending order
// (true of every scoring stream in this codebase — candidate lists and item
// universes are walked ascending). Then a newcomer can only lose a
// probability tie, so "logit ≤ worst kept logit" is a sound reject — monotone
// σ makes the newcomer's probability ≤ the worst kept probability, and
// equality is a tie the newcomer's larger index loses — and every surviving
// push compares and stores exact probabilities, keeping the heap's order
// identical to the probability-domain selector's.
//
// The zero value is unusable: call Reset(k) before each selection.
type LogitTopKSelector struct {
	k     int
	idx   []int
	logit []float64
	prob  []float64
}

// Reset prepares the selector for a fresh selection of up to k indices,
// retaining the previous selection's storage.
func (s *LogitTopKSelector) Reset(k int) {
	s.k = k
	s.idx = s.idx[:0]
	s.logit = s.logit[:0]
	s.prob = s.prob[:0]
}

// ResetBacked is Reset with caller-provided backing: idx, logit and prob must
// have capacity ≥ k and belong to this selector alone. Callers running many
// selectors per batch slice the backings out of three shared slabs, so a
// batch scratch costs three allocations instead of three per selector — the
// heap never outgrows k, so the slab segments never reallocate.
func (s *LogitTopKSelector) ResetBacked(k int, idx []int, logit, prob []float64) {
	s.k = k
	s.idx = idx[:0]
	s.logit = logit[:0]
	s.prob = prob[:0]
}

// worse reports whether heap slot a holds a worse candidate than slot b —
// lower probability, or equal probability and larger index. The heap order is
// entirely probability-domain; logits are carried only for Push's reject test.
func (s *LogitTopKSelector) worse(a, b int) bool {
	if s.prob[a] != s.prob[b] {
		return s.prob[a] < s.prob[b]
	}
	return s.idx[a] > s.idx[b]
}

func (s *LogitTopKSelector) swap(a, b int) {
	s.idx[a], s.idx[b] = s.idx[b], s.idx[a]
	s.logit[a], s.logit[b] = s.logit[b], s.logit[a]
	s.prob[a], s.prob[b] = s.prob[b], s.prob[a]
}

func (s *LogitTopKSelector) siftDown(i, size int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < size && s.worse(l, m) {
			m = l
		}
		if r < size && s.worse(r, m) {
			m = r
		}
		if m == i {
			return
		}
		s.swap(i, m)
		i = m
	}
}

// Push offers one (index, logit) pair. Indices must be distinct and ascending
// within a selection (see the type comment); logits may repeat freely. The
// overwhelmingly common case on a full selection — the newcomer's logit does
// not beat the worst kept candidate's — returns from this small, inlinable
// wrapper without computing a sigmoid; the σ evaluation and heap maintenance
// live in pushHeap.
func (s *LogitTopKSelector) Push(i int, logit float64) {
	if s.k <= 0 || (len(s.idx) == s.k && logit <= s.logit[0]) {
		return
	}
	s.pushHeap(i, logit)
}

// pushHeap inserts a pair that survived Push's logit-domain reject test:
// growing the heap while it is below k, otherwise comparing exact
// probabilities against the root — where a collapsed tie still rejects the
// newcomer (larger index) — and replacing it on a genuine win.
func (s *LogitTopKSelector) pushHeap(i int, logit float64) {
	p := nn.Sigmoid(logit)
	if len(s.idx) < s.k {
		s.idx = append(s.idx, i)
		s.logit = append(s.logit, logit)
		s.prob = append(s.prob, p)
		for c := len(s.idx) - 1; c > 0; {
			par := (c - 1) / 2
			if !s.worse(c, par) {
				break
			}
			s.swap(c, par)
			c = par
		}
		return
	}
	if p <= s.prob[0] {
		// The logits differed but the probabilities collapsed (p == root's) —
		// the ascending-index contract makes the newcomer the tie's loser — or
		// p < root's, which monotone σ permits only through rounding; either
		// way the probability domain rejects.
		return
	}
	s.idx[0], s.logit[0], s.prob[0] = i, logit, p
	s.siftDown(0, s.k)
}

// Into writes the selected indices into dst (reusing its storage when it has
// capacity) ordered (σ(logit) desc, index asc). It consumes the selection:
// call Reset before pushing again.
func (s *LogitTopKSelector) Into(dst []int) []int {
	n := len(s.idx)
	for end := n - 1; end > 0; end-- {
		s.swap(0, end)
		s.siftDown(0, end)
	}
	if cap(dst) < n {
		dst = make([]int, n)
	}
	dst = dst[:n]
	copy(dst, s.idx)
	return dst
}

// RankEval aggregates Recall@K and NDCG@K across users.
type RankEval struct {
	Recall, NDCG float64
	Users        int
}

// Add accumulates one user's ranked list.
func (e *RankEval) Add(ranked []int, relevant map[int]bool, k int) {
	if len(relevant) == 0 {
		return
	}
	e.Recall += RecallAtK(ranked, relevant, k)
	e.NDCG += NDCGAtK(ranked, relevant, k)
	e.Users++
}

// AddUser accumulates precomputed per-user metric values. The parallel
// evaluator computes (recall, ndcg) per user concurrently and feeds them back
// here sequentially in user order, so the floating-point sum matches the
// serial Add path exactly.
func (e *RankEval) AddUser(recall, ndcg float64) {
	e.Recall += recall
	e.NDCG += ndcg
	e.Users++
}

// Mean returns the user-averaged metrics.
func (e *RankEval) Mean() (recall, ndcg float64) {
	if e.Users == 0 {
		return 0, 0
	}
	return e.Recall / float64(e.Users), e.NDCG / float64(e.Users)
}
