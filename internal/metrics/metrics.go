// Package metrics implements the evaluation measures used in the paper:
// Recall@K and NDCG@K for recommendation quality (computed over all items the
// user has not interacted with, as in §IV-B) and the F1 score for the Top
// Guess Attack's inference quality.
package metrics

import (
	"math"
	"sort"
)

// RecallAtK returns |topK ∩ relevant| / |relevant|.
func RecallAtK(ranked []int, relevant map[int]bool, k int) float64 {
	if len(relevant) == 0 {
		return 0
	}
	if k > len(ranked) {
		k = len(ranked)
	}
	hits := 0
	for _, v := range ranked[:k] {
		if relevant[v] {
			hits++
		}
	}
	return float64(hits) / float64(len(relevant))
}

// NDCGAtK returns the normalized discounted cumulative gain at rank k with
// binary relevance.
func NDCGAtK(ranked []int, relevant map[int]bool, k int) float64 {
	if len(relevant) == 0 {
		return 0
	}
	if k > len(ranked) {
		k = len(ranked)
	}
	var dcg float64
	for i, v := range ranked[:k] {
		if relevant[v] {
			dcg += 1 / math.Log2(float64(i)+2)
		}
	}
	ideal := len(relevant)
	if ideal > k {
		ideal = k
	}
	var idcg float64
	for i := 0; i < ideal; i++ {
		idcg += 1 / math.Log2(float64(i)+2)
	}
	if idcg == 0 {
		return 0
	}
	return dcg / idcg
}

// PrecisionAtK returns |topK ∩ relevant| / k.
func PrecisionAtK(ranked []int, relevant map[int]bool, k int) float64 {
	if k <= 0 {
		return 0
	}
	if k > len(ranked) {
		k = len(ranked)
	}
	if k == 0 {
		return 0
	}
	hits := 0
	for _, v := range ranked[:k] {
		if relevant[v] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// HitRateAtK returns 1 if any relevant item appears in the top k.
func HitRateAtK(ranked []int, relevant map[int]bool, k int) float64 {
	if k > len(ranked) {
		k = len(ranked)
	}
	for _, v := range ranked[:k] {
		if relevant[v] {
			return 1
		}
	}
	return 0
}

// F1Sets returns the F1 score of a predicted set against a truth set.
func F1Sets(predicted, truth map[int]bool) float64 {
	if len(predicted) == 0 || len(truth) == 0 {
		return 0
	}
	tp := 0
	for v := range predicted {
		if truth[v] {
			tp++
		}
	}
	if tp == 0 {
		return 0
	}
	precision := float64(tp) / float64(len(predicted))
	recall := float64(tp) / float64(len(truth))
	return 2 * precision * recall / (precision + recall)
}

// AUC returns the probability a random positive outscores a random negative.
func AUC(posScores, negScores []float64) float64 {
	if len(posScores) == 0 || len(negScores) == 0 {
		return 0.5
	}
	wins := 0.0
	for _, p := range posScores {
		for _, n := range negScores {
			switch {
			case p > n:
				wins++
			case p == n:
				wins += 0.5
			}
		}
	}
	return wins / float64(len(posScores)*len(negScores))
}

// TopK returns the indices of the k largest scores, highest first. Ties
// break toward the lower index for determinism.
func TopK(scores []float64, k int) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// RankEval aggregates Recall@K and NDCG@K across users.
type RankEval struct {
	Recall, NDCG float64
	Users        int
}

// Add accumulates one user's ranked list.
func (e *RankEval) Add(ranked []int, relevant map[int]bool, k int) {
	if len(relevant) == 0 {
		return
	}
	e.Recall += RecallAtK(ranked, relevant, k)
	e.NDCG += NDCGAtK(ranked, relevant, k)
	e.Users++
}

// AddUser accumulates precomputed per-user metric values. The parallel
// evaluator computes (recall, ndcg) per user concurrently and feeds them back
// here sequentially in user order, so the floating-point sum matches the
// serial Add path exactly.
func (e *RankEval) AddUser(recall, ndcg float64) {
	e.Recall += recall
	e.NDCG += ndcg
	e.Users++
}

// Mean returns the user-averaged metrics.
func (e *RankEval) Mean() (recall, ndcg float64) {
	if e.Users == 0 {
		return 0, 0
	}
	return e.Recall / float64(e.Users), e.NDCG / float64(e.Users)
}
