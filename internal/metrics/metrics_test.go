package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func rel(items ...int) map[int]bool {
	m := map[int]bool{}
	for _, v := range items {
		m[v] = true
	}
	return m
}

func TestRecallAtK(t *testing.T) {
	ranked := []int{5, 3, 9, 1, 7}
	if got := RecallAtK(ranked, rel(3, 9, 100), 3); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("recall = %v", got)
	}
	if got := RecallAtK(ranked, rel(), 3); got != 0 {
		t.Fatal("empty relevant should give 0")
	}
	if got := RecallAtK(ranked, rel(5), 10); got != 1 {
		t.Fatal("k beyond list length should clamp")
	}
}

func TestNDCGPerfectRanking(t *testing.T) {
	if got := NDCGAtK([]int{1, 2, 3}, rel(1, 2, 3), 3); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect NDCG = %v", got)
	}
}

func TestNDCGOrderSensitive(t *testing.T) {
	top := NDCGAtK([]int{1, 0, 0}, rel(1), 3)
	bottom := NDCGAtK([]int{0, 0, 1}, rel(1), 3)
	if top <= bottom {
		t.Fatalf("NDCG not order sensitive: %v vs %v", top, bottom)
	}
	if math.Abs(top-1) > 1e-12 {
		t.Fatalf("top-ranked single relevant should be 1, got %v", top)
	}
	want := 1 / math.Log2(4) // position 3 discount, idcg=1
	if math.Abs(bottom-want) > 1e-12 {
		t.Fatalf("bottom NDCG = %v, want %v", bottom, want)
	}
}

func TestNDCGMoreRelevantThanK(t *testing.T) {
	// 25 relevant, k=20: ideal DCG truncates at k.
	ranked := make([]int, 20)
	relm := map[int]bool{}
	for i := 0; i < 20; i++ {
		ranked[i] = i
	}
	for i := 0; i < 25; i++ {
		relm[i] = true
	}
	if got := NDCGAtK(ranked, relm, 20); math.Abs(got-1) > 1e-12 {
		t.Fatalf("truncated ideal NDCG = %v", got)
	}
}

func TestPrecisionAndHitRate(t *testing.T) {
	ranked := []int{1, 2, 3, 4}
	if got := PrecisionAtK(ranked, rel(2, 4), 2); got != 0.5 {
		t.Fatalf("precision = %v", got)
	}
	if got := HitRateAtK(ranked, rel(4), 2); got != 0 {
		t.Fatalf("hitrate = %v", got)
	}
	if got := HitRateAtK(ranked, rel(4), 4); got != 1 {
		t.Fatalf("hitrate = %v", got)
	}
}

func TestF1Sets(t *testing.T) {
	// precision 2/3, recall 2/4 -> F1 = 2*2/3*1/2 / (2/3+1/2) = 4/7.
	got := F1Sets(rel(1, 2, 3), rel(1, 2, 4, 5))
	if math.Abs(got-4.0/7) > 1e-12 {
		t.Fatalf("F1 = %v, want 4/7", got)
	}
	if F1Sets(rel(), rel(1)) != 0 || F1Sets(rel(1), rel()) != 0 {
		t.Fatal("empty sets should give 0")
	}
	if F1Sets(rel(9), rel(1)) != 0 {
		t.Fatal("no overlap should give 0")
	}
	if F1Sets(rel(1, 2), rel(1, 2)) != 1 {
		t.Fatal("identical sets should give 1")
	}
}

func TestAUC(t *testing.T) {
	if got := AUC([]float64{0.9, 0.8}, []float64{0.1, 0.2}); got != 1 {
		t.Fatalf("AUC = %v", got)
	}
	if got := AUC([]float64{0.5}, []float64{0.5}); got != 0.5 {
		t.Fatalf("tied AUC = %v", got)
	}
	if got := AUC(nil, []float64{1}); got != 0.5 {
		t.Fatal("empty AUC should be 0.5")
	}
}

func TestTopK(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5, 0.9}
	got := TopK(scores, 3)
	if got[0] != 1 || got[1] != 3 || got[2] != 2 {
		t.Fatalf("TopK = %v (ties must break to lower index)", got)
	}
	if len(TopK(scores, 10)) != 4 {
		t.Fatal("TopK should clamp k")
	}
}

func TestRankEvalAggregates(t *testing.T) {
	var e RankEval
	e.Add([]int{1, 2}, rel(1), 2) // recall 1, ndcg 1
	e.Add([]int{9, 8}, rel(1), 2) // recall 0, ndcg 0
	e.Add([]int{1, 2}, rel(), 2)  // skipped: no relevant
	r, n := e.Mean()
	if e.Users != 2 {
		t.Fatalf("users = %d", e.Users)
	}
	if math.Abs(r-0.5) > 1e-12 || math.Abs(n-0.5) > 1e-12 {
		t.Fatalf("mean = %v, %v", r, n)
	}
	var empty RankEval
	if r, n := empty.Mean(); r != 0 || n != 0 {
		t.Fatal("empty eval should give zeros")
	}
}

func TestMetricsBounded(t *testing.T) {
	f := func(seedScores [16]float64, mask uint16) bool {
		ranked := TopK(seedScores[:], 16)
		relm := map[int]bool{}
		for i := 0; i < 16; i++ {
			if mask&(1<<i) != 0 {
				relm[i] = true
			}
		}
		for _, k := range []int{1, 5, 16} {
			r := RecallAtK(ranked, relm, k)
			n := NDCGAtK(ranked, relm, k)
			if r < 0 || r > 1 || n < 0 || n > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
