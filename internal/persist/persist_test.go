package persist

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestFloat64sRoundTrip(t *testing.T) {
	f := func(xs []float64) bool {
		var buf bytes.Buffer
		if err := WriteFloat64s(&buf, xs); err != nil {
			return false
		}
		back, err := ReadFloat64s(&buf)
		if err != nil || len(back) != len(xs) {
			return false
		}
		for i := range xs {
			same := back[i] == xs[i] || (math.IsNaN(back[i]) && math.IsNaN(xs[i]))
			if !same {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteString(&buf, "hello κόσμε"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadString(&buf)
	if err != nil || got != "hello κόσμε" {
		t.Fatalf("ReadString = %q, %v", got, err)
	}
}

func TestIntsRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := []int{0, -5, 42, 1 << 40}
	if err := WriteInts(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadInts(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("ints[%d] = %d", i, got[i])
		}
	}
}

func TestReadFloat64sIntoLengthCheck(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFloat64s(&buf, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 3)
	if err := ReadFloat64sInto(&buf, dst); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestExpectString(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteString(&buf, "MAGIC"); err != nil {
		t.Fatal(err)
	}
	if err := ExpectString(&buf, "MAGIC"); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteString(&buf, "WRONG"); err != nil {
		t.Fatal(err)
	}
	if err := ExpectString(&buf, "MAGIC"); err == nil {
		t.Fatal("wrong magic accepted")
	}
}

func TestTruncatedInputErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFloat64s(&buf, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	trunc := bytes.NewReader(buf.Bytes()[:buf.Len()-4])
	if _, err := ReadFloat64s(trunc); err == nil {
		t.Fatal("truncated input accepted")
	}
	if _, err := ReadUint64(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestHugeLengthRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteUint64(&buf, 1<<62); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFloat64s(&buf); err == nil {
		t.Fatal("giant length accepted")
	}
	buf.Reset()
	if err := WriteUint64(&buf, 1<<62); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadString(&buf); err == nil {
		t.Fatal("giant string length accepted")
	}
}
