// Package persist implements the little-endian binary primitives used to
// checkpoint model parameters (internal/models' Snapshot/Restore). The
// format is length-prefixed and versioned by the callers; this package only
// moves typed values.
package persist

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// maxLen bounds length prefixes so corrupt input can't trigger giant
// allocations.
const maxLen = 1 << 30

// WriteUint64 writes one uint64.
func WriteUint64(w io.Writer, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

// ReadUint64 reads one uint64.
func ReadUint64(r io.Reader) (uint64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

// WriteString writes a length-prefixed UTF-8 string.
func WriteString(w io.Writer, s string) error {
	if err := WriteUint64(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

// ReadString reads a length-prefixed string.
func ReadString(r io.Reader) (string, error) {
	n, err := ReadUint64(r)
	if err != nil {
		return "", err
	}
	if n > maxLen {
		return "", fmt.Errorf("persist: string length %d too large", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// WriteFloat64s writes a length-prefixed float64 slice.
func WriteFloat64s(w io.Writer, xs []float64) error {
	if err := WriteUint64(w, uint64(len(xs))); err != nil {
		return err
	}
	buf := make([]byte, 8*len(xs))
	for i, v := range xs {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	_, err := w.Write(buf)
	return err
}

// ReadFloat64s reads a length-prefixed float64 slice.
func ReadFloat64s(r io.Reader) ([]float64, error) {
	n, err := ReadUint64(r)
	if err != nil {
		return nil, err
	}
	if n > maxLen/8 {
		return nil, fmt.Errorf("persist: slice length %d too large", n)
	}
	buf := make([]byte, 8*n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return out, nil
}

// ReadFloat64sInto reads a length-prefixed slice that must have exactly
// len(dst) values, filling dst in place.
func ReadFloat64sInto(r io.Reader, dst []float64) error {
	xs, err := ReadFloat64s(r)
	if err != nil {
		return err
	}
	if len(xs) != len(dst) {
		return fmt.Errorf("persist: got %d values, want %d", len(xs), len(dst))
	}
	copy(dst, xs)
	return nil
}

// WriteInts writes a length-prefixed int slice (as int64s).
func WriteInts(w io.Writer, xs []int) error {
	if err := WriteUint64(w, uint64(len(xs))); err != nil {
		return err
	}
	for _, v := range xs {
		if err := WriteUint64(w, uint64(int64(v))); err != nil {
			return err
		}
	}
	return nil
}

// ReadInts reads a length-prefixed int slice.
func ReadInts(r io.Reader) ([]int, error) {
	n, err := ReadUint64(r)
	if err != nil {
		return nil, err
	}
	if n > maxLen/8 {
		return nil, fmt.Errorf("persist: slice length %d too large", n)
	}
	out := make([]int, n)
	for i := range out {
		v, err := ReadUint64(r)
		if err != nil {
			return nil, err
		}
		out[i] = int(int64(v))
	}
	return out, nil
}

// ExpectString reads a string and verifies it equals want (magic/kind tags).
func ExpectString(r io.Reader, want string) error {
	got, err := ReadString(r)
	if err != nil {
		return err
	}
	if got != want {
		return fmt.Errorf("persist: expected %q, got %q", want, got)
	}
	return nil
}
