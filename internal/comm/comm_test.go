package comm

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestPredictionRoundTrip(t *testing.T) {
	in := []Prediction{
		{User: 0, Item: 0, Score: 0},
		{User: 12, Item: 9999, Score: 0.73},
		{User: 1 << 20, Item: 3, Score: 1},
	}
	buf := EncodePredictions(in)
	if len(buf) != len(in)*PredictionWireSize {
		t.Fatalf("encoded %d bytes, want %d", len(buf), len(in)*PredictionWireSize)
	}
	out, err := DecodePredictions(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if out[i].User != in[i].User || out[i].Item != in[i].Item {
			t.Fatalf("ids changed: %+v vs %+v", out[i], in[i])
		}
		if math.Abs(out[i].Score-in[i].Score) > 1e-6 {
			t.Fatalf("score drifted beyond float32: %v vs %v", out[i].Score, in[i].Score)
		}
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	if _, err := DecodePredictions(make([]byte, 13)); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestDecodeEmpty(t *testing.T) {
	out, err := DecodePredictions(nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty decode: %v %v", out, err)
	}
}

func TestFloat32BlockSize(t *testing.T) {
	if Float32BlockSize(100) != 400 {
		t.Fatal("Float32BlockSize wrong")
	}
}

func TestMeterAccounting(t *testing.T) {
	m := NewMeter()
	m.AddUp(0, 100)
	m.AddDown(0, 50)
	m.AddUp(1, 200)
	m.AddDown(1, 50)
	m.EndRound()
	m.AddUp(0, 100)
	m.AddDown(0, 50)
	m.AddUp(1, 200)
	m.AddDown(1, 50)
	m.EndRound()
	if m.TotalUp() != 600 || m.TotalDown() != 200 {
		t.Fatalf("totals = %d up %d down", m.TotalUp(), m.TotalDown())
	}
	if m.Rounds() != 2 {
		t.Fatalf("rounds = %d", m.Rounds())
	}
	// (600+200) / 2 clients / 2 rounds = 200.
	if got := m.AvgPerClientPerRound(); got != 200 {
		t.Fatalf("avg = %v", got)
	}
}

func TestMeterEmpty(t *testing.T) {
	if NewMeter().AvgPerClientPerRound() != 0 {
		t.Fatal("empty meter should average 0")
	}
}

func TestMeterConcurrent(t *testing.T) {
	m := NewMeter()
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.AddUp(c, 1)
				m.AddDown(c, 2)
			}
		}(c)
	}
	wg.Wait()
	m.EndRound()
	if m.TotalUp() != 8000 || m.TotalDown() != 16000 {
		t.Fatalf("concurrent totals %d/%d", m.TotalUp(), m.TotalDown())
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{512, "512B"},
		{3.02 * 1024, "3.02KB"},
		{7.32 * 1024 * 1024, "7.32MB"},
		{2.5 * 1024 * 1024 * 1024, "2.50GB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.in); got != c.want {
			t.Fatalf("FormatBytes(%v) = %q, want %q", c.in, got, c.want)
		}
	}
	if !strings.HasSuffix(FormatBytes(0), "B") {
		t.Fatal("zero bytes format")
	}
}
