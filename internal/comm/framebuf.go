package comm

import "sync"

// FrameBuffer accumulates framed messages into one reusable contiguous
// buffer — the write-path complement of ReadFrame. A participant's steady
// state is dominated by chunked upload bodies (begin frame, dozens of chunk
// frames, end frame) built per client per round; building them into a pooled
// FrameBuffer instead of fresh slices keeps the write path allocation-free
// once the pool is warm, which the alloc pins in framebuf_test.go hold it to.
type FrameBuffer struct {
	buf []byte
}

// Reset empties the buffer, keeping its capacity.
func (b *FrameBuffer) Reset() { b.buf = b.buf[:0] }

// Append frames one message onto the end of the buffer.
func (b *FrameBuffer) Append(t MsgType, payload []byte) {
	b.buf = AppendFrame(b.buf, t, payload)
}

// Bytes returns the accumulated frames. The slice aliases the buffer: it is
// valid until the next Append/Reset, and must not be retained after
// PutFrameBuffer.
func (b *FrameBuffer) Bytes() []byte { return b.buf }

// Len returns the accumulated byte count.
func (b *FrameBuffer) Len() int { return len(b.buf) }

var framePool = sync.Pool{New: func() any { return new(FrameBuffer) }}

// GetFrameBuffer returns an empty frame buffer from the pool.
func GetFrameBuffer() *FrameBuffer {
	b := framePool.Get().(*FrameBuffer)
	b.Reset()
	return b
}

// PutFrameBuffer recycles a frame buffer. The caller must be done with every
// slice obtained from Bytes — including anything still referenced by an
// in-flight writer (an HTTP client can re-read a request body for a retry,
// so return the buffer only after the response is fully handled).
func PutFrameBuffer(b *FrameBuffer) {
	if b != nil {
		framePool.Put(b)
	}
}
