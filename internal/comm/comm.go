// Package comm defines the wire formats exchanged in the federated protocols
// and a byte meter that measures them. Table IV's comparison is produced by
// actually encoding every message — prediction triples for PTF-FedRec,
// float32 parameter blocks for FCF/MetaMF, Paillier ciphertexts for FedMF —
// and counting the encoded bytes.
package comm

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Prediction is one scored triple (uᵢ, vⱼ, r̂ᵢⱼ) — the knowledge carrier of
// PTF-FedRec. On the wire it is 12 bytes: two uint32 ids and a float32 score.
type Prediction struct {
	User, Item int
	Score      float64
}

// PredictionWireSize is the encoded size of one Prediction in bytes.
const PredictionWireSize = 12

// PredictionMemBytes is the in-memory size of one Prediction (two ints and a
// float64) — the unit per-upload memory accounting multiplies by. The server
// stores the decoded float64 score rather than the 4-byte wire encoding
// because the non-quantized protocol trains on the exact uploaded values.
const PredictionMemBytes = 24

// EncodePredictions serialises triples to the compact wire format.
func EncodePredictions(preds []Prediction) []byte {
	buf := make([]byte, 0, len(preds)*PredictionWireSize)
	var scratch [PredictionWireSize]byte
	for _, p := range preds {
		binary.LittleEndian.PutUint32(scratch[0:4], uint32(p.User))
		binary.LittleEndian.PutUint32(scratch[4:8], uint32(p.Item))
		binary.LittleEndian.PutUint32(scratch[8:12], math.Float32bits(float32(p.Score)))
		buf = append(buf, scratch[:]...)
	}
	return buf
}

// DecodePredictions parses the wire format back into triples.
func DecodePredictions(buf []byte) ([]Prediction, error) {
	if len(buf)%PredictionWireSize != 0 {
		return nil, fmt.Errorf("comm: prediction payload length %d not a multiple of %d", len(buf), PredictionWireSize)
	}
	out := make([]Prediction, 0, len(buf)/PredictionWireSize)
	for off := 0; off < len(buf); off += PredictionWireSize {
		out = append(out, Prediction{
			User:  int(binary.LittleEndian.Uint32(buf[off : off+4])),
			Item:  int(binary.LittleEndian.Uint32(buf[off+4 : off+8])),
			Score: float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[off+8 : off+12]))),
		})
	}
	return out, nil
}

// Float32BlockSize returns the encoded size of n float32 parameters — the
// payload unit of the parameter-transmission baselines.
func Float32BlockSize(n int) int { return 4 * n }

// QuantizedWireSize is the encoded size of one quantized Prediction: two
// uint32 ids and a uint8 score bucket.
const QuantizedWireSize = 9

// EncodePredictionsQuantized serialises triples with scores quantized to 256
// uniform buckets in [0,1] — the communication-compression extension the
// paper's efficiency discussion points at. 25% smaller than the float32
// format at a worst-case score error of 1/512.
func EncodePredictionsQuantized(preds []Prediction) []byte {
	buf := make([]byte, 0, len(preds)*QuantizedWireSize)
	var scratch [QuantizedWireSize]byte
	for _, p := range preds {
		binary.LittleEndian.PutUint32(scratch[0:4], uint32(p.User))
		binary.LittleEndian.PutUint32(scratch[4:8], uint32(p.Item))
		s := p.Score
		if s < 0 {
			s = 0
		}
		if s > 1 {
			s = 1
		}
		scratch[8] = uint8(s*255 + 0.5)
		buf = append(buf, scratch[:]...)
	}
	return buf
}

// DecodePredictionsQuantized parses the quantized wire format.
func DecodePredictionsQuantized(buf []byte) ([]Prediction, error) {
	if len(buf)%QuantizedWireSize != 0 {
		return nil, fmt.Errorf("comm: quantized payload length %d not a multiple of %d", len(buf), QuantizedWireSize)
	}
	out := make([]Prediction, 0, len(buf)/QuantizedWireSize)
	for off := 0; off < len(buf); off += QuantizedWireSize {
		out = append(out, Prediction{
			User:  int(binary.LittleEndian.Uint32(buf[off : off+4])),
			Item:  int(binary.LittleEndian.Uint32(buf[off+4 : off+8])),
			Score: float64(buf[off+8]) / 255,
		})
	}
	return out, nil
}

// meterShards partitions the meter's per-client counters. In the networked
// coordinator, uploads from concurrent connections meter per-client bytes in
// parallel; sharding by client id keeps those updates off one hot mutex.
// A power of two so the shard index is a mask.
const meterShards = 64

// meterShard is one client partition's counters under its own lock, padded
// to a cache line so neighbouring shards never false-share.
type meterShard struct {
	mu   sync.Mutex
	up   map[int]int64
	down map[int]int64
	_    [24]byte
}

// Meter accumulates per-client upload/download bytes across rounds. It is
// safe for concurrent use from any number of goroutines: per-client byte
// counters shard over client id (the round engine's parallel dispersal and
// the coordinator's concurrent upload handlers both hammer it), and the
// round counter is atomic.
type Meter struct {
	shards [meterShards]meterShard
	rounds atomic.Int64
}

// NewMeter returns an empty meter.
func NewMeter() *Meter {
	m := &Meter{}
	for i := range m.shards {
		m.shards[i].up = map[int]int64{}
		m.shards[i].down = map[int]int64{}
	}
	return m
}

// shard maps a client id to its counter partition. Negative ids (not
// produced by the protocol, but the meter should never panic) fold in too.
func (m *Meter) shard(client int) *meterShard {
	return &m.shards[uint(client)&(meterShards-1)]
}

// AddUp records bytes sent from a client to the server.
func (m *Meter) AddUp(client, bytes int) {
	sh := m.shard(client)
	sh.mu.Lock()
	sh.up[client] += int64(bytes)
	sh.mu.Unlock()
}

// AddDown records bytes sent from the server to a client.
func (m *Meter) AddDown(client, bytes int) {
	sh := m.shard(client)
	sh.mu.Lock()
	sh.down[client] += int64(bytes)
	sh.mu.Unlock()
}

// EndRound marks the completion of one global round.
func (m *Meter) EndRound() { m.rounds.Add(1) }

// TotalUp returns total client→server bytes.
func (m *Meter) TotalUp() int64 {
	var t int64
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for _, v := range sh.up {
			t += v
		}
		sh.mu.Unlock()
	}
	return t
}

// TotalDown returns total server→client bytes.
func (m *Meter) TotalDown() int64 {
	var t int64
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for _, v := range sh.down {
			t += v
		}
		sh.mu.Unlock()
	}
	return t
}

// Rounds returns the number of completed rounds.
func (m *Meter) Rounds() int { return int(m.rounds.Load()) }

// AvgPerClientPerRound returns the mean bytes (up+down) one client exchanges
// in one round — the quantity Table IV reports.
func (m *Meter) AvgPerClientPerRound() float64 {
	var clients, total int64
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for c, v := range sh.up {
			clients++
			total += v
			if _, alsoDown := sh.down[c]; alsoDown {
				clients-- // counted once below
			}
		}
		for _, v := range sh.down {
			clients++
			total += v
		}
		sh.mu.Unlock()
	}
	rounds := m.rounds.Load()
	if clients == 0 || rounds == 0 {
		return 0
	}
	return float64(total) / float64(clients) / float64(rounds)
}

// FormatBytes renders a byte count the way the paper's Table IV does
// (e.g. "3.02KB", "7.32MB").
func FormatBytes(b float64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGB", b/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2fKB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", b)
	}
}
