package comm

// This file is the versioned wire protocol the coordinator service speaks:
// length-prefixed frames carrying registration, round announcements,
// streaming upload ingestion, and dispersal delivery. The payload codecs for
// prediction triples live in comm.go; frames wrap them with a typed,
// versioned envelope so a listener can reject garbage before allocating.
//
// Hardening contract: every decoder in this file returns an error — never
// panics — on malformed, truncated, oversized, or version-skewed input. The
// fuzz suite (wire_fuzz_test.go) holds the decoders to that contract over
// adversarial buffers, and to exact round-trips over valid encodings.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// WireVersion is the protocol generation. A frame with any other version is
// rejected at the frame layer, so message-level decoders only ever see their
// own generation's layouts.
const WireVersion = 1

// Frame header layout: magic "PT", version byte, message-type byte, and a
// little-endian uint32 payload length.
const (
	frameMagic0 = 'P'
	frameMagic1 = 'T'

	// FrameHeaderSize is the fixed envelope cost of every message.
	FrameHeaderSize = 8

	// MaxFramePayload caps a single frame's payload. Uploads stream in
	// chunks far below this; the cap exists so a corrupt or hostile length
	// prefix cannot make a reader allocate gigabytes.
	MaxFramePayload = 16 << 20
)

// MsgType tags a frame's payload layout.
type MsgType uint8

// Protocol messages. Registration and round control flow between one
// participant and the coordinator; uploads stream client→server inside one
// request body; dispersals stream server→client inside one response body.
const (
	MsgInvalid MsgType = iota

	// MsgJoin registers a participant hosting a contiguous user range.
	MsgJoin
	// MsgJoinAck carries the session token plus everything a bare
	// participant needs to reconstruct the shared world: dataset profile,
	// data seed, test fraction, and the protocol Config as JSON.
	MsgJoinAck
	// MsgLeave deregisters a session.
	MsgLeave
	// MsgRoundStart announces a round to a polling participant, listing the
	// selected users that participant hosts (possibly none).
	MsgRoundStart
	// MsgUploadBegin opens one user's upload stream: codec, declared
	// prediction count, and the client-side metrics that must survive a
	// transport-truncated payload (they describe the full local upload).
	MsgUploadBegin
	// MsgUploadChunk carries a codec-encoded run of predictions.
	MsgUploadChunk
	// MsgUploadEnd marks a complete upload. A stream that ends without it
	// was cut by the transport: the coordinator keeps the decoded prefix if
	// at least one chunk arrived (short write), else counts the client as
	// dropped (connection drop).
	MsgUploadEnd
	// MsgDisperse delivers one user's D̃ᵢ.
	MsgDisperse
	// MsgRoundEnd closes a round's dispersal stream.
	MsgRoundEnd
	// MsgShutdown tells a polling participant the run is over.
	MsgShutdown
	// MsgAck is the coordinator's bare positive reply.
	MsgAck
	// MsgError carries a human-readable refusal.
	MsgError

	msgTypeEnd // one past the last valid type
)

var msgTypeNames = [...]string{
	MsgInvalid:     "invalid",
	MsgJoin:        "join",
	MsgJoinAck:     "join-ack",
	MsgLeave:       "leave",
	MsgRoundStart:  "round-start",
	MsgUploadBegin: "upload-begin",
	MsgUploadChunk: "upload-chunk",
	MsgUploadEnd:   "upload-end",
	MsgDisperse:    "disperse",
	MsgRoundEnd:    "round-end",
	MsgShutdown:    "shutdown",
	MsgAck:         "ack",
	MsgError:       "error",
}

func (t MsgType) String() string {
	if int(t) < len(msgTypeNames) && msgTypeNames[t] != "" {
		return msgTypeNames[t]
	}
	return fmt.Sprintf("msg(%d)", uint8(t))
}

// ErrFrameMagic reports a frame that does not start with the protocol magic.
var ErrFrameMagic = errors.New("comm: bad frame magic")

// ErrFrameVersion reports a version-skewed frame.
var ErrFrameVersion = errors.New("comm: unsupported wire version")

// AppendFrame appends one framed message to dst and returns it.
func AppendFrame(dst []byte, t MsgType, payload []byte) []byte {
	var hdr [FrameHeaderSize]byte
	hdr[0], hdr[1] = frameMagic0, frameMagic1
	hdr[2] = WireVersion
	hdr[3] = byte(t)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// WriteFrame writes one framed message, returning the bytes put on the wire.
// The frame is staged in a pooled buffer so one Write reaches the wire per
// frame without a per-call allocation.
func WriteFrame(w io.Writer, t MsgType, payload []byte) (int, error) {
	b := GetFrameBuffer()
	b.Append(t, payload)
	n, err := w.Write(b.buf)
	PutFrameBuffer(b)
	return n, err
}

// ReadFrame reads one framed message, validating magic, version, type, and
// payload length before allocating. io.EOF is returned untouched when the
// stream ends cleanly between frames — callers use it as the end-of-stream
// marker; any header or payload cut mid-frame comes back as
// io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) (MsgType, []byte, error) {
	var hdr [FrameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if err == io.EOF {
			return MsgInvalid, nil, io.EOF
		}
		return MsgInvalid, nil, err
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return MsgInvalid, nil, err
	}
	if hdr[0] != frameMagic0 || hdr[1] != frameMagic1 {
		return MsgInvalid, nil, ErrFrameMagic
	}
	if hdr[2] != WireVersion {
		return MsgInvalid, nil, fmt.Errorf("%w: got %d, want %d", ErrFrameVersion, hdr[2], WireVersion)
	}
	t := MsgType(hdr[3])
	if t == MsgInvalid || t >= msgTypeEnd {
		return MsgInvalid, nil, fmt.Errorf("comm: unknown message type %d", hdr[3])
	}
	n := binary.LittleEndian.Uint32(hdr[4:8])
	if n > MaxFramePayload {
		return MsgInvalid, nil, fmt.Errorf("comm: frame payload %d exceeds cap %d", n, MaxFramePayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return MsgInvalid, nil, err
	}
	return t, payload, nil
}

// Codec identifies a prediction payload encoding.
type Codec uint8

// Prediction codecs: the 12-byte float32 triples and the 9-byte quantized
// triples, exactly the two formats comm.go defines.
const (
	CodecPlain     Codec = 0
	CodecQuantized Codec = 1
)

// CodecFor maps the protocol's quantization knob to its wire codec.
func CodecFor(quantize bool) Codec {
	if quantize {
		return CodecQuantized
	}
	return CodecPlain
}

// Valid reports whether c names a known codec.
func (c Codec) Valid() bool { return c == CodecPlain || c == CodecQuantized }

// WireSize returns the encoded size of one prediction under the codec.
func (c Codec) WireSize() int {
	if c == CodecQuantized {
		return QuantizedWireSize
	}
	return PredictionWireSize
}

// Encode serialises predictions under the codec.
func (c Codec) Encode(preds []Prediction) []byte {
	if c == CodecQuantized {
		return EncodePredictionsQuantized(preds)
	}
	return EncodePredictions(preds)
}

// Decode parses a payload under the codec.
func (c Codec) Decode(buf []byte) ([]Prediction, error) {
	if !c.Valid() {
		return nil, fmt.Errorf("comm: unknown codec %d", uint8(c))
	}
	if c == CodecQuantized {
		return DecodePredictionsQuantized(buf)
	}
	return DecodePredictions(buf)
}

// Join registers a participant hosting users [UserLo, UserHi).
type Join struct {
	UserLo, UserHi int
}

// EncodeJoin serialises a Join payload.
func EncodeJoin(j Join) []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint32(buf[0:4], uint32(j.UserLo))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(j.UserHi))
	return buf[:]
}

// DecodeJoin parses a Join payload.
func DecodeJoin(buf []byte) (Join, error) {
	if len(buf) != 8 {
		return Join{}, fmt.Errorf("comm: join payload length %d, want 8", len(buf))
	}
	return Join{
		UserLo: int(binary.LittleEndian.Uint32(buf[0:4])),
		UserHi: int(binary.LittleEndian.Uint32(buf[4:8])),
	}, nil
}

// JoinAck is the coordinator's registration reply: a session token plus the
// world description a bare participant rebuilds its local state from.
type JoinAck struct {
	Token              uint64
	NumUsers, NumItems int
	DataSeed           uint64
	TestFrac           float64
	Profile            string // dataset profile name ("" = caller supplies the split)
	ConfigJSON         []byte // fed.Config as JSON
}

// EncodeJoinAck serialises a JoinAck payload.
func EncodeJoinAck(a JoinAck) []byte {
	buf := make([]byte, 0, 34+len(a.Profile)+len(a.ConfigJSON))
	var scratch [8]byte
	binary.LittleEndian.PutUint64(scratch[:], a.Token)
	buf = append(buf, scratch[:]...)
	binary.LittleEndian.PutUint32(scratch[:4], uint32(a.NumUsers))
	buf = append(buf, scratch[:4]...)
	binary.LittleEndian.PutUint32(scratch[:4], uint32(a.NumItems))
	buf = append(buf, scratch[:4]...)
	binary.LittleEndian.PutUint64(scratch[:], a.DataSeed)
	buf = append(buf, scratch[:]...)
	binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(a.TestFrac))
	buf = append(buf, scratch[:]...)
	binary.LittleEndian.PutUint16(scratch[:2], uint16(len(a.Profile)))
	buf = append(buf, scratch[:2]...)
	buf = append(buf, a.Profile...)
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(a.ConfigJSON)))
	buf = append(buf, scratch[:4]...)
	return append(buf, a.ConfigJSON...)
}

// DecodeJoinAck parses a JoinAck payload.
func DecodeJoinAck(buf []byte) (JoinAck, error) {
	const fixed = 34 // token + users + items + seed + frac + profile len + config len
	if len(buf) < fixed {
		return JoinAck{}, fmt.Errorf("comm: join-ack payload length %d, want >= %d", len(buf), fixed)
	}
	a := JoinAck{
		Token:    binary.LittleEndian.Uint64(buf[0:8]),
		NumUsers: int(binary.LittleEndian.Uint32(buf[8:12])),
		NumItems: int(binary.LittleEndian.Uint32(buf[12:16])),
		DataSeed: binary.LittleEndian.Uint64(buf[16:24]),
		TestFrac: math.Float64frombits(binary.LittleEndian.Uint64(buf[24:32])),
	}
	np := int(binary.LittleEndian.Uint16(buf[32:34]))
	rest := buf[34:]
	if len(rest) < np+4 {
		return JoinAck{}, fmt.Errorf("comm: join-ack truncated inside profile name")
	}
	a.Profile = string(rest[:np])
	rest = rest[np:]
	nc := int(binary.LittleEndian.Uint32(rest[:4]))
	rest = rest[4:]
	if len(rest) != nc {
		return JoinAck{}, fmt.Errorf("comm: join-ack config length %d, have %d", nc, len(rest))
	}
	if nc > 0 {
		a.ConfigJSON = append([]byte(nil), rest...)
	}
	return a, nil
}

// RoundStart announces round Round, listing the selected users the polled
// participant hosts.
type RoundStart struct {
	Round int
	Users []int
}

// EncodeRoundStart serialises a RoundStart payload.
func EncodeRoundStart(rs RoundStart) []byte {
	buf := make([]byte, 8+4*len(rs.Users))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(rs.Round))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(rs.Users)))
	for i, u := range rs.Users {
		binary.LittleEndian.PutUint32(buf[8+4*i:], uint32(u))
	}
	return buf
}

// DecodeRoundStart parses a RoundStart payload.
func DecodeRoundStart(buf []byte) (RoundStart, error) {
	if len(buf) < 8 {
		return RoundStart{}, fmt.Errorf("comm: round-start payload length %d, want >= 8", len(buf))
	}
	n := int(binary.LittleEndian.Uint32(buf[4:8]))
	if len(buf) != 8+4*n {
		return RoundStart{}, fmt.Errorf("comm: round-start declares %d users in %d payload bytes", n, len(buf))
	}
	rs := RoundStart{Round: int(binary.LittleEndian.Uint32(buf[0:4]))}
	if n > 0 {
		rs.Users = make([]int, n)
		for i := range rs.Users {
			rs.Users[i] = int(binary.LittleEndian.Uint32(buf[8+4*i:]))
		}
	}
	return rs, nil
}

// UploadBegin opens one user's upload stream. Loss and AttackF1 describe the
// client's full local upload — they ride the opening frame so a
// transport-truncated stream still reports them, exactly like a real client
// that computed its metrics before its connection died.
type UploadBegin struct {
	Round, User int
	Codec       Codec
	Count       int // declared predictions in the full upload
	Loss        float64
	AttackF1    float64
}

// EncodeUploadBegin serialises an UploadBegin payload.
func EncodeUploadBegin(b UploadBegin) []byte {
	buf := make([]byte, 29)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(b.Round))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(b.User))
	buf[8] = byte(b.Codec)
	binary.LittleEndian.PutUint32(buf[9:13], uint32(b.Count))
	binary.LittleEndian.PutUint64(buf[13:21], math.Float64bits(b.Loss))
	binary.LittleEndian.PutUint64(buf[21:29], math.Float64bits(b.AttackF1))
	return buf
}

// DecodeUploadBegin parses an UploadBegin payload.
func DecodeUploadBegin(buf []byte) (UploadBegin, error) {
	if len(buf) != 29 {
		return UploadBegin{}, fmt.Errorf("comm: upload-begin payload length %d, want 29", len(buf))
	}
	b := UploadBegin{
		Round:    int(binary.LittleEndian.Uint32(buf[0:4])),
		User:     int(binary.LittleEndian.Uint32(buf[4:8])),
		Codec:    Codec(buf[8]),
		Count:    int(binary.LittleEndian.Uint32(buf[9:13])),
		Loss:     math.Float64frombits(binary.LittleEndian.Uint64(buf[13:21])),
		AttackF1: math.Float64frombits(binary.LittleEndian.Uint64(buf[21:29])),
	}
	if !b.Codec.Valid() {
		return UploadBegin{}, fmt.Errorf("comm: upload-begin names unknown codec %d", buf[8])
	}
	return b, nil
}

// Disperse delivers one user's D̃ᵢ under a codec.
type Disperse struct {
	User    int
	Codec   Codec
	Payload []byte // codec-encoded predictions
}

// EncodeDisperse serialises a Disperse payload.
func EncodeDisperse(d Disperse) []byte {
	buf := make([]byte, 0, 5+len(d.Payload))
	var scratch [4]byte
	binary.LittleEndian.PutUint32(scratch[:], uint32(d.User))
	buf = append(buf, scratch[:]...)
	buf = append(buf, byte(d.Codec))
	return append(buf, d.Payload...)
}

// DecodeDisperse parses a Disperse payload. The prediction payload is
// validated against the codec's stride but left encoded — the caller decodes
// it with Codec.Decode.
func DecodeDisperse(buf []byte) (Disperse, error) {
	if len(buf) < 5 {
		return Disperse{}, fmt.Errorf("comm: disperse payload length %d, want >= 5", len(buf))
	}
	d := Disperse{
		User:  int(binary.LittleEndian.Uint32(buf[0:4])),
		Codec: Codec(buf[4]),
	}
	if !d.Codec.Valid() {
		return Disperse{}, fmt.Errorf("comm: disperse names unknown codec %d", buf[4])
	}
	if rest := buf[5:]; len(rest) > 0 {
		if len(rest)%d.Codec.WireSize() != 0 {
			return Disperse{}, fmt.Errorf("comm: disperse payload %d not a multiple of codec stride %d", len(rest), d.Codec.WireSize())
		}
		d.Payload = append([]byte(nil), rest...)
	}
	return d, nil
}

// EncodeRound serialises the round-number payload shared by MsgRoundEnd.
func EncodeRound(round int) []byte {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], uint32(round))
	return buf[:]
}

// DecodeRound parses a round-number payload.
func DecodeRound(buf []byte) (int, error) {
	if len(buf) != 4 {
		return 0, fmt.Errorf("comm: round payload length %d, want 4", len(buf))
	}
	return int(binary.LittleEndian.Uint32(buf)), nil
}
