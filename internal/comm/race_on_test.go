//go:build race

package comm

// raceEnabled is true under the race detector, whose instrumentation
// allocates and would break the exact-zero alloc pins.
const raceEnabled = true
