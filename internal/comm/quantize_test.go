package comm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQuantizedRoundTripBounds(t *testing.T) {
	f := func(user, item uint32, score float64) bool {
		if math.IsNaN(score) || math.IsInf(score, 0) {
			return true
		}
		in := []Prediction{{User: int(user), Item: int(item), Score: score}}
		out, err := DecodePredictionsQuantized(EncodePredictionsQuantized(in))
		if err != nil || len(out) != 1 {
			return false
		}
		if out[0].User != in[0].User || out[0].Item != in[0].Item {
			return false
		}
		want := score
		if want < 0 {
			want = 0
		}
		if want > 1 {
			want = 1
		}
		// Worst-case quantization error is half a bucket.
		return math.Abs(out[0].Score-want) <= 0.5/255+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizedSize(t *testing.T) {
	preds := make([]Prediction, 100)
	if got := len(EncodePredictionsQuantized(preds)); got != 100*QuantizedWireSize {
		t.Fatalf("quantized size = %d", got)
	}
}

func TestQuantizedDecodeRejectsTruncated(t *testing.T) {
	if _, err := DecodePredictionsQuantized(make([]byte, 10)); err == nil {
		t.Fatal("truncated quantized payload accepted")
	}
}

func TestQuantizedIdempotent(t *testing.T) {
	// Quantizing an already-quantized score must be lossless.
	in := []Prediction{{User: 1, Item: 2, Score: 0.5}}
	once, err := DecodePredictionsQuantized(EncodePredictionsQuantized(in))
	if err != nil {
		t.Fatal(err)
	}
	twice, err := DecodePredictionsQuantized(EncodePredictionsQuantized(once))
	if err != nil {
		t.Fatal(err)
	}
	if once[0].Score != twice[0].Score {
		t.Fatalf("quantization not idempotent: %v vs %v", once[0].Score, twice[0].Score)
	}
}
