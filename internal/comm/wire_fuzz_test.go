package comm

// Fuzz suite for the wire decoders: adversarial and truncated buffers must
// come back as errors — never panics — and every valid encoding must
// round-trip exactly. The prediction codecs additionally pin the idempotence
// the fault-injection path depends on: re-encoding a decoded payload
// reproduces the payload byte for byte, so a truncated-then-reencoded upload
// equals the prefix of the original encoding.

import (
	"bytes"
	"io"
	"testing"
)

func FuzzDecodePredictions(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodePredictions([]Prediction{{User: 1, Item: 2, Score: 0.5}}))
	f.Add(EncodePredictions([]Prediction{{User: 1, Item: 2, Score: 0.5}})[:7]) // truncated
	f.Add(bytes.Repeat([]byte{0xff}, 36))                                      // NaN scores, huge ids
	f.Fuzz(func(t *testing.T, buf []byte) {
		preds, err := DecodePredictions(buf)
		if err != nil {
			if len(buf)%PredictionWireSize == 0 {
				t.Fatalf("aligned buffer rejected: %v", err)
			}
			return
		}
		if len(preds) != len(buf)/PredictionWireSize {
			t.Fatalf("decoded %d preds from %d bytes", len(preds), len(buf))
		}
		// Decoded scores are exact float32 values, so re-encoding must
		// reproduce the input bitwise — including NaN payload bits? No:
		// float32->float64->float32 preserves NaN-ness but may canonicalise
		// the payload, so compare ids always and scores only when the bytes
		// match a canonical re-encoding of themselves.
		re := EncodePredictions(preds)
		if len(re) != len(buf) {
			t.Fatalf("re-encode length %d vs %d", len(re), len(buf))
		}
		for off := 0; off < len(buf); off += PredictionWireSize {
			if !bytes.Equal(re[off:off+8], buf[off:off+8]) {
				t.Fatalf("ids changed at offset %d", off)
			}
		}
		// Idempotence: decode∘encode is a fixed point after one application.
		preds2, err := DecodePredictions(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		re2 := EncodePredictions(preds2)
		if !bytes.Equal(re, re2) {
			t.Fatal("encode(decode(x)) is not idempotent")
		}
	})
}

func FuzzDecodePredictionsQuantized(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodePredictionsQuantized([]Prediction{{User: 1, Item: 2, Score: 0.5}}))
	f.Add([]byte{1, 2, 3, 4, 5})          // truncated
	f.Add(bytes.Repeat([]byte{0xee}, 27)) // aligned garbage
	f.Fuzz(func(t *testing.T, buf []byte) {
		preds, err := DecodePredictionsQuantized(buf)
		if err != nil {
			if len(buf)%QuantizedWireSize == 0 {
				t.Fatalf("aligned buffer rejected: %v", err)
			}
			return
		}
		if len(preds) != len(buf)/QuantizedWireSize {
			t.Fatalf("decoded %d preds from %d bytes", len(preds), len(buf))
		}
		for _, p := range preds {
			if p.Score < 0 || p.Score > 1 {
				t.Fatalf("quantized score %v out of [0,1]", p.Score)
			}
		}
		// Every 9-byte-aligned buffer is a valid encoding, and the bucket
		// values survive the round trip exactly.
		re := EncodePredictionsQuantized(preds)
		if !bytes.Equal(re, buf) {
			t.Fatal("quantized re-encode diverged from input")
		}
	})
}

func FuzzReadFrame(f *testing.F) {
	f.Add(AppendFrame(nil, MsgJoin, EncodeJoin(Join{UserLo: 0, UserHi: 40})))
	f.Add(AppendFrame(AppendFrame(nil, MsgUploadBegin, EncodeUploadBegin(UploadBegin{Count: 3})), MsgUploadEnd, nil))
	f.Add([]byte{'P', 'T', WireVersion, byte(MsgAck), 0xff, 0xff, 0xff, 0x7f})
	f.Add([]byte("garbage that is not a frame at all"))
	f.Fuzz(func(t *testing.T, buf []byte) {
		r := bytes.NewReader(buf)
		for {
			mt, payload, err := ReadFrame(r)
			if err != nil {
				break // any malformation must surface as an error, not a panic
			}
			if mt == MsgInvalid || mt >= msgTypeEnd {
				t.Fatalf("ReadFrame returned invalid type %v without error", mt)
			}
			if len(payload) > MaxFramePayload {
				t.Fatalf("payload %d exceeds cap", len(payload))
			}
			// Message-level decoders must be panic-free on any payload the
			// frame layer admits.
			switch mt {
			case MsgJoin:
				_, _ = DecodeJoin(payload)
			case MsgJoinAck:
				_, _ = DecodeJoinAck(payload)
			case MsgRoundStart:
				_, _ = DecodeRoundStart(payload)
			case MsgUploadBegin:
				_, _ = DecodeUploadBegin(payload)
			case MsgUploadChunk:
				_, _ = DecodePredictions(payload)
				_, _ = DecodePredictionsQuantized(payload)
			case MsgDisperse:
				_, _ = DecodeDisperse(payload)
			case MsgRoundEnd:
				_, _ = DecodeRound(payload)
			}
		}
	})
}

// TestFrameStreamRoundTrip drives a full message sequence through one buffer
// — the exact shape of an upload request body — and checks the reader sees
// the same sequence then a clean EOF.
func TestFrameStreamRoundTrip(t *testing.T) {
	preds := []Prediction{{User: 4, Item: 7, Score: 0.75}, {User: 4, Item: 9, Score: 0.125}}
	var body bytes.Buffer
	if _, err := WriteFrame(&body, MsgUploadBegin, EncodeUploadBegin(UploadBegin{
		Round: 1, User: 4, Codec: CodecPlain, Count: len(preds), Loss: 0.5, AttackF1: 0.25,
	})); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteFrame(&body, MsgUploadChunk, CodecPlain.Encode(preds)); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteFrame(&body, MsgUploadEnd, nil); err != nil {
		t.Fatal(err)
	}

	mt, payload, err := ReadFrame(&body)
	if err != nil || mt != MsgUploadBegin {
		t.Fatalf("first frame: %v %v", mt, err)
	}
	begin, err := DecodeUploadBegin(payload)
	if err != nil || begin.User != 4 || begin.Count != 2 {
		t.Fatalf("begin = %+v, err %v", begin, err)
	}
	mt, payload, err = ReadFrame(&body)
	if err != nil || mt != MsgUploadChunk {
		t.Fatalf("second frame: %v %v", mt, err)
	}
	got, err := begin.Codec.Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	for i := range preds {
		if got[i].User != preds[i].User || got[i].Item != preds[i].Item {
			t.Fatalf("pred %d = %+v", i, got[i])
		}
	}
	mt, _, err = ReadFrame(&body)
	if err != nil || mt != MsgUploadEnd {
		t.Fatalf("third frame: %v %v", mt, err)
	}
	if _, _, err := ReadFrame(&body); err != io.EOF {
		t.Fatalf("tail: %v", err)
	}
}
