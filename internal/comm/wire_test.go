package comm

import (
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"sync"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xab}, 1000)}
	var wire bytes.Buffer
	for _, p := range payloads {
		n, err := WriteFrame(&wire, MsgUploadChunk, p)
		if err != nil {
			t.Fatal(err)
		}
		if n != FrameHeaderSize+len(p) {
			t.Fatalf("wrote %d bytes for %d payload", n, len(p))
		}
	}
	for _, p := range payloads {
		mt, got, err := ReadFrame(&wire)
		if err != nil {
			t.Fatal(err)
		}
		if mt != MsgUploadChunk {
			t.Fatalf("type = %v", mt)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("payload mismatch: %v vs %v", got, p)
		}
	}
	if _, _, err := ReadFrame(&wire); err != io.EOF {
		t.Fatalf("end of stream: err = %v, want io.EOF", err)
	}
}

func TestReadFrameRejects(t *testing.T) {
	good := AppendFrame(nil, MsgAck, []byte("x"))
	cases := map[string][]byte{
		"bad magic":       append([]byte{'X', 'T'}, good[2:]...),
		"bad version":     append([]byte{'P', 'T', 99}, good[3:]...),
		"invalid type":    append([]byte{'P', 'T', WireVersion, 0}, good[4:]...),
		"unknown type":    append([]byte{'P', 'T', WireVersion, 250}, good[4:]...),
		"oversized":       {'P', 'T', WireVersion, byte(MsgAck), 0xff, 0xff, 0xff, 0xff},
		"cut header":      good[:5],
		"cut payload":     good[:len(good)-1],
		"mid-magic eof":   good[:1],
		"declared > have": AppendFrame(nil, MsgAck, make([]byte, 10))[:12],
	}
	for name, buf := range cases {
		if _, _, err := ReadFrame(bytes.NewReader(buf)); err == nil || err == io.EOF {
			t.Fatalf("%s: err = %v, want a real error", name, err)
		}
	}
	if _, _, err := ReadFrame(bytes.NewReader(append([]byte{'Q'}, good...))); !errors.Is(err, ErrFrameMagic) {
		t.Fatalf("magic: err = %v", err)
	}
}

func TestJoinRoundTrip(t *testing.T) {
	j := Join{UserLo: 7, UserHi: 4096}
	got, err := DecodeJoin(EncodeJoin(j))
	if err != nil {
		t.Fatal(err)
	}
	if got != j {
		t.Fatalf("got %+v", got)
	}
	if _, err := DecodeJoin([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated join accepted")
	}
}

func TestJoinAckRoundTrip(t *testing.T) {
	a := JoinAck{
		Token:    0xdeadbeefcafe,
		NumUsers: 40, NumItems: 60,
		DataSeed: 42, TestFrac: 0.2,
		Profile:    "tiny",
		ConfigJSON: []byte(`{"Rounds":3}`),
	}
	got, err := DecodeJoinAck(EncodeJoinAck(a))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, a) {
		t.Fatalf("got %+v, want %+v", got, a)
	}
	// Empty optional fields survive too.
	b := JoinAck{Token: 1, NumUsers: 2, NumItems: 3}
	got, err = DecodeJoinAck(EncodeJoinAck(b))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, b) {
		t.Fatalf("got %+v, want %+v", got, b)
	}
	enc := EncodeJoinAck(a)
	for _, cut := range []int{0, 10, 33, 35, len(enc) - 1} {
		if _, err := DecodeJoinAck(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestRoundStartRoundTrip(t *testing.T) {
	for _, rs := range []RoundStart{{Round: 0}, {Round: 3, Users: []int{1, 5, 9}}} {
		got, err := DecodeRoundStart(EncodeRoundStart(rs))
		if err != nil {
			t.Fatal(err)
		}
		if got.Round != rs.Round || !reflect.DeepEqual(got.Users, rs.Users) {
			t.Fatalf("got %+v, want %+v", got, rs)
		}
	}
	if _, err := DecodeRoundStart([]byte{0, 0, 0, 0, 9, 0, 0, 0}); err == nil {
		t.Fatal("declared users without payload accepted")
	}
}

func TestUploadBeginRoundTrip(t *testing.T) {
	b := UploadBegin{Round: 2, User: 17, Codec: CodecQuantized, Count: 40, Loss: 0.25, AttackF1: 0.5}
	got, err := DecodeUploadBegin(EncodeUploadBegin(b))
	if err != nil {
		t.Fatal(err)
	}
	if got != b {
		t.Fatalf("got %+v", got)
	}
	bad := EncodeUploadBegin(b)
	bad[8] = 99 // unknown codec
	if _, err := DecodeUploadBegin(bad); err == nil {
		t.Fatal("unknown codec accepted")
	}
	if _, err := DecodeUploadBegin(bad[:10]); err == nil {
		t.Fatal("truncated upload-begin accepted")
	}
}

func TestDisperseRoundTrip(t *testing.T) {
	preds := []Prediction{{User: 3, Item: 9, Score: 0.5}, {User: 3, Item: 11, Score: 0.25}}
	for _, codec := range []Codec{CodecPlain, CodecQuantized} {
		d := Disperse{User: 3, Codec: codec, Payload: codec.Encode(preds)}
		got, err := DecodeDisperse(EncodeDisperse(d))
		if err != nil {
			t.Fatal(err)
		}
		if got.User != d.User || got.Codec != d.Codec || !bytes.Equal(got.Payload, d.Payload) {
			t.Fatalf("got %+v, want %+v", got, d)
		}
		back, err := got.Codec.Decode(got.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if len(back) != len(preds) {
			t.Fatalf("decoded %d preds", len(back))
		}
	}
	if _, err := DecodeDisperse([]byte{0, 0, 0, 0, 0, 1, 2, 3}); err == nil {
		t.Fatal("ragged disperse payload accepted")
	}
}

func TestCodecDispatch(t *testing.T) {
	if CodecFor(false) != CodecPlain || CodecFor(true) != CodecQuantized {
		t.Fatal("CodecFor mapping wrong")
	}
	if CodecPlain.WireSize() != PredictionWireSize || CodecQuantized.WireSize() != QuantizedWireSize {
		t.Fatal("WireSize mapping wrong")
	}
	if _, err := Codec(9).Decode(nil); err == nil {
		t.Fatal("unknown codec decode accepted")
	}
}

// TestMeterConcurrentSharded hammers every Meter method from many goroutines
// at once — the coordinator's concurrent upload handlers plus a reader — so
// `go test -race` proves the sharded counters are actually safe, and the
// final totals prove no update was lost.
func TestMeterConcurrentSharded(t *testing.T) {
	m := NewMeter()
	const goroutines = 16
	const perG = 500
	const clients = 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c := (g*perG + i) % clients
				m.AddUp(c, 3)
				m.AddDown(c, 5)
				if i%100 == 0 {
					_ = m.TotalUp()
					_ = m.AvgPerClientPerRound()
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			m.EndRound()
			_ = m.TotalDown()
			_ = m.Rounds()
		}
	}()
	wg.Wait()
	if got, want := m.TotalUp(), int64(goroutines*perG*3); got != want {
		t.Fatalf("TotalUp = %d, want %d", got, want)
	}
	if got, want := m.TotalDown(), int64(goroutines*perG*5); got != want {
		t.Fatalf("TotalDown = %d, want %d", got, want)
	}
	if m.Rounds() != 50 {
		t.Fatalf("Rounds = %d", m.Rounds())
	}
	// up+down over `clients` distinct clients across 50 rounds.
	want := float64(goroutines*perG*8) / clients / 50
	if got := m.AvgPerClientPerRound(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("AvgPerClientPerRound = %v, want %v", got, want)
	}
}
