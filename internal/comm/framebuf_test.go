package comm

import (
	"bytes"
	"io"
	"testing"
)

// TestFrameBufferRoundTrip pins that frames built through a FrameBuffer read
// back exactly as frames built through AppendFrame.
func TestFrameBufferRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{0x01},
		bytes.Repeat([]byte{0xAB}, 1024),
	}
	fb := GetFrameBuffer()
	defer PutFrameBuffer(fb)
	var want []byte
	for i, p := range payloads {
		mt := MsgType(1 + i%int(msgTypeEnd-1))
		fb.Append(mt, p)
		want = AppendFrame(want, mt, p)
	}
	if !bytes.Equal(fb.Bytes(), want) {
		t.Fatal("FrameBuffer bytes differ from AppendFrame bytes")
	}
	if fb.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", fb.Len(), len(want))
	}
	r := bytes.NewReader(fb.Bytes())
	for i, p := range payloads {
		mt, payload, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if want := MsgType(1 + i%int(msgTypeEnd-1)); mt != want {
			t.Fatalf("frame %d: type %v, want %v", i, mt, want)
		}
		if !bytes.Equal(payload, p) {
			t.Fatalf("frame %d: payload mismatch", i)
		}
	}
	if _, _, err := ReadFrame(r); err != io.EOF {
		t.Fatalf("trailing read: %v, want io.EOF", err)
	}
	fb.Reset()
	if fb.Len() != 0 {
		t.Fatalf("Len after Reset = %d", fb.Len())
	}
}

// TestFrameBufferSteadyStateAllocs pins the write-path pooling: once a
// buffer has grown to its working size, rebuilding a chunked upload body
// (begin, chunks, end — the participant's steady state) allocates nothing.
func TestFrameBufferSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc pin runs in uninstrumented builds")
	}
	chunk := bytes.Repeat([]byte{0x5A}, 512*12)
	begin := make([]byte, 32)
	build := func() {
		fb := GetFrameBuffer()
		fb.Append(MsgUploadBegin, begin)
		for i := 0; i < 8; i++ {
			fb.Append(MsgUploadChunk, chunk)
		}
		fb.Append(MsgUploadEnd, nil)
		PutFrameBuffer(fb)
	}
	build() // warm the pool to working size
	if n := testing.AllocsPerRun(100, build); n != 0 {
		t.Fatalf("steady-state upload body build allocates %v times per run, want 0", n)
	}
}

// TestWriteFrameSteadyStateAllocs pins that WriteFrame stages through the
// pool instead of allocating a fresh frame per call.
func TestWriteFrameSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc pin runs in uninstrumented builds")
	}
	payload := bytes.Repeat([]byte{0x33}, 4096)
	write := func() {
		if _, err := WriteFrame(io.Discard, MsgUploadChunk, payload); err != nil {
			t.Fatal(err)
		}
	}
	write() // warm the pool
	if n := testing.AllocsPerRun(100, write); n != 0 {
		t.Fatalf("steady-state WriteFrame allocates %v times per run, want 0", n)
	}
}
