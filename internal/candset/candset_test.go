package candset

import (
	"reflect"
	"testing"

	"ptffedrec/internal/bitset"
	"ptffedrec/internal/rng"
)

// naiveComplement is the reference the word walk must match: probe every
// element of the universe against the set.
func naiveComplement(s *bitset.Set, n int) []int32 {
	var out []int32
	for v := 0; v < n; v++ {
		if !s.Contains(v) {
			out = append(out, int32(v))
		}
	}
	return out
}

func TestAppendComplementMatchesWalk(t *testing.T) {
	s := rng.New(7).Derive("candset")
	for _, n := range []int{1, 63, 64, 65, 128, 1000} {
		for trial := 0; trial < 20; trial++ {
			set := bitset.New(n)
			k := s.Intn(n + 1)
			for _, v := range s.SampleInts(n, k) {
				set.Add(v)
			}
			got := AppendComplement(nil, set, n)
			want := naiveComplement(set, n)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d trial=%d: word walk %v != probe walk %v", n, trial, got, want)
			}
		}
	}
}

// FuzzAppendComplementMatchesWalk pins the dispersal engine's eligibility
// contract: the cache-served eligible set (the bitset's word-walk complement)
// must equal the naive item-universe walk for any upload pattern.
func FuzzAppendComplementMatchesWalk(f *testing.F) {
	f.Add(uint64(1), 100, 10)
	f.Add(uint64(2), 64, 64)
	f.Add(uint64(3), 1, 0)
	f.Add(uint64(4), 129, 1)
	f.Fuzz(func(t *testing.T, seed uint64, n, k int) {
		if n <= 0 || n > 4096 {
			t.Skip()
		}
		if k < 0 {
			k = -k
		}
		if k > n {
			k = n
		}
		set := bitset.New(n)
		s := rng.New(seed).Derive("fuzz")
		for _, v := range s.SampleInts(n, k) {
			set.Add(v)
		}
		got := AppendComplement(nil, set, n)
		want := naiveComplement(set, n)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed=%d n=%d k=%d: word walk != probe walk", seed, n, k)
		}
	})
}

func TestAppendComplementSorted(t *testing.T) {
	got := AppendComplementSorted[int32](nil, 6, []int{1, 4})
	want := []int32{0, 2, 3, 5}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("AppendComplementSorted = %v, want %v", got, want)
	}
	gotInt := AppendComplementSorted[int](nil, 3, nil)
	if !reflect.DeepEqual(gotInt, []int{0, 1, 2}) {
		t.Fatalf("empty exclusion: %v", gotInt)
	}
	if out := AppendComplementSorted[int]([]int{9}, 2, []int{0, 1}); !reflect.DeepEqual(out, []int{9}) {
		t.Fatalf("full exclusion should append nothing: %v", out)
	}
}

func TestAppendRangeAndWiden(t *testing.T) {
	r := AppendRange(nil, 4)
	if !reflect.DeepEqual(r, []int32{0, 1, 2, 3}) {
		t.Fatalf("AppendRange = %v", r)
	}
	w := Widen(make([]int, 0, 1), r)
	if !reflect.DeepEqual(w, []int{0, 1, 2, 3}) {
		t.Fatalf("Widen = %v", w)
	}
	// Capacity reuse: a big-enough dst must be reused, not reallocated.
	buf := make([]int, 8)
	w2 := Widen(buf, r)
	if &w2[0] != &buf[0] || len(w2) != 4 {
		t.Fatal("Widen did not reuse dst storage")
	}
}

// TestBuildPackedWorkerInvariance pins the cold build's determinism: the
// packed layout and every list are identical for any worker count.
func TestBuildPackedWorkerInvariance(t *testing.T) {
	const n = 137
	sizes := make([]int, n)
	s := rng.New(3).Derive("sizes")
	for i := range sizes {
		sizes[i] = s.Intn(50)
	}
	build := func(workers int) *Packed {
		return BuildPacked(n, workers,
			func(i int) int { return sizes[i] },
			func(i int, dst []int32) {
				for j := range dst {
					dst[j] = int32(i*1000 + j)
				}
			})
	}
	ref := build(1)
	if ref.Lists() != n {
		t.Fatalf("Lists = %d, want %d", ref.Lists(), n)
	}
	for _, workers := range []int{2, 3, 8} {
		got := build(workers)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d: packed cache differs from serial build", workers)
		}
	}
	total := 0
	for _, sz := range sizes {
		total += sz
	}
	if ref.TotalLen() != total {
		t.Fatalf("TotalLen = %d, want %d", ref.TotalLen(), total)
	}
	for i := 0; i < n; i++ {
		if len(ref.List(i)) != sizes[i] {
			t.Fatalf("list %d has %d entries, want %d", i, len(ref.List(i)), sizes[i])
		}
	}
}
