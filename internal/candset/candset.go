// Package candset is the shared candidate/eligibility machinery behind the
// evaluator's candidate cache and the dispersal engine's eligibility cache:
// ascending item-id lists packed as int32 (four bytes per entry) with one
// contiguous backing array per cache, plus the complement walks that build
// them — a merge walk over a sorted exclusion list and a word walk over an
// exclusion bitset.
//
// Everything here carries the repository's determinism contract: list
// contents depend only on the inputs, never on worker counts or build order.
// BuildPacked in particular lays lists out by a size prefix-sum computed
// before any filling happens, so each list is written by exactly one
// goroutine into its own pre-assigned range.
package candset

import (
	"math/bits"

	"ptffedrec/internal/bitset"
	"ptffedrec/internal/par"
)

// Packed stores n ascending int32 lists in one contiguous backing array —
// the storage layout shared by the evaluation candidate cache and anything
// else that keeps many per-user item lists alive at once. Immutable after
// construction.
type Packed struct {
	off []int
	ids []int32
}

// Lists returns how many lists the cache holds.
func (p *Packed) Lists() int { return len(p.off) - 1 }

// List returns list i, aliasing the backing array.
func (p *Packed) List(i int) []int32 { return p.ids[p.off[i]:p.off[i+1]] }

// TotalLen returns the total number of packed entries — ×4 bytes is the
// cache's memory footprint.
func (p *Packed) TotalLen() int { return len(p.ids) }

// MemoryBytes reports the cache's resident footprint: the packed int32
// entries plus the offset index.
func (p *Packed) MemoryBytes() int64 {
	return int64(cap(p.ids))*4 + int64(cap(p.off))*8
}

// BuildPacked builds n packed lists on a worker pool. size(i) must return
// list i's exact length; fill(i, dst) must write list i into dst (which has
// that length). The layout is fixed by the size prefix-sum before any fill
// runs and every list is filled by exactly one goroutine into its own range,
// so the result is identical for every worker count. workers <= 0 means
// GOMAXPROCS.
func BuildPacked(n, workers int, size func(i int) int, fill func(i int, dst []int32)) *Packed {
	p := &Packed{off: make([]int, n+1)}
	for i := 0; i < n; i++ {
		p.off[i+1] = p.off[i] + size(i)
	}
	p.ids = make([]int32, p.off[n])
	par.For(n, par.Workers(workers), func(i int) {
		// The full slice expression caps the destination at the list's own
		// range: a fill that violates its size contract panics here instead
		// of silently appending into the next list's range.
		fill(i, p.ids[p.off[i]:p.off[i+1]:p.off[i+1]])
	})
	return p
}

// AppendComplementSorted appends the ascending complement of sorted over
// [0, n) to dst — every value in [0, n) not present in the ascending slice
// sorted. One merge walk; the single definition of "candidate set" shared by
// the int32 cache builds and the per-worker []int streaming rebuilds.
func AppendComplementSorted[T int | int32](dst []T, n int, sorted []int) []T {
	si := 0
	for v := 0; v < n; v++ {
		if si < len(sorted) && sorted[si] == v {
			si++
			continue
		}
		dst = append(dst, T(v))
	}
	return dst
}

// AppendComplement appends the ascending complement of the bitset s over
// [0, n) to dst. It walks the set's backing words — 64 memberships per load —
// instead of probing every element, which is what makes per-round eligibility
// rebuilds cheap when the excluded set is a small fraction of the universe.
// The result is element-for-element identical to the naive probe walk
// (fuzz-verified by FuzzAppendComplementMatchesWalk).
func AppendComplement(dst []int32, s *bitset.Set, n int) []int32 {
	for wi, w := range s.Words() {
		w = ^w
		base := wi << 6
		for w != 0 {
			v := base + bits.TrailingZeros64(w)
			if v >= n {
				return dst
			}
			dst = append(dst, int32(v))
			w &= w - 1
		}
	}
	return dst
}

// AppendRange appends 0..n-1 to dst — the complement of an empty exclusion
// set, used when a client has no upload to exclude yet.
func AppendRange(dst []int32, n int) []int32 {
	for v := 0; v < n; v++ {
		dst = append(dst, int32(v))
	}
	return dst
}

// Widen copies an int32 list into an []int scratch slice (reusing dst's
// storage when it has capacity) for callers whose downstream APIs take ints.
func Widen(dst []int, src []int32) []int {
	if cap(dst) < len(src) {
		dst = make([]int, len(src))
	} else {
		dst = dst[:len(src)]
	}
	for i, v := range src {
		dst[i] = int(v)
	}
	return dst
}
