package models

import (
	"ptffedrec/internal/emb"
	"ptffedrec/internal/nn"
	"ptffedrec/internal/rng"
)

// MF is logistic matrix factorization: r̂ᵤᵥ = σ(pᵤ·qᵥ). It is the model
// federated by the FCF and FedMF baselines.
type MF struct {
	cfg   Config
	users embTable
	items embTable
}

// NewMF builds a matrix factorization model.
func NewMF(cfg Config, s *rng.Stream) *MF {
	hy := emb.DefaultAdam(cfg.LR)
	m := &MF{cfg: cfg}
	if cfg.Lazy {
		m.users = emb.NewLazyTable(s.Derive("u"), cfg.Dim, hy)
		m.items = emb.NewLazyTable(s.Derive("v"), cfg.Dim, hy)
	} else {
		m.users = emb.NewTable(s.Derive("u"), cfg.NumUsers, cfg.Dim, hy)
		m.items = emb.NewTable(s.Derive("v"), cfg.NumItems, cfg.Dim, hy)
	}
	return m
}

// Name implements Recommender.
func (m *MF) Name() string { return string(KindMF) }

// NumParams implements Recommender.
func (m *MF) NumParams() int { return (m.cfg.NumUsers + m.cfg.NumItems) * m.cfg.Dim }

// Score implements Recommender.
func (m *MF) Score(u, v int) float64 {
	return nn.Sigmoid(dot(m.users.Row(u), m.items.Row(v)))
}

// ScoreItems implements Recommender.
func (m *MF) ScoreItems(u int, items []int) []float64 {
	p := m.users.Row(u)
	out := make([]float64, len(items))
	for i, v := range items {
		out[i] = nn.Sigmoid(dot(p, m.items.Row(v)))
	}
	return out
}

// TrainBatch implements Recommender.
func (m *MF) TrainBatch(batch []Sample) float64 {
	if len(batch) == 0 {
		return 0
	}
	loss := m.accumulateGrad(batch)
	m.users.Step()
	m.items.Step()
	return loss
}

// accumulateGrad computes the batch loss and adds the embedding-row
// gradients without applying them.
func (m *MF) accumulateGrad(batch []Sample) float64 {
	preds := make([]float64, len(batch))
	targets := make([]float64, len(batch))
	for i, smp := range batch {
		preds[i] = m.Score(smp.User, smp.Item)
		targets[i] = smp.Label
	}
	loss := nn.BCE(preds, targets)
	grads := nn.BCELogitGrad(preds, targets)
	du := make([]float64, m.cfg.Dim)
	dv := make([]float64, m.cfg.Dim)
	for i, smp := range batch {
		p := m.users.Row(smp.User)
		q := m.items.Row(smp.Item)
		g := grads[i]
		for k := 0; k < m.cfg.Dim; k++ {
			du[k] = g * q[k]
			dv[k] = g * p[k]
		}
		m.users.Accumulate(smp.User, du)
		m.items.Accumulate(smp.Item, dv)
	}
	return loss
}

// UserRow exposes user u's embedding (read-only) for the federated baselines
// that transmit embeddings directly.
func (m *MF) UserRow(u int) []float64 { return m.users.Row(u) }

// ItemRow exposes item v's embedding (read-only).
func (m *MF) ItemRow(v int) []float64 { return m.items.Row(v) }

func dot(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}
