package models

import (
	"ptffedrec/internal/emb"
	"ptffedrec/internal/nn"
	"ptffedrec/internal/rng"
	"ptffedrec/internal/tensor"
)

// MF is logistic matrix factorization: r̂ᵤᵥ = σ(pᵤ·qᵥ). It is the model
// federated by the FCF and FedMF baselines.
type MF struct {
	cfg     Config
	workers int
	users   embTable
	items   embTable
}

// NewMF builds a matrix factorization model.
func NewMF(cfg Config, s *rng.Stream) *MF {
	hy := emb.DefaultAdam(cfg.LR)
	m := &MF{cfg: cfg, workers: resolveTrainWorkers(cfg)}
	if cfg.Lazy {
		m.users = emb.NewLazyTable(s.Derive("u"), cfg.Dim, hy)
		m.items = emb.NewLazyTable(s.Derive("v"), cfg.Dim, hy)
	} else {
		m.users = emb.NewTable(s.Derive("u"), cfg.NumUsers, cfg.Dim, hy)
		m.items = emb.NewTable(s.Derive("v"), cfg.NumItems, cfg.Dim, hy)
	}
	return m
}

// Name implements Recommender.
func (m *MF) Name() string { return string(KindMF) }

// NumParams implements Recommender.
func (m *MF) NumParams() int { return (m.cfg.NumUsers + m.cfg.NumItems) * m.cfg.Dim }

// Score implements Recommender.
func (m *MF) Score(u, v int) float64 {
	return nn.Sigmoid(dot(m.users.Row(u), m.items.Row(v)))
}

// ScoreItems implements Recommender.
func (m *MF) ScoreItems(u int, items []int) []float64 {
	return m.ScoreItemsInto(nil, u, items)
}

// ScoreItemsInto implements InplaceScorer.
func (m *MF) ScoreItemsInto(dst []float64, u int, items []int) []float64 {
	out := scoreBuf(dst, len(items))
	p := m.users.Row(u)
	for _, v := range items {
		out = append(out, nn.Sigmoid(dot(p, m.items.Row(v))))
	}
	return out
}

// ScoreBlockLogitsInto implements BlockScorer's logit-domain half: one fused
// row-gather GEMV against the dense item-embedding matrix produces the whole
// candidate list's raw dot products (sharded over the TrainWorkers pool for
// very long lists). Lazy item tables have no dense matrix to multiply
// against, so they keep the per-item loop (which materialises rows and is
// therefore single-goroutine anyway).
func (m *MF) ScoreBlockLogitsInto(dst []float64, u int, items []int) {
	checkBlock(dst, items)
	p := m.users.Row(u)
	if t, ok := m.items.(*emb.Table); ok {
		tensor.GatherMulVecIntoPar(dst, t.W, items, 0, p, m.workers)
		return
	}
	for i, v := range items {
		dst[i] = dot(p, m.items.Row(v))
	}
}

// ScoreBlockInto implements BlockScorer: the logit kernel with the sigmoid
// applied at this call boundary, per the contract.
func (m *MF) ScoreBlockInto(dst []float64, u int, items []int) {
	m.ScoreBlockLogitsInto(dst, u, items)
	sigmoidVec(dst)
}

// ScoreUsersBlockLogitsInto implements MultiBlockScorer's logit-domain half:
// one double-gathered GEMM against the dense embedding tables produces the
// whole user batch's raw dot products. Lazy tables fall back to per-user
// logit scoring row by row.
func (m *MF) ScoreUsersBlockLogitsInto(dst *tensor.Matrix, users []int, items []int) {
	checkUsersBlock(dst, users, items)
	ut, uok := m.users.(*emb.Table)
	it, iok := m.items.(*emb.Table)
	if uok && iok {
		tensor.GatherMulMatInto(dst, ut.W, users, 0, it.W, items, 0)
		return
	}
	for i, u := range users {
		m.ScoreBlockLogitsInto(dst.Row(i), u, items)
	}
}

// ScoreUsersBlockInto implements MultiBlockScorer: the logit kernel with the
// sigmoid applied at this call boundary, per the contract.
func (m *MF) ScoreUsersBlockInto(dst *tensor.Matrix, users []int, items []int) {
	m.ScoreUsersBlockLogitsInto(dst, users, items)
	sigmoidData(dst)
}

// ScorePairsInto implements MultiBlockScorer's ragged half: one gathered
// pair-dot pass over the dense embedding tables, then the sigmoid.
func (m *MF) ScorePairsInto(dst []float64, users []int, items []int) {
	checkPairs(dst, users, items)
	ut, uok := m.users.(*emb.Table)
	it, iok := m.items.(*emb.Table)
	if uok && iok {
		tensor.GatherPairDotInto(dst, ut.W, users, 0, it.W, items, 0)
	} else {
		for p, u := range users {
			dst[p] = dot(m.users.Row(u), m.items.Row(items[p]))
		}
	}
	sigmoidVec(dst)
}

// TrainBatch implements Recommender.
func (m *MF) TrainBatch(batch []Sample) float64 {
	if len(batch) == 0 {
		return 0
	}
	loss := m.accumulateGrad(batch)
	m.users.Step()
	m.items.Step()
	return loss
}

// mfChunk is one gradient shard's workspace.
type mfChunk struct {
	lossSum      float64
	users, items *rowAccum
}

// accumulateGrad computes the batch loss and adds the embedding-row
// gradients without applying them. Chunks of the batch are processed on the
// TrainWorkers pool into private workspaces (weights are read-only until
// Step), then merged in chunk order.
func (m *MF) accumulateGrad(batch []Sample) float64 {
	n := len(batch)
	chunks := make([]mfChunk, trainChunks(n))
	forChunks(n, m.workers, func(c, lo, hi int) {
		ws := mfChunk{users: newRowAccum(m.cfg.Dim), items: newRowAccum(m.cfg.Dim)}
		for _, smp := range batch[lo:hi] {
			p := m.users.Row(smp.User)
			q := m.items.Row(smp.Item)
			pred := nn.Sigmoid(dot(p, q))
			ws.lossSum += nn.BCEOne(pred, smp.Label)
			g := (pred - smp.Label) / float64(n)
			ws.users.axpy(smp.User, g, q)
			ws.items.axpy(smp.Item, g, p)
		}
		chunks[c] = ws
	})
	var lossSum float64
	for _, ws := range chunks {
		lossSum += ws.lossSum
		ws.users.mergeInto(m.users)
		ws.items.mergeInto(m.items)
	}
	return lossSum / float64(n)
}

// UserRow exposes user u's embedding (read-only) for the federated baselines
// that transmit embeddings directly.
func (m *MF) UserRow(u int) []float64 { return m.users.Row(u) }

// ItemRow exposes item v's embedding (read-only).
func (m *MF) ItemRow(v int) []float64 { return m.items.Row(v) }

func dot(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}
