package models

import (
	"testing"

	"ptffedrec/internal/nn"
	"ptffedrec/internal/tensor"
)

// TestScoreBlockLogitsContract pins the sigmoid-placement contract on every
// model kind (dense and lazy): ScoreBlockInto must equal ScoreBlockLogitsInto
// followed by the element-wise boundary sigmoid, bitwise — the identity that
// lets selection run on raw logits and pay σ only for winners.
func TestScoreBlockLogitsContract(t *testing.T) {
	for _, kind := range []Kind{KindMF, KindNeuMF, KindNGCF, KindLightGCN} {
		for _, lazy := range []bool{false, true} {
			m := blockModel(t, kind, lazy)
			bs, ok := m.(BlockScorer)
			if !ok {
				t.Fatalf("%s lazy=%v does not implement BlockScorer", kind, lazy)
			}
			for _, items := range raggedLists(blockConfig().NumItems) {
				for u := 0; u < 3; u++ {
					logits := make([]float64, len(items))
					probs := make([]float64, len(items))
					if len(items) > 0 {
						bs.ScoreBlockLogitsInto(logits, u, items)
						bs.ScoreBlockInto(probs, u, items)
					}
					for i := range items {
						if want := nn.Sigmoid(logits[i]); probs[i] != want {
							t.Fatalf("%s lazy=%v u=%d item %d: ScoreBlockInto=%v, σ(logit)=%v (logit=%v)",
								kind, lazy, u, items[i], probs[i], want, logits[i])
						}
					}
				}
			}
		}
	}
}

// TestScoreUsersBlockLogitsContract pins the multi-user side of the contract
// on every model kind: each row of ScoreUsersBlockLogitsInto must equal the
// single-user ScoreBlockLogitsInto for that user bitwise (row independence —
// the property that makes batched evaluation bitwise-identical to per-user
// evaluation), and ScoreUsersBlockInto must be the logits plus the boundary
// sigmoid.
func TestScoreUsersBlockLogitsContract(t *testing.T) {
	cfg := blockConfig()
	users := []int{0, 2, 1, 4, 2}
	for _, kind := range []Kind{KindMF, KindNeuMF, KindNGCF, KindLightGCN} {
		for _, lazy := range []bool{false, true} {
			m := blockModel(t, kind, lazy)
			mbs, ok := m.(MultiBlockScorer)
			if !ok {
				t.Fatalf("%s lazy=%v does not implement MultiBlockScorer", kind, lazy)
			}
			for _, items := range raggedLists(cfg.NumItems) {
				if len(items) == 0 {
					continue
				}
				logits := tensor.New(len(users), len(items))
				probs := tensor.New(len(users), len(items))
				mbs.ScoreUsersBlockLogitsInto(logits, users, items)
				mbs.ScoreUsersBlockInto(probs, users, items)
				row := make([]float64, len(items))
				for r, u := range users {
					mbs.(BlockScorer).ScoreBlockLogitsInto(row, u, items)
					for i := range items {
						if logits.At(r, i) != row[i] {
							t.Fatalf("%s lazy=%v user %d item %d: batched logit %v != single-user logit %v",
								kind, lazy, u, items[i], logits.At(r, i), row[i])
						}
						if want := nn.Sigmoid(logits.At(r, i)); probs.At(r, i) != want {
							t.Fatalf("%s lazy=%v user %d item %d: ScoreUsersBlockInto=%v, σ(logit)=%v",
								kind, lazy, u, items[i], probs.At(r, i), want)
						}
					}
				}
			}
		}
	}
}
