package models

import (
	"ptffedrec/internal/graph"
	"ptffedrec/internal/nn"
	"ptffedrec/internal/rng"
	"ptffedrec/internal/tensor"
)

// LightGCN implements He et al. (2020): embeddings are propagated L times
// over the symmetric normalized adjacency with no transforms or
// nonlinearities, and the readout is the layer mean
//
//	E_final = 1/(L+1) · Σ_{l=0..L} Â^l E⁰ ,  r̂ᵤᵥ = σ(eᵤ·eᵥ).
//
// Backpropagation exploits Â's symmetry: dE⁰ = Σ_l c·Â^l dE_final, computed
// with the recurrence G_{l-1} = c·dF + Â·G_l.
type LightGCN struct {
	cfg     Config
	workers int
	e0      *nn.Param // (U+V)×d
	opt     *nn.Adam

	adj   *tensor.CSR
	final *tensor.Matrix
	dirty bool
}

// NewLightGCN builds the model over an initially empty graph (call SetGraph).
func NewLightGCN(cfg Config, s *rng.Stream) *LightGCN {
	n := cfg.NumUsers + cfg.NumItems
	m := &LightGCN{
		cfg:     cfg,
		workers: resolveTrainWorkers(cfg),
		e0:      nn.NewParam("lightgcn.E0", n, cfg.Dim),
		opt:     nn.NewAdam(cfg.LR),
		dirty:   true,
	}
	nn.Normal(s.Derive("e0"), m.e0.W, 0.1)
	m.SetGraph(graph.NewBipartite(cfg.NumUsers, cfg.NumItems))
	return m
}

// Name implements Recommender.
func (m *LightGCN) Name() string { return string(KindLightGCN) }

// NumParams implements Recommender.
func (m *LightGCN) NumParams() int { return m.e0.NumValues() }

// SetGraph implements GraphRecommender.
func (m *LightGCN) SetGraph(g *graph.Bipartite) {
	if g.NumUsers != m.cfg.NumUsers || g.NumItems != m.cfg.NumItems {
		panic("models: LightGCN graph universe mismatch")
	}
	m.adj = g.NormalizedAdjPar(m.workers)
	m.dirty = true
}

// SetGraphIncremental implements GraphDeltaRecommender: the maintained
// adjacency is assembled straight into the model's reused CSR buffer.
func (m *LightGCN) SetGraphIncremental(inc *graph.Incremental) {
	if inc.NumUsers() != m.cfg.NumUsers || inc.NumItems() != m.cfg.NumItems {
		panic("models: LightGCN graph universe mismatch")
	}
	m.adj = inc.AdjInto(m.adj, m.workers)
	m.dirty = true
}

// propagate returns the cached layer-mean embeddings, recomputing when the
// parameters or graph changed. The SpMM shards over row ranges on the
// TrainWorkers pool, bitwise-identical for any worker count.
func (m *LightGCN) propagate() *tensor.Matrix {
	if !m.dirty && m.final != nil {
		return m.final
	}
	c := 1.0 / float64(m.cfg.Layers+1)
	final := m.e0.W.Clone().Scale(c)
	cur := m.e0.W
	buf := tensor.New(cur.Rows, cur.Cols)
	for l := 0; l < m.cfg.Layers; l++ {
		m.adj.MulDenseIntoPar(buf, cur, m.workers)
		final.AddScaled(c, buf)
		cur = buf.Clone()
	}
	m.final = final
	m.dirty = false
	return final
}

// WarmScoring implements Warmer: it forces the propagation cache so
// concurrent ScoreItems calls are pure reads.
func (m *LightGCN) WarmScoring() { m.propagate() }

func (m *LightGCN) itemNode(v int) int { return m.cfg.NumUsers + v }

// Score implements Recommender.
func (m *LightGCN) Score(u, v int) float64 {
	f := m.propagate()
	return nn.Sigmoid(dot(f.Row(u), f.Row(m.itemNode(v))))
}

// ScoreItems implements Recommender.
func (m *LightGCN) ScoreItems(u int, items []int) []float64 {
	return m.ScoreItemsInto(nil, u, items)
}

// ScoreItemsInto implements InplaceScorer.
func (m *LightGCN) ScoreItemsInto(dst []float64, u int, items []int) []float64 {
	f := m.propagate()
	urow := f.Row(u)
	out := scoreBuf(dst, len(items))
	for _, v := range items {
		out = append(out, nn.Sigmoid(dot(urow, f.Row(m.itemNode(v)))))
	}
	return out
}

// ScoreBlockLogitsInto implements BlockScorer's logit-domain half: one fused
// row-gather GEMV against the propagated embedding matrix produces the whole
// candidate list's raw dot products (sharded over the TrainWorkers pool for
// very long lists).
func (m *LightGCN) ScoreBlockLogitsInto(dst []float64, u int, items []int) {
	checkBlock(dst, items)
	f := m.propagate()
	tensor.GatherMulVecIntoPar(dst, f, items, m.cfg.NumUsers, f.Row(u), m.workers)
}

// ScoreBlockInto implements BlockScorer: the logit kernel with the sigmoid
// applied at this call boundary, per the contract.
func (m *LightGCN) ScoreBlockInto(dst []float64, u int, items []int) {
	m.ScoreBlockLogitsInto(dst, u, items)
	sigmoidVec(dst)
}

// ScoreUsersBlockLogitsInto implements MultiBlockScorer's logit-domain half:
// one double-gathered GEMM against the propagated embedding matrix produces
// the whole user batch's raw dot products.
func (m *LightGCN) ScoreUsersBlockLogitsInto(dst *tensor.Matrix, users []int, items []int) {
	checkUsersBlock(dst, users, items)
	f := m.propagate()
	tensor.GatherMulMatInto(dst, f, users, 0, f, items, m.cfg.NumUsers)
}

// ScoreUsersBlockInto implements MultiBlockScorer: the logit kernel with the
// sigmoid applied at this call boundary, per the contract.
func (m *LightGCN) ScoreUsersBlockInto(dst *tensor.Matrix, users []int, items []int) {
	m.ScoreUsersBlockLogitsInto(dst, users, items)
	sigmoidData(dst)
}

// ScorePairsInto implements MultiBlockScorer's ragged half: one gathered
// pair-dot pass over the propagated embedding matrix, then the sigmoid.
func (m *LightGCN) ScorePairsInto(dst []float64, users []int, items []int) {
	checkPairs(dst, users, items)
	f := m.propagate()
	tensor.GatherPairDotInto(dst, f, users, 0, f, items, m.cfg.NumUsers)
	sigmoidVec(dst)
}

// TrainBatch implements Recommender.
func (m *LightGCN) TrainBatch(batch []Sample) float64 {
	if len(batch) == 0 {
		return 0
	}
	loss := m.accumulateGrad(batch)
	m.opt.Step([]*nn.Param{m.e0})
	m.dirty = true
	return loss
}

// lgcnChunk is one gradient shard's workspace: the shard's loss sum and its
// sparse contribution to dL/dE_final.
type lgcnChunk struct {
	lossSum float64
	df      *rowAccum
}

// accumulateGrad computes the batch loss and adds dL/dE⁰ into the parameter
// gradient without stepping the optimizer. The per-sample score/seed pass is
// sharded into fixed chunks merged in chunk order; the propagation backward
// shards its SpMMs over row ranges.
func (m *LightGCN) accumulateGrad(batch []Sample) float64 {
	f := m.propagate()
	n := len(batch)
	chunks := make([]lgcnChunk, trainChunks(n))
	forChunks(n, m.workers, func(c, lo, hi int) {
		ws := lgcnChunk{df: newRowAccum(m.cfg.Dim)}
		for _, smp := range batch[lo:hi] {
			un, vn := smp.User, m.itemNode(smp.Item)
			pred := nn.Sigmoid(dot(f.Row(un), f.Row(vn)))
			ws.lossSum += nn.BCEOne(pred, smp.Label)
			g := (pred - smp.Label) / float64(n)
			ws.df.axpy(un, g, f.Row(vn))
			ws.df.axpy(vn, g, f.Row(un))
		}
		chunks[c] = ws
	})

	// dL/dE_final from the dot-product scores, merged in chunk order.
	dF := tensor.New(f.Rows, f.Cols)
	var lossSum float64
	for _, ws := range chunks {
		lossSum += ws.lossSum
		ws.df.mergeIntoRows(dF.Row)
	}

	// Back through the propagation: G_L = c·dF, G_{l-1} = c·dF + Â·G_l.
	c := 1.0 / float64(m.cfg.Layers+1)
	g := dF.Clone().Scale(c)
	buf := tensor.New(dF.Rows, dF.Cols)
	for l := m.cfg.Layers; l >= 1; l-- {
		m.adj.MulDenseIntoPar(buf, g, m.workers)
		g = dF.Clone().Scale(c).AddInPlace(buf)
	}
	m.e0.Grad.AddInPlace(g)
	return lossSum / float64(n)
}
