package models

import (
	"bytes"
	"math"
	"testing"

	"ptffedrec/internal/graph"
	"ptffedrec/internal/rng"
)

// bigBatch builds a deterministic batch spanning several gradient chunks,
// with repeated (user, item) pairs so row-gradient accumulation order is
// exercised.
func bigBatch(cfg Config, n int) []Sample {
	s := rng.New(99)
	batch := make([]Sample, n)
	for i := range batch {
		batch[i] = Sample{
			User:  s.Intn(cfg.NumUsers),
			Item:  s.Intn(cfg.NumItems),
			Label: float64(s.Intn(11)) / 10,
		}
	}
	return batch
}

func denseGraph(cfg Config, s *rng.Stream) *graph.Bipartite {
	g := graph.NewBipartite(cfg.NumUsers, cfg.NumItems)
	for u := 0; u < cfg.NumUsers; u++ {
		for _, v := range s.SampleInts(cfg.NumItems, 5) {
			g.AddEdge(u, v, 0.2+0.8*s.Float64())
		}
	}
	return g
}

func snapshotBytes(t *testing.T, m Recommender) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.(Snapshotter).Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTrainBatchWorkerInvariance pins the gradient-workspace contract for all
// four model kinds: several multi-chunk TrainBatch steps produce bitwise
// identical losses and parameter snapshots for every TrainWorkers value.
func TestTrainBatchWorkerInvariance(t *testing.T) {
	cfg := Config{NumUsers: 40, NumItems: 60, Dim: 8, LR: 1e-2, Layers: 2, Seed: 5}
	batch := bigBatch(cfg, 3*trainChunkSize+37)
	for _, kind := range []Kind{KindMF, KindNeuMF, KindNGCF, KindLightGCN} {
		var refLosses []float64
		var refSnap []byte
		for _, workers := range []int{1, 2, 8} {
			wcfg := cfg
			wcfg.TrainWorkers = workers
			m, err := New(kind, wcfg)
			if err != nil {
				t.Fatal(err)
			}
			if gm, ok := m.(GraphRecommender); ok {
				gm.SetGraph(denseGraph(cfg, rng.New(31)))
			}
			losses := make([]float64, 3)
			for i := range losses {
				losses[i] = m.TrainBatch(batch)
			}
			snap := snapshotBytes(t, m)
			if workers == 1 {
				refLosses, refSnap = losses, snap
				continue
			}
			for i := range losses {
				if losses[i] != refLosses[i] {
					t.Fatalf("%s: workers=%d loss[%d] = %v, workers=1 %v",
						kind, workers, i, losses[i], refLosses[i])
				}
			}
			if !bytes.Equal(snap, refSnap) {
				t.Fatalf("%s: workers=%d snapshot differs from workers=1", kind, workers)
			}
		}
	}
}

// TestScoreItemsIntoMatchesScoreItems checks the buffer-reusing scorer path
// returns the same values as the allocating one and actually reuses storage.
func TestScoreItemsIntoMatchesScoreItems(t *testing.T) {
	cfg := smallConfig()
	items := []int{0, 1, 3, 5}
	for _, kind := range []Kind{KindMF, KindNeuMF, KindNGCF, KindLightGCN} {
		m, err := New(kind, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if gm, ok := m.(GraphRecommender); ok {
			gm.SetGraph(smallGraph(cfg))
		}
		is, ok := m.(InplaceScorer)
		if !ok {
			t.Fatalf("%s does not implement InplaceScorer", kind)
		}
		buf := make([]float64, 0, len(items))
		got := is.ScoreItemsInto(buf, 1, items)
		want := m.ScoreItems(1, items)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-15 {
				t.Fatalf("%s: ScoreItemsInto[%d] = %v, ScoreItems = %v", kind, i, got[i], want[i])
			}
		}
		if len(items) > 0 && cap(buf) >= len(items) && &got[0] != &buf[:1][0] {
			t.Fatalf("%s: ScoreItemsInto did not reuse the provided buffer", kind)
		}
	}
}

// TestLazyModelsForceSerialSharding documents the guard: lazy tables
// materialise rows on read, so TrainWorkers must degrade to serial.
func TestLazyModelsForceSerialSharding(t *testing.T) {
	cfg := smallConfig()
	cfg.Lazy = true
	cfg.TrainWorkers = 8
	if w := resolveTrainWorkers(cfg); w != 1 {
		t.Fatalf("lazy config resolved to %d workers, want 1", w)
	}
	m := NewMF(cfg, rng.New(1))
	if m.workers != 1 {
		t.Fatalf("lazy MF workers = %d, want 1", m.workers)
	}
}
