package models

import (
	"fmt"

	"ptffedrec/internal/tensor"
)

// MultiBlockScorer is the multi-user batched scoring engine's contract,
// implemented by every model in this package. ScoreUsersBlockInto fills dst —
// which must be len(users) × len(items) — with σ(logit) for every
// (users[i], items[j]) pair, scoring the whole user batch against the shared
// candidate block through matrix kernels: MF and the graph models run one
// double-gathered GEMM (tensor.GatherMulMatInto) against the (propagated)
// embedding matrices, and NeuMF streams each user's row through its pooled
// chunked MLP forwards.
//
// Sigmoid placement follows BlockScorer's contract: ScoreUsersBlockLogitsInto
// is the logit-domain entry point — the same kernels stopping before the
// sigmoid — and ScoreUsersBlockInto is exactly those logits passed
// element-wise through σ at the call boundary. The batched evaluation and
// dispersal engines score logits and select under
// metrics.LogitTopKSelector's tie-safe contract, applying σ only to the
// winners they keep.
//
// The contract is strict: dst.Row(i) is bitwise-identical to
// ScoreBlockInto(row, users[i], items) — logit rows to
// ScoreBlockLogitsInto(row, users[i], items) — and therefore to the per-item
// scoring path, for any batch composition, so evaluation metrics, dispersal
// plans, and training histories do not depend on how users are grouped into
// score batches. Concurrency follows BlockScorer's rules: calls for disjoint
// user batches are safe once lazily built shared state is warm (Warmer) and
// the model's tables are dense; Lazy models materialise rows on read and must
// be scored from one goroutine.
//
// ScorePairsInto is the contract's ragged half: dst[p] = σ(logit) for the
// pair (users[p], items[p]). It batches scoring passes whose per-user item
// lists differ — dispersal's final re-scoring concatenates every client's
// chosen items into one pair list — through the gathered pair-dot kernels
// (tensor.GatherPairDotInto) or, for NeuMF, the same pooled chunked forwards
// with per-row users. Values are bitwise-identical to scoring each pair
// through the per-user paths. It stays σ-domain only: its consumers ship the
// probabilities over the wire, so every pair's sigmoid is paid regardless and
// a logit variant would have no caller.
type MultiBlockScorer interface {
	ScoreUsersBlockInto(dst *tensor.Matrix, users []int, items []int)
	ScoreUsersBlockLogitsInto(dst *tensor.Matrix, users []int, items []int)
	ScorePairsInto(dst []float64, users []int, items []int)
}

// checkPairs validates a ScorePairsInto destination.
func checkPairs(dst []float64, users, items []int) {
	if len(dst) != len(users) || len(users) != len(items) {
		panic(fmt.Sprintf("models: ScorePairsInto dst[%d] for %d users × %d items",
			len(dst), len(users), len(items)))
	}
}

// checkUsersBlock validates a ScoreUsersBlockInto destination.
func checkUsersBlock(dst *tensor.Matrix, users, items []int) {
	if dst.Rows != len(users) || dst.Cols != len(items) {
		panic(fmt.Sprintf("models: ScoreUsersBlockInto dst %dx%d for %d users × %d items",
			dst.Rows, dst.Cols, len(users), len(items)))
	}
}

// sigmoidData replaces each logit in m with σ(logit).
func sigmoidData(m *tensor.Matrix) { sigmoidVec(m.Data) }
