package models

import (
	"reflect"
	"testing"

	"ptffedrec/internal/metrics"
	"ptffedrec/internal/rng"
)

// refSelect materialises the full score vector through ScoreBlockInto and
// selects with the stable-sort reference — the exact semantics ScoreBlockTopK
// must reproduce without ever holding all the scores.
func refSelect(bs BlockScorer, u int, items []int, k int) []int {
	scores := make([]float64, len(items))
	if len(items) > 0 {
		bs.ScoreBlockInto(scores, u, items)
	}
	got := metrics.TopK(scores, k)
	out := make([]int, len(got))
	copy(out, got)
	return out
}

// TestScoreBlockTopKMatchesSort pins the fused selection against the
// score-everything-then-sort reference for every model kind, across candidate
// lists that straddle chunk boundaries and k values from 0 to beyond the list
// length. The chunk size is shrunk so even small lists exercise multi-chunk
// streaming.
func TestScoreBlockTopKMatchesSort(t *testing.T) {
	defer func(c int) { scoreBlockTopKChunk = c }(scoreBlockTopKChunk)
	scoreBlockTopKChunk = 64

	for _, kind := range []Kind{KindMF, KindNeuMF, KindNGCF, KindLightGCN} {
		m := blockModel(t, kind, false)
		bs, ok := m.(BlockScorer)
		if !ok {
			t.Fatalf("%s does not implement BlockScorer", kind)
		}
		var sc TopKScratch
		for _, items := range raggedLists(blockConfig().NumItems) {
			for _, k := range []int{0, 1, 5, 20, len(items), len(items) + 7} {
				for u := 0; u < 3; u++ {
					got := ScoreBlockTopK(bs, &sc, u, items, k)
					want := refSelect(bs, u, items, k)
					if len(got) != len(want) {
						t.Fatalf("%s u=%d n=%d k=%d: got %d indices, want %d",
							kind, u, len(items), k, len(got), len(want))
					}
					if len(want) > 0 && !reflect.DeepEqual(got, want) {
						t.Fatalf("%s u=%d n=%d k=%d: fused selection %v != sort %v",
							kind, u, len(items), k, got, want)
					}
				}
			}
		}
	}
}

// TestScoreBlockTopKTieHeavy drives the fused selection through a scorer that
// returns quantized scores, so tie-breaking (index asc within equal scores)
// decides most of the selection.
func TestScoreBlockTopKTieHeavy(t *testing.T) {
	defer func(c int) { scoreBlockTopKChunk = c }(scoreBlockTopKChunk)
	scoreBlockTopKChunk = 32

	quant := blockScorerFunc(func(dst []float64, u int, items []int) {
		for i, v := range items {
			dst[i] = float64((v*7+u)%4) / 3
		}
	})
	s := rng.New(5)
	var sc TopKScratch
	for trial := 0; trial < 100; trial++ {
		n := 1 + s.Intn(200)
		items := make([]int, n)
		for i := range items {
			items[i] = s.Intn(500)
		}
		k := 1 + s.Intn(30)
		got := ScoreBlockTopK(quant, &sc, trial%3, items, k)
		want := refSelect(quant, trial%3, items, k)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (n=%d k=%d): fused %v != sort %v", trial, n, k, got, want)
		}
	}
}

// TestScoreBlockTopKAllocFree checks the scratch contract: once warm, a
// selection allocates nothing.
func TestScoreBlockTopKAllocFree(t *testing.T) {
	m := blockModel(t, KindMF, false).(BlockScorer)
	items := make([]int, blockConfig().NumItems)
	for i := range items {
		items[i] = i
	}
	var sc TopKScratch
	ScoreBlockTopK(m, &sc, 0, items, 20)
	allocs := testing.AllocsPerRun(50, func() {
		ScoreBlockTopK(m, &sc, 1, items, 20)
	})
	if allocs != 0 {
		t.Fatalf("warm ScoreBlockTopK allocates %v times per run", allocs)
	}
}

// blockScorerFunc adapts a logit-producing function to BlockScorer for tests,
// honoring the contract: ScoreBlockInto is the logit function plus the
// boundary sigmoid.
type blockScorerFunc func(dst []float64, u int, items []int)

func (f blockScorerFunc) ScoreBlockLogitsInto(dst []float64, u int, items []int) { f(dst, u, items) }

func (f blockScorerFunc) ScoreBlockInto(dst []float64, u int, items []int) {
	f(dst, u, items)
	sigmoidVec(dst)
}
