package models

import (
	"testing"

	"ptffedrec/internal/graph"
	"ptffedrec/internal/rng"
	"ptffedrec/internal/tensor"
)

// multiBlockFixture builds a trained model of the given kind over a small
// random universe (graph kinds get a random bipartite graph).
func multiBlockFixture(t *testing.T, kind Kind, lazy bool) Recommender {
	t.Helper()
	cfg := DefaultConfig(23, 57)
	cfg.Dim = 6
	cfg.Layers = 2
	cfg.Seed = 11
	cfg.Lazy = lazy
	m, err := New(kind, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(99).Derive("fixture")
	if gm, ok := m.(GraphRecommender); ok {
		g := graph.NewBipartite(cfg.NumUsers, cfg.NumItems)
		for u := 0; u < cfg.NumUsers; u++ {
			for _, v := range s.SampleInts(cfg.NumItems, 5) {
				g.AddEdge(u, v, 0.3+s.Float64()*0.7)
			}
		}
		gm.SetGraph(g)
	}
	var batch []Sample
	for i := 0; i < 200; i++ {
		batch = append(batch, Sample{User: s.Intn(cfg.NumUsers), Item: s.Intn(cfg.NumItems), Label: s.Float64()})
	}
	m.TrainBatch(batch)
	return m
}

// TestScoreUsersBlockMatchesScalar pins the MultiBlockScorer contract for
// every model kind: each row of the batched user-block score matrix is
// bitwise-identical to the single-user ScoreBlockInto path, for batch sizes
// covering the GEMM kernel's interleaved quad path and its remainder tail.
func TestScoreUsersBlockMatchesScalar(t *testing.T) {
	kinds := []Kind{KindMF, KindNeuMF, KindNGCF, KindLightGCN}
	s := rng.New(5).Derive("batch")
	for _, kind := range kinds {
		m := multiBlockFixture(t, kind, false)
		mbs, ok := m.(MultiBlockScorer)
		if !ok {
			t.Fatalf("%s does not implement MultiBlockScorer", kind)
		}
		bs := m.(BlockScorer)
		for _, nUsers := range []int{1, 3, 4, 7} {
			users := s.SampleInts(23, nUsers)
			items := s.SampleInts(57, 1+s.Intn(57))
			dst := tensor.New(len(users), len(items))
			mbs.ScoreUsersBlockInto(dst, users, items)
			want := make([]float64, len(items))
			for i, u := range users {
				bs.ScoreBlockInto(want, u, items)
				for j := range want {
					if dst.At(i, j) != want[j] {
						t.Fatalf("%s users=%d: dst[%d][%d] = %v, want %v (user %d item %d)",
							kind, nUsers, i, j, dst.At(i, j), want[j], u, items[j])
					}
				}
			}
		}
	}
}

// TestScorePairsMatchesScalar pins the ragged half of the contract for every
// model kind: pair scores are bitwise-identical to scoring each pair through
// the single-user block path, across pair counts covering the interleaved
// quad path, its tail, and NeuMF's chunk boundaries.
func TestScorePairsMatchesScalar(t *testing.T) {
	s := rng.New(17).Derive("pairs")
	for _, kind := range []Kind{KindMF, KindNeuMF, KindNGCF, KindLightGCN} {
		m := multiBlockFixture(t, kind, false)
		mbs := m.(MultiBlockScorer)
		bs := m.(BlockScorer)
		for _, n := range []int{1, 3, 4, 9, 300} {
			users := make([]int, n)
			items := make([]int, n)
			for i := range users {
				users[i] = s.Intn(23)
				items[i] = s.Intn(57)
			}
			dst := make([]float64, n)
			mbs.ScorePairsInto(dst, users, items)
			one := make([]float64, 1)
			for p := range users {
				bs.ScoreBlockInto(one, users[p], items[p:p+1])
				if dst[p] != one[0] {
					t.Fatalf("%s n=%d: pair %d = %v, scalar %v (user %d item %d)",
						kind, n, p, dst[p], one[0], users[p], items[p])
				}
			}
		}
	}
}

// TestScoreUsersBlockLazyFallback pins the lazy-table fallback: models whose
// embedding tables materialise rows on read still satisfy the contract
// through the per-user path.
func TestScoreUsersBlockLazyFallback(t *testing.T) {
	m := multiBlockFixture(t, KindMF, true)
	mbs := m.(MultiBlockScorer)
	users := []int{0, 3, 7, 7, 12, 22}
	items := []int{0, 5, 9, 31, 56}
	dst := tensor.New(len(users), len(items))
	mbs.ScoreUsersBlockInto(dst, users, items)
	want := make([]float64, len(items))
	for i, u := range users {
		m.(BlockScorer).ScoreBlockInto(want, u, items)
		for j := range want {
			if dst.At(i, j) != want[j] {
				t.Fatalf("lazy MF: dst[%d][%d] = %v, want %v", i, j, dst.At(i, j), want[j])
			}
		}
	}
}

// BenchmarkMultiUserScoring compares per-user block scoring with the
// multi-user gather-GEMM engine on a 16-user batch over a full-catalogue
// candidate block — the dispersal engine's hard-half shape. The gap is pure
// kernel: the GEMM's interleaved accumulators and shared candidate-row loads
// against one GEMV per user.
func BenchmarkMultiUserScoring(b *testing.B) {
	for _, kind := range []Kind{KindMF, KindLightGCN, KindNGCF} {
		m := blockModel(b, kind, false)
		if w, ok := m.(interface{ WarmScoring() }); ok {
			w.WarmScoring()
		}
		numUsers := blockConfig().NumUsers
		items := make([]int, blockConfig().NumItems)
		for i := range items {
			items[i] = i
		}
		users := make([]int, 16)
		for i := range users {
			users[i] = i % numUsers
		}
		dst := tensor.New(len(users), len(items))
		b.Run(string(kind)+"/per-user", func(b *testing.B) {
			bs := m.(BlockScorer)
			for i := 0; i < b.N; i++ {
				for r, u := range users {
					bs.ScoreBlockInto(dst.Row(r), u, items)
				}
			}
		})
		b.Run(string(kind)+"/multi-user", func(b *testing.B) {
			mbs := m.(MultiBlockScorer)
			for i := 0; i < b.N; i++ {
				mbs.ScoreUsersBlockInto(dst, users, items)
			}
		})
	}
}

// TestScoreUsersBlockEmptyItems pins the zero-item edge for every kind.
func TestScoreUsersBlockEmptyItems(t *testing.T) {
	for _, kind := range []Kind{KindMF, KindNeuMF, KindNGCF, KindLightGCN} {
		m := multiBlockFixture(t, kind, false)
		dst := tensor.New(2, 0)
		m.(MultiBlockScorer).ScoreUsersBlockInto(dst, []int{0, 1}, nil) // must not panic
	}
}
