package models

import (
	"math"
	"testing"

	"ptffedrec/internal/emb"
	"ptffedrec/internal/graph"
	"ptffedrec/internal/nn"
	"ptffedrec/internal/rng"
)

func smallConfig() Config {
	return Config{NumUsers: 4, NumItems: 6, Dim: 3, LR: 0.01, Layers: 2, Seed: 7}
}

func smallGraph(cfg Config) *graph.Bipartite {
	g := graph.NewBipartite(cfg.NumUsers, cfg.NumItems)
	g.AddEdge(0, 0, 1)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 1, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 4, 1)
	g.AddEdge(3, 5, 1)
	return g
}

func smallBatch() []Sample {
	return []Sample{
		{User: 0, Item: 0, Label: 1},
		{User: 0, Item: 2, Label: 0},
		{User: 1, Item: 1, Label: 0.8},
		{User: 2, Item: 5, Label: 0.2},
		{User: 3, Item: 4, Label: 1},
	}
}

// batchBCE recomputes the loss from scratch via the public Score path.
func batchBCE(m Recommender, batch []Sample, invalidate func()) float64 {
	if invalidate != nil {
		invalidate()
	}
	preds := make([]float64, len(batch))
	targets := make([]float64, len(batch))
	for i, s := range batch {
		preds[i] = m.Score(s.User, s.Item)
		targets[i] = s.Label
	}
	return nn.BCE(preds, targets)
}

func fd(loss func() float64, x []float64, i int) float64 {
	const h = 1e-6
	orig := x[i]
	x[i] = orig + h
	fp := loss()
	x[i] = orig - h
	fm := loss()
	x[i] = orig
	return (fp - fm) / (2 * h)
}

func TestFactoryAllKinds(t *testing.T) {
	cfg := smallConfig()
	for _, kind := range []Kind{KindMF, KindNeuMF, KindNGCF, KindLightGCN} {
		m, err := New(kind, cfg)
		if err != nil {
			t.Fatalf("New(%s): %v", kind, err)
		}
		if m.Name() != string(kind) {
			t.Fatalf("Name = %s", m.Name())
		}
		if m.NumParams() <= 0 {
			t.Fatalf("%s NumParams = %d", kind, m.NumParams())
		}
		sc := m.Score(0, 0)
		if sc <= 0 || sc >= 1 || math.IsNaN(sc) {
			t.Fatalf("%s Score = %v", kind, sc)
		}
	}
}

func TestFactoryErrors(t *testing.T) {
	if _, err := New("nope", smallConfig()); err == nil {
		t.Fatal("unknown kind accepted")
	}
	bad := smallConfig()
	bad.NumUsers = 0
	if _, err := New(KindMF, bad); err == nil {
		t.Fatal("zero users accepted")
	}
	bad = smallConfig()
	bad.Dim = 0
	if _, err := New(KindMF, bad); err == nil {
		t.Fatal("zero dim accepted")
	}
}

func TestParseKind(t *testing.T) {
	if k, err := ParseKind("ngcf"); err != nil || k != KindNGCF {
		t.Fatalf("ParseKind: %v %v", k, err)
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("bogus kind accepted")
	}
}

func TestScoreItemsMatchesScore(t *testing.T) {
	cfg := smallConfig()
	for _, kind := range []Kind{KindMF, KindNeuMF, KindNGCF, KindLightGCN} {
		m, err := New(kind, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if gm, ok := m.(GraphRecommender); ok {
			gm.SetGraph(smallGraph(cfg))
		}
		items := []int{0, 2, 5}
		got := m.ScoreItems(1, items)
		for i, v := range items {
			if math.Abs(got[i]-m.Score(1, v)) > 1e-12 {
				t.Fatalf("%s ScoreItems[%d] = %v, Score = %v", kind, i, got[i], m.Score(1, v))
			}
		}
	}
}

func TestEmptyBatchNoop(t *testing.T) {
	for _, kind := range []Kind{KindMF, KindNeuMF, KindNGCF, KindLightGCN} {
		m, _ := New(kind, smallConfig())
		if loss := m.TrainBatch(nil); loss != 0 {
			t.Fatalf("%s empty batch loss = %v", kind, loss)
		}
	}
}

func TestMFGradCheck(t *testing.T) {
	m := NewMF(smallConfig(), rng.New(3))
	batch := smallBatch()
	loss := func() float64 { return batchBCE(m, batch, nil) }
	if got := m.accumulateGrad(batch); math.Abs(got-loss()) > 1e-12 {
		t.Fatalf("accumulateGrad loss %v vs %v", got, loss())
	}
	users := m.users.(*emb.Table)
	items := m.items.(*emb.Table)
	for _, smp := range batch {
		g := users.PendingGrad(smp.User)
		row := users.Row(smp.User)
		for k := range row {
			want := fd(loss, row, k)
			if math.Abs(g[k]-want) > 1e-5 {
				t.Fatalf("user %d grad[%d] = %v, want %v", smp.User, k, g[k], want)
			}
		}
		gi := items.PendingGrad(smp.Item)
		irow := items.Row(smp.Item)
		for k := range irow {
			want := fd(loss, irow, k)
			if math.Abs(gi[k]-want) > 1e-5 {
				t.Fatalf("item %d grad[%d] = %v, want %v", smp.Item, k, gi[k], want)
			}
		}
	}
}

func TestNeuMFGradCheck(t *testing.T) {
	m := NewNeuMF(smallConfig(), rng.New(5))
	batch := smallBatch()
	targets := make([]float64, len(batch))
	for i, s := range batch {
		targets[i] = s.Label
	}
	loss := func() float64 {
		_, _, _, preds := m.forward(batch)
		return nn.BCE(preds, targets)
	}
	x, zs, as, preds := m.forward(batch)
	m.backward(batch, x, zs, as, nn.BCELogitGrad(preds, targets))

	// Tower and output parameters.
	for _, p := range m.params {
		for i := range p.W.Data {
			want := fd(loss, p.W.Data, i)
			if math.Abs(p.Grad.Data[i]-want) > 1e-5 {
				t.Fatalf("param %s[%d] grad = %v, want %v", p.Name, i, p.Grad.Data[i], want)
			}
		}
	}
	// Embedding rows.
	users := m.users.(*emb.Table)
	for _, smp := range batch {
		g := users.PendingGrad(smp.User)
		row := users.Row(smp.User)
		for k := range row {
			want := fd(loss, row, k)
			if math.Abs(g[k]-want) > 1e-5 {
				t.Fatalf("neumf user %d grad[%d] = %v, want %v", smp.User, k, g[k], want)
			}
		}
	}
}

func TestLightGCNGradCheck(t *testing.T) {
	cfg := smallConfig()
	m := NewLightGCN(cfg, rng.New(9))
	m.SetGraph(smallGraph(cfg))
	batch := smallBatch()
	loss := func() float64 { return batchBCE(m, batch, func() { m.dirty = true }) }
	m.e0.ZeroGrad()
	m.dirty = true
	m.accumulateGrad(batch)
	for i := range m.e0.W.Data {
		want := fd(loss, m.e0.W.Data, i)
		if math.Abs(m.e0.Grad.Data[i]-want) > 1e-5 {
			t.Fatalf("lightgcn E0[%d] grad = %v, want %v", i, m.e0.Grad.Data[i], want)
		}
	}
}

func TestNGCFGradCheck(t *testing.T) {
	cfg := smallConfig()
	m := NewNGCF(cfg, rng.New(11))
	m.SetGraph(smallGraph(cfg))
	batch := smallBatch()
	loss := func() float64 { return batchBCE(m, batch, func() { m.dirty = true }) }
	m.dirty = true
	m.accumulateGrad(batch)

	for i := range m.e0.W.Data {
		want := fd(loss, m.e0.W.Data, i)
		if math.Abs(m.e0.Grad.Data[i]-want) > 1e-5 {
			t.Fatalf("ngcf E0[%d] grad = %v, want %v", i, m.e0.Grad.Data[i], want)
		}
	}
	for l := 0; l < cfg.Layers; l++ {
		for i := range m.w1[l].W.Data {
			want := fd(loss, m.w1[l].W.Data, i)
			if math.Abs(m.w1[l].Grad.Data[i]-want) > 1e-5 {
				t.Fatalf("ngcf W1[%d][%d] grad = %v, want %v", l, i, m.w1[l].Grad.Data[i], want)
			}
		}
		for i := range m.w2[l].W.Data {
			want := fd(loss, m.w2[l].W.Data, i)
			if math.Abs(m.w2[l].Grad.Data[i]-want) > 1e-5 {
				t.Fatalf("ngcf W2[%d][%d] grad = %v, want %v", l, i, m.w2[l].Grad.Data[i], want)
			}
		}
	}
}

// trainToFit drives a model on a fixed batch and returns first/last loss.
func trainToFit(t *testing.T, m Recommender, batch []Sample, steps int) (first, last float64) {
	t.Helper()
	first = m.TrainBatch(batch)
	for i := 1; i < steps-1; i++ {
		m.TrainBatch(batch)
	}
	last = m.TrainBatch(batch)
	return first, last
}

func TestModelsLearnSmallData(t *testing.T) {
	cfg := smallConfig()
	cfg.LR = 0.05
	batch := []Sample{
		{User: 0, Item: 0, Label: 1},
		{User: 0, Item: 1, Label: 0},
		{User: 1, Item: 2, Label: 1},
		{User: 1, Item: 3, Label: 0},
		{User: 2, Item: 4, Label: 1},
		{User: 2, Item: 5, Label: 0},
	}
	for _, kind := range []Kind{KindMF, KindNeuMF, KindNGCF, KindLightGCN} {
		m, err := New(kind, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if gm, ok := m.(GraphRecommender); ok {
			gm.SetGraph(smallGraph(cfg))
		}
		first, last := trainToFit(t, m, batch, 200)
		if last >= first {
			t.Fatalf("%s did not learn: first=%v last=%v", kind, first, last)
		}
		if last > 0.25 {
			t.Fatalf("%s converged poorly: last=%v", kind, last)
		}
		// Positives must outscore negatives after training.
		for i := 0; i+1 < len(batch); i += 2 {
			pos := m.Score(batch[i].User, batch[i].Item)
			neg := m.Score(batch[i+1].User, batch[i+1].Item)
			if pos <= neg {
				t.Fatalf("%s: pos %v <= neg %v for user %d", kind, pos, neg, batch[i].User)
			}
		}
	}
}

func TestGraphModelsReactToSetGraph(t *testing.T) {
	cfg := smallConfig()
	for _, kind := range []Kind{KindNGCF, KindLightGCN} {
		m, _ := New(kind, cfg)
		gm := m.(GraphRecommender)
		before := m.Score(0, 1)
		g := graph.NewBipartite(cfg.NumUsers, cfg.NumItems)
		g.AddEdge(0, 1, 1)
		g.AddEdge(0, 0, 1)
		g.AddEdge(1, 1, 1)
		gm.SetGraph(g)
		after := m.Score(0, 1)
		if before == after {
			t.Fatalf("%s ignores the graph: %v == %v", kind, before, after)
		}
	}
}

func TestGraphUniverseMismatchPanics(t *testing.T) {
	cfg := smallConfig()
	for _, kind := range []Kind{KindNGCF, KindLightGCN} {
		m, _ := New(kind, cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s accepted wrong-universe graph", kind)
				}
			}()
			m.(GraphRecommender).SetGraph(graph.NewBipartite(1, 1))
		}()
	}
}

func TestLazyModelsWork(t *testing.T) {
	cfg := smallConfig()
	cfg.Lazy = true
	for _, kind := range []Kind{KindMF, KindNeuMF} {
		m, err := New(kind, cfg)
		if err != nil {
			t.Fatal(err)
		}
		batch := smallBatch()
		first := m.TrainBatch(batch)
		var last float64
		for i := 0; i < 150; i++ {
			last = m.TrainBatch(batch)
		}
		if last >= first {
			t.Fatalf("lazy %s did not learn: %v -> %v", kind, first, last)
		}
	}
}

func TestSoftLabelTraining(t *testing.T) {
	// Train MF toward a 0.7 soft label; prediction should approach 0.7.
	cfg := smallConfig()
	cfg.LR = 0.05
	m := NewMF(cfg, rng.New(21))
	batch := []Sample{{User: 0, Item: 0, Label: 0.7}}
	for i := 0; i < 600; i++ {
		m.TrainBatch(batch)
	}
	if got := m.Score(0, 0); math.Abs(got-0.7) > 0.05 {
		t.Fatalf("soft-label fit = %v, want ≈0.7", got)
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig(10, 20)
	if cfg.Dim != 32 || cfg.LR != 1e-3 || cfg.Layers != 3 {
		t.Fatalf("DefaultConfig = %+v", cfg)
	}
}
