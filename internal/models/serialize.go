package models

import (
	"fmt"
	"io"

	"ptffedrec/internal/nn"
	"ptffedrec/internal/persist"
)

// Snapshot format versions. V1 carried weights only; V2 appends the Adam
// moment state (embedding-table sparse-Adam rows and dense-parameter
// moments), so a restored model resumes training bit-for-bit where the
// snapshot left off. Restore accepts both: a V1 snapshot loads weights and
// leaves optimizer state untouched — the pre-V2 semantics.
const (
	snapshotMagicV1 = "PTFREC-MODEL-V1"
	snapshotMagic   = "PTFREC-MODEL-V2"
)

// Snapshotter is implemented by models that can persist their state.
// Snapshots carry the parameters plus (since format V2) the optimizer's
// moment estimates, so long federated runs can checkpoint-resume exactly.
// Snapshot between optimizer steps — pending gradients are not persisted.
type Snapshotter interface {
	// Snapshot writes the model's parameters and optimizer state to w.
	Snapshot(w io.Writer) error
	// Restore loads a snapshot previously written by Snapshot (any format
	// version) into this model. The model must have been constructed with
	// the same Config.
	Restore(r io.Reader) error
}

// embSnapshotter is satisfied by both emb.Table and emb.LazyTable.
type embSnapshotter interface {
	Snapshot(w io.Writer) error
	Restore(r io.Reader) error
	SnapshotMoments(w io.Writer) error
	RestoreMoments(r io.Reader) error
}

func writeHeader(w io.Writer, kind Kind) error {
	if err := persist.WriteString(w, snapshotMagic); err != nil {
		return err
	}
	return persist.WriteString(w, string(kind))
}

// readHeader validates the magic and model kind, returning the snapshot's
// format version (1 or 2).
func readHeader(r io.Reader, kind Kind) (int, error) {
	magic, err := persist.ReadString(r)
	if err != nil {
		return 0, fmt.Errorf("models: bad snapshot header: %w", err)
	}
	var version int
	switch magic {
	case snapshotMagicV1:
		version = 1
	case snapshotMagic:
		version = 2
	default:
		return 0, fmt.Errorf("models: bad snapshot header: expected %q or %q, got %q",
			snapshotMagicV1, snapshotMagic, magic)
	}
	if err := persist.ExpectString(r, string(kind)); err != nil {
		return 0, fmt.Errorf("models: snapshot model kind mismatch: %w", err)
	}
	return version, nil
}

// Snapshot implements Snapshotter.
func (m *MF) Snapshot(w io.Writer) error {
	if err := writeHeader(w, KindMF); err != nil {
		return err
	}
	if err := m.users.(embSnapshotter).Snapshot(w); err != nil {
		return err
	}
	if err := m.items.(embSnapshotter).Snapshot(w); err != nil {
		return err
	}
	if err := m.users.(embSnapshotter).SnapshotMoments(w); err != nil {
		return err
	}
	return m.items.(embSnapshotter).SnapshotMoments(w)
}

// Restore implements Snapshotter.
func (m *MF) Restore(r io.Reader) error {
	version, err := readHeader(r, KindMF)
	if err != nil {
		return err
	}
	if err := m.users.(embSnapshotter).Restore(r); err != nil {
		return err
	}
	if err := m.items.(embSnapshotter).Restore(r); err != nil {
		return err
	}
	if version < 2 {
		return nil
	}
	if err := m.users.(embSnapshotter).RestoreMoments(r); err != nil {
		return err
	}
	return m.items.(embSnapshotter).RestoreMoments(r)
}

// Snapshot implements Snapshotter.
func (m *NeuMF) Snapshot(w io.Writer) error {
	if err := writeHeader(w, KindNeuMF); err != nil {
		return err
	}
	if err := m.users.(embSnapshotter).Snapshot(w); err != nil {
		return err
	}
	if err := m.items.(embSnapshotter).Snapshot(w); err != nil {
		return err
	}
	for _, p := range m.params {
		if err := persist.WriteFloat64s(w, p.W.Data); err != nil {
			return err
		}
	}
	if err := m.users.(embSnapshotter).SnapshotMoments(w); err != nil {
		return err
	}
	if err := m.items.(embSnapshotter).SnapshotMoments(w); err != nil {
		return err
	}
	return m.opt.SnapshotState(w, m.params)
}

// Restore implements Snapshotter.
func (m *NeuMF) Restore(r io.Reader) error {
	version, err := readHeader(r, KindNeuMF)
	if err != nil {
		return err
	}
	if err := m.users.(embSnapshotter).Restore(r); err != nil {
		return err
	}
	if err := m.items.(embSnapshotter).Restore(r); err != nil {
		return err
	}
	for _, p := range m.params {
		if err := persist.ReadFloat64sInto(r, p.W.Data); err != nil {
			return err
		}
	}
	if version < 2 {
		return nil
	}
	if err := m.users.(embSnapshotter).RestoreMoments(r); err != nil {
		return err
	}
	if err := m.items.(embSnapshotter).RestoreMoments(r); err != nil {
		return err
	}
	return m.opt.RestoreState(r, m.params)
}

// Snapshot implements Snapshotter.
func (m *LightGCN) Snapshot(w io.Writer) error {
	if err := writeHeader(w, KindLightGCN); err != nil {
		return err
	}
	if err := persist.WriteFloat64s(w, m.e0.W.Data); err != nil {
		return err
	}
	return m.opt.SnapshotState(w, []*nn.Param{m.e0})
}

// Restore implements Snapshotter.
func (m *LightGCN) Restore(r io.Reader) error {
	version, err := readHeader(r, KindLightGCN)
	if err != nil {
		return err
	}
	if err := persist.ReadFloat64sInto(r, m.e0.W.Data); err != nil {
		return err
	}
	m.dirty = true
	if version < 2 {
		return nil
	}
	return m.opt.RestoreState(r, []*nn.Param{m.e0})
}

// paramList returns NGCF's parameters in the canonical serialization order:
// E⁰, then W1 and W2 per layer.
func (m *NGCF) paramList() []*nn.Param {
	params := []*nn.Param{m.e0}
	for l := range m.w1 {
		params = append(params, m.w1[l], m.w2[l])
	}
	return params
}

// Snapshot implements Snapshotter.
func (m *NGCF) Snapshot(w io.Writer) error {
	if err := writeHeader(w, KindNGCF); err != nil {
		return err
	}
	if err := persist.WriteFloat64s(w, m.e0.W.Data); err != nil {
		return err
	}
	for l := range m.w1 {
		if err := persist.WriteFloat64s(w, m.w1[l].W.Data); err != nil {
			return err
		}
		if err := persist.WriteFloat64s(w, m.w2[l].W.Data); err != nil {
			return err
		}
	}
	return m.opt.SnapshotState(w, m.paramList())
}

// Restore implements Snapshotter.
func (m *NGCF) Restore(r io.Reader) error {
	version, err := readHeader(r, KindNGCF)
	if err != nil {
		return err
	}
	if err := persist.ReadFloat64sInto(r, m.e0.W.Data); err != nil {
		return err
	}
	for l := range m.w1 {
		if err := persist.ReadFloat64sInto(r, m.w1[l].W.Data); err != nil {
			return err
		}
		if err := persist.ReadFloat64sInto(r, m.w2[l].W.Data); err != nil {
			return err
		}
	}
	m.dirty = true
	if version < 2 {
		return nil
	}
	return m.opt.RestoreState(r, m.paramList())
}
