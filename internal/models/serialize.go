package models

import (
	"fmt"
	"io"

	"ptffedrec/internal/persist"
)

// snapshotMagic versions the checkpoint format.
const snapshotMagic = "PTFREC-MODEL-V1"

// Snapshotter is implemented by models that can persist their parameters.
// Snapshots carry weights only — optimizer state (Adam moments) restarts on
// the next update, which matches how inference checkpoints are used.
type Snapshotter interface {
	// Snapshot writes the model's parameters to w.
	Snapshot(w io.Writer) error
	// Restore loads parameters previously written by Snapshot into this
	// model. The model must have been constructed with the same Config.
	Restore(r io.Reader) error
}

// embSnapshotter is satisfied by both emb.Table and emb.LazyTable.
type embSnapshotter interface {
	Snapshot(w io.Writer) error
	Restore(r io.Reader) error
}

func writeHeader(w io.Writer, kind Kind) error {
	if err := persist.WriteString(w, snapshotMagic); err != nil {
		return err
	}
	return persist.WriteString(w, string(kind))
}

func readHeader(r io.Reader, kind Kind) error {
	if err := persist.ExpectString(r, snapshotMagic); err != nil {
		return fmt.Errorf("models: bad snapshot header: %w", err)
	}
	if err := persist.ExpectString(r, string(kind)); err != nil {
		return fmt.Errorf("models: snapshot model kind mismatch: %w", err)
	}
	return nil
}

// Snapshot implements Snapshotter.
func (m *MF) Snapshot(w io.Writer) error {
	if err := writeHeader(w, KindMF); err != nil {
		return err
	}
	if err := m.users.(embSnapshotter).Snapshot(w); err != nil {
		return err
	}
	return m.items.(embSnapshotter).Snapshot(w)
}

// Restore implements Snapshotter.
func (m *MF) Restore(r io.Reader) error {
	if err := readHeader(r, KindMF); err != nil {
		return err
	}
	if err := m.users.(embSnapshotter).Restore(r); err != nil {
		return err
	}
	return m.items.(embSnapshotter).Restore(r)
}

// Snapshot implements Snapshotter.
func (m *NeuMF) Snapshot(w io.Writer) error {
	if err := writeHeader(w, KindNeuMF); err != nil {
		return err
	}
	if err := m.users.(embSnapshotter).Snapshot(w); err != nil {
		return err
	}
	if err := m.items.(embSnapshotter).Snapshot(w); err != nil {
		return err
	}
	for _, p := range m.params {
		if err := persist.WriteFloat64s(w, p.W.Data); err != nil {
			return err
		}
	}
	return nil
}

// Restore implements Snapshotter.
func (m *NeuMF) Restore(r io.Reader) error {
	if err := readHeader(r, KindNeuMF); err != nil {
		return err
	}
	if err := m.users.(embSnapshotter).Restore(r); err != nil {
		return err
	}
	if err := m.items.(embSnapshotter).Restore(r); err != nil {
		return err
	}
	for _, p := range m.params {
		if err := persist.ReadFloat64sInto(r, p.W.Data); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot implements Snapshotter.
func (m *LightGCN) Snapshot(w io.Writer) error {
	if err := writeHeader(w, KindLightGCN); err != nil {
		return err
	}
	return persist.WriteFloat64s(w, m.e0.W.Data)
}

// Restore implements Snapshotter.
func (m *LightGCN) Restore(r io.Reader) error {
	if err := readHeader(r, KindLightGCN); err != nil {
		return err
	}
	if err := persist.ReadFloat64sInto(r, m.e0.W.Data); err != nil {
		return err
	}
	m.dirty = true
	return nil
}

// Snapshot implements Snapshotter.
func (m *NGCF) Snapshot(w io.Writer) error {
	if err := writeHeader(w, KindNGCF); err != nil {
		return err
	}
	if err := persist.WriteFloat64s(w, m.e0.W.Data); err != nil {
		return err
	}
	for l := range m.w1 {
		if err := persist.WriteFloat64s(w, m.w1[l].W.Data); err != nil {
			return err
		}
		if err := persist.WriteFloat64s(w, m.w2[l].W.Data); err != nil {
			return err
		}
	}
	return nil
}

// Restore implements Snapshotter.
func (m *NGCF) Restore(r io.Reader) error {
	if err := readHeader(r, KindNGCF); err != nil {
		return err
	}
	if err := persist.ReadFloat64sInto(r, m.e0.W.Data); err != nil {
		return err
	}
	for l := range m.w1 {
		if err := persist.ReadFloat64sInto(r, m.w1[l].W.Data); err != nil {
			return err
		}
		if err := persist.ReadFloat64sInto(r, m.w2[l].W.Data); err != nil {
			return err
		}
	}
	m.dirty = true
	return nil
}
