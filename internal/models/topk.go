package models

import "ptffedrec/internal/metrics"

// scoreBlockTopKChunk is how many scores ScoreBlockTopK materialises at a
// time. Large enough that the per-chunk kernel dispatch is amortised (and a
// multiple of NeuMF's internal 256-item forward chunks), small enough that a
// full-catalogue selection stays in cache instead of writing a NumItems-length
// score vector. A var so tests can shrink it to force multi-chunk selections
// on small candidate lists.
var scoreBlockTopKChunk = 1024

// TopKScratch carries ScoreBlockTopK's reusable state — the streaming
// selector, the chunk score buffer, and the output slice — so a caller that
// keeps one scratch per worker runs selections allocation-free.
type TopKScratch struct {
	sel    metrics.TopKSelector
	scores []float64
	out    []int
}

// ScoreBlockTopK fuses top-k selection into the batched scoring engine: it
// scores items for user u through bs in fixed-size chunks, streaming each
// chunk's scores into a bounded-heap selector, and returns the indices into
// items of the k highest scores ordered (score desc, index asc). The result
// is bitwise-identical to filling a full len(items) score vector with
// ScoreBlockInto and running metrics.TopKInto — ScoreBlockInto's contract
// makes every chunk's scores independent of how the list is sliced — but only
// scoreBlockTopKChunk scores ever exist at once.
//
// This is the single-user probability-domain engine: it scores through
// ScoreBlockInto (σ applied to every candidate) and selects with the
// probability-domain TopKSelector. The multi-user evaluator batches users
// through ScoreUsersBlockLogitsInto and selects raw logits with
// metrics.LogitTopKSelector instead — same output, fewer sigmoids — and keeps
// this engine as its bitwise reference and timing baseline.
//
// The returned slice is backed by sc and valid until the next call with the
// same scratch.
func ScoreBlockTopK(bs BlockScorer, sc *TopKScratch, u int, items []int, k int) []int {
	if k > len(items) {
		k = len(items)
	}
	if k <= 0 {
		sc.out = sc.out[:0]
		return sc.out
	}
	chunk := scoreBlockTopKChunk
	if chunk > len(items) {
		chunk = len(items)
	}
	if cap(sc.scores) < chunk {
		sc.scores = make([]float64, chunk)
	}
	sc.sel.Reset(k)
	for off := 0; off < len(items); off += chunk {
		end := off + chunk
		if end > len(items) {
			end = len(items)
		}
		buf := sc.scores[:end-off]
		bs.ScoreBlockInto(buf, u, items[off:end])
		sc.sel.PushRow(off, buf)
	}
	sc.out = sc.sel.Into(sc.out)
	return sc.out
}
