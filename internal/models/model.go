// Package models implements the recommendation models used in the paper:
// NeuMF (matrix-factorization family, Eq. 1), NGCF and LightGCN (graph
// family, Eq. 2), plus the plain MF used inside the FCF/FedMF baselines.
//
// All gradients are derived by hand and verified against finite differences
// in the package tests. Every model trains with pointwise binary
// cross-entropy on (user, item, label) triples where the label may be soft —
// that is exactly the client loss (Eq. 3) and server loss (Eq. 5) of
// PTF-FedRec.
package models

import (
	"fmt"

	"ptffedrec/internal/graph"
	"ptffedrec/internal/nn"
	"ptffedrec/internal/rng"
)

// Sample is one training triple. Label is in [0,1]: hard 0/1 for a client's
// own interactions, soft for knowledge received through the protocol.
type Sample struct {
	User, Item int
	Label      float64
}

// Recommender is the model contract the federated and centralized trainers
// share.
type Recommender interface {
	// Name identifies the model family (for reports).
	Name() string
	// TrainBatch runs forward/backward/update on one batch and returns the
	// batch's mean BCE loss.
	TrainBatch(batch []Sample) float64
	// Score returns σ(logit) for a single user–item pair.
	Score(u, v int) float64
	// ScoreItems scores one user against a list of items.
	ScoreItems(u int, items []int) []float64
	// NumParams returns the number of scalar parameters (for the
	// communication-cost comparisons of Table IV).
	NumParams() int
}

// GraphRecommender is implemented by the models that propagate over the
// user–item graph; the graph can be replaced between rounds (the PTF-FedRec
// server rebuilds it from uploads every round).
type GraphRecommender interface {
	Recommender
	SetGraph(g *graph.Bipartite)
}

// GraphDeltaRecommender is implemented by graph models that can take their
// propagation operators directly from an incrementally-maintained adjacency
// engine instead of rebuilding them from triplets. The assembled operators
// are bitwise-identical to SetGraph on the equivalent Bipartite (the engine's
// contract), so a model may alternate freely between the two entry points;
// the federated server prefers this one unless Config.FullGraphRebuild. The
// model's operator buffers are reused across calls — the engine copies into
// them, it does not retain them.
type GraphDeltaRecommender interface {
	GraphRecommender
	SetGraphIncremental(inc *graph.Incremental)
}

// Scorer is the minimal scoring capability — one user against a list of
// candidate items — and the root of the scoring interface family consumed by
// the evaluator and the dispersal engine (InplaceScorer, BlockScorer, and
// MultiBlockScorer refine it). Recommender satisfies it; federated clients
// adapt it to their local user index via ScorerFunc.
//
// A Scorer handed to a parallel consumer must tolerate concurrent ScoreItems
// calls for distinct users (no consumer scores the same user from two
// goroutines). Scorers whose first call lazily builds shared state should
// implement Warmer.
type Scorer interface {
	ScoreItems(u int, items []int) []float64
}

// ScorerFunc adapts a function to the Scorer interface.
type ScorerFunc func(u int, items []int) []float64

// ScoreItems implements Scorer.
func (f ScorerFunc) ScoreItems(u int, items []int) []float64 { return f(u, items) }

// Warmer is an optional Scorer extension. WarmScoring precomputes any lazily
// cached shared state (e.g. a graph model's propagated embeddings) so that
// subsequent scoring calls are read-only and safe to issue concurrently.
// Parallel consumers invoke it once before fanning out to workers.
type Warmer interface {
	WarmScoring()
}

// InplaceScorer is implemented by models whose batch scoring can reuse a
// caller-provided buffer. ScoreItemsInto returns a slice of len(items) backed
// by dst when dst has the capacity, avoiding a per-call allocation on the
// evaluation and dispersal hot paths. All models in this package implement it.
type InplaceScorer interface {
	ScoreItemsInto(dst []float64, u int, items []int) []float64
}

// BlockScorer is the batched scoring engine's contract, implemented by every
// model in this package. Both methods fill dst — which must have length
// len(items) — with user u's value for each candidate item, scoring the whole
// block through matrix kernels: MF and the graph models run one fused
// row-gather GEMV against the (propagated) item-embedding matrix, and NeuMF
// batches its MLP forward over fixed-size candidate chunks through a pooled
// workspace.
//
// Sigmoid placement is an explicit part of the contract, not an
// implementation detail of each model: ScoreBlockLogitsInto produces the raw
// pre-sigmoid logits, and ScoreBlockInto is exactly those logits passed
// element-wise through σ (nn.Sigmoid) at the call boundary. Selection
// consumers use the logit entry point and rank under
// metrics.LogitTopKSelector's tie-safe contract — σ is monotone, so order is
// preserved, but float rounding can collapse distinct logits to equal
// probabilities, which the selector resolves exactly — paying σ only for the
// candidates that reach the heap instead of once per item scored.
//
// The contract is strict: for any dst/items, ScoreBlockInto produces scores
// bitwise-identical to the per-item ScoreItemsInto path, so evaluation
// metrics, dispersal plans, and training histories do not depend on which
// path a caller takes. Like ScoreItems, concurrent calls for distinct users
// are safe once lazily built shared state is warm (Warmer) and the model's
// tables are dense; Lazy models materialise rows on read and must be scored
// from one goroutine.
type BlockScorer interface {
	ScoreBlockInto(dst []float64, u int, items []int)
	ScoreBlockLogitsInto(dst []float64, u int, items []int)
}

// scoreBuf returns a zero-length slice with capacity for n scores, reusing
// dst's storage when possible.
func scoreBuf(dst []float64, n int) []float64 {
	if cap(dst) < n {
		return make([]float64, 0, n)
	}
	return dst[:0]
}

// checkBlock validates a ScoreBlockInto destination.
func checkBlock(dst []float64, items []int) {
	if len(dst) != len(items) {
		panic(fmt.Sprintf("models: ScoreBlockInto dst[%d] for %d items", len(dst), len(items)))
	}
}

// sigmoidVec replaces each logit in dst with σ(logit).
func sigmoidVec(dst []float64) {
	for i, v := range dst {
		dst[i] = nn.Sigmoid(v)
	}
}

// Kind selects a model family.
type Kind string

// The model kinds evaluated in the paper.
const (
	KindMF       Kind = "mf"
	KindNeuMF    Kind = "neumf"
	KindNGCF     Kind = "ngcf"
	KindLightGCN Kind = "lightgcn"
)

// ParseKind converts a string (CLI flag) to a Kind.
func ParseKind(s string) (Kind, error) {
	switch Kind(s) {
	case KindMF, KindNeuMF, KindNGCF, KindLightGCN:
		return Kind(s), nil
	}
	return "", fmt.Errorf("models: unknown kind %q", s)
}

// Config carries the hyper-parameters shared by all models. The defaults
// mirror §IV-D of the paper.
type Config struct {
	NumUsers, NumItems int
	Dim                int     // embedding dimension (paper: 32)
	LR                 float64 // Adam learning rate (paper: 1e-3)
	Layers             int     // propagation layers for GNNs / MLP depth marker (paper: 3)
	Lazy               bool    // lazy embedding tables (client-side models)

	// TrainWorkers bounds TrainBatch's intra-batch parallelism: the batch is
	// sharded into fixed-size gradient chunks computed on this many workers
	// and merged in chunk order, so seeded training is bitwise-identical for
	// every value. <= 1 (and any Lazy model) trains serially.
	TrainWorkers int

	Seed uint64
}

// DefaultConfig returns the paper's hyper-parameters for the given universe.
func DefaultConfig(numUsers, numItems int) Config {
	return Config{
		NumUsers: numUsers,
		NumItems: numItems,
		Dim:      32,
		LR:       1e-3,
		Layers:   3,
		Seed:     1,
	}
}

// New constructs a model of the requested kind. Graph models start with an
// empty graph; call SetGraph before training.
func New(kind Kind, cfg Config) (Recommender, error) {
	if cfg.NumUsers <= 0 || cfg.NumItems <= 0 {
		return nil, fmt.Errorf("models: universe %dx%d invalid", cfg.NumUsers, cfg.NumItems)
	}
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("models: dim %d invalid", cfg.Dim)
	}
	s := rng.New(cfg.Seed).Derive("model:" + string(kind))
	switch kind {
	case KindMF:
		return NewMF(cfg, s), nil
	case KindNeuMF:
		return NewNeuMF(cfg, s), nil
	case KindNGCF:
		return NewNGCF(cfg, s), nil
	case KindLightGCN:
		return NewLightGCN(cfg, s), nil
	}
	return nil, fmt.Errorf("models: unknown kind %q", kind)
}

// embTable abstracts the dense vs lazy embedding storage from internal/emb.
type embTable interface {
	Row(i int) []float64
	Accumulate(i int, g []float64)
	Step()
}
