package models

import (
	"ptffedrec/internal/graph"
	"ptffedrec/internal/nn"
	"ptffedrec/internal/rng"
	"ptffedrec/internal/tensor"
)

// ngcfAlpha is NGCF's LeakyReLU slope.
const ngcfAlpha = 0.2

// NGCF implements Wang et al. (2019). Layer l computes, in matrix form,
//
//	E_l = LeakyReLU( (Â+I)·E_{l-1}·W1_l + (Â·E_{l-1} ⊙ E_{l-1})·W2_l )
//
// where ⊙ is the row-wise Hadamard interaction term, and the readout
// concatenates all layers: r̂ᵤᵥ = σ( Σ_l eᵤ^l · eᵥ^l ). Message dropout is
// omitted (the paper trains small models for few epochs; see DESIGN.md).
type NGCF struct {
	cfg Config
	e0  *nn.Param
	w1  []*nn.Param // per layer, d×d
	w2  []*nn.Param
	opt *nn.Adam

	adj, adjSelf *tensor.CSR

	// propagation caches reused by scoring and backward
	outs  []*tensor.Matrix // E_0..E_L (post-activation)
	zs    []*tensor.Matrix // Z_1..Z_L (pre-activation)
	ps    []*tensor.Matrix // P_l = (Â+I)E_{l-1}
	qs    []*tensor.Matrix // Q_l = Â E_{l-1}
	hs    []*tensor.Matrix // H_l = Q_l ⊙ E_{l-1}
	dirty bool
}

// NewNGCF builds the model over an initially empty graph (call SetGraph).
func NewNGCF(cfg Config, s *rng.Stream) *NGCF {
	n := cfg.NumUsers + cfg.NumItems
	m := &NGCF{cfg: cfg, e0: nn.NewParam("ngcf.E0", n, cfg.Dim), opt: nn.NewAdam(cfg.LR), dirty: true}
	nn.Normal(s.Derive("e0"), m.e0.W, 0.1)
	for l := 0; l < cfg.Layers; l++ {
		w1 := nn.NewParam("ngcf.W1", cfg.Dim, cfg.Dim)
		w2 := nn.NewParam("ngcf.W2", cfg.Dim, cfg.Dim)
		nn.Xavier(s.DeriveN("w1", l), w1.W, cfg.Dim, cfg.Dim)
		nn.Xavier(s.DeriveN("w2", l), w2.W, cfg.Dim, cfg.Dim)
		m.w1 = append(m.w1, w1)
		m.w2 = append(m.w2, w2)
	}
	m.SetGraph(graph.NewBipartite(cfg.NumUsers, cfg.NumItems))
	return m
}

// Name implements Recommender.
func (m *NGCF) Name() string { return string(KindNGCF) }

// NumParams implements Recommender.
func (m *NGCF) NumParams() int {
	n := m.e0.NumValues()
	for _, p := range m.w1 {
		n += p.NumValues()
	}
	for _, p := range m.w2 {
		n += p.NumValues()
	}
	return n
}

// SetGraph implements GraphRecommender.
func (m *NGCF) SetGraph(g *graph.Bipartite) {
	if g.NumUsers != m.cfg.NumUsers || g.NumItems != m.cfg.NumItems {
		panic("models: NGCF graph universe mismatch")
	}
	m.adj = g.NormalizedAdj()
	m.adjSelf = g.NormalizedAdjSelf()
	m.dirty = true
}

// propagate fills the layer caches if stale.
func (m *NGCF) propagate() {
	if !m.dirty && m.outs != nil {
		return
	}
	e := m.e0.W
	m.outs = []*tensor.Matrix{e}
	m.zs, m.ps, m.qs, m.hs = nil, nil, nil, nil
	for l := 0; l < m.cfg.Layers; l++ {
		p := m.adjSelf.MulDense(e)
		q := m.adj.MulDense(e)
		h := tensor.Hadamard(q, e)
		z := tensor.MatMul(p, m.w1[l].W)
		z.AddInPlace(tensor.MatMul(h, m.w2[l].W))
		e = nn.LeakyReLU(z, ngcfAlpha)
		m.ps = append(m.ps, p)
		m.qs = append(m.qs, q)
		m.hs = append(m.hs, h)
		m.zs = append(m.zs, z)
		m.outs = append(m.outs, e)
	}
	m.dirty = false
}

// WarmScoring implements eval.Warmer: it forces the propagation caches so
// concurrent ScoreItems calls are pure reads.
func (m *NGCF) WarmScoring() { m.propagate() }

func (m *NGCF) itemNode(v int) int { return m.cfg.NumUsers + v }

// readoutScale averages the per-layer dot products instead of summing the
// concatenated readout. The two are equivalent up to a logit temperature;
// averaging keeps NGCF's logits on the same scale as LightGCN's, which
// matters when training against soft labels near 0.5.
func (m *NGCF) readoutScale() float64 { return 1 / float64(len(m.outs)) }

// scoreNodes computes the layer-averaged dot-product readout.
func (m *NGCF) scoreNodes(un, vn int) float64 {
	var s float64
	for _, e := range m.outs {
		s += dot(e.Row(un), e.Row(vn))
	}
	return nn.Sigmoid(s * m.readoutScale())
}

// Score implements Recommender.
func (m *NGCF) Score(u, v int) float64 {
	m.propagate()
	return m.scoreNodes(u, m.itemNode(v))
}

// ScoreItems implements Recommender.
func (m *NGCF) ScoreItems(u int, items []int) []float64 {
	m.propagate()
	out := make([]float64, len(items))
	for i, v := range items {
		out[i] = m.scoreNodes(u, m.itemNode(v))
	}
	return out
}

// TrainBatch implements Recommender.
func (m *NGCF) TrainBatch(batch []Sample) float64 {
	if len(batch) == 0 {
		return 0
	}
	loss := m.accumulateGrad(batch)
	params := []*nn.Param{m.e0}
	params = append(params, m.w1...)
	params = append(params, m.w2...)
	m.opt.Step(params)
	m.dirty = true
	return loss
}

// accumulateGrad computes the batch loss and adds all parameter gradients
// without stepping the optimizer.
func (m *NGCF) accumulateGrad(batch []Sample) float64 {
	m.propagate()
	preds := make([]float64, len(batch))
	targets := make([]float64, len(batch))
	for i, smp := range batch {
		preds[i] = m.scoreNodes(smp.User, m.itemNode(smp.Item))
		targets[i] = smp.Label
	}
	loss := nn.BCE(preds, targets)
	grads := nn.BCELogitGrad(preds, targets)

	// dL/dE_l for every layer from the concatenated dot-product readout.
	n := m.cfg.NumUsers + m.cfg.NumItems
	dOuts := make([]*tensor.Matrix, m.cfg.Layers+1)
	for l := range dOuts {
		dOuts[l] = tensor.New(n, m.cfg.Dim)
	}
	scale := m.readoutScale()
	for i, smp := range batch {
		g := grads[i] * scale
		vn := m.itemNode(smp.Item)
		for l, e := range m.outs {
			tensor.Axpy(g, e.Row(vn), dOuts[l].Row(smp.User))
			tensor.Axpy(g, e.Row(smp.User), dOuts[l].Row(vn))
		}
	}

	// Back through the layers; dOuts[l-1] accumulates the propagated term.
	for l := m.cfg.Layers - 1; l >= 0; l-- {
		dZ := nn.LeakyReLUBackward(m.zs[l], dOuts[l+1], ngcfAlpha)
		m.w1[l].Grad.AddInPlace(tensor.MatMulATB(m.ps[l], dZ))
		m.w2[l].Grad.AddInPlace(tensor.MatMulATB(m.hs[l], dZ))

		dP := tensor.MatMulABT(dZ, m.w1[l].W)
		dH := tensor.MatMulABT(dZ, m.w2[l].W)

		// E_{l-1} enters through three paths:
		//   P  = (Â+I)E      -> (Â+I)ᵀ dP      (operator is symmetric)
		//   H  = Q ⊙ E       -> dH ⊙ Q  directly
		//   Q  = Â E         -> Âᵀ (dH ⊙ E)
		dOuts[l].AddInPlace(m.adjSelf.MulDense(dP))
		dOuts[l].AddInPlace(tensor.Hadamard(dH, m.qs[l]))
		dOuts[l].AddInPlace(m.adj.MulDense(tensor.Hadamard(dH, m.outs[l])))
	}
	m.e0.Grad.AddInPlace(dOuts[0])
	return loss
}
