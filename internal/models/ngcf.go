package models

import (
	"ptffedrec/internal/graph"
	"ptffedrec/internal/nn"
	"ptffedrec/internal/rng"
	"ptffedrec/internal/tensor"
)

// ngcfAlpha is NGCF's LeakyReLU slope.
const ngcfAlpha = 0.2

// NGCF implements Wang et al. (2019). Layer l computes, in matrix form,
//
//	E_l = LeakyReLU( (Â+I)·E_{l-1}·W1_l + (Â·E_{l-1} ⊙ E_{l-1})·W2_l )
//
// where ⊙ is the row-wise Hadamard interaction term, and the readout
// concatenates all layers: r̂ᵤᵥ = σ( Σ_l eᵤ^l · eᵥ^l ). Message dropout is
// omitted (the paper trains small models for few epochs; see DESIGN.md).
type NGCF struct {
	cfg     Config
	workers int
	e0      *nn.Param
	w1      []*nn.Param // per layer, d×d
	w2      []*nn.Param
	opt     *nn.Adam

	adj, adjSelf *tensor.CSR

	// propagation caches reused by scoring and backward
	outs  []*tensor.Matrix // E_0..E_L (post-activation)
	zs    []*tensor.Matrix // Z_1..Z_L (pre-activation)
	ps    []*tensor.Matrix // P_l = (Â+I)E_{l-1}
	qs    []*tensor.Matrix // Q_l = Â E_{l-1}
	hs    []*tensor.Matrix // H_l = Q_l ⊙ E_{l-1}
	dirty bool
}

// NewNGCF builds the model over an initially empty graph (call SetGraph).
func NewNGCF(cfg Config, s *rng.Stream) *NGCF {
	n := cfg.NumUsers + cfg.NumItems
	m := &NGCF{
		cfg:     cfg,
		workers: resolveTrainWorkers(cfg),
		e0:      nn.NewParam("ngcf.E0", n, cfg.Dim),
		opt:     nn.NewAdam(cfg.LR),
		dirty:   true,
	}
	nn.Normal(s.Derive("e0"), m.e0.W, 0.1)
	for l := 0; l < cfg.Layers; l++ {
		w1 := nn.NewParam("ngcf.W1", cfg.Dim, cfg.Dim)
		w2 := nn.NewParam("ngcf.W2", cfg.Dim, cfg.Dim)
		nn.Xavier(s.DeriveN("w1", l), w1.W, cfg.Dim, cfg.Dim)
		nn.Xavier(s.DeriveN("w2", l), w2.W, cfg.Dim, cfg.Dim)
		m.w1 = append(m.w1, w1)
		m.w2 = append(m.w2, w2)
	}
	m.SetGraph(graph.NewBipartite(cfg.NumUsers, cfg.NumItems))
	return m
}

// Name implements Recommender.
func (m *NGCF) Name() string { return string(KindNGCF) }

// NumParams implements Recommender.
func (m *NGCF) NumParams() int {
	n := m.e0.NumValues()
	for _, p := range m.w1 {
		n += p.NumValues()
	}
	for _, p := range m.w2 {
		n += p.NumValues()
	}
	return n
}

// SetGraph implements GraphRecommender.
func (m *NGCF) SetGraph(g *graph.Bipartite) {
	if g.NumUsers != m.cfg.NumUsers || g.NumItems != m.cfg.NumItems {
		panic("models: NGCF graph universe mismatch")
	}
	m.adj = g.NormalizedAdjPar(m.workers)
	m.adjSelf = g.NormalizedAdjSelfPar(m.workers)
	m.dirty = true
}

// SetGraphIncremental implements GraphDeltaRecommender: both propagation
// operators are assembled straight into the model's reused CSR buffers.
func (m *NGCF) SetGraphIncremental(inc *graph.Incremental) {
	if inc.NumUsers() != m.cfg.NumUsers || inc.NumItems() != m.cfg.NumItems {
		panic("models: NGCF graph universe mismatch")
	}
	m.adj = inc.AdjInto(m.adj, m.workers)
	m.adjSelf = inc.AdjSelfInto(m.adjSelf, m.workers)
	m.dirty = true
}

// propagate fills the layer caches if stale. The SpMMs and dense products
// shard over row ranges on the TrainWorkers pool, bitwise-identical for any
// worker count.
func (m *NGCF) propagate() {
	if !m.dirty && m.outs != nil {
		return
	}
	e := m.e0.W
	m.outs = []*tensor.Matrix{e}
	m.zs, m.ps, m.qs, m.hs = nil, nil, nil, nil
	for l := 0; l < m.cfg.Layers; l++ {
		p := m.adjSelf.MulDensePar(e, m.workers)
		q := m.adj.MulDensePar(e, m.workers)
		h := tensor.Hadamard(q, e)
		z := tensor.MatMulPar(p, m.w1[l].W, m.workers)
		z.AddInPlace(tensor.MatMulPar(h, m.w2[l].W, m.workers))
		e = nn.LeakyReLU(z, ngcfAlpha)
		m.ps = append(m.ps, p)
		m.qs = append(m.qs, q)
		m.hs = append(m.hs, h)
		m.zs = append(m.zs, z)
		m.outs = append(m.outs, e)
	}
	m.dirty = false
}

// WarmScoring implements Warmer: it forces the propagation caches so
// concurrent ScoreItems calls are pure reads.
func (m *NGCF) WarmScoring() { m.propagate() }

func (m *NGCF) itemNode(v int) int { return m.cfg.NumUsers + v }

// readoutScale averages the per-layer dot products instead of summing the
// concatenated readout. The two are equivalent up to a logit temperature;
// averaging keeps NGCF's logits on the same scale as LightGCN's, which
// matters when training against soft labels near 0.5.
func (m *NGCF) readoutScale() float64 { return 1 / float64(len(m.outs)) }

// scoreNodes computes the layer-averaged dot-product readout.
func (m *NGCF) scoreNodes(un, vn int) float64 {
	var s float64
	for _, e := range m.outs {
		s += dot(e.Row(un), e.Row(vn))
	}
	return nn.Sigmoid(s * m.readoutScale())
}

// Score implements Recommender.
func (m *NGCF) Score(u, v int) float64 {
	m.propagate()
	return m.scoreNodes(u, m.itemNode(v))
}

// ScoreItems implements Recommender.
func (m *NGCF) ScoreItems(u int, items []int) []float64 {
	return m.ScoreItemsInto(nil, u, items)
}

// ScoreItemsInto implements InplaceScorer.
func (m *NGCF) ScoreItemsInto(dst []float64, u int, items []int) []float64 {
	m.propagate()
	out := scoreBuf(dst, len(items))
	for _, v := range items {
		out = append(out, m.scoreNodes(u, m.itemNode(v)))
	}
	return out
}

// ScoreBlockLogitsInto implements BlockScorer's logit-domain half: one fused
// row-gather GEMV per layer matrix, accumulated in layer order — the same
// left-to-right sum over layers as scoreNodes — then the readout scaling,
// which is part of the logit (the sigmoid's argument), not of the sigmoid.
// Very long candidate lists shard over the TrainWorkers pool.
func (m *NGCF) ScoreBlockLogitsInto(dst []float64, u int, items []int) {
	checkBlock(dst, items)
	m.propagate()
	for l, e := range m.outs {
		if l == 0 {
			tensor.GatherMulVecIntoPar(dst, e, items, m.cfg.NumUsers, e.Row(u), m.workers)
			continue
		}
		tensor.GatherMulVecAddIntoPar(dst, e, items, m.cfg.NumUsers, e.Row(u), m.workers)
	}
	scale := m.readoutScale()
	for i, s := range dst {
		dst[i] = s * scale
	}
}

// ScoreBlockInto implements BlockScorer: the logit kernel with the sigmoid
// applied at this call boundary, per the contract.
func (m *NGCF) ScoreBlockInto(dst []float64, u int, items []int) {
	m.ScoreBlockLogitsInto(dst, u, items)
	sigmoidVec(dst)
}

// ScoreUsersBlockLogitsInto implements MultiBlockScorer's logit-domain half:
// one double-gathered GEMM per layer matrix, accumulated in layer order like
// scoreNodes, then the readout scaling over the whole batch.
func (m *NGCF) ScoreUsersBlockLogitsInto(dst *tensor.Matrix, users []int, items []int) {
	checkUsersBlock(dst, users, items)
	m.propagate()
	for l, e := range m.outs {
		if l == 0 {
			tensor.GatherMulMatInto(dst, e, users, 0, e, items, m.cfg.NumUsers)
			continue
		}
		tensor.GatherMulMatAddInto(dst, e, users, 0, e, items, m.cfg.NumUsers)
	}
	scale := m.readoutScale()
	for i, s := range dst.Data {
		dst.Data[i] = s * scale
	}
}

// ScoreUsersBlockInto implements MultiBlockScorer: the logit kernel with the
// sigmoid applied at this call boundary, per the contract.
func (m *NGCF) ScoreUsersBlockInto(dst *tensor.Matrix, users []int, items []int) {
	m.ScoreUsersBlockLogitsInto(dst, users, items)
	sigmoidData(dst)
}

// ScorePairsInto implements MultiBlockScorer's ragged half: one gathered
// pair-dot pass per layer matrix, accumulated in layer order like
// scoreNodes, then the scaled averaged-readout sigmoid.
func (m *NGCF) ScorePairsInto(dst []float64, users []int, items []int) {
	checkPairs(dst, users, items)
	m.propagate()
	for l, e := range m.outs {
		if l == 0 {
			tensor.GatherPairDotInto(dst, e, users, 0, e, items, m.cfg.NumUsers)
			continue
		}
		tensor.GatherPairDotAddInto(dst, e, users, 0, e, items, m.cfg.NumUsers)
	}
	scale := m.readoutScale()
	for i, s := range dst {
		dst[i] = nn.Sigmoid(s * scale)
	}
}

// TrainBatch implements Recommender.
func (m *NGCF) TrainBatch(batch []Sample) float64 {
	if len(batch) == 0 {
		return 0
	}
	loss := m.accumulateGrad(batch)
	params := []*nn.Param{m.e0}
	params = append(params, m.w1...)
	params = append(params, m.w2...)
	m.opt.Step(params)
	m.dirty = true
	return loss
}

// ngcfChunk is one gradient shard's workspace: the shard's loss sum plus its
// sparse contribution to dL/dE_l for every layer.
type ngcfChunk struct {
	lossSum float64
	dOuts   []*rowAccum
}

// accumulateGrad computes the batch loss and adds all parameter gradients
// without stepping the optimizer. The per-sample readout pass shards into
// fixed chunks merged in chunk order; the layer backward shards its matrix
// products over row ranges (and its ᵀ·-reductions over fixed row shards).
func (m *NGCF) accumulateGrad(batch []Sample) float64 {
	m.propagate()
	n := len(batch)
	scale := m.readoutScale()
	chunks := make([]ngcfChunk, trainChunks(n))
	forChunks(n, m.workers, func(c, lo, hi int) {
		ws := ngcfChunk{dOuts: make([]*rowAccum, m.cfg.Layers+1)}
		for l := range ws.dOuts {
			ws.dOuts[l] = newRowAccum(m.cfg.Dim)
		}
		for _, smp := range batch[lo:hi] {
			un, vn := smp.User, m.itemNode(smp.Item)
			pred := m.scoreNodes(un, vn)
			ws.lossSum += nn.BCEOne(pred, smp.Label)
			g := (pred - smp.Label) / float64(n) * scale
			for l, e := range m.outs {
				ws.dOuts[l].axpy(un, g, e.Row(vn))
				ws.dOuts[l].axpy(vn, g, e.Row(un))
			}
		}
		chunks[c] = ws
	})

	// dL/dE_l for every layer from the concatenated dot-product readout,
	// merged in chunk order.
	nNodes := m.cfg.NumUsers + m.cfg.NumItems
	dOuts := make([]*tensor.Matrix, m.cfg.Layers+1)
	for l := range dOuts {
		dOuts[l] = tensor.New(nNodes, m.cfg.Dim)
	}
	var lossSum float64
	for _, ws := range chunks {
		lossSum += ws.lossSum
		for l, acc := range ws.dOuts {
			acc.mergeIntoRows(dOuts[l].Row)
		}
	}

	// Back through the layers; dOuts[l-1] accumulates the propagated term.
	for l := m.cfg.Layers - 1; l >= 0; l-- {
		dZ := nn.LeakyReLUBackward(m.zs[l], dOuts[l+1], ngcfAlpha)
		m.w1[l].Grad.AddInPlace(tensor.MatMulATBPar(m.ps[l], dZ, m.workers))
		m.w2[l].Grad.AddInPlace(tensor.MatMulATBPar(m.hs[l], dZ, m.workers))

		dP := tensor.MatMulABTPar(dZ, m.w1[l].W, m.workers)
		dH := tensor.MatMulABTPar(dZ, m.w2[l].W, m.workers)

		// E_{l-1} enters through three paths:
		//   P  = (Â+I)E      -> (Â+I)ᵀ dP      (operator is symmetric)
		//   H  = Q ⊙ E       -> dH ⊙ Q  directly
		//   Q  = Â E         -> Âᵀ (dH ⊙ E)
		dOuts[l].AddInPlace(m.adjSelf.MulDensePar(dP, m.workers))
		dOuts[l].AddInPlace(tensor.Hadamard(dH, m.qs[l]))
		dOuts[l].AddInPlace(m.adj.MulDensePar(tensor.Hadamard(dH, m.outs[l]), m.workers))
	}
	m.e0.Grad.AddInPlace(dOuts[0])
	return lossSum / float64(n)
}
