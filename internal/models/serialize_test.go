package models

import (
	"bytes"
	"math"
	"testing"

	"ptffedrec/internal/emb"
	"ptffedrec/internal/persist"
)

// trainedModel builds a model of the given kind, trains it briefly, and
// returns it.
func trainedModel(t *testing.T, kind Kind, seed uint64) Recommender {
	t.Helper()
	cfg := smallConfig()
	cfg.Seed = seed
	m, err := New(kind, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if gm, ok := m.(GraphRecommender); ok {
		gm.SetGraph(smallGraph(cfg))
	}
	for i := 0; i < 20; i++ {
		m.TrainBatch(smallBatch())
	}
	return m
}

func TestSnapshotRestoreAllModels(t *testing.T) {
	for _, kind := range []Kind{KindMF, KindNeuMF, KindNGCF, KindLightGCN} {
		src := trainedModel(t, kind, 1)
		var buf bytes.Buffer
		if err := src.(Snapshotter).Snapshot(&buf); err != nil {
			t.Fatalf("%s snapshot: %v", kind, err)
		}

		// Restore into a model built from a different seed: all scores must
		// match the source exactly afterwards.
		dst := trainedModel(t, kind, 99)
		if gm, ok := dst.(GraphRecommender); ok {
			gm.SetGraph(smallGraph(smallConfig()))
		}
		if err := dst.(Snapshotter).Restore(&buf); err != nil {
			t.Fatalf("%s restore: %v", kind, err)
		}
		for u := 0; u < 4; u++ {
			for v := 0; v < 6; v++ {
				a, b := src.Score(u, v), dst.Score(u, v)
				if math.Abs(a-b) > 1e-12 {
					t.Fatalf("%s: score(%d,%d) %v != %v after restore", kind, u, v, a, b)
				}
			}
		}
	}
}

func TestRestoreRejectsWrongKind(t *testing.T) {
	src := trainedModel(t, KindMF, 1)
	var buf bytes.Buffer
	if err := src.(Snapshotter).Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst := trainedModel(t, KindNeuMF, 2)
	if err := dst.(Snapshotter).Restore(&buf); err == nil {
		t.Fatal("NeuMF restored an MF snapshot")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	dst := trainedModel(t, KindLightGCN, 3)
	if err := dst.(Snapshotter).Restore(bytes.NewBufferString("not a snapshot")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestRestoreRejectsTruncated(t *testing.T) {
	src := trainedModel(t, KindNGCF, 4)
	var buf bytes.Buffer
	if err := src.(Snapshotter).Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := bytes.NewReader(buf.Bytes()[:buf.Len()/2])
	dst := trainedModel(t, KindNGCF, 5)
	if err := dst.(Snapshotter).Restore(trunc); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

func TestLazySnapshotRoundTrip(t *testing.T) {
	cfg := smallConfig()
	cfg.Lazy = true
	a, err := New(KindNeuMF, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		a.TrainBatch(smallBatch())
	}
	var buf bytes.Buffer
	if err := a.(Snapshotter).Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 77
	b, err := New(KindNeuMF, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.(Snapshotter).Restore(&buf); err != nil {
		t.Fatal(err)
	}
	for _, smp := range smallBatch() {
		if math.Abs(a.Score(smp.User, smp.Item)-b.Score(smp.User, smp.Item)) > 1e-12 {
			t.Fatal("lazy snapshot round trip changed scores")
		}
	}
}

// TestCheckpointResumeExact pins the V2 format's reason to exist: training k
// more batches after a restore must be bitwise-identical to never having
// checkpointed, because the Adam moment state travels with the weights.
func TestCheckpointResumeExact(t *testing.T) {
	for _, kind := range []Kind{KindMF, KindNeuMF, KindNGCF, KindLightGCN} {
		cfg := smallConfig()
		a, err := New(kind, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if gm, ok := a.(GraphRecommender); ok {
			gm.SetGraph(smallGraph(cfg))
		}
		for i := 0; i < 7; i++ {
			a.TrainBatch(smallBatch())
		}
		var buf bytes.Buffer
		if err := a.(Snapshotter).Snapshot(&buf); err != nil {
			t.Fatalf("%s snapshot: %v", kind, err)
		}

		b, err := New(kind, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if gm, ok := b.(GraphRecommender); ok {
			gm.SetGraph(smallGraph(cfg))
		}
		if err := b.(Snapshotter).Restore(&buf); err != nil {
			t.Fatalf("%s restore: %v", kind, err)
		}

		for i := 0; i < 7; i++ {
			la := a.TrainBatch(smallBatch())
			lb := b.TrainBatch(smallBatch())
			if la != lb {
				t.Fatalf("%s: post-resume batch %d loss %v != %v", kind, i, la, lb)
			}
		}
		for u := 0; u < smallConfig().NumUsers; u++ {
			for v := 0; v < smallConfig().NumItems; v++ {
				if a.Score(u, v) != b.Score(u, v) {
					t.Fatalf("%s: score(%d,%d) diverged after resume: %v != %v",
						kind, u, v, a.Score(u, v), b.Score(u, v))
				}
			}
		}
	}
}

// TestCheckpointResumeExactLazy is TestCheckpointResumeExact for lazy
// embedding tables (the client-side configuration): per-row moments and step
// counters must survive the round trip, and rows materialised after the
// resume must draw the same init values as the uninterrupted run.
func TestCheckpointResumeExactLazy(t *testing.T) {
	cfg := smallConfig()
	cfg.Lazy = true
	a, err := New(KindNeuMF, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Train on a subset of items so some rows stay unmaterialised at the
	// checkpoint and first materialise after the resume.
	pre := smallBatch()[:3]
	for i := 0; i < 7; i++ {
		a.TrainBatch(pre)
	}
	var buf bytes.Buffer
	if err := a.(Snapshotter).Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := New(KindNeuMF, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.(Snapshotter).Restore(&buf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		la := a.TrainBatch(smallBatch())
		lb := b.TrainBatch(smallBatch())
		if la != lb {
			t.Fatalf("lazy post-resume batch %d loss %v != %v", i, la, lb)
		}
	}
	for _, smp := range smallBatch() {
		if a.Score(smp.User, smp.Item) != b.Score(smp.User, smp.Item) {
			t.Fatal("lazy checkpoint-resume diverged")
		}
	}
}

// TestRestoreReadsV1Snapshots pins backward compatibility: a weights-only V1
// snapshot (the pre-moment format) must still load, restoring weights and
// leaving optimizer state untouched.
func TestRestoreReadsV1Snapshots(t *testing.T) {
	src := trainedModel(t, KindMF, 1).(*MF)
	var buf bytes.Buffer
	// Hand-write the V1 layout: magic, kind, then the two weight blobs.
	if err := persist.WriteString(&buf, snapshotMagicV1); err != nil {
		t.Fatal(err)
	}
	if err := persist.WriteString(&buf, string(KindMF)); err != nil {
		t.Fatal(err)
	}
	if err := persist.WriteFloat64s(&buf, src.users.(*emb.Table).W.Data); err != nil {
		t.Fatal(err)
	}
	if err := persist.WriteFloat64s(&buf, src.items.(*emb.Table).W.Data); err != nil {
		t.Fatal(err)
	}

	dst := trainedModel(t, KindMF, 99)
	if err := dst.(Snapshotter).Restore(&buf); err != nil {
		t.Fatalf("V1 restore: %v", err)
	}
	for u := 0; u < 4; u++ {
		for v := 0; v < 6; v++ {
			if a, b := src.Score(u, v), dst.Score(u, v); a != b {
				t.Fatalf("V1 restore: score(%d,%d) %v != %v", u, v, a, b)
			}
		}
	}
}

func TestAllModelsImplementSnapshotter(t *testing.T) {
	for _, kind := range []Kind{KindMF, KindNeuMF, KindNGCF, KindLightGCN} {
		m, err := New(kind, smallConfig())
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := m.(Snapshotter); !ok {
			t.Fatalf("%s does not implement Snapshotter", kind)
		}
	}
}
