package models

import (
	"bytes"
	"math"
	"testing"
)

// trainedModel builds a model of the given kind, trains it briefly, and
// returns it.
func trainedModel(t *testing.T, kind Kind, seed uint64) Recommender {
	t.Helper()
	cfg := smallConfig()
	cfg.Seed = seed
	m, err := New(kind, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if gm, ok := m.(GraphRecommender); ok {
		gm.SetGraph(smallGraph(cfg))
	}
	for i := 0; i < 20; i++ {
		m.TrainBatch(smallBatch())
	}
	return m
}

func TestSnapshotRestoreAllModels(t *testing.T) {
	for _, kind := range []Kind{KindMF, KindNeuMF, KindNGCF, KindLightGCN} {
		src := trainedModel(t, kind, 1)
		var buf bytes.Buffer
		if err := src.(Snapshotter).Snapshot(&buf); err != nil {
			t.Fatalf("%s snapshot: %v", kind, err)
		}

		// Restore into a model built from a different seed: all scores must
		// match the source exactly afterwards.
		dst := trainedModel(t, kind, 99)
		if gm, ok := dst.(GraphRecommender); ok {
			gm.SetGraph(smallGraph(smallConfig()))
		}
		if err := dst.(Snapshotter).Restore(&buf); err != nil {
			t.Fatalf("%s restore: %v", kind, err)
		}
		for u := 0; u < 4; u++ {
			for v := 0; v < 6; v++ {
				a, b := src.Score(u, v), dst.Score(u, v)
				if math.Abs(a-b) > 1e-12 {
					t.Fatalf("%s: score(%d,%d) %v != %v after restore", kind, u, v, a, b)
				}
			}
		}
	}
}

func TestRestoreRejectsWrongKind(t *testing.T) {
	src := trainedModel(t, KindMF, 1)
	var buf bytes.Buffer
	if err := src.(Snapshotter).Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst := trainedModel(t, KindNeuMF, 2)
	if err := dst.(Snapshotter).Restore(&buf); err == nil {
		t.Fatal("NeuMF restored an MF snapshot")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	dst := trainedModel(t, KindLightGCN, 3)
	if err := dst.(Snapshotter).Restore(bytes.NewBufferString("not a snapshot")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestRestoreRejectsTruncated(t *testing.T) {
	src := trainedModel(t, KindNGCF, 4)
	var buf bytes.Buffer
	if err := src.(Snapshotter).Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := bytes.NewReader(buf.Bytes()[:buf.Len()/2])
	dst := trainedModel(t, KindNGCF, 5)
	if err := dst.(Snapshotter).Restore(trunc); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

func TestLazySnapshotRoundTrip(t *testing.T) {
	cfg := smallConfig()
	cfg.Lazy = true
	a, err := New(KindNeuMF, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		a.TrainBatch(smallBatch())
	}
	var buf bytes.Buffer
	if err := a.(Snapshotter).Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 77
	b, err := New(KindNeuMF, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.(Snapshotter).Restore(&buf); err != nil {
		t.Fatal(err)
	}
	for _, smp := range smallBatch() {
		if math.Abs(a.Score(smp.User, smp.Item)-b.Score(smp.User, smp.Item)) > 1e-12 {
			t.Fatal("lazy snapshot round trip changed scores")
		}
	}
}

func TestAllModelsImplementSnapshotter(t *testing.T) {
	for _, kind := range []Kind{KindMF, KindNeuMF, KindNGCF, KindLightGCN} {
		m, err := New(kind, smallConfig())
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := m.(Snapshotter); !ok {
			t.Fatalf("%s does not implement Snapshotter", kind)
		}
	}
}
