package models

import (
	"testing"

	"ptffedrec/internal/graph"
	"ptffedrec/internal/rng"
)

// blockConfig is large enough that NeuMF's batched scoring crosses several
// scoreChunkSize boundaries.
func blockConfig() Config {
	return Config{NumUsers: 5, NumItems: 3*scoreChunkSize + 17, Dim: 4, LR: 0.01, Layers: 2, Seed: 11}
}

// blockGraph wires every user to a spread of items so propagation is
// non-trivial for the graph models.
func blockGraph(cfg Config) *graph.Bipartite {
	g := graph.NewBipartite(cfg.NumUsers, cfg.NumItems)
	s := rng.New(3)
	for u := 0; u < cfg.NumUsers; u++ {
		for k := 0; k < 40; k++ {
			g.AddEdge(u, s.Intn(cfg.NumItems), 1)
		}
	}
	return g
}

// blockModel builds and briefly trains a model of the given kind on the
// block-scoring universe.
func blockModel(t testing.TB, kind Kind, lazy bool) Recommender {
	t.Helper()
	cfg := blockConfig()
	cfg.Lazy = lazy
	m, err := New(kind, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if gm, ok := m.(GraphRecommender); ok {
		gm.SetGraph(blockGraph(cfg))
	}
	s := rng.New(9)
	batch := make([]Sample, 64)
	for i := range batch {
		batch[i] = Sample{
			User:  s.Intn(cfg.NumUsers),
			Item:  s.Intn(cfg.NumItems),
			Label: float64(s.Intn(2)),
		}
	}
	for e := 0; e < 3; e++ {
		m.TrainBatch(batch)
	}
	return m
}

// raggedLists exercises candidate lists of every awkward size: empty, single,
// exactly one chunk, one element either side of a chunk boundary, and the
// full catalogue.
func raggedLists(numItems int) [][]int {
	sizes := []int{0, 1, 2, scoreChunkSize - 1, scoreChunkSize, scoreChunkSize + 1,
		2*scoreChunkSize + 5, numItems}
	s := rng.New(17)
	lists := make([][]int, 0, len(sizes))
	for _, n := range sizes {
		if n > numItems {
			n = numItems
		}
		items := make([]int, n)
		for i := range items {
			items[i] = s.Intn(numItems)
		}
		lists = append(lists, items)
	}
	return lists
}

// TestScoreBlockMatchesScalar pins the batched scoring engine's contract for
// every model kind: ScoreBlockInto must be bitwise-identical to the per-item
// ScoreItemsInto path for any candidate list.
func TestScoreBlockMatchesScalar(t *testing.T) {
	for _, kind := range []Kind{KindMF, KindNeuMF, KindNGCF, KindLightGCN} {
		m := blockModel(t, kind, false)
		bs, ok := m.(BlockScorer)
		if !ok {
			t.Fatalf("%s does not implement BlockScorer", kind)
		}
		is := m.(InplaceScorer)
		for _, items := range raggedLists(blockConfig().NumItems) {
			for u := 0; u < blockConfig().NumUsers; u++ {
				want := is.ScoreItemsInto(nil, u, items)
				got := make([]float64, len(items))
				bs.ScoreBlockInto(got, u, items)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s: u=%d |items|=%d: block score[%d]=%v, scalar=%v",
							kind, u, len(items), i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestScoreBlockLazyFallback pins the lazy-table path: client-style models
// (lazy embedding rows) must produce identical scores through ScoreBlockInto.
func TestScoreBlockLazyFallback(t *testing.T) {
	for _, kind := range []Kind{KindMF, KindNeuMF} {
		m := blockModel(t, kind, true)
		bs := m.(BlockScorer)
		is := m.(InplaceScorer)
		items := raggedLists(blockConfig().NumItems)[6]
		want := is.ScoreItemsInto(nil, 0, items)
		got := make([]float64, len(items))
		bs.ScoreBlockInto(got, 0, items)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s lazy: block score[%d]=%v, scalar=%v", kind, i, got[i], want[i])
			}
		}
	}
}

// TestScoreBlockRejectsBadDst pins the dst-length contract.
func TestScoreBlockRejectsBadDst(t *testing.T) {
	m := blockModel(t, KindMF, false)
	defer func() {
		if recover() == nil {
			t.Fatal("short dst accepted")
		}
	}()
	m.(BlockScorer).ScoreBlockInto(make([]float64, 2), 0, []int{0, 1, 2})
}

// BenchmarkScoring compares the scalar per-item path with the batched
// BlockScorer engine on a full-catalogue candidate list, per model kind.
func BenchmarkScoring(b *testing.B) {
	for _, kind := range []Kind{KindMF, KindNeuMF, KindNGCF, KindLightGCN} {
		m := blockModel(b, kind, false)
		if w, ok := m.(interface{ WarmScoring() }); ok {
			w.WarmScoring()
		}
		items := make([]int, blockConfig().NumItems)
		for i := range items {
			items[i] = i
		}
		dst := make([]float64, len(items))
		b.Run(string(kind)+"/scalar", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dst = m.(InplaceScorer).ScoreItemsInto(dst[:0], i%blockConfig().NumUsers, items)
			}
		})
		b.Run(string(kind)+"/block", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.(BlockScorer).ScoreBlockInto(dst[:len(items)], i%blockConfig().NumUsers, items)
			}
		})
	}
}

// FuzzScoreBlockRagged fuzzes ragged candidate-list shapes (length, item
// skew, user) against the scalar path for the two model families with
// distinct batched implementations: MF's fused GEMV and NeuMF's chunked MLP
// forward.
func FuzzScoreBlockRagged(f *testing.F) {
	f.Add(uint64(1), uint(3), uint(0))
	f.Add(uint64(42), uint(scoreChunkSize), uint(1))
	f.Add(uint64(7), uint(2*scoreChunkSize+3), uint(4))
	mf := blockModel(f, KindMF, false)
	neumf := blockModel(f, KindNeuMF, false)
	numItems := blockConfig().NumItems
	numUsers := blockConfig().NumUsers
	f.Fuzz(func(t *testing.T, seed uint64, n, u uint) {
		if n > uint(2*numItems) {
			n = uint(2 * numItems)
		}
		s := rng.New(seed)
		items := make([]int, n)
		for i := range items {
			items[i] = s.Intn(numItems)
		}
		user := int(u % uint(numUsers))
		for _, m := range []Recommender{mf, neumf} {
			want := m.(InplaceScorer).ScoreItemsInto(nil, user, items)
			got := make([]float64, len(items))
			m.(BlockScorer).ScoreBlockInto(got, user, items)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: score[%d]=%v, scalar=%v", m.Name(), i, got[i], want[i])
				}
			}
		}
	})
}
