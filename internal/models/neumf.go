package models

import (
	"sync"

	"ptffedrec/internal/emb"
	"ptffedrec/internal/nn"
	"ptffedrec/internal/rng"
	"ptffedrec/internal/tensor"
)

// NeuMF is the paper's Eq. 1 model: r̂ᵤᵥ = σ(hᵀ · MLP([pᵤ, qᵥ])) with the
// §IV-D tower sizes (2d → 64 → 32 → 16 → 1) and ReLU activations. It is the
// model the service provider assigns to every client.
type NeuMF struct {
	cfg     Config
	workers int
	users   embTable
	items   embTable
	tower   []*nn.Dense // hidden layers
	out     *nn.Dense   // hᵀ + bias
	opt     *nn.Adam
	params  []*nn.Param

	// scoreWS pools batched-scoring workspaces so concurrent ScoreBlockInto
	// callers (eval workers, the dispersal pool) each borrow a private one
	// instead of allocating per-chunk forward matrices.
	scoreWS sync.Pool
}

// NewNeuMF builds the MLP recommender with the paper's layer sizes.
func NewNeuMF(cfg Config, s *rng.Stream) *NeuMF {
	hy := emb.DefaultAdam(cfg.LR)
	m := &NeuMF{cfg: cfg, workers: resolveTrainWorkers(cfg), opt: nn.NewAdam(cfg.LR)}
	if cfg.Lazy {
		m.users = emb.NewLazyTable(s.Derive("u"), cfg.Dim, hy)
		m.items = emb.NewLazyTable(s.Derive("v"), cfg.Dim, hy)
	} else {
		m.users = emb.NewTable(s.Derive("u"), cfg.NumUsers, cfg.Dim, hy)
		m.items = emb.NewTable(s.Derive("v"), cfg.NumItems, cfg.Dim, hy)
	}
	sizes := []int{2 * cfg.Dim, 64, 32, 16}
	for i := 0; i+1 < len(sizes); i++ {
		m.tower = append(m.tower, nn.NewDense("neumf.l", sizes[i], sizes[i+1], s.DeriveN("dense", i)))
	}
	m.out = nn.NewDense("neumf.out", sizes[len(sizes)-1], 1, s.Derive("out"))
	for _, d := range m.tower {
		m.params = append(m.params, d.Params()...)
	}
	m.params = append(m.params, m.out.Params()...)
	m.scoreWS.New = func() any { return m.newScoreWS() }
	return m
}

// Name implements Recommender.
func (m *NeuMF) Name() string { return string(KindNeuMF) }

// NumParams implements Recommender.
func (m *NeuMF) NumParams() int {
	n := (m.cfg.NumUsers + m.cfg.NumItems) * m.cfg.Dim
	for _, p := range m.params {
		n += p.NumValues()
	}
	return n
}

// denseLayers returns the tower plus the output head, in forward order — the
// layer order the chunk workspaces are laid out in.
func (m *NeuMF) denseLayers() []*nn.Dense {
	return append(append([]*nn.Dense(nil), m.tower...), m.out)
}

// forward runs the tower on a batch, returning every intermediate needed by
// backward: the input, each layer's pre-activation and activation, and the
// final probability per row.
func (m *NeuMF) forward(batch []Sample) (x *tensor.Matrix, zs, as []*tensor.Matrix, preds []float64) {
	x = tensor.New(len(batch), 2*m.cfg.Dim)
	for i, smp := range batch {
		row := x.Row(i)
		copy(row[:m.cfg.Dim], m.users.Row(smp.User))
		copy(row[m.cfg.Dim:], m.items.Row(smp.Item))
	}
	cur := x
	for _, d := range m.tower {
		z := d.Forward(cur)
		a := nn.ReLU(z)
		zs = append(zs, z)
		as = append(as, a)
		cur = a
	}
	logits := m.out.Forward(cur)
	preds = make([]float64, len(batch))
	for i := range preds {
		preds[i] = nn.Sigmoid(logits.At(i, 0))
	}
	return x, zs, as, preds
}

// backward pushes dL/dlogit through the tower, accumulating parameter
// gradients and embedding-row gradients. It does not step the optimizer.
func (m *NeuMF) backward(batch []Sample, x *tensor.Matrix, zs, as []*tensor.Matrix, dlogits []float64) {
	dy := tensor.FromSlice(len(batch), 1, dlogits)
	grad := m.out.Backward(as[len(as)-1], dy)
	for i := len(m.tower) - 1; i >= 0; i-- {
		grad = nn.ReLUBackward(zs[i], grad)
		input := x
		if i > 0 {
			input = as[i-1]
		}
		grad = m.tower[i].Backward(input, grad)
	}
	for i, smp := range batch {
		row := grad.Row(i)
		m.users.Accumulate(smp.User, row[:m.cfg.Dim])
		m.items.Accumulate(smp.Item, row[m.cfg.Dim:])
	}
}

// neumfChunk is one gradient shard's workspace: per-layer parameter
// gradients (aligned with denseLayers) plus embedding-row gradients.
type neumfChunk struct {
	lossSum      float64
	wGrads       []*tensor.Matrix
	bGrads       []*tensor.Matrix
	users, items *rowAccum
}

// TrainBatch implements Recommender. The batch is sharded into fixed chunks:
// each chunk runs its own tower forward/backward into a private workspace
// (the shared weights are read-only until the optimizer step), then the
// workspaces merge in chunk order and a single Adam step applies.
func (m *NeuMF) TrainBatch(batch []Sample) float64 {
	if len(batch) == 0 {
		return 0
	}
	n := len(batch)
	layers := m.denseLayers()
	chunks := make([]neumfChunk, trainChunks(n))
	forChunks(n, m.workers, func(c, lo, hi int) {
		sub := batch[lo:hi]
		x, zs, as, preds := m.forward(sub)
		ws := neumfChunk{
			users: newRowAccum(m.cfg.Dim),
			items: newRowAccum(m.cfg.Dim),
		}
		for _, d := range layers {
			ws.wGrads = append(ws.wGrads, tensor.New(d.In, d.Out))
			ws.bGrads = append(ws.bGrads, tensor.New(1, d.Out))
		}
		dlogits := make([]float64, len(sub))
		for i, smp := range sub {
			ws.lossSum += nn.BCEOne(preds[i], smp.Label)
			dlogits[i] = (preds[i] - smp.Label) / float64(n)
		}
		last := len(layers) - 1
		dy := tensor.FromSlice(len(sub), 1, dlogits)
		grad := m.out.BackwardInto(as[len(as)-1], dy, ws.wGrads[last], ws.bGrads[last])
		for i := len(m.tower) - 1; i >= 0; i-- {
			grad = nn.ReLUBackward(zs[i], grad)
			input := x
			if i > 0 {
				input = as[i-1]
			}
			grad = m.tower[i].BackwardInto(input, grad, ws.wGrads[i], ws.bGrads[i])
		}
		for i, smp := range sub {
			row := grad.Row(i)
			ws.users.add(smp.User, row[:m.cfg.Dim])
			ws.items.add(smp.Item, row[m.cfg.Dim:])
		}
		chunks[c] = ws
	})

	var lossSum float64
	for _, ws := range chunks {
		lossSum += ws.lossSum
		for i, d := range layers {
			d.W.Grad.AddInPlace(ws.wGrads[i])
			d.B.Grad.AddInPlace(ws.bGrads[i])
		}
		ws.users.mergeInto(m.users)
		ws.items.mergeInto(m.items)
	}
	m.opt.Step(m.params)
	m.users.Step()
	m.items.Step()
	return lossSum / float64(n)
}

// Score implements Recommender.
func (m *NeuMF) Score(u, v int) float64 {
	return m.ScoreItems(u, []int{v})[0]
}

// ScoreItems implements Recommender.
func (m *NeuMF) ScoreItems(u int, items []int) []float64 {
	return m.ScoreItemsInto(nil, u, items)
}

// ScoreItemsInto implements InplaceScorer.
func (m *NeuMF) ScoreItemsInto(dst []float64, u int, items []int) []float64 {
	if len(items) == 0 {
		return scoreBuf(dst, 0)
	}
	batch := make([]Sample, len(items))
	for i, v := range items {
		batch[i] = Sample{User: u, Item: v}
	}
	_, _, _, preds := m.forward(batch)
	out := scoreBuf(dst, len(items))
	return append(out, preds...)
}

// scoreChunkSize is the candidate-chunk width of NeuMF's batched scoring: the
// workspace holds one chunk's forward intermediates, so peak memory is
// O(chunk·width) instead of O(|candidates|·width). Each output row of a dense
// forward depends only on its own input row, so chunking never changes the
// scores — the boundaries are a scheduling knob, not a semantic constant.
const scoreChunkSize = 256

// neumfScoreWS holds one candidate chunk's forward intermediates.
type neumfScoreWS struct {
	x      *tensor.Matrix   // scoreChunkSize × 2d inputs
	zs, as []*tensor.Matrix // per tower layer pre-/post-activation
	logits *tensor.Matrix   // scoreChunkSize × 1
}

// newScoreWS allocates a workspace shaped for the model's tower.
func (m *NeuMF) newScoreWS() *neumfScoreWS {
	ws := &neumfScoreWS{
		x:      tensor.New(scoreChunkSize, 2*m.cfg.Dim),
		logits: tensor.New(scoreChunkSize, 1),
	}
	for _, d := range m.tower {
		ws.zs = append(ws.zs, tensor.New(scoreChunkSize, d.Out))
		ws.as = append(ws.as, tensor.New(scoreChunkSize, d.Out))
	}
	return ws
}

// ScoreBlockLogitsInto implements BlockScorer's logit-domain half: candidates
// run through the tower in scoreChunkSize batches over a pooled workspace,
// replacing len(items) single-row forwards (and their per-call allocations)
// with ceil(len(items)/chunk) matrix products, stopping at the output head's
// raw logit.
func (m *NeuMF) ScoreBlockLogitsInto(dst []float64, u int, items []int) {
	checkBlock(dst, items)
	if len(items) == 0 {
		return
	}
	ws := m.scoreWS.Get().(*neumfScoreWS)
	defer m.scoreWS.Put(ws)
	m.scoreBlockLogitsWS(ws, dst, u, items)
}

// ScoreBlockInto implements BlockScorer: the logit forwards with the sigmoid
// applied at this call boundary, per the contract.
func (m *NeuMF) ScoreBlockInto(dst []float64, u int, items []int) {
	m.ScoreBlockLogitsInto(dst, u, items)
	sigmoidVec(dst)
}

// ScoreUsersBlockLogitsInto implements MultiBlockScorer's logit-domain half:
// each user's row runs the pooled chunked tower forwards, borrowing one
// workspace for the whole batch. Every forward row depends only on its own
// (user, item) input row, so the batch grouping never changes a logit.
func (m *NeuMF) ScoreUsersBlockLogitsInto(dst *tensor.Matrix, users []int, items []int) {
	checkUsersBlock(dst, users, items)
	if len(items) == 0 {
		return
	}
	ws := m.scoreWS.Get().(*neumfScoreWS)
	defer m.scoreWS.Put(ws)
	for i, u := range users {
		m.scoreBlockLogitsWS(ws, dst.Row(i), u, items)
	}
}

// ScoreUsersBlockInto implements MultiBlockScorer: the logit forwards with
// the sigmoid applied at this call boundary, per the contract.
func (m *NeuMF) ScoreUsersBlockInto(dst *tensor.Matrix, users []int, items []int) {
	m.ScoreUsersBlockLogitsInto(dst, users, items)
	sigmoidData(dst)
}

// scoreBlockLogitsWS is the chunked-forward core shared by the single- and
// multi-user block scorers: one user's candidate list streams through the
// tower in scoreChunkSize chunks over the caller's workspace.
func (m *NeuMF) scoreBlockLogitsWS(ws *neumfScoreWS, dst []float64, u int, items []int) {
	urow := m.users.Row(u)
	d := m.cfg.Dim
	for off := 0; off < len(items); off += scoreChunkSize {
		end := off + scoreChunkSize
		if end > len(items) {
			end = len(items)
		}
		n := end - off
		x := ws.x.FirstRows(n)
		for i, v := range items[off:end] {
			row := x.Row(i)
			copy(row[:d], urow)
			copy(row[d:], m.items.Row(v))
		}
		m.forwardChunkLogitsWS(ws, dst[off:end], x)
	}
}

// forwardChunkLogitsWS runs one assembled input chunk through the tower over
// the workspace, writing the output head's raw logit per row into dst. The
// sigmoid, when a caller wants probabilities, is applied at the block-scorer
// call boundary — σ is element-wise, so deferring it past the chunk loop
// cannot change a value.
func (m *NeuMF) forwardChunkLogitsWS(ws *neumfScoreWS, dst []float64, x *tensor.Matrix) {
	n := x.Rows
	cur := x
	for li, dl := range m.tower {
		z := dl.ForwardInto(ws.zs[li].FirstRows(n), cur)
		cur = nn.ReLUInto(ws.as[li].FirstRows(n), z)
	}
	logits := m.out.ForwardInto(ws.logits.FirstRows(n), cur)
	for i := 0; i < n; i++ {
		dst[i] = logits.At(i, 0)
	}
}

// ScorePairsInto implements MultiBlockScorer's ragged half: (user, item)
// pairs stream through the same pooled chunked logit forwards with a per-row
// user embedding, then the sigmoid. Each forward row depends only on its own
// input row, so pair batching never changes a score.
func (m *NeuMF) ScorePairsInto(dst []float64, users []int, items []int) {
	checkPairs(dst, users, items)
	if len(items) == 0 {
		return
	}
	ws := m.scoreWS.Get().(*neumfScoreWS)
	defer m.scoreWS.Put(ws)
	d := m.cfg.Dim
	for off := 0; off < len(items); off += scoreChunkSize {
		end := off + scoreChunkSize
		if end > len(items) {
			end = len(items)
		}
		n := end - off
		x := ws.x.FirstRows(n)
		for i := 0; i < n; i++ {
			row := x.Row(i)
			copy(row[:d], m.users.Row(users[off+i]))
			copy(row[d:], m.items.Row(items[off+i]))
		}
		m.forwardChunkLogitsWS(ws, dst[off:end], x)
	}
	sigmoidVec(dst)
}
