package models

import "ptffedrec/internal/par"

// trainChunkSize is the fixed shard width of the gradient-workspace engine:
// TrainBatch splits every batch into ceil(n/trainChunkSize) contiguous
// chunks, computes each chunk's gradients into a private workspace, and
// merges the workspaces in chunk order before the single optimizer step.
//
// It is a semantic constant, not a scheduling knob: the chunk boundaries fix
// the float association of the merged gradients, so they must depend only on
// the batch length — never on the worker count. That is what makes seeded
// training bitwise-identical for TrainWorkers ∈ {1, 2, …}.
const trainChunkSize = 256

// trainChunks returns the number of gradient chunks for a batch of n samples.
func trainChunks(n int) int { return (n + trainChunkSize - 1) / trainChunkSize }

// trainChunkBounds returns chunk c's half-open sample range.
func trainChunkBounds(c, n int) (lo, hi int) {
	lo = c * trainChunkSize
	hi = lo + trainChunkSize
	if hi > n {
		hi = n
	}
	return lo, hi
}

// resolveTrainWorkers maps Config.TrainWorkers to the worker count TrainBatch
// fans out over. Zero or negative means serial — intra-batch sharding is
// opt-in because federated clients already train on a worker pool, and lazy
// embedding tables materialise rows on read, which is unsafe to do
// concurrently.
func resolveTrainWorkers(cfg Config) int {
	w := cfg.TrainWorkers
	if w <= 1 || cfg.Lazy {
		return 1
	}
	return w
}

// forChunks fans fn out over the batch's gradient chunks.
func forChunks(n, workers int, fn func(c, lo, hi int)) {
	par.For(trainChunks(n), workers, func(c int) {
		lo, hi := trainChunkBounds(c, n)
		fn(c, lo, hi)
	})
}

// rowAccum collects sparse per-row gradient vectors for one chunk. Rows are
// replayed in first-touch order by merge — numerically immaterial (row sums
// are independent) but kept deterministic so merges never depend on map
// iteration order.
type rowAccum struct {
	dim   int
	order []int
	rows  map[int][]float64
}

func newRowAccum(dim int) *rowAccum {
	return &rowAccum{dim: dim, rows: make(map[int][]float64)}
}

// add accumulates g into row i's pending vector.
func (a *rowAccum) add(i int, g []float64) {
	buf, ok := a.rows[i]
	if !ok {
		buf = make([]float64, a.dim)
		a.rows[i] = buf
		a.order = append(a.order, i)
	}
	for k, v := range g {
		buf[k] += v
	}
}

// axpy accumulates s*x into row i's pending vector.
func (a *rowAccum) axpy(i int, s float64, x []float64) {
	buf, ok := a.rows[i]
	if !ok {
		buf = make([]float64, a.dim)
		a.rows[i] = buf
		a.order = append(a.order, i)
	}
	for k, v := range x {
		buf[k] += s * v
	}
}

// mergeInto replays the accumulated rows into an embedding table.
func (a *rowAccum) mergeInto(t embTable) {
	for _, i := range a.order {
		t.Accumulate(i, a.rows[i])
	}
}

// mergeIntoRows adds the accumulated rows into a dense row-major view.
func (a *rowAccum) mergeIntoRows(row func(i int) []float64) {
	for _, i := range a.order {
		dst := row(i)
		for k, v := range a.rows[i] {
			dst[k] += v
		}
	}
}
