// Package bitset provides a fixed-capacity bit set over a dense integer
// universe. The federated server uses one per client to answer "was item v in
// this client's last upload?" during dispersal: O(1) membership over the item
// catalogue with one allocation per client, reused (Reset + re-fill) every
// round instead of rebuilding a hash set.
package bitset

import "math/bits"

// Set is a bit set over [0, Cap()). The zero value is unusable; call New.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set with capacity for n elements.
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// Cap returns the universe size the set was allocated for.
func (s *Set) Cap() int { return s.n }

// Add inserts i into the set. i must be in [0, Cap()).
func (s *Set) Add(i int) { s.words[i>>6] |= 1 << (uint(i) & 63) }

// Contains reports whether i is in the set.
func (s *Set) Contains(i int) bool { return s.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Count returns the number of elements in the set.
func (s *Set) Count() int {
	var c int
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Reset removes every element, keeping the allocation.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Words exposes the set's backing words (64 elements per word, bit i of word
// w is element w*64+i). Read-only: callers must not modify the slice. It
// exists so complement walks (internal/candset) can enumerate non-members a
// word at a time instead of probing every element.
func (s *Set) Words() []uint64 { return s.words }

// ForEach calls fn for every element in ascending order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi<<6 + b)
			w &= w - 1
		}
	}
}
