package bitset

import (
	"reflect"
	"testing"
)

func TestSetBasics(t *testing.T) {
	s := New(130) // spans three words
	if s.Cap() != 130 || s.Count() != 0 {
		t.Fatalf("fresh set: cap=%d count=%d", s.Cap(), s.Count())
	}
	for _, i := range []int{0, 63, 64, 129} {
		s.Add(i)
	}
	s.Add(63) // duplicate add is a no-op
	if s.Count() != 4 {
		t.Fatalf("Count = %d, want 4", s.Count())
	}
	for _, i := range []int{0, 63, 64, 129} {
		if !s.Contains(i) {
			t.Fatalf("Contains(%d) = false", i)
		}
	}
	for _, i := range []int{1, 62, 65, 128} {
		if s.Contains(i) {
			t.Fatalf("Contains(%d) = true", i)
		}
	}
}

func TestForEachAscending(t *testing.T) {
	s := New(200)
	want := []int{3, 64, 65, 127, 128, 199}
	for _, i := range want {
		s.Add(i)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ForEach = %v, want %v", got, want)
	}
}

func TestReset(t *testing.T) {
	s := New(70)
	s.Add(1)
	s.Add(69)
	s.Reset()
	if s.Count() != 0 || s.Contains(1) || s.Contains(69) {
		t.Fatal("Reset did not clear the set")
	}
	s.Add(5)
	if !s.Contains(5) || s.Count() != 1 {
		t.Fatal("set unusable after Reset")
	}
}
