package data

import "fmt"

// KCore iteratively removes users and items with fewer than k interactions
// until every remaining user and item has at least k — the preprocessing the
// paper applies to Gowalla ("we use a 20-core setting"). Surviving users and
// items are reindexed densely; the returned maps give old→new ids.
func KCore(d *Dataset, k int) (*Dataset, map[int]int, map[int]int) {
	userAlive := make([]bool, d.NumUsers)
	itemAlive := make([]bool, d.NumItems)
	for i := range userAlive {
		userAlive[i] = true
	}
	for i := range itemAlive {
		itemAlive[i] = true
	}

	for {
		changed := false
		itemDeg := make([]int, d.NumItems)
		userDeg := make([]int, d.NumUsers)
		for u, items := range d.UserItems {
			if !userAlive[u] {
				continue
			}
			for _, v := range items {
				if itemAlive[v] {
					userDeg[u]++
					itemDeg[v]++
				}
			}
		}
		for u := range userAlive {
			if userAlive[u] && userDeg[u] < k {
				userAlive[u] = false
				changed = true
			}
		}
		for v := range itemAlive {
			if itemAlive[v] && itemDeg[v] < k {
				itemAlive[v] = false
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	userMap := map[int]int{}
	itemMap := map[int]int{}
	for u, alive := range userAlive {
		if alive {
			userMap[u] = len(userMap)
		}
	}
	for v, alive := range itemAlive {
		if alive {
			itemMap[v] = len(itemMap)
		}
	}

	var pairs [][2]int
	for u, items := range d.UserItems {
		nu, ok := userMap[u]
		if !ok {
			continue
		}
		for _, v := range items {
			if nv, ok := itemMap[v]; ok {
				pairs = append(pairs, [2]int{nu, nv})
			}
		}
	}
	out, err := NewDataset(fmt.Sprintf("%s-%dcore", d.Name, k), len(userMap), len(itemMap), pairs)
	if err != nil {
		// Reindexed ids are dense by construction; an error here is a bug.
		panic(err)
	}
	return out, userMap, itemMap
}
