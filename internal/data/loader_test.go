package data

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseMovieLensFormat(t *testing.T) {
	in := "1\t3\t5\t881250949\n1\t2\t1\t881250950\n2\t3\t4\t881250951\n"
	d, err := ParseInteractions("ml", strings.NewReader(in), "\t", 3, true)
	if err != nil {
		t.Fatal(err)
	}
	// rating 1 filtered out by minRating=3
	if d.NumInteractions() != 2 {
		t.Fatalf("interactions = %d", d.NumInteractions())
	}
	if !d.HasInteraction(0, 2) || !d.HasInteraction(1, 2) {
		t.Fatal("1-based conversion wrong")
	}
	if d.HasInteraction(0, 1) {
		t.Fatal("low rating kept")
	}
}

func TestParseCSVNoRating(t *testing.T) {
	in := "0,1\n0,2\n# comment\n\n3,0\n"
	d, err := ParseInteractions("csv", strings.NewReader(in), ",", 0.5, false)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumUsers != 4 || d.NumItems != 3 || d.NumInteractions() != 3 {
		t.Fatalf("parsed %d users %d items %d inter", d.NumUsers, d.NumItems, d.NumInteractions())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"justonefield\n",
		"a,b\n",
		"0,x\n",
		"0,1,notafloat\n",
		"0,0\n0,-1\n",
	}
	for _, in := range cases {
		if _, err := ParseInteractions("bad", strings.NewReader(in), ",", 0, false); err == nil {
			t.Fatalf("input %q accepted", in)
		}
	}
	if _, err := ParseInteractions("empty", strings.NewReader(""), ",", 0, false); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestWriteCSVRoundTrip(t *testing.T) {
	d := Generate(Tiny, 5)
	var buf bytes.Buffer
	if err := WriteCSV(d, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseInteractions("tiny", &buf, ",", 0.5, false)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumInteractions() != d.NumInteractions() {
		t.Fatalf("round trip lost interactions: %d vs %d", back.NumInteractions(), d.NumInteractions())
	}
	for u := range d.UserItems {
		for i, v := range d.UserItems[u] {
			if back.UserItems[u][i] != v {
				t.Fatal("round trip changed profile")
			}
		}
	}
}

func TestLoadCSVFromDisk(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d.csv")
	if err := os.WriteFile(path, []byte("0,0\n1,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := LoadCSV(path, "disk")
	if err != nil {
		t.Fatal(err)
	}
	if d.NumInteractions() != 2 {
		t.Fatalf("interactions = %d", d.NumInteractions())
	}
	if _, err := LoadCSV(filepath.Join(dir, "missing.csv"), "x"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadMovieLensFromDisk(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "u.data")
	if err := os.WriteFile(path, []byte("1\t1\t4\t0\n2\t2\t2\t0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := LoadMovieLens100K(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumInteractions() != 1 || !d.HasInteraction(0, 0) {
		t.Fatal("movielens load wrong")
	}
	if _, err := LoadMovieLens100K(filepath.Join(dir, "nope"), 3); err == nil {
		t.Fatal("missing file accepted")
	}
}
