package data

import "testing"

func TestKCoreRemovesLightUsersAndItems(t *testing.T) {
	// user 0: 3 interactions; user 1: 1; item 3 touched only by user 1.
	d, _ := NewDataset("t", 2, 4, [][2]int{
		{0, 0}, {0, 1}, {0, 2},
		{1, 3},
	})
	core, userMap, itemMap := KCore(d, 2)
	if _, ok := userMap[1]; ok {
		t.Fatal("light user survived")
	}
	if _, ok := itemMap[3]; ok {
		t.Fatal("light item survived")
	}
	// Items 0,1,2 have degree 1 after user 1 is gone... they had degree 1
	// from the start, so with k=2 everything unravels.
	if core.NumInteractions() != 0 {
		t.Fatalf("k=2 core should be empty here, got %d", core.NumInteractions())
	}
}

func TestKCoreKeepsDenseCore(t *testing.T) {
	// 3 users × 3 items fully connected, plus one dangling user.
	pairs := [][2]int{}
	for u := 0; u < 3; u++ {
		for v := 0; v < 3; v++ {
			pairs = append(pairs, [2]int{u, v})
		}
	}
	pairs = append(pairs, [2]int{3, 3})
	d, _ := NewDataset("t", 4, 4, pairs)
	core, userMap, itemMap := KCore(d, 3)
	if core.NumUsers != 3 || core.NumItems != 3 {
		t.Fatalf("core = %dx%d, want 3x3", core.NumUsers, core.NumItems)
	}
	if core.NumInteractions() != 9 {
		t.Fatalf("core interactions = %d", core.NumInteractions())
	}
	if len(userMap) != 3 || len(itemMap) != 3 {
		t.Fatal("maps wrong size")
	}
	// Reindexing must be dense.
	for _, nu := range userMap {
		if nu < 0 || nu >= 3 {
			t.Fatalf("non-dense user id %d", nu)
		}
	}
}

func TestKCoreCascades(t *testing.T) {
	// A chain: removing the endpoint drops its neighbor below k, cascading.
	d, _ := NewDataset("t", 3, 3, [][2]int{
		{0, 0}, {0, 1},
		{1, 1}, {1, 2},
		{2, 2},
	})
	core, _, _ := KCore(d, 2)
	// user 2 has 1 interaction -> removed -> item 2 drops to 1 -> removed ->
	// user 1 drops to 1 -> removed -> item 1 drops to 1 -> removed -> user 0
	// drops to 1 -> removed. Everything unravels.
	if core.NumInteractions() != 0 {
		t.Fatalf("cascade should empty the dataset, got %d", core.NumInteractions())
	}
}

func TestKCoreInvariant(t *testing.T) {
	// Every surviving user/item must have ≥ k interactions.
	d := Generate(ML100KSmall, 9)
	const k = 8
	core, _, _ := KCore(d, k)
	for u, items := range core.UserItems {
		if len(items) < k {
			t.Fatalf("user %d has %d < %d interactions", u, len(items), k)
		}
	}
	for v, cnt := range core.ItemPopularity() {
		if cnt > 0 && cnt < k {
			t.Fatalf("item %d has %d < %d interactions", v, cnt, k)
		}
		if cnt == 0 {
			t.Fatalf("item %d survived with no interactions", v)
		}
	}
	if core.Name != "ml-100k-small-8core" {
		t.Fatalf("core name = %s", core.Name)
	}
}

func TestKCoreZero(t *testing.T) {
	d := Generate(Tiny, 3)
	core, _, _ := KCore(d, 0)
	if core.NumInteractions() != d.NumInteractions() {
		t.Fatal("0-core should keep everything")
	}
}
