package data

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// LoadMovieLens100K parses the MovieLens `u.data` tab-separated format
// (user, item, rating, timestamp; ids are 1-based). Ratings are binarised to
// implicit feedback as in the paper ("we transform all positive ratings to
// r=1"): every rating ≥ minRating becomes an interaction.
func LoadMovieLens100K(path string, minRating float64) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("data: open movielens: %w", err)
	}
	defer f.Close()
	return ParseInteractions("ml-100k", f, "\t", minRating, true)
}

// LoadCSV parses a generic "user,item[,rating]" file with 0-based ids.
// Missing ratings default to 1 (implicit feedback).
func LoadCSV(path, name string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("data: open csv: %w", err)
	}
	defer f.Close()
	return ParseInteractions(name, f, ",", 0.5, false)
}

// ParseInteractions reads "user<sep>item[<sep>rating[...]]" lines, keeping
// records with rating ≥ minRating (absent ratings count as 1). When oneBased
// is set, ids are shifted down by one. User/item universes are sized by the
// maximum observed id, and blank or #-comment lines are skipped.
func ParseInteractions(name string, r io.Reader, sep string, minRating float64, oneBased bool) (*Dataset, error) {
	var pairs [][2]int
	maxU, maxV := -1, -1
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, sep)
		if len(fields) < 2 {
			return nil, fmt.Errorf("data: %s line %d: want at least user%sitem", name, line, sep)
		}
		u, err := strconv.Atoi(strings.TrimSpace(fields[0]))
		if err != nil {
			return nil, fmt.Errorf("data: %s line %d: bad user id: %w", name, line, err)
		}
		v, err := strconv.Atoi(strings.TrimSpace(fields[1]))
		if err != nil {
			return nil, fmt.Errorf("data: %s line %d: bad item id: %w", name, line, err)
		}
		rating := 1.0
		if len(fields) >= 3 {
			rating, err = strconv.ParseFloat(strings.TrimSpace(fields[2]), 64)
			if err != nil {
				return nil, fmt.Errorf("data: %s line %d: bad rating: %w", name, line, err)
			}
		}
		if rating < minRating {
			continue
		}
		if oneBased {
			u--
			v--
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("data: %s line %d: negative id after adjustment", name, line)
		}
		if u > maxU {
			maxU = u
		}
		if v > maxV {
			maxV = v
		}
		pairs = append(pairs, [2]int{u, v})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("data: scan %s: %w", name, err)
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("data: %s contains no interactions", name)
	}
	return NewDataset(name, maxU+1, maxV+1, pairs)
}

// WriteCSV emits the dataset as "user,item" lines, the format LoadCSV reads
// back. Used by cmd/datagen.
func WriteCSV(d *Dataset, w io.Writer) error {
	bw := bufio.NewWriter(w)
	for u, items := range d.UserItems {
		for _, v := range items {
			if _, err := fmt.Fprintf(bw, "%d,%d\n", u, v); err != nil {
				return fmt.Errorf("data: write csv: %w", err)
			}
		}
	}
	return bw.Flush()
}
