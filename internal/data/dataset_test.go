package data

import (
	"math"
	"testing"

	"ptffedrec/internal/rng"
)

func TestNewDatasetDedupAndSort(t *testing.T) {
	d, err := NewDataset("t", 2, 5, [][2]int{{0, 3}, {0, 1}, {0, 3}, {1, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.UserItems[0]) != 2 || d.UserItems[0][0] != 1 || d.UserItems[0][1] != 3 {
		t.Fatalf("user 0 items = %v", d.UserItems[0])
	}
	if d.NumInteractions() != 3 {
		t.Fatalf("interactions = %d", d.NumInteractions())
	}
}

func TestNewDatasetRangeErrors(t *testing.T) {
	if _, err := NewDataset("t", 1, 1, [][2]int{{1, 0}}); err == nil {
		t.Fatal("out-of-range user accepted")
	}
	if _, err := NewDataset("t", 1, 1, [][2]int{{0, 5}}); err == nil {
		t.Fatal("out-of-range item accepted")
	}
}

func TestStats(t *testing.T) {
	d, _ := NewDataset("t", 2, 4, [][2]int{{0, 0}, {0, 1}, {1, 2}, {1, 3}})
	s := d.Stats()
	if s.Interactions != 4 || s.AvgLength != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if math.Abs(s.Density-0.5) > 1e-12 {
		t.Fatalf("density = %v", s.Density)
	}
	if s.String() == "" {
		t.Fatal("empty stats string")
	}
}

func TestHasInteraction(t *testing.T) {
	d, _ := NewDataset("t", 1, 10, [][2]int{{0, 2}, {0, 7}})
	if !d.HasInteraction(0, 7) || d.HasInteraction(0, 3) {
		t.Fatal("HasInteraction wrong")
	}
}

func TestItemPopularity(t *testing.T) {
	d, _ := NewDataset("t", 3, 3, [][2]int{{0, 0}, {1, 0}, {2, 0}, {0, 1}})
	pop := d.ItemPopularity()
	if pop[0] != 3 || pop[1] != 1 || pop[2] != 0 {
		t.Fatalf("popularity = %v", pop)
	}
}

func TestSplitProportions(t *testing.T) {
	pairs := make([][2]int, 0, 100)
	for v := 0; v < 100; v++ {
		pairs = append(pairs, [2]int{0, v})
	}
	d, _ := NewDataset("t", 1, 100, pairs)
	sp := d.Split(rng.New(1), 0.2)
	if len(sp.Test[0]) != 20 || len(sp.Train[0]) != 80 {
		t.Fatalf("split sizes train=%d test=%d", len(sp.Train[0]), len(sp.Test[0]))
	}
	// Disjoint and covering.
	seen := map[int]bool{}
	for _, v := range sp.Train[0] {
		seen[v] = true
	}
	for _, v := range sp.Test[0] {
		if seen[v] {
			t.Fatalf("item %d in both splits", v)
		}
		seen[v] = true
	}
	if len(seen) != 100 {
		t.Fatalf("split lost items: %d", len(seen))
	}
}

func TestSplitKeepsOneTrainItem(t *testing.T) {
	d, _ := NewDataset("t", 1, 2, [][2]int{{0, 0}})
	sp := d.Split(rng.New(2), 0.99)
	if len(sp.Train[0]) != 1 || len(sp.Test[0]) != 0 {
		t.Fatalf("single-interaction split train=%v test=%v", sp.Train[0], sp.Test[0])
	}
}

func TestSplitMembership(t *testing.T) {
	d, _ := NewDataset("t", 1, 10, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}})
	sp := d.Split(rng.New(3), 0.2)
	for _, v := range sp.Train[0] {
		if !sp.InTrain(0, v) {
			t.Fatalf("InTrain(%d) false", v)
		}
	}
	for _, v := range sp.Test[0] {
		if !sp.InTest(0, v) || sp.InTrain(0, v) {
			t.Fatalf("test item %d misclassified", v)
		}
	}
}

func TestSampleNegativesExcludesInteracted(t *testing.T) {
	d, _ := NewDataset("t", 1, 50, [][2]int{{0, 0}, {0, 1}, {0, 2}, {0, 3}, {0, 4}})
	sp := d.Split(rng.New(4), 0.2)
	negs := sp.SampleNegatives(rng.New(5), 0, 4)
	if len(negs) != len(sp.Train[0])*4 {
		t.Fatalf("neg count = %d", len(negs))
	}
	for _, v := range negs {
		if sp.InTrain(0, v) || sp.InTest(0, v) {
			t.Fatalf("negative %d is an interacted item", v)
		}
	}
	// Distinct.
	seen := map[int]bool{}
	for _, v := range negs {
		if seen[v] {
			t.Fatalf("duplicate negative %d", v)
		}
		seen[v] = true
	}
}

func TestSampleNegativesExhaustsUniverse(t *testing.T) {
	d, _ := NewDataset("t", 1, 6, [][2]int{{0, 0}, {0, 1}, {0, 2}, {0, 3}})
	sp := d.Split(rng.New(6), 0.25)
	negs := sp.SampleNegativesN(rng.New(7), 0, 100)
	if len(negs) != 2 {
		t.Fatalf("want the 2 free items, got %v", negs)
	}
}

func TestSampleNegativesZero(t *testing.T) {
	d, _ := NewDataset("t", 1, 6, [][2]int{{0, 0}})
	sp := d.Split(rng.New(8), 0.2)
	if got := sp.SampleNegativesN(rng.New(9), 0, 0); got != nil {
		t.Fatalf("want nil, got %v", got)
	}
}

func TestSplitDeterministic(t *testing.T) {
	d := Generate(Tiny, 1)
	a := d.Split(rng.New(10), 0.2)
	b := d.Split(rng.New(10), 0.2)
	for u := range a.Train {
		if len(a.Train[u]) != len(b.Train[u]) {
			t.Fatal("split not deterministic")
		}
		for i := range a.Train[u] {
			if a.Train[u][i] != b.Train[u][i] {
				t.Fatal("split not deterministic")
			}
		}
	}
}
