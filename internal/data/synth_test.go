package data

import (
	"math"
	"sort"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Tiny, 42)
	b := Generate(Tiny, 42)
	if a.NumInteractions() != b.NumInteractions() {
		t.Fatal("same seed produced different datasets")
	}
	for u := range a.UserItems {
		for i := range a.UserItems[u] {
			if a.UserItems[u][i] != b.UserItems[u][i] {
				t.Fatal("same seed produced different profiles")
			}
		}
	}
	c := Generate(Tiny, 43)
	if c.NumInteractions() == a.NumInteractions() && func() bool {
		for u := range a.UserItems {
			if len(a.UserItems[u]) != len(c.UserItems[u]) {
				return false
			}
		}
		return true
	}() {
		// identical layout across seeds would be suspicious but not fatal;
		// require at least one differing profile
		same := true
		for u := range a.UserItems {
			for i := range a.UserItems[u] {
				if i >= len(c.UserItems[u]) || a.UserItems[u][i] != c.UserItems[u][i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Fatal("different seeds produced identical datasets")
		}
	}
}

func TestGenerateHitsTargets(t *testing.T) {
	for _, p := range []Profile{Tiny, ML100KSmall, SteamSmall, GowallaSmall} {
		d := Generate(p, 7)
		if d.NumUsers != p.NumUsers || d.NumItems != p.NumItems {
			t.Fatalf("%s universe %dx%d", p.Name, d.NumUsers, d.NumItems)
		}
		got := d.NumInteractions()
		lo := int(float64(p.Interactions) * 0.75)
		hi := int(float64(p.Interactions) * 1.25)
		if got < lo || got > hi {
			t.Fatalf("%s interactions %d outside [%d,%d]", p.Name, got, lo, hi)
		}
		for u, items := range d.UserItems {
			if len(items) < p.MinPerUser/2 {
				t.Fatalf("%s user %d has only %d interactions", p.Name, u, len(items))
			}
		}
	}
}

func TestGeneratePopularitySkew(t *testing.T) {
	d := Generate(ML100KSmall, 11)
	pop := d.ItemPopularity()
	sort.Sort(sort.Reverse(sort.IntSlice(pop)))
	// Top 10% of items should hold well over 10% of interactions.
	top := 0
	for _, c := range pop[:len(pop)/10] {
		top += c
	}
	frac := float64(top) / float64(d.NumInteractions())
	if frac < 0.2 {
		t.Fatalf("top-decile popularity share = %v, want long tail (>0.2)", frac)
	}
}

func TestGenerateDensityOrdering(t *testing.T) {
	ml := Generate(ML100KSmall, 3).Density()
	st := Generate(SteamSmall, 3).Density()
	gw := Generate(GowallaSmall, 3).Density()
	if !(ml > gw && gw > st) {
		t.Fatalf("density ordering ml=%v gowalla=%v steam=%v, want ml>gowalla>steam", ml, gw, st)
	}
}

func TestGenerateClusterSignal(t *testing.T) {
	// Users in the same cluster should overlap more than users in different
	// clusters. We can't observe the latent assignment, so test the weaker
	// consequence: the dataset has strongly unbalanced pairwise overlaps.
	d := Generate(ML100KSmall, 13)
	sim := func(a, b []int) float64 {
		set := map[int]bool{}
		for _, v := range a {
			set[v] = true
		}
		inter := 0
		for _, v := range b {
			if set[v] {
				inter++
			}
		}
		union := len(a) + len(b) - inter
		if union == 0 {
			return 0
		}
		return float64(inter) / float64(union)
	}
	var sims []float64
	for u := 0; u < 40; u++ {
		for w := u + 1; w < 40; w++ {
			sims = append(sims, sim(d.UserItems[u], d.UserItems[w]))
		}
	}
	sort.Float64s(sims)
	lo := sims[len(sims)/10]
	hi := sims[len(sims)*9/10]
	if hi < lo*2 && hi-lo < 0.05 {
		t.Fatalf("no cluster structure: p10=%v p90=%v", lo, hi)
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("ml-100k")
	if err != nil || p.NumUsers != 943 {
		t.Fatalf("ProfileByName: %v %+v", err, p)
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestFullProfilesMatchTableII(t *testing.T) {
	// The calibrated profiles must reproduce Table II's published statistics.
	cases := []struct {
		p       Profile
		users   int
		items   int
		density float64
	}{
		{ML100K, 943, 1682, 0.063},
		{Steam200K, 3753, 5134, 0.0059},
		{Gowalla, 8392, 10068, 0.0046},
	}
	for _, c := range cases {
		if c.p.NumUsers != c.users || c.p.NumItems != c.items {
			t.Fatalf("%s universe mismatch", c.p.Name)
		}
		implied := float64(c.p.Interactions) / (float64(c.users) * float64(c.items))
		if math.Abs(implied-c.density)/c.density > 0.1 {
			t.Fatalf("%s implied density %v, want ≈%v", c.p.Name, implied, c.density)
		}
	}
}
