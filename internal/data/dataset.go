// Package data provides the recommendation datasets: loaders for the real
// MovieLens/Steam/Gowalla interaction files, synthetic generators calibrated
// to those datasets' published statistics (for offline reproduction), 8:2
// train/test splitting and 1:4 negative sampling as used throughout the
// paper's evaluation.
package data

import (
	"fmt"
	"sort"

	"ptffedrec/internal/rng"
)

// Dataset is an implicit-feedback interaction set. Items each user has
// interacted with are stored sorted for O(log n) membership tests.
type Dataset struct {
	Name               string
	NumUsers, NumItems int
	// UserItems[u] is the sorted list of items user u interacted with.
	UserItems [][]int
}

// NewDataset builds a Dataset from raw (user, item) pairs, deduplicating and
// sorting each user's profile.
func NewDataset(name string, numUsers, numItems int, pairs [][2]int) (*Dataset, error) {
	ui := make([][]int, numUsers)
	seen := make([]map[int]bool, numUsers)
	for _, p := range pairs {
		u, v := p[0], p[1]
		if u < 0 || u >= numUsers {
			return nil, fmt.Errorf("data: user %d outside [0,%d)", u, numUsers)
		}
		if v < 0 || v >= numItems {
			return nil, fmt.Errorf("data: item %d outside [0,%d)", v, numItems)
		}
		if seen[u] == nil {
			seen[u] = map[int]bool{}
		}
		if seen[u][v] {
			continue
		}
		seen[u][v] = true
		ui[u] = append(ui[u], v)
	}
	for u := range ui {
		sort.Ints(ui[u])
	}
	return &Dataset{Name: name, NumUsers: numUsers, NumItems: numItems, UserItems: ui}, nil
}

// NumInteractions returns the total number of user–item interactions.
func (d *Dataset) NumInteractions() int {
	n := 0
	for _, items := range d.UserItems {
		n += len(items)
	}
	return n
}

// Density returns interactions / (users × items).
func (d *Dataset) Density() float64 {
	if d.NumUsers == 0 || d.NumItems == 0 {
		return 0
	}
	return float64(d.NumInteractions()) / (float64(d.NumUsers) * float64(d.NumItems))
}

// AvgProfileLen returns the mean number of interactions per user.
func (d *Dataset) AvgProfileLen() float64 {
	if d.NumUsers == 0 {
		return 0
	}
	return float64(d.NumInteractions()) / float64(d.NumUsers)
}

// HasInteraction reports whether user u interacted with item v.
func (d *Dataset) HasInteraction(u, v int) bool {
	items := d.UserItems[u]
	i := sort.SearchInts(items, v)
	return i < len(items) && items[i] == v
}

// ItemPopularity returns the interaction count per item.
func (d *Dataset) ItemPopularity() []int {
	pop := make([]int, d.NumItems)
	for _, items := range d.UserItems {
		for _, v := range items {
			pop[v]++
		}
	}
	return pop
}

// Stats is one row of the paper's Table II.
type Stats struct {
	Name         string
	Users        int
	Items        int
	Interactions int
	AvgLength    float64
	Density      float64
}

// Stats summarises the dataset in the shape of Table II.
func (d *Dataset) Stats() Stats {
	return Stats{
		Name:         d.Name,
		Users:        d.NumUsers,
		Items:        d.NumItems,
		Interactions: d.NumInteractions(),
		AvgLength:    d.AvgProfileLen(),
		Density:      d.Density(),
	}
}

// String formats the stats like the paper's Table II row.
func (s Stats) String() string {
	return fmt.Sprintf("%-16s users=%-6d items=%-6d interactions=%-8d avg_len=%-7.1f density=%.2f%%",
		s.Name, s.Users, s.Items, s.Interactions, s.AvgLength, s.Density*100)
}

// Split holds a per-user train/test partition of a Dataset. Both sides keep
// each user's items sorted.
type Split struct {
	Name               string
	NumUsers, NumItems int
	Train, Test        [][]int
}

// Split partitions each user's interactions into train/test with the given
// test fraction (the paper uses 8:2). Every user keeps at least one training
// item; users with fewer than two interactions contribute nothing to test.
func (d *Dataset) Split(s *rng.Stream, testFrac float64) *Split {
	sp := &Split{
		Name:     d.Name,
		NumUsers: d.NumUsers,
		NumItems: d.NumItems,
		Train:    make([][]int, d.NumUsers),
		Test:     make([][]int, d.NumUsers),
	}
	for u, items := range d.UserItems {
		if len(items) == 0 {
			continue
		}
		nTest := int(float64(len(items)) * testFrac)
		if nTest >= len(items) {
			nTest = len(items) - 1
		}
		perm := s.Perm(len(items))
		for i, pi := range perm {
			if i < nTest {
				sp.Test[u] = append(sp.Test[u], items[pi])
			} else {
				sp.Train[u] = append(sp.Train[u], items[pi])
			}
		}
		sort.Ints(sp.Train[u])
		sort.Ints(sp.Test[u])
	}
	return sp
}

// InTrain reports whether item v is in user u's training positives.
func (sp *Split) InTrain(u, v int) bool {
	items := sp.Train[u]
	i := sort.SearchInts(items, v)
	return i < len(items) && items[i] == v
}

// InTest reports whether item v is in user u's held-out positives.
func (sp *Split) InTest(u, v int) bool {
	items := sp.Test[u]
	i := sort.SearchInts(items, v)
	return i < len(items) && items[i] == v
}

// TrainInteractions returns the total number of training interactions.
func (sp *Split) TrainInteractions() int {
	n := 0
	for _, items := range sp.Train {
		n += len(items)
	}
	return n
}

// SampleNegatives draws ratio×len(positives) items the user has not
// interacted with (neither train nor test), without replacement when
// possible. This implements the paper's 1:4 negative sampling.
func (sp *Split) SampleNegatives(s *rng.Stream, u int, ratio int) []int {
	want := len(sp.Train[u]) * ratio
	return sp.SampleNegativesN(s, u, want)
}

// SampleNegativesN draws exactly n non-interacted items for user u (or every
// non-interacted item if fewer exist).
func (sp *Split) SampleNegativesN(s *rng.Stream, u, n int) []int {
	if n <= 0 {
		return nil
	}
	interacted := len(sp.Train[u]) + len(sp.Test[u])
	free := sp.NumItems - interacted
	if free <= 0 {
		return nil
	}
	if n >= free {
		// Dense fallback: enumerate all non-interacted items.
		out := make([]int, 0, free)
		for v := 0; v < sp.NumItems; v++ {
			if !sp.InTrain(u, v) && !sp.InTest(u, v) {
				out = append(out, v)
			}
		}
		s.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}
	seen := make(map[int]bool, n)
	out := make([]int, 0, n)
	for len(out) < n {
		v := s.Intn(sp.NumItems)
		if seen[v] || sp.InTrain(u, v) || sp.InTest(u, v) {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	return out
}
