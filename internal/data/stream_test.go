package data

import (
	"bytes"
	"reflect"
	"testing"

	"ptffedrec/internal/rng"
)

// streamProfiles are the profiles the equality tests sweep: one tiny and one
// mid-size, covering both the empty-cluster guard path (tiny scales) and
// realistic Zipf tails.
var streamProfiles = []Profile{Tiny, ML100KSmall}

// TestStreamUsersMatchesGenerate pins the streaming contract: the per-user
// sequence StreamUsers emits is item-for-item identical to the materialised
// Generate for the same (profile, seed).
func TestStreamUsersMatchesGenerate(t *testing.T) {
	for _, p := range streamProfiles {
		d := Generate(p, 42)
		u := 0
		err := StreamUsers(p, 42, func(user int, items []int) error {
			if user != u {
				t.Fatalf("%s: callback user %d, want %d", p.Name, user, u)
			}
			if !reflect.DeepEqual(items, d.UserItems[user]) && !(len(items) == 0 && len(d.UserItems[user]) == 0) {
				t.Fatalf("%s: user %d profile differs:\n  stream:   %v\n  generate: %v",
					p.Name, user, items, d.UserItems[user])
			}
			u++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if u != p.NumUsers {
			t.Fatalf("%s: streamed %d users, want %d", p.Name, u, p.NumUsers)
		}
	}
}

// TestStreamSplitMatchesDatasetSplit pins the one-pass split against the
// experiment harness's recipe (Generate then Dataset.Split with the derived
// split stream): both sides must consume the split stream draw-for-draw
// identically, so the partitions are equal per user.
func TestStreamSplitMatchesDatasetSplit(t *testing.T) {
	for _, p := range streamProfiles {
		want := Generate(p, 7).Split(rng.New(7).Derive("split:"+p.Name), 0.2)
		got := StreamSplit(p, 7, 0.2)
		if got.Name != want.Name || got.NumUsers != want.NumUsers || got.NumItems != want.NumItems {
			t.Fatalf("%s: split headers differ: %+v vs %+v", p.Name, got, want)
		}
		for u := 0; u < p.NumUsers; u++ {
			if !equalIntSlices(got.Train[u], want.Train[u]) {
				t.Fatalf("%s: user %d train differs:\n  stream: %v\n  split:  %v",
					p.Name, u, got.Train[u], want.Train[u])
			}
			if !equalIntSlices(got.Test[u], want.Test[u]) {
				t.Fatalf("%s: user %d test differs:\n  stream: %v\n  split:  %v",
					p.Name, u, got.Test[u], want.Test[u])
			}
		}
	}
}

// TestStreamCSVMatchesWriteCSV pins the on-disk format byte-for-byte: a
// profile streamed to CSV must be indistinguishable from materialising the
// Dataset and writing it, and the stats gathered along the way must match
// the Dataset's own accounting.
func TestStreamCSVMatchesWriteCSV(t *testing.T) {
	for _, p := range streamProfiles {
		d := Generate(p, 99)
		var want bytes.Buffer
		if err := WriteCSV(d, &want); err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		st, err := StreamCSV(&got, p, 99)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("%s: streamed CSV differs from WriteCSV(Generate(...))", p.Name)
		}
		if ds := d.Stats(); st != ds {
			t.Fatalf("%s: stream stats %+v, dataset stats %+v", p.Name, st, ds)
		}
		if st2 := StreamStats(p, 99); st2 != st {
			t.Fatalf("%s: StreamStats %+v, StreamCSV stats %+v", p.Name, st2, st)
		}
	}
}

// TestStreamGenOutOfOrderPanics pins the sequential contract: the shared
// draw stream makes out-of-order generation silently wrong, so it must be
// loudly wrong instead.
func TestStreamGenOutOfOrderPanics(t *testing.T) {
	g := newStreamGen(Tiny, 1)
	g.userItems(nil, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("requesting user 2 after user 0 did not panic")
		}
	}()
	g.userItems(nil, 2)
}

func equalIntSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
