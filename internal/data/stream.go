package data

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"ptffedrec/internal/rng"
)

// This file is the streaming face of the synthetic generator: the same
// per-user profile sequence Generate produces, delivered one user at a time
// with O(users) scalar state instead of the materialised interaction set.
// It exists for the huge profiles (Huge1M) where holding every profile —
// let alone a Dataset plus a Split copy of it — would dominate the very
// memory budget the scalability experiment measures. Equality with the
// all-at-once path is pinned by tests: StreamUsers item-for-item against
// Generate, StreamSplit against Generate+Split, StreamCSV byte-for-byte
// against WriteCSV.

// StreamUsers generates the profile's users in ascending order, invoking fn
// once per user with that user's sorted, deduplicated item list. The slice
// is reused between calls — fn must copy anything it keeps. Returning an
// error from fn stops the stream.
func StreamUsers(p Profile, seed uint64, fn func(u int, items []int) error) error {
	g := newStreamGen(p, seed)
	var buf []int
	for u := 0; u < p.NumUsers; u++ {
		buf = g.userItems(buf, u)
		if err := fn(u, buf); err != nil {
			return err
		}
	}
	return nil
}

// StreamSplit generates and splits the profile in one pass, producing the
// same Split as Generate(p, seed).Split(rng.New(seed).Derive("split:"+p.Name),
// testFrac) — the experiment harness's split recipe — without ever holding
// the full Dataset. Peak extra memory is the Split itself (which the caller
// needs anyway) plus one user's scratch.
func StreamSplit(p Profile, seed uint64, testFrac float64) *Split {
	sp := &Split{
		Name:     p.Name,
		NumUsers: p.NumUsers,
		NumItems: p.NumItems,
		Train:    make([][]int, p.NumUsers),
		Test:     make([][]int, p.NumUsers),
	}
	s := rng.New(seed).Derive("split:" + p.Name)
	err := StreamUsers(p, seed, func(u int, items []int) error {
		splitUser(sp, s, u, items, testFrac)
		return nil
	})
	if err != nil {
		// The callback never fails; an error here is a bug.
		panic(err)
	}
	return sp
}

// splitUser partitions one user's items into sp.Train[u]/sp.Test[u],
// consuming the split stream exactly as Dataset.Split does for that user.
// Both implementations must stay draw-for-draw identical — Split iterates
// users in ascending order, so the per-user stream consumption lines up.
func splitUser(sp *Split, s *rng.Stream, u int, items []int, testFrac float64) {
	if len(items) == 0 {
		return
	}
	nTest := int(float64(len(items)) * testFrac)
	if nTest >= len(items) {
		nTest = len(items) - 1
	}
	perm := s.Perm(len(items))
	for i, pi := range perm {
		if i < nTest {
			sp.Test[u] = append(sp.Test[u], items[pi])
		} else {
			sp.Train[u] = append(sp.Train[u], items[pi])
		}
	}
	sort.Ints(sp.Train[u])
	sort.Ints(sp.Test[u])
}

// StreamCSV streams the profile to w as "user,item" lines — byte-identical
// to WriteCSV(Generate(p, seed), w) — and returns the dataset statistics
// gathered along the way. Working memory stays O(one user's profile).
func StreamCSV(w io.Writer, p Profile, seed uint64) (Stats, error) {
	bw := bufio.NewWriter(w)
	var interactions int
	err := StreamUsers(p, seed, func(u int, items []int) error {
		interactions += len(items)
		for _, v := range items {
			if _, err := fmt.Fprintf(bw, "%d,%d\n", u, v); err != nil {
				return fmt.Errorf("data: write csv: %w", err)
			}
		}
		return nil
	})
	if err != nil {
		return Stats{}, err
	}
	if err := bw.Flush(); err != nil {
		return Stats{}, fmt.Errorf("data: write csv: %w", err)
	}
	return streamStats(p, interactions), nil
}

// StreamStats computes the profile's Table II statistics by streaming the
// generation, never holding more than one user's profile.
func StreamStats(p Profile, seed uint64) Stats {
	var interactions int
	err := StreamUsers(p, seed, func(u int, items []int) error {
		interactions += len(items)
		return nil
	})
	if err != nil {
		panic(err) // callback never fails
	}
	return streamStats(p, interactions)
}

func streamStats(p Profile, interactions int) Stats {
	st := Stats{
		Name:         p.Name,
		Users:        p.NumUsers,
		Items:        p.NumItems,
		Interactions: interactions,
	}
	if p.NumUsers > 0 {
		st.AvgLength = float64(interactions) / float64(p.NumUsers)
	}
	if p.NumUsers > 0 && p.NumItems > 0 {
		st.Density = float64(interactions) / (float64(p.NumUsers) * float64(p.NumItems))
	}
	return st
}
