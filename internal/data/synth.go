package data

import (
	"fmt"
	"math"
	"sort"

	"ptffedrec/internal/rng"
)

// Profile describes a synthetic dataset calibrated to a real one. The
// generator plants two signals real recommendation data exhibits and the
// paper's experiments depend on: a long-tailed item popularity (Zipf) and a
// latent cluster structure (users preferentially interact with items from
// their own taste cluster), which is the collaborative signal the graph
// models exploit.
type Profile struct {
	Name         string
	NumUsers     int
	NumItems     int
	Interactions int     // target total interaction count
	ZipfExponent float64 // popularity skew (≈1 for real data)
	Clusters     int     // number of latent taste clusters
	ClusterBias  float64 // probability an interaction stays in-cluster
	MinPerUser   int     // floor on per-user profile length
}

// Calibrated profiles for the paper's three datasets (Table II statistics)
// plus scaled-down variants used by tests and the default benchmark runs.
var (
	// ML100K mirrors MovieLens-100K: 943 users, 1682 items, 100k
	// interactions, 6.30% density, average profile 106.
	ML100K = Profile{Name: "ml-100k", NumUsers: 943, NumItems: 1682,
		Interactions: 100000, ZipfExponent: 1.0, Clusters: 12, ClusterBias: 0.7, MinPerUser: 20}

	// Steam200K mirrors Steam-200K: 3753 users, 5134 items, 114713
	// interactions, 0.59% density, average profile 31.
	Steam200K = Profile{Name: "steam-200k", NumUsers: 3753, NumItems: 5134,
		Interactions: 114713, ZipfExponent: 1.05, Clusters: 20, ClusterBias: 0.7, MinPerUser: 5}

	// Gowalla mirrors the 20-core Gowalla check-ins: 8392 users, 10068
	// items, 391238 interactions, 0.46% density, average profile 46.
	Gowalla = Profile{Name: "gowalla", NumUsers: 8392, NumItems: 10068,
		Interactions: 391238, ZipfExponent: 1.0, Clusters: 30, ClusterBias: 0.75, MinPerUser: 20}

	// Small variants preserve the relative ordering of density and profile
	// length across the three datasets at a scale where the full experiment
	// grid runs quickly. ML100KSmall stays densest with the longest
	// profiles; SteamSmall is sparsest with the shortest.
	ML100KSmall = Profile{Name: "ml-100k-small", NumUsers: 160, NumItems: 260,
		Interactions: 2600, ZipfExponent: 1.0, Clusters: 6, ClusterBias: 0.7, MinPerUser: 8}
	SteamSmall = Profile{Name: "steam-200k-small", NumUsers: 240, NumItems: 380,
		Interactions: 1700, ZipfExponent: 1.05, Clusters: 8, ClusterBias: 0.7, MinPerUser: 4}
	GowallaSmall = Profile{Name: "gowalla-small", NumUsers: 300, NumItems: 420,
		Interactions: 2900, ZipfExponent: 1.0, Clusters: 10, ClusterBias: 0.75, MinPerUser: 5}

	// LargeScale is the cross-device scalability workload: 50k users — far
	// past the paper's datasets — with a catalogue and density in the Gowalla
	// regime. It exists to stress the parallel round engine and evaluator
	// (the scalability experiment and BenchmarkScalability), not to mirror a
	// particular public dataset.
	LargeScale = Profile{Name: "large-50k", NumUsers: 50000, NumItems: 4000,
		Interactions: 1000000, ZipfExponent: 1.05, Clusters: 40, ClusterBias: 0.7, MinPerUser: 6}

	// LargeScaleSmall is the scaled-down variant the default (small-scale)
	// scalability runs use: the same shape at a size where a full
	// worker-count sweep finishes in seconds.
	LargeScaleSmall = Profile{Name: "large-50k-small", NumUsers: 6000, NumItems: 900,
		Interactions: 90000, ZipfExponent: 1.05, Clusters: 16, ClusterBias: 0.7, MinPerUser: 5}

	// Tiny is for unit tests.
	Tiny = Profile{Name: "tiny", NumUsers: 40, NumItems: 60,
		Interactions: 360, ZipfExponent: 1.0, Clusters: 4, ClusterBias: 0.7, MinPerUser: 5}

	// Huge1M is the million-user memory workload: 1M users over an 8192-item
	// catalogue at cross-device sparsity (≈5 interactions per user). It
	// exists to prove the per-user server state — the flat upload store, the
	// bounded eligibility cache, lazy client construction — stays O(bytes)
	// per user, not O(allocations). Use the streaming generator
	// (StreamUsers / StreamSplit / StreamCSV); materialising the full
	// Dataset is deliberately avoided everywhere this profile is wired up.
	Huge1M = Profile{Name: "huge-1m", NumUsers: 1_000_000, NumItems: 8192,
		Interactions: 5_000_000, ZipfExponent: 1.05, Clusters: 64, ClusterBias: 0.7, MinPerUser: 3}
)

// ProfileByName resolves a profile from its Name field.
func ProfileByName(name string) (Profile, error) {
	for _, p := range []Profile{ML100K, Steam200K, Gowalla, ML100KSmall, SteamSmall, GowallaSmall, LargeScale, LargeScaleSmall, Tiny, Huge1M} {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("data: unknown profile %q", name)
}

// streamGen is the synthetic generator's sequential core: the prelude state
// (cluster assignments, popularity structures, per-user activity) plus the
// shared draw stream, from which per-user profiles are produced one user at
// a time in ascending order. Working memory is O(users) scalars plus
// O(profile length) per call — never the interaction set — which is what
// lets huge profiles stream to disk or into a Split without materialising a
// Dataset. Generate is a thin collector over it, so the streamed sequence is
// byte-identical to the historical all-at-once generation for the same
// (profile, seed).
type streamGen struct {
	p            Profile
	clusterItems [][]int
	clusterZipfs []*rng.Zipf
	globalZipf   *rng.Zipf
	rankToItem   []int
	act          []float64
	actSum       float64
	target       float64
	userCluster  []int
	draw         *rng.Stream
	next         int // next user id to generate
}

// newStreamGen runs the generation prelude — every draw before the first
// user's items, in the historical order.
func newStreamGen(p Profile, seed uint64) *streamGen {
	s := rng.New(seed).Derive("synth:" + p.Name)
	g := &streamGen{p: p}

	// Assign items to clusters with Zipf-distributed global popularity.
	itemCluster := make([]int, p.NumItems)
	for v := range itemCluster {
		itemCluster[v] = s.Intn(p.Clusters)
	}
	g.clusterItems = make([][]int, p.Clusters)
	for v, c := range itemCluster {
		g.clusterItems[c] = append(g.clusterItems[c], v)
	}
	// Guard against empty clusters (possible at tiny scales).
	for c := range g.clusterItems {
		if len(g.clusterItems[c]) == 0 {
			v := s.Intn(p.NumItems)
			g.clusterItems[c] = append(g.clusterItems[c], v)
		}
	}

	g.globalZipf = rng.NewZipf(s.Derive("pop"), p.NumItems, p.ZipfExponent)
	// Popularity rank permutation: rank r -> actual item id.
	g.rankToItem = s.Derive("rank").Perm(p.NumItems)

	g.clusterZipfs = make([]*rng.Zipf, p.Clusters)
	for c := range g.clusterZipfs {
		g.clusterZipfs[c] = rng.NewZipf(s.DeriveN("cpop", c), len(g.clusterItems[c]), p.ZipfExponent)
	}

	// Per-user activity: lognormal-ish heavy tail scaled to hit the target
	// interaction count, floored at MinPerUser.
	g.act = make([]float64, p.NumUsers)
	au := s.Derive("activity")
	for u := range g.act {
		g.act[u] = math.Exp(au.Normal(0, 0.9))
		g.actSum += g.act[u]
	}
	g.target = float64(p.Interactions - p.MinPerUser*p.NumUsers)
	if g.target < 0 {
		g.target = 0
	}

	g.userCluster = make([]int, p.NumUsers)
	uc := s.Derive("ucluster")
	for u := range g.userCluster {
		g.userCluster[u] = uc.Intn(p.Clusters)
	}

	g.draw = s.Derive("draw")
	return g
}

// userItems generates user u's profile into dst (reused, returned sorted
// ascending and deduplicated). Users must be requested in ascending order
// starting at 0: all users share one draw stream, so the sequence of draws —
// and with it every profile — only reproduces the all-at-once generation
// when consumed in user order.
func (g *streamGen) userItems(dst []int, u int) []int {
	if u != g.next {
		panic(fmt.Sprintf("data: streamGen user %d requested, want %d (users must stream in order)", u, g.next))
	}
	g.next++
	n := g.p.MinPerUser + int(g.target*g.act[u]/g.actSum)
	if n > g.p.NumItems {
		n = g.p.NumItems
	}
	dst = dst[:0]
	attempts := 0
	for len(dst) < n && attempts < n*40 {
		attempts++
		var v int
		if g.draw.Bernoulli(g.p.ClusterBias) {
			ci := g.clusterItems[g.userCluster[u]]
			v = ci[g.clusterZipfs[g.userCluster[u]].Draw()]
		} else {
			v = g.rankToItem[g.globalZipf.Draw()]
		}
		if containsInt(dst, v) {
			continue
		}
		dst = append(dst, v)
	}
	sort.Ints(dst)
	return dst
}

// containsInt reports whether xs holds v. Profiles are short (tens of
// items), so the linear scan beats a map — and unlike the historical
// per-user map it allocates nothing.
func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// Generate synthesises a dataset matching the profile. The same seed always
// produces the same dataset.
func Generate(p Profile, seed uint64) *Dataset {
	ui := make([][]int, p.NumUsers)
	g := newStreamGen(p, seed)
	var buf []int
	for u := 0; u < p.NumUsers; u++ {
		buf = g.userItems(buf, u)
		ui[u] = append(make([]int, 0, len(buf)), buf...)
	}
	// userItems emits sorted, deduplicated, in-range profiles — the Dataset
	// invariants — so the pairs round-trip through NewDataset is unnecessary.
	return &Dataset{Name: p.Name, NumUsers: p.NumUsers, NumItems: p.NumItems, UserItems: ui}
}
