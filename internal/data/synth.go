package data

import (
	"fmt"
	"math"

	"ptffedrec/internal/rng"
)

// Profile describes a synthetic dataset calibrated to a real one. The
// generator plants two signals real recommendation data exhibits and the
// paper's experiments depend on: a long-tailed item popularity (Zipf) and a
// latent cluster structure (users preferentially interact with items from
// their own taste cluster), which is the collaborative signal the graph
// models exploit.
type Profile struct {
	Name         string
	NumUsers     int
	NumItems     int
	Interactions int     // target total interaction count
	ZipfExponent float64 // popularity skew (≈1 for real data)
	Clusters     int     // number of latent taste clusters
	ClusterBias  float64 // probability an interaction stays in-cluster
	MinPerUser   int     // floor on per-user profile length
}

// Calibrated profiles for the paper's three datasets (Table II statistics)
// plus scaled-down variants used by tests and the default benchmark runs.
var (
	// ML100K mirrors MovieLens-100K: 943 users, 1682 items, 100k
	// interactions, 6.30% density, average profile 106.
	ML100K = Profile{Name: "ml-100k", NumUsers: 943, NumItems: 1682,
		Interactions: 100000, ZipfExponent: 1.0, Clusters: 12, ClusterBias: 0.7, MinPerUser: 20}

	// Steam200K mirrors Steam-200K: 3753 users, 5134 items, 114713
	// interactions, 0.59% density, average profile 31.
	Steam200K = Profile{Name: "steam-200k", NumUsers: 3753, NumItems: 5134,
		Interactions: 114713, ZipfExponent: 1.05, Clusters: 20, ClusterBias: 0.7, MinPerUser: 5}

	// Gowalla mirrors the 20-core Gowalla check-ins: 8392 users, 10068
	// items, 391238 interactions, 0.46% density, average profile 46.
	Gowalla = Profile{Name: "gowalla", NumUsers: 8392, NumItems: 10068,
		Interactions: 391238, ZipfExponent: 1.0, Clusters: 30, ClusterBias: 0.75, MinPerUser: 20}

	// Small variants preserve the relative ordering of density and profile
	// length across the three datasets at a scale where the full experiment
	// grid runs quickly. ML100KSmall stays densest with the longest
	// profiles; SteamSmall is sparsest with the shortest.
	ML100KSmall = Profile{Name: "ml-100k-small", NumUsers: 160, NumItems: 260,
		Interactions: 2600, ZipfExponent: 1.0, Clusters: 6, ClusterBias: 0.7, MinPerUser: 8}
	SteamSmall = Profile{Name: "steam-200k-small", NumUsers: 240, NumItems: 380,
		Interactions: 1700, ZipfExponent: 1.05, Clusters: 8, ClusterBias: 0.7, MinPerUser: 4}
	GowallaSmall = Profile{Name: "gowalla-small", NumUsers: 300, NumItems: 420,
		Interactions: 2900, ZipfExponent: 1.0, Clusters: 10, ClusterBias: 0.75, MinPerUser: 5}

	// LargeScale is the cross-device scalability workload: 50k users — far
	// past the paper's datasets — with a catalogue and density in the Gowalla
	// regime. It exists to stress the parallel round engine and evaluator
	// (the scalability experiment and BenchmarkScalability), not to mirror a
	// particular public dataset.
	LargeScale = Profile{Name: "large-50k", NumUsers: 50000, NumItems: 4000,
		Interactions: 1000000, ZipfExponent: 1.05, Clusters: 40, ClusterBias: 0.7, MinPerUser: 6}

	// LargeScaleSmall is the scaled-down variant the default (small-scale)
	// scalability runs use: the same shape at a size where a full
	// worker-count sweep finishes in seconds.
	LargeScaleSmall = Profile{Name: "large-50k-small", NumUsers: 6000, NumItems: 900,
		Interactions: 90000, ZipfExponent: 1.05, Clusters: 16, ClusterBias: 0.7, MinPerUser: 5}

	// Tiny is for unit tests.
	Tiny = Profile{Name: "tiny", NumUsers: 40, NumItems: 60,
		Interactions: 360, ZipfExponent: 1.0, Clusters: 4, ClusterBias: 0.7, MinPerUser: 5}
)

// ProfileByName resolves a profile from its Name field.
func ProfileByName(name string) (Profile, error) {
	for _, p := range []Profile{ML100K, Steam200K, Gowalla, ML100KSmall, SteamSmall, GowallaSmall, LargeScale, LargeScaleSmall, Tiny} {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("data: unknown profile %q", name)
}

// Generate synthesises a dataset matching the profile. The same seed always
// produces the same dataset.
func Generate(p Profile, seed uint64) *Dataset {
	s := rng.New(seed).Derive("synth:" + p.Name)

	// Assign items to clusters with Zipf-distributed global popularity.
	itemCluster := make([]int, p.NumItems)
	for v := range itemCluster {
		itemCluster[v] = s.Intn(p.Clusters)
	}
	clusterItems := make([][]int, p.Clusters)
	for v, c := range itemCluster {
		clusterItems[c] = append(clusterItems[c], v)
	}
	// Guard against empty clusters (possible at tiny scales).
	for c := range clusterItems {
		if len(clusterItems[c]) == 0 {
			v := s.Intn(p.NumItems)
			clusterItems[c] = append(clusterItems[c], v)
		}
	}

	globalZipf := rng.NewZipf(s.Derive("pop"), p.NumItems, p.ZipfExponent)
	// Popularity rank permutation: rank r -> actual item id.
	rankToItem := s.Derive("rank").Perm(p.NumItems)

	clusterZipfs := make([]*rng.Zipf, p.Clusters)
	for c := range clusterZipfs {
		clusterZipfs[c] = rng.NewZipf(s.DeriveN("cpop", c), len(clusterItems[c]), p.ZipfExponent)
	}

	// Per-user activity: lognormal-ish heavy tail scaled to hit the target
	// interaction count, floored at MinPerUser.
	act := make([]float64, p.NumUsers)
	var actSum float64
	au := s.Derive("activity")
	for u := range act {
		act[u] = math.Exp(au.Normal(0, 0.9))
		actSum += act[u]
	}
	target := float64(p.Interactions - p.MinPerUser*p.NumUsers)
	if target < 0 {
		target = 0
	}

	userCluster := make([]int, p.NumUsers)
	uc := s.Derive("ucluster")
	for u := range userCluster {
		userCluster[u] = uc.Intn(p.Clusters)
	}

	var pairs [][2]int
	draw := s.Derive("draw")
	for u := 0; u < p.NumUsers; u++ {
		n := p.MinPerUser + int(target*act[u]/actSum)
		if n > p.NumItems {
			n = p.NumItems
		}
		seen := make(map[int]bool, n)
		attempts := 0
		for len(seen) < n && attempts < n*40 {
			attempts++
			var v int
			if draw.Bernoulli(p.ClusterBias) {
				ci := clusterItems[userCluster[u]]
				v = ci[clusterZipfs[userCluster[u]].Draw()]
			} else {
				v = rankToItem[globalZipf.Draw()]
			}
			if seen[v] {
				continue
			}
			seen[v] = true
			pairs = append(pairs, [2]int{u, v})
		}
	}

	d, err := NewDataset(p.Name, p.NumUsers, p.NumItems, pairs)
	if err != nil {
		// The generator only emits in-range ids; an error here is a bug.
		panic(err)
	}
	return d
}
