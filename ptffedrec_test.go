package ptffedrec

import (
	"bytes"
	"strings"
	"testing"
)

// TestFacadeEndToEnd exercises the documented public API path: generate,
// split, train, evaluate, meter.
func TestFacadeEndToEnd(t *testing.T) {
	profile := Profile{
		Name: "facade-test", NumUsers: 30, NumItems: 50,
		Interactions: 260, ZipfExponent: 1, Clusters: 3, ClusterBias: 0.7, MinPerUser: 5,
	}
	dataset := Generate(profile, 1)
	if dataset.NumUsers != 30 {
		t.Fatalf("users = %d", dataset.NumUsers)
	}
	split := dataset.Split(NewRand(1), 0.2)

	cfg := DefaultConfig(ServerNeuMF)
	cfg.Rounds = 2
	cfg.ClientEpochs = 1
	cfg.ServerEpochs = 1
	cfg.Dim = 8
	trainer, err := NewTrainer(split, cfg)
	if err != nil {
		t.Fatal(err)
	}
	history, err := trainer.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(history.Rounds) != 2 {
		t.Fatalf("rounds = %d", len(history.Rounds))
	}
	if trainer.Meter().AvgPerClientPerRound() <= 0 {
		t.Fatal("no traffic metered")
	}
	if history.Final.Users == 0 {
		t.Fatal("no users evaluated")
	}
}

func TestFacadeCentralAndBaselines(t *testing.T) {
	profile := Profile{
		Name: "facade-test2", NumUsers: 25, NumItems: 40,
		Interactions: 210, ZipfExponent: 1, Clusters: 3, ClusterBias: 0.7, MinPerUser: 5,
	}
	split := Generate(profile, 2).Split(NewRand(2), 0.2)

	ccfg := DefaultCentralConfig(ServerLightGCN)
	ccfg.Epochs = 2
	ccfg.Dim = 8
	ct, err := NewCentralTrainer(split, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	ct.Run()
	if ct.Evaluate(20).Users == 0 {
		t.Fatal("central evaluation empty")
	}

	bcfg := DefaultBaselineConfig()
	bcfg.Rounds = 1
	bcfg.LocalEpochs = 1
	bcfg.Dim = 8
	bcfg.KeyBits = 256
	fcf, err := NewFCF(split, bcfg)
	if err != nil {
		t.Fatal(err)
	}
	fcf.RunRound(0)
	fedmf, err := NewFedMF(split, bcfg)
	if err != nil {
		t.Fatal(err)
	}
	fedmf.RunRound(0)
	metamf, err := NewMetaMF(split, bcfg)
	if err != nil {
		t.Fatal(err)
	}
	metamf.RunRound(0)
	if !(fedmf.AvgBytesPerClientPerRound() > fcf.AvgBytesPerClientPerRound()) {
		t.Fatal("FedMF should out-cost FCF through the facade too")
	}
}

func TestFacadeExperimentDispatcher(t *testing.T) {
	o := DefaultExperimentOptions()
	o.ProfilesOverride = []Profile{{
		Name: "facade-exp", NumUsers: 20, NumItems: 30,
		Interactions: 140, ZipfExponent: 1, Clusters: 2, ClusterBias: 0.7, MinPerUser: 4,
	}}
	var buf bytes.Buffer
	if err := RunExperiment("table2", o, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "facade-exp") {
		t.Fatalf("table2 output missing dataset: %s", buf.String())
	}
	if err := RunExperiment("not-an-experiment", o, &buf); err == nil {
		t.Fatal("bogus experiment accepted")
	}
	if len(ExperimentIDs) < 9 {
		t.Fatalf("ExperimentIDs = %v", ExperimentIDs)
	}
}

func TestFormatBytesFacade(t *testing.T) {
	if FormatBytes(2048) != "2.00KB" {
		t.Fatalf("FormatBytes = %s", FormatBytes(2048))
	}
}
