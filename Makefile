# Local targets mirror .github/workflows/ci.yml so `make ci` reproduces the
# pipeline exactly.

GO ?= go

.PHONY: build test race bench fmt fmt-check vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: fmt-check vet build race bench
