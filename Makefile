# Local targets mirror .github/workflows/ci.yml so `make ci` reproduces the
# pipeline exactly.

GO ?= go

.PHONY: build test race bench fmt fmt-check vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# bench runs the smoke benchmarks and regenerates the committed perf
# trajectory record (the same sweep CI uploads as an artifact per commit).
# -benchmem makes allocation regressions visible next to the timings — the
# fed store/graph benchmarks must report 0 allocs/op in steady state (the
# pin itself is TestAbsorbSteadyStateAllocs/TestCollectEdgesSteadyStateAllocs).
# The second ptfbench run appends the huge-1m memory-profile record, whose
# graph-incr/graph-full gap is the incremental graph engine's
# partial-participation headline — 10 rounds (~10 min single-core) so the
# stored population dwarfs the ~5k participants a round actually changes;
# CI runs only the quick sweep. The JSON lands in a temp file first so a
# failed run never truncates the committed record.
# -timeout 30m: the root-package table benchmarks take ~10 min on one core,
# right at go test's default 10m kill threshold.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run='^$$' -timeout 30m . ./internal/fed/
	$(GO) run ./cmd/ptfbench -exp scalability -quick -json > BENCH_scalability.json.tmp
	$(GO) run ./cmd/ptfbench -exp scalability -profile huge-1m -rounds 10 -json >> BENCH_scalability.json.tmp
	mv BENCH_scalability.json.tmp BENCH_scalability.json

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: fmt-check vet build race bench
