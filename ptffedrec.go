// Package ptffedrec is a Go implementation of PTF-FedRec — "Hide Your Model:
// A Parameter Transmission-free Federated Recommender System" (ICDE 2024).
//
// PTF-FedRec lets a service provider train a strong, private recommendation
// model on a central server while every user's raw interactions stay on
// their own device and no model parameters are ever transmitted in either
// direction. Clients train small local models and upload perturbed
// prediction scores for a sampled subset of items; the server trains its
// hidden model on those predictions and answers with soft labels for
// confidence-filtered and hard items. Per-round traffic is a few kilobytes
// per client instead of the megabytes parameter-transmission FedRecs ship.
//
// This package is the public facade over the implementation in internal/:
//
//	split := ptffedrec.Generate(ptffedrec.ML100KSmall, 1).
//	        Split(ptffedrec.NewRand(1), 0.2)
//	cfg := ptffedrec.DefaultConfig(ptffedrec.ServerNGCF)
//	trainer, err := ptffedrec.NewTrainer(split, cfg)
//	history, err := trainer.Run()
//
// See the runnable programs under examples/ and the experiment harness
// behind cmd/ptfbench for complete walkthroughs of every paper experiment.
//
// Building and testing (see also the Makefile and README):
//
//	go build ./...                         # build everything
//	go test ./...                          # full test suite
//	go test -race -short ./...             # what CI runs
//	go test -bench=. -benchtime=1x -run=^$ # regenerate every table/figure once
//	go run ./cmd/ptfbench -exp scalability # parallel round-engine sweep
package ptffedrec

import (
	"io"

	"ptffedrec/internal/baselines"
	"ptffedrec/internal/central"
	"ptffedrec/internal/comm"
	"ptffedrec/internal/data"
	"ptffedrec/internal/eval"
	"ptffedrec/internal/experiments"
	"ptffedrec/internal/fed"
	"ptffedrec/internal/models"
	"ptffedrec/internal/privacy"
	"ptffedrec/internal/rng"
)

// Core protocol types.
type (
	// Config is the full PTF-FedRec hyper-parameter set (§IV-D defaults via
	// DefaultConfig).
	Config = fed.Config
	// Trainer orchestrates the protocol (Algorithm 1).
	Trainer = fed.Trainer
	// History is a training run's per-round trace plus final metrics.
	History = fed.History
	// RoundStats is one global round's record.
	RoundStats = fed.RoundStats
	// DisperseMode selects the server's D̃ᵢ construction strategy.
	DisperseMode = fed.DisperseMode
)

// Dataset types.
type (
	// Dataset is an implicit-feedback interaction set.
	Dataset = data.Dataset
	// Split is a per-user train/test partition.
	Split = data.Split
	// Profile describes a synthetic dataset calibrated to a real one.
	Profile = data.Profile
	// Stats is a Table II row.
	Stats = data.Stats
)

// Model and privacy types.
type (
	// ModelKind selects a recommender family.
	ModelKind = models.Kind
	// PrivacyConfig is the §III-B2 upload mechanism configuration.
	PrivacyConfig = privacy.Config
	// Defense selects the upload perturbation mechanism.
	Defense = privacy.Defense
	// Result is a (Recall@K, NDCG@K) evaluation outcome.
	Result = eval.Result
	// Prediction is one (user, item, score) wire triple.
	Prediction = comm.Prediction
	// Scorer scores one user against candidate items (models satisfy this).
	Scorer = models.Scorer
	// ScorerFunc adapts a function to Scorer.
	ScorerFunc = models.ScorerFunc
)

// Model kinds.
const (
	ServerNeuMF    = models.KindNeuMF
	ServerNGCF     = models.KindNGCF
	ServerLightGCN = models.KindLightGCN
	ClientNeuMF    = models.KindNeuMF
	ClientNGCF     = models.KindNGCF
	ClientLightGCN = models.KindLightGCN
)

// Defenses (Table V).
const (
	DefenseNone         = privacy.DefenseNone
	DefenseLDP          = privacy.DefenseLDP
	DefenseSampling     = privacy.DefenseSampling
	DefenseSamplingSwap = privacy.DefenseSamplingSwap
)

// Dispersal strategies (Table VII).
const (
	DisperseConfHard  = fed.DisperseConfHard
	DisperseNoHard    = fed.DisperseNoHard
	DisperseNoConf    = fed.DisperseNoConf
	DisperseAllRandom = fed.DisperseAllRandom
)

// Calibrated dataset profiles (Table II), their scaled-down variants, and
// the cross-device scalability workloads.
var (
	ML100K          = data.ML100K
	Steam200K       = data.Steam200K
	Gowalla         = data.Gowalla
	ML100KSmall     = data.ML100KSmall
	SteamSmall      = data.SteamSmall
	GowallaSmall    = data.GowallaSmall
	LargeScale      = data.LargeScale
	LargeScaleSmall = data.LargeScaleSmall
)

// DefaultConfig returns the paper's hyper-parameters with the given server
// model and NeuMF clients.
func DefaultConfig(serverModel ModelKind) Config { return fed.DefaultConfig(serverModel) }

// NewTrainer wires up one client per user and the hidden server model.
func NewTrainer(sp *Split, cfg Config) (*Trainer, error) { return fed.NewTrainer(sp, cfg) }

// Generate synthesises a dataset matching a calibrated profile.
func Generate(p Profile, seed uint64) *Dataset { return data.Generate(p, seed) }

// NewRand returns a deterministic random stream for splitting and sampling.
func NewRand(seed uint64) *rng.Stream { return rng.New(seed) }

// LoadMovieLens100K parses the real MovieLens `u.data` file (ratings ≥
// minRating become implicit-feedback interactions).
func LoadMovieLens100K(path string, minRating float64) (*Dataset, error) {
	return data.LoadMovieLens100K(path, minRating)
}

// LoadCSV parses a generic "user,item[,rating]" interaction file.
func LoadCSV(path, name string) (*Dataset, error) { return data.LoadCSV(path, name) }

// Centralized training (the paper's upper-bound comparison).
type (
	// CentralConfig configures centralized training.
	CentralConfig = central.Config
	// CentralTrainer trains a recommender on pooled data.
	CentralTrainer = central.Trainer
)

// DefaultCentralConfig returns §IV-D centralized settings.
func DefaultCentralConfig(kind ModelKind) CentralConfig { return central.DefaultConfig(kind) }

// NewCentralTrainer builds a centralized trainer.
func NewCentralTrainer(sp *Split, cfg CentralConfig) (*CentralTrainer, error) {
	return central.NewTrainer(sp, cfg)
}

// Parameter-transmission baselines (Tables III and IV).
type (
	// BaselineConfig configures FCF/FedMF/MetaMF.
	BaselineConfig = baselines.Config
	// FCF is federated collaborative filtering.
	FCF = baselines.FCF
	// FedMF is Paillier-encrypted federated matrix factorization.
	FedMF = baselines.FedMF
	// MetaMF generates per-user item embeddings with a server meta-network.
	MetaMF = baselines.MetaMF
)

// DefaultBaselineConfig returns the baselines' shared settings.
func DefaultBaselineConfig() BaselineConfig { return baselines.DefaultConfig() }

// NewFCF builds the FCF baseline.
func NewFCF(sp *Split, cfg BaselineConfig) (*FCF, error) { return baselines.NewFCF(sp, cfg) }

// NewFedMF builds the FedMF baseline.
func NewFedMF(sp *Split, cfg BaselineConfig) (*FedMF, error) { return baselines.NewFedMF(sp, cfg) }

// NewMetaMF builds the MetaMF baseline.
func NewMetaMF(sp *Split, cfg BaselineConfig) (*MetaMF, error) { return baselines.NewMetaMF(sp, cfg) }

// Experiment harness (every table and figure in §IV).
type (
	// ExperimentOptions configures an experiment run.
	ExperimentOptions = experiments.Options
)

// ExperimentIDs lists every runnable experiment.
var ExperimentIDs = experiments.ExperimentIDs

// DefaultExperimentOptions returns the benchmark-friendly configuration
// (small profiles, shortened training).
func DefaultExperimentOptions() ExperimentOptions { return experiments.DefaultOptions() }

// RunExperiment executes one experiment by id, printing paper-style rows.
func RunExperiment(id string, o ExperimentOptions, w io.Writer) error {
	return experiments.Run(id, o, w)
}

// Ranking evaluates a scorer on a split at cutoff k, fanning the user loop
// out over GOMAXPROCS workers. Metrics are bitwise-identical for any worker
// count.
func Ranking(s Scorer, sp *Split, k int) Result { return eval.Ranking(s, sp, k) }

// RankingWorkers is Ranking with an explicit worker count (<= 0 means
// GOMAXPROCS).
func RankingWorkers(s Scorer, sp *Split, k, workers int) Result {
	return eval.RankingWorkers(s, sp, k, workers)
}

// FormatBytes renders byte counts the way Table IV does.
func FormatBytes(b float64) string { return comm.FormatBytes(b) }
