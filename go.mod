module ptffedrec

go 1.24
